// Package repro's top-level benchmarks regenerate every table and figure of
// the paper (one benchmark per artifact — run `go test -bench=. -benchmem`)
// plus ablations of the design choices called out in DESIGN.md §5.
// Benchmarks use the quick configuration so a full -bench=. pass stays
// tractable; `cmd/ipubench` runs the paper-scale versions.
package main

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/butterfly"
	"repro/internal/ipu"
	"repro/internal/tensor"
)

func benchOpts() bench.Options { return bench.Options{Quick: true, Seed: 42} }

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q missing", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable1Specs regenerates Table 1 (device spec comparison).
func BenchmarkTable1Specs(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2MatMul regenerates Table 2 (dense/sparse MM GFLOP/s).
func BenchmarkTable2MatMul(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Hyperparams regenerates Table 3.
func BenchmarkTable3Hyperparams(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4SHL regenerates Table 4 (SHL training benchmark).
func BenchmarkTable4SHL(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5Sweep regenerates Table 5 (pixelfly parameter sweep).
func BenchmarkTable5Sweep(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig3Exchange regenerates Fig. 3 (tile-to-tile latency/bandwidth).
func BenchmarkFig3Exchange(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Skewed regenerates Fig. 4 (skewed MM sweep).
func BenchmarkFig4Skewed(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Memory regenerates Fig. 5 (IPU memory anatomy vs N).
func BenchmarkFig5Memory(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6LayerSweep regenerates Fig. 6 (linear vs butterfly vs
// pixelfly across N on three device modes).
func BenchmarkFig6LayerSweep(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ComputeSets regenerates Fig. 7 (compute-set counts).
func BenchmarkFig7ComputeSets(b *testing.B) { runExperiment(b, "fig7") }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationParameterizationDense2x2 vs ...Rotation compares the two
// butterfly parameterizations' forward cost; the rotation form carries 4×
// fewer parameters (the Table 4 compression) at similar compute.
func BenchmarkAblationParameterizationDense2x2(b *testing.B) {
	benchButterflyForward(b, butterfly.Dense2x2)
}

// BenchmarkAblationParameterizationRotation is the rotation counterpart.
func BenchmarkAblationParameterizationRotation(b *testing.B) {
	benchButterflyForward(b, butterfly.Rotation)
}

func benchButterflyForward(b *testing.B, p butterfly.Parameterization) {
	rng := rand.New(rand.NewSource(1))
	bf := butterfly.New(1024, p, rng)
	x := tensor.New(50, 1024)
	x.FillRandom(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Apply(x)
	}
}

// BenchmarkAblationComputeSetOverhead quantifies Observation 3: compiling
// the same matmul and reading total memory with and without the
// compiler-overhead categories (the delta is the "unexpected additional
// demand" of Fig. 5).
func BenchmarkAblationComputeSetOverhead(b *testing.B) {
	cfg := ipu.GC200()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ipu.BuildDenseMatMul(cfg, 512, 512, 512, ipu.MMPoplin)
		c, err := ipu.Compile(w.Graph)
		if err != nil {
			b.Fatal(err)
		}
		overhead := c.Device.Total() - c.Device.Variables
		if overhead <= 0 {
			b.Fatal("overhead model inactive")
		}
		b.ReportMetric(float64(overhead)/float64(c.Device.Variables), "overhead/vars")
	}
}

// BenchmarkAblationExchangeLocality asserts Observation 1 inside a
// benchmark: near and distant tile pairs cost the same, so the metric
// reported is their (constant) ratio.
func BenchmarkAblationExchangeLocality(b *testing.B) {
	cfg := ipu.GC200()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		near, err := ipu.ExchangeMicrobench(cfg, 0, 1, 64*1024)
		if err != nil {
			b.Fatal(err)
		}
		far, err := ipu.ExchangeMicrobench(cfg, 0, 644, 64*1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(far.LatencySeconds/near.LatencySeconds, "far/near")
	}
}

// BenchmarkAblationAMPvsSIMD measures the modeled gap between the AMP
// (dense matmul) path and the SIMD path the butterfly codelets use — the
// hardware asymmetry that caps butterfly's IPU speedup at ~1.6×.
func BenchmarkAblationAMPvsSIMD(b *testing.B) {
	cfg := ipu.GC200()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense, err := ipu.Run(ipu.BuildDenseMatMul(cfg, 1024, 1024, 1024, ipu.MMPoplin), ipu.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		bf, err := ipu.Run(ipu.BuildButterflyMM(cfg, 1024, 1024), ipu.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dense.GFlops()/bf.GFlops(), "amp/simd-rate")
	}
}
