// memorywall walks matrix-multiply and layer workloads up in size on the
// IPU model and watches the compiled graph's memory anatomy (Fig. 5's
// experiment): variables are only part of the story — vertex state, edge
// pointers, exchange code and control code grow with compute sets until a
// tile overflows, which is the moment the paper's butterfly compression
// argument starts to matter.
package main

import (
	"errors"
	"fmt"

	"repro/internal/ipu"
)

func main() {
	cfg := ipu.GC200()
	fmt.Printf("GC200: %d tiles × %d KiB = %.0f MB on-chip\n\n",
		cfg.Tiles, cfg.TileMemBytes/1024, float64(cfg.TotalMemBytes())/1e6)

	fmt.Println("— poplin matmul C(N×N) = A·B —")
	fmt.Printf("%6s %5s %9s %10s %9s %9s %9s %9s\n",
		"N", "CS", "vertices", "edges", "vars[MB]", "ovh[MB]", "total[MB]", "free[MB]")
	for n := 256; n <= 16384; n *= 2 {
		w := ipu.BuildDenseMatMul(cfg, n, n, n, ipu.MMPoplin)
		c, err := ipu.Compile(w.Graph)
		var oom *ipu.OOMError
		if errors.As(err, &oom) {
			fmt.Printf("%6d  OUT OF MEMORY: tile %d needs %.0f KiB of %d KiB\n",
				n, oom.Tile, float64(oom.Need)/1024, cfg.TileMemBytes/1024)
			break
		} else if err != nil {
			fmt.Println(err)
			break
		}
		total := float64(c.Device.Total()) / 1e6
		vars := float64(c.Device.Variables) / 1e6
		fmt.Printf("%6d %5d %9d %10d %9.1f %9.1f %9.1f %9.1f\n",
			n, c.NumComputeSets, c.NumVertices, c.NumEdges,
			vars, total-vars, total, float64(c.FreeBytes())/1e6)
	}

	fmt.Println("\n— torch.nn.Linear vs butterfly layer (batch = N) —")
	fmt.Printf("%6s %16s %16s\n", "N", "linear", "butterfly")
	for n := 1024; n <= 16384; n *= 2 {
		lin := "fits"
		if _, err := ipu.Compile(ipu.BuildLinear(cfg, n, n).Graph); err != nil {
			lin = "OOM"
		}
		bf := "fits"
		if _, err := ipu.Compile(ipu.BuildButterflyMM(cfg, n, n).Graph); err != nil {
			bf = "OOM"
		}
		fmt.Printf("%6d %16s %16s\n", n, lin, bf)
	}
	fmt.Println("\nThe dense layer hits the wall first: its N² weight matrix competes with")
	fmt.Println("activations for tile memory, while the butterfly layer stores only O(N log N).")
}
