// Quickstart: build a butterfly factorization, verify that its O(N log N)
// multiply reproduces the materialized dense product, and show the
// compression the paper's Table 4 reports (98.5% fewer parameters than a
// dense layer).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/butterfly"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func main() {
	const n = 1024
	rng := rand.New(rand.NewSource(7))

	// A rotation-parameterized butterfly: (N/2)·log2(N) learnable angles.
	bf := butterfly.New(n, butterfly.Rotation, rng)
	fmt.Printf("butterfly size            : %d\n", n)
	fmt.Printf("learnable parameters      : %d\n", bf.ParamCount())
	fmt.Printf("dense layer parameters    : %d\n", n*n)
	fmt.Printf("compression vs dense      : %.1f%%\n",
		100*stats.CompressionRatio(n*n, bf.ParamCount()))

	// Apply to a batch of 4 vectors in O(N log N)...
	x := tensor.New(4, n)
	x.FillRandom(rng, 1)
	fast := bf.Apply(x)

	// ...and check against the explicit O(N^2) product.
	dense := bf.Dense()
	slow := tensor.MatMul(x, dense.Transpose())
	fmt.Printf("max |fast - dense| error  : %.2e\n", tensor.MaxAbsDiff(fast, slow))

	// Cost comparison per the paper's Section 2.3.
	batch := 4
	fmt.Printf("butterfly flops (batch %d) : %.0f\n", batch, bf.Flops(batch))
	fmt.Printf("dense flops (batch %d)     : %.0f\n", batch, tensor.MatMulFlops(batch, n, n))
	fmt.Printf("flop reduction            : %.1fx\n",
		tensor.MatMulFlops(batch, n, n)/bf.Flops(batch))

	// The FFT connection (paper Eq. 1): a fixed-coefficient butterfly IS
	// the Walsh–Hadamard transform.
	h := butterfly.NewHadamard(8)
	probe := tensor.FromSlice(1, 8, []float32{1, 0, 1, 0, 0, 1, 1, 0})
	fmt.Printf("hadamard butterfly of %v -> %v\n", probe.Data, h.Apply(probe).Data)
}
