// skewedmm reproduces the Fig. 4 experiment interactively: it sweeps the
// skewness ratio of a constant-FLOP matrix multiply across the GPU model
// (FP32 and TF32) and the IPU model, printing GFLOP/s per point — the
// demonstration that the IPU tolerates skew where GPU tile quantization
// does not.
package main

import (
	"flag"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/ipu"
)

func main() {
	base := flag.Int("base", 1024, "square baseline dimension (power of two)")
	flag.Parse()

	gcfg := gpu.A30()
	icfg := ipu.GC200()
	fmt.Printf("A(m×k)·B(k×n) with k=%d, m·n=%d² — skew s = m/n\n\n", *base, *base)
	fmt.Printf("%7s %8s %8s   %14s %14s %12s\n", "skew", "m", "n", "GPU FP32 [GF]", "GPU TF32 [GF]", "IPU [GF]")
	for _, j := range []int{-6, -5, -4, -3, -2, -1, 0, 1, 2, 3, 4, 5, 6} {
		m, n := *base, *base
		if j >= 0 {
			m <<= uint(j)
			n >>= uint(j)
		} else {
			m >>= uint(-j)
			n <<= uint(-j)
		}
		if m < 1 || n < 1 {
			continue
		}
		fp32, err := gpu.Run(gcfg, gpu.MatMul(gcfg, m, *base, n, gpu.AlgoCublas), gpu.RunOptions{})
		if err != nil {
			fmt.Printf("%7s gpu error: %v\n", skewLabel(j), err)
			continue
		}
		tf32, err := gpu.Run(gcfg, gpu.MatMul(gcfg, m, *base, n, gpu.AlgoCublasTC), gpu.RunOptions{})
		if err != nil {
			fmt.Printf("%7s gpu error: %v\n", skewLabel(j), err)
			continue
		}
		ires, err := ipu.Run(ipu.BuildDenseMatMul(icfg, m, *base, n, ipu.MMPoplin), ipu.RunOptions{})
		ipuCell := "OOM"
		if err == nil {
			ipuCell = fmt.Sprintf("%.0f", ires.GFlops())
		}
		fmt.Printf("%7s %8d %8d   %14.0f %14.0f %12s\n",
			skewLabel(j), m, n, fp32.GFlops(), tf32.GFlops(), ipuCell)
	}
	fmt.Println("\nObservation 2 (paper): the IPU stays stable under skew; the GPU loses an order")
	fmt.Println("of magnitude once a dimension falls below its matmul tile size, TF32 sooner than FP32.")
}

func skewLabel(j int) string {
	return fmt.Sprintf("2^%+d", 2*j)
}
