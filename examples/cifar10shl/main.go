// cifar10shl trains the paper's single-hidden-layer model on the synthetic
// CIFAR-10 stand-in with every structured-matrix method of Table 4 and
// prints accuracy, parameter count and compression side by side.
//
// Run with -fast for a reduced dataset/epoch budget.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/stats"
)

func main() {
	fast := flag.Bool("fast", false, "train a reduced configuration")
	epochs := flag.Int("epochs", 6, "training epochs")
	flag.Parse()

	cfg := dataset.CIFAR10Config()
	n, classes := 1024, 10
	if *fast {
		cfg = dataset.Config{
			Name: "synthetic-cifar10-small", Classes: 10, Side: 16,
			Train: 1200, Test: 400, ValFraction: 0.15,
			AtomsPerClass: 5, BlobsPerClass: 2,
			NoiseStd: 0.5, GainStd: 0.4, Seed: 42,
		}
		n = 256
	}
	fmt.Printf("generating %s (%d train / %d test, %d-dim)...\n",
		cfg.Name, cfg.Train, cfg.Test, cfg.Side*cfg.Side)
	ds := dataset.Generate(cfg)

	var basisParams int
	fmt.Printf("\n%-10s  %9s  %11s  %8s  %8s  %s\n",
		"method", "NParams", "compression", "val acc", "test acc", "train time")
	for _, m := range nn.AllMethods {
		rng := rand.New(rand.NewSource(1))
		model := nn.BuildSHL(m, n, classes, rng)
		tc := nn.PaperTrainConfig(*epochs)
		start := time.Now()
		res := nn.Train(model, ds, tc)
		elapsed := time.Since(start).Round(time.Millisecond)
		if m == nn.Baseline {
			basisParams = model.ParamCount()
		}
		val := 0.0
		if len(res.ValAccuracy) > 0 {
			val = res.ValAccuracy[len(res.ValAccuracy)-1]
		}
		fmt.Printf("%-10s  %9d  %10.1f%%  %7.1f%%  %7.1f%%  %v\n",
			m, model.ParamCount(),
			100*stats.CompressionRatio(basisParams, model.ParamCount()),
			100*val, 100*res.TestAccuracy, elapsed)
	}
	fmt.Println("\npaper shape: butterfly keeps accuracy closest to the baseline at ~98.5% compression;")
	fmt.Println("low-rank (rank 1) collapses; pixelfly trades parameters for accuracy.")
}
