// Package sparse implements the sparse matrix formats the paper evaluates:
// COO and CSR for unstructured sparsity (Table 2's cusparse/popsparse rows)
// and BSR (block compressed sparse row) for the block-aligned patterns of
// pixelated butterfly.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// COO is a coordinate-format sparse matrix. Entries may be in any order
// unless Sort has been called.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Val        []float32
}

// CSR is a compressed-sparse-row matrix: RowPtr has Rows+1 entries and
// column indices within a row are strictly increasing.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32
	ColIdx     []int32
	Val        []float32
}

// NNZ returns the number of stored entries.
func (c *COO) NNZ() int { return len(c.Val) }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// Density returns NNZ / (Rows*Cols).
func (c *CSR) Density() float64 {
	if c.Rows*c.Cols == 0 {
		return 0
	}
	return float64(c.NNZ()) / float64(c.Rows*c.Cols)
}

// NewCOO returns an empty COO matrix of the given shape.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Append adds entry (i, j, v). Zero values are kept (callers may want
// explicit zeros); use Prune to drop them.
func (c *COO) Append(i, j int, v float32) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range %dx%d", i, j, c.Rows, c.Cols))
	}
	c.RowIdx = append(c.RowIdx, int32(i))
	c.ColIdx = append(c.ColIdx, int32(j))
	c.Val = append(c.Val, v)
}

// Sort orders entries by (row, col). Duplicate coordinates are left
// adjacent; ToCSR sums them.
func (c *COO) Sort() {
	idx := make([]int, len(c.Val))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if c.RowIdx[ia] != c.RowIdx[ib] {
			return c.RowIdx[ia] < c.RowIdx[ib]
		}
		return c.ColIdx[ia] < c.ColIdx[ib]
	})
	ri := make([]int32, len(idx))
	ci := make([]int32, len(idx))
	vv := make([]float32, len(idx))
	for n, i := range idx {
		ri[n], ci[n], vv[n] = c.RowIdx[i], c.ColIdx[i], c.Val[i]
	}
	c.RowIdx, c.ColIdx, c.Val = ri, ci, vv
}

// ToCSR converts to CSR, summing duplicate coordinates.
func (c *COO) ToCSR() *CSR {
	cp := &COO{Rows: c.Rows, Cols: c.Cols,
		RowIdx: append([]int32(nil), c.RowIdx...),
		ColIdx: append([]int32(nil), c.ColIdx...),
		Val:    append([]float32(nil), c.Val...)}
	cp.Sort()
	out := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int32, c.Rows+1)}
	for n := 0; n < len(cp.Val); {
		i, j := cp.RowIdx[n], cp.ColIdx[n]
		v := cp.Val[n]
		n++
		for n < len(cp.Val) && cp.RowIdx[n] == i && cp.ColIdx[n] == j {
			v += cp.Val[n]
			n++
		}
		out.ColIdx = append(out.ColIdx, j)
		out.Val = append(out.Val, v)
		out.RowPtr[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// FromDense extracts all entries with |v| > eps into a CSR matrix.
func FromDense(m *tensor.Matrix, eps float32) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int32, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v > eps || v < -eps {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Val = append(out.Val, v)
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// ToDense materializes the CSR matrix as dense.
func (c *CSR) ToDense() *tensor.Matrix {
	out := tensor.New(c.Rows, c.Cols)
	for i := 0; i < c.Rows; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			out.Data[i*c.Cols+int(c.ColIdx[p])] += c.Val[p]
		}
	}
	return out
}

// ToDense materializes the COO matrix as dense, summing duplicates.
func (c *COO) ToDense() *tensor.Matrix {
	out := tensor.New(c.Rows, c.Cols)
	for n := range c.Val {
		out.Data[int(c.RowIdx[n])*c.Cols+int(c.ColIdx[n])] += c.Val[n]
	}
	return out
}

// RandomCSR generates a rows×cols matrix where each entry is nonzero with
// probability density; nonzeros are uniform in [-1, 1]. Deterministic for a
// given rng. This is the workload generator for Table 2's sparse columns
// (densities 1% and 10% for sparsities 99% and 90%).
func RandomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("sparse: invalid density %v", density))
	}
	out := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				out.ColIdx = append(out.ColIdx, int32(j))
				out.Val = append(out.Val, rng.Float32()*2-1)
			}
		}
		out.RowPtr[i+1] = int32(len(out.Val))
	}
	return out
}

// MulDense computes the SpMM c·b where b is dense: (Rows×Cols)·(Cols×K).
func (c *CSR) MulDense(b *tensor.Matrix) *tensor.Matrix {
	if c.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpMM shape mismatch %dx%d x %dx%d", c.Rows, c.Cols, b.Rows, b.Cols))
	}
	out := tensor.New(c.Rows, b.Cols)
	k := b.Cols
	for i := 0; i < c.Rows; i++ {
		orow := out.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			brow := b.Data[int(c.ColIdx[p])*k : (int(c.ColIdx[p])+1)*k]
			for j := 0; j < k; j++ {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}

// MulDense computes the SpMM c·b for the COO layout (scatter style).
func (c *COO) MulDense(b *tensor.Matrix) *tensor.Matrix {
	if c.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: SpMM shape mismatch %dx%d x %dx%d", c.Rows, c.Cols, b.Rows, b.Cols))
	}
	out := tensor.New(c.Rows, b.Cols)
	k := b.Cols
	for n := range c.Val {
		i := int(c.RowIdx[n])
		v := c.Val[n]
		brow := b.Data[int(c.ColIdx[n])*k : (int(c.ColIdx[n])+1)*k]
		orow := out.Row(i)
		for j := 0; j < k; j++ {
			orow[j] += v * brow[j]
		}
	}
	return out
}

// Flops returns the useful floating point operations of SpMM with a dense
// right-hand side of width k: 2·nnz·k.
func (c *CSR) Flops(k int) float64 { return 2 * float64(c.NNZ()) * float64(k) }

// TransposeMulDense computes cᵀ·b, needed by backward passes of sparse
// layers: (Cols×Rows)·(Rows×K).
func (c *CSR) TransposeMulDense(b *tensor.Matrix) *tensor.Matrix {
	if c.Rows != b.Rows {
		panic(fmt.Sprintf("sparse: TransposeMulDense shape mismatch %dx%d^T x %dx%d", c.Rows, c.Cols, b.Rows, b.Cols))
	}
	out := tensor.New(c.Cols, b.Cols)
	k := b.Cols
	for i := 0; i < c.Rows; i++ {
		brow := b.Data[i*k : (i+1)*k]
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			orow := out.Row(int(c.ColIdx[p]))
			for j := 0; j < k; j++ {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}
