package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// randomBSR builds a BSR with each block present with probability
// density, guaranteeing at least one block per block row so the product
// exercises every output row, then fills stored blocks with random
// values (including a sprinkle of exact zeros to cover the reference
// kernel's skip branch that the micro kernels drop).
func randomBSR(t testing.TB, rng *rand.Rand, rows, cols, bs int, density float64) *BSR {
	t.Helper()
	br, bc := rows/bs, cols/bs
	var pattern [][2]int
	for i := 0; i < br; i++ {
		placed := false
		for j := 0; j < bc; j++ {
			if rng.Float64() < density {
				pattern = append(pattern, [2]int{i, j})
				placed = true
			}
		}
		if !placed {
			pattern = append(pattern, [2]int{i, rng.Intn(bc)})
		}
	}
	b, err := NewBSR(rows, cols, bs, pattern)
	if err != nil {
		t.Fatalf("NewBSR: %v", err)
	}
	for i := range b.Blocks {
		b.Blocks[i] = rng.Float32()*2 - 1
	}
	for z := 0; z < len(b.Blocks)/7; z++ {
		b.Blocks[rng.Intn(len(b.Blocks))] = 0
	}
	return b
}

// TestMulDenseMicroMatchesReference demands float equality between the
// block-specialized kernels and the reference loops across block sizes
// covering the bs=4/8 unrolls, the tiled path, and its scalar tail.
func TestMulDenseMicroMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, bs := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, k := range []int{1, 3, 17} {
			rows, cols := 6*bs, 5*bs
			b := randomBSR(t, rng, rows, cols, bs, 0.4)
			x := tensor.New(cols, k)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			want := tensor.New(rows, k)
			got := tensor.New(rows, k)

			b.MulDenseInto(want, x)
			b.MulDenseIntoMicro(got, x)
			assertSameMat(t, fmt.Sprintf("bs=%d k=%d MulDenseIntoMicro", bs, k), want, got)

			bias := make([]float32, rows)
			for i := range bias {
				bias[i] = rng.Float32()*2 - 1
			}
			for _, act := range []tensor.Activation{tensor.ActNone, tensor.ActReLU} {
				b.MulDenseBiasActInto(want, x, bias, act)
				b.MulDenseBiasActIntoMicro(got, x, bias, act)
				assertSameMat(t, fmt.Sprintf("bs=%d k=%d bias/%v", bs, k, act), want, got)

				b.MulDenseBiasActInto(want, x, nil, act)
				b.MulDenseBiasActIntoMicro(got, x, nil, act)
				assertSameMat(t, fmt.Sprintf("bs=%d k=%d nilbias/%v", bs, k, act), want, got)
			}
		}
	}
}

func TestMicroVariantNames(t *testing.T) {
	for _, tc := range []struct {
		bs   int
		want string
	}{{4, "unroll4"}, {8, "unroll8"}, {3, "blocktiled"}, {16, "blocktiled"}} {
		b, err := NewBSR(tc.bs*2, tc.bs*2, tc.bs, [][2]int{{0, 0}, {1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if got := b.MicroVariant(); got != tc.want {
			t.Errorf("bs=%d: MicroVariant() = %q, want %q", tc.bs, got, tc.want)
		}
	}
}

func assertSameMat(t *testing.T, op string, want, got *tensor.Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: data[%d] = %v, want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}

// BenchmarkBSRMulDense compares the reference product against the
// block-specialized kernels at serving-realistic shapes: pixelated
// butterfly weights at width 1024, including the transposed batch-1
// case (k=1) that dominates serving.
func BenchmarkBSRMulDense(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	for _, bs := range []int{4, 8, 16} {
		for _, k := range []int{1, 16} {
			n := 1024
			m := randomBSR(b, rng, n, n, bs, 0.1)
			x := tensor.New(n, k)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			out := tensor.New(n, k)
			flops := int64(2*bs*bs*k) * int64(m.NumBlocks())
			b.Run(fmt.Sprintf("ref/bs%dk%d", bs, k), func(b *testing.B) {
				b.SetBytes(flops)
				for i := 0; i < b.N; i++ {
					m.MulDenseInto(out, x)
				}
			})
			b.Run(fmt.Sprintf("micro/bs%dk%d", bs, k), func(b *testing.B) {
				b.SetBytes(flops)
				for i := 0; i < b.N; i++ {
					m.MulDenseIntoMicro(out, x)
				}
			})
		}
	}
}
