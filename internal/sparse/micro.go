package sparse

import (
	"fmt"

	"repro/internal/tensor"
)

// Micro-kernel BSR×dense products: block-size-specialized kernels with
// the per-scalar `v == 0` skip dropped. Structural sparsity lives at
// block granularity — absent blocks are never visited via RowPtr/ColIdx,
// which is the skip worth keeping — while stored blocks are dense by
// construction (rank-one butterfly blocks), so the per-scalar branch is
// almost never taken and only costs. Dropping it can only change the
// sign of exact-zero contributions, which float comparison treats as
// equal. Accumulation per output element stays c-ascending with
// sequential adds, so results are otherwise bit-identical to the
// reference kernels.

// MulDenseIntoMicro is MulDenseInto through the block-specialized
// kernels: full unroll at bs=4 and bs=8, a 4-column tiling otherwise.
func (b *BSR) MulDenseIntoMicro(out, x *tensor.Matrix) {
	if b.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDense shape mismatch %dx%d x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	if out.Rows != b.Rows || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: BSR MulDenseIntoMicro dst %dx%d, want %dx%d", out.Rows, out.Cols, b.Rows, x.Cols))
	}
	out.Zero()
	b.mulDenseMicro(out, x, nil, tensor.ActNone, false)
}

// MulDenseBiasActIntoMicro is MulDenseBiasActInto through the
// block-specialized kernels, with the same cache-hot per-block-row
// epilogue.
func (b *BSR) MulDenseBiasActIntoMicro(out, x *tensor.Matrix, bias []float32, act tensor.Activation) {
	if b.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasAct shape mismatch %dx%d x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	if out.Rows != b.Rows || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasActIntoMicro dst %dx%d, want %dx%d", out.Rows, out.Cols, b.Rows, x.Cols))
	}
	if bias != nil && len(bias) != b.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasActIntoMicro bias length %d != rows %d", len(bias), b.Rows))
	}
	out.Zero()
	b.mulDenseMicro(out, x, bias, act, true)
}

// MicroVariant names the kernel variant the plan dispatcher stamps into
// step metadata when this matrix multiplies through the micro path.
func (b *BSR) MicroVariant() string {
	switch b.BlockSize {
	case 4:
		return "unroll4"
	case 8:
		return "unroll8"
	default:
		return "blocktiled"
	}
}

func (b *BSR) mulDenseMicro(out, x *tensor.Matrix, bias []float32, act tensor.Activation, epi bool) {
	bs, k := b.BlockSize, x.Cols
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			switch bs {
			case 4:
				accBlock4(out, x, blk, bi*4, bj*4, k)
			case 8:
				accBlock8(out, x, blk, bi*8, bj*8, k)
			default:
				accBlockTiled(out, x, blk, bi*bs, bj*bs, bs, k)
			}
		}
		if epi {
			for r := 0; r < bs; r++ {
				row := out.Row(bi*bs + r)
				if bias != nil {
					bv := bias[bi*bs+r]
					for j, v := range row {
						row[j] = act.Apply(v + bv)
					}
				} else {
					for j, v := range row {
						row[j] = act.Apply(v)
					}
				}
			}
		}
	}
}

// accBlock4 accumulates one stored 4×4 block: the four RHS rows are
// hoisted once per block and every output element gets its four
// contributions as sequential adds in c order.
func accBlock4(out, x *tensor.Matrix, blk []float32, row0, col0, k int) {
	x0 := x.Data[col0*k : col0*k+k]
	x1 := x.Data[(col0+1)*k : (col0+1)*k+k][:len(x0)]
	x2 := x.Data[(col0+2)*k : (col0+2)*k+k][:len(x0)]
	x3 := x.Data[(col0+3)*k : (col0+3)*k+k][:len(x0)]
	for r := 0; r < 4; r++ {
		v := blk[r*4 : r*4+4 : r*4+4]
		v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
		orow := out.Row(row0 + r)[:len(x0)]
		for j, xv := range x0 {
			s := orow[j]
			s += v0 * xv
			s += v1 * x1[j]
			s += v2 * x2[j]
			s += v3 * x3[j]
			orow[j] = s
		}
	}
}

// accBlock8 is accBlock4 for 8×8 blocks.
func accBlock8(out, x *tensor.Matrix, blk []float32, row0, col0, k int) {
	x0 := x.Data[col0*k : col0*k+k]
	x1 := x.Data[(col0+1)*k : (col0+1)*k+k][:len(x0)]
	x2 := x.Data[(col0+2)*k : (col0+2)*k+k][:len(x0)]
	x3 := x.Data[(col0+3)*k : (col0+3)*k+k][:len(x0)]
	x4 := x.Data[(col0+4)*k : (col0+4)*k+k][:len(x0)]
	x5 := x.Data[(col0+5)*k : (col0+5)*k+k][:len(x0)]
	x6 := x.Data[(col0+6)*k : (col0+6)*k+k][:len(x0)]
	x7 := x.Data[(col0+7)*k : (col0+7)*k+k][:len(x0)]
	for r := 0; r < 8; r++ {
		v := blk[r*8 : r*8+8 : r*8+8]
		v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
		v4, v5, v6, v7 := v[4], v[5], v[6], v[7]
		orow := out.Row(row0 + r)[:len(x0)]
		for j, xv := range x0 {
			s := orow[j]
			s += v0 * xv
			s += v1 * x1[j]
			s += v2 * x2[j]
			s += v3 * x3[j]
			s += v4 * x4[j]
			s += v5 * x5[j]
			s += v6 * x6[j]
			s += v7 * x7[j]
			orow[j] = s
		}
	}
}

// accBlockTiled handles other block sizes: columns in tiles of four so
// each output element still receives sequential adds in c order, with a
// scalar tail for bs % 4.
func accBlockTiled(out, x *tensor.Matrix, blk []float32, row0, col0, bs, k int) {
	for r := 0; r < bs; r++ {
		orow := out.Row(row0 + r)
		c := 0
		for ; c+4 <= bs; c += 4 {
			v := blk[r*bs+c : r*bs+c+4 : r*bs+c+4]
			v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
			x0 := x.Data[(col0+c)*k : (col0+c)*k+k]
			x1 := x.Data[(col0+c+1)*k : (col0+c+1)*k+k][:len(x0)]
			x2 := x.Data[(col0+c+2)*k : (col0+c+2)*k+k][:len(x0)]
			x3 := x.Data[(col0+c+3)*k : (col0+c+3)*k+k][:len(x0)]
			op := orow[:len(x0)]
			for j, xv := range x0 {
				s := op[j]
				s += v0 * xv
				s += v1 * x1[j]
				s += v2 * x2[j]
				s += v3 * x3[j]
				op[j] = s
			}
		}
		for ; c < bs; c++ {
			v := blk[r*bs+c]
			xrow := x.Data[(col0+c)*k : (col0+c)*k+k]
			op := orow[:len(xrow)]
			for j, xv := range xrow {
				op[j] += v * xv
			}
		}
	}
}
