package sparse

import (
	"fmt"

	"repro/internal/tensor"
)

// BSR is a block compressed sparse row matrix with square BlockSize×BlockSize
// dense blocks. It is the storage format of the pixelated-butterfly weight
// matrix: the butterfly connectivity decides *which* blocks exist, BSR holds
// their values.
type BSR struct {
	Rows, Cols int // logical element dimensions
	BlockSize  int
	BlockRows  int       // Rows / BlockSize
	BlockCols  int       // Cols / BlockSize
	RowPtr     []int32   // length BlockRows+1, indexes into ColIdx/Blocks
	ColIdx     []int32   // block-column index per stored block
	Blocks     []float32 // len(ColIdx) * BlockSize * BlockSize, row-major per block
}

// NewBSR builds a BSR matrix from an explicit block pattern. pattern lists
// (blockRow, blockCol) pairs; duplicates are rejected. Block values start
// at zero.
func NewBSR(rows, cols, blockSize int, pattern [][2]int) (*BSR, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("sparse: block size %d must be positive", blockSize)
	}
	if rows%blockSize != 0 || cols%blockSize != 0 {
		return nil, fmt.Errorf("sparse: shape %dx%d not divisible by block size %d", rows, cols, blockSize)
	}
	br, bc := rows/blockSize, cols/blockSize
	seen := make(map[[2]int]bool, len(pattern))
	perRow := make([][]int, br)
	for _, p := range pattern {
		if p[0] < 0 || p[0] >= br || p[1] < 0 || p[1] >= bc {
			return nil, fmt.Errorf("sparse: block (%d,%d) out of %dx%d grid", p[0], p[1], br, bc)
		}
		if seen[p] {
			return nil, fmt.Errorf("sparse: duplicate block (%d,%d)", p[0], p[1])
		}
		seen[p] = true
		perRow[p[0]] = append(perRow[p[0]], p[1])
	}
	out := &BSR{Rows: rows, Cols: cols, BlockSize: blockSize, BlockRows: br, BlockCols: bc,
		RowPtr: make([]int32, br+1)}
	for i := 0; i < br; i++ {
		cols := perRow[i]
		sortInts(cols)
		for _, j := range cols {
			out.ColIdx = append(out.ColIdx, int32(j))
		}
		out.RowPtr[i+1] = int32(len(out.ColIdx))
	}
	out.Blocks = make([]float32, len(out.ColIdx)*blockSize*blockSize)
	return out, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// NumBlocks returns the number of stored blocks.
func (b *BSR) NumBlocks() int { return len(b.ColIdx) }

// NNZ returns the number of stored scalar values (all block entries count).
func (b *BSR) NNZ() int { return len(b.Blocks) }

// Block returns the storage slice of the n-th stored block (row-major
// BlockSize×BlockSize view, mutable).
func (b *BSR) Block(n int) []float32 {
	sz := b.BlockSize * b.BlockSize
	return b.Blocks[n*sz : (n+1)*sz]
}

// BlockAt returns (blockIndex, true) if block (bi, bj) is stored.
func (b *BSR) BlockAt(bi, bj int) (int, bool) {
	for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
		if int(b.ColIdx[p]) == bj {
			return int(p), true
		}
	}
	return 0, false
}

// ToDense materializes the matrix.
func (b *BSR) ToDense() *tensor.Matrix {
	out := tensor.New(b.Rows, b.Cols)
	bs := b.BlockSize
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				dst := out.Row(bi*bs + r)[bj*bs : bj*bs+bs]
				src := blk[r*bs : (r+1)*bs]
				for c := range src {
					dst[c] += src[c]
				}
			}
		}
	}
	return out
}

// MulDense computes b·x with x dense: (Rows×Cols)·(Cols×K). This is the
// block-sparse matmul that pixelfly's GPU implementation maps onto tensor
// cores; here it is the reference semantics for both machine models.
func (b *BSR) MulDense(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(b.Rows, x.Cols)
	b.MulDenseInto(out, x)
	return out
}

// MulDenseInto is MulDense writing into caller-owned out (shape
// Rows×x.Cols, overwritten); the allocation-free kernel the compiled
// pixelfly inference path executes through. out must not alias x.
func (b *BSR) MulDenseInto(out, x *tensor.Matrix) {
	if b.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDense shape mismatch %dx%d x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	if out.Rows != b.Rows || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: BSR MulDenseInto dst %dx%d, want %dx%d", out.Rows, out.Cols, b.Rows, x.Cols))
	}
	out.Zero()
	bs, k := b.BlockSize, x.Cols
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				orow := out.Row(bi*bs + r)
				for c := 0; c < bs; c++ {
					v := blk[r*bs+c]
					if v == 0 {
						continue
					}
					xrow := x.Data[(bj*bs+c)*k : (bj*bs+c+1)*k]
					for j := 0; j < k; j++ {
						orow[j] += v * xrow[j]
					}
				}
			}
		}
	}
}

// MulDenseBiasActInto is MulDenseInto with a fused epilogue: as soon as a
// block row's accumulation completes, the per-output-feature bias (indexed
// by the logical row of out, i.e. feature-major like the product itself)
// and the activation are applied while the rows are still cache-hot. The
// accumulation is exactly MulDenseInto's, and act(v + bias) is the same
// float32 chain as separate sweeps, so the result is bit-for-bit equal to
// MulDenseInto followed by a row-broadcast bias add and an activation
// pass. bias may be nil (len == Rows otherwise). out must not alias x.
func (b *BSR) MulDenseBiasActInto(out, x *tensor.Matrix, bias []float32, act tensor.Activation) {
	if b.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasAct shape mismatch %dx%d x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	if out.Rows != b.Rows || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasActInto dst %dx%d, want %dx%d", out.Rows, out.Cols, b.Rows, x.Cols))
	}
	if bias != nil && len(bias) != b.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDenseBiasActInto bias length %d != rows %d", len(bias), b.Rows))
	}
	out.Zero()
	bs, k := b.BlockSize, x.Cols
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				orow := out.Row(bi*bs + r)
				for c := 0; c < bs; c++ {
					v := blk[r*bs+c]
					if v == 0 {
						continue
					}
					xrow := x.Data[(bj*bs+c)*k : (bj*bs+c+1)*k]
					for j := 0; j < k; j++ {
						orow[j] += v * xrow[j]
					}
				}
			}
		}
		// This block row's accumulation is complete: finish its rows
		// while they are still cache-hot.
		for r := 0; r < bs; r++ {
			row := out.Row(bi*bs + r)
			for j, v := range row {
				if bias != nil {
					v += bias[bi*bs+r]
				}
				row[j] = act.Apply(v)
			}
		}
	}
}

// MulDenseRowsInto computes the block-row window [br0, br1) of b·x into
// out (shape (br1-br0)·BlockSize × x.Cols, overwritten). The window's rows
// accumulate the same blocks in the same order as MulDenseInto, so the
// result is bit-for-bit the corresponding row slice of the full product —
// the kernel one tensor-parallel shard of a pixelfly layer executes.
// out must not alias x.
func (b *BSR) MulDenseRowsInto(out, x *tensor.Matrix, br0, br1 int) {
	if b.Cols != x.Rows {
		panic(fmt.Sprintf("sparse: BSR MulDenseRows shape mismatch %dx%d x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	if br0 < 0 || br1 < br0 || br1 > b.BlockRows {
		panic(fmt.Sprintf("sparse: BSR block-row window [%d,%d) outside %d block rows", br0, br1, b.BlockRows))
	}
	bs, k := b.BlockSize, x.Cols
	if out.Rows != (br1-br0)*bs || out.Cols != k {
		panic(fmt.Sprintf("sparse: BSR MulDenseRowsInto dst %dx%d, want %dx%d", out.Rows, out.Cols, (br1-br0)*bs, k))
	}
	out.Zero()
	for bi := br0; bi < br1; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				orow := out.Row((bi-br0)*bs + r)
				for c := 0; c < bs; c++ {
					v := blk[r*bs+c]
					if v == 0 {
						continue
					}
					xrow := x.Data[(bj*bs+c)*k : (bj*bs+c+1)*k]
					for j := 0; j < k; j++ {
						orow[j] += v * xrow[j]
					}
				}
			}
		}
	}
}

// TransposeMulDense computes bᵀ·x: (Cols×Rows)·(Rows×K); used in backward
// passes of block-sparse layers.
func (b *BSR) TransposeMulDense(x *tensor.Matrix) *tensor.Matrix {
	if b.Rows != x.Rows {
		panic(fmt.Sprintf("sparse: BSR TransposeMulDense shape mismatch %dx%d^T x %dx%d", b.Rows, b.Cols, x.Rows, x.Cols))
	}
	out := tensor.New(b.Cols, x.Cols)
	bs, k := b.BlockSize, x.Cols
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				xrow := x.Data[(bi*bs+r)*k : (bi*bs+r+1)*k]
				for c := 0; c < bs; c++ {
					v := blk[r*bs+c]
					if v == 0 {
						continue
					}
					orow := out.Row(bj*bs + c)
					for j := 0; j < k; j++ {
						orow[j] += v * xrow[j]
					}
				}
			}
		}
	}
	return out
}

// AccumulateOuter adds dY·Xᵀ contributions into the stored blocks only —
// the weight-gradient of a block-sparse layer. dY is (Rows×K), x is (Cols×K).
func (b *BSR) AccumulateOuter(dY, x *tensor.Matrix, lr float32) {
	if dY.Rows != b.Rows || x.Rows != b.Cols || dY.Cols != x.Cols {
		panic("sparse: AccumulateOuter shape mismatch")
	}
	bs, k := b.BlockSize, dY.Cols
	for bi := 0; bi < b.BlockRows; bi++ {
		for p := b.RowPtr[bi]; p < b.RowPtr[bi+1]; p++ {
			bj := int(b.ColIdx[p])
			blk := b.Block(int(p))
			for r := 0; r < bs; r++ {
				dyrow := dY.Data[(bi*bs+r)*k : (bi*bs+r+1)*k]
				for c := 0; c < bs; c++ {
					xrow := x.Data[(bj*bs+c)*k : (bj*bs+c+1)*k]
					var s float32
					for j := 0; j < k; j++ {
						s += dyrow[j] * xrow[j]
					}
					blk[r*bs+c] += lr * s
				}
			}
		}
	}
}

// Flops returns the useful flops of MulDense with a width-k RHS:
// 2 · numBlocks · blockSize² · k.
func (b *BSR) Flops(k int) float64 {
	return 2 * float64(b.NumBlocks()) * float64(b.BlockSize*b.BlockSize) * float64(k)
}
