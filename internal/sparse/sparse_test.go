package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(13, 7)
	m.FillRandom(rng, 1)
	// zero out some entries
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if (i+j)%3 == 0 {
				m.Set(i, j, 0)
			}
		}
	}
	csr := FromDense(m, 0)
	back := csr.ToDense()
	if !tensor.AlmostEqual(m, back, 0) {
		t.Fatalf("round trip mismatch: %v", tensor.MaxAbsDiff(m, back))
	}
}

func TestCSRMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []float64{0.01, 0.1, 0.5, 1.0} {
		a := RandomCSR(rng, 31, 17, d)
		b := tensor.New(17, 23)
		b.FillRandom(rng, 1)
		want := tensor.MatMul(a.ToDense(), b)
		got := a.MulDense(b)
		if !tensor.AlmostEqual(want, got, 1e-4) {
			t.Fatalf("density %v: SpMM mismatch %v", d, tensor.MaxAbsDiff(want, got))
		}
	}
}

func TestCOOMulDenseMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	csr := RandomCSR(rng, 20, 20, 0.2)
	coo := NewCOO(20, 20)
	for i := 0; i < csr.Rows; i++ {
		for p := csr.RowPtr[i]; p < csr.RowPtr[i+1]; p++ {
			coo.Append(i, int(csr.ColIdx[p]), csr.Val[p])
		}
	}
	b := tensor.New(20, 5)
	b.FillRandom(rng, 1)
	want := csr.MulDense(b)
	got := coo.MulDense(b)
	if !tensor.AlmostEqual(want, got, 1e-5) {
		t.Fatalf("COO vs CSR SpMM mismatch: %v", tensor.MaxAbsDiff(want, got))
	}
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := NewCOO(2, 2)
	coo.Append(0, 1, 1)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 5)
	csr := coo.ToCSR()
	if csr.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (duplicates summed)", csr.NNZ())
	}
	d := csr.ToDense()
	if d.At(0, 1) != 3 || d.At(1, 0) != 5 {
		t.Fatalf("duplicate sum wrong: %v", d.Data)
	}
}

func TestCOOAppendBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range append did not panic")
		}
	}()
	NewCOO(2, 2).Append(2, 0, 1)
}

func TestRandomCSRDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := RandomCSR(rng, 200, 200, 0.1)
	d := c.Density()
	if d < 0.07 || d > 0.13 {
		t.Fatalf("density %v too far from 0.1", d)
	}
}

func TestTransposeMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomCSR(rng, 14, 9, 0.3)
	b := tensor.New(14, 6)
	b.FillRandom(rng, 1)
	want := tensor.MatMul(a.ToDense().Transpose(), b)
	got := a.TransposeMulDense(b)
	if !tensor.AlmostEqual(want, got, 1e-4) {
		t.Fatalf("TransposeMulDense mismatch: %v", tensor.MaxAbsDiff(want, got))
	}
}

func TestCSRFlops(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := RandomCSR(rng, 10, 10, 0.5)
	if got := c.Flops(4); got != 8*float64(c.NNZ()) {
		t.Fatalf("Flops = %v, want %v", got, 8*float64(c.NNZ()))
	}
}

// Property: SpMM result equals dense matmul of the materialized matrix.
func TestSpMMEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(16)
		cols := 1 + rng.Intn(16)
		k := 1 + rng.Intn(8)
		a := RandomCSR(rng, rows, cols, 0.3)
		b := tensor.New(cols, k)
		b.FillRandom(rng, 1)
		return tensor.AlmostEqual(tensor.MatMul(a.ToDense(), b), a.MulDense(b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBSRBuildAndRoundTrip(t *testing.T) {
	pattern := [][2]int{{0, 0}, {0, 1}, {1, 1}, {2, 0}}
	b, err := NewBSR(12, 8, 4, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBlocks() != 4 || b.BlockRows != 3 || b.BlockCols != 2 {
		t.Fatalf("unexpected BSR layout: %+v", b)
	}
	// Fill blocks with identifiable values.
	for n := 0; n < b.NumBlocks(); n++ {
		blk := b.Block(n)
		for i := range blk {
			blk[i] = float32(n + 1)
		}
	}
	d := b.ToDense()
	if d.At(0, 0) != 1 || d.At(0, 4) != 2 || d.At(4, 4) != 3 || d.At(8, 0) != 4 {
		t.Fatalf("block placement wrong")
	}
	if d.At(4, 0) != 0 {
		t.Fatal("absent block should be zero")
	}
}

func TestBSRRejectsBadShapes(t *testing.T) {
	if _, err := NewBSR(10, 8, 4, nil); err == nil {
		t.Fatal("expected error: rows not divisible by block size")
	}
	if _, err := NewBSR(8, 8, 0, nil); err == nil {
		t.Fatal("expected error: zero block size")
	}
	if _, err := NewBSR(8, 8, 4, [][2]int{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("expected error: duplicate block")
	}
	if _, err := NewBSR(8, 8, 4, [][2]int{{5, 0}}); err == nil {
		t.Fatal("expected error: block out of grid")
	}
}

func TestBSRMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pattern := [][2]int{{0, 0}, {1, 2}, {2, 1}, {3, 3}, {0, 3}}
	b, err := NewBSR(16, 16, 4, pattern)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Blocks {
		b.Blocks[i] = rng.Float32()*2 - 1
	}
	x := tensor.New(16, 7)
	x.FillRandom(rng, 1)
	want := tensor.MatMul(b.ToDense(), x)
	got := b.MulDense(x)
	if !tensor.AlmostEqual(want, got, 1e-4) {
		t.Fatalf("BSR MulDense mismatch: %v", tensor.MaxAbsDiff(want, got))
	}
	wantT := tensor.MatMul(b.ToDense().Transpose(), tensor.FromSlice(16, 7, x.Data))
	gotT := b.TransposeMulDense(x)
	if !tensor.AlmostEqual(wantT, gotT, 1e-4) {
		t.Fatalf("BSR TransposeMulDense mismatch: %v", tensor.MaxAbsDiff(wantT, gotT))
	}
}

func TestBSRAccumulateOuterMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pattern := [][2]int{{0, 1}, {1, 0}}
	b, err := NewBSR(8, 8, 4, pattern)
	if err != nil {
		t.Fatal(err)
	}
	dY := tensor.New(8, 5)
	dY.FillRandom(rng, 1)
	x := tensor.New(8, 5)
	x.FillRandom(rng, 1)
	b.AccumulateOuter(dY, x, 1)
	// Dense gradient masked to the stored blocks.
	full := tensor.MatMul(dY, x.Transpose())
	dense := b.ToDense()
	for bi := 0; bi < 2; bi++ {
		for bj := 0; bj < 2; bj++ {
			_, stored := b.BlockAt(bi, bj)
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					want := float32(0)
					if stored {
						want = full.At(bi*4+r, bj*4+c)
					}
					got := dense.At(bi*4+r, bj*4+c)
					if diff := float64(want - got); diff > 1e-4 || diff < -1e-4 {
						t.Fatalf("block (%d,%d) entry (%d,%d): got %v want %v", bi, bj, r, c, got, want)
					}
				}
			}
		}
	}
}

func TestBSRFlops(t *testing.T) {
	b, err := NewBSR(8, 8, 4, [][2]int{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Flops(3); got != 2*2*16*3 {
		t.Fatalf("Flops = %v, want %v", got, 2*2*16*3)
	}
}

func TestBSRMulDenseRowsIntoMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pattern := [][2]int{{0, 0}, {0, 2}, {1, 1}, {2, 0}, {2, 3}, {3, 3}}
	b, err := NewBSR(16, 16, 4, pattern)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Blocks {
		b.Blocks[i] = rng.Float32()*2 - 1
	}
	x := tensor.New(16, 5)
	x.FillRandom(rng, 1)
	full := b.MulDense(x)

	for _, window := range [][2]int{{0, 4}, {0, 2}, {2, 4}, {1, 3}} {
		br0, br1 := window[0], window[1]
		out := tensor.New((br1-br0)*b.BlockSize, x.Cols)
		b.MulDenseRowsInto(out, x, br0, br1)
		for r := 0; r < out.Rows; r++ {
			for c := 0; c < out.Cols; c++ {
				if out.At(r, c) != full.At(br0*b.BlockSize+r, c) {
					t.Fatalf("window [%d,%d): (%d,%d) = %v, want %v (not bit-for-bit)",
						br0, br1, r, c, out.At(r, c), full.At(br0*b.BlockSize+r, c))
				}
			}
		}
	}
}

func TestBSRMulDenseRowsIntoPanics(t *testing.T) {
	b, err := NewBSR(8, 8, 4, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(8, 2)
	for name, fn := range map[string]func(){
		"bad window":   func() { b.MulDenseRowsInto(tensor.New(4, 2), x, 1, 3) },
		"bad dst rows": func() { b.MulDenseRowsInto(tensor.New(8, 2), x, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestBSRMulDenseBiasActMatchesUnfused pins the fused block-sparse
// epilogue (pixelfly's fused final stage without a low-rank term) to the
// unfused MulDenseInto + bias broadcast + activation chain, bit-for-bit.
func TestBSRMulDenseBiasActMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pattern := [][2]int{{0, 0}, {0, 2}, {1, 1}, {2, 3}, {3, 0}, {3, 3}}
	b, err := NewBSR(16, 16, 4, pattern)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Blocks {
		b.Blocks[i] = rng.Float32()*2 - 1
	}
	x := tensor.New(16, 5)
	x.FillRandom(rng, 1)
	bias := make([]float32, 16)
	for i := range bias {
		bias[i] = rng.Float32()*2 - 1
	}

	want := tensor.New(16, 5)
	b.MulDenseInto(want, x)
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		for j, v := range row {
			v += bias[i]
			if !(v > 0) {
				v = 0
			}
			row[j] = v
		}
	}
	got := tensor.New(16, 5)
	b.MulDenseBiasActInto(got, x, bias, tensor.ActReLU)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d differs: %g vs %g", i, want.Data[i], got.Data[i])
		}
	}

	// nil bias, no activation degenerates to MulDenseInto exactly.
	plain := tensor.New(16, 5)
	b.MulDenseBiasActInto(plain, x, nil, tensor.ActNone)
	ref := b.MulDense(x)
	for i := range ref.Data {
		if ref.Data[i] != plain.Data[i] {
			t.Fatalf("nil-epilogue element %d differs", i)
		}
	}
}
