package baselines

import (
	"fmt"
	"math"

	"repro/internal/hadamard"
	"repro/internal/tensor"
)

// fwhtRowsInPlaceFast is fwhtRowsInPlace through the radix-8/blocked
// FWHT micro-kernel. Every butterfly and the 1/√n scaling perform the
// same float32 operations on the same operands, so the result is
// bit-identical.
func fwhtRowsInPlaceFast(x *tensor.Matrix) {
	inv := float32(1 / math.Sqrt(float64(x.Cols)))
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		hadamard.TransformFast(row)
		for i := range row {
			row[i] *= inv
		}
	}
}

// ApplyIntoMicro is ApplyInto with both Walsh–Hadamard stages running
// through the radix-8 micro-kernel.
func (f *Fastfood) ApplyIntoMicro(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	f.ApplyIntoEpilogueMicro(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogueMicro is ApplyIntoEpilogue with both Walsh–Hadamard
// stages running through the radix-8 micro-kernel. The diagonal
// scalings, permutation, and fused bias/act tail are unchanged, so the
// result is bit-for-bit equal to the reference chain.
func (f *Fastfood) ApplyIntoEpilogueMicro(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	if x.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood input width %d != %d", x.Cols, f.N))
	}
	if dst.Rows != x.Rows || dst.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood ApplyIntoEpilogueMicro dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, f.N))
	}
	if bias != nil && len(bias) != f.N {
		panic(fmt.Sprintf("baselines: Fastfood ApplyIntoEpilogueMicro bias length %d != %d", len(bias), f.N))
	}
	u := ws.Take(x.Rows, f.N)
	v := ws.Take(x.Rows, f.N)
	scaleRowsInto(u, x, f.B)
	fwhtRowsInPlaceFast(u)
	permuteRowsInto(v, u, f.Perm)
	scaleRowsInto(u, v, f.G)
	fwhtRowsInPlaceFast(u)
	for r := 0; r < x.Rows; r++ {
		src := u.Row(r)
		out := dst.Row(r)
		for i := range src {
			val := src[i] * f.S[i]
			if bias != nil {
				val += bias[i]
			}
			out[i] = act.Apply(val)
		}
	}
}

// MicroVariant names the kernel variant the plan dispatcher stamps into
// step metadata when this transform compiles through the micro path.
func (f *Fastfood) MicroVariant() string {
	if f.N >= 8 {
		return "radix8"
	}
	return "reference"
}
