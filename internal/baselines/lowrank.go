// Package baselines implements the structured-matrix methods Table 4
// compares butterfly against: LowRank (U·Vᵀ), Circulant (FFT circular
// convolution) and Fastfood (S·H·G·Π·H·B). Each exposes the same
// Forward/Backward/Params protocol as the butterfly and pixelfly layers so
// the SHL benchmark treats all methods uniformly.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LowRank is the rank-r factorization W = U·Vᵀ of an n×n weight.
// With r=1 and n=1024 the SHL totals 13,322 parameters, matching Table 4.
type LowRank struct {
	N, Rank      int
	U, V         *tensor.Matrix // n×r
	GradU, GradV *tensor.Matrix

	// ut caches Uᵀ (r×n) for the allocation-free inference path; it is
	// re-derived by Refresh after every optimizer step (the same post-step
	// hook the rotation butterfly uses).
	ut *tensor.Matrix

	xSaved  *tensor.Matrix
	xvSaved *tensor.Matrix
}

// LowRankFlops is the one shared FLOP formula for a factorized rank-r
// product of an in×out weight over a batch: the in×r and r×out factor
// multiplies cost 2·batch·r·in + 2·batch·r·out. Both this package's
// LowRank and the post-hoc factorized layers of internal/factorize /
// internal/nn report their FLOPs through it so the benchmarks stay
// consistent.
func LowRankFlops(in, out, rank, batch int) float64 {
	return 2 * float64(batch) * float64(rank) * (float64(in) + float64(out))
}

// NewLowRank builds a random low-rank layer.
func NewLowRank(n, rank int, rng *rand.Rand) *LowRank {
	if rank <= 0 || rank > n {
		panic(fmt.Sprintf("baselines: rank %d out of range (0,%d]", rank, n))
	}
	l := &LowRank{N: n, Rank: rank,
		U: tensor.New(n, rank), V: tensor.New(n, rank),
		GradU: tensor.New(n, rank), GradV: tensor.New(n, rank)}
	// n^(-1/4) per factor so the product U·Vᵀ has dense-equivalent
	// n^(-1/2) entries; a 1/√n per-factor init would shrink the product
	// (and its gradients) by another 1/√n and stall training.
	scale := float32(1 / math.Pow(float64(n), 0.25))
	l.U.FillRandom(rng, scale)
	l.V.FillRandom(rng, scale)
	l.Refresh()
	return l
}

// Refresh re-derives the cached Uᵀ after an optimizer step mutates U.
func (l *LowRank) Refresh() {
	if l.ut == nil {
		l.ut = tensor.New(l.Rank, l.N)
	}
	tensor.TransposeInto(l.ut, l.U)
}

// NewLowRankFromFactors wraps explicit factors U, V (both n×r) so that the
// layer applies W = V·Uᵀ to row vectors: Y = (X·V)·Uᵀ. This is the entry
// point internal/factorize uses to turn a truncated SVD of a trained dense
// weight into a servable layer.
func NewLowRankFromFactors(u, v *tensor.Matrix) *LowRank {
	if u.Rows != v.Rows || u.Cols != v.Cols {
		panic(fmt.Sprintf("baselines: factor shapes %dx%d vs %dx%d differ",
			u.Rows, u.Cols, v.Rows, v.Cols))
	}
	if u.Cols <= 0 || u.Cols > u.Rows {
		panic(fmt.Sprintf("baselines: rank %d out of range (0,%d]", u.Cols, u.Rows))
	}
	n, rank := u.Rows, u.Cols
	l := &LowRank{N: n, Rank: rank,
		U: u.Clone(), V: v.Clone(),
		GradU: tensor.New(n, rank), GradV: tensor.New(n, rank)}
	l.Refresh()
	return l
}

// ParamCount returns 2·n·rank.
func (l *LowRank) ParamCount() int { return 2 * l.N * l.Rank }

// Flops returns forward flops over a batch via the shared LowRankFlops
// formula (2·batch·r·n per factor).
func (l *LowRank) Flops(batch int) float64 {
	return LowRankFlops(l.N, l.N, l.Rank, batch)
}

// Forward computes Y = (X·V)·Uᵀ so that y_row = U·Vᵀ·x_row.
func (l *LowRank) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.N {
		panic(fmt.Sprintf("baselines: LowRank input width %d != %d", x.Cols, l.N))
	}
	l.xSaved = x
	l.xvSaved = tensor.MatMul(x, l.V)
	return tensor.MatMul(l.xvSaved, l.U.Transpose())
}

// Apply is Forward without retaining state. It writes no receiver fields,
// so any number of goroutines may share one LowRank for inference.
func (l *LowRank) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.N {
		panic(fmt.Sprintf("baselines: LowRank input width %d != %d", x.Cols, l.N))
	}
	return tensor.MatMul(tensor.MatMul(x, l.V), l.U.Transpose())
}

// ApplyInto is Apply writing into caller-owned dst (shape x.Rows×N, fully
// overwritten), staging X·V and Uᵀ through the workspace. Same kernels,
// bit-for-bit equal result. dst must not alias x. It is the nil-epilogue
// form of ApplyIntoEpilogue — one implementation, one contract.
func (l *LowRank) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	l.ApplyIntoEpilogue(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogue is ApplyInto with the bias add and activation folded
// into the wide back-projection through Uᵀ — the final matmul finishes
// each output row and applies the epilogue before the row leaves cache.
// Bit-for-bit act(ApplyInto(x) + bias); bias may be nil.
func (l *LowRank) ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	if x.Cols != l.N {
		panic(fmt.Sprintf("baselines: LowRank input width %d != %d", x.Cols, l.N))
	}
	if dst.Rows != x.Rows || dst.Cols != l.N {
		panic(fmt.Sprintf("baselines: LowRank ApplyIntoEpilogue dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, l.N))
	}
	xv := ws.Take(x.Rows, l.Rank)
	tensor.MatMulInto(xv, x, l.V)
	tensor.MatMulBiasActInto(dst, xv, l.ut, bias, act)
}

// Backward accumulates dU, dV and returns dX.
func (l *LowRank) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if l.xSaved == nil {
		panic("baselines: LowRank Backward before Forward")
	}
	dyU := tensor.MatMul(dY, l.U)
	tensor.AddInPlace(l.GradU, tensor.MatMul(dY.Transpose(), l.xvSaved))
	tensor.AddInPlace(l.GradV, tensor.MatMul(l.xSaved.Transpose(), dyU))
	return tensor.MatMul(dyU, l.V.Transpose())
}

// ZeroGrad clears gradients.
func (l *LowRank) ZeroGrad() {
	l.GradU.Zero()
	l.GradV.Zero()
}

// Params returns (parameter, gradient) slice pairs.
func (l *LowRank) Params() (params, grads [][]float32) {
	return [][]float32{l.U.Data, l.V.Data}, [][]float32{l.GradU.Data, l.GradV.Data}
}

// Dense materializes U·Vᵀ.
func (l *LowRank) Dense() *tensor.Matrix { return tensor.MatMul(l.U, l.V.Transpose()) }
