package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/hadamard"
	"repro/internal/tensor"
)

// Fastfood parameterizes the n×n weight as V = S·Ĥ·G·Π·Ĥ·B where S, G, B
// are learnable diagonals, Π is a fixed random permutation and Ĥ = H/√n is
// the orthonormal Walsh–Hadamard transform (Le et al., 2013). 3·n learnable
// parameters; with n=1024 the SHL totals 14,346 parameters, matching
// Table 4.
type Fastfood struct {
	N       int
	S, G, B []float32 // learnable diagonals
	Perm    []int     // fixed permutation Π

	GradS, GradG, GradB []float32

	// forward intermediates (batch×n each): after B, after first Ĥ, after
	// Π, after G, after second Ĥ
	u1, u2, u3, u4, u5 *tensor.Matrix
	xSaved             *tensor.Matrix
}

// NewFastfood builds a Fastfood layer with Gaussian-style initialization.
func NewFastfood(n int, rng *rand.Rand) *Fastfood {
	if !fft.IsPowerOfTwo(n) {
		panic(fmt.Sprintf("baselines: fastfood size %d must be a power of two", n))
	}
	f := &Fastfood{N: n,
		S: make([]float32, n), G: make([]float32, n), B: make([]float32, n),
		GradS: make([]float32, n), GradG: make([]float32, n), GradB: make([]float32, n),
		Perm: rng.Perm(n)}
	for i := 0; i < n; i++ {
		// B: random signs; G: Gaussian; S: near-1 scaling.
		if rng.Intn(2) == 0 {
			f.B[i] = 1
		} else {
			f.B[i] = -1
		}
		f.G[i] = float32(rng.NormFloat64())
		f.S[i] = 1 + float32(rng.NormFloat64())*0.1
	}
	return f
}

// ParamCount returns 3·n (S, G, B; Π and H are fixed).
func (f *Fastfood) ParamCount() int { return 3 * f.N }

// Flops counts two FWHTs (N·log2 N adds each) plus three diagonal scalings
// per row.
func (f *Fastfood) Flops(batch int) float64 {
	n := float64(f.N)
	return (2*n*float64(fft.Log2(f.N)) + 3*n) * float64(batch)
}

func scaleRows(x *tensor.Matrix, d []float32) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	scaleRowsInto(out, x, d)
	return out
}

// scaleRowsInto writes x with every row scaled element-wise by d into out;
// out may alias x.
func scaleRowsInto(out, x *tensor.Matrix, d []float32) {
	for r := 0; r < x.Rows; r++ {
		src := x.Row(r)
		dst := out.Row(r)
		for i := range src {
			dst[i] = src[i] * d[i]
		}
	}
}

func fwhtRows(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	fwhtRowsInPlace(out)
	return out
}

// fwhtRowsInPlace applies the orthonormal Walsh–Hadamard transform to
// every row of x in place — the same per-row operations fwhtRows performs
// on its copy.
func fwhtRowsInPlace(x *tensor.Matrix) {
	inv := float32(1 / math.Sqrt(float64(x.Cols)))
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		hadamard.Transform(row)
		for i := range row {
			row[i] *= inv
		}
	}
}

func permuteRows(x *tensor.Matrix, perm []int) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	permuteRowsInto(out, x, perm)
	return out
}

// permuteRowsInto writes x with columns reordered by perm into out, which
// must not alias x.
func permuteRowsInto(out, x *tensor.Matrix, perm []int) {
	for r := 0; r < x.Rows; r++ {
		src := x.Row(r)
		dst := out.Row(r)
		for i, p := range perm {
			dst[i] = src[p]
		}
	}
}

func unpermuteRows(x *tensor.Matrix, perm []int) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		src := x.Row(r)
		dst := out.Row(r)
		for i, p := range perm {
			dst[p] += src[i]
		}
	}
	return out
}

// Forward applies y_row = S·Ĥ·G·Π·Ĥ·B · x_row to every row.
func (f *Fastfood) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood input width %d != %d", x.Cols, f.N))
	}
	f.xSaved = x
	f.u1 = scaleRows(x, f.B)
	f.u2 = fwhtRows(f.u1)
	f.u3 = permuteRows(f.u2, f.Perm)
	f.u4 = scaleRows(f.u3, f.G)
	f.u5 = fwhtRows(f.u4)
	return scaleRows(f.u5, f.S)
}

// Apply is Forward without retaining state. It writes no receiver fields,
// so any number of goroutines may share one Fastfood for inference.
func (f *Fastfood) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood input width %d != %d", x.Cols, f.N))
	}
	u := scaleRows(x, f.B)
	u = fwhtRows(u)
	u = permuteRows(u, f.Perm)
	u = scaleRows(u, f.G)
	u = fwhtRows(u)
	return scaleRows(u, f.S)
}

// ApplyInto is Apply writing into caller-owned dst (shape x.Rows×N, fully
// overwritten), running the S·Ĥ·G·Π·Ĥ·B pipeline through two workspace
// buffers with in-place FWHTs. Each step performs the same arithmetic as
// Apply, so the result is bit-for-bit equal. dst must not alias x. It is
// the nil-epilogue form of ApplyIntoEpilogue — one implementation, one
// contract.
func (f *Fastfood) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	f.ApplyIntoEpilogue(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogue is ApplyInto with a fused bias add and activation
// folded into the final S-diagonal scaling — the last stage that writes
// dst — so the output leaves cache finished. act(S⊙u + bias) is computed
// with the same float32 chain as separate sweeps, so the result is
// bit-for-bit act(ApplyInto(x) + bias). bias may be nil.
func (f *Fastfood) ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	if x.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood input width %d != %d", x.Cols, f.N))
	}
	if dst.Rows != x.Rows || dst.Cols != f.N {
		panic(fmt.Sprintf("baselines: Fastfood ApplyIntoEpilogue dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, f.N))
	}
	if bias != nil && len(bias) != f.N {
		panic(fmt.Sprintf("baselines: Fastfood ApplyIntoEpilogue bias length %d != %d", len(bias), f.N))
	}
	u := ws.Take(x.Rows, f.N)
	v := ws.Take(x.Rows, f.N)
	scaleRowsInto(u, x, f.B)
	fwhtRowsInPlace(u)
	permuteRowsInto(v, u, f.Perm)
	scaleRowsInto(u, v, f.G)
	fwhtRowsInPlace(u)
	for r := 0; r < x.Rows; r++ {
		src := u.Row(r)
		out := dst.Row(r)
		for i := range src {
			val := src[i] * f.S[i]
			if bias != nil {
				val += bias[i]
			}
			out[i] = act.Apply(val)
		}
	}
}

// Backward accumulates diagonal gradients and returns dX. Ĥ is symmetric,
// so its transpose is itself; the permutation transposes to its inverse.
func (f *Fastfood) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if f.xSaved == nil {
		panic("baselines: Fastfood Backward before Forward")
	}
	// y = S ⊙ u5
	for r := 0; r < dY.Rows; r++ {
		dyr := dY.Row(r)
		u5r := f.u5.Row(r)
		for i := range dyr {
			f.GradS[i] += dyr[i] * u5r[i]
		}
	}
	d5 := scaleRows(dY, f.S)
	// u5 = Ĥ u4
	d4 := fwhtRows(d5)
	// u4 = G ⊙ u3
	for r := 0; r < d4.Rows; r++ {
		d4r := d4.Row(r)
		u3r := f.u3.Row(r)
		for i := range d4r {
			f.GradG[i] += d4r[i] * u3r[i]
		}
	}
	d3 := scaleRows(d4, f.G)
	// u3 = Π u2
	d2 := unpermuteRows(d3, f.Perm)
	// u2 = Ĥ u1
	d1 := fwhtRows(d2)
	// u1 = B ⊙ x
	for r := 0; r < d1.Rows; r++ {
		d1r := d1.Row(r)
		xr := f.xSaved.Row(r)
		for i := range d1r {
			f.GradB[i] += d1r[i] * xr[i]
		}
	}
	return scaleRows(d1, f.B)
}

// ZeroGrad clears gradients.
func (f *Fastfood) ZeroGrad() {
	for i := range f.GradS {
		f.GradS[i], f.GradG[i], f.GradB[i] = 0, 0, 0
	}
}

// Params returns (parameter, gradient) slice pairs.
func (f *Fastfood) Params() (params, grads [][]float32) {
	return [][]float32{f.S, f.G, f.B}, [][]float32{f.GradS, f.GradG, f.GradB}
}

// Dense materializes the effective matrix by pushing the identity through.
func (f *Fastfood) Dense() *tensor.Matrix {
	id := tensor.Identity(f.N)
	return f.Apply(id).Transpose()
}
