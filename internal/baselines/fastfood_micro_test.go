package baselines

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestFastfoodApplyIntoMicroMatchesReference checks the radix-8 FWHT
// apply path against the reference chain, bit-for-bit, across sizes
// spanning the n<8 fallback and the chunked regime.
func TestFastfoodApplyIntoMicroMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 8, 64, 1024} {
		f := NewFastfood(n, rand.New(rand.NewSource(52)))
		ws := tensor.NewWorkspace()
		for _, rows := range []int{1, 4} {
			x := tensor.New(rows, n)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			bias := make([]float32, n)
			for i := range bias {
				bias[i] = rng.Float32()*2 - 1
			}
			want := tensor.New(rows, n)
			got := tensor.New(rows, n)

			ws.Reset()
			f.ApplyInto(want, x, ws)
			ws.Reset()
			f.ApplyIntoMicro(got, x, ws)
			assertFastfoodSame(t, fmt.Sprintf("n=%d rows=%d ApplyIntoMicro", n, rows), want, got)

			for _, act := range []tensor.Activation{tensor.ActNone, tensor.ActReLU} {
				ws.Reset()
				f.ApplyIntoEpilogue(want, x, ws, bias, act)
				ws.Reset()
				f.ApplyIntoEpilogueMicro(got, x, ws, bias, act)
				assertFastfoodSame(t, fmt.Sprintf("n=%d rows=%d epilogue/%v", n, rows, act), want, got)
			}
		}
	}
}

func TestFastfoodMicroVariant(t *testing.T) {
	if got := NewFastfood(1024, rand.New(rand.NewSource(53))).MicroVariant(); got != "radix8" {
		t.Errorf("n=1024: MicroVariant() = %q, want radix8", got)
	}
	if got := NewFastfood(4, rand.New(rand.NewSource(54))).MicroVariant(); got != "reference" {
		t.Errorf("n=4: MicroVariant() = %q, want reference", got)
	}
}

func assertFastfoodSame(t *testing.T, op string, want, got *tensor.Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: data[%d] = %v, want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}
