package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/tensor"
)

// Circulant parameterizes the n×n weight as a circulant matrix
// W[k][t] = c[(k−t) mod n]; multiplication is circular convolution
// computed in O(N log N) via FFT. With n=1024 the SHL totals 12,298
// parameters, matching Table 4.
type Circulant struct {
	N     int
	C     []float32 // the defining vector
	GradC []float32

	// plan is the precomputed in-place FFT ApplyInto convolves through;
	// fc caches fft(C), re-derived by Refresh after optimizer steps (the
	// same hook the cached transposes of LowRank/Pixelfly use).
	plan *fft.Plan
	fc   []complex128

	xSaved *tensor.Matrix
}

// NewCirculant builds a random circulant layer (n must be a power of two
// for the FFT path — the same restriction the paper hit on the IPU).
func NewCirculant(n int, rng *rand.Rand) *Circulant {
	if !fft.IsPowerOfTwo(n) {
		panic(fmt.Sprintf("baselines: circulant size %d must be a power of two", n))
	}
	c := &Circulant{N: n, C: make([]float32, n), GradC: make([]float32, n),
		plan: fft.NewPlan(n), fc: make([]complex128, n)}
	scale := float32(1 / math.Sqrt(float64(n)))
	for i := range c.C {
		c.C[i] = (rng.Float32()*2 - 1) * scale
	}
	c.Refresh()
	return c
}

// Refresh re-derives the cached fft(C) after an optimizer step mutates C.
func (c *Circulant) Refresh() {
	for i, v := range c.C {
		c.fc[i] = complex(float64(v), 0)
	}
	c.plan.Transform(c.fc)
}

// ParamCount returns n.
func (c *Circulant) ParamCount() int { return c.N }

// Flops counts the FFT-based convolution: ~3 FFTs of 5·N·log2 N each per row.
func (c *Circulant) Flops(batch int) float64 {
	n := float64(c.N)
	return 3 * 5 * n * float64(fft.Log2(c.N)) * float64(batch)
}

// Forward convolves every row of x with the circulant vector.
func (c *Circulant) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := c.Apply(x)
	c.xSaved = x
	return out
}

// Apply is Forward without retaining state. It writes no receiver fields,
// so any number of goroutines may share one Circulant for inference.
func (c *Circulant) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.N {
		panic(fmt.Sprintf("baselines: Circulant input width %d != %d", x.Cols, c.N))
	}
	out := tensor.New(x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		copy(out.Row(r), fft.CircularConvolve(c.C, x.Row(r)))
	}
	return out
}

// ApplyInto is Apply writing into caller-owned dst (shape x.Rows×N, fully
// overwritten), convolving every row through the precomputed in-place FFT
// plan with workspace scratch. The cached fft(C) (see Refresh) is reused
// across rows; every row then sees exactly the operations of
// fft.CircularConvolve, so the result is bit-for-bit equal. dst must not
// alias x. It is the nil-epilogue form of ApplyIntoEpilogue — one
// implementation, one contract.
func (c *Circulant) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	c.ApplyIntoEpilogue(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogue is ApplyInto with a fused bias add and activation
// folded into the inverse-FFT writeback — the loop that already touches
// every output element — instead of two further sweeps over dst. The
// convolved value is produced by exactly ApplyInto's operations, so the
// result is bit-for-bit act(ApplyInto(x) + bias). bias may be nil.
func (c *Circulant) ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	if x.Cols != c.N {
		panic(fmt.Sprintf("baselines: Circulant input width %d != %d", x.Cols, c.N))
	}
	if dst.Rows != x.Rows || dst.Cols != c.N {
		panic(fmt.Sprintf("baselines: Circulant ApplyIntoEpilogue dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, c.N))
	}
	if bias != nil && len(bias) != c.N {
		panic(fmt.Sprintf("baselines: Circulant ApplyIntoEpilogue bias length %d != %d", len(bias), c.N))
	}
	n := c.N
	fc := c.fc
	row := ws.TakeComplex(n)
	for r := 0; r < x.Rows; r++ {
		src := x.Row(r)
		for i := range src {
			row[i] = complex(float64(src[i]), 0)
		}
		c.plan.Transform(row)
		// fc is the transform of C (the first CircularConvolve operand),
		// so multiply in the same operand order: fft(C)·fft(x).
		for i := range row {
			row[i] = fc[i] * row[i]
		}
		c.plan.Inverse(row)
		d := dst.Row(r)
		for i := range d {
			v := float32(real(row[i]))
			if bias != nil {
				v += bias[i]
			}
			d[i] = act.Apply(v)
		}
	}
}

// Backward: with y = C·x (C circulant), dX = Cᵀ·dY is circular correlation
// with c, and dc[m] = Σ_rows corr(x_row, dy_row)[m].
func (c *Circulant) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if c.xSaved == nil {
		panic("baselines: Circulant Backward before Forward")
	}
	dX := tensor.New(dY.Rows, dY.Cols)
	for r := 0; r < dY.Rows; r++ {
		copy(dX.Row(r), fft.CircularCorrelate(c.C, dY.Row(r)))
		dc := fft.CircularCorrelate(c.xSaved.Row(r), dY.Row(r))
		for m := range dc {
			c.GradC[m] += dc[m]
		}
	}
	return dX
}

// ZeroGrad clears gradients.
func (c *Circulant) ZeroGrad() {
	for i := range c.GradC {
		c.GradC[i] = 0
	}
}

// Params returns (parameter, gradient) slice pairs.
func (c *Circulant) Params() (params, grads [][]float32) {
	return [][]float32{c.C}, [][]float32{c.GradC}
}

// Dense materializes the circulant matrix.
func (c *Circulant) Dense() *tensor.Matrix {
	out := tensor.New(c.N, c.N)
	for k := 0; k < c.N; k++ {
		for t := 0; t < c.N; t++ {
			out.Set(k, t, c.C[(k-t+c.N)%c.N])
		}
	}
	return out
}
