package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/tensor"
)

// Circulant parameterizes the n×n weight as a circulant matrix
// W[k][t] = c[(k−t) mod n]; multiplication is circular convolution
// computed in O(N log N) via FFT. With n=1024 the SHL totals 12,298
// parameters, matching Table 4.
type Circulant struct {
	N     int
	C     []float32 // the defining vector
	GradC []float32

	xSaved *tensor.Matrix
}

// NewCirculant builds a random circulant layer (n must be a power of two
// for the FFT path — the same restriction the paper hit on the IPU).
func NewCirculant(n int, rng *rand.Rand) *Circulant {
	if !fft.IsPowerOfTwo(n) {
		panic(fmt.Sprintf("baselines: circulant size %d must be a power of two", n))
	}
	c := &Circulant{N: n, C: make([]float32, n), GradC: make([]float32, n)}
	scale := float32(1 / math.Sqrt(float64(n)))
	for i := range c.C {
		c.C[i] = (rng.Float32()*2 - 1) * scale
	}
	return c
}

// ParamCount returns n.
func (c *Circulant) ParamCount() int { return c.N }

// Flops counts the FFT-based convolution: ~3 FFTs of 5·N·log2 N each per row.
func (c *Circulant) Flops(batch int) float64 {
	n := float64(c.N)
	return 3 * 5 * n * float64(fft.Log2(c.N)) * float64(batch)
}

// Forward convolves every row of x with the circulant vector.
func (c *Circulant) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := c.Apply(x)
	c.xSaved = x
	return out
}

// Apply is Forward without retaining state. It writes no receiver fields,
// so any number of goroutines may share one Circulant for inference.
func (c *Circulant) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.N {
		panic(fmt.Sprintf("baselines: Circulant input width %d != %d", x.Cols, c.N))
	}
	out := tensor.New(x.Rows, x.Cols)
	for r := 0; r < x.Rows; r++ {
		copy(out.Row(r), fft.CircularConvolve(c.C, x.Row(r)))
	}
	return out
}

// Backward: with y = C·x (C circulant), dX = Cᵀ·dY is circular correlation
// with c, and dc[m] = Σ_rows corr(x_row, dy_row)[m].
func (c *Circulant) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if c.xSaved == nil {
		panic("baselines: Circulant Backward before Forward")
	}
	dX := tensor.New(dY.Rows, dY.Cols)
	for r := 0; r < dY.Rows; r++ {
		copy(dX.Row(r), fft.CircularCorrelate(c.C, dY.Row(r)))
		dc := fft.CircularCorrelate(c.xSaved.Row(r), dY.Row(r))
		for m := range dc {
			c.GradC[m] += dc[m]
		}
	}
	return dX
}

// ZeroGrad clears gradients.
func (c *Circulant) ZeroGrad() {
	for i := range c.GradC {
		c.GradC[i] = 0
	}
}

// Params returns (parameter, gradient) slice pairs.
func (c *Circulant) Params() (params, grads [][]float32) {
	return [][]float32{c.C}, [][]float32{c.GradC}
}

// Dense materializes the circulant matrix.
func (c *Circulant) Dense() *tensor.Matrix {
	out := tensor.New(c.N, c.N)
	for k := 0; k < c.N; k++ {
		for t := 0; t < c.N; t++ {
			out.Set(k, t, c.C[(k-t+c.N)%c.N])
		}
	}
	return out
}
