package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// transform is the common protocol of the three baselines, used to share
// gradient checks.
type transform interface {
	Forward(x *tensor.Matrix) *tensor.Matrix
	Apply(x *tensor.Matrix) *tensor.Matrix
	Backward(dY *tensor.Matrix) *tensor.Matrix
	ZeroGrad()
	Params() (params, grads [][]float32)
	Dense() *tensor.Matrix
}

func checkDenseEquivalence(t *testing.T, name string, tr transform, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(4, n)
	x.FillRandom(rng, 1)
	want := tensor.MatMul(x, tr.Dense().Transpose())
	got := tr.Apply(x)
	if !tensor.AlmostEqual(want, got, 1e-3) {
		t.Fatalf("%s: Apply != X·Denseᵀ (maxdiff %v)", name, tensor.MaxAbsDiff(want, got))
	}
}

func checkGradients(t *testing.T, name string, tr transform, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(3, n)
	x.FillRandom(rng, 1)
	r := tensor.New(3, n)
	r.FillRandom(rng, 1)
	loss := func() float64 {
		y := tr.Apply(x)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	tr.ZeroGrad()
	tr.Forward(x)
	dx := tr.Backward(r)

	// input gradient
	const h = 1e-3
	for i := 0; i < len(x.Data); i += 5 {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := loss()
		x.Data[i] = orig - h
		dn := loss()
		x.Data[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(dx.Data[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad[%d] analytic %v numeric %v", name, i, dx.Data[i], num)
		}
	}
	// weight gradients
	params, grads := tr.Params()
	for pi, pslice := range params {
		step := len(pslice)/6 + 1
		for j := 0; j < len(pslice); j += step {
			orig := pslice[j]
			pslice[j] = orig + h
			up := loss()
			pslice[j] = orig - h
			dn := loss()
			pslice[j] = orig
			num := (up - dn) / (2 * h)
			got := float64(grads[pi][j])
			if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("%s: weight grad[%d][%d] analytic %v numeric %v", name, pi, j, got, num)
			}
		}
	}
}

func TestLowRankDenseEquivalence(t *testing.T) {
	l := NewLowRank(16, 3, rand.New(rand.NewSource(1)))
	checkDenseEquivalence(t, "lowrank", l, 16, 2)
}

func TestLowRankGradients(t *testing.T) {
	l := NewLowRank(16, 2, rand.New(rand.NewSource(3)))
	checkGradients(t, "lowrank", l, 16, 4)
}

func TestLowRankParamCountTable4(t *testing.T) {
	// Table 4: LowRank at n=1024 rank 1 => 2048 structured params; with
	// bias(1024)+W2(10240)+bias(10) => 13,322 total.
	l := NewLowRank(1024, 1, rand.New(rand.NewSource(5)))
	if l.ParamCount() != 2048 {
		t.Fatalf("ParamCount = %d, want 2048", l.ParamCount())
	}
	if total := l.ParamCount() + 1024 + 10240 + 10; total != 13322 {
		t.Fatalf("SHL total = %d, want 13322", total)
	}
}

func TestLowRankDenseHasRank(t *testing.T) {
	l := NewLowRank(8, 2, rand.New(rand.NewSource(6)))
	d := l.Dense()
	// rank ≤ 2: any 3×3 minor must be (near) singular. Cheap proxy: the
	// matrix columns live in a 2-dim space, so col3 is a combination of
	// col1,col2 — verify via least squares residual on a sampled triple.
	c0 := make([]float64, 8)
	c1 := make([]float64, 8)
	c2 := make([]float64, 8)
	for i := 0; i < 8; i++ {
		c0[i] = float64(d.At(i, 0))
		c1[i] = float64(d.At(i, 1))
		c2[i] = float64(d.At(i, 2))
	}
	// Solve min ||a·c0 + b·c1 - c2|| via normal equations.
	var a00, a01, a11, b0, b1 float64
	for i := 0; i < 8; i++ {
		a00 += c0[i] * c0[i]
		a01 += c0[i] * c1[i]
		a11 += c1[i] * c1[i]
		b0 += c0[i] * c2[i]
		b1 += c1[i] * c2[i]
	}
	det := a00*a11 - a01*a01
	if math.Abs(det) < 1e-12 {
		return // degenerate but consistent with low rank
	}
	alpha := (b0*a11 - b1*a01) / det
	beta := (a00*b1 - a01*b0) / det
	var resid float64
	for i := 0; i < 8; i++ {
		r := alpha*c0[i] + beta*c1[i] - c2[i]
		resid += r * r
	}
	if resid > 1e-6 {
		t.Fatalf("rank-2 structure violated: residual %v", resid)
	}
}

func TestCirculantDenseEquivalence(t *testing.T) {
	c := NewCirculant(16, rand.New(rand.NewSource(7)))
	checkDenseEquivalence(t, "circulant", c, 16, 8)
}

func TestCirculantGradients(t *testing.T) {
	c := NewCirculant(16, rand.New(rand.NewSource(9)))
	checkGradients(t, "circulant", c, 16, 10)
}

func TestCirculantParamCountTable4(t *testing.T) {
	c := NewCirculant(1024, rand.New(rand.NewSource(11)))
	if c.ParamCount() != 1024 {
		t.Fatalf("ParamCount = %d, want 1024", c.ParamCount())
	}
	if total := c.ParamCount() + 1024 + 10240 + 10; total != 12298 {
		t.Fatalf("SHL total = %d, want 12298", total)
	}
}

func TestCirculantDenseIsCirculant(t *testing.T) {
	c := NewCirculant(8, rand.New(rand.NewSource(12)))
	d := c.Dense()
	for k := 0; k < 8; k++ {
		for t2 := 0; t2 < 8; t2++ {
			if d.At(k, t2) != d.At((k+1)%8, (t2+1)%8) {
				t.Fatalf("not circulant at (%d,%d)", k, t2)
			}
		}
	}
}

func TestCirculantRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("circulant size 12 did not panic")
		}
	}()
	NewCirculant(12, rand.New(rand.NewSource(13)))
}

func TestFastfoodDenseEquivalence(t *testing.T) {
	f := NewFastfood(16, rand.New(rand.NewSource(14)))
	checkDenseEquivalence(t, "fastfood", f, 16, 15)
}

func TestFastfoodGradients(t *testing.T) {
	f := NewFastfood(16, rand.New(rand.NewSource(16)))
	checkGradients(t, "fastfood", f, 16, 17)
}

func TestFastfoodParamCountTable4(t *testing.T) {
	f := NewFastfood(1024, rand.New(rand.NewSource(18)))
	if f.ParamCount() != 3072 {
		t.Fatalf("ParamCount = %d, want 3072", f.ParamCount())
	}
	if total := f.ParamCount() + 1024 + 10240 + 10; total != 14346 {
		t.Fatalf("SHL total = %d, want 14346", total)
	}
}

func TestFastfoodPermutationFixed(t *testing.T) {
	// Π is part of the architecture, not learnable: Params must expose
	// exactly S, G, B.
	f := NewFastfood(8, rand.New(rand.NewSource(19)))
	params, grads := f.Params()
	if len(params) != 3 || len(grads) != 3 {
		t.Fatalf("expected 3 parameter groups, got %d", len(params))
	}
	for _, p := range params {
		if len(p) != 8 {
			t.Fatalf("diagonal length %d, want 8", len(p))
		}
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	cases := []struct {
		name string
		tr   transform
	}{
		{"lowrank", NewLowRank(8, 1, rand.New(rand.NewSource(20)))},
		{"circulant", NewCirculant(8, rand.New(rand.NewSource(21)))},
		{"fastfood", NewFastfood(8, rand.New(rand.NewSource(22)))},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward did not panic", tc.name)
				}
			}()
			tc.tr.Backward(tensor.New(1, 8))
		}()
	}
}
