package factorize

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// oversample is the extra sketch width of the randomized range finder; the
// HMT analysis shows 5–10 extra columns already give near-certain capture.
const oversample = 8

// LowRankFactors is a truncated-SVD approximation W ≈ P·Q with P (m×r)
// carrying U·√Σ and Q (r×n) carrying √Σ·Vᵀ — the balanced split keeps the
// two factors equally conditioned.
type LowRankFactors struct {
	P *tensor.Matrix // m×r
	Q *tensor.Matrix // r×n
}

// Rank returns r.
func (f *LowRankFactors) Rank() int { return f.P.Cols }

// Params returns the parameter count r·(m+n).
func (f *LowRankFactors) Params() int { return f.Rank() * (f.P.Rows + f.Q.Cols) }

// Reconstruct materializes P·Q.
func (f *LowRankFactors) Reconstruct() *tensor.Matrix { return tensor.MatMulParallel(f.P, f.Q) }

// RelError measures ‖W − P·Q‖_F / ‖W‖_F against the original matrix.
func (f *LowRankFactors) RelError(w *tensor.Matrix) float64 {
	return relError(w, f.Reconstruct())
}

func relError(w, approx *tensor.Matrix) float64 {
	diff := tensor.Sub(w, approx)
	norm := w.FrobeniusNorm()
	if norm == 0 {
		return diff.FrobeniusNorm()
	}
	return diff.FrobeniusNorm() / norm
}

// sketch holds one randomized sketch of W: an orthonormal range basis Q0
// and the SVD of B = Q0ᵀ·W, from which every truncation rank's error is
// known without further passes over W.
type sketch struct {
	q0   *tensor.Matrix // m×k orthonormal
	ub   *tensor.Matrix // k×k left vectors of B
	s    []float32      // singular values of B, descending
	vb   *tensor.Matrix // n×k right vectors of B
	wFro float64        // ‖W‖_F
}

// newSketch sketches w to width k. When k reaches min(m,n) the basis spans
// the full range and the sketch is exact up to roundoff.
func newSketch(w *tensor.Matrix, k int, rng *rand.Rand) *sketch {
	var q0 *tensor.Matrix
	if k >= w.Rows {
		// Degenerate sketch: the identity basis is exact.
		q0 = tensor.Identity(w.Rows)
	} else {
		q0 = tensor.RandomizedRangeFinder(w, k, rng)
	}
	b := tensor.MatMulParallel(q0.Transpose(), w)
	ub, s, vb := tensor.JacobiSVD(b)
	return &sketch{q0: q0, ub: ub, s: s, vb: vb, wFro: w.FrobeniusNorm()}
}

// errorAt returns the relative Frobenius error of truncating the sketch to
// rank r: ‖W − Q0·B_r‖² = ‖W‖² − Σ_{i≤r} σ_i(B)².
func (sk *sketch) errorAt(r int) float64 {
	captured := 0.0
	for i := 0; i < r && i < len(sk.s); i++ {
		captured += float64(sk.s[i]) * float64(sk.s[i])
	}
	resid := sk.wFro*sk.wFro - captured
	if resid < 0 {
		resid = 0
	}
	if sk.wFro == 0 {
		return 0
	}
	return math.Sqrt(resid) / sk.wFro
}

// truncate extracts the rank-r factors P = Q0·U_B[:,:r]·√Σ, Q = √Σ·V_B[:,:r]ᵀ.
func (sk *sketch) truncate(r int) *LowRankFactors {
	m := sk.q0.Rows
	n := sk.vb.Rows
	u := tensor.MatMulParallel(sk.q0, sk.ub) // m×k, left vectors of W
	p := tensor.New(m, r)
	q := tensor.New(r, n)
	for j := 0; j < r; j++ {
		root := float32(math.Sqrt(float64(sk.s[j])))
		for i := 0; i < m; i++ {
			p.Set(i, j, u.At(i, j)*root)
		}
		for i := 0; i < n; i++ {
			q.Set(j, i, sk.vb.At(i, j)*root)
		}
	}
	return &LowRankFactors{P: p, Q: q}
}

// LowRank computes a rank-r truncated SVD of w via the randomized range
// finder (sketch width r+oversample) followed by a Jacobi SVD of the small
// projected matrix.
func LowRank(w *tensor.Matrix, rank int, rng *rand.Rand) *LowRankFactors {
	maxRank := min(w.Rows, w.Cols)
	if rank <= 0 || rank > maxRank {
		panic(fmt.Sprintf("factorize: rank %d out of range (0,%d]", rank, maxRank))
	}
	k := min(rank+oversample, maxRank)
	return newSketch(w, k, rng).truncate(rank)
}

// LowRankToTolerance returns the smallest-rank truncated SVD whose relative
// Frobenius error is ≤ eps, growing the randomized sketch geometrically
// until the target is met. It always succeeds: at full sketch width the
// factorization is exact up to roundoff.
func LowRankToTolerance(w *tensor.Matrix, eps float64, rng *rand.Rand) *LowRankFactors {
	if eps < 0 {
		panic(fmt.Sprintf("factorize: negative tolerance %v", eps))
	}
	maxRank := min(w.Rows, w.Cols)
	for k := min(16, maxRank); ; k = min(k*2, maxRank) {
		sk := newSketch(w, min(k+oversample, w.Rows), rng)
		limit := min(k, len(sk.s))
		for r := 1; r <= limit; r++ {
			if sk.errorAt(r) <= eps {
				return sk.truncate(r)
			}
		}
		if k == maxRank {
			// Nothing within tolerance even at full rank (roundoff on a
			// tiny eps): return the full-rank factorization, the best the
			// sketch can do.
			return sk.truncate(limit)
		}
	}
}
