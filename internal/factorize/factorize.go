// Package factorize converts trained dense weight matrices into structured
// compressed operators at a user-chosen error/memory trade-off — the
// post-hoc counterpart of the paper's trained-from-scratch butterfly
// layers, covering the compress-then-serve workload the repository's
// serving stack needs.
//
// Two operator families are produced:
//
//   - Truncated-SVD low-rank factorizations W ≈ P·Q, computed with the
//     in-repo linear-algebra layer of internal/tensor (Householder QR, a
//     randomized range finder with one power iteration, and a one-sided
//     Jacobi SVD — Halko, Martinsson & Tropp, SIAM Rev. 2011). The sketch
//     makes every candidate rank's error known from one pass, so the
//     tolerance search never re-reads W.
//
//   - Butterfly factorizations emitting the existing butterfly.Factor
//     chain, computed by hierarchical rank-1 block identification: peeling
//     one factor reduces to closed-form rank-1 fits of 2×(N/2) sub-blocks
//     and two half-size recursive problems (Zheng, Riccietti & Gribonval,
//     arXiv:2110.01230; error analysis in Le et al., arXiv:2411.04506; the
//     randomized matrix-vector view is Liu et al., arXiv:2002.03400).
//     Exact butterflies — e.g. the Walsh–Hadamard transform — are
//     recovered to roundoff.
//
// FactorizeToTolerance searches the smallest parameter budget meeting a
// relative Frobenius-error target across both families, falling back to
// keeping the dense matrix when no structured operator is smaller. The
// result plugs into nn.Sequential.Compress, the serving registry's
// compressed model variants, and cmd/ipucompress.
package factorize

import (
	"fmt"
	"math/rand"

	"repro/internal/butterfly"
	"repro/internal/fft"
	"repro/internal/tensor"
)

// Kind identifies the operator family of an approximation.
type Kind int

const (
	// KindDense keeps the original dense matrix (no compression won).
	KindDense Kind = iota
	// KindLowRank is a truncated-SVD factorization W ≈ P·Q.
	KindLowRank
	// KindButterfly is a butterfly factor chain.
	KindButterfly
)

func (k Kind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindLowRank:
		return "lowrank"
	case KindButterfly:
		return "butterfly"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options tune FactorizeToTolerance.
type Options struct {
	// Methods restricts the candidate families (nil = butterfly and
	// low-rank). KindDense is always available as the fallback.
	Methods []Kind
	// Seed drives the randomized sketching; a fixed seed makes the
	// factorization reproducible.
	Seed int64
}

func (o Options) allows(k Kind) bool {
	if len(o.Methods) == 0 {
		return true
	}
	for _, m := range o.Methods {
		if m == k {
			return true
		}
	}
	return false
}

// Approx is one compressed approximation of a dense matrix.
type Approx struct {
	Kind     Kind
	RelError float64 // measured ‖W − Ŵ‖_F / ‖W‖_F
	Params   int     // parameter count of the operator

	// Exactly one of the following is set for the structured kinds.
	LowRank   *LowRankFactors
	Butterfly *butterfly.Butterfly
}

// Reconstruct materializes the approximation as a dense matrix. For
// KindDense it returns nil (the original is the reconstruction).
func (a *Approx) Reconstruct() *tensor.Matrix {
	switch a.Kind {
	case KindLowRank:
		return a.LowRank.Reconstruct()
	case KindButterfly:
		return a.Butterfly.Dense()
	default:
		return nil
	}
}

// FactorizeToTolerance returns the smallest-parameter approximation of w
// whose relative Frobenius error is ≤ eps. Candidates are the butterfly
// factorization (square power-of-two matrices; fixed 2·N·log₂N budget),
// the minimal-rank truncated SVD meeting eps, and the dense fallback
// (zero error, full budget) — so the call always succeeds, and the result
// never has more parameters than the dense matrix itself.
func FactorizeToTolerance(w *tensor.Matrix, eps float64, opts Options) (*Approx, error) {
	if eps < 0 {
		return nil, fmt.Errorf("factorize: negative tolerance %v", eps)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	best := &Approx{Kind: KindDense, RelError: 0, Params: w.NumElements()}

	if opts.allows(KindButterfly) && w.Rows == w.Cols && w.Rows >= 2 && fft.IsPowerOfTwo(w.Rows) {
		bf, err := ButterflyFactorize(w)
		if err != nil {
			return nil, err
		}
		cand := &Approx{Kind: KindButterfly, Butterfly: bf,
			RelError: relError(w, bf.Dense()), Params: bf.ParamCount()}
		best = better(best, cand, eps)
	}
	if opts.allows(KindLowRank) {
		lr := LowRankToTolerance(w, eps, rng)
		cand := &Approx{Kind: KindLowRank, LowRank: lr,
			RelError: lr.RelError(w), Params: lr.Params()}
		best = better(best, cand, eps)
	}
	return best, nil
}

// better keeps the smaller-budget candidate among those meeting eps,
// breaking parameter ties toward lower error.
func better(cur, cand *Approx, eps float64) *Approx {
	if cand.RelError > eps {
		return cur
	}
	if cand.Params < cur.Params || (cand.Params == cur.Params && cand.RelError < cur.RelError) {
		return cand
	}
	return cur
}
