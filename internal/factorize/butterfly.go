package factorize

import (
	"fmt"
	"math"

	"repro/internal/butterfly"
	"repro/internal/fft"
	"repro/internal/tensor"
)

// ButterflyFactorize approximates a square power-of-two matrix M by a
// butterfly chain B_logN···B_1 (identity permutation) using hierarchical
// rank-1 block identification: peeling the outermost factor reduces to
// independent best rank-1 approximations of 2×(N/2) sub-blocks of M, and
// the two diagonal residual blocks are size-N/2 butterflies factorized
// recursively (Zheng, Riccietti & Gribonval, arXiv:2110.01230; the error
// behaviour of the recursive scheme is analysed in Le et al.,
// arXiv:2411.04506). The result reuses the existing butterfly.Factor
// chain, so it runs on the IPU cost model and the serving stack unchanged.
// Matrices that admit an exact identity-permutation butterfly
// factorization (e.g. the Walsh–Hadamard transform) are recovered exactly
// up to roundoff.
func ButterflyFactorize(m *tensor.Matrix) (*butterfly.Butterfly, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, fmt.Errorf("factorize: butterfly needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if n < 2 || !fft.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("factorize: butterfly needs a power-of-two size >= 2, got %d", n)
	}
	b := butterfly.NewIdentity(n, butterfly.Dense2x2)
	butterflyBlock(m, b, 0)
	return b, nil
}

// butterflyBlock factorizes the q×q matrix w (a diagonal block of the full
// target occupying rows/cols [rowOff, rowOff+q)) into stages 1..log2(q) of
// b. Pair indices of stage s within the block are [rowOff/2, (rowOff+q)/2)
// because the Factor enumerates pairs block-by-block.
func butterflyBlock(w *tensor.Matrix, b *butterfly.Butterfly, rowOff int) {
	q := w.Rows
	stage := b.Factors[fft.Log2(q)-1]
	pairBase := rowOff / 2
	if q == 2 {
		// A single 2×2 block is its own (exact) stage-1 factor.
		stage.A[pairBase] = w.At(0, 0)
		stage.B[pairBase] = w.At(0, 1)
		stage.C[pairBase] = w.At(1, 0)
		stage.D[pairBase] = w.At(1, 1)
		return
	}
	half := q / 2
	top := tensor.New(half, half) // residual Y block for rows [0,half)
	bot := tensor.New(half, half) // residual Y block for rows [half,q)
	for t := 0; t < half; t++ {
		// Left sub-block: rows {t, t+half} × cols [0, half). Its best
		// rank-1 fit u·vᵀ yields the (A,C) entries of the outer factor and
		// row t of the top residual.
		u0, u1, v := bestRank1Pair(w, t, t+half, 0, half)
		p := pairBase + t
		stage.A[p] = u0
		stage.C[p] = u1
		copy(top.Row(t), v)
		// Right sub-block: rows {t, t+half} × cols [half, q) gives (B,D)
		// and row t of the bottom residual.
		u0, u1, v = bestRank1Pair(w, t, t+half, half, q)
		stage.B[p] = u0
		stage.D[p] = u1
		copy(bot.Row(t), v)
	}
	butterflyBlock(top, b, rowOff)
	butterflyBlock(bot, b, rowOff+half)
}

// bestRank1Pair computes the best rank-1 approximation u·vᵀ of the 2×w
// sub-block rows {r0, r1} × cols [c0, c1) of m, returning u = (u0, u1)
// with ‖u‖ = 1 and v = uᵀ·M (so the approximation is u·v). The leading
// eigenvector of the 2×2 Gram matrix M·Mᵀ is available in closed form.
func bestRank1Pair(m *tensor.Matrix, r0, r1, c0, c1 int) (u0, u1 float32, v []float32) {
	row0 := m.Row(r0)[c0:c1]
	row1 := m.Row(r1)[c0:c1]
	var a, bb, c float64 // Gram matrix [a b; b c]
	for i := range row0 {
		x, y := float64(row0[i]), float64(row1[i])
		a += x * x
		bb += x * y
		c += y * y
	}
	var e0, e1 float64 // leading eigenvector of the Gram matrix
	if bb == 0 {
		if a >= c {
			e0, e1 = 1, 0
		} else {
			e0, e1 = 0, 1
		}
	} else {
		// λ = (a+c)/2 + sqrt(((a−c)/2)² + b²); eigenvector (b, λ−a).
		diff := (a - c) / 2
		lambda := (a+c)/2 + math.Hypot(diff, bb)
		e0, e1 = bb, lambda-a
		norm := math.Hypot(e0, e1)
		e0 /= norm
		e1 /= norm
	}
	v = make([]float32, c1-c0)
	for i := range v {
		v[i] = float32(e0*float64(row0[i]) + e1*float64(row1[i]))
	}
	return float32(e0), float32(e1), v
}
