package factorize

import (
	"math/rand"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/tensor"
)

// randomOrthogonal returns a random n×n orthogonal matrix (QR of a
// Gaussian).
func randomOrthogonal(n int, rng *rand.Rand) *tensor.Matrix {
	q, _ := tensor.HouseholderQR(tensor.GaussianMatrix(n, n, rng))
	return q
}

func TestButterflyFactorizeHadamardExact(t *testing.T) {
	// The Walsh–Hadamard transform is an exact identity-permutation
	// butterfly (paper Eq. 1): the hierarchical factorization must recover
	// it to roundoff.
	for _, n := range []int{2, 4, 16, 64} {
		h := butterfly.NewHadamard(n).Dense()
		bf, err := ButterflyFactorize(h)
		if err != nil {
			t.Fatal(err)
		}
		if e := relError(h, bf.Dense()); e > 1e-5 {
			t.Fatalf("n=%d: Hadamard reconstruction error %v", n, e)
		}
	}
}

func TestButterflyFactorizeRoundTrip(t *testing.T) {
	// Any identity-permutation butterfly must round-trip exactly: its
	// recursive sub-blocks are rank-1 by construction.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 32, 128} {
		src := butterfly.New(n, butterfly.Dense2x2, rng)
		src.Perm = nil // identity permutation variant
		w := src.Dense()
		bf, err := ButterflyFactorize(w)
		if err != nil {
			t.Fatal(err)
		}
		if e := relError(w, bf.Dense()); e > 1e-4 {
			t.Fatalf("n=%d: butterfly round-trip error %v", n, e)
		}
		if got, want := bf.ParamCount(), src.ParamCount(); got != want {
			t.Fatalf("n=%d: params %d != %d", n, got, want)
		}
	}
}

func TestButterflyFactorizeRejectsBadShapes(t *testing.T) {
	if _, err := ButterflyFactorize(tensor.New(3, 3)); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := ButterflyFactorize(tensor.New(4, 8)); err == nil {
		t.Fatal("rectangular accepted")
	}
	if _, err := ButterflyFactorize(tensor.New(1, 1)); err == nil {
		t.Fatal("1x1 accepted")
	}
}

func TestLowRankExactOnLowRankMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := tensor.GaussianMatrix(48, 3, rng)
	v := tensor.GaussianMatrix(3, 40, rng)
	w := tensor.MatMul(u, v)
	lr := LowRank(w, 3, rng)
	if e := lr.RelError(w); e > 1e-4 {
		t.Fatalf("rank-3 matrix not recovered at rank 3: error %v", e)
	}
	if lr.Params() != 3*(48+40) {
		t.Fatalf("params = %d", lr.Params())
	}
}

func TestLowRankToToleranceMeetsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, eps := range []float64{0.5, 0.2, 0.05, 0.01} {
		w := tensor.GaussianMatrix(64, 64, rng)
		lr := LowRankToTolerance(w, eps, rng)
		if e := lr.RelError(w); e > eps*1.01 { // 1% slack for fp roundoff
			t.Fatalf("eps=%v: achieved error %v", eps, e)
		}
	}
}

func TestLowRankToleranceIsMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := tensor.GaussianMatrix(48, 48, rng)
	loose := LowRankToTolerance(w, 0.5, rng)
	tight := LowRankToTolerance(w, 0.05, rng)
	if loose.Rank() >= tight.Rank() {
		t.Fatalf("loose tolerance rank %d should be below tight rank %d",
			loose.Rank(), tight.Rank())
	}
}

func TestFactorizeToToleranceOrthogonal(t *testing.T) {
	// A random orthogonal matrix has a flat spectrum: low-rank cannot
	// compress it, so the search must still meet the tolerance (via the
	// dense fallback or a full-rank factorization) without exceeding the
	// dense budget.
	rng := rand.New(rand.NewSource(9))
	w := randomOrthogonal(32, rng)
	for _, eps := range []float64{0.3, 0.05} {
		a, err := FactorizeToTolerance(w, eps, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.RelError > eps*1.01 {
			t.Fatalf("eps=%v: error %v over tolerance", eps, a.RelError)
		}
		if a.Params > w.NumElements() {
			t.Fatalf("eps=%v: params %d exceed dense %d", eps, a.Params, w.NumElements())
		}
	}
}

func TestFactorizeToTolerancePicksButterflyWhenExact(t *testing.T) {
	// For a Hadamard-like matrix the butterfly is exact with the smallest
	// budget, so the search must choose it.
	h := butterfly.NewHadamard(32).Dense()
	a, err := FactorizeToTolerance(h, 0.01, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindButterfly {
		t.Fatalf("kind = %v, want butterfly (params=%d err=%v)", a.Kind, a.Params, a.RelError)
	}
	if a.RelError > 1e-4 {
		t.Fatalf("butterfly error %v", a.RelError)
	}
}

func TestFactorizeToTolerancePicksLowRankWhenCheaper(t *testing.T) {
	// A rank-1 matrix: low-rank needs 2·n parameters, far below the
	// butterfly's 2·n·log2 n.
	rng := rand.New(rand.NewSource(10))
	u := tensor.GaussianMatrix(64, 1, rng)
	v := tensor.GaussianMatrix(1, 64, rng)
	w := tensor.MatMul(u, v)
	a, err := FactorizeToTolerance(w, 0.01, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != KindLowRank || a.LowRank.Rank() != 1 {
		t.Fatalf("kind = %v rank-%d, want rank-1 lowrank", a.Kind, a.LowRank.Rank())
	}
}

func TestFactorizeToToleranceRespectsMethodFilter(t *testing.T) {
	h := butterfly.NewHadamard(16).Dense()
	a, err := FactorizeToTolerance(h, 0.01, Options{Seed: 4, Methods: []Kind{KindLowRank}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind == KindButterfly {
		t.Fatal("butterfly chosen despite method filter")
	}
	if a.RelError > 0.01*1.01 {
		t.Fatalf("error %v over tolerance", a.RelError)
	}
}
