package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestStdConstantSeries(t *testing.T) {
	if got := Std([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("Std of constants = %v, want 0", got)
	}
}

func TestStdKnown(t *testing.T) {
	// population std of {2,4,4,4,5,5,7,9} is exactly 2
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Std(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", got)
	}
}

func TestStdShort(t *testing.T) {
	if got := Std([]float64{3}); got != 0 {
		t.Fatalf("Std of single element = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2.0, 1.0); got != 2.0 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
}

func TestCompressionRatioPaperValue(t *testing.T) {
	// Paper: butterfly 16390 params vs baseline 1059850 -> 98.5% compression.
	got := CompressionRatio(1059850, 16390)
	if !almostEqual(got, 0.985, 0.001) {
		t.Fatalf("CompressionRatio = %v, want ~0.985", got)
	}
}

func TestGFlops(t *testing.T) {
	// 2e9 flops in 1 second = 2 GFLOP/s.
	if got := GFlops(2e9, 1.0); got != 2.0 {
		t.Fatalf("GFlops = %v, want 2", got)
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		62.5e12: "62.5T",
		933e9:   "933G",
		1.5e6:   "1.5M",
		2048:    "2.05k",
		12:      "12",
	}
	for in, want := range cases {
		if got := FormatSI(in); got != want {
			t.Errorf("FormatSI(%v) = %q, want %q", in, got, want)
		}
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // avoid overflow in the sum; not the property under test
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9*math.Abs(Min(xs))-1e-9 &&
			m <= Max(xs)+1e-9*math.Abs(Max(xs))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: std is translation invariant.
func TestStdTranslationInvariantProperty(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) < 2 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			clean = append(clean, x)
		}
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		a, b := Std(clean), Std(shifted)
		return almostEqual(a, b, 1e-6*(1+math.Abs(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		xs   []float32
		want int
	}{
		{nil, -1},
		{[]float32{}, -1},
		{[]float32{3}, 0},
		{[]float32{1, 5, 2}, 1},
		{[]float32{-4, -1, -9}, 1},
		{[]float32{2, 7, 7, 3}, 1}, // first index wins ties
		{[]float32{9, 1, 2}, 0},
		{[]float32{0, 0, 1}, 2},
	}
	for i, c := range cases {
		if got := ArgMax(c.xs); got != c.want {
			t.Errorf("case %d: ArgMax(%v) = %d, want %d", i, c.xs, got, c.want)
		}
	}
}
