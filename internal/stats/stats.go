// Package stats provides small numeric helpers used by the benchmark
// harness: means, standard deviations, extrema, speedups and compression
// ratios. All functions operate on float64 slices and are deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs
// (divide by N, matching numpy.std's default, which the paper uses).
// It returns 0 for slices with fewer than two elements.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs without modifying the input.
// It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// Percentile returns the p-th percentile of xs (p in [0,100]) using linear
// interpolation between closest ranks, without modifying the input. It
// panics on an empty slice or a p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile %v outside [0,100]", p))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

// percentileSorted interpolates the p-th percentile of an already-sorted,
// non-empty slice.
func percentileSorted(sorted []float64, p float64) float64 {
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the order statistics a latency report needs: count, mean,
// extrema and the p50/p95/p99 tail percentiles.
type Summary struct {
	Count         int
	Mean          float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of xs. The zero Summary is returned for an
// empty slice, so callers can report "no traffic yet" without panicking.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return Summary{
		Count: len(cp),
		Mean:  Mean(cp),
		Min:   cp[0],
		Max:   cp[len(cp)-1],
		P50:   percentileSorted(cp, 50),
		P95:   percentileSorted(cp, 95),
		P99:   percentileSorted(cp, 99),
	}
}

// ArgMax returns the index of the largest element of xs (the first such
// index on ties), or -1 for an empty slice. It is the class-selection rule
// of the serving path, shared so every consumer breaks ties identically.
func ArgMax(xs []float32) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Speedup returns baseline/candidate, the conventional "×" factor: values
// above 1 mean candidate is faster than baseline. It panics when candidate
// is zero.
func Speedup(baseline, candidate float64) float64 {
	if candidate == 0 {
		panic("stats: Speedup with zero candidate time")
	}
	return baseline / candidate
}

// CompressionRatio returns the fraction of parameters removed relative to
// the baseline, e.g. 0.985 for the paper's 98.5% butterfly compression.
func CompressionRatio(baselineParams, compressedParams int) float64 {
	if baselineParams <= 0 {
		panic("stats: CompressionRatio with non-positive baseline")
	}
	return 1 - float64(compressedParams)/float64(baselineParams)
}

// GFlops converts a floating point operation count and a duration in
// seconds into GFLOP/s.
func GFlops(flops float64, seconds float64) float64 {
	if seconds <= 0 {
		panic("stats: GFlops with non-positive time")
	}
	return flops / seconds / 1e9
}

// FormatSI renders a value with an SI suffix (k, M, G, T) using 3 significant
// digits, e.g. 62.5e12 -> "62.5T".
func FormatSI(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return trimZeros(v/1e12) + "T"
	case abs >= 1e9:
		return trimZeros(v/1e9) + "G"
	case abs >= 1e6:
		return trimZeros(v/1e6) + "M"
	case abs >= 1e3:
		return trimZeros(v/1e3) + "k"
	default:
		return trimZeros(v)
	}
}

func trimZeros(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	return s
}
