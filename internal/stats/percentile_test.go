package stats

import (
	"math"
	"testing"
)

func TestPercentileKnown(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15},
		{25, 20},
		{50, 35},
		{100, 50},
		{40, 29}, // rank 1.6: 20 + 0.6·(35−20)
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleElement(t *testing.T) {
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("Percentile of singleton = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, c := range []struct {
		name string
		f    func()
	}{
		{"empty", func() { Percentile(nil, 50) }},
		{"negative", func() { Percentile([]float64{1}, -1) }},
		{"over100", func() { Percentile([]float64{1}, 101) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestSummarizeMatchesPercentile(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64((i*7919 + 13) % 1000) // deterministic shuffle of 0..999
	}
	s := Summarize(xs)
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Min != 0 || s.Max != 999 {
		t.Fatalf("Min/Max = %v/%v, want 0/999", s.Min, s.Max)
	}
	for _, c := range []struct {
		got, p float64
	}{{s.P50, 50}, {s.P95, 95}, {s.P99, 99}} {
		if want := Percentile(xs, c.p); c.got != want {
			t.Errorf("Summary p%v = %v, Percentile = %v", c.p, c.got, want)
		}
	}
	if math.Abs(s.Mean-Mean(xs)) > 1e-9 {
		t.Errorf("Summary mean = %v, want %v", s.Mean, Mean(xs))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero value", s)
	}
}
