package bench

import (
	"fmt"

	"repro/internal/nn"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Hyperparameters for the SHL benchmark",
		Run:   runTable3,
	})
}

func runTable3(Options) (*Result, error) {
	h := nn.PaperHyperparams()
	res := &Result{
		ID:      "table3",
		Title:   "Hyperparameters for the SHL benchmark (as trained by this repo)",
		Headers: []string{"hyperparameter", "value"},
		Rows: [][]string{
			{"Learning rate", fmt.Sprint(h.LearningRate)},
			{"Optimizer", h.Optimizer},
			{"Batch size", fmt.Sprint(h.BatchSize)},
			{"Momentum", fmt.Sprint(h.Momentum)},
			{"Activation function", h.Activation},
			{"Loss function", h.Loss},
			{"Validation set", fmt.Sprintf("%.0f%% of training set", h.ValFraction*100)},
		},
	}
	return res, nil
}
