package bench

import (
	"fmt"

	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "IPU memory usage vs matrix-multiply problem size",
		Run:   runFig5,
	})
}

func runFig5(opt Options) (*Result, error) {
	cfg := ipu.GC200()
	res := &Result{
		ID:    "fig5",
		Title: "How MM problem size affects edges, variables, vertices and free memory",
		Headers: []string{"N", "compute sets", "vertices", "edges",
			"variables [MB]", "overhead [MB]", "total [MB]", "free [MB]"},
	}
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	if opt.Quick {
		sizes = []int{128, 256, 512}
	}
	for _, n := range sizes {
		w := ipu.BuildDenseMatMul(cfg, n, n, n, ipu.MMPoplin)
		c, err := ipu.Compile(w.Graph)
		if err != nil {
			res.Rows = append(res.Rows, []string{fmt.Sprint(n), "OOM", "", "", "", "", "", ""})
			continue
		}
		total := float64(c.Device.Total()) / 1e6
		vars := float64(c.Device.Variables) / 1e6
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(c.NumComputeSets),
			fmt.Sprint(c.NumVertices),
			fmt.Sprint(c.NumEdges),
			f2(vars),
			f2(total - vars),
			f2(total),
			f2(float64(c.FreeBytes()) / 1e6),
		})
	}
	res.Notes = append(res.Notes,
		"Observation 3: overhead (vertex/edge/exchange/control code) grows beyond the data footprint")
	return res, nil
}
