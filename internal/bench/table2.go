package bench

import (
	"repro/internal/gpu"
	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Dense vs sparse MM on GPU vs IPU (GFLOP/s, N=2048)",
		Run:   runTable2,
	})
}

// paperTable2 records the measured GFLOP/s from the paper for side-by-side
// comparison in the output.
var paperTable2 = map[string]float64{
	"GPU naive":         1091,
	"GPU shmem":         2076,
	"GPU cublas (FP32)": 9722,
	"GPU cublas (TF32)": 59312,
	"IPU naive":         525,
	"IPU blocked":       93,
	"IPU poplin":        44219,
	"PyTorch (FP32)":    9286,
	"PyTorch (TF32)":    58146,
	"PopTorch":          1677,
	"GPU cusparse 99%":  93215,
	"GPU cusparse 90%":  10817,
	"IPU popsparse 99%": 76231,
	"IPU popsparse 90%": 22845,
}

func runTable2(opt Options) (*Result, error) {
	n := 2048
	if opt.Quick {
		n = 512
	}
	gcfg := gpu.A30()
	icfg := ipu.GC200()
	res := &Result{
		ID:      "table2",
		Title:   "Performance of dense vs sparse matrices on GPU vs IPU (GFLOP/s)",
		Headers: []string{"implementation", "measured", "paper", "note"},
	}
	add := func(name string, gf float64, note string) {
		res.Rows = append(res.Rows, []string{name, f0(gf), f0(paperTable2[name]), note})
	}

	// GPU dense.
	for _, c := range []struct {
		label string
		algo  gpu.MMAlgo
		torch bool
	}{
		{"GPU naive", gpu.AlgoNaive, false},
		{"GPU shmem", gpu.AlgoShmem, false},
		{"GPU cublas (FP32)", gpu.AlgoCublas, false},
		{"GPU cublas (TF32)", gpu.AlgoCublasTC, false},
		{"PyTorch (FP32)", gpu.AlgoCublas, true},
		{"PyTorch (TF32)", gpu.AlgoCublasTC, true},
	} {
		r, err := gpu.Run(gcfg, gpu.MatMul(gcfg, n, n, n, c.algo), gpu.RunOptions{PyTorch: c.torch})
		if err != nil {
			return nil, err
		}
		add(c.label, r.GFlops(), "")
	}

	// IPU dense.
	for _, c := range []struct {
		label    string
		variant  ipu.MatMulVariant
		popTorch bool
	}{
		{"IPU naive", ipu.MMNaive, false},
		{"IPU blocked", ipu.MMBlocked, false},
		{"IPU poplin", ipu.MMPoplin, false},
		{"PopTorch", ipu.MMPoplin, true},
	} {
		r, err := ipu.Run(ipu.BuildDenseMatMul(icfg, n, n, n, c.variant), ipu.RunOptions{PopTorch: c.popTorch})
		if err != nil {
			return nil, err
		}
		note := ""
		if c.popTorch {
			note = "includes host copies"
		}
		add(c.label, r.GFlops(), note)
	}

	// Sparse (dense-equivalent GFLOP/s, starred in the paper when above peak).
	for _, c := range []struct {
		label   string
		density float64
	}{
		{"GPU cusparse 99%", 0.01},
		{"GPU cusparse 90%", 0.10},
	} {
		r, err := gpu.Run(gcfg, gpu.SparseMM(gcfg, n, c.density), gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		add(c.label, r.DenseEquivGFlops(), "dense-equivalent")
	}
	for _, c := range []struct {
		label   string
		density float64
	}{
		{"IPU popsparse 99%", 0.01},
		{"IPU popsparse 90%", 0.10},
	} {
		r, err := ipu.Run(ipu.BuildSparseMM(icfg, n, c.density), ipu.RunOptions{})
		if err != nil {
			return nil, err
		}
		add(c.label, r.DenseEquivGFlops(), "dense-equivalent")
	}
	res.Notes = append(res.Notes,
		"peaks: GPU FP32 10300, GPU TF32 82000, IPU 62500 GFLOP/s",
		"sparse rows report dense-equivalent rates (2N^3/time) and may exceed peak")
	if opt.Quick {
		res.Notes = append(res.Notes, "quick mode: N=512 instead of the paper's 2048")
	}
	return res, nil
}
