package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/factorize"
	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func init() {
	register(Experiment{
		ID:    "frontier",
		Title: "Error-vs-memory frontier: post-hoc factorization vs. trained-from-scratch",
		Run:   runFrontier,
	})
}

// frontierBatch is the batch size the modelled IPU memory is priced at.
const frontierBatch = 8

// FrontierConfig sizes the frontier experiment.
type FrontierConfig struct {
	N       int
	Classes int
	Epochs  int
	Ranks   []int // low-rank sweep
	Dataset dataset.Config
}

// FullFrontierConfig uses the paper's 1024-wide layer.
func FullFrontierConfig() FrontierConfig {
	return FrontierConfig{N: 1024, Classes: 10, Epochs: 8,
		Ranks: []int{1, 16, 64, 256}, Dataset: dataset.CIFAR10Config()}
}

// QuickFrontierConfig is a miniature for tests.
func QuickFrontierConfig() FrontierConfig {
	return FrontierConfig{N: 64, Classes: 4, Epochs: 3,
		Ranks: []int{1, 4, 16},
		Dataset: dataset.Config{
			Name: "quick", Classes: 4, Side: 8,
			Train: 400, Test: 120, ValFraction: 0.15,
			AtomsPerClass: 4, BlobsPerClass: 2,
			NoiseStd: 0.4, GainStd: 0.4, Seed: 5,
		}}
}

// FrontierRow is one operating point of the error/memory trade-off.
type FrontierRow struct {
	Label       string
	Params      int     // whole-model parameter count
	WeightBytes int     // 4·Params
	DeviceBytes int     // modelled IPU memory of the N×N layer program
	RelError    float64 // ‖W₁ᵀ − Ŵ‖_F/‖W₁ᵀ‖, <0 when not applicable
	Accuracy    float64 // test accuracy of the full model
}

func frontierRelErr(target, approx *tensor.Matrix) float64 {
	return tensor.Sub(target, approx).FrobeniusNorm() / target.FrobeniusNorm()
}

// RunFrontier trains the dense SHL, factorizes its first layer post hoc at
// several budgets (butterfly + a low-rank sweep), trains the paper's
// butterfly SHL from scratch at the same size, and reports each point's
// parameters, modelled IPU memory, weight-approximation error and test
// accuracy. Exported so tests can consume structured rows.
func RunFrontier(cfg FrontierConfig, seed int64) ([]FrontierRow, error) {
	ds := dataset.Generate(cfg.Dataset)
	icfg := ipu.GC200()
	tc := nn.PaperTrainConfig(cfg.Epochs)
	tc.Seed = seed

	rng := rand.New(rand.NewSource(seed))
	dense := nn.BuildSHL(nn.Baseline, cfg.N, cfg.Classes, rng)
	nn.Train(dense, ds, tc)
	w1 := dense.Layers[0].(*nn.Dense).W
	target := w1.Transpose() // the column-operator the factorizations fit
	head := dense.Layers[2]  // shared dense classifier (inference only)

	deviceOf := func(w *ipu.Workload) (int, error) {
		c, err := ipu.Compile(w.Graph)
		if err != nil {
			return 0, err
		}
		return c.Device.Total(), nil
	}

	var rows []FrontierRow
	addRow := func(label string, model *nn.Sequential, w *ipu.Workload, relErr float64) error {
		dev, err := deviceOf(w)
		if err != nil {
			return fmt.Errorf("frontier %s: %w", label, err)
		}
		rows = append(rows, FrontierRow{
			Label: label, Params: model.ParamCount(), WeightBytes: model.SizeBytes(),
			DeviceBytes: dev, RelError: relErr,
			Accuracy: nn.Evaluate(model, ds.XTest, ds.YTest),
		})
		return nil
	}

	if err := addRow("dense (baseline)", dense,
		ipu.BuildLinear(icfg, cfg.N, frontierBatch), 0); err != nil {
		return nil, err
	}

	// Post-hoc butterfly of the trained weight.
	bf, err := factorize.ButterflyFactorize(target)
	if err != nil {
		return nil, err
	}
	bfLayer := nn.NewStructuredLinear("butterfly*", cfg.N, bf)
	copy(bfLayer.Bias, dense.Layers[0].(*nn.Dense).Bias)
	bfModel := nn.NewSequential(bfLayer, nn.NewReLU(), head)
	if err := addRow("post-hoc butterfly", bfModel,
		ipu.BuildButterflyMM(icfg, cfg.N, frontierBatch),
		frontierRelErr(target, bf.Dense())); err != nil {
		return nil, err
	}

	// Post-hoc low-rank sweep.
	for _, r := range cfg.Ranks {
		lrRng := rand.New(rand.NewSource(seed + int64(r)))
		f := factorize.LowRank(target, r, lrRng)
		lr := baselines.NewLowRankFromFactors(f.P, f.Q.Transpose())
		layer := nn.NewStructuredLinear("lowrank*", cfg.N, lr)
		copy(layer.Bias, dense.Layers[0].(*nn.Dense).Bias)
		model := nn.NewSequential(layer, nn.NewReLU(), head)
		if err := addRow(fmt.Sprintf("post-hoc low-rank r=%d", r), model,
			ipu.BuildLowRank(icfg, cfg.N, r, frontierBatch),
			f.RelError(target)); err != nil {
			return nil, err
		}
	}

	// The paper's trained-from-scratch butterfly SHL at the same size: it
	// does not approximate W₁, so no weight error applies.
	scratchRng := rand.New(rand.NewSource(seed))
	scratch := nn.BuildSHL(nn.Butterfly, cfg.N, cfg.Classes, scratchRng)
	stc := tc
	stc.Seed = seed + 1
	nn.Train(scratch, ds, stc)
	if err := addRow("scratch butterfly (SHL)", scratch,
		ipu.BuildButterflyMM(icfg, cfg.N, frontierBatch), -1); err != nil {
		return nil, err
	}

	return rows, nil
}

func runFrontier(opt Options) (*Result, error) {
	cfg := FullFrontierConfig()
	if opt.Quick {
		cfg = QuickFrontierConfig()
	}
	rows, err := RunFrontier(cfg, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID: "frontier",
		Title: fmt.Sprintf("error-vs-memory frontier (%s, n=%d, batch %d)",
			cfg.Dataset.Name, cfg.N, frontierBatch),
		Headers: []string{"operator", "NParams", "weights [KiB]",
			"IPU mem [KiB]", "rel err W1", "acc [%]"},
	}
	for _, r := range rows {
		relErr := "-"
		if r.RelError >= 0 {
			relErr = fmt.Sprintf("%.4f", r.RelError)
		}
		res.Rows = append(res.Rows, []string{
			r.Label,
			fmt.Sprint(r.Params),
			f2(float64(r.WeightBytes) / 1024),
			f2(float64(r.DeviceBytes) / 1024),
			relErr,
			f2(r.Accuracy * 100),
		})
	}
	res.Notes = append(res.Notes,
		"post-hoc rows factorize the trained dense W1 (internal/factorize); no fine-tuning",
		"scratch butterfly trains the paper's SHL directly — the accuracy post-hoc",
		"  compression competes against at a comparable memory budget")
	return res, nil
}
