package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/gpu"
	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/pixelfly"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Title: "Single-Hidden-Layer benchmark on synthetic CIFAR-10",
		Run:   runTable4,
	})
}

// table4Iterations matches the paper's 1000 measured iterations.
const table4Iterations = 1000

// auxGPUOps counts the non-W1 kernel launches of one training iteration
// (activation fwd/bwd, loss, optimizer, zero_grad).
const auxGPUOps = 8

// auxIPUSteps counts the non-W1 compute-set steps of one PopTorch training
// iteration.
const auxIPUSteps = 10

// gpuIterationSeconds composes a full training iteration on the GPU model:
// 3× the W1 forward kernels (fwd, input grad, weight grad), 3× the W2
// GEMM, plus auxiliary framework ops.
func gpuIterationSeconds(cfg gpu.Config, w1 gpu.Seq, n, batch, classes int, tc bool) (float64, error) {
	opts := gpu.RunOptions{PyTorch: true}
	r1, err := gpu.Run(cfg, w1, opts)
	if err != nil {
		return 0, err
	}
	algo := gpu.AlgoCublas
	if tc {
		algo = gpu.AlgoCublasTC
	}
	r2, err := gpu.Run(cfg, gpu.MatMul(cfg, batch, n, classes, algo), opts)
	if err != nil {
		return 0, err
	}
	aux := float64(auxGPUOps) * (cfg.KernelLaunchSec + cfg.PyTorchDispatchSec)
	return 3*r1.Seconds + 3*r2.Seconds + aux, nil
}

// ipuIterationSeconds composes a full PopTorch training iteration.
func ipuIterationSeconds(cfg ipu.Config, w1 *ipu.Workload, n, batch, classes int) (float64, error) {
	r1, err := ipu.Run(w1, ipu.RunOptions{PopTorch: true})
	if err != nil {
		return 0, err
	}
	w2 := ipu.BuildDenseMatMul(cfg, batch, n, classes, ipu.MMPoplin)
	r2, err := ipu.Run(w2, ipu.RunOptions{PopTorch: true})
	if err != nil {
		return 0, err
	}
	hostBytes := float64(batch * n * 4) // the input batch streams in each step
	return ipu.PopTorchTrainStep([]ipu.RunResult{r1, r2}, hostBytes, auxIPUSteps), nil
}

// methodLayerGPU builds the W1 forward kernel sequence for a method.
func methodLayerGPU(cfg gpu.Config, m nn.Method, n, batch int, pix pixelfly.Config, tc bool) gpu.Seq {
	switch m {
	case nn.Baseline:
		return gpu.Linear(cfg, n, batch, tc)
	case nn.Butterfly:
		return gpu.Butterfly(cfg, n, batch)
	case nn.Fastfood:
		return gpu.FastfoodSeq(cfg, n, batch)
	case nn.Circulant:
		return gpu.CirculantSeq(cfg, n, batch)
	case nn.LowRank:
		return gpu.LowRankSeq(cfg, n, 1, batch, tc)
	case nn.Pixelfly:
		return gpu.Pixelfly(cfg, pix, batch, tc)
	}
	panic("unknown method")
}

// methodLayerIPU builds the W1 workload for a method.
func methodLayerIPU(cfg ipu.Config, m nn.Method, n, batch int, pix pixelfly.Config) *ipu.Workload {
	switch m {
	case nn.Baseline:
		return ipu.BuildLinear(cfg, n, batch)
	case nn.Butterfly:
		return ipu.BuildButterflyMM(cfg, n, batch)
	case nn.Fastfood:
		return ipu.BuildFastfood(cfg, n, batch)
	case nn.Circulant:
		return ipu.BuildCirculant(cfg, n, batch)
	case nn.LowRank:
		return ipu.BuildLowRank(cfg, n, 1, batch)
	case nn.Pixelfly:
		return ipu.BuildPixelflyMM(cfg, pix, batch)
	}
	panic("unknown method")
}

// Table4Config lets tests shrink the training problem.
type Table4Config struct {
	N       int
	Classes int
	Epochs  int
	Dataset dataset.Config
}

// FullTable4Config reproduces the paper's setup: 1024-dim inputs,
// 10 classes, Table 3 hyperparameters.
func FullTable4Config() Table4Config {
	return Table4Config{N: 1024, Classes: 10, Epochs: 8, Dataset: dataset.CIFAR10Config()}
}

// QuickTable4Config is a miniature for tests.
func QuickTable4Config() Table4Config {
	return Table4Config{N: 256, Classes: 4, Epochs: 2,
		Dataset: dataset.Config{
			Name: "quick", Classes: 4, Side: 16,
			Train: 400, Test: 120, ValFraction: 0.15,
			AtomsPerClass: 4, BlobsPerClass: 2,
			NoiseStd: 0.4, GainStd: 0.4, Seed: 3,
		}}
}

// Table4Row is one method's full Table 4 record.
type Table4Row struct {
	Method   nn.Method
	NParams  int
	Accuracy float64 // test accuracy (device-independent in this repro)
	SecGPUTC float64
	SecGPU   float64
	SecIPU   float64
}

// RunTable4 trains every method and computes the simulated training times.
// Exported so benchmarks and tests can consume structured rows.
func RunTable4(cfg Table4Config, seed int64) ([]Table4Row, error) {
	ds := dataset.Generate(cfg.Dataset)
	gcfg := gpu.A30()
	icfg := ipu.GC200()
	batch := nn.PaperHyperparams().BatchSize
	var pix pixelfly.Config
	if cfg.N == 1024 {
		pix = nn.PaperPixelflyConfig(cfg.N) // exactly Table 4's 404,490 params
	} else {
		pix = Fig6PixelflyConfig(cfg.N)
	}

	var rows []Table4Row
	for _, m := range nn.AllMethods {
		rng := rand.New(rand.NewSource(seed))
		var model *nn.Sequential
		if m == nn.Pixelfly {
			var err error
			model, err = nn.BuildSHLPixelfly(pix, cfg.Classes, rng)
			if err != nil {
				return nil, err
			}
		} else {
			model = nn.BuildSHL(m, cfg.N, cfg.Classes, rng)
		}
		tc := nn.PaperTrainConfig(cfg.Epochs)
		tc.Seed = seed + int64(m)
		tr := nn.Train(model, ds, tc)

		row := Table4Row{Method: m, NParams: model.ParamCount(), Accuracy: tr.TestAccuracy}
		var err error
		row.SecGPU, err = gpuIterationSeconds(gcfg,
			methodLayerGPU(gcfg, m, cfg.N, batch, pix, false), cfg.N, batch, cfg.Classes, false)
		if err != nil {
			return nil, err
		}
		row.SecGPUTC, err = gpuIterationSeconds(gcfg,
			methodLayerGPU(gcfg, m, cfg.N, batch, pix, true), cfg.N, batch, cfg.Classes, true)
		if err != nil {
			return nil, err
		}
		row.SecIPU, err = ipuIterationSeconds(icfg,
			methodLayerIPU(icfg, m, cfg.N, batch, pix), cfg.N, batch, cfg.Classes)
		if err != nil {
			return nil, err
		}
		row.SecGPU *= table4Iterations
		row.SecGPUTC *= table4Iterations
		row.SecIPU *= table4Iterations
		rows = append(rows, row)
	}
	return rows, nil
}

func runTable4(opt Options) (*Result, error) {
	cfg := FullTable4Config()
	if opt.Quick {
		cfg = QuickTable4Config()
	}
	rows, err := RunTable4(cfg, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "table4",
		Title: fmt.Sprintf("SHL benchmark (%s, n=%d): accuracy, parameters, training time", cfg.Dataset.Name, cfg.N),
		Headers: []string{"method", "NParams", "acc [%]",
			"t GPU+TC [s]", "t GPU [s]", "t IPU [s]", "IPU vs GPU"},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Method.String(),
			fmt.Sprint(r.NParams),
			f2(r.Accuracy * 100),
			f2(r.SecGPUTC), f2(r.SecGPU), f2(r.SecIPU),
			f2(r.SecGPU / r.SecIPU),
		})
	}
	res.Notes = append(res.Notes,
		"accuracy from real SGD training on the synthetic dataset (device-independent here;",
		"  the paper's <1.5% cross-device spread comes from fp nondeterminism)",
		"times = 1000 simulated training iterations on the machine models",
		"paper shape: IPU ~1.6x faster for butterfly; ~1.3x slower for pixelfly; fastfood slowest on IPU")
	return res, nil
}
