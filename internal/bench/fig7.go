package bench

import (
	"fmt"

	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Number of compute sets on the IPU vs square matrix dimension",
		Run:   runFig7,
	})
}

func runFig7(opt Options) (*Result, error) {
	cfg := ipu.GC200()
	res := &Result{
		ID:    "fig7",
		Title: "Compute sets / vertices / variables / memory per method and size",
		Headers: []string{"method", "N", "compute sets", "vertices", "edges",
			"variables", "total mem [MB]"},
	}
	sizes := []int{256, 512, 1024, 2048}
	if opt.Quick {
		sizes = []int{256, 512}
	}
	batch := 64
	for _, n := range sizes {
		type entry struct {
			name string
			w    *ipu.Workload
		}
		entries := []entry{
			{"linear", ipu.BuildLinear(cfg, n, batch)},
			{"butterfly", ipu.BuildButterflyMM(cfg, n, batch)},
			{"pixelfly", ipu.BuildPixelflyMM(cfg, Fig6PixelflyConfig(n), batch)},
		}
		for _, e := range entries {
			c, err := ipu.Compile(e.w.Graph)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s N=%d: %w", e.name, n, err)
			}
			res.Rows = append(res.Rows, []string{
				e.name, fmt.Sprint(n),
				fmt.Sprint(c.NumComputeSets),
				fmt.Sprint(c.NumVertices),
				fmt.Sprint(c.NumEdges),
				fmt.Sprint(c.NumVariables),
				f2(float64(c.Device.Total()) / 1e6),
			})
		}
	}
	res.Notes = append(res.Notes,
		"compute sets correlate with variables/edges/vertices and hence memory (Section 4.1)",
		"pixelfly's framework-lowering compute sets and temporaries drive its IPU memory cost")
	return res, nil
}
