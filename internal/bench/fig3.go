package bench

import (
	"fmt"

	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Latency and bandwidth between IPU-Tiles vs physical proximity",
		Run:   runFig3,
	})
}

func runFig3(opt Options) (*Result, error) {
	cfg := ipu.GC200()
	res := &Result{
		ID:    "fig3",
		Title: "Tile-to-tile exchange: neighbouring pair (0,1) vs distant pair (0,644)",
		Headers: []string{"size [B]", "lat near [µs]", "lat far [µs]",
			"bw near [GB/s]", "bw far [GB/s]"},
	}
	sizes := []int{8, 64, 512, 4096, 32768, 262144, 524288}
	if opt.Quick {
		sizes = sizes[:5]
	}
	for _, sz := range sizes {
		near, err := ipu.ExchangeMicrobench(cfg, 0, 1, sz)
		if err != nil {
			return nil, err
		}
		far, err := ipu.ExchangeMicrobench(cfg, 0, 644, sz)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(sz),
			fmt.Sprintf("%.3f", near.LatencySeconds*1e6),
			fmt.Sprintf("%.3f", far.LatencySeconds*1e6),
			fmt.Sprintf("%.2f", near.BandwidthBytesPerSec/1e9),
			fmt.Sprintf("%.2f", far.BandwidthBytesPerSec/1e9),
		})
	}
	res.Notes = append(res.Notes,
		"Observation 1: cost depends on size only — near and far columns are identical")
	return res, nil
}
