package bench

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Skewed matrix multiply on GPU vs IPU",
		Run:   runFig4,
	})
}

// runFig4 sweeps the skewness ratio s = m/n of A(m×k)·B(k×n) at constant
// FLOP count (m·n held fixed) and reports GFLOP/s for GPU FP32, GPU TF32
// and the IPU.
func runFig4(opt Options) (*Result, error) {
	base := 1024
	if opt.Quick {
		base = 256
	}
	gcfg := gpu.A30()
	icfg := ipu.GC200()
	res := &Result{
		ID:      "fig4",
		Title:   "Skewed MM at constant FLOPs: A(m×k)·B(k×n), skew = m/n",
		Headers: []string{"skew", "m", "n", "GPU FP32 [GF]", "GPU TF32 [GF]", "IPU [GF]"},
	}
	exps := []int{-12, -8, -4, 0, 4, 8, 12} // skew exponents; m = base·2^(e/2)
	if opt.Quick {
		exps = []int{-8, 0, 8}
	}
	for _, e := range exps {
		j := e / 2
		m, n := base, base
		if j >= 0 {
			m <<= uint(j)
			n >>= uint(j)
		} else {
			m >>= uint(-j)
			n <<= uint(-j)
		}
		if m < 1 || n < 1 {
			continue
		}
		fp32, err := gpu.Run(gcfg, gpu.MatMul(gcfg, m, base, n, gpu.AlgoCublas), gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		tf32, err := gpu.Run(gcfg, gpu.MatMul(gcfg, m, base, n, gpu.AlgoCublasTC), gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		ipuRes, err := ipu.Run(ipu.BuildDenseMatMul(icfg, m, base, n, ipu.MMPoplin), ipu.RunOptions{})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("2^%d", e), fmt.Sprint(m), fmt.Sprint(n),
			f0(fp32.GFlops()), f0(tf32.GFlops()), f0(ipuRes.GFlops()),
		})
	}
	res.Notes = append(res.Notes,
		"paper Fig. 4: GPU loses at high aspect ratios (TC faster still), IPU stays stable")
	return res, nil
}
