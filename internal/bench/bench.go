// Package bench regenerates every table and figure of the paper's
// evaluation. Each experiment produces a Result (an ASCII table with the
// same rows/series the paper reports) from the machine models
// (internal/ipu, internal/gpu) and from real training runs of the nn stack
// on the synthetic datasets.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks problem sizes and epoch counts so the whole suite runs
	// in seconds (used by tests); the full-scale run matches the paper's
	// dimensions.
	Quick bool
	// Seed drives every randomized component.
	Seed int64
	// MaxShards caps the shard-count sweep of the shardwall experiment
	// (0 = 64).
	MaxShards int
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 42} }

// Result is a rendered experiment.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the result as an aligned ASCII table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns an experiment by id (e.g. "table2", "fig6").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments in stable order.
func All() []Experiment {
	var out []Experiment
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs lists registered ids in stable order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string   { return fmt.Sprintf("%.0f", v) }
func ms(sec float64) string { return fmt.Sprintf("%.3f", sec*1e3) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
