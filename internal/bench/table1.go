package bench

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/ipu"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Comparison of Graphcore GC200 and NVIDIA A30",
		Run:   runTable1,
	})
}

func runTable1(Options) (*Result, error) {
	g := gpu.A30()
	i := ipu.GC200()
	res := &Result{
		ID:      "table1",
		Title:   "Comparison of Graphcore GC200 and NVIDIA A30",
		Headers: []string{"", "A30", "GC200"},
	}
	add := func(k, a, b string) { res.Rows = append(res.Rows, []string{k, a, b}) }
	add("Number of cores", fmt.Sprint(g.CUDACores), fmt.Sprint(i.Tiles))
	add("On-chip memory", "10.75 MB", fmt.Sprintf("%.0f MB", float64(i.TotalMemBytes())/1e6))
	add("On-chip memory bandwidth", "5.5 TB/s",
		fmt.Sprintf("%.1f TB/s", float64(i.Tiles)*32*i.ClockHz/1e12)) // tile-local loads
	add("Off-chip memory", fmt.Sprintf("%d GB", g.DeviceMemBytes>>30), "64 GB (streaming)")
	add("Off-chip memory bandwidth", fmt.Sprintf("%.0f GB/s", g.MemBandwidth/1e9), "20 GB/s")
	add("FP32 peak compute", fmt.Sprintf("%.1f TFLOPS", g.FP32PeakFlops/1e12),
		fmt.Sprintf("%.1f TFLOPS", i.PeakFlops()/1e12))
	add("TF32 peak compute", fmt.Sprintf("%.0f TFLOPS", g.TF32PeakFlops/1e12), "-")
	add("Clock frequency", fmt.Sprintf("%.2f GHz", g.ClockHz/1e9), fmt.Sprintf("%.3f GHz", i.ClockHz/1e9))
	add("Exchange (all-to-all)", "-", fmt.Sprintf("%.1f TB/s", i.ExchangeAggregateBytesPerSec()/1e12))
	res.Notes = append(res.Notes,
		"paper Table 1 values; derived model figures shown where the model computes them")
	return res, nil
}
