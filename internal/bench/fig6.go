package bench

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/ipu"
	"repro/internal/pixelfly"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "torch.nn.Linear vs butterfly vs pixelfly across matrix dimension N",
		Run:   runFig6,
	})
}

// Fig6PixelflyConfig scales the pixelfly knobs with N the way the layer
// benchmark does: blocks of N/32 over a 32-node butterfly network with a
// modest low-rank term.
func Fig6PixelflyConfig(n int) pixelfly.Config {
	bs := n / 32
	if bs < 2 {
		bs = 2
	}
	bfs := 32
	if bfs > n/bs {
		bfs = n / bs
	}
	r := n / 128
	if r < 1 {
		r = 1
	}
	return pixelfly.Config{N: n, BlockSize: bs, ButterflySize: bfs, LowRank: r}
}

func runFig6(opt Options) (*Result, error) {
	devs := []device.Device{
		device.GPU{Cfg: gpu.A30()},
		device.GPU{Cfg: gpu.A30(), TensorCores: true},
		device.IPU{Cfg: ipu.GC200(), DeviceLoop: true},
	}
	res := &Result{
		ID:    "fig6",
		Title: "Layer execution time [ms] (batch = N, as in the paper)",
		Headers: []string{"device", "N", "linear", "butterfly", "pixelfly",
			"bf speedup", "pf speedup"},
	}
	lo, hi := 7, 13
	if opt.Quick {
		lo, hi = 7, 10
	}
	for _, dev := range devs {
		for e := lo; e <= hi; e++ {
			n := 1 << e
			lin, errLin := dev.LayerForward(device.LayerSpec{Kind: device.Linear, N: n, Batch: n})
			bf, errBf := dev.LayerForward(device.LayerSpec{Kind: device.Butterfly, N: n, Batch: n})
			pf, errPf := dev.LayerForward(device.LayerSpec{
				Kind: device.Pixelfly, N: n, Batch: n, Pix: Fig6PixelflyConfig(n)})
			if errLin != nil {
				res.Rows = append(res.Rows, []string{dev.Name(), fmt.Sprintf("2^%d", e),
					"OOM", "", "", "", ""})
				continue
			}
			if errBf != nil || errPf != nil {
				return nil, fmt.Errorf("fig6: %v / %v", errBf, errPf)
			}
			res.Rows = append(res.Rows, []string{
				dev.Name(), fmt.Sprintf("2^%d", e),
				ms(lin.Seconds), ms(bf.Seconds), ms(pf.Seconds),
				f2(lin.Seconds / bf.Seconds), f2(lin.Seconds / pf.Seconds),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper: GPU worst-case degradation 14.45x (butterfly) / 8.8x (pixelfly), break-even N=2^11",
		"paper: IPU worst-case 1.4x / 1.03x, break-even N=2^10, max speedup 1.6x / 1.3x",
		"speedup = t(linear)/t(method); >1 means the factorization wins")
	return res, nil
}
