package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/pixelfly"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table5",
		Title: "Pixelfly parameter sweep on the IPU (mean ± std per varied knob)",
		Run:   runTable5,
	})
}

// SweepSpec is one Table 5 group: vary one knob, hold the others.
type SweepSpec struct {
	Varied  string
	Configs []pixelfly.Config
}

// Table5Sweeps builds the three sweep groups around a baseline
// configuration on an n-wide layer.
func Table5Sweeps(n int) []SweepSpec {
	base := pixelfly.Config{N: n, BlockSize: n / 16, ButterflySize: 16, LowRank: 8}
	var bf, bl, lr []pixelfly.Config
	for _, v := range []int{2, 4, 8, 16, 32} {
		c := base
		c.ButterflySize = v
		bf = append(bf, c)
	}
	for _, v := range []int{n / 64, n / 32, n / 16, n / 8} {
		if v < 2 {
			continue
		}
		c := base
		c.BlockSize = v
		bl = append(bl, c)
	}
	for _, v := range []int{2, 8, 32, 128} {
		if v > n {
			continue
		}
		c := base
		c.LowRank = v
		lr = append(lr, c)
	}
	return []SweepSpec{
		{Varied: "butterfly size", Configs: bf},
		{Varied: "block size", Configs: bl},
		{Varied: "low-rank size", Configs: lr},
	}
}

// Table5Group is the aggregated result of one sweep.
type Table5Group struct {
	Varied                string
	TimeMean, TimeStd     float64 // seconds per 1000 iterations
	AccMean, AccStd       float64 // percent
	ParamsMean, ParamsStd float64
}

// RunTable5 trains and times every configuration in each sweep group.
func RunTable5(n, classes, epochs int, ds *dataset.Split, seed int64) ([]Table5Group, error) {
	icfg := ipu.GC200()
	batch := nn.PaperHyperparams().BatchSize
	var groups []Table5Group
	for _, sw := range Table5Sweeps(n) {
		var times, accs, params []float64
		for _, pc := range sw.Configs {
			if err := pc.Validate(); err != nil {
				return nil, fmt.Errorf("table5 %s: %w", sw.Varied, err)
			}
			rng := rand.New(rand.NewSource(seed))
			model, err := nn.BuildSHLPixelfly(pc, classes, rng)
			if err != nil {
				return nil, err
			}
			tc := nn.PaperTrainConfig(epochs)
			tc.Seed = seed
			tr := nn.Train(model, ds, tc)

			iter, err := ipuIterationSeconds(icfg,
				ipu.BuildPixelflyMM(icfg, pc, batch), n, batch, classes)
			if err != nil {
				return nil, err
			}
			times = append(times, iter*table4Iterations)
			accs = append(accs, tr.TestAccuracy*100)
			params = append(params, float64(model.ParamCount()))
		}
		groups = append(groups, Table5Group{
			Varied:   sw.Varied,
			TimeMean: stats.Mean(times), TimeStd: stats.Std(times),
			AccMean: stats.Mean(accs), AccStd: stats.Std(accs),
			ParamsMean: stats.Mean(params), ParamsStd: stats.Std(params),
		})
	}
	return groups, nil
}

func runTable5(opt Options) (*Result, error) {
	n, classes, epochs := 1024, 10, 3
	dcfg := dataset.CIFAR10Config()
	dcfg.Train = 2400 // keep the 13-config sweep tractable
	dcfg.Test = 600
	if opt.Quick {
		n, classes, epochs = 256, 4, 1
		dcfg = dataset.Config{
			Name: "quick", Classes: 4, Side: 16,
			Train: 300, Test: 100, ValFraction: 0.15,
			AtomsPerClass: 3, BlobsPerClass: 1,
			NoiseStd: 0.4, GainStd: 0.4, Seed: 5,
		}
	}
	ds := dataset.Generate(dcfg)
	groups, err := RunTable5(n, classes, epochs, ds, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:      "table5",
		Title:   "Mean and std of metrics when varying pixelfly parameters on the IPU",
		Headers: []string{"varied", "metric", "mean", "std"},
	}
	for _, g := range groups {
		res.Rows = append(res.Rows,
			[]string{g.Varied, "Time [s]", f2(g.TimeMean), f2(g.TimeStd)},
			[]string{g.Varied, "Accuracy [%]", f2(g.AccMean), f2(g.AccStd)},
			[]string{g.Varied, "NParams", f0(g.ParamsMean), f0(g.ParamsStd)},
		)
	}
	res.Notes = append(res.Notes,
		"paper Table 5 shape: block size dominates time std (192), low-rank barely moves time (18)",
		"  but dominates accuracy std (2.7); butterfly size dominates NParams std (184,638)")
	return res, nil
}
