package bench

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/nn"
)

func quickOpts() Options { return Options{Quick: true, Seed: 7} }

func mustRunExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "frontier",
		"shardwall", "table1", "table2", "table3", "table4", "table5"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("table99"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestRenderContainsHeadersAndRows(t *testing.T) {
	res := mustRunExp(t, "table1")
	out := res.Render()
	if !strings.Contains(out, "GC200") || !strings.Contains(out, "A30") {
		t.Fatalf("render missing device names:\n%s", out)
	}
	if !strings.Contains(out, "table1") {
		t.Fatal("render missing experiment id")
	}
}

func TestTable1HasSpecRows(t *testing.T) {
	res := mustRunExp(t, "table1")
	if len(res.Rows) < 8 {
		t.Fatalf("table1 rows = %d, want >= 8", len(res.Rows))
	}
}

func cell(t *testing.T, res *Result, rowLabel, colHeader string) float64 {
	t.Helper()
	col := -1
	for i, h := range res.Headers {
		if h == colHeader {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no column %q in %v", colHeader, res.Headers)
	}
	for _, row := range res.Rows {
		if row[0] == rowLabel {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("cell %s/%s = %q not numeric", rowLabel, colHeader, row[col])
			}
			return v
		}
	}
	t.Fatalf("no row %q", rowLabel)
	return 0
}

func TestTable2Shape(t *testing.T) {
	res := mustRunExp(t, "table2")
	if len(res.Rows) != 14 {
		t.Fatalf("table2 rows = %d, want 14", len(res.Rows))
	}
	// Orderings the paper's Table 2 establishes.
	naive := cell(t, res, "GPU naive", "measured")
	cublas := cell(t, res, "GPU cublas (FP32)", "measured")
	tf32 := cell(t, res, "GPU cublas (TF32)", "measured")
	if !(tf32 > cublas && cublas > naive) {
		t.Fatalf("GPU ordering broken: %v / %v / %v", naive, cublas, tf32)
	}
	ipuNaive := cell(t, res, "IPU naive", "measured")
	ipuBlocked := cell(t, res, "IPU blocked", "measured")
	poplin := cell(t, res, "IPU poplin", "measured")
	popTorch := cell(t, res, "PopTorch", "measured")
	if !(poplin > ipuNaive && ipuNaive > ipuBlocked) {
		t.Fatalf("IPU ordering broken: %v / %v / %v", ipuNaive, ipuBlocked, poplin)
	}
	if popTorch >= poplin {
		t.Fatal("PopTorch should be far below raw poplin")
	}
	// IPU poplin beats GPU cublas FP32 (the paper's headline dense result).
	if poplin <= cublas {
		t.Fatalf("IPU poplin (%v) should beat GPU cublas FP32 (%v)", poplin, cublas)
	}
}

func TestFig3DistanceIndependence(t *testing.T) {
	res := mustRunExp(t, "fig3")
	for _, row := range res.Rows {
		if row[1] != row[2] {
			t.Fatalf("near/far latency differ: %v", row)
		}
		if row[3] != row[4] {
			t.Fatalf("near/far bandwidth differ: %v", row)
		}
	}
}

func TestFig4IPUMoreStableThanGPU(t *testing.T) {
	res := mustRunExp(t, "fig4")
	// Compare the most-skewed row to the square row for GPU FP32 and IPU.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	first := res.Rows[0]
	var square []string
	for _, row := range res.Rows {
		if row[0] == "2^0" {
			square = row
		}
	}
	if square == nil {
		t.Fatal("no square row")
	}
	gpuRel := parse(first[3]) / parse(square[3])
	ipuRel := parse(first[5]) / parse(square[5])
	if !(ipuRel > gpuRel) {
		t.Fatalf("IPU should be more skew-stable: IPU rel %v vs GPU rel %v", ipuRel, gpuRel)
	}
	if ipuRel < 0.5 {
		t.Fatalf("IPU lost too much under skew: %v", ipuRel)
	}
}

func TestFig5MemoryGrows(t *testing.T) {
	res := mustRunExp(t, "fig5")
	var prevTotal, prevFree float64
	for i, row := range res.Rows {
		total, err1 := strconv.ParseFloat(row[6], 64)
		free, err2 := strconv.ParseFloat(row[7], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if i > 0 {
			if total <= prevTotal {
				t.Fatal("total memory must grow with N")
			}
			if free >= prevFree {
				t.Fatal("free memory must shrink with N")
			}
		}
		prevTotal, prevFree = total, free
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	res := mustRunExp(t, "fig6")
	// For the GPU w/o TC device, butterfly speedup must increase with N.
	var speedups []float64
	for _, row := range res.Rows {
		if row[0] != "A30" {
			continue
		}
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad speedup cell %v", row)
		}
		speedups = append(speedups, v)
	}
	if len(speedups) < 3 {
		t.Fatalf("too few A30 rows: %v", speedups)
	}
	if speedups[0] >= 0.3 {
		t.Fatalf("small-N butterfly should lose heavily on GPU: %v", speedups[0])
	}
	if speedups[len(speedups)-1] <= speedups[0] {
		t.Fatal("butterfly speedup must grow with N on the GPU")
	}
}

func TestFig7PixelflyHeavierThanButterfly(t *testing.T) {
	res := mustRunExp(t, "fig7")
	// At the same N, pixelfly must report at least as many compute sets
	// and more variables than butterfly.
	perN := map[string]map[string][]string{}
	for _, row := range res.Rows {
		if perN[row[1]] == nil {
			perN[row[1]] = map[string][]string{}
		}
		perN[row[1]][row[0]] = row
	}
	for n, methods := range perN {
		bf, okB := methods["butterfly"]
		pf, okP := methods["pixelfly"]
		if !okB || !okP {
			t.Fatalf("missing rows for N=%s", n)
		}
		bfMem, err1 := strconv.ParseFloat(bf[6], 64)
		pfMem, err2 := strconv.ParseFloat(pf[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad memory cells %v / %v", bf, pf)
		}
		if pfMem <= bfMem {
			t.Fatalf("N=%s: pixelfly memory (%v MB) should exceed butterfly (%v MB)", n, pfMem, bfMem)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res := mustRunExp(t, "table3")
	want := map[string]string{
		"Learning rate": "0.001",
		"Optimizer":     "SGD",
		"Batch size":    "50",
		"Momentum":      "0.9",
	}
	for _, row := range res.Rows {
		if w, ok := want[row[0]]; ok && row[1] != w {
			t.Fatalf("%s = %s, want %s", row[0], row[1], w)
		}
	}
}

func TestTable4QuickShape(t *testing.T) {
	rows, err := RunTable4(QuickTable4Config(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byMethod := map[nn.Method]Table4Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	base := byMethod[nn.Baseline]
	bf := byMethod[nn.Butterfly]
	// Compression: butterfly removes > 95% of the baseline parameters even
	// at the miniature size.
	if float64(bf.NParams) > 0.05*float64(base.NParams) {
		t.Fatalf("butterfly %d params vs baseline %d: compression too weak", bf.NParams, base.NParams)
	}
	// The paper's timing signs: butterfly trains faster on the IPU than on
	// the GPU; pixelfly and fastfood are slower on the IPU.
	if !(bf.SecIPU < bf.SecGPU) {
		t.Fatalf("butterfly should be faster on IPU: %v vs %v", bf.SecIPU, bf.SecGPU)
	}
	pf := byMethod[nn.Pixelfly]
	if !(pf.SecIPU > pf.SecGPU) {
		t.Fatalf("pixelfly should be slower on IPU: %v vs %v", pf.SecIPU, pf.SecGPU)
	}
	ff := byMethod[nn.Fastfood]
	if !(ff.SecIPU > ff.SecGPU) {
		t.Fatalf("fastfood should be slower on IPU: %v vs %v", ff.SecIPU, ff.SecGPU)
	}
	// The dense baseline trains faster on the IPU (paper: 24.7s vs 49.5s).
	if !(base.SecIPU < base.SecGPU) {
		t.Fatalf("baseline should be faster on IPU: %v vs %v", base.SecIPU, base.SecGPU)
	}
	// Tensor cores help the baseline but not butterfly (no dense GEMM).
	if !(base.SecGPUTC < base.SecGPU) {
		t.Fatal("TC should accelerate the dense baseline")
	}
}

func TestTable5QuickShape(t *testing.T) {
	res := mustRunExp(t, "table5")
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 groups × 3 metrics)", len(res.Rows))
	}
	std := map[string]map[string]float64{}
	for _, row := range res.Rows {
		if std[row[1]] == nil {
			std[row[1]] = map[string]float64{}
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad std cell %v", row)
		}
		std[row[1]][row[0]] = v
	}
	// Paper Table 5: block size dominates the time std; low-rank size
	// barely moves time.
	if !(std["Time [s]"]["block size"] > std["Time [s]"]["low-rank size"]) {
		t.Fatalf("time std: block (%v) should exceed low-rank (%v)",
			std["Time [s]"]["block size"], std["Time [s]"]["low-rank size"])
	}
}

func TestFrontierQuickShape(t *testing.T) {
	cfg := QuickFrontierConfig()
	rows, err := RunFrontier(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3+len(cfg.Ranks) {
		t.Fatalf("rows = %d, want %d", len(rows), 3+len(cfg.Ranks))
	}
	dense := rows[0]
	if dense.RelError != 0 {
		t.Fatalf("dense rel err = %v, want 0", dense.RelError)
	}
	for _, r := range rows[1:] {
		// Every factorized point must cost less modelled IPU memory and
		// fewer parameters than the dense baseline.
		if r.DeviceBytes >= dense.DeviceBytes {
			t.Fatalf("%s: device bytes %d not below dense %d", r.Label, r.DeviceBytes, dense.DeviceBytes)
		}
		if r.Params >= dense.Params {
			t.Fatalf("%s: params %d not below dense %d", r.Label, r.Params, dense.Params)
		}
	}
	// The low-rank sweep's weight error must fall as rank grows.
	var prev = math.Inf(1)
	for _, r := range rows {
		if !strings.HasPrefix(r.Label, "post-hoc low-rank") {
			continue
		}
		if r.RelError >= prev {
			t.Fatalf("low-rank error not decreasing with rank: %+v", rows)
		}
		prev = r.RelError
	}
}

func TestFig6PixelflyConfigValid(t *testing.T) {
	for _, n := range []int{64, 128, 1024, 8192} {
		if err := Fig6PixelflyConfig(n).Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestShardWallDenseNeedsMoreIPUs checks the sweep's headline: at every
// width the dense SHL never needs fewer IPUs than the butterfly SHL, and
// at the widest swept width it needs strictly more.
func TestShardWallDenseNeedsMoreIPUs(t *testing.T) {
	res := mustRunExp(t, "shardwall")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	parse := func(cell string) int {
		v, err := strconv.Atoi(strings.TrimPrefix(cell, ">"))
		if err != nil {
			t.Fatalf("bad shard cell %q", cell)
		}
		return v
	}
	// Columns: N, Baseline ipus, MB, Butterfly ipus, MB, ...
	last := res.Rows[len(res.Rows)-1]
	for _, row := range res.Rows {
		dense, bf := parse(row[1]), parse(row[3])
		if dense < bf {
			t.Fatalf("N=%s: dense fits on %d IPUs but butterfly needs %d", row[0], dense, bf)
		}
	}
	if dense, bf := parse(last[1]), parse(last[3]); dense <= bf {
		t.Fatalf("widest width: dense %d IPUs should exceed butterfly %d", dense, bf)
	}
}
