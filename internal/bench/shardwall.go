package bench

import (
	"fmt"

	"repro/internal/fft"
	"repro/internal/nn"
	"repro/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "shardwall",
		Title: "Sharded memory wall: IPUs needed per SHL width",
		Run:   runShardWall,
	})
}

// shardWallBatch is the serving batch the per-IPU footprint is priced at.
const shardWallBatch = 64

// shlSpecLayers describes the SHL of one method at width n by per-layer
// byte counts (Table 4's parameter formulas), without materializing any
// weights — which is the point: the sweep walks widths whose dense matrix
// alone would be tens of host gigabytes.
func shlSpecLayers(method nn.Method, n, classes int) []shard.SpecLayer {
	logN := fft.Log2(n)
	var first shard.SpecLayer
	switch method {
	case nn.Baseline:
		first = shard.SpecLayer{OutW: n, WeightBytes: 4 * (n*n + n), Splittable: true}
	case nn.Butterfly:
		first = shard.SpecLayer{OutW: n,
			WeightBytes:     4 * (n/2*logN + n),
			ReplicatedBytes: 8 * n, // bit-reversal permutation table
			Splittable:      true}
	case nn.Pixelfly:
		cfg := nn.PaperPixelflyConfig(n)
		blocks := len(cfg.SupportBlocks()) * cfg.BlockSize * cfg.BlockSize
		first = shard.SpecLayer{OutW: n,
			WeightBytes:     4 * (blocks + n*cfg.LowRank + n),
			ReplicatedBytes: 4 * n * cfg.LowRank, // V factor
			Splittable:      n%cfg.BlockSize == 0}
	case nn.Fastfood:
		first = shard.SpecLayer{OutW: n, WeightBytes: 4 * (3*n + n), Splittable: false}
	case nn.Circulant:
		first = shard.SpecLayer{OutW: n, WeightBytes: 4 * (n + n), Splittable: false}
	case nn.LowRank:
		first = shard.SpecLayer{OutW: n,
			WeightBytes:     4 * (n + n), // rank-1 U + bias
			ReplicatedBytes: 4 * n,       // V factor
			Splittable:      true}
	default:
		panic(fmt.Sprintf("bench: no spec layers for %v", method))
	}
	return []shard.SpecLayer{
		first,
		{OutW: n, Splittable: true}, // ReLU
		{OutW: classes, WeightBytes: 4 * (n*classes + classes), Splittable: true},
	}
}

// runShardWall reports, per method and SHL width, the smallest power-of-
// two shard count at which the per-IPU footprint first fits one GC200's
// SRAM — the multi-chip extension of the memory-wall experiment: dense
// layers hit the wall and must gang chips; the structured methods stay
// single-chip far past it.
func runShardWall(opt Options) (*Result, error) {
	maxShards := opt.MaxShards
	if maxShards <= 0 {
		maxShards = 64
	}
	widths := []int{1024, 4096, 16384, 65536}
	if opt.Quick {
		widths = []int{1024, 4096, 16384}
	}
	methods := []nn.Method{nn.Baseline, nn.Butterfly, nn.Pixelfly, nn.Fastfood}
	topo := shard.DefaultTopology(maxShards)
	budget := topo.IPU.TotalMemBytes()

	res := &Result{
		ID:      "shardwall",
		Title:   fmt.Sprintf("IPUs needed to serve an SHL (batch %d, budget %.0f MB/IPU, ≤%d IPUs)", shardWallBatch, float64(budget)/1e6, maxShards),
		Headers: []string{"N"},
	}
	for _, m := range methods {
		res.Headers = append(res.Headers, m.String()+" ipus", "MB/ipu")
	}
	for _, n := range widths {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range methods {
			layers := shlSpecLayers(m, n, 10)
			fitted := 0
			perIPU := 0
			for s := 1; s <= maxShards; s <<= 1 {
				perIPU = shard.EstimateSpecBytes(layers, shardWallBatch, s, topo)
				if perIPU <= budget {
					fitted = s
					break
				}
			}
			if fitted == 0 {
				row = append(row, fmt.Sprintf(">%d", maxShards), "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d", fitted), fmt.Sprintf("%.1f", float64(perIPU)/1e6))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"smallest power-of-two shard count whose per-IPU bytes (weights/S + replicated + activation arenas, ×1.15 overhead) fit one chip",
		"dense N² weights force multi-IPU tensor-parallel serving first; butterfly's O(N log N) stays single-chip for widths far past the wall",
		"fastfood cannot tensor-parallel split (Hadamard sweeps touch every feature), but its O(N) weights never need to")
	return res, nil
}
