package dataset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func smallConfig() Config {
	return Config{
		Name: "test", Classes: 4, Side: 8,
		Train: 120, Test: 40, ValFraction: 0.15,
		AtomsPerClass: 3, BlobsPerClass: 1,
		NoiseStd: 0.3, GainStd: 0.3, Seed: 1,
	}
}

func TestGenerateShapes(t *testing.T) {
	s := Generate(smallConfig())
	if s.Dim != 64 {
		t.Fatalf("Dim = %d, want 64", s.Dim)
	}
	nVal := int(120 * 0.15)
	if s.XTrain.Rows != 120-nVal || s.XVal.Rows != nVal || s.XTest.Rows != 40 {
		t.Fatalf("split sizes %d/%d/%d", s.XTrain.Rows, s.XVal.Rows, s.XTest.Rows)
	}
	if len(s.YTrain) != s.XTrain.Rows || len(s.YVal) != s.XVal.Rows || len(s.YTest) != s.XTest.Rows {
		t.Fatal("label length mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if !tensor.AlmostEqual(a.XTrain, b.XTrain, 0) {
		t.Fatal("same seed must give identical data")
	}
	for i := range a.YTrain {
		if a.YTrain[i] != b.YTrain[i] {
			t.Fatal("same seed must give identical labels")
		}
	}
}

func TestGenerateSeedChangesData(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	cfg.Seed = 2
	b := Generate(cfg)
	if tensor.AlmostEqual(a.XTrain, b.XTrain, 1e-9) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestLabelsInRange(t *testing.T) {
	s := Generate(smallConfig())
	for _, y := range append(append(append([]int{}, s.YTrain...), s.YVal...), s.YTest...) {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
	}
}

func TestClassBalanceRoughly(t *testing.T) {
	s := Generate(smallConfig())
	counts := make([]int, 4)
	for _, y := range s.YTrain {
		counts[y]++
	}
	for c, n := range counts {
		if n < 10 {
			t.Fatalf("class %d badly underrepresented: %d", c, n)
		}
	}
}

func TestSamplesNormalized(t *testing.T) {
	s := Generate(smallConfig())
	want := math.Sqrt(float64(s.Dim)) / 2
	for r := 0; r < s.XTrain.Rows; r++ {
		var ss float64
		for _, v := range s.XTrain.Row(r) {
			ss += float64(v) * float64(v)
		}
		if math.Abs(math.Sqrt(ss)-want) > 1e-2 {
			t.Fatalf("row %d norm %v, want %v (=√dim/2)", r, math.Sqrt(ss), want)
		}
	}
}

func TestClassesAreLinearlySeparableEnough(t *testing.T) {
	// A nearest-class-mean classifier on the raw pixels should beat chance
	// by a wide margin — the signal must be learnable for Table 4 to mean
	// anything.
	s := Generate(smallConfig())
	dim := s.Dim
	means := make([][]float64, 4)
	counts := make([]int, 4)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for r := 0; r < s.XTrain.Rows; r++ {
		c := s.YTrain[r]
		counts[c]++
		for j, v := range s.XTrain.Row(r) {
			means[c][j] += float64(v)
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for r := 0; r < s.XTest.Rows; r++ {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			var d float64
			for j, v := range s.XTest.Row(r) {
				diff := float64(v) - means[c][j]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == s.YTest[r] {
			correct++
		}
	}
	acc := float64(correct) / float64(s.XTest.Rows)
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %v too low; dataset not learnable", acc)
	}
}

func TestCIFAR10ConfigDims(t *testing.T) {
	cfg := CIFAR10Config()
	if cfg.Side*cfg.Side != 1024 || cfg.Classes != 10 {
		t.Fatalf("CIFAR10 config wrong: %+v", cfg)
	}
	if cfg.ValFraction != 0.15 {
		t.Fatalf("validation fraction %v, want 0.15 (Table 3)", cfg.ValFraction)
	}
}

func TestBatchesCoverEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bs := Batches(103, 25, rng)
	seen := make(map[int]bool)
	for _, b := range bs {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("covered %d indices, want 103", len(seen))
	}
	if len(bs) != 5 {
		t.Fatalf("batch count %d, want 5", len(bs))
	}
	if len(bs[4]) != 3 {
		t.Fatalf("last batch %d, want 3", len(bs[4]))
	}
}

func TestGather(t *testing.T) {
	x := tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	y := []int{7, 8, 9}
	gx, gy := Gather(x, y, []int{2, 0})
	if gx.At(0, 0) != 5 || gx.At(1, 1) != 2 {
		t.Fatalf("gathered rows wrong: %v", gx.Data)
	}
	if gy[0] != 9 || gy[1] != 7 {
		t.Fatalf("gathered labels wrong: %v", gy)
	}
}
