// Package dataset provides deterministic synthetic stand-ins for the
// CIFAR-10 and MNIST tasks of the paper's Table 4 (the module is built
// offline, so the real datasets are unavailable).
//
// Following Thomas et al. (2018) and Dao et al. (2019), the paper feeds the
// single-hidden-layer model 1024-dimensional inputs (32×32 grayscale). The
// generator plants class identity in a *high-rank* mixture of spatial
// frequency atoms plus localized blobs, so that the relative ordering of
// the structured methods is preserved: a rank-1 bottleneck (LowRank) can
// only transmit one scalar per sample and lands near the bottom, a
// convolutional structure (Circulant) captures frequency but not locality,
// while butterfly/pixelfly/baseline have enough expressiveness to separate
// the classes.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Config controls the synthetic generator.
type Config struct {
	Name          string  // e.g. "synthetic-cifar10"
	Classes       int     // number of classes (10)
	Side          int     // image side; Dim = Side²
	Train         int     // training samples (before validation split)
	Test          int     // test samples
	ValFraction   float64 // fraction of Train carved out for validation
	AtomsPerClass int     // frequency atoms per class signature
	BlobsPerClass int     // localized Gaussian blobs per class
	NoiseStd      float64 // additive Gaussian pixel noise
	GainStd       float64 // per-sample multiplicative atom gain spread
	// PermutePixels applies one fixed random pixel permutation to every
	// sample. Frequency atoms are exactly the eigenvectors of circulant
	// matrices, so without this the synthetic task would hand the
	// Circulant baseline an unrealistic advantage over real CIFAR-10
	// (where a single circular convolution is a weak feature extractor —
	// the paper measures it 16 points below the dense baseline). The
	// permutation is class-independent and identical for every sample, so
	// permutation-agnostic methods (dense, butterfly, fastfood, low-rank,
	// pixelfly) are unaffected.
	PermutePixels bool
	Seed          int64
}

// CIFAR10Config returns the defaults used for the Table 4 reproduction:
// 1024-dim inputs, 10 classes, 15% validation split (Table 3).
func CIFAR10Config() Config {
	return Config{
		Name: "synthetic-cifar10", Classes: 10, Side: 32,
		Train: 5000, Test: 1000, ValFraction: 0.15,
		AtomsPerClass: 6, BlobsPerClass: 3,
		NoiseStd: 1.1, GainStd: 0.6, PermutePixels: true, Seed: 42,
	}
}

// MNISTConfig returns a smaller, easier task (the paper reports MNIST
// results are in line with CIFAR-10 and omits most of them). Side 32 keeps
// the power-of-two input the structured layers need; real MNIST (28×28)
// needed padding for the same reason — the paper notes pixelfly could not
// run on MNIST because dimensions must be powers of two.
func MNISTConfig() Config {
	return Config{
		Name: "synthetic-mnist", Classes: 10, Side: 32,
		Train: 4000, Test: 800, ValFraction: 0.15,
		AtomsPerClass: 4, BlobsPerClass: 2,
		NoiseStd: 0.3, GainStd: 0.3, Seed: 7,
	}
}

// Split holds row-major sample matrices and integer labels.
type Split struct {
	Name                string
	Dim, Classes        int
	XTrain, XVal, XTest *tensor.Matrix
	YTrain, YVal, YTest []int
}

// Generate builds the dataset deterministically from cfg.Seed.
func Generate(cfg Config) *Split {
	if cfg.Classes < 2 || cfg.Side < 2 || cfg.Train < cfg.Classes || cfg.Test < 1 {
		panic(fmt.Sprintf("dataset: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := cfg.Side * cfg.Side
	sig := newSignatures(cfg, rng)

	nVal := int(float64(cfg.Train) * cfg.ValFraction)
	nTrain := cfg.Train - nVal
	total := cfg.Train + cfg.Test
	x := tensor.New(total, dim)
	y := make([]int, total)
	for i := 0; i < total; i++ {
		c := i % cfg.Classes
		y[i] = c
		sig.sample(c, x.Row(i), rng)
	}
	shuffle(x, y, rng)

	s := &Split{Name: cfg.Name, Dim: dim, Classes: cfg.Classes}
	s.XTrain, s.YTrain = slice(x, y, 0, nTrain)
	s.XVal, s.YVal = slice(x, y, nTrain, nTrain+nVal)
	s.XTest, s.YTest = slice(x, y, cfg.Train, total)
	return s
}

func slice(x *tensor.Matrix, y []int, lo, hi int) (*tensor.Matrix, []int) {
	out := tensor.New(hi-lo, x.Cols)
	copy(out.Data, x.Data[lo*x.Cols:hi*x.Cols])
	labels := append([]int(nil), y[lo:hi]...)
	return out, labels
}

func shuffle(x *tensor.Matrix, y []int, rng *rand.Rand) {
	tmp := make([]float32, x.Cols)
	for i := x.Rows - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		copy(tmp, x.Row(i))
		copy(x.Row(i), x.Row(j))
		copy(x.Row(j), tmp)
		y[i], y[j] = y[j], y[i]
	}
}

// signatures holds the fixed per-class structure.
type signatures struct {
	cfg   Config
	atoms [][][]float32 // [class][atom][dim]
	noise float32
	gain  float32
	perm  []int // fixed pixel permutation (nil when disabled)
}

func newSignatures(cfg Config, rng *rand.Rand) *signatures {
	s := &signatures{cfg: cfg, noise: float32(cfg.NoiseStd), gain: float32(cfg.GainStd)}
	side := cfg.Side
	dim := side * side
	if cfg.PermutePixels {
		s.perm = rng.Perm(dim)
	}
	for c := 0; c < cfg.Classes; c++ {
		var atoms [][]float32
		for a := 0; a < cfg.AtomsPerClass; a++ {
			atom := make([]float32, dim)
			fx := 1 + rng.Intn(side/4)
			fy := 1 + rng.Intn(side/4)
			px := rng.Float64() * 2 * math.Pi
			py := rng.Float64() * 2 * math.Pi
			for yy := 0; yy < side; yy++ {
				for xx := 0; xx < side; xx++ {
					v := math.Sin(2*math.Pi*float64(fx)*float64(xx)/float64(side)+px) *
						math.Sin(2*math.Pi*float64(fy)*float64(yy)/float64(side)+py)
					atom[yy*side+xx] = float32(v)
				}
			}
			normalize(atom)
			atoms = append(atoms, atom)
		}
		for b := 0; b < cfg.BlobsPerClass; b++ {
			atom := make([]float32, dim)
			cx := rng.Float64() * float64(side)
			cy := rng.Float64() * float64(side)
			sigma := 1.5 + rng.Float64()*2.5
			for yy := 0; yy < side; yy++ {
				for xx := 0; xx < side; xx++ {
					dx := float64(xx) - cx
					dy := float64(yy) - cy
					atom[yy*side+xx] = float32(math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma)))
				}
			}
			normalize(atom)
			atoms = append(atoms, atom)
		}
		s.atoms = append(s.atoms, atoms)
	}
	return s
}

func normalize(v []float32) {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	n := math.Sqrt(ss)
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}

// sample writes one sample of class c into dst. Samples are normalized and
// rescaled to ‖x‖ = √dim/2, giving per-feature magnitudes of order 0.5 —
// the same scale as normalized image pixels, so Table 3's learning rate
// (0.001) trains at the paper's pace.
func (s *signatures) sample(c int, dst []float32, rng *rand.Rand) {
	for i := range dst {
		dst[i] = float32(rng.NormFloat64()) * s.noise
	}
	for _, atom := range s.atoms[c] {
		g := 1 + float32(rng.NormFloat64())*s.gain
		for i := range dst {
			dst[i] += g * atom[i]
		}
	}
	if s.perm != nil {
		permuted := make([]float32, len(dst))
		for i, p := range s.perm {
			permuted[i] = dst[p]
		}
		copy(dst, permuted)
	}
	normalize(dst)
	scale := float32(math.Sqrt(float64(len(dst))) / 2)
	for i := range dst {
		dst[i] *= scale
	}
}

// NumFeatures returns the sample dimensionality.
func (s *Split) NumFeatures() int { return s.Dim }

// Batches returns the index order for one epoch given a batch size,
// shuffled with rng. The final short batch is included.
func Batches(n, batchSize int, rng *rand.Rand) [][]int {
	idx := rng.Perm(n)
	var out [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// Gather copies the rows of x listed in idx into a new matrix, with the
// matching labels.
func Gather(x *tensor.Matrix, y []int, idx []int) (*tensor.Matrix, []int) {
	out := tensor.New(len(idx), x.Cols)
	labels := make([]int, len(idx))
	for i, r := range idx {
		copy(out.Row(i), x.Row(r))
		labels[i] = y[r]
	}
	return out, labels
}
