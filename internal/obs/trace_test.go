package obs

import (
	"context"
	"testing"
	"time"
)

func TestTracerSampleEvery(t *testing.T) {
	tr := NewTracer(4, 16)
	sampled := 0
	for i := 0; i < 100; i++ {
		if s := tr.Sample("m"); s != nil {
			sampled++
			tr.Finish(s)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at 1/4, want 25", sampled)
	}
}

func TestTracerRingKeepsLastN(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		s := tr.Sample("m")
		if s == nil {
			t.Fatal("sampleEvery=1 must sample every request")
		}
		s.AddSpan("stage", 0, int64(i))
		tr.Finish(s)
	}
	snap := tr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(snap))
	}
	// Oldest first: IDs 3, 4, 5 survive out of 1..5.
	for i, want := range []uint64{3, 4, 5} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, snap[i].ID, want)
		}
	}
}

func TestTraceSpansAndReset(t *testing.T) {
	tr := NewTracer(1, 2)
	s := tr.Sample("bf")
	start := s.Start
	s.AddSpanAt("decode", start.Add(10*time.Nanosecond), 5*time.Nanosecond)
	s.AddSpan("execute", 20, 30)
	s.Batch = 4
	tr.Finish(s)

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.Model != "bf" || got.Batch != 4 || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v", got)
	}
	if got.Spans[0].Name != "decode" || got.Spans[0].StartNanos != 10 || got.Spans[0].DurNanos != 5 {
		t.Fatalf("span 0 = %+v", got.Spans[0])
	}

	// A recycled trace starts clean.
	s2 := tr.Sample("other")
	s3 := tr.Sample("other2") // evicts nothing yet; fill the ring
	tr.Finish(s2)
	tr.Finish(s3)
	s4 := tr.Sample("fresh") // this Get may reuse the first trace
	if len(s4.Spans) != 0 || s4.Batch != 0 || s4.Error != "" {
		t.Fatalf("recycled trace not reset: %+v", s4)
	}
	tr.Finish(s4)
}

func TestTraceSpanTruncation(t *testing.T) {
	tr := NewTracer(1, 1)
	s := tr.Sample("m")
	for i := 0; i < MaxSpans+5; i++ {
		s.AddSpan("s", int64(i), 1)
	}
	if len(s.Spans) != MaxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(s.Spans), MaxSpans)
	}
	if s.Truncated != 5 {
		t.Fatalf("truncated = %d, want 5", s.Truncated)
	}
	tr.Finish(s)
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTracer(1, 1)
	s := tr.Sample("m")
	ctx := WithTrace(context.Background(), s)
	if TraceFrom(ctx) != s {
		t.Fatal("trace lost in context round-trip")
	}
	tr.Finish(s)
}

func TestTraceDecided(t *testing.T) {
	ctx := context.Background()
	if TraceDecided(ctx) {
		t.Fatal("empty context should have no sampling decision")
	}
	// A negative decision (nil trace) still counts as decided, so
	// downstream layers don't re-draw from the shared counter.
	neg := WithTrace(ctx, nil)
	if !TraceDecided(neg) || TraceFrom(neg) != nil {
		t.Fatal("nil-trace decision lost in context round-trip")
	}
	tr := NewTracer(1, 1)
	s := tr.Sample("m")
	pos := WithTrace(ctx, s)
	if !TraceDecided(pos) || TraceFrom(pos) != s {
		t.Fatal("sampled decision lost in context round-trip")
	}
	tr.Finish(s)
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample("m") != nil {
		t.Fatal("nil tracer must not sample")
	}
	tr.Finish(nil)
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
}
