package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestKernelStatsRecordAndSnapshot(t *testing.T) {
	s := NewKernelStats()
	if got := s.Snapshot(); len(got) != 0 {
		t.Fatalf("empty sink snapshot = %v, want empty", got)
	}

	// 2000 flops over 1000ns is 2 GFLOP/s exactly (flops/ns); 500 bytes
	// over 1000ns is 5e8 bytes/s.
	s.Record(KernelButterfly, 2000, 500, 1000)
	s.Record(KernelButterfly, 2000, 500, 1000)
	s.Record(KernelMatMul, 100, 10, 50)

	snaps := s.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot families = %d, want 2 (%v)", len(snaps), snaps)
	}
	// Enum order: matmul before butterfly.
	if snaps[0].Kernel != "matmul" || snaps[1].Kernel != "butterfly" {
		t.Fatalf("snapshot order = %s, %s; want matmul, butterfly", snaps[0].Kernel, snaps[1].Kernel)
	}
	bf := snaps[1]
	if bf.Calls != 2 || bf.Flops != 4000 || bf.Bytes != 1000 || bf.Nanos != 2000 {
		t.Fatalf("butterfly totals = %+v", bf)
	}
	if bf.GFlopsPerSec != 2.0 {
		t.Fatalf("butterfly GFLOP/s = %v, want 2.0", bf.GFlopsPerSec)
	}
	if bf.BytesPerSec != 5e8 {
		t.Fatalf("butterfly bytes/s = %v, want 5e8", bf.BytesPerSec)
	}
}

func TestKernelStatsNilAndOutOfRange(t *testing.T) {
	var s *KernelStats
	s.Record(KernelMatMul, 1, 1, 1) // must not panic
	if s.Snapshot() != nil {
		t.Fatal("nil sink snapshot should be nil")
	}

	real := NewKernelStats()
	real.Record(Kernel(250), 7, 7, 7) // clamped to KernelOther
	snaps := real.Snapshot()
	if len(snaps) != 1 || snaps[0].Kernel != "other" || snaps[0].Flops != 7 {
		t.Fatalf("out-of-range record should land on 'other', got %v", snaps)
	}
	if Kernel(250).String() != "other" {
		t.Fatalf("out-of-range String = %q", Kernel(250).String())
	}
}

func TestKernelStatsConcurrent(t *testing.T) {
	// Striped-counter sink under concurrent writers and snapshot readers;
	// run with -race this doubles as the data-race check. Totals must be
	// exact — atomics lose nothing.
	s := NewKernelStats()
	const workers, per = 8, 1000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			k := Kernel(w % int(numKernels))
			for i := 0; i < per; i++ {
				s.Record(k, 10, 4, 2)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	var flops, calls int64
	for _, snap := range s.Snapshot() {
		flops += snap.Flops
		calls += snap.Calls
	}
	if calls != workers*per || flops != workers*per*10 {
		t.Fatalf("concurrent totals: calls=%d flops=%d, want %d and %d",
			calls, flops, workers*per, workers*per*10)
	}
}

func TestKernelStatsExport(t *testing.T) {
	s := NewKernelStats()
	reg := NewRegistry()
	s.Export(reg, "kernel_gflops", "kernel_bytes_per_sec")
	s.Record(KernelFWHT, 3000, 900, 1000)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `kernel_gflops{kernel="fwht"} 3`) {
		t.Fatalf("exposition missing fwht gflops gauge:\n%s", out)
	}
	if !strings.Contains(out, `kernel_bytes_per_sec{kernel="fwht"} 9e+08`) {
		t.Fatalf("exposition missing fwht bytes gauge:\n%s", out)
	}
	// Families that never ran read 0, not absent — the label set is fixed.
	if !strings.Contains(out, `kernel_gflops{kernel="fft"} 0`) {
		t.Fatalf("exposition missing idle fft gauge:\n%s", out)
	}
}
