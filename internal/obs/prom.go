package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one TYPE
// line per family, histograms expanded into cumulative _bucket series
// plus _sum and _count. Func instruments are evaluated outside the
// registry lock, so they may take serving-side locks of their own.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return seriesKey(ms[i].family, ms[i].labels) < seriesKey(ms[j].family, ms[j].labels)
	})

	var b strings.Builder
	prevFamily := ""
	for _, m := range ms {
		if m.family != prevFamily {
			if h, ok := help[m.family]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, escapeHelp(h))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, m.kind.typeName())
			prevFamily = m.family
		}
		switch m.kind {
		case kindCounter:
			writeSample(&b, m.family, m.labels, "", "", formatInt(m.c.Value()))
		case kindCounterFunc:
			writeSample(&b, m.family, m.labels, "", "", formatInt(m.cf()))
		case kindGauge:
			writeSample(&b, m.family, m.labels, "", "", formatFloat(m.g.Value()))
		case kindGaugeFunc:
			writeSample(&b, m.family, m.labels, "", "", formatFloat(m.gf()))
		case kindHistogram:
			writeHistogram(&b, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram expands one histogram into its cumulative bucket
// samples plus _sum and _count.
func writeHistogram(b *strings.Builder, m *metric) {
	counts := m.h.BucketCounts()
	bounds := m.h.Bounds()
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		writeSample(b, m.family+"_bucket", m.labels, "le", formatFloat(bound), formatInt(cum))
	}
	cum += counts[len(counts)-1]
	writeSample(b, m.family+"_bucket", m.labels, "le", "+Inf", formatInt(cum))
	writeSample(b, m.family+"_sum", m.labels, "", "", formatFloat(m.h.Sum()))
	writeSample(b, m.family+"_count", m.labels, "", "", formatInt(cum))
}

// writeSample renders one sample line, appending an optional extra label
// (the histogram "le") after the registered ones.
func writeSample(b *strings.Builder, name string, labels []L, extraKey, extraVal, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraVal))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// seriesKey is the canonical identity of one series: family plus its
// sorted, escaped label set.
func seriesKey(family string, labels []L) string {
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
