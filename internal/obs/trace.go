package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds how many spans one trace records; spans beyond it are
// dropped (counted in Truncated). 32 covers the deepest pipeline the
// stack produces: HTTP decode + queue wait + execute + one span per
// sharded butterfly micro-step + cost lookup + response write.
const MaxSpans = 32

// Span is one timed stage of a request, offset-encoded against the
// trace's start so a trace serializes without per-span wall clocks.
type Span struct {
	Name       string `json:"name"`
	StartNanos int64  `json:"start_ns"` // offset from the trace start
	DurNanos   int64  `json:"dur_ns"`
}

// Trace is the per-request record of one sampled request's path through
// the serving pipeline. Traces are pooled: a Trace obtained from
// Tracer.Sample is owned by the caller until Finish, after which the
// tracer may recycle it — do not retain it past Finish.
type Trace struct {
	ID         uint64    `json:"id"`
	Model      string    `json:"model"`
	Start      time.Time `json:"start"`
	TotalNanos int64     `json:"total_ns"`
	Batch      int       `json:"batch,omitempty"`
	Error      string    `json:"error,omitempty"`
	Truncated  int       `json:"truncated_spans,omitempty"`
	Spans      []Span    `json:"spans"`

	spans [MaxSpans]Span // backing store; Spans aliases it
}

func (t *Trace) reset() {
	*t = Trace{}
	t.Spans = t.spans[:0]
}

// AddSpan records a span by explicit offset and duration (nanoseconds
// from the trace start). Allocation-free; silently drops spans past
// MaxSpans.
func (t *Trace) AddSpan(name string, startNanos, durNanos int64) {
	if len(t.Spans) == MaxSpans {
		t.Truncated++
		return
	}
	t.Spans = append(t.Spans, Span{Name: name, StartNanos: startNanos, DurNanos: durNanos})
}

// AddSpanAt records a span from a wall-clock start time and duration,
// converting to the trace's offset encoding.
func (t *Trace) AddSpanAt(name string, start time.Time, d time.Duration) {
	t.AddSpan(name, start.Sub(t.Start).Nanoseconds(), d.Nanoseconds())
}

// Tracer samples one request in every sampleEvery and keeps the last
// keep finished traces in a ring buffer for /debug/traces. Sampling,
// recording and finishing are allocation-free at steady state: traces
// are pooled, and a trace evicted from the ring returns to the pool.
type Tracer struct {
	every uint64
	seq   atomic.Uint64
	ids   atomic.Uint64
	pool  sync.Pool

	mu   sync.Mutex
	ring []*Trace
	next int
	n    int
}

// NewTracer creates a tracer sampling one request per sampleEvery
// (minimum 1 = every request) and retaining the last keep traces.
func NewTracer(sampleEvery, keep int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if keep < 1 {
		keep = 1
	}
	t := &Tracer{every: uint64(sampleEvery), ring: make([]*Trace, keep)}
	t.pool.New = func() any { return &Trace{} }
	return t
}

// SampleEvery returns the sampling period.
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Sample returns a fresh trace for this request if it falls on the
// sampling grid, nil otherwise (the common, zero-cost case). The caller
// must either Finish the trace or hand it to someone who will.
func (t *Tracer) Sample(model string) *Trace {
	if t == nil {
		return nil
	}
	if t.seq.Add(1)%t.every != 0 {
		return nil
	}
	tr := t.pool.Get().(*Trace)
	tr.reset()
	tr.ID = t.ids.Add(1)
	tr.Model = model
	tr.Start = time.Now()
	return tr
}

// Finish stamps the trace's total duration and publishes it to the ring,
// recycling the trace the ring slot evicts. The trace must not be
// touched after Finish.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.TotalNanos = time.Since(tr.Start).Nanoseconds()
	t.mu.Lock()
	old := t.ring[t.next]
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	if old != nil {
		t.pool.Put(old)
	}
}

// TraceRecord is the detached, JSON-ready copy of one finished trace
// that Snapshot hands out (safe to hold after the pooled original is
// recycled).
type TraceRecord struct {
	ID         uint64    `json:"id"`
	Model      string    `json:"model"`
	Start      time.Time `json:"start"`
	TotalNanos int64     `json:"total_ns"`
	Batch      int       `json:"batch,omitempty"`
	Error      string    `json:"error,omitempty"`
	Truncated  int       `json:"truncated_spans,omitempty"`
	Spans      []Span    `json:"spans"`
}

// Snapshot returns copies of the retained traces, most recent last.
func (t *Tracer) Snapshot() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		// Oldest first: the slot after next (when full) wraps to the start.
		idx := (t.next - t.n + i + len(t.ring)) % len(t.ring)
		tr := t.ring[idx]
		out = append(out, TraceRecord{
			ID:         tr.ID,
			Model:      tr.Model,
			Start:      tr.Start,
			TotalNanos: tr.TotalNanos,
			Batch:      tr.Batch,
			Error:      tr.Error,
			Truncated:  tr.Truncated,
			Spans:      append([]Span(nil), tr.Spans...),
		})
	}
	return out
}

// ctxKey is the context key traces travel under between the HTTP layer
// and the model's Predict.
type ctxKey struct{}

// WithTrace attaches a trace to the context (allocates; only called on
// sampled requests). Passing tr == nil marks the context as having had
// its sampling decision made upstream without attaching a trace — see
// TraceDecided.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFrom returns the trace attached to the context, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// TraceDecided reports whether an upstream layer already made the
// sampling decision for this context (sampled or not). Downstream
// self-sampling must check this before drawing from the tracer, or each
// request advances the sample counter once per layer and an even
// sampling period can starve one layer of samples entirely.
func TraceDecided(ctx context.Context) bool {
	_, ok := ctx.Value(ctxKey{}).(*Trace)
	return ok
}
