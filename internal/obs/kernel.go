package obs

// Kernel names one Into/epilogue kernel family of the execution stack —
// the attribution axis of the per-kernel performance accounting. The
// enum is closed on purpose: a fixed, small set of families keeps the
// sink a flat array of striped counters (no map, no lock on the hot
// path) and keeps the /metrics label set bounded.
type Kernel uint8

const (
	// KernelMatMul covers the dense MatMulInto / MatMulBiasActInto
	// kernels (Dense layers, FactorizedDense factor products).
	KernelMatMul Kernel = iota
	// KernelButterfly covers the butterfly factor sweeps
	// (applyFactorRows and the fused epilogue variant).
	KernelButterfly
	// KernelFWHT covers the fast Walsh–Hadamard passes (fastfood).
	KernelFWHT
	// KernelFFT covers the FFT circular-convolution kernels (circulant).
	KernelFFT
	// KernelBSR covers the block-sparse-row multiplies (pixelfly).
	KernelBSR
	// KernelLowRank covers the low-rank U/V projection kernels.
	KernelLowRank
	// KernelOther is everything the stack cannot attribute to a single
	// family: standalone activations, generic Infer-and-copy fallbacks.
	KernelOther

	numKernels
)

var kernelNames = [numKernels]string{
	KernelMatMul:    "matmul",
	KernelButterfly: "butterfly",
	KernelFWHT:      "fwht",
	KernelFFT:       "fft",
	KernelBSR:       "bsr",
	KernelLowRank:   "lowrank",
	KernelOther:     "other",
}

func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "other"
}

// Kernels enumerates every kernel family, in stable order — the
// iteration axis for tables and metric registration.
func Kernels() []Kernel {
	out := make([]Kernel, numKernels)
	for i := range out {
		out[i] = Kernel(i)
	}
	return out
}

// kernelFamily is one family's accumulators. All four are striped
// counters, so concurrent plan executions (one per batcher worker)
// record without contending on a shared cache line.
type kernelFamily struct {
	flops Counter
	bytes Counter
	nanos Counter
	calls Counter
}

// KernelStats is the per-kernel performance-accounting sink: every
// executed plan step reports its kernel family, flop count, arena
// bytes moved and measured wall time here. Recording is a few striped
// atomic adds — no locks, no allocations — so a plan with the sink
// enabled stays on the serving path's steady-state allocation budget.
//
// One sink is typically shared by every model of a serving registry
// (attribution is by kernel family, not by model; per-model timing
// already exists per step), and exported on /metrics via Export.
type KernelStats struct {
	fam [numKernels]kernelFamily
}

// NewKernelStats creates an empty sink.
func NewKernelStats() *KernelStats {
	return &KernelStats{}
}

// Record accounts one kernel execution: flops performed, activation-
// arena bytes moved, and measured nanoseconds. Safe for concurrent use;
// allocation-free. A nil receiver is a no-op so callers can keep one
// unconditional call site.
func (s *KernelStats) Record(k Kernel, flops, bytes, nanos int64) {
	if s == nil {
		return
	}
	if int(k) >= int(numKernels) {
		k = KernelOther
	}
	f := &s.fam[k]
	f.flops.Add(flops)
	f.bytes.Add(bytes)
	f.nanos.Add(nanos)
	f.calls.Inc()
}

// KernelSnapshot is the detached per-family view Snapshot hands out —
// cumulative totals plus the derived throughput rates (flops/ns is
// GFLOP/s exactly; bytes are scaled to bytes/s).
type KernelSnapshot struct {
	Kernel string `json:"kernel"`
	Calls  int64  `json:"calls"`
	Flops  int64  `json:"flops"`
	Bytes  int64  `json:"arena_bytes"`
	Nanos  int64  `json:"nanos"`

	GFlopsPerSec float64 `json:"gflops_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
}

// Snapshot returns the families that have recorded at least one call,
// in enum order.
func (s *KernelStats) Snapshot() []KernelSnapshot {
	if s == nil {
		return nil
	}
	var out []KernelSnapshot
	for k := Kernel(0); k < numKernels; k++ {
		f := &s.fam[k]
		calls := f.calls.Value()
		if calls == 0 {
			continue
		}
		snap := KernelSnapshot{
			Kernel: k.String(),
			Calls:  calls,
			Flops:  f.flops.Value(),
			Bytes:  f.bytes.Value(),
			Nanos:  f.nanos.Value(),
		}
		if snap.Nanos > 0 {
			snap.GFlopsPerSec = float64(snap.Flops) / float64(snap.Nanos)
			snap.BytesPerSec = float64(snap.Bytes) / float64(snap.Nanos) * 1e9
		}
		out = append(out, snap)
	}
	return out
}

// Export registers one cumulative-rate gauge pair per kernel family on
// the registry: gflopsFamily{kernel=...} (GFLOP/s) and
// bytesFamily{kernel=...} (arena bytes/s), both computed at scrape time
// from the sink's totals. Families that have not recorded yet read 0.
func (s *KernelStats) Export(reg *Registry, gflopsFamily, bytesFamily string) {
	for _, k := range Kernels() {
		f := &s.fam[k]
		l := L{Key: "kernel", Value: k.String()}
		reg.GaugeFunc(gflopsFamily, func() float64 {
			n := f.nanos.Value()
			if n == 0 {
				return 0
			}
			return float64(f.flops.Value()) / float64(n)
		}, l)
		reg.GaugeFunc(bytesFamily, func() float64 {
			n := f.nanos.Value()
			if n == 0 {
				return 0
			}
			return float64(f.bytes.Value()) / float64(n) * 1e9
		}, l)
	}
}
