package obs

import (
	"math"
	"sync"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHistogramObserveAndCounts(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	counts := h.BucketCounts()
	// le=1 holds {0.5, 1}; le=10 holds {5}; le=100 holds {50}; +Inf {500}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1..512
	for i := 0; i < 100; i++ {
		h.Observe(3) // bucket le=4
	}
	for i := 0; i < 100; i++ {
		h.Observe(30) // bucket le=32
	}
	if q := h.Quantile(0.25); q < 2 || q > 4 {
		t.Fatalf("p25 = %v, want within (2, 4]", q)
	}
	if q := h.Quantile(0.95); q < 16 || q > 32 {
		t.Fatalf("p95 = %v, want within (16, 32]", q)
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.1) > h.Quantile(0.9) {
		t.Fatal("quantiles not monotone")
	}
	empty := NewHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	counts := a.BucketCounts()
	want := []int64{1, 2, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("merged bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if math.Abs(a.Sum()-60.5) > 1e-9 {
		t.Fatalf("merged sum = %v, want 60.5", a.Sum())
	}

	c := NewHistogram([]float64{1, 20})
	if err := a.Merge(c); err == nil {
		t.Fatal("merging mismatched bounds should error")
	}
	d := NewHistogram([]float64{1})
	if err := a.Merge(d); err == nil {
		t.Fatal("merging different bucket counts should error")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(1 + g%4))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
}
