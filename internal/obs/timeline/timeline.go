// Package timeline is the BSP phase flight recorder: a per-batch record
// of what every modelled IPU was doing — computing, exchanging, waiting
// at a barrier, or sitting in a pipeline bubble — at each micro-step of
// one executed batch, in the spirit of Graphcore's PopVision execution
// profiles.
//
// The executors (nn.Plan, shard.ShardedPlan) write events; the serving
// layer reads them back as a utilization summary (/debug/timeline) and
// as Chrome trace-event JSON loadable in Perfetto. Recording is built
// for the serving hot path:
//
//   - batches are sampled one-in-N (like obs.Tracer), so most Executes
//     pay one atomic add and nothing else;
//   - a sampled batch writes into a pre-sized per-executor event buffer
//     at fixed (step, ipu, lane) slots — no locks, no appends, and shard
//     goroutines never contend because each owns its own slots;
//   - batches are pooled and the last-N ring recycles what it evicts, so
//     steady-state recording performs zero heap allocations and a plan
//     with no recorder installed emits nothing at all.
//
// Phase semantics on the host executor: compute is a shard's measured
// kernel time inside one barrier-delimited micro-step; barrier_wait (or
// exchange, when the cost model prices IPU-Link traffic into the step)
// is the remaining step wall after that shard's kernel returned; bubble
// is a whole step spent idle because the shard owns no kernel there —
// under pipeline partitioning, exactly the fill/drain cost of the
// stages before and after the shard's own.
package timeline

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies one event of the BSP execution model. The zero value
// is reserved: an Event with Phase 0 is an unused buffer slot.
type Phase uint8

const (
	phaseInvalid Phase = iota
	// Compute is a shard's kernel running inside one micro-step.
	Compute
	// Exchange is step wall attributed to modelled IPU-Link traffic
	// (all-gather, butterfly pairwise round, pipeline p2p hop).
	Exchange
	// BarrierWait is step wall after the shard's kernel returned, on
	// steps the cost model prices no exchange into — pure sync skew.
	BarrierWait
	// Bubble is a whole micro-step the shard spent idle (no kernel
	// owned): pipeline fill/drain.
	Bubble

	numPhases = 4
)

// Phases lists the real phases in a stable order — the iteration surface
// for per-phase gauges and reports.
var Phases = [numPhases]Phase{Compute, Exchange, BarrierWait, Bubble}

func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Exchange:
		return "exchange"
	case BarrierWait:
		return "barrier_wait"
	case Bubble:
		return "bubble"
	default:
		return "invalid"
	}
}

// index maps a phase to its accumulator slot (Compute = 0).
func (p Phase) index() int { return int(p) - 1 }

// Event is one phase span on one modelled IPU's track, offset-encoded
// against the batch's start so a timeline serializes without per-event
// wall clocks.
type Event struct {
	Step  int32 `json:"step"`
	IPU   int32 `json:"ipu"`
	Phase Phase `json:"phase"`
	// MB is the micro-batch index inside a wavefront-scheduled batch;
	// 0 for the single-micro-batch (barrier loop) executors.
	MB int32 `json:"mb,omitempty"`
	// StartNanos is the monotonic offset from the batch's first step;
	// DurNanos the measured span length.
	StartNanos int64 `json:"start_ns"`
	DurNanos   int64 `json:"dur_ns"`
}

// Each (step, IPU) cell owns two fixed event slots: the work lane holds
// the shard's kernel span (or the bubble covering an idle step), the
// sync lane the post-kernel barrier/exchange gap. Fixed slots are what
// make concurrent recording lock-free — writers never share a slot.
const (
	LaneWork = 0
	LaneSync = 1
	lanes    = 2
)

// Batch is one sampled batch's event buffer. It is owned by the
// executor between Recorder.Sample and Recorder.Finish; concurrent
// shard goroutines may Record into distinct (step, ipu) slots, with the
// executor's own barrier ordering the writes before Finish publishes.
type Batch struct {
	id     uint64
	start  time.Time
	rows   int
	steps  int
	micro  int
	tracks int
	wall   int64
	events []Event
}

// Begin sizes the buffer for steps×tracks cells and clears every slot.
// The first Begin on a pooled batch grows the backing array; after that
// it is a memclr.
func (b *Batch) Begin(steps, tracks, rows int) {
	b.BeginMicro(steps, 1, tracks, rows)
}

// BeginMicro sizes the buffer for a wavefront-scheduled batch of micro
// micro-batches: steps×micro×tracks cells, every slot cleared. The
// micro dimension folds into the slot layout, so micro=1 is exactly the
// classic Begin buffer.
func (b *Batch) BeginMicro(steps, micro, tracks, rows int) {
	if micro < 1 {
		micro = 1
	}
	b.steps, b.micro, b.tracks, b.rows = steps, micro, tracks, rows
	need := steps * micro * tracks * lanes
	if cap(b.events) < need {
		b.events = make([]Event, need)
	}
	b.events = b.events[:need]
	for i := range b.events {
		b.events[i] = Event{}
	}
}

// Rows returns the batch size this timeline was recorded at.
func (b *Batch) Rows() int { return b.rows }

func (b *Batch) slot(step, mb, ipu, lane int) int {
	return ((step*b.micro+mb)*b.tracks+ipu)*lanes + lane
}

// Record writes one phase span into its fixed slot. Out-of-range
// coordinates are dropped silently — a recorder installed mid-flight
// must never be able to corrupt the buffer.
func (b *Batch) Record(step, ipu, lane int, ph Phase, startNanos, durNanos int64) {
	b.RecordMicro(step, 0, ipu, lane, ph, startNanos, durNanos)
}

// RecordMicro writes one phase span of one micro-batch into its fixed
// slot. Out-of-range coordinates are dropped silently.
func (b *Batch) RecordMicro(step, mb, ipu, lane int, ph Phase, startNanos, durNanos int64) {
	if step < 0 || step >= b.steps || mb < 0 || mb >= b.micro ||
		ipu < 0 || ipu >= b.tracks || lane < 0 || lane >= lanes {
		return
	}
	b.events[b.slot(step, mb, ipu, lane)] = Event{
		Step: int32(step), IPU: int32(ipu), Phase: ph, MB: int32(mb),
		StartNanos: startNanos, DurNanos: durNanos,
	}
}

// Work returns the work-lane event of one (step, ipu) cell — how the
// orchestrator reads back a shard goroutine's compute span (the barrier
// ordered the write) to place the sync gap after it.
func (b *Batch) Work(step, ipu int) Event {
	if step < 0 || step >= b.steps || ipu < 0 || ipu >= b.tracks {
		return Event{}
	}
	return b.events[b.slot(step, 0, ipu, LaneWork)]
}

// Meta is the static description of the executor whose batches a
// recorder samples: per-micro-step names, kernel families, variants and
// the cost model's per-row modelled phase seconds. Set once (first
// executor wins — step layout is stable per model) and attached to
// every snapshot, so events stay index-only and allocation-free.
type Meta struct {
	Model    string   `json:"model"`
	Strategy string   `json:"strategy"`
	Shards   int      `json:"shards"`
	Steps    []string `json:"steps"`
	Kernels  []string `json:"kernels,omitempty"`
	Variants []string `json:"variants,omitempty"`

	// MicroBatches is the wavefront width the executor splits a full
	// batch into (1 = classic barrier loop). Descriptive only — each
	// sampled batch carries its own effective micro count.
	MicroBatches int `json:"micro_batches,omitempty"`

	// Modelled per-row seconds of each micro-step, split by phase: what
	// the cost model says one row of compute (per shard, under the
	// strategy) and exchange should cost. Multiplied by a batch's rows,
	// these are the modelled counterparts the summary and the Chrome
	// args line up against the measured spans. Nil when the executor has
	// no cost model.
	ComputeSecPerRow  []float64 `json:"compute_s_per_row,omitempty"`
	ExchangeSecPerRow []float64 `json:"exchange_s_per_row,omitempty"`
}

// StepName returns the micro-step's name, or a stable placeholder when
// the meta does not cover it.
func (m *Meta) StepName(i int) string {
	if m != nil && i >= 0 && i < len(m.Steps) {
		return m.Steps[i]
	}
	return "step"
}

func (m *Meta) kernel(i int) string {
	if m != nil && i >= 0 && i < len(m.Kernels) {
		return m.Kernels[i]
	}
	return ""
}

func (m *Meta) variant(i int) string {
	if m != nil && i >= 0 && i < len(m.Variants) {
		return m.Variants[i]
	}
	return ""
}

// microRows returns the row count of micro-batch mb when rows are split
// into micro contiguous chunks the way the wavefront executor splits
// them (chunk k covers rows [k*rows/micro, (k+1)*rows/micro)).
func microRows(rows, micro int, mb int32) int {
	if micro <= 1 {
		return rows
	}
	lo := int(mb) * rows / micro
	hi := (int(mb) + 1) * rows / micro
	return hi - lo
}

// modelledNanos prices one event under the meta's cost model: compute
// events by the step's per-row compute, exchange events by its per-row
// exchange, scaled to the event's micro-batch rows. 0 for bubbles,
// barrier waits and unpriced steps.
func (m *Meta) modelledNanos(ev Event, rows, micro int) float64 {
	if m == nil {
		return 0
	}
	i := int(ev.Step)
	n := microRows(rows, micro, ev.MB)
	switch ev.Phase {
	case Compute:
		if i < len(m.ComputeSecPerRow) {
			return m.ComputeSecPerRow[i] * float64(n) * 1e9
		}
	case Exchange:
		if i < len(m.ExchangeSecPerRow) {
			return m.ExchangeSecPerRow[i] * float64(n) * 1e9
		}
	}
	return 0
}

// BatchRecord is the detached, JSON-ready copy of one recorded batch
// that Snapshot hands out (safe to hold after the pooled original is
// recycled). Events carry only valid slots, in buffer order (grouped by
// step, then IPU; work lane before sync lane).
type BatchRecord struct {
	ID        uint64    `json:"id"`
	Start     time.Time `json:"start"`
	Rows      int       `json:"rows"`
	Steps     int       `json:"steps"`
	Micro     int       `json:"micro,omitempty"`
	Tracks    int       `json:"tracks"`
	WallNanos int64     `json:"wall_ns"`
	Events    []Event   `json:"events"`
}

// Recorder samples one executed batch in every sampleEvery into a
// pooled event buffer and keeps the last keep finished batches in a
// ring for /debug/timeline. Per-event recording is lock-free (fixed
// slots); only Finish — once per sampled batch — and the read side take
// the ring mutex.
type Recorder struct {
	every uint64
	seq   atomic.Uint64
	ids   atomic.Uint64
	pool  sync.Pool
	meta  atomic.Pointer[Meta]

	mu   sync.Mutex
	ring []*Batch
	next int
	n    int

	// Accumulated phase totals over every finished batch: measured
	// nanos per (IPU, phase), and the cost model's priced counterpart.
	// Guarded by mu; read back by Totals/PhaseSeconds/BubbleFraction.
	batches  int64
	rows     int64
	perIPU   [][numPhases]int64
	modelled [numPhases]float64
}

// NewRecorder creates a recorder sampling one batch per sampleEvery
// (minimum 1 = every batch) and retaining the last keep batches.
func NewRecorder(sampleEvery, keep int) *Recorder {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if keep < 1 {
		keep = 1
	}
	r := &Recorder{every: uint64(sampleEvery), ring: make([]*Batch, keep)}
	r.pool.New = func() any { return &Batch{} }
	return r
}

// SampleEvery returns the sampling period.
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.every)
}

// SetMeta installs the executor description once; later calls are
// no-ops (the first executor to describe itself wins, and step layout
// is identical across a model's batch buckets).
func (r *Recorder) SetMeta(m *Meta) {
	if r == nil || m == nil {
		return
	}
	r.meta.CompareAndSwap(nil, m)
}

// Meta returns the installed executor description, or nil.
func (r *Recorder) Meta() *Meta {
	if r == nil {
		return nil
	}
	return r.meta.Load()
}

// Sample returns a pooled batch buffer if this execution falls on the
// sampling grid, nil otherwise (the common, zero-cost case). The caller
// must Begin it, Record into it, and hand it to Finish.
func (r *Recorder) Sample() *Batch {
	if r == nil {
		return nil
	}
	if r.seq.Add(1)%r.every != 0 {
		return nil
	}
	b := r.pool.Get().(*Batch)
	b.id = r.ids.Add(1)
	b.start = time.Now()
	b.wall = 0
	return b
}

// Finish publishes a recorded batch: the measured wall clock is
// stamped, the per-phase totals accumulate, and the batch enters the
// last-N ring (recycling whatever it evicts). The batch must not be
// touched after Finish.
func (r *Recorder) Finish(b *Batch, wallNanos int64) {
	if r == nil || b == nil {
		return
	}
	b.wall = wallNanos
	meta := r.meta.Load()
	r.mu.Lock()
	r.batches++
	r.rows += int64(b.rows)
	if len(r.perIPU) < b.tracks {
		grown := make([][numPhases]int64, b.tracks)
		copy(grown, r.perIPU)
		r.perIPU = grown
	}
	for _, ev := range b.events {
		if ev.Phase == phaseInvalid {
			continue
		}
		r.perIPU[ev.IPU][ev.Phase.index()] += ev.DurNanos
		r.modelled[ev.Phase.index()] += meta.modelledNanos(ev, b.rows, b.micro) / 1e9
	}
	old := r.ring[r.next]
	r.ring[r.next] = b
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
	if old != nil {
		r.pool.Put(old)
	}
}

// Snapshot returns detached copies of the retained batches, oldest
// first. Only valid event slots are copied.
func (r *Recorder) Snapshot() []BatchRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BatchRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		b := r.ring[(r.next-r.n+i+len(r.ring))%len(r.ring)]
		rec := BatchRecord{
			ID: b.id, Start: b.start, Rows: b.rows,
			Steps: b.steps, Micro: b.micro, Tracks: b.tracks, WallNanos: b.wall,
			Events: make([]Event, 0, len(b.events)),
		}
		for _, ev := range b.events {
			if ev.Phase != phaseInvalid {
				rec.Events = append(rec.Events, ev)
			}
		}
		out = append(out, rec)
	}
	return out
}

// IPUPhaseSeconds is one modelled IPU's accumulated measured phase time
// over the recorder's sampled batches.
type IPUPhaseSeconds struct {
	Compute  float64 `json:"compute_s"`
	Exchange float64 `json:"exchange_s"`
	Barrier  float64 `json:"barrier_s"`
	Bubble   float64 `json:"bubble_s"`
}

// Of returns the named phase's seconds.
func (s IPUPhaseSeconds) Of(p Phase) float64 {
	switch p {
	case Compute:
		return s.Compute
	case Exchange:
		return s.Exchange
	case BarrierWait:
		return s.Barrier
	case Bubble:
		return s.Bubble
	default:
		return 0
	}
}

// Total returns the IPU's summed phase time — its sampled wall.
func (s IPUPhaseSeconds) Total() float64 {
	return s.Compute + s.Exchange + s.Barrier + s.Bubble
}

// Totals is the recorder's accumulated phase accounting: measured
// seconds per (IPU, phase) and the cost model's modelled counterpart,
// over every sampled batch since the recorder was created.
type Totals struct {
	Batches int64             `json:"batches"`
	Rows    int64             `json:"rows"`
	PerIPU  []IPUPhaseSeconds `json:"per_ipu"`

	// Modelled compute/exchange seconds the cost model priced the same
	// batches at (per participating IPU, summed over IPUs). Barrier and
	// bubble have no modelled counterpart — they are exactly what the
	// analytic model assumes away.
	ModelledCompute  float64 `json:"modelled_compute_s"`
	ModelledExchange float64 `json:"modelled_exchange_s"`
}

// Totals snapshots the accumulated phase accounting.
func (r *Recorder) Totals() Totals {
	if r == nil {
		return Totals{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := Totals{
		Batches: r.batches, Rows: r.rows,
		PerIPU:           make([]IPUPhaseSeconds, len(r.perIPU)),
		ModelledCompute:  r.modelled[Compute.index()],
		ModelledExchange: r.modelled[Exchange.index()],
	}
	for i, acc := range r.perIPU {
		t.PerIPU[i] = IPUPhaseSeconds{
			Compute:  float64(acc[Compute.index()]) / 1e9,
			Exchange: float64(acc[Exchange.index()]) / 1e9,
			Barrier:  float64(acc[BarrierWait.index()]) / 1e9,
			Bubble:   float64(acc[Bubble.index()]) / 1e9,
		}
	}
	return t
}

// PhaseSeconds returns one (IPU, phase) cell of the accumulated
// measured totals — the scrape-time reader behind the
// ipuserve_phase_seconds gauges.
func (r *Recorder) PhaseSeconds(ipu int, p Phase) float64 {
	if r == nil || p == phaseInvalid {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ipu < 0 || ipu >= len(r.perIPU) {
		return 0
	}
	return float64(r.perIPU[ipu][p.index()]) / 1e9
}

// BubbleFraction returns the share of all sampled per-IPU wall spent in
// pipeline bubbles (0 when nothing is recorded). Sampling scale cancels
// in the ratio, so this is an unbiased estimate of the true fraction.
func (r *Recorder) BubbleFraction() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var bubble, total int64
	for _, acc := range r.perIPU {
		for pi := 0; pi < numPhases; pi++ {
			total += acc[pi]
		}
		bubble += acc[Bubble.index()]
	}
	if total == 0 {
		return 0
	}
	return float64(bubble) / float64(total)
}
