package timeline

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// finishBatch records a tiny two-step, two-IPU pipeline-shaped batch
// (IPU 1 bubbles in step 0, IPU 0 in step 1) and finishes it.
func finishBatch(r *Recorder) bool {
	b := r.Sample()
	if b == nil {
		return false
	}
	b.Begin(2, 2, 4)
	b.Record(0, 0, LaneWork, Compute, 0, 100)
	b.Record(0, 0, LaneSync, Exchange, 100, 20)
	b.Record(0, 1, LaneWork, Bubble, 0, 120)
	b.Record(1, 0, LaneWork, Bubble, 120, 110)
	b.Record(1, 1, LaneWork, Compute, 120, 100)
	b.Record(1, 1, LaneSync, BarrierWait, 220, 10)
	r.Finish(b, 230)
	return true
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if b := r.Sample(); b != nil {
		t.Fatal("nil recorder sampled a batch")
	}
	r.Finish(nil, 0)
	r.SetMeta(&Meta{})
	if r.Meta() != nil || r.Snapshot() != nil || r.SampleEvery() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if r.BubbleFraction() != 0 || r.PhaseSeconds(0, Compute) != 0 {
		t.Fatal("nil recorder reported nonzero totals")
	}
	if tot := r.Totals(); tot.Batches != 0 {
		t.Fatal("nil recorder reported batches")
	}
}

func TestSampling(t *testing.T) {
	r := NewRecorder(3, 4)
	var sampled int
	for i := 0; i < 12; i++ {
		if finishBatch(r) {
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 12 batches at 1-in-3, want 4", sampled)
	}
	if tot := r.Totals(); tot.Batches != 4 || tot.Rows != 16 {
		t.Fatalf("totals = %d batches / %d rows, want 4 / 16", tot.Batches, tot.Rows)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(1, 3)
	for i := 0; i < 7; i++ {
		finishBatch(r)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring retained %d batches, want 3", len(snap))
	}
	// Oldest first, and the evicted early batches are gone.
	for i, b := range snap {
		if want := uint64(5 + i); b.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, b.ID, want)
		}
	}
	// Totals keep accumulating across evictions.
	if tot := r.Totals(); tot.Batches != 7 {
		t.Fatalf("totals.Batches = %d, want 7 (evictions must not erase history)", tot.Batches)
	}
}

func TestPhaseAccounting(t *testing.T) {
	r := NewRecorder(1, 2)
	r.SetMeta(&Meta{
		Model: "m", Strategy: "pipeline", Shards: 2,
		Steps:             []string{"dense0", "dense1"},
		ComputeSecPerRow:  []float64{10e-9, 10e-9},
		ExchangeSecPerRow: []float64{2e-9, 0},
	})
	finishBatch(r)

	if got := r.PhaseSeconds(0, Compute); got != 100e-9 {
		t.Fatalf("ipu0 compute = %g s, want 100e-9", got)
	}
	if got := r.PhaseSeconds(0, Exchange); got != 20e-9 {
		t.Fatalf("ipu0 exchange = %g s, want 20e-9", got)
	}
	if got := r.PhaseSeconds(1, BarrierWait); got != 10e-9 {
		t.Fatalf("ipu1 barrier = %g s, want 10e-9", got)
	}
	tot := r.Totals()
	if len(tot.PerIPU) != 2 {
		t.Fatalf("PerIPU tracks = %d, want 2", len(tot.PerIPU))
	}
	if got := tot.PerIPU[1].Bubble; got != 120e-9 {
		t.Fatalf("ipu1 bubble = %g s, want 120e-9", got)
	}
	// Modelled: 2 compute events × 10ns/row × 4 rows; 1 exchange event on
	// step 0 × 2ns/row × 4 rows.
	if want := 80e-9; tot.ModelledCompute != want {
		t.Fatalf("modelled compute = %g s, want %g", tot.ModelledCompute, want)
	}
	if want := 8e-9; tot.ModelledExchange != want {
		t.Fatalf("modelled exchange = %g s, want %g", tot.ModelledExchange, want)
	}
	// Bubble share: (120+110) of (100+20+120+110+100+10).
	want := 230.0 / 460.0
	if got := r.BubbleFraction(); got != want {
		t.Fatalf("bubble fraction = %g, want %g", got, want)
	}
}

func TestSetMetaFirstWins(t *testing.T) {
	r := NewRecorder(1, 1)
	first := &Meta{Model: "a"}
	r.SetMeta(first)
	r.SetMeta(&Meta{Model: "b"})
	if r.Meta() != first {
		t.Fatal("second SetMeta overwrote the first executor's description")
	}
}

func TestRecordOutOfRangeDropped(t *testing.T) {
	r := NewRecorder(1, 1)
	b := r.Sample()
	b.Begin(2, 2, 1)
	b.Record(-1, 0, LaneWork, Compute, 0, 1)
	b.Record(2, 0, LaneWork, Compute, 0, 1)
	b.Record(0, 2, LaneWork, Compute, 0, 1)
	b.Record(0, 0, 2, Compute, 0, 1)
	r.Finish(b, 1)
	if snap := r.Snapshot(); len(snap[0].Events) != 0 {
		t.Fatalf("out-of-range records produced %d events", len(snap[0].Events))
	}
}

// TestConcurrentRecordAndScrape exercises the lock-free write path under
// the race detector: writer goroutines play the executor (each owning
// disjoint (step, ipu) slots of its own sampled batch) while readers
// scrape summaries and snapshots.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRecorder(1, 4)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Totals()
				r.Snapshot()
				r.BubbleFraction()
				r.PhaseSeconds(0, Compute)
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				b := r.Sample()
				b.Begin(2, 2, 1)
				// Two "shard goroutines" writing disjoint slots, as the
				// executor's workers do.
				var shards sync.WaitGroup
				for k := 0; k < 2; k++ {
					shards.Add(1)
					go func(k int) {
						defer shards.Done()
						b.Record(0, k, LaneWork, Compute, 0, 10)
						b.Record(1, k, LaneWork, Compute, 10, 10)
					}(k)
				}
				shards.Wait()
				r.Finish(b, 20)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tot := r.Totals(); tot.Batches != 800 {
		t.Fatalf("totals.Batches = %d, want 800", tot.Batches)
	}
}

// TestRecordingAllocFree proves the steady-state sampled path — Sample,
// Begin, Record, Finish — performs zero heap allocations once the pool
// and ring are warm, mirroring the executor alloc guarantees.
func TestRecordingAllocFree(t *testing.T) {
	r := NewRecorder(1, 2)
	for i := 0; i < 4; i++ {
		finishBatch(r) // warm the pool and fill the ring
	}
	allocs := testing.AllocsPerRun(100, func() {
		finishBatch(r)
	})
	if allocs != 0 {
		t.Fatalf("sampled recording allocates %.1f times per batch, want 0", allocs)
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	r := NewRecorder(1, 2)
	meta := &Meta{
		Model: "bf", Strategy: "pipeline", Shards: 2,
		Steps:            []string{"dense0", "dense1"},
		Kernels:          []string{"dense", "dense"},
		Variants:         []string{"tiled", "tiled"},
		ComputeSecPerRow: []float64{10e-9, 10e-9},
	}
	r.SetMeta(meta)
	finishBatch(r)
	finishBatch(r)

	var buf bytes.Buffer
	err := WriteChrome(&buf, []ChromeProcess{{Name: "bf", Meta: r.Meta(), Batches: r.Snapshot()}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	n, err := LintChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails its own lint: %v", err)
	}
	// 6 recorded events per batch × 2 batches.
	if n != 12 {
		t.Fatalf("lint counted %d complete events, want 12", n)
	}
	for _, want := range []string{
		`"bf (pipeline, 2 shards)"`, // process label
		`"ipu0"`, `"ipu1"`,          // one track per modelled IPU
		`"dense0"`, `"dense1"`, // compute spans named by step
		`"bubble/fill"`, `"bubble/drain"`, // pipeline fill and drain visible
		`"kernel":"dense"`, `"variant":"tiled"`, `"modelled_ns":`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome export missing %s\n%s", want, out)
		}
	}
}

func TestLintChromeRejectsBadTraces(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"traceEvents": [`,
		"no array":       `{"displayTimeUnit":"ms"}`,
		"no X events":    `{"traceEvents":[{"name":"process_name","ph":"M","pid":0}]}`,
		"bad phase":      `{"traceEvents":[{"name":"b","ph":"B","pid":0,"tid":0,"ts":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"x","ph":"X","pid":0,"tid":0,"ts":0,"dur":-1}]}`,
		"track overlaps": `{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":100},{"name":"b","ph":"X","pid":0,"tid":0,"ts":50,"dur":10}]}`,
	}
	for name, data := range cases {
		if _, err := LintChrome([]byte(data)); err == nil {
			t.Errorf("%s: lint accepted an invalid trace", name)
		}
	}
	// Overlap on different tracks is fine — that's parallelism.
	ok := `{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":100},{"name":"b","ph":"X","pid":0,"tid":1,"ts":50,"dur":10}]}`
	if _, err := LintChrome([]byte(ok)); err != nil {
		t.Errorf("lint rejected cross-track overlap: %v", err)
	}
}
