package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the recorder's batches rendered as the
// JSON-object trace format Perfetto and chrome://tracing load natively
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Each model becomes one process (pid), each modelled IPU one thread
// track (tid), each phase span one complete "X" event with args
// carrying the step name, kernel family, variant and the cost model's
// modelled nanos next to the measured duration.

// ChromeProcess is one model's worth of timeline to export: its meta
// and the batches to lay onto its tracks.
type ChromeProcess struct {
	Name    string
	Meta    *Meta
	Batches []BatchRecord
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// batchGapUS separates consecutive batches on the time axis so ring
// neighbours render as distinct executions instead of one smear.
const batchGapUS = 50.0

// WriteChrome renders the processes as one trace-event JSON document.
// Batches are laid back-to-back per process (their recorded wall
// clocks, separated by a small gap); events within a batch keep their
// measured offsets, so the per-track picture is exactly the recorded
// BSP timeline: compute spans, exchange/barrier gaps, and — under
// pipeline partitioning — the fill/drain bubbles.
func WriteChrome(w io.Writer, procs []ChromeProcess) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pid, proc := range procs {
		label := proc.Name
		if m := proc.Meta; m != nil && m.Strategy != "" {
			label = fmt.Sprintf("%s (%s, %d shards)", proc.Name, m.Strategy, m.Shards)
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": label},
		})
		tracks := 0
		for _, b := range proc.Batches {
			if b.Tracks > tracks {
				tracks = b.Tracks
			}
		}
		for t := 0; t < tracks; t++ {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: t,
				Args: map[string]any{"name": fmt.Sprintf("ipu%d", t)},
			})
		}
		base := 0.0
		for _, b := range proc.Batches {
			trace.TraceEvents = append(trace.TraceEvents, batchEvents(pid, base, b, proc.Meta)...)
			wallUS := float64(b.WallNanos) / 1e3
			if span := batchSpanUS(b); span > wallUS {
				wallUS = span
			}
			base += wallUS + batchGapUS
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

func batchSpanUS(b BatchRecord) float64 {
	var end int64
	for _, ev := range b.Events {
		if e := ev.StartNanos + ev.DurNanos; e > end {
			end = e
		}
	}
	return float64(end) / 1e3
}

// bubbleKind classifies a bubble event as pipeline fill (before the
// track's first compute step), drain (after its last), or stall.
func bubbleKind(b BatchRecord, ev Event) string {
	first, last := int32(-1), int32(-1)
	for _, other := range b.Events {
		if other.IPU == ev.IPU && other.Phase == Compute {
			if first < 0 || other.Step < first {
				first = other.Step
			}
			if other.Step > last {
				last = other.Step
			}
		}
	}
	switch {
	case first < 0:
		return "bubble"
	case ev.Step < first:
		return "fill"
	case ev.Step > last:
		return "drain"
	default:
		return "stall"
	}
}

func batchEvents(pid int, baseUS float64, b BatchRecord, meta *Meta) []chromeEvent {
	micro := b.Micro
	if micro < 1 {
		micro = 1
	}
	out := make([]chromeEvent, 0, len(b.Events))
	for _, ev := range b.Events {
		step := int(ev.Step)
		name := ev.Phase.String()
		if ev.Phase == Compute {
			name = meta.StepName(step)
		} else if ev.Phase == Bubble {
			name = "bubble/" + bubbleKind(b, ev)
		}
		args := map[string]any{
			"step":  meta.StepName(step),
			"phase": ev.Phase.String(),
			"rows":  microRows(b.Rows, micro, ev.MB),
			"batch": b.ID,
		}
		if micro > 1 {
			args["mb"] = ev.MB
		}
		if k := meta.kernel(step); k != "" {
			args["kernel"] = k
		}
		if v := meta.variant(step); v != "" {
			args["variant"] = v
		}
		if mod := meta.modelledNanos(ev, b.Rows, micro); mod > 0 {
			args["modelled_ns"] = int64(mod)
		}
		out = append(out, chromeEvent{
			Name: name, Phase: "X", Cat: ev.Phase.String(),
			PID: pid, TID: int(ev.IPU),
			TS:   baseUS + float64(ev.StartNanos)/1e3,
			Dur:  float64(ev.DurNanos) / 1e3,
			Args: args,
		})
	}
	return out
}

// LintChrome validates a trace-event JSON document: it must parse as
// the object form with a traceEvents array, and every track's complete
// events must be monotonic and non-overlapping — the invariant the BSP
// barrier ordering guarantees on recorded timelines, and the CI gate
// for -timeline-out output. Returns the number of complete events.
func LintChrome(data []byte) (int, error) {
	var trace struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		return 0, fmt.Errorf("not trace-event JSON: %w", err)
	}
	if trace.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	type trackKey struct{ pid, tid int }
	tracks := map[trackKey][]chromeEvent{}
	complete := 0
	for _, ev := range trace.TraceEvents {
		switch ev.Phase {
		case "X":
			complete++
			if ev.Dur < 0 {
				return 0, fmt.Errorf("event %q: negative duration %v", ev.Name, ev.Dur)
			}
			k := trackKey{ev.PID, ev.TID}
			tracks[k] = append(tracks[k], ev)
		case "M":
		default:
			return 0, fmt.Errorf("unexpected event phase %q (want X or M)", ev.Phase)
		}
	}
	if complete == 0 {
		return 0, fmt.Errorf("no complete (ph=X) events")
	}
	for k, evs := range tracks {
		sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		for i := 1; i < len(evs); i++ {
			prevEnd := evs[i-1].TS + evs[i-1].Dur
			// Allow sub-microsecond float slop from the ns→us division.
			if evs[i].TS < prevEnd-0.5 {
				return 0, fmt.Errorf(
					"track pid=%d tid=%d: event %q at %.3fus overlaps previous %q ending %.3fus",
					k.pid, k.tid, evs[i].Name, evs[i].TS, evs[i-1].Name, prevEnd)
			}
		}
	}
	return complete, nil
}
