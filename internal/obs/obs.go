// Package obs is the dependency-free observability layer of the serving
// stack: sharded atomic counters, gauges and log-bucketed histograms that
// are mutex-free on the hot path, a registry that renders them in the
// Prometheus text exposition format, and a sampling per-request tracer
// with a bounded ring of recent traces.
//
// The design constraints come from the serving pipeline it instruments
// (batcher → program cache → compiled plan → sharded execution):
//
//   - recording a metric at steady state must not allocate and must not
//     take a lock — counters stripe across cache lines, gauges are one
//     atomic word, histograms are fixed atomic bucket arrays;
//   - instruments are created once at registration time (model install,
//     cache construction) and held by pointer, so the hot path never
//     performs a name lookup;
//   - scraping is the slow path: /metrics walks the registry under a
//     mutex and evaluates Func instruments, which may themselves take
//     locks (they read serving-side state).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"
)

// L is one metric label: a key/value pair. Labels are part of a metric's
// identity — the same family name with different labels is a different
// time series.
type L struct{ Key, Value string }

// counterStripes is the number of cache-line-padded shards a Counter
// spreads its increments over. Power of two so the index is a mask.
const counterStripes = 16

type counterStripe struct {
	n atomic.Int64
	_ [64 - 8]byte // pad to a cache line so stripes don't false-share
}

// Counter is a monotonically increasing counter, striped across cache
// lines so concurrent hot-path increments from many goroutines don't
// contend on a single word. Add is lock-free and allocation-free; Value
// sums the stripes (scrape path).
type Counter struct {
	stripes [counterStripes]counterStripe
}

// stripeIndex spreads goroutines across stripes using the address of a
// stack variable: distinct goroutines run on distinct stacks, so the high
// bits of a stack address are a cheap, allocation-free shard key that is
// stable for one goroutine (its increments stay on one cache line).
func stripeIndex() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) & (counterStripes - 1))
}

// Add increments the counter by n (n must be non-negative to keep the
// Prometheus counter contract; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.stripes[stripeIndex()].n.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total across all stripes.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Gauge is a settable float64 metric stored as one atomic word.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v to the gauge with a CAS loop (allocation-free).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind tags what a registry entry holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// typeName is the Prometheus TYPE keyword for the kind.
func (k metricKind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered time series.
type metric struct {
	family string
	labels []L // sorted by key
	kind   metricKind

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() int64
	gf func() float64
}

// Registry holds named metrics and renders them for scraping. All
// methods are safe for concurrent use; creation methods are idempotent —
// asking for an existing (family, labels) series returns the same
// instrument, so a re-registered model keeps accumulating into its
// series.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	help    map[string]string
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}, help: map[string]string{}}
}

// Help attaches a HELP string to a metric family, shown once per family
// in the exposition.
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// Counter returns the counter registered under (family, labels), creating
// it on first use.
func (r *Registry) Counter(family string, labels ...L) *Counter {
	m := r.intern(family, labels, kindCounter)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the gauge registered under (family, labels), creating it
// on first use.
func (r *Registry) Gauge(family string, labels ...L) *Gauge {
	m := r.intern(family, labels, kindGauge)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the histogram registered under (family, labels),
// creating it with the given bucket upper bounds on first use (an
// existing series keeps its original bounds).
func (r *Registry) Histogram(family string, bounds []float64, labels ...L) *Histogram {
	m := r.intern(family, labels, kindHistogram)
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the hook that exposes pre-existing serving-side atomics without
// double bookkeeping. Re-registering replaces the function (a replaced
// model installs a fresh closure over its new state).
func (r *Registry) CounterFunc(family string, fn func() int64, labels ...L) {
	m := r.intern(family, labels, kindCounterFunc)
	m.cf = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
// Re-registering replaces the function.
func (r *Registry) GaugeFunc(family string, fn func() float64, labels ...L) {
	m := r.intern(family, labels, kindGaugeFunc)
	m.gf = fn
}

// DropLabeled removes every series carrying the given label pair — how
// the serving registry retires a removed model's series (and the stale
// Func closures over its state) in one sweep.
func (r *Registry) DropLabeled(key, value string) {
	r.mu.Lock()
	for k, m := range r.metrics {
		for _, l := range m.labels {
			if l.Key == key && l.Value == value {
				delete(r.metrics, k)
				break
			}
		}
	}
	r.mu.Unlock()
}

// intern returns the registry entry for (family, labels), creating it if
// absent. An existing entry of a different kind is replaced — last
// registration wins, so a redeploy that changes an instrument's kind
// doesn't export a stale series.
func (r *Registry) intern(family string, labels []L, kind metricKind) *metric {
	ls := sortedLabels(labels)
	key := seriesKey(family, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok && m.kind == kind {
		return m
	}
	m := &metric{family: family, labels: ls, kind: kind}
	r.metrics[key] = m
	return m
}

// sortedLabels returns a copy of labels sorted by key (canonical series
// identity and exposition order).
func sortedLabels(labels []L) []L {
	ls := append([]L(nil), labels...)
	for i := 1; i < len(ls); i++ { // insertion sort: label sets are tiny
		for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	return ls
}
