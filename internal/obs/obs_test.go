package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestRegistryIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L{"model", "bf"})
	b := r.Counter("x_total", L{"model", "bf"})
	if a != b {
		t.Fatal("same (family, labels) should return the same counter")
	}
	c := r.Counter("x_total", L{"model", "dense"})
	if a == c {
		t.Fatal("different labels should be a different series")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Help("reqs_total", "requests served")
	r.Counter("reqs_total", L{"model", "bf"}).Add(3)
	r.Gauge("depth").Set(1.5)
	r.CounterFunc("hits_total", func() int64 { return 7 })
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP reqs_total requests served",
		"# TYPE reqs_total counter",
		`reqs_total{model="bf"} 3`,
		"# TYPE depth gauge",
		"depth 1.5",
		"hits_total 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
}

func TestDropLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L{"model", "bf"}).Inc()
	r.Counter("a_total", L{"model", "dense"}).Inc()
	r.GaugeFunc("b", func() float64 { return 1 }, L{"model", "bf"})
	r.DropLabeled("model", "bf")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, `model="bf"`) {
		t.Fatalf("dropped series still exported:\n%s", out)
	}
	if !strings.Contains(out, `a_total{model="dense"} 1`) {
		t.Fatalf("unrelated series lost:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L{"v", `a"b\c`}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}
