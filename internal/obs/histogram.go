package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe
// without locks or allocations: each bucket is an atomic counter and the
// running sum is a CAS-updated float word. Buckets are defined by their
// upper bounds (ascending); values above the last bound land in an
// implicit +Inf bucket. Log-spaced bounds (ExpBuckets) give constant
// relative quantile error across the orders of magnitude a serving
// latency spans.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	n       atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram creates a histogram over the given ascending upper bounds.
// Panics on empty or unsorted bounds — bucket layouts are compile-time
// decisions, not runtime inputs.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n geometrically spaced upper bounds starting at
// start: start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets covers 1µs to ~33s in factor-2 steps — the span between
// a single fused-plan step and a cold compile on a loaded machine.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 26) }

// SizeBuckets covers 1..2^(n-1) in factor-2 steps (batch sizes, queue
// depths).
func SizeBuckets(n int) []float64 { return ExpBuckets(1, 2, n) }

// Observe records one value. Lock-free and allocation-free.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts, the last entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Merge adds other's observations into h. The histograms must share the
// same bucket layout — merging is how per-worker or per-shard histograms
// roll up into one series without sharing a hot cache line.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets",
			len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bounds at %d: %v vs %v",
				i, b, other.bounds[i])
		}
	}
	var n int64
	for i := range other.counts {
		c := other.counts[i].Load()
		h.counts[i].Add(c)
		n += c
	}
	h.n.Add(n)
	sum := other.Sum()
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sum)) {
			return nil
		}
	}
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// linearly interpolating inside the bucket the rank falls in. Values in
// the +Inf bucket report the last finite bound (an under-estimate, as in
// any bounded-bucket histogram). Returns NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
