package ipu

import "testing"

func TestLinkSizeOnlyCost(t *testing.T) {
	l := IPULink()
	// Observation 1 at pod scope: cost is a function of bytes only. The
	// API admits no endpoint arguments, so the property to check is
	// monotonicity and latency domination for tiny messages.
	small := l.PointToPointSeconds(64)
	big := l.PointToPointSeconds(1 << 20)
	if small <= 0 || big <= small {
		t.Fatalf("point-to-point not monotone: %v vs %v", small, big)
	}
	if small < l.LatencySeconds {
		t.Fatalf("small message %v should pay at least the fixed latency %v", small, l.LatencySeconds)
	}
	if l.PointToPointSeconds(0) != 0 {
		t.Fatal("zero-byte message should be free")
	}
}

func TestLinkAllGather(t *testing.T) {
	l := IPULink()
	const payload = 1 << 20
	if got := l.AllGatherSeconds(1, payload); got != 0 {
		t.Fatalf("all-gather across 1 shard should be free, got %v", got)
	}
	t2 := l.AllGatherSeconds(2, payload)
	t4 := l.AllGatherSeconds(4, payload)
	if t2 <= 0 || t4 <= t2 {
		t.Fatalf("ring all-gather must grow with shard count: %v vs %v", t2, t4)
	}
	// A ring all-gather forwards S-1 payloads per IPU.
	if got := l.AllGatherBytes(4, payload); got != 3*payload {
		t.Fatalf("all-gather bytes = %d, want %d", got, 3*payload)
	}
	if got := l.AllGatherBytes(1, payload); got != 0 {
		t.Fatalf("single-shard all-gather moved %d bytes", got)
	}
}

func TestLinkInjectionBandwidth(t *testing.T) {
	l := IPULink()
	want := l.LinkBandwidth * float64(l.LinksPerIPU)
	if got := l.InjectionBandwidth(); got != want {
		t.Fatalf("injection bandwidth %v, want %v", got, want)
	}
	// Wire time of a large transfer approaches bytes/injection bandwidth.
	const bytes = 1 << 30
	got := l.PointToPointSeconds(bytes)
	wire := float64(bytes) / want
	if got < wire || got > wire+l.LatencySeconds+l.SyncSeconds+1e-12 {
		t.Fatalf("1 GiB transfer %v outside [%v, %v]", got, wire, wire+l.LatencySeconds+l.SyncSeconds)
	}
}
