// Package ipu implements a behavioural model of the Graphcore IPU in the
// style of the Poplar stack: programs are dataflow graphs of variables and
// vertices grouped into compute sets, a compiler places data and code onto
// tiles and plans exchange, and a BSP engine charges cycles for the
// compute / sync / exchange phases.
//
// The model reproduces the structural properties the paper's analysis
// rests on:
//
//   - Observation 1: exchange cost depends on message size, never on the
//     distance between tiles.
//   - Observation 3: total memory is the data footprint *plus*
//     compiler-generated overhead (vertex descriptors, edge pointers,
//     exchange code, control code) that grows with the number of compute
//     sets, vertices and edges.
//   - The AMP (Accumulating Matrix Product) units accelerate dense matmul
//     only; irregular codelets run on the scalar/SIMD path, which is why
//     torch.nn.Linear gets disproportionate hardware help (Section 4.1).
//
// Absolute times are model times derived from the GC200 datasheet numbers
// in Table 1 plus calibration constants documented on Config.
package ipu

// ComputeClass selects the execution path (and thus per-cycle throughput)
// of a vertex.
type ComputeClass int

const (
	// ClassAMP is the dense matmul path through the Accumulating Matrix
	// Product units.
	ClassAMP ComputeClass = iota
	// ClassSIMD is the vectorized float32 pipeline (butterfly stages,
	// block-sparse kernels, elementwise ops).
	ClassSIMD
	// ClassScalar is an unvectorized inner loop (the "IPU naive" matmul).
	ClassScalar
	// ClassCopy moves bytes without arithmetic (rearrangement vertices).
	ClassCopy
)

func (c ComputeClass) String() string {
	switch c {
	case ClassAMP:
		return "amp"
	case ClassSIMD:
		return "simd"
	case ClassScalar:
		return "scalar"
	case ClassCopy:
		return "copy"
	default:
		return "unknown"
	}
}

// Config describes an IPU processor for the machine model. Bandwidth and
// throughput figures derive from Table 1 of the paper and Jia et al.
// (arXiv:1912.03413); the remaining constants are calibration values and
// are documented as such.
type Config struct {
	Name           string
	Tiles          int // IPU-Tiles
	TileMemBytes   int // In-Processor-Memory per tile
	ThreadsPerTile int // hardware worker threads (time-sliced)
	ClockHz        float64

	// Per-tile per-cycle throughput of each compute class (FP32 flops, or
	// bytes for ClassCopy).
	AMPFlopsPerTileCycle    float64
	SIMDFlopsPerTileCycle   float64
	ScalarFlopsPerTileCycle float64
	CopyBytesPerTileCycle   float64

	// Exchange fabric: per-tile receive bandwidth and the fixed costs of a
	// BSP step. Exchange cost is a function of bytes only — Observation 1.
	ExchangeBytesPerTileCycle float64
	SyncCycles                float64 // per BSP superstep
	ExchangeSetupCycles       float64 // per exchange phase

	// Host link (PopTorch measurements include host transfers; the paper
	// notes PopTorch "does not allow to separate the graph").
	HostBandwidth float64 // effective bytes/s host <-> IPU
	HostStepSec   float64 // fixed PopTorch dispatch overhead per program run

	// Memory-model constants (compiler overhead per object). These drive
	// Fig. 5's super-linear memory growth.
	VertexDescriptorBytes   int     // per vertex instance
	EdgeBytes               int     // per vertex<->variable edge
	CodeletCodeBytes        int     // per distinct codelet resident on a tile
	CSControlBytes          int     // per compute set of control code per tile
	ExchangeCodeBytesPerMsg int     // per exchange message endpoint
	ExchangeCodePerByte     float64 // marginal exchange code per payload byte

	// Per-vertex launch overhead charged to the issuing tile.
	VertexOverheadCycles float64

	// StreamBufferBytes caps the per-tile exchange landing buffer: inputs
	// larger than this are exchanged in rounds through a double buffer
	// (poplibs plans bound landing memory the same way). Exchange *time*
	// still scales with total bytes; only resident memory is capped.
	StreamBufferBytes int
}

// GC200 returns the model of the second-generation IPU used in the paper
// (M2000 Pod-4 restricted to one processor, as in Section 3).
//
// Derivations from Table 1:
//   - 62.5 TFLOP/s FP32 peak = 1472 tiles × 32 flops/cycle × 1.325 GHz.
//   - 900 MB on-chip = 1472 × 624 KiB.
//   - 47.5 TB/s on-chip bandwidth ≈ tile-local loads; the all-to-all
//     exchange sustains ~8 bytes/cycle/tile (≈15.6 TB/s aggregate,
//     matching Jia et al.'s measurements).
//   - Off-chip (host) 20 GB/s; PopTorch sustains only a fraction — the
//     6 GB/s effective value is calibrated so PopTorch dense matmul lands
//     near Table 2's 1677 GFLOP/s.
func GC200() Config {
	return Config{
		Name:           "GC200",
		Tiles:          1472,
		TileMemBytes:   624 * 1024,
		ThreadsPerTile: 6,
		ClockHz:        1.325e9,

		AMPFlopsPerTileCycle:    32,
		SIMDFlopsPerTileCycle:   4,
		ScalarFlopsPerTileCycle: 1.0 / 3, // ~6 cycles per multiply-add
		CopyBytesPerTileCycle:   8,

		ExchangeBytesPerTileCycle: 8,
		SyncCycles:                400,
		ExchangeSetupCycles:       200,

		HostBandwidth: 6e9,
		HostStepSec:   1e-3,

		VertexDescriptorBytes:   32,
		EdgeBytes:               8,
		CodeletCodeBytes:        256,
		CSControlBytes:          16,
		ExchangeCodeBytesPerMsg: 24,
		ExchangeCodePerByte:     0.02,

		VertexOverheadCycles: 20,

		StreamBufferBytes: 48 * 1024,
	}
}

// GC2 returns the first-generation IPU (for completeness; earlier related
// work characterized this part).
func GC2() Config {
	c := GC200()
	c.Name = "GC2"
	c.Tiles = 1216
	c.TileMemBytes = 256 * 1024
	c.ClockHz = 1.6e9
	c.AMPFlopsPerTileCycle = 16
	return c
}

// PeakFlops returns the dense FP32 peak in FLOP/s.
func (c Config) PeakFlops() float64 {
	return float64(c.Tiles) * c.AMPFlopsPerTileCycle * c.ClockHz
}

// TotalMemBytes returns the aggregate In-Processor-Memory.
func (c Config) TotalMemBytes() int { return c.Tiles * c.TileMemBytes }

// ExchangeAggregateBytesPerSec returns the all-to-all exchange bandwidth.
func (c Config) ExchangeAggregateBytesPerSec() float64 {
	return float64(c.Tiles) * c.ExchangeBytesPerTileCycle * c.ClockHz
}

// ClassRate returns per-tile per-cycle throughput for a compute class
// (flops, or bytes for ClassCopy).
func (c Config) ClassRate(cl ComputeClass) float64 {
	switch cl {
	case ClassAMP:
		return c.AMPFlopsPerTileCycle
	case ClassSIMD:
		return c.SIMDFlopsPerTileCycle
	case ClassScalar:
		return c.ScalarFlopsPerTileCycle
	case ClassCopy:
		return c.CopyBytesPerTileCycle
	default:
		return 1
	}
}
