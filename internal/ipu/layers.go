package ipu

import (
	"fmt"
	"math"
)

// BuildLowRank builds the rank-r layer y = U·(Vᵀ·x) on a batch: two small
// AMP matmuls (2 compute sets). Maps well to the IPU — Table 4 measures
// low-rank as the fastest method there.
func BuildLowRank(cfg Config, n, rank, batch int) *Workload {
	g := NewGraph(cfg)
	x := g.AddVariable("X", n*batch, 4)
	u := g.AddVariable("U", n*rank, 4)
	v := g.AddVariable("V", n*rank, 4)
	tvar := g.AddVariable("t", rank*batch, 4)
	y := g.AddVariable("Y", n*batch, 4)
	flops := 4 * float64(n) * float64(rank) * float64(batch)
	w := &Workload{Name: fmt.Sprintf("lowrank-%d-r%d-b%d", n, rank, batch),
		Graph: g, Flops: flops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		HostBytes:       float64(2 * n * batch * 4)}

	cs1 := g.AddComputeSet("lowrank.vx")
	tiles := min(cfg.Tiles, max(1, rank))
	per := ceilDiv(rank, tiles)
	for t := 0; t < tiles; t++ {
		r0 := t * per
		r1 := min(r0+per, rank)
		if r0 >= r1 {
			break
		}
		g.AddVertex(cs1, "PoplinAMPBlock", ClassAMP, t,
			[]VarRegion{
				{Var: v, Start: r0 * n, End: r1 * n},
				{Var: x, Start: 0, End: n * batch},
			},
			[]VarRegion{{Var: tvar, Start: r0 * batch, End: r1 * batch}},
			2*float64(r1-r0)*float64(n)*float64(batch))
	}
	g.Execute(cs1)

	cs2 := g.AddComputeSet("lowrank.ut")
	rowTiles := min(cfg.Tiles, ceilDiv(n, ampGrain))
	rowsPer := ceilDiv(n, rowTiles)
	for t := 0; t < rowTiles; t++ {
		n0 := t * rowsPer
		n1 := min(n0+rowsPer, n)
		if n0 >= n1 {
			break
		}
		g.AddVertex(cs2, "PoplinAMPBlock", ClassAMP, t,
			[]VarRegion{
				{Var: u, Start: n0 * rank, End: n1 * rank},
				{Var: tvar, Start: 0, End: rank * batch},
			},
			[]VarRegion{{Var: y, Start: n0 * batch, End: n1 * batch}},
			2*float64(n1-n0)*float64(rank)*float64(batch))
	}
	g.Execute(cs2)
	return w
}

// BuildCirculant builds the FFT-based circulant layer: forward FFT,
// pointwise complex multiply, inverse FFT — three fused compute-set
// groups, the way poplibs implements batched transforms. The SIMD class
// models the lack of AMP help for FFT data flow.
func BuildCirculant(cfg Config, n, batch int) *Workload {
	g := NewGraph(cfg)
	x := g.AddVariable("X", n*batch, 4)
	spec := g.AddVariable("spectrum", 2*n*batch, 4) // interleaved complex
	kern := g.AddVariable("kernelFFT", 2*n, 4)
	y := g.AddVariable("Y", n*batch, 4)
	logN := int(math.Log2(float64(n)))
	// 5·N·log2 N real flops per FFT per sample; 3 transforms + pointwise.
	flops := (3*5*float64(n)*float64(logN) + 6*float64(n)) * float64(batch)
	w := &Workload{Name: fmt.Sprintf("circulant-%d-b%d", n, batch),
		Graph: g, Flops: flops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		HostBytes:       float64(2 * n * batch * 4)}

	tiles := min(cfg.Tiles, batch)
	per := ceilDiv(batch, tiles)
	addStage := func(name string, in, out VarID, inW, outW int, stageFlops float64) {
		cs := g.AddComputeSet(name)
		for t := 0; t < tiles; t++ {
			b0 := t * per
			b1 := min(b0+per, batch)
			if b0 >= b1 {
				break
			}
			ins := []VarRegion{{Var: in, Start: b0 * inW, End: b1 * inW}}
			if name == "circ.pointwise" {
				ins = append(ins, VarRegion{Var: kern, Start: 0, End: 2 * n})
			}
			g.AddVertex(cs, name, ClassSIMD, t, ins,
				[]VarRegion{{Var: out, Start: b0 * outW, End: b1 * outW}},
				stageFlops*float64(b1-b0))
		}
		g.Execute(cs)
	}
	fftFlops := 5 * float64(n) * float64(logN)
	addStage("circ.fft", x, spec, n, 2*n, fftFlops)
	addStage("circ.pointwise", spec, spec, 2*n, 2*n, 6*float64(n))
	addStage("circ.ifft", spec, y, 2*n, n, fftFlops)
	return w
}

// BuildFastfood builds S·H·G·Π·H·B on a batch. Each FWHT butterfly stage
// is its own compute set (2·log2 N of them) plus the three diagonal
// scalings and the permutation — the longest program of all the methods,
// which is why Table 4 measures Fastfood as the slowest on the IPU.
func BuildFastfood(cfg Config, n, batch int) *Workload {
	g := NewGraph(cfg)
	x0 := g.AddVariable("X.ping", n*batch, 4)
	x1 := g.AddVariable("X.pong", n*batch, 4)
	diag := g.AddVariable("SGB", 3*n, 4)
	logN := int(math.Log2(float64(n)))
	flops := (2*float64(n)*float64(logN) + 3*float64(n)) * float64(batch)
	w := &Workload{Name: fmt.Sprintf("fastfood-%d-b%d", n, batch),
		Graph: g, Flops: flops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		HostBytes:       float64(2 * n * batch * 4)}

	tiles := min(cfg.Tiles, n/2)
	src, dst := x0, x1
	diagCS := func(name string, which int) {
		cs := g.AddComputeSet(name)
		per := ceilDiv(n, tiles)
		for t := 0; t < tiles; t++ {
			f0 := t * per
			f1 := min(f0+per, n)
			if f0 >= f1 {
				break
			}
			g.AddVertex(cs, name, ClassSIMD, t,
				[]VarRegion{
					{Var: src, Start: f0 * batch, End: f1 * batch},
					{Var: diag, Start: which*n + f0, End: which*n + f1},
				},
				[]VarRegion{{Var: dst, Start: f0 * batch, End: f1 * batch}},
				float64((f1-f0)*batch)*2)
		}
		g.Execute(cs)
		src, dst = dst, src
	}
	fwhtStage := func(s int, tag string) {
		cs := g.AddComputeSet(fmt.Sprintf("ff.fwht%s.%d", tag, s))
		half := 1 << (s - 1)
		block := half << 1
		pairsPer := ceilDiv(n/2, tiles)
		for t := 0; t < tiles; t++ {
			p0 := t * pairsPer
			p1 := min(p0+pairsPer, n/2)
			if p0 >= p1 {
				break
			}
			var ins, outs []VarRegion
			for p := p0; p < p1; p++ {
				blockIdx := p / half
				kk := p % half
				top := blockIdx*block + kk
				bot := top + half
				ins = append(ins,
					VarRegion{Var: src, Start: top * batch, End: (top + 1) * batch},
					VarRegion{Var: src, Start: bot * batch, End: (bot + 1) * batch})
				outs = append(outs,
					VarRegion{Var: dst, Start: top * batch, End: (top + 1) * batch},
					VarRegion{Var: dst, Start: bot * batch, End: (bot + 1) * batch})
			}
			g.AddVertex(cs, "FWHTPair", ClassSIMD, t, ins, outs,
				2*float64(p1-p0)*float64(batch))
		}
		g.Execute(cs)
		src, dst = dst, src
	}
	permCS := func() {
		cs := g.AddComputeSet("ff.permute")
		per := ceilDiv(n, tiles)
		for t := 0; t < tiles; t++ {
			f0 := t * per
			f1 := min(f0+per, n)
			if f0 >= f1 {
				break
			}
			g.AddVertex(cs, "Permute", ClassCopy, t,
				[]VarRegion{{Var: src, Start: f0 * batch, End: f1 * batch}},
				[]VarRegion{{Var: dst, Start: f0 * batch, End: f1 * batch}},
				float64((f1-f0)*batch*4))
		}
		g.Execute(cs)
		src, dst = dst, src
	}

	// Each FWHT stage in plain PyTorch lowers to several framework
	// primitives on the IPU (no native FWHT; the paper notes FFT-library
	// compatibility problems) — the reason Table 4 measures Fastfood as
	// the slowest IPU method.
	scratch := newLoweringScratch(g)
	diagCS("ff.scaleB", 2)
	for s := 1; s <= logN; s++ {
		addLoweringCS(g, fmt.Sprintf("ff.lower1.%d", s), scratch, 6)
		fwhtStage(s, "1")
	}
	permCS()
	diagCS("ff.scaleG", 1)
	for s := 1; s <= logN; s++ {
		addLoweringCS(g, fmt.Sprintf("ff.lower2.%d", s), scratch, 6)
		fwhtStage(s, "2")
	}
	diagCS("ff.scaleS", 0)
	return w
}
