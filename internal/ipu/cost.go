package ipu

import "fmt"

// StepCost breaks down the model time of one program step.
type StepCost struct {
	Label          string
	SyncCycles     float64
	ExchangeCycles float64
	ComputeCycles  float64
	HostSeconds    float64
}

// Cycles returns the on-device cycles of the step.
func (s StepCost) Cycles() float64 { return s.SyncCycles + s.ExchangeCycles + s.ComputeCycles }

// ExecReport summarizes a simulated program run.
type ExecReport struct {
	Steps         []StepCost
	TotalCycles   float64
	HostSeconds   float64
	DeviceSeconds float64
}

// Seconds returns end-to-end model time (device + host).
func (r ExecReport) Seconds() float64 { return r.DeviceSeconds + r.HostSeconds }

// Simulate charges cycles for every program step under the BSP model:
// each executed compute set costs sync + exchange (bytes/bandwidth on the
// busiest tile) + compute (busiest tile, vertices shared across hardware
// threads). Host steps cost bytes/HostBandwidth.
func Simulate(c *Compiled) ExecReport {
	cfg := c.Graph.Config
	rep := ExecReport{}
	for i, st := range c.Graph.Program {
		switch st.Kind {
		case StepHostCopy:
			sc := StepCost{Label: st.Label, HostSeconds: st.HostBytes / cfg.HostBandwidth}
			rep.Steps = append(rep.Steps, sc)
			rep.HostSeconds += sc.HostSeconds
		case StepExecute:
			cs := c.Graph.CSs[st.CS]
			sc := StepCost{Label: st.Label, SyncCycles: cfg.SyncCycles}
			// Exchange: busiest tile's traffic over its per-tile bandwidth.
			if ex := c.exchanges[i]; ex != nil && ex.total > 0 {
				var worst float64
				for t, b := range ex.inBytes {
					if tot := b + ex.outBytes[t]; tot > worst {
						worst = tot
					}
				}
				for t, b := range ex.outBytes {
					if _, dup := ex.inBytes[t]; !dup && b > worst {
						worst = b
					}
				}
				sc.ExchangeCycles = cfg.ExchangeSetupCycles + worst/cfg.ExchangeBytesPerTileCycle
			}
			// Compute: per tile, vertices share ThreadsPerTile workers.
			perTile := map[int]*tileWork{}
			for _, vx := range cs.Vertices {
				w := perTile[vx.Tile]
				if w == nil {
					w = &tileWork{}
					perTile[vx.Tile] = w
				}
				cyc := vx.Flops/cfg.ClassRate(vx.Class) + cfg.VertexOverheadCycles
				w.sum += cyc
				w.count++
				if cyc > w.longest {
					w.longest = cyc
				}
			}
			var worstCompute float64
			for _, w := range perTile {
				threads := cfg.ThreadsPerTile
				if w.count < threads {
					threads = w.count
				}
				t := w.sum / float64(threads)
				if t < w.longest {
					t = w.longest
				}
				if t > worstCompute {
					worstCompute = t
				}
			}
			sc.ComputeCycles = worstCompute
			rep.Steps = append(rep.Steps, sc)
			rep.TotalCycles += sc.Cycles()
		default:
			panic(fmt.Sprintf("ipu: unknown step kind %d", st.Kind))
		}
	}
	rep.DeviceSeconds = rep.TotalCycles / cfg.ClockHz
	return rep
}

type tileWork struct {
	sum     float64
	longest float64
	count   int
}

// ExchangeResult is one point of the Fig. 3 microbenchmark.
type ExchangeResult struct {
	SrcTile, DstTile     int
	Bytes                int
	LatencySeconds       float64
	BandwidthBytesPerSec float64
}

// ExchangeMicrobench models a tile-to-tile copy of the given size,
// reproducing Fig. 3: the cost is sync + setup + size/bandwidth and is
// independent of the distance between the tiles (Observation 1). It
// errors when the payload cannot fit in the destination tile's memory —
// the regime where Fig. 3's premise breaks.
func ExchangeMicrobench(cfg Config, src, dst, bytes int) (ExchangeResult, error) {
	if src == dst || src < 0 || dst < 0 || src >= cfg.Tiles || dst >= cfg.Tiles {
		return ExchangeResult{}, fmt.Errorf("ipu: invalid tile pair (%d,%d)", src, dst)
	}
	if bytes <= 0 {
		return ExchangeResult{}, fmt.Errorf("ipu: invalid size %d", bytes)
	}
	if bytes > cfg.TileMemBytes {
		return ExchangeResult{}, fmt.Errorf("ipu: %d bytes exceed the %d-byte tile memory", bytes, cfg.TileMemBytes)
	}
	cycles := cfg.SyncCycles + cfg.ExchangeSetupCycles + float64(bytes)/cfg.ExchangeBytesPerTileCycle
	lat := cycles / cfg.ClockHz
	return ExchangeResult{
		SrcTile: src, DstTile: dst, Bytes: bytes,
		LatencySeconds:       lat,
		BandwidthBytesPerSec: float64(bytes) / lat,
	}, nil
}
