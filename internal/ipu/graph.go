package ipu

import "fmt"

// VarID identifies a variable (tensor) in a Graph.
type VarID int

// ComputeSetID identifies a compute set.
type ComputeSetID int

// Interval maps a contiguous element range [Start, End) of a variable to a
// tile.
type Interval struct {
	Tile       int
	Start, End int
}

// Variable is a graph tensor with an element count, element width, and a
// tile mapping.
type Variable struct {
	ID        VarID
	Name      string
	Elems     int
	ElemBytes int
	Mapping   []Interval // sorted by Start, disjoint, covering [0, Elems)
}

// Bytes returns the payload footprint.
func (v *Variable) Bytes() int { return v.Elems * v.ElemBytes }

// VarRegion references elements [Start, End) of a variable.
type VarRegion struct {
	Var        VarID
	Start, End int
}

// Len returns the element count of the region.
func (r VarRegion) Len() int { return r.End - r.Start }

// Vertex is a unit of computation mapped to one tile.
type Vertex struct {
	Codelet string
	Class   ComputeClass
	Tile    int
	Inputs  []VarRegion
	Outputs []VarRegion
	// Flops is the arithmetic work (bytes moved for ClassCopy).
	Flops float64
}

// ComputeSet groups vertices that execute in one BSP superstep.
type ComputeSet struct {
	ID       ComputeSetID
	Name     string
	Vertices []*Vertex
}

// StepKind discriminates program steps.
type StepKind int

const (
	// StepExecute runs a compute set (sync + exchange + compute).
	StepExecute StepKind = iota
	// StepHostCopy moves bytes between host and IPU (PopTorch-style runs).
	StepHostCopy
)

// Step is one element of the program sequence.
type Step struct {
	Kind StepKind
	CS   ComputeSetID // for StepExecute
	// HostBytes is the payload of a StepHostCopy.
	HostBytes float64
	Label     string
}

// Graph is a Poplar-style dataflow graph plus a program (step sequence).
type Graph struct {
	Config  Config
	Vars    []*Variable
	CSs     []*ComputeSet
	Program []Step
}

// NewGraph creates an empty graph for a machine config.
func NewGraph(cfg Config) *Graph {
	return &Graph{Config: cfg}
}

// AddVariable declares a tensor with elems elements of elemBytes each. The
// mapping defaults to a linear spread over all tiles (set later by the
// compiler); use SetTileMapping for explicit placement.
func (g *Graph) AddVariable(name string, elems, elemBytes int) VarID {
	if elems < 0 || elemBytes <= 0 {
		panic(fmt.Sprintf("ipu: invalid variable %q: %d elems × %d bytes", name, elems, elemBytes))
	}
	id := VarID(len(g.Vars))
	g.Vars = append(g.Vars, &Variable{ID: id, Name: name, Elems: elems, ElemBytes: elemBytes})
	return id
}

// SetTileMapping assigns explicit intervals. Intervals must be disjoint,
// sorted, and cover [0, Elems).
func (g *Graph) SetTileMapping(id VarID, mapping []Interval) error {
	v := g.Vars[id]
	covered := 0
	for i, iv := range mapping {
		if iv.Tile < 0 || iv.Tile >= g.Config.Tiles {
			return fmt.Errorf("ipu: %q interval %d targets tile %d outside 0..%d", v.Name, i, iv.Tile, g.Config.Tiles-1)
		}
		if iv.Start != covered || iv.End < iv.Start {
			return fmt.Errorf("ipu: %q mapping not contiguous at interval %d", v.Name, i)
		}
		covered = iv.End
	}
	if covered != v.Elems {
		return fmt.Errorf("ipu: %q mapping covers %d of %d elements", v.Name, covered, v.Elems)
	}
	v.Mapping = mapping
	return nil
}

// LinearMapping spreads elems contiguously across tiles with equal-sized
// grains (the Poplar default mapping).
func LinearMapping(cfg Config, elems int) []Interval {
	if elems == 0 {
		return nil
	}
	grain := (elems + cfg.Tiles - 1) / cfg.Tiles
	var out []Interval
	for t, start := 0, 0; start < elems; t, start = t+1, start+grain {
		end := start + grain
		if end > elems {
			end = elems
		}
		out = append(out, Interval{Tile: t, Start: start, End: end})
	}
	return out
}

// AddComputeSet creates a named compute set.
func (g *Graph) AddComputeSet(name string) ComputeSetID {
	id := ComputeSetID(len(g.CSs))
	g.CSs = append(g.CSs, &ComputeSet{ID: id, Name: name})
	return id
}

// AddVertex places a vertex in a compute set on a tile.
func (g *Graph) AddVertex(cs ComputeSetID, codelet string, class ComputeClass, tile int,
	inputs, outputs []VarRegion, flops float64) {
	if tile < 0 || tile >= g.Config.Tiles {
		panic(fmt.Sprintf("ipu: vertex %q on tile %d outside 0..%d", codelet, tile, g.Config.Tiles-1))
	}
	for _, r := range append(append([]VarRegion{}, inputs...), outputs...) {
		if int(r.Var) >= len(g.Vars) || r.Start < 0 || r.End > g.Vars[r.Var].Elems || r.Start > r.End {
			panic(fmt.Sprintf("ipu: vertex %q has bad region %+v", codelet, r))
		}
	}
	g.CSs[cs].Vertices = append(g.CSs[cs].Vertices, &Vertex{
		Codelet: codelet, Class: class, Tile: tile,
		Inputs: inputs, Outputs: outputs, Flops: flops,
	})
}

// Execute appends a compute-set execution to the program.
func (g *Graph) Execute(cs ComputeSetID) {
	g.Program = append(g.Program, Step{Kind: StepExecute, CS: cs, Label: g.CSs[cs].Name})
}

// HostCopy appends a host transfer step.
func (g *Graph) HostCopy(label string, bytes float64) {
	g.Program = append(g.Program, Step{Kind: StepHostCopy, HostBytes: bytes, Label: label})
}

// NumEdges counts vertex<->variable connections across the whole graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, cs := range g.CSs {
		for _, v := range cs.Vertices {
			n += len(v.Inputs) + len(v.Outputs)
		}
	}
	return n
}

// NumVertices counts vertices across all compute sets.
func (g *Graph) NumVertices() int {
	n := 0
	for _, cs := range g.CSs {
		n += len(cs.Vertices)
	}
	return n
}
