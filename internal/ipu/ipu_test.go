package ipu

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/pixelfly"
)

func TestGC200SpecMatchesTable1(t *testing.T) {
	cfg := GC200()
	if cfg.Tiles != 1472 {
		t.Errorf("tiles = %d, want 1472", cfg.Tiles)
	}
	// 900 MB on-chip memory (1472 × 624 KiB = 918 MB ≈ Table 1's 900 MB).
	if got := cfg.TotalMemBytes(); got < 890e6 || got > 950e6 {
		t.Errorf("total memory = %d, want ~900 MB", got)
	}
	// 62.5 TFLOP/s FP32 peak.
	if got := cfg.PeakFlops(); got < 62e12 || got > 63e12 {
		t.Errorf("peak = %v, want ~62.5 TF", got)
	}
	if cfg.ThreadsPerTile != 6 {
		t.Errorf("threads per tile = %d, want 6", cfg.ThreadsPerTile)
	}
}

func TestLinearMappingCoversEverything(t *testing.T) {
	cfg := GC200()
	for _, elems := range []int{1, 7, 1472, 1473, 1 << 20} {
		m := LinearMapping(cfg, elems)
		covered := 0
		for i, iv := range m {
			if iv.Start != covered {
				t.Fatalf("elems=%d interval %d not contiguous", elems, i)
			}
			covered = iv.End
			if iv.Tile < 0 || iv.Tile >= cfg.Tiles {
				t.Fatalf("elems=%d interval %d bad tile %d", elems, i, iv.Tile)
			}
		}
		if covered != elems {
			t.Fatalf("elems=%d covered %d", elems, covered)
		}
	}
}

func TestSetTileMappingValidation(t *testing.T) {
	g := NewGraph(GC200())
	v := g.AddVariable("x", 10, 4)
	if err := g.SetTileMapping(v, []Interval{{Tile: 0, Start: 0, End: 5}}); err == nil {
		t.Fatal("partial mapping accepted")
	}
	if err := g.SetTileMapping(v, []Interval{{Tile: -1, Start: 0, End: 10}}); err == nil {
		t.Fatal("negative tile accepted")
	}
	if err := g.SetTileMapping(v, []Interval{{Tile: 0, Start: 0, End: 10}}); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
}

func TestCompileCountsGraphObjects(t *testing.T) {
	g := NewGraph(GC200())
	a := g.AddVariable("a", 100, 4)
	b := g.AddVariable("b", 100, 4)
	cs := g.AddComputeSet("add")
	g.AddVertex(cs, "Add", ClassSIMD, 0,
		[]VarRegion{{Var: a, Start: 0, End: 100}},
		[]VarRegion{{Var: b, Start: 0, End: 100}}, 100)
	g.Execute(cs)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVariables != 2 || c.NumVertices != 1 || c.NumEdges != 2 || c.NumComputeSets != 1 {
		t.Fatalf("counters wrong: %+v", c)
	}
	if c.Device.Variables != 800 {
		t.Fatalf("variable bytes = %d, want 800", c.Device.Variables)
	}
}

func TestCompileOOM(t *testing.T) {
	cfg := GC200()
	g := NewGraph(cfg)
	// One variable pinned entirely to tile 0, larger than tile memory.
	v := g.AddVariable("huge", cfg.TileMemBytes/4+1000, 4)
	if err := g.SetTileMapping(v, []Interval{{Tile: 0, Start: 0, End: cfg.TileMemBytes/4 + 1000}}); err != nil {
		t.Fatal(err)
	}
	_, err := Compile(g)
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOMError, got %v", err)
	}
	if oom.Tile != 0 {
		t.Fatalf("OOM tile = %d, want 0", oom.Tile)
	}
	if !strings.Contains(oom.Error(), "out of memory") {
		t.Fatalf("unhelpful error: %v", oom)
	}
}

func TestExchangePlansOnlyRemoteBytes(t *testing.T) {
	cfg := GC200()
	g := NewGraph(cfg)
	a := g.AddVariable("a", 1000, 4)
	if err := g.SetTileMapping(a, []Interval{
		{Tile: 0, Start: 0, End: 500},
		{Tile: 1, Start: 500, End: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	out := g.AddVariable("out", 1000, 4)
	if err := g.SetTileMapping(out, []Interval{{Tile: 0, Start: 0, End: 1000}}); err != nil {
		t.Fatal(err)
	}
	cs := g.AddComputeSet("consume")
	g.AddVertex(cs, "Consume", ClassSIMD, 0,
		[]VarRegion{{Var: a, Start: 0, End: 1000}},
		[]VarRegion{{Var: out, Start: 0, End: 1000}}, 1000)
	g.Execute(cs)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	ex := c.exchanges[0]
	// Only the half of `a` living on tile 1 crosses the fabric.
	if got := ex.inBytes[0]; got != 2000 {
		t.Fatalf("tile 0 receives %v bytes, want 2000", got)
	}
	if got := ex.outBytes[1]; got != 2000 {
		t.Fatalf("tile 1 sends %v bytes, want 2000", got)
	}
}

func TestSimulateChargesSyncPerStep(t *testing.T) {
	cfg := GC200()
	g := NewGraph(cfg)
	a := g.AddVariable("a", 8, 4)
	cs := g.AddComputeSet("noop")
	g.AddVertex(cs, "Nop", ClassSIMD, 0, nil, []VarRegion{{Var: a, Start: 0, End: 8}}, 1)
	g.Execute(cs)
	g.Execute(cs)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	rep := Simulate(c)
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(rep.Steps))
	}
	if rep.Steps[0].SyncCycles != cfg.SyncCycles {
		t.Fatalf("sync cycles = %v, want %v", rep.Steps[0].SyncCycles, cfg.SyncCycles)
	}
}

func TestSimulateThreadsShareTile(t *testing.T) {
	// 6 equal vertices on one tile should take ~1 vertex-time (6 threads),
	// 12 should take ~2.
	cfg := GC200()
	build := func(n int) float64 {
		g := NewGraph(cfg)
		a := g.AddVariable("a", 1024, 4)
		cs := g.AddComputeSet("work")
		for i := 0; i < n; i++ {
			g.AddVertex(cs, "W", ClassSIMD, 0, nil,
				[]VarRegion{{Var: a, Start: 0, End: 1}}, 6000)
		}
		g.Execute(cs)
		c, err := Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		return Simulate(c).Steps[0].ComputeCycles
	}
	t6, t12 := build(6), build(12)
	ratio := t12 / t6
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("12 vs 6 vertices ratio = %v, want ~2 (time-sliced threads)", ratio)
	}
}

// Observation 1: exchange latency/bandwidth between neighbouring tiles
// (0,1) and distant tiles (0,644) must be identical, and must scale with
// message size — Fig. 3.
func TestFig3ExchangeDistanceIndependence(t *testing.T) {
	cfg := GC200()
	for _, size := range []int{8, 1024, 64 * 1024, 256 * 1024} {
		near, err := ExchangeMicrobench(cfg, 0, 1, size)
		if err != nil {
			t.Fatal(err)
		}
		far, err := ExchangeMicrobench(cfg, 0, 644, size)
		if err != nil {
			t.Fatal(err)
		}
		if near.LatencySeconds != far.LatencySeconds {
			t.Fatalf("size %d: latency differs with distance: %v vs %v",
				size, near.LatencySeconds, far.LatencySeconds)
		}
	}
	small, _ := ExchangeMicrobench(cfg, 0, 1, 64)
	large, _ := ExchangeMicrobench(cfg, 0, 1, 256*1024)
	if large.LatencySeconds <= small.LatencySeconds {
		t.Fatal("latency must grow with size")
	}
	if large.BandwidthBytesPerSec <= small.BandwidthBytesPerSec {
		t.Fatal("effective bandwidth must improve with size (fixed costs amortize)")
	}
}

func TestExchangeMicrobenchErrors(t *testing.T) {
	cfg := GC200()
	if _, err := ExchangeMicrobench(cfg, 0, 0, 64); err == nil {
		t.Fatal("same-tile copy accepted")
	}
	if _, err := ExchangeMicrobench(cfg, 0, 1, cfg.TileMemBytes+1); err == nil {
		t.Fatal("payload larger than tile memory accepted")
	}
	if _, err := ExchangeMicrobench(cfg, 0, 1, 0); err == nil {
		t.Fatal("zero-size copy accepted")
	}
}

// Table 2 shape (IPU columns): poplin ≫ naive ≫ blocked, and poplin above
// half of peak.
func TestTable2IPUOrdering(t *testing.T) {
	cfg := GC200()
	n := 1024 // smaller than the paper's 2048 to keep the test fast
	gf := map[MatMulVariant]float64{}
	for _, v := range []MatMulVariant{MMNaive, MMBlocked, MMPoplin} {
		res, err := Run(BuildDenseMatMul(cfg, n, n, n, v), RunOptions{})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		gf[v] = res.GFlops()
	}
	if !(gf[MMPoplin] > gf[MMNaive] && gf[MMNaive] > gf[MMBlocked]) {
		t.Fatalf("ordering wrong: poplin=%v naive=%v blocked=%v",
			gf[MMPoplin], gf[MMNaive], gf[MMBlocked])
	}
	if gf[MMPoplin] < 0.3*cfg.PeakFlops()/1e9 {
		t.Fatalf("poplin %v GF too far below peak", gf[MMPoplin])
	}
}

// Table 2 sparse shape: dense-equivalent GFLOP/s at 99% sparsity exceeds
// the device peak (the paper's starred numbers).
func TestTable2SparseExceedsPeak(t *testing.T) {
	cfg := GC200()
	res, err := Run(BuildSparseMM(cfg, 2048, 0.01), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DenseEquivGFlops() < cfg.PeakFlops()/1e9 {
		t.Fatalf("99%% sparse dense-equiv %v GF should exceed peak %v GF",
			res.DenseEquivGFlops(), cfg.PeakFlops()/1e9)
	}
	// 90% sparsity is slower in dense-equivalent terms than 99%.
	res90, err := Run(BuildSparseMM(cfg, 2048, 0.10), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res90.DenseEquivGFlops() >= res.DenseEquivGFlops() {
		t.Fatal("dense-equivalent rate should fall with density")
	}
	// ...but its *real* flop rate is higher (better vectorization).
	if res90.GFlops() <= res.GFlops() {
		t.Fatal("real flop rate should rise with density")
	}
}

// PopTorch mode must be slower than raw poplar (host copies included) —
// Table 2's PopTorch column vs the poplin column.
func TestPopTorchOverhead(t *testing.T) {
	cfg := GC200()
	w := BuildDenseMatMul(cfg, 1024, 1024, 1024, MMPoplin)
	raw, err := Run(w, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Run(w, RunOptions{PopTorch: true})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Seconds < 3*raw.Seconds {
		t.Fatalf("PopTorch %v should be far slower than poplar %v", pt.Seconds, raw.Seconds)
	}
}

// Fig 6 (IPU panel): butterfly loses below the break-even point and wins
// clearly at large N; the degradation at small N is mild (nothing like the
// GPU's 14×).
func TestFig6IPUButterflyShape(t *testing.T) {
	cfg := GC200()
	speedup := func(n int) float64 {
		lin, err := Run(BuildLinear(cfg, n, n), RunOptions{PopTorch: true, DeviceLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		bf, err := Run(BuildButterflyMM(cfg, n, n), RunOptions{PopTorch: true, DeviceLoop: true})
		if err != nil {
			t.Fatal(err)
		}
		return lin.Seconds / bf.Seconds
	}
	small := speedup(128)
	large := speedup(4096)
	if small >= 1 {
		t.Fatalf("butterfly should lose at N=128 (speedup %v)", small)
	}
	if small < 0.5 {
		t.Fatalf("IPU degradation at N=128 too severe (%v): should be mild", small)
	}
	if large < 1.2 {
		t.Fatalf("butterfly speedup at N=4096 = %v, want > 1.2 (paper: 1.6)", large)
	}
	if large > 2.5 {
		t.Fatalf("butterfly speedup at N=4096 = %v implausibly high vs paper's 1.6", large)
	}
}

// The memory wall: torch.nn.Linear at N=2^13 no longer compiles (weights +
// activations exceed on-chip memory) while the butterfly layer still fits —
// the motivation of the whole paper.
func TestButterflyOutlivesLinearInMemory(t *testing.T) {
	cfg := GC200()
	n := 8192
	if _, err := Run(BuildLinear(cfg, n, n), RunOptions{PopTorch: true}); err == nil {
		t.Fatal("linear at N=8192 should exceed IPU memory in this model")
	}
	if _, err := Run(BuildButterflyMM(cfg, n, n), RunOptions{PopTorch: true}); err != nil {
		t.Fatalf("butterfly at N=8192 should fit: %v", err)
	}
}

// Fig 5 / Fig 7: compute sets, vertices, edges and total memory all grow
// with problem size; free memory shrinks.
func TestFig5CountersGrow(t *testing.T) {
	cfg := GC200()
	var prev *Compiled
	for _, n := range []int{256, 1024, 2048} {
		c, err := Compile(BuildDenseMatMul(cfg, n, n, n, MMPoplin).Graph)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if c.NumEdges <= prev.NumEdges {
				t.Fatalf("edges did not grow: %d -> %d", prev.NumEdges, c.NumEdges)
			}
			if c.Device.Total() <= prev.Device.Total() {
				t.Fatal("total memory did not grow")
			}
			if c.FreeBytes() >= prev.FreeBytes() {
				t.Fatal("free memory did not shrink")
			}
			if c.NumComputeSets < prev.NumComputeSets {
				t.Fatal("compute sets shrank")
			}
		}
		prev = c
	}
	// Overhead must be a visible fraction beyond raw variables (Obs. 3).
	overhead := prev.Device.Total() - prev.Device.Variables
	if float64(overhead) < 0.2*float64(prev.Device.Variables) {
		t.Fatalf("memory overhead %d too small vs variables %d — Observation 3 not reproduced",
			overhead, prev.Device.Variables)
	}
}

// Fig 7: butterfly executes log2(N) arithmetic compute sets plus 4
// lowering steps each; pixelfly has few arithmetic sets but heavy
// lowering (12 per factor group); linear grows with the K-slicing.
func TestFig7ComputeSetCounts(t *testing.T) {
	cfg := GC200()
	bf, err := Compile(BuildButterflyMM(cfg, 1024, 64).Graph)
	if err != nil {
		t.Fatal(err)
	}
	if bf.NumComputeSets != 10*5 {
		t.Fatalf("butterfly compute sets = %d, want log2(1024)·(1 stage + 4 lowering) = 50",
			bf.NumComputeSets)
	}
	pcfg := pixelfly.Config{N: 1024, BlockSize: 64, ButterflySize: 16, LowRank: 32}
	pf, err := Compile(BuildPixelflyMM(cfg, pcfg, 64).Graph)
	if err != nil {
		t.Fatal(err)
	}
	// 4 arithmetic (mac, reduce, 2×lowrank) + 12 lowering × log2(16) groups.
	if pf.NumComputeSets != 4+12*4 {
		t.Fatalf("pixelfly compute sets = %d, want 52", pf.NumComputeSets)
	}
	// Pixelfly must carry more compute sets than butterfly's arithmetic
	// alone and more variables — the Fig. 7 memory-pressure narrative.
	if pf.NumVariables <= 4 {
		t.Fatal("pixelfly should allocate temporaries (partials, scratch)")
	}
	lin, err := Compile(BuildLinear(cfg, 2048, 64).Graph)
	if err != nil {
		t.Fatal(err)
	}
	if lin.NumComputeSets != 5 {
		t.Fatalf("linear compute sets = %d, want 4 K-slices + bias = 5", lin.NumComputeSets)
	}
}

func TestWorkloadFlopAccounting(t *testing.T) {
	cfg := GC200()
	w := BuildDenseMatMul(cfg, 64, 128, 32, MMPoplin)
	want := 2.0 * 64 * 128 * 32
	if w.Flops != want || w.DenseEquivFlops != want {
		t.Fatalf("flops = %v/%v, want %v", w.Flops, w.DenseEquivFlops, want)
	}
	bf := BuildButterflyMM(cfg, 64, 16)
	if bf.Flops != 6*32*6*16 {
		t.Fatalf("butterfly flops = %v, want %v", bf.Flops, 6*32*6*16)
	}
	if bf.DenseEquivFlops != 2.0*64*64*16 {
		t.Fatalf("butterfly dense-equiv = %v", bf.DenseEquivFlops)
	}
}

func TestGC2IsSmaller(t *testing.T) {
	if GC2().TotalMemBytes() >= GC200().TotalMemBytes() {
		t.Fatal("GC2 should have less memory than GC200")
	}
	if GC2().PeakFlops() >= GC200().PeakFlops() {
		t.Fatal("GC2 should have less compute than GC200")
	}
}
