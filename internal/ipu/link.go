package ipu

import "fmt"

// LinkConfig models the IPU-Link fabric connecting several IPU processors
// in one pod (the M2000 carries four GC200s; larger pods chain boxes over
// GW-Links). The model deliberately mirrors Observation 1 at the
// inter-chip level: the cost of a transfer is a function of message size
// only, never of which pair of IPUs exchanges it — the link fabric is
// routed all-to-all just like the on-chip exchange, so "distance" does not
// appear in the formula.
//
// Collectives are priced as the standard ring schedules GCL (the Graphcore
// Communication Library) plans: an all-gather over S shards moves each
// shard's payload S-1 hops, pipelined so the wall time is (S-1) steps of
// one payload each.
type LinkConfig struct {
	Name string

	// LinkBandwidth is the usable bytes/s per link per direction.
	LinkBandwidth float64
	// LinksPerIPU is how many IPU-Links each processor drives; transfers
	// stripe across all of them, so the per-IPU injection bandwidth is
	// LinkBandwidth · LinksPerIPU.
	LinksPerIPU int
	// LatencySeconds is the fixed per-message cost (serialization,
	// link-layer framing, GCL dispatch) — paid once per transfer
	// regardless of the endpoints, per Observation 1.
	LatencySeconds float64
	// SyncSeconds is the fixed cost of one inter-IPU BSP sync — the
	// multi-chip analogue of Config.SyncCycles, paid once per collective
	// or exchange phase.
	SyncSeconds float64
}

// IPULink returns the model of the third-generation IPU-Link fabric of the
// M2000 (GC200 era): 10 links per processor at 32 GB/s per direction, so
// 320 GB/s of injection bandwidth per IPU. Latency and sync constants are
// calibration values in the same spirit as Config's cycle counts.
func IPULink() LinkConfig {
	return LinkConfig{
		Name:           "IPU-Link",
		LinkBandwidth:  32e9,
		LinksPerIPU:    10,
		LatencySeconds: 1.5e-6,
		SyncSeconds:    0.5e-6,
	}
}

// InjectionBandwidth returns the aggregate bytes/s one IPU can push into
// the link fabric.
func (l LinkConfig) InjectionBandwidth() float64 {
	n := l.LinksPerIPU
	if n <= 0 {
		n = 1
	}
	return l.LinkBandwidth * float64(n)
}

// PointToPointSeconds prices one message of the given size between any two
// IPUs: fixed latency plus wire time at injection bandwidth. Size-only, by
// design (Observation 1 at pod scope).
func (l LinkConfig) PointToPointSeconds(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.SyncSeconds + l.LatencySeconds + float64(bytes)/l.InjectionBandwidth()
}

// WireSeconds is the bandwidth term of one message alone: bytes at
// injection bandwidth, with none of the fixed per-message overhead.
// Consecutive messages of a pipelined stream — wavefront micro-batches
// crossing one stage boundary — land one wire-time apart: the fixed
// sync+latency is paid once by the stream head, and serialization of
// message j overlaps the flight of message j−1.
func (l LinkConfig) WireSeconds(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / l.InjectionBandwidth()
}

// AllGatherSeconds prices a ring all-gather across shards IPUs where every
// IPU contributes bytesPerShard: S-1 pipelined steps, each moving one
// shard payload per IPU.
func (l LinkConfig) AllGatherSeconds(shards, bytesPerShard int) float64 {
	if shards <= 1 || bytesPerShard <= 0 {
		return 0
	}
	steps := float64(shards - 1)
	return l.SyncSeconds + steps*(l.LatencySeconds+float64(bytesPerShard)/l.InjectionBandwidth())
}

// AllGatherBytes returns the bytes one IPU sends over the fabric during a
// ring all-gather (it forwards every other shard's payload exactly once).
func (l LinkConfig) AllGatherBytes(shards, bytesPerShard int) int {
	if shards <= 1 || bytesPerShard <= 0 {
		return 0
	}
	return (shards - 1) * bytesPerShard
}

// PairwiseExchangeSeconds prices one butterfly-exchange round: every IPU
// swaps a payload of the given size with exactly one partner,
// concurrently. One round costs a single message time; which partner it is
// does not matter (size-only again).
func (l LinkConfig) PairwiseExchangeSeconds(bytes int) float64 {
	return l.PointToPointSeconds(bytes)
}

func (l LinkConfig) String() string {
	return fmt.Sprintf("%s(%d×%.0fGB/s)", l.Name, l.LinksPerIPU, l.LinkBandwidth/1e9)
}
