package ipu

import (
	"fmt"
	"sort"
)

// MemoryBreakdown classifies the bytes on a tile (or the whole device).
// The paper's Observation 3 — memory usage beyond the raw data footprint —
// corresponds to every field except Variables.
type MemoryBreakdown struct {
	Variables      int // tensor payloads
	VertexState    int // vertex descriptors
	EdgePointers   int // vertex<->variable edges
	CodeletCode    int // codelet instruction footprint
	ControlCode    int // per-compute-set control program
	ExchangeCode   int // compiler-generated exchange sequences
	ExchangeBuffer int // landing buffers for incoming exchange data
}

// Total sums all categories.
func (m MemoryBreakdown) Total() int {
	return m.Variables + m.VertexState + m.EdgePointers + m.CodeletCode +
		m.ControlCode + m.ExchangeCode + m.ExchangeBuffer
}

func (m *MemoryBreakdown) add(o MemoryBreakdown) {
	m.Variables += o.Variables
	m.VertexState += o.VertexState
	m.EdgePointers += o.EdgePointers
	m.CodeletCode += o.CodeletCode
	m.ControlCode += o.ControlCode
	m.ExchangeCode += o.ExchangeCode
	m.ExchangeBuffer += o.ExchangeBuffer
}

// stepExchange is the planned exchange preceding one executed compute set.
type stepExchange struct {
	// inBytes[t] is the payload tile t receives; msgs[t] the number of
	// distinct source regions it receives (message count drives exchange
	// code size).
	inBytes  map[int]float64
	outBytes map[int]float64
	msgs     map[int]int
	total    float64
}

// Compiled is the result of Compile: placement, exchange plan and memory
// accounting, ready for the cost engine.
type Compiled struct {
	Graph *Graph

	// Exchange plans indexed by program step (nil for host steps).
	exchanges []*stepExchange

	// Memory accounting.
	PerTile   []MemoryBreakdown
	Device    MemoryBreakdown
	PeakTile  int // index of the fullest tile
	PeakBytes int

	// Graph statistics (Fig. 5 / Fig. 7 counters).
	NumVariables   int
	NumVertices    int
	NumEdges       int
	NumComputeSets int // distinct compute sets executed by the program
}

// OOMError reports a tile exceeding its In-Processor-Memory, mirroring
// Poplar's compile-time allocation failures.
type OOMError struct {
	Tile      int
	Need      int
	Available int
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("ipu: tile %d needs %d bytes of %d available (out of memory)",
		e.Tile, e.Need, e.Available)
}

// Compile places variables (defaulting to linear mappings), plans exchange
// for every executed compute set, and accounts memory per tile. It fails
// with *OOMError when any tile exceeds its memory.
func Compile(g *Graph) (*Compiled, error) {
	cfg := g.Config
	for _, v := range g.Vars {
		if v.Mapping == nil {
			v.Mapping = LinearMapping(cfg, v.Elems)
		}
	}

	c := &Compiled{Graph: g,
		PerTile:      make([]MemoryBreakdown, cfg.Tiles),
		NumVariables: len(g.Vars),
		NumVertices:  g.NumVertices(),
		NumEdges:     g.NumEdges(),
	}
	seen := map[ComputeSetID]bool{}
	for _, st := range g.Program {
		if st.Kind == StepExecute && !seen[st.CS] {
			seen[st.CS] = true
			c.NumComputeSets++
		}
	}

	// Variable payload per tile.
	for _, v := range g.Vars {
		for _, iv := range v.Mapping {
			c.PerTile[iv.Tile].Variables += (iv.End - iv.Start) * v.ElemBytes
		}
	}

	// Vertex state, edges and codelet code per tile.
	codeletsOnTile := map[int]map[string]bool{}
	for _, cs := range g.CSs {
		for _, vx := range cs.Vertices {
			mb := &c.PerTile[vx.Tile]
			mb.VertexState += cfg.VertexDescriptorBytes
			mb.EdgePointers += (len(vx.Inputs) + len(vx.Outputs)) * cfg.EdgeBytes
			if codeletsOnTile[vx.Tile] == nil {
				codeletsOnTile[vx.Tile] = map[string]bool{}
			}
			if !codeletsOnTile[vx.Tile][vx.Codelet] {
				codeletsOnTile[vx.Tile][vx.Codelet] = true
				mb.CodeletCode += cfg.CodeletCodeBytes
			}
		}
	}

	// Control code: every tile holds the program skeleton.
	ctl := len(g.Program) * cfg.CSControlBytes
	for t := range c.PerTile {
		c.PerTile[t].ControlCode += ctl
	}

	// Exchange planning per executed step + exchange code and buffers.
	maxInBytes := make(map[int]float64) // per-tile peak landing buffer
	for _, st := range g.Program {
		if st.Kind != StepExecute {
			c.exchanges = append(c.exchanges, nil)
			continue
		}
		ex := &stepExchange{
			inBytes:  map[int]float64{},
			outBytes: map[int]float64{},
			msgs:     map[int]int{},
		}
		for _, vx := range g.CSs[st.CS].Vertices {
			for _, r := range vx.Inputs {
				addRemoteTraffic(g, ex, r, vx.Tile, true)
			}
			for _, r := range vx.Outputs {
				addRemoteTraffic(g, ex, r, vx.Tile, false)
			}
		}
		for t, b := range ex.inBytes {
			ex.total += b
			if b > maxInBytes[t] {
				maxInBytes[t] = b
			}
		}
		c.exchanges = append(c.exchanges, ex)

		// Exchange code accrues per message endpoint plus a marginal cost
		// per payload byte — this is the compute-set-correlated overhead
		// behind Observation 3. The per-byte component is capped at the
		// stream buffer size: larger transfers reuse one round's code.
		capBytes := func(b float64) float64 {
			if cfg.StreamBufferBytes > 0 && b > float64(cfg.StreamBufferBytes) {
				return float64(cfg.StreamBufferBytes)
			}
			return b
		}
		for t, n := range ex.msgs {
			c.PerTile[t].ExchangeCode += n * cfg.ExchangeCodeBytesPerMsg
		}
		for t, b := range ex.inBytes {
			c.PerTile[t].ExchangeCode += int(capBytes(b) * cfg.ExchangeCodePerByte)
		}
		for t, b := range ex.outBytes {
			c.PerTile[t].ExchangeCode += int(capBytes(b) * cfg.ExchangeCodePerByte)
		}
	}
	for t, b := range maxInBytes {
		buf := int(b)
		if cfg.StreamBufferBytes > 0 && buf > cfg.StreamBufferBytes {
			buf = cfg.StreamBufferBytes // streamed in rounds; see Config.StreamBufferBytes
		}
		c.PerTile[t].ExchangeBuffer += buf
	}

	// Totals, peak, OOM.
	for t := range c.PerTile {
		c.Device.add(c.PerTile[t])
		if tot := c.PerTile[t].Total(); tot > c.PeakBytes {
			c.PeakBytes = tot
			c.PeakTile = t
		}
	}
	if c.PeakBytes > cfg.TileMemBytes {
		return nil, &OOMError{Tile: c.PeakTile, Need: c.PeakBytes, Available: cfg.TileMemBytes}
	}
	return c, nil
}

// addRemoteTraffic accounts the part of region r that does not live on
// vertex tile vt. Inputs are gathered before compute; outputs scattered
// after. One message is counted per remote source/destination interval.
func addRemoteTraffic(g *Graph, ex *stepExchange, r VarRegion, vt int, input bool) {
	vv := g.Vars[r.Var]
	// Find overlapping mapping intervals via binary search on Start.
	idx := sort.Search(len(vv.Mapping), func(i int) bool { return vv.Mapping[i].End > r.Start })
	for ; idx < len(vv.Mapping); idx++ {
		iv := vv.Mapping[idx]
		if iv.Start >= r.End {
			break
		}
		lo, hi := max(iv.Start, r.Start), min(iv.End, r.End)
		if lo >= hi || iv.Tile == vt {
			continue
		}
		bytes := float64((hi - lo) * vv.ElemBytes)
		if input {
			ex.inBytes[vt] += bytes
			ex.outBytes[iv.Tile] += bytes
			ex.msgs[vt]++
			ex.msgs[iv.Tile]++
		} else {
			ex.outBytes[vt] += bytes
			ex.inBytes[iv.Tile] += bytes
			ex.msgs[vt]++
			ex.msgs[iv.Tile]++
		}
	}
}

// FreeBytes returns the unallocated on-chip memory after compilation.
func (c *Compiled) FreeBytes() int {
	return c.Graph.Config.TotalMemBytes() - c.Device.Total()
}
