package ipu

import (
	"fmt"
	"math"

	"repro/internal/pixelfly"
)

// Workload couples a graph with the useful arithmetic it performs, so
// benchmarks can report GFLOP/s. For sparse workloads DenseEquivFlops
// counts the flops of the dense computation being replaced (the
// convention behind Table 2's starred sparse numbers).
type Workload struct {
	Name            string
	Graph           *Graph
	Flops           float64 // arithmetic actually executed
	DenseEquivFlops float64 // dense-equivalent work (== Flops when dense)
	HostBytes       float64 // host traffic when run PopTorch-style
}

// MatMulVariant selects among the paper's Table 2 IPU implementations.
type MatMulVariant int

const (
	// MMNaive: one scalar vertex per output row reading all of B.
	MMNaive MatMulVariant = iota
	// MMBlocked: hand-written block decomposition with explicit operand
	// copies (the variant the paper found drowning in temporary data).
	MMBlocked
	// MMPoplin: the vendor library plan — 2D output grid, K sliced into
	// accumulation stages, AMP vertices.
	MMPoplin
)

func (v MatMulVariant) String() string {
	switch v {
	case MMNaive:
		return "naive"
	case MMBlocked:
		return "blocked"
	case MMPoplin:
		return "poplin"
	default:
		return fmt.Sprintf("MatMulVariant(%d)", int(v))
	}
}

// poplinKSlice is the K-dimension accumulation depth of one compute set;
// matmuls with K beyond this get several chained compute sets, which is
// the mechanism behind Fig. 5/7's compute-set growth.
const poplinKSlice = 512

// ampGrain is the AMP systolic granularity: output blocks smaller than
// this waste AMP issue slots.
const ampGrain = 16

// BuildDenseMatMul constructs the graph of C(m×n) = A(m×k)·B(k×n).
// B is treated as column-major (poplin pre-arranges operands), so both A
// row-slices and B column-slices are contiguous regions.
func BuildDenseMatMul(cfg Config, m, k, n int, variant MatMulVariant) *Workload {
	g := NewGraph(cfg)
	a := g.AddVariable("A", m*k, 4)
	b := g.AddVariable("B", k*n, 4) // column-major: column j at [j*k, (j+1)*k)
	c := g.AddVariable("C", m*n, 4)
	flops := 2 * float64(m) * float64(n) * float64(k)
	w := &Workload{Name: fmt.Sprintf("matmul-%s-%dx%dx%d", variant, m, k, n),
		Graph: g, Flops: flops, DenseEquivFlops: flops,
		HostBytes: float64((m*k + k*n + m*n) * 4)}

	switch variant {
	case MMNaive:
		cs := g.AddComputeSet("matmul.naive")
		for i := 0; i < m; i++ {
			tile := i % cfg.Tiles
			g.AddVertex(cs, "NaiveRowMAC", ClassScalar, tile,
				[]VarRegion{
					{Var: a, Start: i * k, End: (i + 1) * k},
					{Var: b, Start: 0, End: k * n}, // the whole of B: the broadcast that kills this variant
				},
				[]VarRegion{{Var: c, Start: i * n, End: (i + 1) * n}},
				2*float64(k)*float64(n))
		}
		g.Execute(cs)

	case MMPoplin, MMBlocked:
		class := ClassAMP
		codelet := "PoplinAMPBlock"
		var p, q int
		if variant == MMBlocked {
			// The paper's hand-written blocked kernel: a fixed 16×16 block
			// grid (so at most 256 tiles do MAC work), an unvectorized
			// inner loop, and explicit staging copies of every operand
			// block — the "too much temporal data being allocated and many
			// copies taking place" pathology of Table 2's Note 3.
			class = ClassScalar
			codelet = "BlockedMAC"
			p = clamp(ceilDiv(m, ampGrain), 1, 16)
			q = clamp(ceilDiv(n, ampGrain), 1, 16)
		} else {
			// Poplin adapts the output grid to the aspect ratio so skewed
			// matmuls still occupy (nearly) every tile — the reason Fig. 4
			// finds the IPU stable where the GPU's fixed tile shapes
			// quantize badly.
			p = int(math.Sqrt(float64(cfg.Tiles) * float64(m) / float64(n)))
			p = clamp(p, 1, m)
			q = clamp(cfg.Tiles/p, 1, n)
		}
		bm, bn := ceilDiv(m, p), ceilDiv(n, q)
		// Output blocks narrower than the AMP systolic granularity waste
		// issue slots.
		ampWaste := 1.0
		if class == ClassAMP && bm < ampGrain {
			ampWaste = float64(ampGrain) / float64(bm)
		}
		slices := ceilDiv(k, poplinKSlice)
		for s := 0; s < slices; s++ {
			k0 := s * poplinKSlice
			k1 := min(k0+poplinKSlice, k)
			kc := k1 - k0
			var tmpA, tmpB VarID
			if variant == MMBlocked {
				// Stage every operand block into per-slice temporaries.
				tmpA = g.AddVariable(fmt.Sprintf("tmpA.%d", s), m*kc, 4)
				tmpB = g.AddVariable(fmt.Sprintf("tmpB.%d", s), kc*n, 4)
				copyCS := g.AddComputeSet(fmt.Sprintf("matmul.copy.%d", s))
				for bi := 0; bi < p; bi++ {
					tile := (bi * q) % cfg.Tiles
					r0, r1 := bi*bm, min((bi+1)*bm, m)
					if r0 >= r1 {
						continue
					}
					var ins, outs []VarRegion
					for r := r0; r < r1; r++ {
						ins = append(ins, VarRegion{Var: a, Start: r*k + k0, End: r*k + k1})
						outs = append(outs, VarRegion{Var: tmpA, Start: r * kc, End: (r + 1) * kc})
					}
					g.AddVertex(copyCS, "StageCopy", ClassCopy, tile, ins, outs,
						float64((r1-r0)*kc*4))
				}
				for bj := 0; bj < q; bj++ {
					tile := bj % cfg.Tiles
					c0, c1 := bj*bn, min((bj+1)*bn, n)
					if c0 >= c1 {
						continue
					}
					var ins, outs []VarRegion
					for cc := c0; cc < c1; cc++ {
						ins = append(ins, VarRegion{Var: b, Start: cc*k + k0, End: cc*k + k1})
						outs = append(outs, VarRegion{Var: tmpB, Start: cc * kc, End: (cc + 1) * kc})
					}
					g.AddVertex(copyCS, "StageCopy", ClassCopy, tile, ins, outs,
						float64((c1-c0)*kc*4))
				}
				g.Execute(copyCS)
			}
			cs := g.AddComputeSet(fmt.Sprintf("matmul.%s.%d", variant, s))
			for bi := 0; bi < p; bi++ {
				for bj := 0; bj < q; bj++ {
					tile := (bi*q + bj) % cfg.Tiles
					r0, r1 := bi*bm, min((bi+1)*bm, m)
					c0, c1 := bj*bn, min((bj+1)*bn, n)
					if r0 >= r1 || c0 >= c1 {
						continue
					}
					var ins []VarRegion
					if variant == MMBlocked {
						// Read the staged temporaries (contiguous per slice).
						ins = append(ins,
							VarRegion{Var: tmpA, Start: r0 * kc, End: r1 * kc},
							VarRegion{Var: tmpB, Start: c0 * kc, End: c1 * kc})
					} else {
						// A rows r0..r1, K slice [k0,k1): one region per row.
						for r := r0; r < r1; r++ {
							ins = append(ins, VarRegion{Var: a, Start: r*k + k0, End: r*k + k1})
						}
						// B (column-major) columns c0..c1, K slice: region per column.
						for cc := c0; cc < c1; cc++ {
							ins = append(ins, VarRegion{Var: b, Start: cc*k + k0, End: cc*k + k1})
						}
					}
					var outs []VarRegion
					for r := r0; r < r1; r++ {
						outs = append(outs, VarRegion{Var: c, Start: r*n + c0, End: r*n + c1})
					}
					vflops := 2 * float64(r1-r0) * float64(c1-c0) * float64(kc) * ampWaste
					g.AddVertex(cs, codelet, class, tile, ins, outs, vflops)
				}
			}
			g.Execute(cs)
		}
	}
	return w
}

// BuildSparseMM constructs CSR×dense SpMM: S(n×n, given density)·B(n×n).
// Rows are distributed across tiles popsparse-style; the SIMD pipeline's
// utilization improves with density (gather-dominated at extreme
// sparsity).
func BuildSparseMM(cfg Config, n int, density float64) *Workload {
	g := NewGraph(cfg)
	nnz := int(density * float64(n) * float64(n))
	if nnz < 1 {
		nnz = 1
	}
	vals := g.AddVariable("S.values", nnz, 4)
	cols := g.AddVariable("S.colidx", nnz, 4)
	rowp := g.AddVariable("S.rowptr", n+1, 4)
	b := g.AddVariable("B", n*n, 4)
	c := g.AddVariable("C", n*n, 4)

	realFlops := 2 * float64(nnz) * float64(n)
	dense := 2 * float64(n) * float64(n) * float64(n)
	w := &Workload{Name: fmt.Sprintf("spmm-%dx%d-d%.2f", n, n, density),
		Graph: g, Flops: realFlops, DenseEquivFlops: dense,
		HostBytes: float64((2*nnz + n + 1 + 2*n*n) * 4)}

	// Utilization of the SIMD pipeline rises with density: at 1% the
	// codelet is gather-bound, at 10% it vectorizes decently. Calibrated
	// against Table 2's popsparse columns.
	util := 0.2 + 1.2*density
	if util > 0.9 {
		util = 0.9
	}

	// 2D partition popsparse-style: row groups × column panels, so each
	// vertex gathers only its panel of B (column-major: panel contiguous).
	cs := g.AddComputeSet("spmm.popsparse")
	panels := 32
	if panels > n {
		panels = n
	}
	rowGroups := min(cfg.Tiles/panels, n)
	if rowGroups < 1 {
		rowGroups = 1
	}
	rowsPer := ceilDiv(n, rowGroups)
	colsPer := ceilDiv(n, panels)
	nnzPer := ceilDiv(nnz, rowGroups)
	for rg := 0; rg < rowGroups; rg++ {
		r0 := rg * rowsPer
		r1 := min(r0+rowsPer, n)
		if r0 >= r1 {
			break
		}
		v0 := min(rg*nnzPer, nnz)
		v1 := min(v0+nnzPer, nnz)
		for pn := 0; pn < panels; pn++ {
			c0 := pn * colsPer
			c1 := min(c0+colsPer, n)
			if c0 >= c1 {
				continue
			}
			tile := (rg*panels + pn) % cfg.Tiles
			ins := []VarRegion{
				{Var: vals, Start: v0, End: v1},
				{Var: cols, Start: v0, End: v1},
				{Var: rowp, Start: r0, End: r1 + 1},
				{Var: b, Start: c0 * n, End: c1 * n}, // B panel (column-major)
			}
			outs := []VarRegion{{Var: c, Start: r0*n + c0, End: r0*n + c1}}
			vflops := 2 * float64(v1-v0) * float64(c1-c0) / util
			g.AddVertex(cs, "SparseDenseRowMAC", ClassSIMD, tile, ins, outs, vflops)
		}
	}
	g.Execute(cs)
	return w
}

// BuildButterflyMM builds the butterfly layer applied to a batch: log2(N)
// compute sets, one per factor, with a ping-pong activation pair. Data is
// stored feature-major (a feature's whole batch is contiguous), so stage s
// exchanges exactly the features whose partner lives on another tile —
// exchange volume depends on size, not placement (Observation 1).
func BuildButterflyMM(cfg Config, n, batch int) *Workload {
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("ipu: butterfly size %d not a power of two", n))
	}
	g := NewGraph(cfg)
	x0 := g.AddVariable("X.ping", n*batch, 4)
	x1 := g.AddVariable("X.pong", n*batch, 4)
	stages := 0
	for v := n; v > 1; v >>= 1 {
		stages++
	}
	flops := 6 * float64(n/2) * float64(stages) * float64(batch)
	w := &Workload{Name: fmt.Sprintf("butterfly-%d-b%d", n, batch),
		Graph: g, Flops: flops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		HostBytes:       float64(2 * n * batch * 4)}

	tiles := min(cfg.Tiles, n/2)
	pairsPer := ceilDiv(n/2, tiles)
	src, dst := x0, x1
	// The plain-PyTorch butterfly (the implementation the paper uses on
	// the IPU) lowers each stage to several framework primitives —
	// reshape, index, bmm, permute — which PopTorch compiles into extra
	// small compute sets around the arithmetic one.
	scratch := newLoweringScratch(g)
	for s := 1; s <= stages; s++ {
		addLoweringCS(g, fmt.Sprintf("butterfly.lower.%d", s), scratch, 4)
		coef := g.AddVariable(fmt.Sprintf("bf.coef.%d", s), 2*n, 4)
		cs := g.AddComputeSet(fmt.Sprintf("butterfly.stage%d", s))
		half := 1 << (s - 1)
		block := half << 1
		for t := 0; t < tiles; t++ {
			p0 := t * pairsPer
			p1 := min(p0+pairsPer, n/2)
			if p0 >= p1 {
				break
			}
			var ins, outs []VarRegion
			for p := p0; p < p1; p++ {
				blockIdx := p / half
				kk := p % half
				top := blockIdx*block + kk
				bot := top + half
				ins = append(ins,
					VarRegion{Var: src, Start: top * batch, End: (top + 1) * batch},
					VarRegion{Var: src, Start: bot * batch, End: (bot + 1) * batch})
				outs = append(outs,
					VarRegion{Var: dst, Start: top * batch, End: (top + 1) * batch},
					VarRegion{Var: dst, Start: bot * batch, End: (bot + 1) * batch})
			}
			ins = append(ins, VarRegion{Var: coef, Start: p0 * 4, End: p1 * 4})
			g.AddVertex(cs, "ButterflyPairMAC", ClassSIMD, t, ins, outs,
				6*float64(p1-p0)*float64(batch))
		}
		g.Execute(cs)
		src, dst = dst, src
	}
	return w
}

// BuildPixelflyMM builds the pixelated-butterfly layer on a batch: one
// block-sparse MAC compute set, a partial-sum reduction, two poplin
// matmuls for the low-rank term (these use the AMP), and a final add.
// Compared to butterfly it has fewer, fatter compute sets but more
// variables and temporaries — the space-complexity escalation Section 4.1
// observes.
func BuildPixelflyMM(cfg Config, pcfg pixelfly.Config, batch int) *Workload {
	if err := pcfg.Validate(); err != nil {
		panic(err)
	}
	n := pcfg.N
	bs := pcfg.BlockSize
	support := pcfg.SupportBlocks()
	g := NewGraph(cfg)
	x := g.AddVariable("X", n*batch, 4) // feature-major
	wvar := g.AddVariable("W.blocks", len(support)*bs*bs, 4)
	partial := g.AddVariable("partials", len(support)*bs*batch, 4)
	y := g.AddVariable("Y", n*batch, 4)

	bsrFlops := 2 * float64(len(support)) * float64(bs*bs) * float64(batch)
	lrFlops := 4 * float64(n) * float64(pcfg.LowRank) * float64(batch)
	w := &Workload{Name: fmt.Sprintf("pixelfly-%d-b%d", n, batch),
		Graph: g, Flops: bsrFlops + lrFlops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		HostBytes:       float64(2 * n * batch * 4)}

	// The pure-torch pixelfly implementation (the gist the paper falls
	// back to) loops over the butterfly factor groups in Python; each
	// group's gather / bmm / scatter_add / view chain lowers to a stack of
	// framework primitives under PopTorch. This lowering overhead — absent
	// on the GPU, where the same ops fuse into a handful of kernels — is
	// the mechanism behind Table 4's pixelfly slowdown on the IPU.
	scratch := newLoweringScratch(g)
	groups := 0
	for v := pcfg.ButterflySize; v > 1; v >>= 1 {
		groups++
	}
	// The gather/scatter index tensors grow with the stretch factor
	// (block-grid width over butterfly network size): smaller blocks mean
	// more blocks per butterfly edge, and PopTorch splits the indexing
	// into correspondingly more steps. This is why Table 5 finds block
	// size the dominant knob for execution time.
	stretch := (n / bs) / pcfg.ButterflySize
	if stretch < 1 {
		stretch = 1
	}
	auxPerGroup := 8 + 4*stretch
	for grp := 0; grp < groups; grp++ {
		addLoweringCS(g, fmt.Sprintf("pixelfly.lower.%d", grp), scratch, auxPerGroup)
	}

	// CS1: block MACs. Each stored block is split along the batch dimension
	// so the work spreads over all tiles rather than one tile per block.
	mac := g.AddComputeSet("pixelfly.blockmac")
	batchSlices := clamp(cfg.Tiles/max(1, len(support)), 1, batch)
	sliceLen := ceilDiv(batch, batchSlices)
	for i, blk := range support {
		bj := blk[1]
		for sl := 0; sl < batchSlices; sl++ {
			b0 := sl * sliceLen
			b1 := min(b0+sliceLen, batch)
			if b0 >= b1 {
				break
			}
			tile := (i*batchSlices + sl) % cfg.Tiles
			// X stored feature-major: the batch slice of one feature is a
			// sub-range of that feature's contiguous column.
			var ins []VarRegion
			for f := bj * bs; f < (bj+1)*bs; f++ {
				ins = append(ins, VarRegion{Var: x, Start: f*batch + b0, End: f*batch + b1})
			}
			ins = append(ins, VarRegion{Var: wvar, Start: i * bs * bs, End: (i + 1) * bs * bs})
			var outs []VarRegion
			for r := 0; r < bs; r++ {
				outs = append(outs, VarRegion{Var: partial,
					Start: (i*bs+r)*batch + b0, End: (i*bs+r)*batch + b1})
			}
			g.AddVertex(mac, "BSRBlockMAC", ClassSIMD, tile, ins, outs,
				2*float64(bs*bs)*float64(b1-b0))
		}
	}
	g.Execute(mac)

	// CS2: reduce partials into block rows of Y, batch-sliced the same way.
	reduce := g.AddComputeSet("pixelfly.reduce")
	perRow := map[int][]int{}
	for i, blk := range support {
		perRow[blk[0]] = append(perRow[blk[0]], i)
	}
	for bi, list := range perRow {
		for sl := 0; sl < batchSlices; sl++ {
			b0 := sl * sliceLen
			b1 := min(b0+sliceLen, batch)
			if b0 >= b1 {
				break
			}
			tile := (bi*batchSlices + sl) % cfg.Tiles
			var ins []VarRegion
			for _, i := range list {
				for r := 0; r < bs; r++ {
					ins = append(ins, VarRegion{Var: partial,
						Start: (i*bs+r)*batch + b0, End: (i*bs+r)*batch + b1})
				}
			}
			var outs []VarRegion
			for r := 0; r < bs; r++ {
				outs = append(outs, VarRegion{Var: y,
					Start: (bi*bs+r)*batch + b0, End: (bi*bs+r)*batch + b1})
			}
			g.AddVertex(reduce, "PartialReduce", ClassSIMD, tile, ins, outs,
				float64(len(list))*float64(bs)*float64(b1-b0))
		}
	}
	g.Execute(reduce)

	// CS3+CS4: low-rank term via two AMP matmuls (t = Vᵀx; y += U·t).
	if pcfg.LowRank > 0 {
		r := pcfg.LowRank
		vvar := g.AddVariable("V", n*r, 4)
		uvar := g.AddVariable("U", n*r, 4)
		tvar := g.AddVariable("t", r*batch, 4)
		lr1 := g.AddComputeSet("pixelfly.lowrank.vx")
		tiles := min(cfg.Tiles, r)
		for t := 0; t < tiles; t++ {
			rr0 := t * ceilDiv(r, tiles)
			rr1 := min(rr0+ceilDiv(r, tiles), r)
			if rr0 >= rr1 {
				break
			}
			g.AddVertex(lr1, "PoplinAMPBlock", ClassAMP, t,
				[]VarRegion{
					{Var: vvar, Start: rr0 * n, End: rr1 * n},
					{Var: x, Start: 0, End: n * batch},
				},
				[]VarRegion{{Var: tvar, Start: rr0 * batch, End: rr1 * batch}},
				2*float64(rr1-rr0)*float64(n)*float64(batch))
		}
		g.Execute(lr1)
		lr2 := g.AddComputeSet("pixelfly.lowrank.ut")
		rowTiles := min(cfg.Tiles, n/ampGrain)
		rowsPer := ceilDiv(n, rowTiles)
		for t := 0; t < rowTiles; t++ {
			n0 := t * rowsPer
			n1 := min(n0+rowsPer, n)
			if n0 >= n1 {
				break
			}
			g.AddVertex(lr2, "PoplinAMPBlock", ClassAMP, t,
				[]VarRegion{
					{Var: uvar, Start: n0 * r, End: n1 * r},
					{Var: tvar, Start: 0, End: r * batch},
				},
				[]VarRegion{{Var: y, Start: n0 * batch, End: n1 * batch}},
				2*float64(n1-n0)*float64(r)*float64(batch))
		}
		g.Execute(lr2)
	}
	return w
}

// BuildLinear builds the torch.nn.Linear workload Y(batch×n) = X·W + bias
// using the poplin plan plus a bias compute set.
func BuildLinear(cfg Config, n, batch int) *Workload {
	w := BuildDenseMatMul(cfg, batch, n, n, MMPoplin)
	g := w.Graph
	bias := g.AddVariable("bias", n, 4)
	yv := VarID(2) // C of the matmul
	cs := g.AddComputeSet("linear.biasadd")
	tiles := min(cfg.Tiles, batch)
	rowsPer := ceilDiv(batch, tiles)
	for t := 0; t < tiles; t++ {
		r0 := t * rowsPer
		r1 := min(r0+rowsPer, batch)
		if r0 >= r1 {
			break
		}
		g.AddVertex(cs, "BiasAdd", ClassSIMD, t,
			[]VarRegion{
				{Var: yv, Start: r0 * n, End: r1 * n},
				{Var: bias, Start: 0, End: n},
			},
			[]VarRegion{{Var: yv, Start: r0 * n, End: r1 * n}},
			float64((r1-r0)*n))
	}
	g.Execute(cs)
	w.Name = fmt.Sprintf("linear-%d-b%d", n, batch)
	w.HostBytes = float64(2 * n * batch * 4) // activations only; weights resident
	return w
}

// newLoweringScratch allocates the small tile-0-resident buffer the
// lowering compute sets shuffle.
func newLoweringScratch(g *Graph) VarID {
	scratch := g.AddVariable("lowering.scratch", 1024, 4)
	if err := g.SetTileMapping(scratch, []Interval{{Tile: 0, Start: 0, End: 1024}}); err != nil {
		panic(err)
	}
	return scratch
}

// addLoweringCS appends `count` control-flow compute sets that model the
// PopTorch lowering of framework primitives (views, index_select,
// scatter) — negligible data movement, but each is a separate BSP step
// paying sync and dispatch. This is the overhead mechanism behind Table
// 4's slow Fastfood and Pixelfly rows on the IPU.
func addLoweringCS(g *Graph, name string, scratch VarID, count int) {
	for i := 0; i < count; i++ {
		cs := g.AddComputeSet(fmt.Sprintf("%s.%d", name, i))
		for t := 0; t < 4; t++ {
			g.AddVertex(cs, "FrameworkPrimitive", ClassCopy, t%g.Config.Tiles,
				[]VarRegion{{Var: scratch, Start: 0, End: 256}},
				[]VarRegion{{Var: scratch, Start: 256, End: 512}},
				256)
		}
		g.Execute(cs)
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
