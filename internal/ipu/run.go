package ipu

import "fmt"

// RunOptions control how a workload is executed.
type RunOptions struct {
	// PopTorch runs the program the way the paper measures PyTorch models
	// on the IPU: host transfers for every non-resident tensor, a fixed
	// per-run dispatch cost, a per-compute-set framework dispatch cost,
	// and framework-generated (rather than hand-planned) AMP graphs.
	PopTorch bool
	// DeviceLoop models the paper's layer microbenchmarks (Fig. 6): the
	// 1000-iteration measurement loop is compiled onto the device, so the
	// per-compute-set dispatch cost amortizes to a small residual. Table
	// 4's training loop cannot amortize (fresh data every step), so it
	// runs with DeviceLoop off.
	DeviceLoop bool
}

// PopTorch calibration constants (documented in DESIGN.md §2): the
// effective host link bandwidth PopTorch sustains, the per-run and
// per-compute-set dispatch overheads, and the efficiency of
// framework-generated AMP plans relative to hand-written poplin. They are
// fitted to Table 2's PopTorch column (1677 GFLOP/s at N=2048) and Fig 6's
// IPU panel (break-even at N≈2^10, worst butterfly degradation ≈1.4×).
const (
	popTorchHostBandwidth     = 5e9
	popTorchFixedSec          = 30e-6
	popTorchDispatchSec       = 3e-6
	popTorchLoopedDispatchSec = 0.3e-6
	popTorchAMPEfficiency     = 0.15
)

// RunResult bundles compilation and timing of one workload.
type RunResult struct {
	Workload *Workload
	Compiled *Compiled
	Report   ExecReport
	Seconds  float64
}

// GFlops returns executed GFLOP/s.
func (r RunResult) GFlops() float64 { return r.Workload.Flops / r.Seconds / 1e9 }

// DenseEquivGFlops returns dense-equivalent GFLOP/s (Table 2's convention
// for sparse workloads, which can exceed device peak).
func (r RunResult) DenseEquivGFlops() float64 {
	return r.Workload.DenseEquivFlops / r.Seconds / 1e9
}

// Run compiles and simulates a workload.
func Run(w *Workload, opts RunOptions) (RunResult, error) {
	compiled, err := Compile(w.Graph)
	if err != nil {
		return RunResult{}, fmt.Errorf("compiling %s: %w", w.Name, err)
	}
	if opts.PopTorch {
		scaleAMPVertices(w.Graph, 1/popTorchAMPEfficiency)
		defer scaleAMPVertices(w.Graph, popTorchAMPEfficiency)
	}
	rep := Simulate(compiled)
	res := RunResult{Workload: w, Compiled: compiled, Report: rep, Seconds: rep.Seconds()}
	if opts.PopTorch {
		execSteps := 0
		for _, st := range w.Graph.Program {
			if st.Kind == StepExecute {
				execSteps++
			}
		}
		dispatch := popTorchDispatchSec
		if opts.DeviceLoop {
			dispatch = popTorchLoopedDispatchSec
		}
		res.Seconds += w.HostBytes/popTorchHostBandwidth +
			popTorchFixedSec + float64(execSteps)*dispatch
	}
	return res, nil
}

// ExecSteps counts executed compute-set steps in the workload's program.
func (w *Workload) ExecSteps() int {
	n := 0
	for _, st := range w.Graph.Program {
		if st.Kind == StepExecute {
			n++
		}
	}
	return n
}

// PopTorchTrainStep composes the model time of one training iteration of a
// PopTorch model: forward + backward ≈ 3× the forward device time of each
// layer, one host transfer of the input batch, the fixed per-run dispatch,
// and the per-compute-set dispatch for 3× the layer compute sets plus
// auxSteps framework steps (activation, loss, optimizer). Table 4's
// training loop streams fresh data every step, so the device-loop
// amortization of Fig. 6 does not apply.
func PopTorchTrainStep(layers []RunResult, hostBytes float64, auxSteps int) float64 {
	sec := hostBytes/popTorchHostBandwidth + popTorchFixedSec
	steps := auxSteps
	for _, l := range layers {
		sec += 3 * l.Report.DeviceSeconds
		steps += 3 * l.Workload.ExecSteps()
	}
	return sec + float64(steps)*popTorchDispatchSec
}

// scaleAMPVertices multiplies the flop cost of AMP vertices, modeling the
// efficiency gap between framework-generated and hand-planned AMP code.
func scaleAMPVertices(g *Graph, factor float64) {
	for _, cs := range g.CSs {
		for _, v := range cs.Vertices {
			if v.Class == ClassAMP {
				v.Flops *= factor
			}
		}
	}
}
