package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulColsInto checks that assembling a product from per-slice
// column-window multiplies is bit-for-bit identical to the full-width
// kernels — the equality the tensor-parallel sharded plans rely on.
func TestMatMulColsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rows, n, cols = 5, 16, 12
	a := New(rows, n)
	b := New(n, cols)
	a.FillRandom(rng, 1)
	b.FillRandom(rng, 1)
	want := MatMul(a, b)

	for _, shards := range []int{1, 2, 3, 4} {
		got := New(rows, cols)
		for i := range got.Data {
			got.Data[i] = 99 // verify windows are fully overwritten
		}
		per := (cols + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := min(lo+per, cols)
			if lo >= hi {
				continue
			}
			// Column slice of b, copied the way a shard holds its weights.
			bs := New(n, hi-lo)
			for r := 0; r < n; r++ {
				copy(bs.Row(r), b.Row(r)[lo:hi])
			}
			MatMulColsInto(got, lo, a, bs)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shards=%d: element %d = %v, want %v (not bit-for-bit)",
					shards, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestAddRowVectorCols(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows, cols = 4, 10
	m := New(rows, cols)
	m.FillRandom(rng, 1)
	v := make([]float32, cols)
	for i := range v {
		v[i] = rng.Float32()
	}
	want := m.Clone()
	AddRowVector(want, v)

	got := m.Clone()
	AddRowVectorCols(got, 0, v[:6])
	AddRowVectorCols(got, 6, v[6:])
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeIntoCols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, batch = 12, 5
	src := New(n, batch) // feature-major, like a BSR product
	src.FillRandom(rng, 1)
	want := src.Transpose() // batch×n

	got := New(batch, n)
	// Transpose row windows [0,5) and [5,12) of src into column windows.
	top := New(5, batch)
	copy(top.Data, src.Data[:5*batch])
	bot := New(n-5, batch)
	copy(bot.Data, src.Data[5*batch:])
	TransposeIntoCols(got, 0, top)
	TransposeIntoCols(got, 5, bot)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAddInPlaceColsAndCopyCols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const rows, cols = 3, 8
	m := New(rows, cols)
	m.FillRandom(rng, 1)
	addend := New(rows, 3)
	addend.FillRandom(rng, 1)

	want := m.Clone()
	for i := 0; i < rows; i++ {
		for j := 0; j < 3; j++ {
			want.Data[i*cols+2+j] += addend.At(i, j)
		}
	}
	got := m.Clone()
	AddInPlaceCols(got, 2, addend)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("AddInPlaceCols element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	dst := New(rows, cols)
	CopyCols(dst, 1, m, 4, 3)
	for i := 0; i < rows; i++ {
		for j := 0; j < 3; j++ {
			if dst.At(i, 1+j) != m.At(i, 4+j) {
				t.Fatalf("CopyCols (%d,%d) = %v, want %v", i, j, dst.At(i, 1+j), m.At(i, 4+j))
			}
		}
	}
}

func TestColWindowPanics(t *testing.T) {
	m := New(2, 4)
	for name, fn := range map[string]func(){
		"matmul out of range": func() { MatMulColsInto(m, 3, New(2, 2), New(2, 2)) },
		"bias out of range":   func() { AddRowVectorCols(m, 3, []float32{1, 1}) },
		"negative window":     func() { AddRowVectorCols(m, -1, []float32{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
