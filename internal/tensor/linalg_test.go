package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func relErr(a, approx *Matrix) float64 {
	d := Sub(a, approx)
	na := a.FrobeniusNorm()
	if na == 0 {
		return d.FrobeniusNorm()
	}
	return d.FrobeniusNorm() / na
}

func assertOrthonormalCols(t *testing.T, q *Matrix, tol float64) {
	t.Helper()
	g := MatMul(q.Transpose(), q)
	id := Identity(q.Cols)
	if d := MaxAbsDiff(g, id); d > tol {
		t.Fatalf("QᵀQ deviates from identity by %v (tol %v)", d, tol)
	}
}

func TestHouseholderQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][2]int{{8, 8}, {24, 8}, {17, 5}, {64, 64}} {
		a := New(shape[0], shape[1])
		a.FillRandom(rng, 1)
		q, r := HouseholderQR(a)
		assertOrthonormalCols(t, q, 1e-4)
		if e := relErr(a, MatMul(q, r)); e > 1e-5 {
			t.Fatalf("%dx%d: QR reconstruction error %v", shape[0], shape[1], e)
		}
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestHouseholderQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still reconstruct.
	a := New(6, 3)
	rng := rand.New(rand.NewSource(2))
	a.FillRandom(rng, 1)
	for i := 0; i < a.Rows; i++ {
		a.Set(i, 2, a.At(i, 0))
	}
	q, r := HouseholderQR(a)
	if e := relErr(a, MatMul(q, r)); e > 1e-5 {
		t.Fatalf("rank-deficient QR reconstruction error %v", e)
	}
}

func TestJacobiSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][2]int{{12, 12}, {20, 7}, {7, 20}, {48, 16}} {
		a := New(shape[0], shape[1])
		a.FillRandom(rng, 1)
		u, s, v := JacobiSVD(a)
		// Descending, non-negative spectrum.
		for i := range s {
			if s[i] < 0 {
				t.Fatalf("negative singular value %v", s[i])
			}
			if i > 0 && s[i] > s[i-1]+1e-5 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
		// A = U·diag(S)·Vᵀ.
		us := u.Clone()
		for i := 0; i < us.Rows; i++ {
			row := us.Row(i)
			for j := range row {
				row[j] *= s[j]
			}
		}
		if e := relErr(a, MatMul(us, v.Transpose())); e > 1e-4 {
			t.Fatalf("%dx%d: SVD reconstruction error %v", shape[0], shape[1], e)
		}
		assertOrthonormalCols(t, v, 1e-4)
	}
}

func TestJacobiSVDKnownSpectrum(t *testing.T) {
	// diag(3, 2, 1) embedded in a rotation-free matrix.
	a := New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	_, s, _ := JacobiSVD(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(float64(s[i])-w) > 1e-5 {
			t.Fatalf("spectrum %v, want %v", s, want)
		}
	}
}

func TestRandomizedRangeFinderCapturesLowRank(t *testing.T) {
	// A = B·C with rank 4: an 8-dimensional sketch must capture the range
	// almost exactly.
	rng := rand.New(rand.NewSource(4))
	b := New(40, 4)
	c := New(4, 30)
	b.FillRandom(rng, 1)
	c.FillRandom(rng, 1)
	a := MatMul(b, c)
	q := RandomizedRangeFinder(a, 8, rng)
	assertOrthonormalCols(t, q, 1e-4)
	proj := MatMul(q, MatMul(q.Transpose(), a))
	if e := relErr(a, proj); e > 1e-4 {
		t.Fatalf("range finder residual %v", e)
	}
}
