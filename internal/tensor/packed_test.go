package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// TestMatMulPackedMatchesReference is the tiled-vs-reference property
// test: across random shapes — including ragged edges off the 4×8 tile
// in every dimension — the packed kernels must equal the reference
// kernels under float comparison (bit-for-bit up to the sign of exact
// zeros, the only divergence the dropped av==0 skip can introduce).
func TestMatMulPackedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {1, 64, 10}, {2, 7, 3}, {3, 9, 8}, {4, 8, 16},
		{5, 33, 17}, {6, 10, 24}, {7, 127, 65}, {8, 64, 64},
		{13, 31, 12}, {64, 256, 256}, {1, 1024, 10},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, n)
		b := randMatrix(rng, n, k)
		// Seed exact zeros so the dropped skip branch is exercised.
		b.Data[0] = 0
		if len(a.Data) > 1 {
			a.Data[1] = 0
		}
		pb := Pack(b)
		bias := make([]float32, k)
		for i := range bias {
			bias[i] = rng.Float32()*2 - 1
		}

		want := New(m, k)
		got := New(m, k)

		MatMulInto(want, a, b)
		MatMulPackedInto(got, a, pb)
		assertEqualMat(t, "MatMulPackedInto", sh, want, got)

		MatMulParallelInto(want, a, b)
		MatMulPackedParallelInto(got, a, pb)
		assertEqualMat(t, "MatMulPackedParallelInto", sh, want, got)

		for _, act := range []Activation{ActNone, ActReLU} {
			MatMulBiasActInto(want, a, b, bias, act)
			MatMulPackedBiasActInto(got, a, pb, bias, act)
			assertEqualMat(t, fmt.Sprintf("MatMulPackedBiasActInto/%v", act), sh, want, got)

			MatMulBiasActParallelInto(want, a, b, bias, act)
			MatMulPackedBiasActParallelInto(got, a, pb, bias, act)
			assertEqualMat(t, fmt.Sprintf("MatMulPackedBiasActParallelInto/%v", act), sh, want, got)
		}
	}
}

// TestMatMulPackedColsMatchesReference checks the sharded column-window
// form against MatMulColsBiasActInto, windows at ragged offsets.
func TestMatMulPackedColsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n, full := 6, 37, 40
	a := randMatrix(rng, m, n)
	w := randMatrix(rng, n, full)
	for _, win := range [][2]int{{0, 40}, {0, 13}, {13, 27}, {27, 40}, {5, 6}} {
		lo, hi := win[0], win[1]
		k := hi - lo
		wk := New(n, k)
		for p := 0; p < n; p++ {
			copy(wk.Row(p), w.Row(p)[lo:hi])
		}
		pb := Pack(wk)
		bias := make([]float32, k)
		for i := range bias {
			bias[i] = rng.Float32()*2 - 1
		}
		want := randMatrix(rng, m, full)
		got := want.Clone()
		MatMulColsBiasActInto(want, lo, a, wk, bias, ActReLU)
		MatMulPackedColsBiasActInto(got, lo, a, pb, bias, ActReLU)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("window [%d,%d): data[%d] = %v, want %v", lo, hi, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func assertEqualMat(t *testing.T, op string, sh [3]int, want, got *Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s %v: data[%d] = %v, want %v", op, sh, i, got.Data[i], want.Data[i])
		}
	}
}

// BenchmarkMatMulInto compares the reference row kernel against the
// register-tiled packed kernel at serving-realistic shapes (batch 1–64,
// width 256–1024). The tiled path's win comes from eliminating the
// per-(p,j) dst load/store traffic and the untaken av==0 branch.
func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range [][2]int{{1, 256}, {8, 256}, {1, 1024}, {16, 1024}, {64, 1024}} {
		batch, width := sh[0], sh[1]
		a := randMatrix(rng, batch, width)
		w := randMatrix(rng, width, width)
		pb := Pack(w)
		dst := New(batch, width)
		flops := int64(2 * batch * width * width)
		b.Run(fmt.Sprintf("ref/b%dxn%d", batch, width), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, w)
			}
		})
		b.Run(fmt.Sprintf("tiled/b%dxn%d", batch, width), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				MatMulPackedInto(dst, a, pb)
			}
		})
	}
}
