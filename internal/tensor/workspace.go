package tensor

// Workspace is a caller-owned scratch arena for the destination-passing
// ("Into") kernels. A cycle of use is: Reset, then any number of Take /
// TakeVec / TakeComplex calls whose results are valid until the next Reset.
//
// The arena sizes itself to the high-water mark of a cycle: requests that
// overflow the current backing array fall back to a one-off allocation, and
// the next Reset grows the backing array to the full cycle demand. After
// one warm-up cycle at the largest shapes, every subsequent cycle is
// allocation-free — the property the compiled inference plans rely on.
//
// A Workspace is not safe for concurrent use; pool one per worker.
type Workspace struct {
	buf  []float32
	off  int
	need int

	cbuf  []complex128
	coff  int
	cneed int

	// hdrs recycles Matrix headers so Take itself allocates nothing at
	// steady state. Growing the slice may move it; pointers handed out
	// earlier keep the old backing array alive and stay valid.
	hdrs []Matrix
	hoff int
}

// NewWorkspace returns an empty workspace; the arena grows on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles the arena: all previously taken buffers are invalidated,
// and the backing arrays grow to the previous cycle's total demand so the
// next identical cycle allocates nothing.
func (w *Workspace) Reset() {
	if w.need > len(w.buf) {
		w.buf = make([]float32, w.need)
	}
	if w.cneed > len(w.cbuf) {
		w.cbuf = make([]complex128, w.cneed)
	}
	w.off, w.need = 0, 0
	w.coff, w.cneed = 0, 0
	w.hoff = 0
}

// TakeVec returns a scratch float32 slice of length n with arbitrary
// contents, valid until the next Reset.
func (w *Workspace) TakeVec(n int) []float32 {
	w.need += n
	if w.off+n > len(w.buf) {
		return make([]float32, n)
	}
	s := w.buf[w.off : w.off+n : w.off+n]
	w.off += n
	return s
}

// Take returns a rows×cols scratch matrix with arbitrary contents, valid
// until the next Reset. Kernels that accumulate (MatMulInto and friends)
// zero their destination themselves, so stale contents are harmless.
func (w *Workspace) Take(rows, cols int) *Matrix {
	data := w.TakeVec(rows * cols)
	if w.hoff == len(w.hdrs) {
		w.hdrs = append(w.hdrs, Matrix{})
	}
	m := &w.hdrs[w.hoff]
	w.hoff++
	m.Rows, m.Cols, m.Data = rows, cols, data
	return m
}

// TakeComplex returns a scratch complex128 slice of length n with
// arbitrary contents, valid until the next Reset. It backs the FFT path of
// the circulant layer.
func (w *Workspace) TakeComplex(n int) []complex128 {
	w.cneed += n
	if w.coff+n > len(w.cbuf) {
		return make([]complex128, n)
	}
	s := w.cbuf[w.coff : w.coff+n : w.coff+n]
	w.coff += n
	return s
}

// FootprintBytes reports the arena's current backing size — what one
// pooled plan instance holds onto between executions.
func (w *Workspace) FootprintBytes() int {
	return 4*len(w.buf) + 16*len(w.cbuf)
}
