package tensor

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/tensor/microkernel"
)

// PackedB is a weight matrix repacked into the column-panel layout the
// register-tiled micro-kernel consumes (see internal/tensor/microkernel).
// Packing happens once — at plan-compile time, since weights are
// read-only — so steady-state execution stays allocation-free and the
// kernel's inner loop streams the panel sequentially with no bounds
// checks.
type PackedB struct {
	rows, cols int
	data       []float32
}

// Pack repacks b (treated as the right-hand operand of a matmul) into
// NR-wide column panels. The returned value is immutable and safe for
// concurrent use.
func Pack(b *Matrix) *PackedB {
	pb := &PackedB{
		rows: b.Rows,
		cols: b.Cols,
		data: make([]float32, microkernel.PackedLen(b.Rows, b.Cols)),
	}
	microkernel.PackB(pb.data, b.Data, b.Rows, b.Cols)
	return pb
}

// Rows reports the packed matrix's logical row count (the reduction
// depth of the matmul).
func (pb *PackedB) Rows() int { return pb.rows }

// Cols reports the packed matrix's logical column count.
func (pb *PackedB) Cols() int { return pb.cols }

func checkPackedShapes(name string, dst, a *Matrix, pb *PackedB) {
	if a.Cols != pb.rows {
		panic(fmt.Sprintf("tensor: %s shape mismatch (%d×%d)·packed(%d×%d)", name, a.Rows, a.Cols, pb.rows, pb.cols))
	}
	checkIntoShape(name, dst, a.Rows, pb.cols)
}

// MatMulPackedInto computes dst = a·B through the register-tiled
// micro-kernel. Bit-for-bit equal to MatMulInto up to the sign of exact
// zeros (the tiled path drops the reference av==0 skip, which only
// affects signed-zero outputs).
func MatMulPackedInto(dst, a *Matrix, pb *PackedB) {
	checkPackedShapes("MatMulPackedInto", dst, a, pb)
	microkernel.MatMul(dst.Data, dst.Cols, 0, a.Data, a.Cols, 0, a.Rows, pb.data, pb.rows, pb.cols, nil, false)
}

// MatMulPackedBiasActInto computes dst = act(a·B + bias) through the
// register-tiled micro-kernel — the packed counterpart of
// MatMulBiasActInto.
func MatMulPackedBiasActInto(dst, a *Matrix, pb *PackedB, bias []float32, act Activation) {
	checkPackedShapes("MatMulPackedBiasActInto", dst, a, pb)
	checkBiasLen("MatMulPackedBiasActInto", bias, pb.cols)
	microkernel.MatMul(dst.Data, dst.Cols, 0, a.Data, a.Cols, 0, a.Rows, pb.data, pb.rows, pb.cols, bias, act == ActReLU)
}

// MatMulPackedParallelInto is the row-parallel form of MatMulPackedInto,
// using the same worker count, serial-cutoff product, and chunking as
// MatMulParallelInto so scheduling behaviour is comparable. Rows are
// independent, so the partition never affects results.
func MatMulPackedParallelInto(dst, a *Matrix, pb *PackedB) {
	checkPackedShapes("MatMulPackedParallelInto", dst, a, pb)
	matMulPackedRowsParallel(dst, a, pb, nil, false)
}

// MatMulPackedBiasActParallelInto is the row-parallel form of
// MatMulPackedBiasActInto.
func MatMulPackedBiasActParallelInto(dst, a *Matrix, pb *PackedB, bias []float32, act Activation) {
	checkPackedShapes("MatMulPackedBiasActParallelInto", dst, a, pb)
	checkBiasLen("MatMulPackedBiasActParallelInto", bias, pb.cols)
	matMulPackedRowsParallel(dst, a, pb, bias, act == ActReLU)
}

func matMulPackedRowsParallel(dst, a *Matrix, pb *PackedB, bias []float32, relu bool) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*pb.cols < 1<<16 {
		microkernel.MatMul(dst.Data, dst.Cols, 0, a.Data, a.Cols, 0, a.Rows, pb.data, pb.rows, pb.cols, bias, relu)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			microkernel.MatMul(dst.Data, dst.Cols, 0, a.Data, a.Cols, lo, hi, pb.data, pb.rows, pb.cols, bias, relu)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulPackedColsBiasActInto computes act(a·B + bias) into the column
// window [dstLo, dstLo+B.Cols) of dst — the packed counterpart of
// MatMulColsBiasActInto for sharded column-parallel execution. bias is
// window-relative, matching the unpacked variant.
func MatMulPackedColsBiasActInto(dst *Matrix, dstLo int, a *Matrix, pb *PackedB, bias []float32, act Activation) {
	if a.Cols != pb.rows {
		panic(fmt.Sprintf("tensor: MatMulPackedColsBiasActInto shape mismatch (%d×%d)·packed(%d×%d)", a.Rows, a.Cols, pb.rows, pb.cols))
	}
	if dst.Rows != a.Rows || dstLo < 0 || dstLo+pb.cols > dst.Cols {
		panic(fmt.Sprintf("tensor: MatMulPackedColsBiasActInto window [%d,%d) does not fit %d×%d dst",
			dstLo, dstLo+pb.cols, dst.Rows, dst.Cols))
	}
	checkBiasLen("MatMulPackedColsBiasActInto", bias, pb.cols)
	microkernel.MatMul(dst.Data, dst.Cols, dstLo, a.Data, a.Cols, 0, a.Rows, pb.data, pb.rows, pb.cols, bias, act == ActReLU)
}
