package tensor

import (
	"math/rand"
	"testing"
)

// reluSweep applies the reference activation sweep (nn.ReLU's comparison)
// in place — the unfused pass the fused kernels must match bit-for-bit.
func reluSweep(m *Matrix) {
	for i, v := range m.Data {
		if !(v > 0) {
			m.Data[i] = 0
		}
	}
}

func randomBias(rng *rand.Rand, n int) []float32 {
	b := make([]float32, n)
	for i := range b {
		b[i] = rng.Float32()*2 - 1
	}
	return b
}

// assertBitIdentical fails unless a and b hold exactly the same float32
// bits (MaxAbsDiff would mask −0 vs +0 and NaN handling).
func assertBitIdentical(t *testing.T, tag string, a, b *Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] && !(a.Data[i] != a.Data[i] && b.Data[i] != b.Data[i]) {
			t.Fatalf("%s: element %d differs: %g vs %g", tag, i, a.Data[i], b.Data[i])
		}
	}
}

// TestMatMulBiasActIntoMatchesUnfused pins the fused matmul epilogue to
// the unfused three-sweep chain, serial and parallel, for both
// activations, across sizes straddling the parallel threshold.
func TestMatMulBiasActIntoMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 4, 4}, {3, 16, 10}, {8, 64, 64}, {48, 48, 48}} {
		r, n, k := dims[0], dims[1], dims[2]
		a := randomMatrix(rng, r, n)
		b := randomMatrix(rng, n, k)
		bias := randomBias(rng, k)
		for _, act := range []Activation{ActNone, ActReLU} {
			want := New(r, k)
			MatMulInto(want, a, b)
			AddRowVector(want, bias)
			if act == ActReLU {
				reluSweep(want)
			}
			got := New(r, k)
			MatMulBiasActInto(got, a, b, bias, act)
			assertBitIdentical(t, "serial", want, got)
			gotPar := New(r, k)
			MatMulBiasActParallelInto(gotPar, a, b, bias, act)
			assertBitIdentical(t, "parallel", want, gotPar)
		}
	}
	// Above the parallel threshold (rows·n·k ≥ 1<<16) the goroutine path
	// engages; the row partition must keep it bit-identical.
	a := randomMatrix(rng, 40, 48)
	b := randomMatrix(rng, 48, 40)
	bias := randomBias(rng, 40)
	want := New(40, 40)
	MatMulParallelInto(want, a, b)
	AddRowVector(want, bias)
	reluSweep(want)
	got := New(40, 40)
	MatMulBiasActParallelInto(got, a, b, bias, ActReLU)
	assertBitIdentical(t, "parallel-large", want, got)
}

// TestMatMulBiasActNilBias checks the bias-free form (no +0 perturbation).
func TestMatMulBiasActNilBias(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 5, 8)
	b := randomMatrix(rng, 8, 6)
	want := MatMul(a, b)
	reluSweep(want)
	got := New(5, 6)
	MatMulBiasActInto(got, a, b, nil, ActReLU)
	assertBitIdentical(t, "nil-bias", want, got)
}

// TestApplyBiasActInto covers the generic epilogue sweep, aliased and not.
func TestApplyBiasActInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randomMatrix(rng, 7, 9)
	bias := randomBias(rng, 9)
	want := x.Clone()
	AddRowVector(want, bias)
	reluSweep(want)

	got := New(7, 9)
	ApplyBiasActInto(got, x, bias, ActReLU)
	assertBitIdentical(t, "distinct", want, got)

	aliased := x.Clone()
	ApplyBiasActInto(aliased, aliased, bias, ActReLU)
	assertBitIdentical(t, "aliased", want, aliased)
}

// TestMatMulColsBiasActInto pins the fused column-window kernel — the
// tensor-parallel shard path — to the unfused window chain, and checks
// columns outside the window stay untouched.
func TestMatMulColsBiasActInto(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const rows, n, full, lo, w = 6, 12, 20, 5, 8
	a := randomMatrix(rng, rows, n)
	b := randomMatrix(rng, n, w)
	bias := randomBias(rng, w)

	want := New(rows, full)
	want.FillRandom(rng, 1)
	sentinel := want.Clone()
	MatMulColsInto(want, lo, a, b)
	AddRowVectorCols(want, lo, bias)
	for i := 0; i < rows; i++ {
		row := want.Row(i)[lo : lo+w]
		for j, v := range row {
			if !(v > 0) {
				row[j] = 0
			}
		}
	}

	got := sentinel.Clone()
	MatMulColsBiasActInto(got, lo, a, b, bias, ActReLU)
	assertBitIdentical(t, "window", want, got)
	for i := 0; i < rows; i++ {
		for j := 0; j < full; j++ {
			if j >= lo && j < lo+w {
				continue
			}
			if got.At(i, j) != sentinel.At(i, j) {
				t.Fatalf("column %d outside window modified", j)
			}
		}
	}
}

// TestAddInPlaceBiasAct pins the fused residual epilogue (pixelfly's
// low-rank tail) and its column-window form to the unfused chain.
func TestAddInPlaceBiasAct(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const rows, full, lo, w = 5, 14, 3, 6
	src := randomMatrix(rng, rows, w)
	bias := randomBias(rng, w)

	base := randomMatrix(rng, rows, w)
	want := base.Clone()
	AddInPlace(want, src)
	AddRowVector(want, bias)
	reluSweep(want)
	got := base.Clone()
	AddInPlaceBiasAct(got, src, bias, ActReLU)
	assertBitIdentical(t, "full", want, got)

	wide := randomMatrix(rng, rows, full)
	wantW := wide.Clone()
	AddInPlaceCols(wantW, lo, src)
	AddRowVectorCols(wantW, lo, bias)
	for i := 0; i < rows; i++ {
		row := wantW.Row(i)[lo : lo+w]
		for j, v := range row {
			if !(v > 0) {
				row[j] = 0
			}
		}
	}
	gotW := wide.Clone()
	AddInPlaceColsBiasAct(gotW, lo, src, bias, ActReLU)
	assertBitIdentical(t, "window", wantW, gotW)
}

// TestTransposeIntoColsBiasAct pins the fused transpose-back epilogue
// (sharded pixelfly without a low-rank term) to the unfused chain.
func TestTransposeIntoColsBiasAct(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const feats, batch, full, lo = 6, 4, 10, 2
	m := randomMatrix(rng, feats, batch) // feature-major product slice
	bias := randomBias(rng, feats)

	want := New(batch, full)
	TransposeIntoCols(want, lo, m)
	AddRowVectorCols(want, lo, bias)
	for i := 0; i < batch; i++ {
		row := want.Row(i)[lo : lo+feats]
		for j, v := range row {
			if !(v > 0) {
				row[j] = 0
			}
		}
	}
	got := New(batch, full)
	TransposeIntoColsBiasAct(got, lo, m, bias, ActReLU)
	assertBitIdentical(t, "window", want, got)
}
