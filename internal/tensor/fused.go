package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Activation identifies the elementwise nonlinearity an epilogue-aware
// kernel applies as it writes each output element. The fusion contract of
// the compiled inference plans: act(linear + bias) must be produced by
// exactly the float32 operations the unfused sweeps perform, so fused and
// unfused plans stay bit-for-bit equal.
type Activation int

const (
	// ActNone applies no nonlinearity.
	ActNone Activation = iota
	// ActReLU clamps non-positive values to zero — the same comparison
	// nn.ReLU's inference path uses (NaN also maps to zero).
	ActReLU
)

func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply returns act(v) — the single definition of each activation's
// float32 semantics (ReLU clamps non-positives, including NaN, to zero,
// matching nn.ReLU's inference comparison). Every fused kernel, in this
// package and in the operator packages, finishes its elements through
// this method so the fused-vs-unfused bit-for-bit contract has exactly
// one implementation to agree with.
func (a Activation) Apply(v float32) float32 {
	if a == ActReLU && !(v > 0) {
		return 0
	}
	return v
}

// epilogueRow applies the fused tail of a linear layer to one finished
// output row (or row window): add the bias, then the activation. bias may
// be nil and is indexed relative to the row slice.
func epilogueRow(row, bias []float32, act Activation) {
	if bias != nil {
		for j, v := range row {
			row[j] = act.Apply(v + bias[j])
		}
		return
	}
	if act == ActNone {
		return
	}
	for j, v := range row {
		row[j] = act.Apply(v)
	}
}

// ApplyBiasActInto writes act(x + bias) into dst in one sweep: the generic
// epilogue for operators without a deeper fused final stage. dst may alias
// x; bias may be nil (len == Cols otherwise).
func ApplyBiasActInto(dst, x *Matrix, bias []float32, act Activation) {
	checkSameShape("ApplyBiasActInto", dst, x)
	if bias != nil && len(bias) != x.Cols {
		panic(fmt.Sprintf("tensor: ApplyBiasActInto bias length %d != cols %d", len(bias), x.Cols))
	}
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		row := dst.Row(i)
		if dst != x {
			copy(row, src)
		}
		epilogueRow(row, bias, act)
	}
}

// matMulBiasActRows is matMulRows with the epilogue applied to each output
// row as soon as its accumulation finishes — the row leaves cache exactly
// once.
func matMulBiasActRows(a, b, out *Matrix, bias []float32, act Activation, lo, hi int) {
	n, k := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*k : (p+1)*k]
			for j := 0; j < k; j++ {
				orow[j] += av * brow[j]
			}
		}
		epilogueRow(orow, bias, act)
	}
}

func checkBiasLen(op string, bias []float32, cols int) {
	if bias != nil && len(bias) != cols {
		panic(fmt.Sprintf("tensor: %s bias length %d != cols %d", op, len(bias), cols))
	}
}

// MatMulBiasActInto computes act(a·b + bias) into dst (shape a.Rows×b.Cols,
// overwritten) in a single pass over the output: the accumulation order is
// exactly MatMulInto's, with the bias add and activation folded into the
// moment each row completes, so the result is bit-for-bit equal to
// MatMulInto + AddRowVector + a separate activation sweep. bias may be nil.
// dst must not alias a or b.
func MatMulBiasActInto(dst, a, b *Matrix, bias []float32, act Activation) {
	checkMulShapes(a, b)
	checkIntoShape("MatMulBiasActInto", dst, a.Rows, b.Cols)
	checkBiasLen("MatMulBiasActInto", bias, b.Cols)
	matMulBiasActRows(a, b, dst, bias, act, 0, a.Rows)
}

// MatMulBiasActParallelInto is MatMulBiasActInto with MatMulParallelInto's
// row partition (same worker count and serial threshold). Every output row
// is accumulated and finished by exactly one goroutine in the serial order,
// so the result is bit-identical to the serial kernel — and to the unfused
// MatMulParallelInto + AddRowVector + activation sweeps.
func MatMulBiasActParallelInto(dst, a, b *Matrix, bias []float32, act Activation) {
	checkMulShapes(a, b)
	checkIntoShape("MatMulBiasActParallelInto", dst, a.Rows, b.Cols)
	checkBiasLen("MatMulBiasActParallelInto", bias, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*b.Cols < 1<<16 {
		matMulBiasActRows(a, b, dst, bias, act, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulBiasActRows(a, b, dst, bias, act, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulColsBiasActInto computes act(a·b + bias) into the column window
// [dstLo, dstLo+b.Cols) of dst in one pass — the fused form of
// MatMulColsInto + AddRowVectorCols + an activation sweep one tensor-
// parallel shard executes. bias is window-relative (len == b.Cols) and may
// be nil. Columns outside the window are untouched. dst must not alias a
// or b.
func MatMulColsBiasActInto(dst *Matrix, dstLo int, a, b *Matrix, bias []float32, act Activation) {
	checkMulShapes(a, b)
	if dst.Rows != a.Rows {
		panic(fmt.Sprintf("tensor: MatMulColsBiasActInto dst rows %d != %d", dst.Rows, a.Rows))
	}
	checkColWindow("MatMulColsBiasActInto", dst, dstLo, b.Cols)
	checkBiasLen("MatMulColsBiasActInto", bias, b.Cols)
	n, k, w := a.Cols, dst.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Data[i*k+dstLo : i*k+dstLo+w]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*w : (p+1)*w]
			for j := 0; j < w; j++ {
				orow[j] += av * brow[j]
			}
		}
		epilogueRow(orow, bias, act)
	}
}

// AddInPlaceBiasAct folds a residual accumulation into the epilogue:
// dst = act((dst + src) + bias) in one sweep, matching the unfused
// AddInPlace + AddRowVector + activation chain element-for-element. bias
// may be nil.
func AddInPlaceBiasAct(dst, src *Matrix, bias []float32, act Activation) {
	checkSameShape("AddInPlaceBiasAct", dst, src)
	checkBiasLen("AddInPlaceBiasAct", bias, dst.Cols)
	for i := 0; i < dst.Rows; i++ {
		row := dst.Row(i)
		s := src.Row(i)
		for j := range row {
			row[j] += s[j]
		}
		epilogueRow(row, bias, act)
	}
}

// AddInPlaceColsBiasAct is AddInPlaceBiasAct on the column window
// [lo, lo+src.Cols) of dst; bias is window-relative and may be nil.
func AddInPlaceColsBiasAct(dst *Matrix, lo int, src *Matrix, bias []float32, act Activation) {
	if dst.Rows != src.Rows {
		panic(fmt.Sprintf("tensor: AddInPlaceColsBiasAct rows %d != %d", dst.Rows, src.Rows))
	}
	checkColWindow("AddInPlaceColsBiasAct", dst, lo, src.Cols)
	checkBiasLen("AddInPlaceColsBiasAct", bias, src.Cols)
	for i := 0; i < src.Rows; i++ {
		row := dst.Data[i*dst.Cols+lo : i*dst.Cols+lo+src.Cols]
		s := src.Row(i)
		for j := range row {
			row[j] += s[j]
		}
		epilogueRow(row, bias, act)
	}
}

// TransposeIntoColsBiasAct writes act(mᵀ + bias) into the column window
// [dstLo, dstLo+m.Rows) of dst — the fused tail of a sharded pixelfly step
// without a low-rank term. bias is indexed by m's row (the dst column
// offset within the window) and may be nil. dst must not alias m.
func TransposeIntoColsBiasAct(dst *Matrix, dstLo int, m *Matrix, bias []float32, act Activation) {
	if dst.Rows != m.Cols {
		panic(fmt.Sprintf("tensor: TransposeIntoColsBiasAct dst rows %d != src cols %d", dst.Rows, m.Cols))
	}
	checkColWindow("TransposeIntoColsBiasAct", dst, dstLo, m.Rows)
	checkBiasLen("TransposeIntoColsBiasAct", bias, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			v := m.Data[base+j]
			if bias != nil {
				v += bias[i]
			}
			dst.Data[j*dst.Cols+dstLo+i] = act.Apply(v)
		}
	}
}
