package microkernel

import (
	"math/rand"
	"testing"
)

// refMatMul is the reference accumulation: per element, Σ_p a[p]*b[p][j]
// with p ascending from zero, then bias and the reference ReLU semantic.
// It deliberately has no zero-skip so it states the pure chain the tiled
// kernel must reproduce; zero-skipping only perturbs the sign of exact
// zeros, which float comparison treats as equal.
func refMatMul(a, b []float32, m, n, k int, bias []float32, relu bool) []float32 {
	out := make([]float32, m*k)
	for i := 0; i < m; i++ {
		for p := 0; p < n; p++ {
			av := a[i*n+p]
			for j := 0; j < k; j++ {
				out[i*k+j] += av * b[p*k+j]
			}
		}
		for j := 0; j < k; j++ {
			v := out[i*k+j]
			if bias != nil {
				v += bias[j]
			}
			if relu && !(v > 0) {
				v = 0
			}
			out[i*k+j] = v
		}
	}
	return out
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

// TestMatMulMatchesReference sweeps random shapes — including ragged
// edges in every dimension — and demands float equality (which is bit
// equality up to the sign of exact zeros) against the reference chain.
func TestMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{
		{1, 1, 1}, {1, 8, 8}, {1, 16, 10}, {2, 3, 5}, {3, 7, 9},
		{4, 8, 8}, {5, 13, 17}, {7, 64, 10}, {8, 64, 64}, {16, 33, 24},
		{64, 256, 256}, {1, 1024, 10},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*n)
		b := randSlice(rng, n*k)
		packed := make([]float32, PackedLen(n, k))
		PackB(packed, b, n, k)
		for _, relu := range []bool{false, true} {
			for _, withBias := range []bool{false, true} {
				var bias []float32
				if withBias {
					bias = randSlice(rng, k)
				}
				want := refMatMul(a, b, m, n, k, bias, relu)
				got := make([]float32, m*k)
				MatMul(got, k, 0, a, n, 0, m, packed, n, k, bias, relu)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("m=%d n=%d k=%d bias=%v relu=%v: out[%d] = %v, want %v",
							m, n, k, withBias, relu, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestMatMulColumnWindow checks the dstOff/dstStride form: a window of a
// wider output must receive the same values, and bytes outside the
// window must be untouched.
func TestMatMulColumnWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k, full, off := 5, 13, 10, 32, 7
	a := randSlice(rng, m*n)
	b := randSlice(rng, n*k)
	bias := randSlice(rng, k)
	packed := make([]float32, PackedLen(n, k))
	PackB(packed, b, n, k)
	want := refMatMul(a, b, m, n, k, bias, true)

	dst := make([]float32, m*full)
	for i := range dst {
		dst[i] = 99
	}
	MatMul(dst, full, off, a, n, 0, m, packed, n, k, bias, true)
	for i := 0; i < m; i++ {
		for j := 0; j < full; j++ {
			got := dst[i*full+j]
			if j >= off && j < off+k {
				if got != want[i*k+(j-off)] {
					t.Fatalf("window [%d,%d] = %v, want %v", i, j, got, want[i*k+(j-off)])
				}
			} else if got != 99 {
				t.Fatalf("outside window [%d,%d] clobbered: %v", i, j, got)
			}
		}
	}
}

// TestMatMulRowRange checks partial row ranges (the parallel partition
// unit) leave other rows untouched.
func TestMatMulRowRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 9, 12, 11
	a := randSlice(rng, m*n)
	b := randSlice(rng, n*k)
	packed := make([]float32, PackedLen(n, k))
	PackB(packed, b, n, k)
	want := refMatMul(a, b, m, n, k, nil, false)

	dst := make([]float32, m*k)
	for i := range dst {
		dst[i] = -5
	}
	r0, r1 := 3, 7
	MatMul(dst, k, 0, a, n, r0, r1, packed, n, k, nil, false)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			got := dst[i*k+j]
			if i >= r0 && i < r1 {
				if got != want[i*k+j] {
					t.Fatalf("row %d col %d = %v, want %v", i, j, got, want[i*k+j])
				}
			} else if got != -5 {
				t.Fatalf("row %d outside [%d,%d) clobbered", i, r0, r1)
			}
		}
	}
}

// refFWHT is the reference triple loop from internal/hadamard.
func refFWHT(x []float32) {
	n := len(x)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// TestFWHTMatchesReference covers the degenerate (n<8), radix-8-only,
// unrolled-pass, and chunk-blocked regimes, demanding bit equality.
func TestFWHTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 1; n <= 1<<14; n <<= 1 {
		x := randSlice(rng, n)
		want := append([]float32(nil), x...)
		refFWHT(want)
		FWHT(x)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}
