// Package microkernel holds the register-tiled pure-Go inner kernels
// behind the tensor/butterfly/hadamard/sparse fast paths. Everything here
// works on raw float32 slices (no Matrix types, no imports) so every
// operator family can share the same kernels without import cycles.
//
// The contract that makes these kernels safe to swap in at plan-compile
// time is bit-for-bit equivalence with the reference loops: every output
// element is produced by the same float32 operation chain, in the same
// order, as the naive code. Tiling only reorders *which elements* are
// computed when — never the reduction order *within* an element — so
// results are IEEE-754 identical (modulo the sign of exact zeros, which
// float comparison treats as equal).
//
// The matmul kernel deliberately drops the reference path's `av == 0`
// skip branch: on dense weights the branch is nearly always not taken
// and costs more than it saves; zeros there are incidental, not
// structural. The BSR kernels in internal/sparse keep zero-skipping at
// block granularity, where zeros are structural (absent blocks).
package microkernel

// Tile shape: output is processed in blocks of MR rows, each row
// accumulated NR columns at a time against a packed B panel. NR=8 keeps
// the eight accumulators plus the streaming panel values within the
// scalar register budget; MR=4 re-uses each L1-resident panel across
// four A rows before moving on.
const (
	MR = 4
	NR = 8
)

// PackedLen returns the slice length PackB needs for an n×k matrix:
// ceil(k/NR) panels of n×NR values (the ragged tail panel is
// zero-padded).
func PackedLen(n, k int) int {
	return (k + NR - 1) / NR * n * NR
}

// PackB packs the row-major n×k matrix b into NR-wide column panels:
// panel jp holds columns [jp*NR, jp*NR+NR), stored panel-major as
// dst[jp*n*NR + p*NR + l] = b[p*k + jp*NR + l]. Ragged tail lanes are
// zero-filled; the kernel computes them but never stores them.
func PackB(dst, b []float32, n, k int) {
	np := (k + NR - 1) / NR
	for jp := 0; jp < np; jp++ {
		j0 := jp * NR
		w := k - j0
		if w > NR {
			w = NR
		}
		pan := dst[jp*n*NR : (jp+1)*n*NR]
		for p := 0; p < n; p++ {
			src := b[p*k+j0 : p*k+j0+w]
			out := pan[p*NR : p*NR+NR : p*NR+NR]
			for l := 0; l < w; l++ {
				out[l] = src[l]
			}
			for l := w; l < NR; l++ {
				out[l] = 0
			}
		}
	}
}

// MatMul computes rows [r0,r1) of dst = act(a·B + bias), where B is the
// n×k matrix packed by PackB. Row i of a starts at a[i*aStride] and is n
// long; row i of the output occupies dst[i*dstStride+dstOff :
// i*dstStride+dstOff+k] (dstOff supports column-window outputs). bias,
// when non-nil, is window-relative (length k). relu applies the
// reference ReLU semantic (!(v > 0) → 0) after the bias add.
//
// Per output element the accumulation is Σ_p a[p]*b[p][j] with p
// ascending from a zero accumulator — exactly the reference
// matMulRows/matMulBiasActRows chain — so results are bit-identical.
// The output window is fully overwritten; callers need not zero it.
func MatMul(dst []float32, dstStride, dstOff int, a []float32, aStride, r0, r1 int, packed []float32, n, k int, bias []float32, relu bool) {
	np := (k + NR - 1) / NR
	// Panels outermost: each n×NR panel is streamed from memory once and
	// stays cache-hot across every row of A, so the weight matrix is read
	// exactly once per call regardless of batch size (the reference row
	// kernel re-streams it once per row).
	for jp := 0; jp < np; jp++ {
		j0 := jp * NR
		w := k - j0
		if w > NR {
			w = NR
		}
		pan := packed[jp*n*NR : (jp+1)*n*NR]
		row := r0
		for ; row+2 <= r1; row += 2 {
			off0 := row * aStride
			off1 := off0 + aStride
			mul2x8(dst[row*dstStride+dstOff+j0:], dst[(row+1)*dstStride+dstOff+j0:],
				a[off0:off0+n:off0+n], a[off1:off1+n:off1+n], pan, n, w)
		}
		for ; row < r1; row++ {
			off := row * aStride
			mul1x8(dst[row*dstStride+dstOff+j0:], a[off:off+n:off+n], pan, n, w)
		}
	}
	if bias != nil || relu {
		for row := r0; row < r1; row++ {
			off := row*dstStride + dstOff
			epilogueRow(dst[off:off+k], bias, relu)
		}
	}
}

// mul1x8 accumulates one output row segment of w ≤ NR columns:
// c[l] = Σ_p a[p]*pan[p*NR+l], p ascending, then stores the first w
// lanes into dst. Eight independent accumulator chains give the
// instruction-level parallelism; the packed panel makes the inner loop's
// loads sequential and bounds-check-free.
func mul1x8(dst, a, pan []float32, n, w int) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float32
	// Ranging over a pins the trip count to len(a), and the
	// constant-length subslice b proves len(b) == NR, so every load in
	// the loop body is bounds-check-free.
	for p, av := range a {
		o := p * NR
		b := pan[o : o+NR : o+NR]
		c0 += av * b[0]
		c1 += av * b[1]
		c2 += av * b[2]
		c3 += av * b[3]
		c4 += av * b[4]
		c5 += av * b[5]
		c6 += av * b[6]
		c7 += av * b[7]
	}
	if w == NR {
		d := dst[:NR:NR]
		d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7] = c0, c1, c2, c3, c4, c5, c6, c7
		return
	}
	tmp := [NR]float32{c0, c1, c2, c3, c4, c5, c6, c7}
	copy(dst[:w], tmp[:w])
}

// mul2x8 is mul1x8 over two A rows at once: each panel value is loaded
// once and feeds both rows' accumulators. The per-row accumulation chain
// is unchanged (p ascending from zero), so results stay bit-identical.
func mul2x8(dst0, dst1, a0, a1, pan []float32, n, w int) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float32
	var d0, d1, d2, d3, d4, d5, d6, d7 float32
	a1 = a1[:len(a0):len(a0)]
	for p, u := range a0 {
		v := a1[p]
		o := p * NR
		b := pan[o : o+NR : o+NR]
		b0, b1 := b[0], b[1]
		c0 += u * b0
		d0 += v * b0
		c1 += u * b1
		d1 += v * b1
		b2, b3 := b[2], b[3]
		c2 += u * b2
		d2 += v * b2
		c3 += u * b3
		d3 += v * b3
		b4, b5 := b[4], b[5]
		c4 += u * b4
		d4 += v * b4
		c5 += u * b5
		d5 += v * b5
		b6, b7 := b[6], b[7]
		c6 += u * b6
		d6 += v * b6
		c7 += u * b7
		d7 += v * b7
	}
	if w == NR {
		e := dst0[:NR:NR]
		e[0], e[1], e[2], e[3], e[4], e[5], e[6], e[7] = c0, c1, c2, c3, c4, c5, c6, c7
		f := dst1[:NR:NR]
		f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7] = d0, d1, d2, d3, d4, d5, d6, d7
		return
	}
	tmp0 := [NR]float32{c0, c1, c2, c3, c4, c5, c6, c7}
	copy(dst0[:w], tmp0[:w])
	tmp1 := [NR]float32{d0, d1, d2, d3, d4, d5, d6, d7}
	copy(dst1[:w], tmp1[:w])
}

// epilogueRow applies bias (window-relative) and the reference ReLU
// semantic in place, matching tensor's epilogueRow bit-for-bit.
func epilogueRow(row, bias []float32, relu bool) {
	if bias != nil {
		bias = bias[:len(row):len(row)]
		for j := range row {
			v := row[j] + bias[j]
			if relu && !(v > 0) {
				v = 0
			}
			row[j] = v
		}
		return
	}
	if !relu {
		return
	}
	for j := range row {
		if !(row[j] > 0) {
			row[j] = 0
		}
	}
}

// fwhtChunk is the pass-blocking size for large transforms: 2048
// float32s = 8 KiB, comfortably L1-resident. Passes with pair distance
// below the chunk size touch only elements within one aligned chunk, so
// running them chunk-by-chunk performs the identical operations on the
// identical operands as the global pass order — bit-for-bit equal — while
// each chunk is streamed through L1 exactly once for all of its passes.
const fwhtChunk = 2048

// FWHT applies the unnormalized Walsh–Hadamard transform in place.
// len(x) must be a power of two (the caller validates). The first three
// passes (h=1,2,4) are fused into a single radix-8 sweep that keeps each
// 8-element group in registers; later passes run with a 4-way unrolled
// pair loop, blocked to L1-sized chunks for large n. Every butterfly
// computes the same a+b / a-b pair on the same operands as the reference
// triple loop, so the result is bit-identical.
func FWHT(x []float32) {
	n := len(x)
	if n < 8 {
		// Degenerate sizes: the radix-8 sweep needs n ≥ 8.
		for h := 1; h < n; h <<= 1 {
			for i := 0; i < n; i += h << 1 {
				for j := i; j < i+h; j++ {
					a, b := x[j], x[j+h]
					x[j], x[j+h] = a+b, a-b
				}
			}
		}
		return
	}
	for i := 0; i+8 <= n; i += 8 {
		c := x[i : i+8 : i+8]
		x0, x1, x2, x3, x4, x5, x6, x7 := c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]
		// h=1 pass
		a0, a1 := x0+x1, x0-x1
		a2, a3 := x2+x3, x2-x3
		a4, a5 := x4+x5, x4-x5
		a6, a7 := x6+x7, x6-x7
		// h=2 pass
		b0, b2 := a0+a2, a0-a2
		b1, b3 := a1+a3, a1-a3
		b4, b6 := a4+a6, a4-a6
		b5, b7 := a5+a7, a5-a7
		// h=4 pass
		c[0], c[4] = b0+b4, b0-b4
		c[1], c[5] = b1+b5, b1-b5
		c[2], c[6] = b2+b6, b2-b6
		c[3], c[7] = b3+b7, b3-b7
	}
	if n <= fwhtChunk {
		fwhtPasses(x, 8)
		return
	}
	// Chunk-local passes (h < fwhtChunk), then the remaining global
	// passes. Chunks are power-of-two aligned, so every pass with pair
	// distance < fwhtChunk stays inside one chunk.
	for i := 0; i < n; i += fwhtChunk {
		fwhtPasses(x[i:i+fwhtChunk], 8)
	}
	for h := fwhtChunk; h < n; h <<= 1 {
		fwhtPass(x, h)
	}
}

// fwhtPasses runs the passes h = h0, 2·h0, … over the whole of x.
func fwhtPasses(x []float32, h0 int) {
	for h := h0; h < len(x); h <<= 1 {
		fwhtPass(x, h)
	}
}

// fwhtPass runs one pass of pair distance h ≥ 4, with the pair loop
// unrolled 4×. Slicing top/bot to exactly h elements hoists the bounds
// checks out of the inner loop.
func fwhtPass(x []float32, h int) {
	n := len(x)
	for i := 0; i < n; i += h << 1 {
		top := x[i : i+h : i+h]
		bot := x[i+h : i+h+h : i+h+h]
		for j := 0; j < h; j += 4 {
			t0, b0 := top[j], bot[j]
			top[j], bot[j] = t0+b0, t0-b0
			t1, b1 := top[j+1], bot[j+1]
			top[j+1], bot[j+1] = t1+b1, t1-b1
			t2, b2 := top[j+2], bot[j+2]
			top[j+2], bot[j+2] = t2+b2, t2-b2
			t3, b3 := top[j+3], bot[j+3]
			top[j+3], bot[j+3] = t3+b3, t3-b3
		}
	}
}
