package tensor

import (
	"math/rand"
	"testing"
)

// TestIntoKernelsMatchAllocatingKernels checks every destination-passing
// kernel against its allocating wrapper, bit-for-bit.
func TestIntoKernelsMatchAllocatingKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(7, 13)
	a.FillRandom(rng, 1)
	b := New(13, 5)
	b.FillRandom(rng, 1)

	check := func(label string, want, got *Matrix) {
		t.Helper()
		if d := MaxAbsDiff(want, got); d != 0 {
			t.Errorf("%s: differs from allocating kernel by %g", label, d)
		}
	}

	mm := New(7, 5)
	MatMulInto(mm, a, b)
	check("MatMulInto", MatMul(a, b), mm)

	// Into kernels must overwrite stale destination contents.
	mm.Data[0] = 1e9
	MatMulInto(mm, a, b)
	check("MatMulInto over stale dst", MatMul(a, b), mm)

	mb := New(7, 5)
	MatMulBlockedInto(mb, a, b, 4)
	check("MatMulBlockedInto", MatMulBlocked(a, b, 4), mb)

	mp := New(7, 5)
	MatMulParallelInto(mp, a, b)
	check("MatMulParallelInto", MatMulParallel(a, b), mp)

	tr := New(13, 7)
	TransposeInto(tr, a)
	check("TransposeInto", a.Transpose(), tr)

	v := make([]float32, a.Cols)
	for i := range v {
		v[i] = rng.Float32()
	}
	av := New(7, 13)
	AddRowVectorInto(av, a, v)
	ref := a.Clone()
	AddRowVector(ref, v)
	check("AddRowVectorInto", ref, av)

	x := make([]float32, a.Cols)
	for i := range x {
		x[i] = rng.Float32()
	}
	dst := make([]float32, a.Rows)
	a.MulVecInto(dst, x)
	want := a.MulVec(x)
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestIntoKernelShapeChecks(t *testing.T) {
	a := New(3, 4)
	b := New(4, 2)
	bad := New(3, 3)
	for label, f := range map[string]func(){
		"MatMulInto":         func() { MatMulInto(bad, a, b) },
		"MatMulBlockedInto":  func() { MatMulBlockedInto(bad, a, b, 0) },
		"MatMulParallelInto": func() { MatMulParallelInto(bad, a, b) },
		"TransposeInto":      func() { TransposeInto(bad, a) },
		"AddRowVectorInto":   func() { AddRowVectorInto(bad, a, make([]float32, 4)) },
		"MulVecInto":         func() { a.MulVecInto(make([]float32, 2), make([]float32, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on shape mismatch", label)
				}
			}()
			f()
		}()
	}
}

// TestWorkspaceSteadyStateAllocationFree verifies the arena contract: one
// warm-up cycle plus a Reset, and identical subsequent cycles allocate
// nothing.
func TestWorkspaceSteadyStateAllocationFree(t *testing.T) {
	ws := NewWorkspace()
	cycle := func() {
		ws.Reset()
		m := ws.Take(8, 16)
		v := ws.TakeVec(32)
		c := ws.TakeComplex(64)
		m.Data[0] = 1
		v[0] = 1
		c[0] = 1
	}
	cycle() // warm-up: records demand
	cycle() // grows arena at Reset
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Errorf("steady-state workspace cycle allocates %.1f objects, want 0", avg)
	}
}

// TestWorkspaceOverflowStaysCorrect checks that buffers handed out before
// and after an arena overflow never alias each other within a cycle.
func TestWorkspaceOverflowStaysCorrect(t *testing.T) {
	ws := NewWorkspace()
	ws.Reset()
	var ms []*Matrix
	for i := 0; i < 6; i++ {
		m := ws.Take(4, 4+i) // growing shapes force mid-cycle overflows
		for j := range m.Data {
			m.Data[j] = float32(i)
		}
		ms = append(ms, m)
	}
	for i, m := range ms {
		for _, v := range m.Data {
			if v != float32(i) {
				t.Fatalf("buffer %d was clobbered: found %v", i, v)
			}
		}
	}
}
