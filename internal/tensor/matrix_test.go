package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.FillRandom(rng, 1)
	return m
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 {
		t.Fatalf("At(1,2) = %v, want 42", m.At(1, 2))
	}
	if m.Data[5] != 42 {
		t.Fatalf("row-major layout broken: %v", m.Data)
	}
}

func TestIdentityMultiplication(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	got := MatMul(a, Identity(5))
	if !AlmostEqual(a, got, 1e-6) {
		t.Fatalf("A*I != A (maxdiff %v)", MaxAbsDiff(a, got))
	}
	got = MatMul(Identity(5), a)
	if !AlmostEqual(a, got, 1e-6) {
		t.Fatalf("I*A != A (maxdiff %v)", MaxAbsDiff(a, got))
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	got := MatMul(a, b)
	if !AlmostEqual(want, got, 1e-6) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched matmul did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][3]int{{17, 31, 13}, {64, 64, 64}, {1, 5, 9}, {70, 3, 70}} {
		a := randomMatrix(rng, shape[0], shape[1])
		b := randomMatrix(rng, shape[1], shape[2])
		want := MatMul(a, b)
		for _, bs := range []int{0, 8, 16, 100} {
			got := MatMulBlocked(a, b, bs)
			if !AlmostEqual(want, got, 1e-4) {
				t.Fatalf("blocked(bs=%d) mismatch for shape %v: %v", bs, shape, MaxAbsDiff(want, got))
			}
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][3]int{{129, 65, 77}, {4, 4, 4}, {200, 10, 1}} {
		a := randomMatrix(rng, shape[0], shape[1])
		b := randomMatrix(rng, shape[1], shape[2])
		want := MatMul(a, b)
		got := MatMulParallel(a, b)
		if !AlmostEqual(want, got, 1e-4) {
			t.Fatalf("parallel mismatch for shape %v: %v", shape, MaxAbsDiff(want, got))
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 7, 3)
	b := a.Transpose().Transpose()
	if !AlmostEqual(a, b, 0) {
		t.Fatal("transpose twice != original")
	}
}

func TestTransposeShape(t *testing.T) {
	a := New(2, 5)
	at := a.Transpose()
	if at.Rows != 5 || at.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d, want 5x2", at.Rows, at.Cols)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	if got := Add(a, b); got.Data[2] != 33 {
		t.Fatalf("Add wrong: %v", got.Data)
	}
	if got := Sub(b, a); got.Data[0] != 9 {
		t.Fatalf("Sub wrong: %v", got.Data)
	}
	if got := Scale(a, 2); got.Data[1] != 4 {
		t.Fatalf("Scale wrong: %v", got.Data)
	}
	ScaleInPlace(a, -1)
	if a.Data[0] != -1 {
		t.Fatalf("ScaleInPlace wrong: %v", a.Data)
	}
}

func TestAddRowVectorAndColSums(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	AddRowVector(m, []float32{10, 20})
	want := []float32{11, 22, 13, 24}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddRowVector got %v, want %v", m.Data, want)
		}
	}
	sums := ColSums(m)
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColSums = %v, want [24 46]", sums)
	}
}

func TestMulVec(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float32{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
}

func TestMatMulFlops(t *testing.T) {
	if got := MatMulFlops(2, 3, 4); got != 48 {
		t.Fatalf("MatMulFlops = %v, want 48", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ on random small shapes.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(12)
		n := 1 + r.Intn(12)
		k := 1 + r.Intn(12)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, k)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		return AlmostEqual(left, right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) == A·B + A·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(10)
		n := 1 + r.Intn(10)
		k := 1 + r.Intn(10)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, k)
		c := randomMatrix(rng, n, k)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return AlmostEqual(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMulNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBlocked(x, y, 0)
	}
}

func BenchmarkMatMulParallel256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomMatrix(rng, 256, 256)
	y := randomMatrix(rng, 256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulParallel(x, y)
	}
}
