// Package tensor implements dense float32 matrices and the matrix-multiply
// variants the paper benchmarks (naive, blocked, parallel). It is the
// numeric substrate for every layer implementation and for the workloads
// fed to the IPU and GPU machine models.
//
// Matrices are row-major and sized dynamically. float32 is used throughout
// to match the FP32 arithmetic of the paper's experiments.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. The caller must not alias data in conflicting ways.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// NumElements returns rows*cols.
func (m *Matrix) NumElements() int { return m.Rows * m.Cols }

// SizeBytes returns the footprint of the payload in bytes (4 per element).
func (m *Matrix) SizeBytes() int { return 4 * m.NumElements() }

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillRandom fills the matrix with uniform values in [-scale, scale] drawn
// from rng. Deterministic given the rng seed.
func (m *Matrix) FillRandom(rng *rand.Rand, scale float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	TransposeInto(out, m)
	return out
}

// TransposeInto writes mᵀ into dst (shape Cols×Rows, fully overwritten).
// dst must not alias m.
func TransposeInto(dst, m *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto dst %dx%d for src %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*dst.Cols+i] = m.Data[base+j]
		}
	}
}

// Add returns a + b. Panics on shape mismatch.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a. Panics on shape mismatch.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a - b. Panics on shape mismatch.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m as a new matrix.
func Scale(m *Matrix, s float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of m by s.
func ScaleInPlace(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (len == Cols) to every row of m in place.
// This is the bias-add of a linear layer.
func AddRowVector(m *Matrix, v []float32) { AddRowVectorInto(m, m, v) }

// AddRowVectorInto writes m + v (broadcast over rows) into dst. dst may be
// m itself (the in-place bias add) or a distinct same-shape matrix.
func AddRowVectorInto(dst, m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	checkSameShape("AddRowVectorInto", dst, m)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		row := dst.Row(i)
		for j := range row {
			row[j] = src[j] + v[j]
		}
	}
}

// ColSums returns the per-column sums of m (used for bias gradients).
func ColSums(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape("MaxAbsDiff", a, b)
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// AlmostEqual reports whether all elements differ by at most tol.
func AlmostEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkMulShapes(a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMulFlops returns the floating-point operation count of an
// (m×n)·(n×k) multiply under the usual 2·m·n·k convention.
func MatMulFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// MatMul computes a·b with the straightforward triple loop (ikj order for
// cache-friendly row access). This is the reference implementation.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a·b into dst (shape a.Rows×b.Cols), overwriting any
// previous contents. dst must not alias a or b. This is the
// destination-passing form the compiled inference plans execute through.
func MatMulInto(dst, a, b *Matrix) {
	checkMulShapes(a, b)
	checkIntoShape("MatMulInto", dst, a.Rows, b.Cols)
	dst.Zero()
	matMulRows(a, b, dst, 0, a.Rows)
}

func checkIntoShape(op string, dst *Matrix, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("tensor: %s dst %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// DefaultBlock is the cache-blocking tile edge used by MatMulBlocked.
const DefaultBlock = 64

// MatMulBlocked computes a·b with square cache blocking (tile edge bs; pass
// 0 for DefaultBlock). Mirrors the "IPU blocked" / "GPU shmem" kernels.
func MatMulBlocked(a, b *Matrix, bs int) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulBlockedInto(out, a, b, bs)
	return out
}

// MatMulBlockedInto is MatMulBlocked writing into caller-owned dst
// (shape a.Rows×b.Cols, overwritten). dst must not alias a or b.
func MatMulBlockedInto(dst, a, b *Matrix, bs int) {
	checkMulShapes(a, b)
	checkIntoShape("MatMulBlockedInto", dst, a.Rows, b.Cols)
	if bs <= 0 {
		bs = DefaultBlock
	}
	dst.Zero()
	out := dst
	m, n, k := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < m; ii += bs {
		iMax := min(ii+bs, m)
		for pp := 0; pp < n; pp += bs {
			pMax := min(pp+bs, n)
			for jj := 0; jj < k; jj += bs {
				jMax := min(jj+bs, k)
				for i := ii; i < iMax; i++ {
					arow := a.Row(i)
					orow := out.Row(i)
					for p := pp; p < pMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b.Data[p*k : (p+1)*k]
						for j := jj; j < jMax; j++ {
							orow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// MatMulParallel computes a·b splitting rows of a across GOMAXPROCS
// goroutines. Used by the training loop to keep host-side epochs fast.
func MatMulParallel(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulParallelInto(out, a, b)
	return out
}

// MatMulParallelInto is MatMulParallel writing into caller-owned dst
// (shape a.Rows×b.Cols, overwritten). The row partition makes every output
// element the work of exactly one goroutine, so the result is bit-identical
// to the serial kernel. dst must not alias a or b.
func MatMulParallelInto(dst, a, b *Matrix) {
	checkMulShapes(a, b)
	checkIntoShape("MatMulParallelInto", dst, a.Rows, b.Cols)
	dst.Zero()
	out := dst
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*b.Cols < 1<<16 {
		matMulRows(a, b, out, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func matMulRows(a, b, out *Matrix, lo, hi int) {
	n, k := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*k : (p+1)*k]
			for j := 0; j < k; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// checkColWindow validates that columns [lo, lo+w) lie inside dst.
func checkColWindow(op string, dst *Matrix, lo, w int) {
	if lo < 0 || w < 0 || lo+w > dst.Cols {
		panic(fmt.Sprintf("tensor: %s column window [%d,%d) outside %d cols", op, lo, lo+w, dst.Cols))
	}
}

// MatMulColsInto computes a·b into the column window [dstLo, dstLo+b.Cols)
// of dst (dst.Rows == a.Rows, dst may be wider than the product). Every
// element of the window is produced by the same p-ordered accumulation as
// MatMulInto over a full-width b, so writing a column slice of the weight
// through this kernel is bit-for-bit equal to slicing the full product —
// the contract the tensor-parallel sharded plans are built on. Columns
// outside the window are untouched. dst must not alias a or b.
func MatMulColsInto(dst *Matrix, dstLo int, a, b *Matrix) {
	checkMulShapes(a, b)
	if dst.Rows != a.Rows {
		panic(fmt.Sprintf("tensor: MatMulColsInto dst rows %d != %d", dst.Rows, a.Rows))
	}
	checkColWindow("MatMulColsInto", dst, dstLo, b.Cols)
	n, k, w := a.Cols, dst.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Data[i*k+dstLo : i*k+dstLo+w]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*w : (p+1)*w]
			for j := 0; j < w; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// AddRowVectorCols adds v to every row of m at columns [lo, lo+len(v)) in
// place — the bias add of one shard's column slice.
func AddRowVectorCols(m *Matrix, lo int, v []float32) {
	checkColWindow("AddRowVectorCols", m, lo, len(v))
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols+lo : i*m.Cols+lo+len(v)]
		for j := range row {
			row[j] += v[j]
		}
	}
}

// TransposeIntoCols writes mᵀ into the column window [dstLo, dstLo+m.Rows)
// of dst (dst.Rows == m.Cols). The sharded pixelfly step uses it to land
// its slice of a feature-major product back into the batch-major
// activation arena. dst must not alias m.
func TransposeIntoCols(dst *Matrix, dstLo int, m *Matrix) {
	if dst.Rows != m.Cols {
		panic(fmt.Sprintf("tensor: TransposeIntoCols dst rows %d != src cols %d", dst.Rows, m.Cols))
	}
	checkColWindow("TransposeIntoCols", dst, dstLo, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*dst.Cols+dstLo+i] = m.Data[base+j]
		}
	}
}

// AddInPlaceCols accumulates src (a.Rows×src.Cols) into the column window
// [lo, lo+src.Cols) of dst.
func AddInPlaceCols(dst *Matrix, lo int, src *Matrix) {
	if dst.Rows != src.Rows {
		panic(fmt.Sprintf("tensor: AddInPlaceCols rows %d != %d", dst.Rows, src.Rows))
	}
	checkColWindow("AddInPlaceCols", dst, lo, src.Cols)
	for i := 0; i < src.Rows; i++ {
		row := dst.Data[i*dst.Cols+lo : i*dst.Cols+lo+src.Cols]
		s := src.Row(i)
		for j := range row {
			row[j] += s[j]
		}
	}
}

// CopyCols copies columns [srcLo, srcLo+w) of src into columns
// [dstLo, dstLo+w) of dst (same row count).
func CopyCols(dst *Matrix, dstLo int, src *Matrix, srcLo, w int) {
	if dst.Rows != src.Rows {
		panic(fmt.Sprintf("tensor: CopyCols rows %d != %d", dst.Rows, src.Rows))
	}
	checkColWindow("CopyCols dst", dst, dstLo, w)
	checkColWindow("CopyCols src", src, srcLo, w)
	for i := 0; i < src.Rows; i++ {
		copy(dst.Data[i*dst.Cols+dstLo:i*dst.Cols+dstLo+w],
			src.Data[i*src.Cols+srcLo:i*src.Cols+srcLo+w])
	}
}

// MulVec computes m·x for a column vector x (len == Cols).
func (m *Matrix) MulVec(x []float32) []float32 {
	out := make([]float32, m.Rows)
	m.MulVecInto(out, x)
	return out
}

// MulVecInto computes m·x into dst (len == Rows, fully overwritten).
func (m *Matrix) MulVecInto(dst, x []float32) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec length %d != cols %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecInto dst length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}
