// Package tensor implements dense float32 matrices and the matrix-multiply
// variants the paper benchmarks (naive, blocked, parallel). It is the
// numeric substrate for every layer implementation and for the workloads
// fed to the IPU and GPU machine models.
//
// Matrices are row-major and sized dynamically. float32 is used throughout
// to match the FP32 arithmetic of the paper's experiments.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. The caller must not alias data in conflicting ways.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

// NumElements returns rows*cols.
func (m *Matrix) NumElements() int { return m.Rows * m.Cols }

// SizeBytes returns the footprint of the payload in bytes (4 per element).
func (m *Matrix) SizeBytes() int { return 4 * m.NumElements() }

// Zero resets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// FillRandom fills the matrix with uniform values in [-scale, scale] drawn
// from rng. Deterministic given the rng seed.
func (m *Matrix) FillRandom(rng *rand.Rand, scale float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		base := i * m.Cols
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[base+j]
		}
	}
	return out
}

// Add returns a + b. Panics on shape mismatch.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a. Panics on shape mismatch.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a - b. Panics on shape mismatch.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m as a new matrix.
func Scale(m *Matrix, s float32) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of m by s.
func ScaleInPlace(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds vector v (len == Cols) to every row of m in place.
// This is the bias-add of a linear layer.
func AddRowVector(m *Matrix, v []float32) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m (used for bias gradients).
func ColSums(m *Matrix) []float32 {
	out := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape("MaxAbsDiff", a, b)
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// AlmostEqual reports whether all elements differ by at most tol.
func AlmostEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkMulShapes(a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMulFlops returns the floating-point operation count of an
// (m×n)·(n×k) multiply under the usual 2·m·n·k convention.
func MatMulFlops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }

// MatMul computes a·b with the straightforward triple loop (ikj order for
// cache-friendly row access). This is the reference implementation.
func MatMul(a, b *Matrix) *Matrix {
	checkMulShapes(a, b)
	out := New(a.Rows, b.Cols)
	n, k := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*k : (p+1)*k]
			for j := 0; j < k; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// DefaultBlock is the cache-blocking tile edge used by MatMulBlocked.
const DefaultBlock = 64

// MatMulBlocked computes a·b with square cache blocking (tile edge bs; pass
// 0 for DefaultBlock). Mirrors the "IPU blocked" / "GPU shmem" kernels.
func MatMulBlocked(a, b *Matrix, bs int) *Matrix {
	checkMulShapes(a, b)
	if bs <= 0 {
		bs = DefaultBlock
	}
	out := New(a.Rows, b.Cols)
	m, n, k := a.Rows, a.Cols, b.Cols
	for ii := 0; ii < m; ii += bs {
		iMax := min(ii+bs, m)
		for pp := 0; pp < n; pp += bs {
			pMax := min(pp+bs, n)
			for jj := 0; jj < k; jj += bs {
				jMax := min(jj+bs, k)
				for i := ii; i < iMax; i++ {
					arow := a.Row(i)
					orow := out.Row(i)
					for p := pp; p < pMax; p++ {
						av := arow[p]
						if av == 0 {
							continue
						}
						brow := b.Data[p*k : (p+1)*k]
						for j := jj; j < jMax; j++ {
							orow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return out
}

// MatMulParallel computes a·b splitting rows of a across GOMAXPROCS
// goroutines. Used by the training loop to keep host-side epochs fast.
func MatMulParallel(a, b *Matrix) *Matrix {
	checkMulShapes(a, b)
	out := New(a.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 || a.Rows*a.Cols*b.Cols < 1<<16 {
		matMulRows(a, b, out, 0, a.Rows)
		return out
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulRows(a, b, out *Matrix, lo, hi int) {
	n, k := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for p := 0; p < n; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*k : (p+1)*k]
			for j := 0; j < k; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MulVec computes m·x for a column vector x (len == Cols).
func (m *Matrix) MulVec(x []float32) []float32 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec length %d != cols %d", len(x), m.Cols))
	}
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}
