package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// This file is the small in-repo linear-algebra layer the post-hoc
// factorization subsystem (internal/factorize) builds on: Householder QR,
// a randomized range finder (Halko, Martinsson & Tropp, SIAM Rev. 2011),
// and a one-sided Jacobi SVD. Everything accumulates in float64 and stores
// in float32, matching the rest of the tensor package.

// GaussianMatrix returns a rows×cols matrix with i.i.d. N(0,1) entries —
// the sketching matrix of the randomized range finder.
func GaussianMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// HouseholderQR computes the thin QR factorization a = Q·R for an m×n
// matrix with m ≥ n: Q is m×n with orthonormal columns and R is n×n upper
// triangular.
func HouseholderQR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("tensor: HouseholderQR needs rows >= cols, got %dx%d", m, n))
	}
	// Work in float64 column-major for the reflector sweeps.
	work := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			work[j*m+i] = float64(a.Data[i*n+j])
		}
	}
	// vs[k] is the k-th Householder vector (length m, zero above k).
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		col := work[k*m : (k+1)*m]
		var norm float64
		for i := k; i < m; i++ {
			norm += col[i] * col[i]
		}
		norm = math.Sqrt(norm)
		v := make([]float64, m)
		copy(v[k:], col[k:])
		if norm > 0 {
			if v[k] >= 0 {
				v[k] += norm
			} else {
				v[k] -= norm
			}
		}
		var vv float64
		for i := k; i < m; i++ {
			vv += v[i] * v[i]
		}
		vs[k] = v
		if vv == 0 {
			continue // column already zero below the diagonal
		}
		// Apply I - 2vvᵀ/vᵀv to the remaining columns.
		for j := k; j < n; j++ {
			cj := work[j*m : (j+1)*m]
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * cj[i]
			}
			f := 2 * dot / vv
			for i := k; i < m; i++ {
				cj[i] -= f * v[i]
			}
		}
	}
	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*n+j] = float32(work[j*m+i])
		}
	}
	// Form Q by applying the reflectors in reverse to the first n identity
	// columns.
	qcols := make([]float64, m*n)
	for j := 0; j < n; j++ {
		qcols[j*m+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		var vv float64
		for i := k; i < m; i++ {
			vv += v[i] * v[i]
		}
		if vv == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			cj := qcols[j*m : (j+1)*m]
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i] * cj[i]
			}
			f := 2 * dot / vv
			for i := k; i < m; i++ {
				cj[i] -= f * v[i]
			}
		}
	}
	q = New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			q.Data[i*n+j] = float32(qcols[j*m+i])
		}
	}
	return q, r
}

// RandomizedRangeFinder returns an m×k matrix Q with orthonormal columns
// approximately spanning the range of a (m×n), computed as the QR of
// a·Ω with one power iteration (a·aᵀ)·a·Ω for spectra that decay slowly.
// k must satisfy 1 ≤ k ≤ m.
func RandomizedRangeFinder(a *Matrix, k int, rng *rand.Rand) *Matrix {
	if k <= 0 || k > a.Rows {
		panic(fmt.Sprintf("tensor: RandomizedRangeFinder k=%d out of range (0,%d]", k, a.Rows))
	}
	omega := GaussianMatrix(a.Cols, k, rng)
	y := MatMulParallel(a, omega) // m×k
	q, _ := HouseholderQR(y)
	// One power iteration with re-orthonormalization: Q ← orth(A·(Aᵀ·Q)).
	z := MatMulParallel(a.Transpose(), q) // n×k
	y = MatMulParallel(a, z)              // m×k
	q, _ = HouseholderQR(y)
	return q
}

// JacobiSVD computes the thin singular value decomposition a = U·diag(S)·Vᵀ
// with a one-sided Jacobi iteration on columns. For an m×n input with
// m ≥ n it returns U (m×n, orthonormal columns), S (n, descending, ≥ 0)
// and V (n×n, orthogonal); inputs with m < n are handled by factorizing
// the transpose. Cost is O(m·n²) per sweep — intended for the small
// sketched matrices of the randomized path, not for huge dense inputs.
func JacobiSVD(a *Matrix) (u *Matrix, s []float32, v *Matrix) {
	if a.Rows < a.Cols {
		// Aᵀ = U'·S·V'ᵀ  ⇒  A = V'·S·U'ᵀ.
		ut, st, vt := JacobiSVD(a.Transpose())
		return vt, st, ut
	}
	m, n := a.Rows, a.Cols
	// Column-major float64 working copy of A and accumulated V.
	b := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			b[j*m+i] = float64(a.Data[i*n+j])
		}
	}
	vwork := make([]float64, n*n)
	for j := 0; j < n; j++ {
		vwork[j*n+j] = 1
	}
	const (
		maxSweeps = 30
		tol       = 1e-10
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		offDiag := false
		for p := 0; p < n-1; p++ {
			for q2 := p + 1; q2 < n; q2++ {
				cp := b[p*m : (p+1)*m]
				cq := b[q2*m : (q2+1)*m]
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					alpha += cp[i] * cp[i]
					beta += cq[i] * cq[i]
					gamma += cp[i] * cq[i]
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				offDiag = true
				// Jacobi rotation that orthogonalizes columns p and q.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					bp, bq := cp[i], cq[i]
					cp[i] = c*bp - sn*bq
					cq[i] = sn*bp + c*bq
				}
				vp := vwork[p*n : (p+1)*n]
				vq := vwork[q2*n : (q2+1)*n]
				for i := 0; i < n; i++ {
					wp, wq := vp[i], vq[i]
					vp[i] = c*wp - sn*wq
					vq[i] = sn*wp + c*wq
				}
			}
		}
		if !offDiag {
			break
		}
	}
	// Singular values are the column norms; normalize to get U.
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		col := b[j*m : (j+1)*m]
		for i := 0; i < m; i++ {
			norm += col[i] * col[i]
		}
		sigma[j] = math.Sqrt(norm)
	}
	// Order columns by descending singular value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // selection sort keeps this allocation-free
		best := i
		for j := i + 1; j < n; j++ {
			if sigma[order[j]] > sigma[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	u = New(m, n)
	v = New(n, n)
	s = make([]float32, n)
	for jj, j := range order {
		s[jj] = float32(sigma[j])
		col := b[j*m : (j+1)*m]
		inv := 0.0
		if sigma[j] > 0 {
			inv = 1 / sigma[j]
		}
		for i := 0; i < m; i++ {
			u.Data[i*n+jj] = float32(col[i] * inv)
		}
		vcol := vwork[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			v.Data[i*n+jj] = float32(vcol[i])
		}
	}
	return u, s, v
}
