package pixelfly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func mustNew(t *testing.T, cfg Config, seed int64) *Pixelfly {
	t.Helper()
	p, err := New(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 12, BlockSize: 4, ButterflySize: 4},
		{N: 16, BlockSize: 3, ButterflySize: 4},
		{N: 16, BlockSize: 4, ButterflySize: 5},
		{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: -1},
		{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 17},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := Config{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v should be valid: %v", good, err)
	}
}

func TestSupportIncludesDiagonal(t *testing.T) {
	cfg := Config{N: 64, BlockSize: 8, ButterflySize: 8}
	support := cfg.SupportBlocks()
	onDiag := map[int]bool{}
	for _, b := range support {
		if b[0] == b[1] {
			onDiag[b[0]] = true
		}
	}
	for i := 0; i < 8; i++ {
		if !onDiag[i] {
			t.Fatalf("diagonal block %d missing from support", i)
		}
	}
}

func TestSupportMatchesButterflyGraphExactGrid(t *testing.T) {
	// When butterfly size == block grid size, support must be exactly
	// nb·(1 + log2 nb) blocks: diagonal + one off-diagonal per stage.
	cfg := Config{N: 64, BlockSize: 8, ButterflySize: 8}
	support := cfg.SupportBlocks()
	want := 8 * (1 + 3)
	if len(support) != want {
		t.Fatalf("support size = %d, want %d", len(support), want)
	}
	// Every off-diagonal block must be at XOR-power-of-two distance.
	for _, b := range support {
		if b[0] == b[1] {
			continue
		}
		d := b[0] ^ b[1]
		if d&(d-1) != 0 {
			t.Fatalf("block %v not a butterfly connection", b)
		}
	}
}

func TestSupportStretch(t *testing.T) {
	// Block grid 16 wide, butterfly over 4 nodes -> each node covers 4
	// block rows; support = 4·(1+2) node edges × 16 blocks each.
	cfg := Config{N: 64, BlockSize: 4, ButterflySize: 4}
	support := cfg.SupportBlocks()
	want := 4 * (1 + 2) * 16
	if len(support) != want {
		t.Fatalf("stretched support = %d, want %d", len(support), want)
	}
}

func TestSupportSqueeze(t *testing.T) {
	// Butterfly over 16 nodes squeezed onto a 4-wide block grid: support
	// collapses; must stay within grid bounds and remain deduplicated.
	cfg := Config{N: 16, BlockSize: 4, ButterflySize: 16}
	support := cfg.SupportBlocks()
	seen := map[[2]int]bool{}
	for _, b := range support {
		if b[0] < 0 || b[0] >= 4 || b[1] < 0 || b[1] >= 4 {
			t.Fatalf("block %v out of 4x4 grid", b)
		}
		if seen[b] {
			t.Fatalf("duplicate block %v", b)
		}
		seen[b] = true
	}
}

func TestParamCount(t *testing.T) {
	cfg := Config{N: 64, BlockSize: 8, ButterflySize: 8, LowRank: 4}
	p := mustNew(t, cfg, 1)
	wantBlocks := 8 * (1 + 3) * 64 // 32 blocks × 8² values
	want := wantBlocks + 2*64*4
	if got := p.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestForwardMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Config{N: 32, BlockSize: 4, ButterflySize: 8, LowRank: 3}
	p := mustNew(t, cfg, 3)
	x := tensor.New(5, 32)
	x.FillRandom(rng, 1)
	// y_row = (W + U·Vᵀ)·x_row  =>  Y = X·(W+UVᵀ)ᵀ
	D := p.Dense()
	want := tensor.MatMul(x, D.Transpose())
	got := p.Apply(x)
	if !tensor.AlmostEqual(want, got, 1e-3) {
		t.Fatalf("pixelfly forward != dense: %v", tensor.MaxAbsDiff(want, got))
	}
}

func TestForwardNoLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 0}
	p := mustNew(t, cfg, 5)
	x := tensor.New(2, 16)
	x.FillRandom(rng, 1)
	want := tensor.MatMul(x, p.Dense().Transpose())
	got := p.Apply(x)
	if !tensor.AlmostEqual(want, got, 1e-4) {
		t.Fatalf("no-lowrank forward mismatch: %v", tensor.MaxAbsDiff(want, got))
	}
}

func TestInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Config{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 2}
	p := mustNew(t, cfg, 7)
	x := tensor.New(2, 16)
	x.FillRandom(rng, 1)
	r := tensor.New(2, 16)
	r.FillRandom(rng, 1)
	loss := func() float64 {
		y := p.Apply(x)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	p.ZeroGrad()
	p.Forward(x)
	dx := p.Backward(r)
	const h = 1e-3
	for i := 0; i < len(x.Data); i += 3 {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := loss()
		x.Data[i] = orig - h
		dn := loss()
		x.Data[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(dx.Data[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v numeric %v", i, dx.Data[i], num)
		}
	}
}

func TestWeightGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Config{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 2}
	p := mustNew(t, cfg, 9)
	x := tensor.New(3, 16)
	x.FillRandom(rng, 1)
	r := tensor.New(3, 16)
	r.FillRandom(rng, 1)
	loss := func() float64 {
		y := p.Apply(x)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	p.ZeroGrad()
	p.Forward(x)
	p.Backward(r)
	params, grads := p.Params()
	const h = 1e-3
	for pi, pslice := range params {
		step := len(pslice)/7 + 1
		for j := 0; j < len(pslice); j += step {
			orig := pslice[j]
			pslice[j] = orig + h
			up := loss()
			pslice[j] = orig - h
			dn := loss()
			pslice[j] = orig
			num := (up - dn) / (2 * h)
			got := float64(grads[pi][j])
			if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
				t.Fatalf("param group %d grad[%d]: analytic %v numeric %v", pi, j, got, num)
			}
		}
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := Config{N: 16, BlockSize: 4, ButterflySize: 4, LowRank: 1}
	p := mustNew(t, cfg, 11)
	x := tensor.New(2, 16)
	x.FillRandom(rng, 1)
	p.Forward(x)
	p.Backward(x)
	p.ZeroGrad()
	_, grads := p.Params()
	for _, g := range grads {
		for _, v := range g {
			if v != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}

func TestParamCountGrowsWithKnobs(t *testing.T) {
	// Section 5's qualitative claim: butterfly size and block size move the
	// parameter count; low-rank adds 2·N·r.
	base := Config{N: 256, BlockSize: 8, ButterflySize: 16, LowRank: 4}
	pBase := mustNew(t, base, 12)
	bigBf := base
	bigBf.ButterflySize = 32
	pBf := mustNew(t, bigBf, 12)
	// A larger butterfly network is *sparser*: the support fraction is
	// (1+log2 bfs)/bfs of the grid, so parameters drop as bfs grows. This
	// strong dependence is what drives Table 5's NParams std.
	if pBf.ParamCount() >= pBase.ParamCount() {
		t.Fatalf("larger butterfly size should reduce parameters: %d vs %d",
			pBf.ParamCount(), pBase.ParamCount())
	}
	bigLr := base
	bigLr.LowRank = 8
	pLr := mustNew(t, bigLr, 12)
	if pLr.ParamCount()-pBase.ParamCount() != 2*256*4 {
		t.Fatalf("low-rank delta = %d, want %d", pLr.ParamCount()-pBase.ParamCount(), 2*256*4)
	}
}

// Property: forward is linear in the input.
func TestForwardLinearityProperty(t *testing.T) {
	cfg := Config{N: 32, BlockSize: 8, ButterflySize: 4, LowRank: 2}
	p, err := New(cfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(2, 32)
		y := tensor.New(2, 32)
		x.FillRandom(r, 1)
		y.FillRandom(r, 1)
		left := p.Apply(tensor.Add(x, y))
		right := tensor.Add(p.Apply(x), p.Apply(y))
		return tensor.AlmostEqual(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPixelflyForward1024(b *testing.B) {
	cfg := Config{N: 1024, BlockSize: 32, ButterflySize: 32, LowRank: 8}
	p, err := New(cfg, rand.New(rand.NewSource(14)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	x := tensor.New(50, 1024)
	x.FillRandom(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(x)
	}
}
