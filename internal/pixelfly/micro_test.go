package pixelfly

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestApplyIntoMicroMatchesReference checks the micro apply path —
// block-specialized BSR kernels plus unchanged staging — against the
// reference path, bit-for-bit, across block sizes hitting the bs=4/8
// unrolls and the tiled fallback, with and without the low-rank term.
func TestApplyIntoMicroMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, cfg := range []Config{
		{N: 64, BlockSize: 4, ButterflySize: 8, LowRank: 0},
		{N: 64, BlockSize: 8, ButterflySize: 8, LowRank: 4},
		{N: 64, BlockSize: 16, ButterflySize: 4, LowRank: 0},
		{N: 128, BlockSize: 4, ButterflySize: 16, LowRank: 8},
	} {
		p, err := New(cfg, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		ws := tensor.NewWorkspace()
		for _, rows := range []int{1, 5} {
			x := tensor.New(rows, cfg.N)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			bias := make([]float32, cfg.N)
			for i := range bias {
				bias[i] = rng.Float32()*2 - 1
			}
			want := tensor.New(rows, cfg.N)
			got := tensor.New(rows, cfg.N)

			ws.Reset()
			p.ApplyInto(want, x, ws)
			ws.Reset()
			p.ApplyIntoMicro(got, x, ws)
			assertSameMat(t, fmt.Sprintf("%+v rows=%d ApplyIntoMicro", cfg, rows), want, got)

			for _, act := range []tensor.Activation{tensor.ActNone, tensor.ActReLU} {
				ws.Reset()
				p.ApplyIntoEpilogue(want, x, ws, bias, act)
				ws.Reset()
				p.ApplyIntoEpilogueMicro(got, x, ws, bias, act)
				assertSameMat(t, fmt.Sprintf("%+v rows=%d epilogue/%v", cfg, rows, act), want, got)
			}
		}
	}
}

func TestMicroVariantByBlockSize(t *testing.T) {
	for _, tc := range []struct {
		bs   int
		want string
	}{{4, "blockunroll"}, {8, "blockunroll"}, {16, "blocktiled"}} {
		p, err := New(Config{N: 64, BlockSize: tc.bs, ButterflySize: 4}, rand.New(rand.NewSource(43)))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MicroVariant(); got != tc.want {
			t.Errorf("bs=%d: MicroVariant() = %q, want %q", tc.bs, got, tc.want)
		}
	}
}

func assertSameMat(t *testing.T, op string, want, got *tensor.Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: data[%d] = %v, want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}
