package pixelfly

import (
	"fmt"

	"repro/internal/tensor"
)

// Micro-kernel apply path: the block-sparse product runs through the
// BSR block-specialized kernels (full unroll at block size 4/8, column
// tiling otherwise); the staging transposes and the low-rank dense
// term keep their reference kernels, which are already
// transpose-bound rather than flop-bound at serving shapes. Every
// float32 operation matches the reference chain, so the result is
// bit-for-bit equal to ApplyIntoEpilogue.

// ApplyIntoMicro is ApplyInto through the block-specialized BSR
// kernels.
func (p *Pixelfly) ApplyIntoMicro(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	p.ApplyIntoEpilogueMicro(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogueMicro is ApplyIntoEpilogue through the
// block-specialized BSR kernels.
func (p *Pixelfly) ApplyIntoEpilogueMicro(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	n := p.Cfg.N
	if x.Cols != n {
		panic(fmt.Sprintf("pixelfly: input width %d != N %d", x.Cols, n))
	}
	if dst.Rows != x.Rows || dst.Cols != n {
		panic(fmt.Sprintf("pixelfly: ApplyIntoEpilogueMicro dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, n))
	}
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("pixelfly: ApplyIntoEpilogueMicro bias length %d != N %d", len(bias), n))
	}
	xt := ws.Take(n, x.Rows)
	tensor.TransposeInto(xt, x)
	yt := ws.Take(n, x.Rows)
	r := p.Cfg.LowRank
	if r == 0 {
		p.W.MulDenseBiasActIntoMicro(yt, xt, bias, act)
		tensor.TransposeInto(dst, yt)
		return
	}
	p.W.MulDenseIntoMicro(yt, xt)
	tensor.TransposeInto(dst, yt)
	xv := ws.Take(x.Rows, r)
	tensor.MatMulInto(xv, x, p.V)
	lr := ws.Take(x.Rows, n)
	tensor.MatMulInto(lr, xv, p.ut)
	tensor.AddInPlaceBiasAct(dst, lr, bias, act)
}

// MicroVariant names the kernel variant the plan dispatcher stamps into
// step metadata when this transform compiles through the micro path.
func (p *Pixelfly) MicroVariant() string {
	switch p.Cfg.BlockSize {
	case 4, 8:
		return "blockunroll"
	default:
		return "blocktiled"
	}
}
