// Package pixelfly implements the Pixelated Butterfly layer (Chen et al.,
// 2021) as the paper uses it: a *flat block butterfly* — the butterfly
// product approximated by a sum with a residual connection, block-aligned
// to a b×b block grid — plus an additive low-rank term U·Vᵀ.
//
// The layer has the paper's three tunable knobs (Section 5's sweep):
//
//   - ButterflySize: size of the virtual butterfly network whose
//     connectivity decides which blocks exist,
//   - BlockSize: edge length of the dense blocks (GPU-alignment knob),
//   - LowRank: width of the additive low-rank term.
//
// The block support is the union of the butterfly graph's stage
// connections (i ↔ i XOR 2^(s-1)) plus the diagonal, stretched or squeezed
// onto the (N/BlockSize)² block grid.
package pixelfly

import (
	"fmt"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Config selects the pixelfly hyperparameters for an N×N layer.
type Config struct {
	N             int // layer dimension (power of two)
	BlockSize     int // dense block edge (power of two dividing N)
	ButterflySize int // virtual butterfly network size (power of two)
	LowRank       int // width of the low-rank term (0 disables it)
}

// Validate returns an error when the configuration is inconsistent.
func (c Config) Validate() error {
	if !fft.IsPowerOfTwo(c.N) {
		return fmt.Errorf("pixelfly: N=%d not a power of two", c.N)
	}
	if !fft.IsPowerOfTwo(c.BlockSize) || c.N%c.BlockSize != 0 {
		return fmt.Errorf("pixelfly: block size %d must be a power of two dividing N=%d", c.BlockSize, c.N)
	}
	if !fft.IsPowerOfTwo(c.ButterflySize) {
		return fmt.Errorf("pixelfly: butterfly size %d not a power of two", c.ButterflySize)
	}
	if c.LowRank < 0 || c.LowRank > c.N {
		return fmt.Errorf("pixelfly: low rank %d out of range [0,%d]", c.LowRank, c.N)
	}
	return nil
}

// SupportBlocks returns the block-grid support of the flat block
// butterfly: diagonal blocks plus, for every butterfly stage s, the blocks
// covering the (i, i XOR 2^(s-1)) connections, mapped from the
// ButterflySize-node graph onto the (N/BlockSize)-wide block grid.
func (c Config) SupportBlocks() [][2]int {
	nb := c.N / c.BlockSize
	bfs := c.ButterflySize
	type edge struct{ i, j int }
	var edges []edge
	for i := 0; i < bfs; i++ {
		edges = append(edges, edge{i, i})
	}
	for h := 1; h < bfs; h <<= 1 {
		for i := 0; i < bfs; i++ {
			edges = append(edges, edge{i, i ^ h})
		}
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, e := range edges {
		// node i covers block rows [i·nb/bfs, (i+1)·nb/bfs)
		r0, r1 := e.i*nb/bfs, (e.i+1)*nb/bfs
		c0, c1 := e.j*nb/bfs, (e.j+1)*nb/bfs
		if r1 == r0 { // squeeze: several nodes share one block
			r1 = r0 + 1
		}
		if c1 == c0 {
			c1 = c0 + 1
		}
		for r := r0; r < r1 && r < nb; r++ {
			for cc := c0; cc < c1 && cc < nb; cc++ {
				key := [2]int{r, cc}
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
	}
	return out
}

// Pixelfly is a learnable N×N pixelated-butterfly weight: a block-sparse
// matrix W on the flat-block-butterfly support plus a low-rank term U·Vᵀ.
// Effective transform of a row vector x: y = W·x + U·(Vᵀ·x).
type Pixelfly struct {
	Cfg   Config
	W     *sparse.BSR
	GradW *sparse.BSR // same pattern, holds dL/dW
	U, V  *tensor.Matrix
	GradU *tensor.Matrix
	GradV *tensor.Matrix

	// ut caches Uᵀ (r×N) for the allocation-free inference path;
	// re-derived by Refresh after every optimizer step.
	ut *tensor.Matrix

	// saved forward state
	xSaved  *tensor.Matrix
	xvSaved *tensor.Matrix
}

// New constructs a pixelfly layer with random initialization (blocks and
// low-rank factors scaled like 1/sqrt(fan-in)).
func New(cfg Config, rng *rand.Rand) (*Pixelfly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pattern := cfg.SupportBlocks()
	w, err := sparse.NewBSR(cfg.N, cfg.N, cfg.BlockSize, pattern)
	if err != nil {
		return nil, err
	}
	gw, err := sparse.NewBSR(cfg.N, cfg.N, cfg.BlockSize, pattern)
	if err != nil {
		return nil, err
	}
	p := &Pixelfly{Cfg: cfg, W: w, GradW: gw}
	// Fan-in-aware init: each output row sees ~numBlocks·bs²/N nonzero
	// inputs (not N), so scale by the effective fan-in to keep activation
	// variance at the dense layer's level.
	fanIn := float64(len(pattern)*cfg.BlockSize*cfg.BlockSize) / float64(cfg.N)
	if fanIn < 1 {
		fanIn = 1
	}
	scale := float32(1.0 / sqrtf(fanIn))
	for i := range w.Blocks {
		w.Blocks[i] = (rng.Float32()*2 - 1) * scale
	}
	r := cfg.LowRank
	p.U = tensor.New(cfg.N, r)
	p.V = tensor.New(cfg.N, r)
	p.GradU = tensor.New(cfg.N, r)
	p.GradV = tensor.New(cfg.N, r)
	if r > 0 {
		p.U.FillRandom(rng, scale)
		p.V.FillRandom(rng, scale)
	}
	p.Refresh()
	return p, nil
}

// Refresh re-derives the cached Uᵀ after an optimizer step mutates U.
func (p *Pixelfly) Refresh() {
	if p.Cfg.LowRank == 0 {
		return
	}
	if p.ut == nil {
		p.ut = tensor.New(p.Cfg.LowRank, p.Cfg.N)
	}
	tensor.TransposeInto(p.ut, p.U)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// ParamCount returns the learnable parameter count:
// storedBlocks·BlockSize² + 2·N·LowRank.
func (p *Pixelfly) ParamCount() int {
	return len(p.W.Blocks) + 2*p.Cfg.N*p.Cfg.LowRank
}

// NumBlocks returns the number of stored blocks in the support.
func (p *Pixelfly) NumBlocks() int { return p.W.NumBlocks() }

// Flops returns the forward flop count for a batch: block-sparse matmul
// plus two low-rank matmuls.
func (p *Pixelfly) Flops(batch int) float64 {
	lr := 4 * float64(p.Cfg.N) * float64(p.Cfg.LowRank) * float64(batch)
	return p.W.Flops(batch) + lr
}

// Forward computes Y (batch×N) from X (batch×N): y_row = W·x_row + U·Vᵀ·x_row.
// State is retained for Backward.
func (p *Pixelfly) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != p.Cfg.N {
		panic(fmt.Sprintf("pixelfly: input width %d != N %d", x.Cols, p.Cfg.N))
	}
	p.xSaved = x
	xt := x.Transpose()   // N×batch
	y := p.W.MulDense(xt) // N×batch
	out := y.Transpose()  // batch×N
	if p.Cfg.LowRank > 0 {
		xv := tensor.MatMul(x, p.V) // batch×r
		p.xvSaved = xv
		lr := tensor.MatMul(xv, p.U.Transpose()) // batch×N
		tensor.AddInPlace(out, lr)
	}
	return out
}

// Apply is Forward without retaining state. It writes no receiver fields,
// so any number of goroutines may share one Pixelfly for inference.
func (p *Pixelfly) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != p.Cfg.N {
		panic(fmt.Sprintf("pixelfly: input width %d != N %d", x.Cols, p.Cfg.N))
	}
	out := p.W.MulDense(x.Transpose()).Transpose()
	if p.Cfg.LowRank > 0 {
		xv := tensor.MatMul(x, p.V)
		tensor.AddInPlace(out, tensor.MatMul(xv, p.U.Transpose()))
	}
	return out
}

// ApplyInto is Apply writing into caller-owned dst (shape x.Rows×N, fully
// overwritten), staging the transposes, the block-sparse product and the
// low-rank term through the workspace instead of allocating. The kernels
// run in the same order with the same loop structure as Apply, so the
// result is bit-for-bit equal. dst must not alias x. It is the
// nil-epilogue form of ApplyIntoEpilogue — one implementation, one
// contract.
func (p *Pixelfly) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	p.ApplyIntoEpilogue(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogue is ApplyInto with the bias add and activation fused
// into the layer's last output-writing stage. With a low-rank term the
// residual accumulation already resweeps dst, so the epilogue rides that
// pass (dst = act((W·x + U·Vᵀ·x) + bias), one sweep instead of three);
// without one, the bias and activation fold into the block-sparse product
// itself via BSR.MulDenseBiasActInto, feature-major, and the transpose
// back to batch-major moves finished values. Either way every float32
// operation matches the unfused chain, so the result is bit-for-bit
// act(ApplyInto(x) + bias). bias may be nil.
func (p *Pixelfly) ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	n := p.Cfg.N
	if x.Cols != n {
		panic(fmt.Sprintf("pixelfly: input width %d != N %d", x.Cols, n))
	}
	if dst.Rows != x.Rows || dst.Cols != n {
		panic(fmt.Sprintf("pixelfly: ApplyIntoEpilogue dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, n))
	}
	if bias != nil && len(bias) != n {
		panic(fmt.Sprintf("pixelfly: ApplyIntoEpilogue bias length %d != N %d", len(bias), n))
	}
	xt := ws.Take(n, x.Rows)
	tensor.TransposeInto(xt, x)
	yt := ws.Take(n, x.Rows)
	r := p.Cfg.LowRank
	if r == 0 {
		p.W.MulDenseBiasActInto(yt, xt, bias, act)
		tensor.TransposeInto(dst, yt)
		return
	}
	p.W.MulDenseInto(yt, xt)
	tensor.TransposeInto(dst, yt)
	xv := ws.Take(x.Rows, r)
	tensor.MatMulInto(xv, x, p.V)
	lr := ws.Take(x.Rows, n)
	tensor.MatMulInto(lr, xv, p.ut)
	tensor.AddInPlaceBiasAct(dst, lr, bias, act)
}

// Backward propagates dY (batch×N), accumulating gradients, and returns dX.
func (p *Pixelfly) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if p.xSaved == nil {
		panic("pixelfly: Backward called before Forward")
	}
	x := p.xSaved
	// dX from the block-sparse term: dX_row = Wᵀ·dY_row.
	dyt := dY.Transpose()            // N×batch
	dx := p.W.TransposeMulDense(dyt) // N×batch
	dX := dx.Transpose()             // batch×N
	// dW = dYᵀ·X masked to the support.
	p.GradW.AccumulateOuter(dyt, x.Transpose(), 1)
	if p.Cfg.LowRank > 0 {
		// y += (X·V)·Uᵀ, so:
		// dU = dYᵀ·(X·V); dV = Xᵀ·(dY·U); dX += (dY·U)·Vᵀ
		dyU := tensor.MatMul(dY, p.U) // batch×r
		tensor.AddInPlace(p.GradU, tensor.MatMul(dY.Transpose(), p.xvSaved))
		tensor.AddInPlace(p.GradV, tensor.MatMul(x.Transpose(), dyU))
		tensor.AddInPlace(dX, tensor.MatMul(dyU, p.V.Transpose()))
	}
	return dX
}

// ZeroGrad clears accumulated gradients.
func (p *Pixelfly) ZeroGrad() {
	for i := range p.GradW.Blocks {
		p.GradW.Blocks[i] = 0
	}
	p.GradU.Zero()
	p.GradV.Zero()
}

// Params returns flat (parameter, gradient) slice pairs for the optimizer.
func (p *Pixelfly) Params() (params, grads [][]float32) {
	params = append(params, p.W.Blocks)
	grads = append(grads, p.GradW.Blocks)
	if p.Cfg.LowRank > 0 {
		params = append(params, p.U.Data, p.V.Data)
		grads = append(grads, p.GradU.Data, p.GradV.Data)
	}
	return params, grads
}

// Dense materializes the effective N×N matrix W + U·Vᵀ for verification.
func (p *Pixelfly) Dense() *tensor.Matrix {
	out := p.W.ToDense()
	if p.Cfg.LowRank > 0 {
		tensor.AddInPlace(out, tensor.MatMul(p.U, p.V.Transpose()))
	}
	return out
}
