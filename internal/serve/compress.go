package serve

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/factorize"
	"repro/internal/ipu"
	"repro/internal/nn"
)

// RegisterCompressed compresses the model currently registered under
// srcName with nn.Compress and installs the result under newName — the
// compress-then-serve flow: register a trained dense model, then serve a
// butterfly/low-rank variant of it at a chosen error tolerance (e.g.
// "shl-dense" → "shl-bf-eps0.05"). The compressed model shares its
// uncompressed layers with the source, which is safe because serving only
// uses the read-only inference path. The program cache prices the
// compressed model by its actual post-compression layout, so responses
// report the (lower) modelled IPU memory of the structured operator.
// The per-layer compression decisions are returned alongside the model.
func (r *Registry) RegisterCompressed(newName, srcName string, opts nn.CompressOptions) (*Model, []nn.LayerReport, error) {
	if newName == "" {
		return nil, nil, fmt.Errorf("serve: compressed model name must be non-empty")
	}
	src, ok := r.Get(srcName)
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown source model %q", srcName)
	}
	net, reports, err := src.net.Compress(opts)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: compressing %q: %w", srcName, err)
	}
	spec := src.spec
	spec.Name = newName
	label, wb := compressedWorkload(spec.N, net)
	if wb == nil {
		// First layer is a structured layer Compress passed through
		// untouched (pixelfly, fastfood, ...): keep the source model's
		// label and spec-derived workload pricing.
		label = src.methodLabel
	}
	return r.install(spec, net, label, wb, maxFactorizationError(reports)), reports, nil
}

// maxFactorizationError reduces the per-layer compression reports to the
// worst relative error among the layers that were actually factorized —
// the accuracy price of serving this model, exported as the model's
// factorization-error gauge and in /stats. Layers kept dense are exact
// and don't count.
func maxFactorizationError(reports []nn.LayerReport) float64 {
	var maxErr float64
	for _, rep := range reports {
		if rep.Kind != factorize.KindDense && rep.RelError > maxErr {
			maxErr = rep.RelError
		}
	}
	return maxErr
}

// compressedWorkload inspects the compressed network's N×N first layer —
// the part the cost model prices — and returns the method label plus the
// matching IPU workload builder. A nil builder means the layer is not a
// dense-derived layout and the caller should keep spec-based pricing.
func compressedWorkload(n int, net *nn.Sequential) (string, workloadBuilder) {
	if len(net.Layers) == 0 {
		return "", nil
	}
	switch l := net.Layers[0].(type) {
	case *nn.Dense:
		return "compressed/dense", func(cfg ipu.Config, batch int) (*ipu.Workload, error) {
			return ipu.BuildLinear(cfg, n, batch), nil
		}
	case *nn.StructuredLinear:
		switch t := l.T.(type) {
		case *butterfly.Butterfly:
			return "compressed/butterfly", func(cfg ipu.Config, batch int) (*ipu.Workload, error) {
				return ipu.BuildButterflyMM(cfg, n, batch), nil
			}
		case *baselines.LowRank:
			rank := t.Rank
			return fmt.Sprintf("compressed/lowrank-r%d", rank),
				func(cfg ipu.Config, batch int) (*ipu.Workload, error) {
					return ipu.BuildLowRank(cfg, n, rank, batch), nil
				}
		}
	case *nn.FactorizedDense:
		rank := l.Rank
		return fmt.Sprintf("compressed/lowrank-r%d", rank),
			func(cfg ipu.Config, batch int) (*ipu.Workload, error) {
				return ipu.BuildLowRank(cfg, n, rank, batch), nil
			}
	}
	return "", nil
}
