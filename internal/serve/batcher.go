package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// BatcherConfig tunes the dynamic micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the largest number of requests coalesced into one
	// inference batch. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway. Default 2ms.
	MaxDelay time.Duration
	// Workers is the number of goroutines executing batches; batches run
	// concurrently because Infer is read-only. Default GOMAXPROCS.
	Workers int
	// QueueCap bounds the number of assembled batches waiting for a
	// worker. Default Workers.
	QueueCap int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.Workers
	}
	return c
}

// maxTraceSteps bounds how many per-step plan timings ride a response
// back to the request that asked for them — sized for the deepest
// compiled program the stack produces (a sharded butterfly lowers to
// log2(N/S) + log2(S) micro-steps plus the classifier tail).
const maxTraceSteps = 24

// execInfo is the per-batch execution report the inference function
// fills in: how many compiled-plan steps ran and how long each took.
// One instance lives per worker and is reused across batches, so the
// timing plumbing allocates nothing.
type execInfo struct {
	nsteps    int
	stepNanos [maxTraceSteps]int64
}

func (e *execInfo) reset() { e.nsteps = 0 }

// runFunc is the internal batch-inference signature: like the public
// NewBatcher contract, plus an optional execution report for the
// per-request traces (implementations may ignore it).
type runFunc func(x *tensor.Matrix, info *execInfo) *tensor.Matrix

type request struct {
	features []float32
	enq      time.Time // when Do handed the request to the collector
	resp     chan response

	// abandoned arbitrates the race between a caller giving up on an
	// enqueued request (context cancellation, shutdown) and the worker
	// delivering its response. Exactly one side wins the false→true CAS:
	// a winning caller walks away and the worker recycles the request
	// without sending; a winning worker sends, and the losing caller
	// drains the buffered response before recycling. Either way the
	// request returns to the pool with an empty channel.
	abandoned atomic.Bool
}

type response struct {
	scores []float32
	batch  int
	err    error

	// Timing block for the per-request trace: when the batch's inference
	// started, how long this request waited in the queue before that,
	// how long the inference ran, and the compiled plan's per-step
	// durations (valid for the first nsteps entries).
	execStart  time.Time
	queueNanos int64
	execNanos  int64
	nsteps     int
	stepNanos  [maxTraceSteps]int64
}

// reqPool recycles request structs (and their 1-buffered response
// channels) so the steady-state request path allocates nothing. The
// abandoned CAS guarantees every request reaches the pool with an empty
// response channel: the side that loses the arbitration is the one that
// drains (caller) or skips (worker) the response and recycles.
var reqPool = sync.Pool{New: func() any { return &request{resp: make(chan response, 1)} }}

// Batcher coalesces concurrent single-row requests into batched calls of
// one inference function. One collector goroutine assembles batches
// (flushing on MaxBatch or MaxDelay, whichever first); a pool of workers
// executes them.
type Batcher struct {
	cfg  BatcherConfig
	dim  int
	run  runFunc
	mets *batcherMetrics // nil when the batcher is not instrumented

	reqs    chan *request
	batches chan *batchBuf
	stopped chan struct{}
	stopOne sync.Once
	wg      sync.WaitGroup

	// batchPool recycles batchBuf holders between the collector and the
	// workers (slice capacity MaxBatch, so appends never reallocate).
	batchPool sync.Pool

	nreq    atomic.Int64
	nbatch  atomic.Int64
	maxSeen atomic.Int64
}

// batcherMetrics is the obs instrumentation of one batcher: why batches
// flushed and how big they were. Fixed at construction so the collector
// goroutine reads it without synchronization.
type batcherMetrics struct {
	flushFull    *obs.Counter   // batch reached MaxBatch
	flushTimeout *obs.Counter   // MaxDelay expired first
	batchSize    *obs.Histogram // coalesced requests per flush
}

// NewBatcher starts a batcher over run, which must accept a (rows × dim)
// matrix and return a (rows × anything) matrix; it is called from multiple
// goroutines concurrently and must be read-only with respect to shared
// state (nn.Sequential.Infer and Model.runBatch satisfy this). The input
// matrix is worker-owned and recycled after run returns, so run must not
// retain it; the returned matrix transfers to the batcher, which hands
// row views of it to responses — run must return a matrix whose rows are
// safe to alias until the callers are done with their scores.
func NewBatcher(dim int, cfg BatcherConfig, run func(*tensor.Matrix) *tensor.Matrix) *Batcher {
	return newBatcher(dim, cfg, nil, func(x *tensor.Matrix, _ *execInfo) *tensor.Matrix {
		return run(x)
	})
}

// newBatcher is the internal constructor: the run function may fill in
// the per-batch execution report, and mets (optional) wires the flush
// counters and batch-size histogram. Both are fixed before the collector
// and worker goroutines start, so they need no synchronization.
func newBatcher(dim int, cfg BatcherConfig, mets *batcherMetrics, run runFunc) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		dim:     dim,
		run:     run,
		mets:    mets,
		reqs:    make(chan *request),
		batches: make(chan *batchBuf, cfg.QueueCap),
		stopped: make(chan struct{}),
	}
	b.batchPool.New = func() any {
		return &batchBuf{reqs: make([]*request, 0, cfg.MaxBatch)}
	}
	b.wg.Add(1)
	go b.collect()
	for i := 0; i < cfg.Workers; i++ {
		b.wg.Add(1)
		go b.work()
	}
	return b
}

// Do submits one feature row and blocks until its batch has executed. It
// returns the row's scores and the size of the batch it rode in.
func (b *Batcher) Do(ctx context.Context, features []float32) ([]float32, int, error) {
	resp, err := b.do(ctx, features)
	if err != nil {
		return nil, 0, err
	}
	return resp.scores, resp.batch, resp.err
}

// do is Do returning the full response, timing block included, for
// callers that feed per-request traces. The returned response is a value
// copy; the error covers submission/shutdown failures while resp.err
// covers inference failures.
func (b *Batcher) do(ctx context.Context, features []float32) (response, error) {
	r := reqPool.Get().(*request)
	r.features = features
	r.enq = time.Now()
	select {
	case b.reqs <- r:
	case <-b.stopped:
		b.release(r)
		return response{}, ErrStopped
	case <-ctx.Done():
		b.release(r)
		return response{}, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		b.release(r)
		return resp, nil
	case <-b.stopped:
		if r.abandoned.CompareAndSwap(false, true) {
			// Won the arbitration: no worker will send; whoever holds
			// the request (worker or collector fail path) recycles it.
			return response{}, ErrStopped
		}
		// A worker claimed delivery concurrently with the shutdown —
		// its response is (or is about to be) in the buffered channel.
		resp := <-r.resp
		b.release(r)
		return resp, nil
	case <-ctx.Done():
		if r.abandoned.CompareAndSwap(false, true) {
			return response{}, ctx.Err()
		}
		// Lost to the worker's send: drain the buffered response so the
		// pooled request comes back with an empty channel.
		<-r.resp
		b.release(r)
		return response{}, ctx.Err()
	}
}

// release recycles a request whose response channel is known to be empty
// and that neither side will touch again: it was never enqueued, its
// response has been received, or the abandonment arbitration settled who
// recycles. The abandoned flag is reset so the pooled request starts the
// next cycle unclaimed.
func (b *Batcher) release(r *request) {
	r.features = nil
	r.abandoned.Store(false)
	reqPool.Put(r)
}

// deliver sends one response if the caller is still waiting, recycling
// the request instead when the caller abandoned it (the worker-side half
// of the abandonment arbitration). Exactly one of the send and the
// recycle happens per request.
func (b *Batcher) deliver(r *request, resp response) {
	if r.abandoned.CompareAndSwap(false, true) {
		r.resp <- resp
		return
	}
	b.release(r)
}

// Stop shuts the batcher down and waits for the workers to drain. Pending
// and subsequent Do calls return ErrStopped.
func (b *Batcher) Stop() {
	b.stopOne.Do(func() { close(b.stopped) })
	b.wg.Wait()
}

// BatcherStats counts the coalescing behaviour so far.
type BatcherStats struct {
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`
	MaxBatch int64   `json:"max_batch"`
}

// Stats returns a snapshot of the coalescing counters.
func (b *Batcher) Stats() BatcherStats {
	s := BatcherStats{
		Requests: b.nreq.Load(),
		Batches:  b.nbatch.Load(),
		MaxBatch: b.maxSeen.Load(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Requests) / float64(s.Batches)
	}
	return s
}

// collect assembles batches: block for the first request, then fill until
// MaxBatch requests have arrived or MaxDelay has elapsed. One flush timer
// and pooled batch slices are reused across batches so steady-state
// assembly allocates nothing.
func (b *Batcher) collect() {
	defer b.wg.Done()
	defer close(b.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first *request
		select {
		case <-b.stopped:
			return
		case first = <-b.reqs:
		}
		bb := b.batchPool.Get().(*batchBuf)
		bb.reqs = append(bb.reqs[:0], first)
		timer.Reset(b.cfg.MaxDelay)
		expired := false
	fill:
		for len(bb.reqs) < b.cfg.MaxBatch {
			select {
			case <-b.stopped:
				if !timer.Stop() {
					<-timer.C
				}
				b.fail(bb.reqs, ErrStopped)
				return
			case r := <-b.reqs:
				bb.reqs = append(bb.reqs, r)
			case <-timer.C:
				expired = true
				break fill
			}
		}
		if !expired && !timer.Stop() {
			<-timer.C
		}
		if b.mets != nil {
			b.mets.batchSize.Observe(float64(len(bb.reqs)))
			if expired {
				b.mets.flushTimeout.Inc()
			} else {
				b.mets.flushFull.Inc()
			}
		}
		select {
		case b.batches <- bb:
		case <-b.stopped:
			b.fail(bb.reqs, ErrStopped)
			return
		}
	}
}

// batchBuf is a reusable batch holder passed from the collector to a
// worker and back to the pool.
type batchBuf struct {
	reqs []*request
}

// putBatch returns a finished batch holder to the pool, dropping request
// references so recycled buffers don't pin them.
func (b *Batcher) putBatch(bb *batchBuf) {
	for i := range bb.reqs {
		bb.reqs[i] = nil
	}
	bb.reqs = bb.reqs[:0]
	b.batchPool.Put(bb)
}

func (b *Batcher) work() {
	defer b.wg.Done()
	// Each worker owns one reusable input matrix; it grows to MaxBatch×dim
	// once and is recycled across batches, so batch assembly allocates
	// nothing at steady state.
	in := &tensor.Matrix{Cols: b.dim}
	// One execution report per worker, reused across batches, so the
	// per-step timing plumbing never allocates at steady state.
	info := new(execInfo)
	for bb := range b.batches {
		b.exec(bb.reqs, in, info)
		b.putBatch(bb)
	}
}

func (b *Batcher) exec(batch []*request, in *tensor.Matrix, info *execInfo) {
	n := len(batch)
	if cap(in.Data) < n*b.dim {
		in.Data = make([]float32, n*b.dim)
	}
	in.Data = in.Data[:n*b.dim]
	in.Rows = n
	for i, r := range batch {
		copy(in.Data[i*b.dim:(i+1)*b.dim], r.features)
	}
	info.reset()
	execStart := time.Now()
	y, err := b.safeRun(in, info)
	execNanos := time.Since(execStart).Nanoseconds()
	if err != nil {
		b.fail(batch, err)
		return
	}
	cols := y.Cols
	for i, r := range batch {
		// Responses alias rows of the run result: the run contract
		// transfers the returned matrix to the batcher, and each caller
		// owns exactly one row. The three-index slice caps capacity at the
		// row boundary so a caller appending to its scores reallocates
		// instead of writing into the next request's row.
		b.deliver(r, response{
			scores:     y.Data[i*cols : (i+1)*cols : (i+1)*cols],
			batch:      n,
			execStart:  execStart,
			queueNanos: execStart.Sub(r.enq).Nanoseconds(),
			execNanos:  execNanos,
			nsteps:     info.nsteps,
			stepNanos:  info.stepNanos,
		})
	}
	b.nreq.Add(int64(len(batch)))
	b.nbatch.Add(1)
	for {
		cur := b.maxSeen.Load()
		if int64(len(batch)) <= cur || b.maxSeen.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}
}

// safeRun converts inference panics into per-request errors so one bad
// batch cannot take the worker pool down.
func (b *Batcher) safeRun(x *tensor.Matrix, info *execInfo) (y *tensor.Matrix, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	y = b.run(x, info)
	if y.Rows != x.Rows {
		return nil, fmt.Errorf("serve: inference returned %d rows for a %d-row batch", y.Rows, x.Rows)
	}
	return y, nil
}

// fail answers every request of a doomed batch with the error, skipping
// (and recycling) requests whose callers already abandoned them.
func (b *Batcher) fail(batch []*request, err error) {
	for _, r := range batch {
		b.deliver(r, response{err: err})
	}
}
