package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// BatcherConfig tunes the dynamic micro-batcher.
type BatcherConfig struct {
	// MaxBatch is the largest number of requests coalesced into one
	// inference batch. Default 32.
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway. Default 2ms.
	MaxDelay time.Duration
	// Workers is the number of goroutines executing batches; batches run
	// concurrently because Infer is read-only. Default GOMAXPROCS.
	Workers int
	// QueueCap bounds the number of assembled batches waiting for a
	// worker. Default Workers.
	QueueCap int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = c.Workers
	}
	return c
}

type request struct {
	features []float32
	resp     chan response
}

type response struct {
	scores []float32
	batch  int
	err    error
}

// Batcher coalesces concurrent single-row requests into batched calls of
// one inference function. One collector goroutine assembles batches
// (flushing on MaxBatch or MaxDelay, whichever first); a pool of workers
// executes them.
type Batcher struct {
	cfg BatcherConfig
	dim int
	run func(*tensor.Matrix) *tensor.Matrix

	reqs    chan *request
	batches chan []*request
	stopped chan struct{}
	stopOne sync.Once
	wg      sync.WaitGroup

	nreq    atomic.Int64
	nbatch  atomic.Int64
	maxSeen atomic.Int64
}

// NewBatcher starts a batcher over run, which must accept a (rows × dim)
// matrix and return a (rows × anything) matrix; it is called from multiple
// goroutines concurrently and must be read-only with respect to shared
// state (nn.Sequential.Infer satisfies this).
func NewBatcher(dim int, cfg BatcherConfig, run func(*tensor.Matrix) *tensor.Matrix) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		dim:     dim,
		run:     run,
		reqs:    make(chan *request),
		batches: make(chan []*request, cfg.QueueCap),
		stopped: make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	for i := 0; i < cfg.Workers; i++ {
		b.wg.Add(1)
		go b.work()
	}
	return b
}

// Do submits one feature row and blocks until its batch has executed. It
// returns the row's scores and the size of the batch it rode in.
func (b *Batcher) Do(ctx context.Context, features []float32) ([]float32, int, error) {
	r := &request{features: features, resp: make(chan response, 1)}
	select {
	case b.reqs <- r:
	case <-b.stopped:
		return nil, 0, ErrStopped
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		return resp.scores, resp.batch, resp.err
	case <-b.stopped:
		// A worker may have answered concurrently with the shutdown.
		select {
		case resp := <-r.resp:
			return resp.scores, resp.batch, resp.err
		default:
			return nil, 0, ErrStopped
		}
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// Stop shuts the batcher down and waits for the workers to drain. Pending
// and subsequent Do calls return ErrStopped.
func (b *Batcher) Stop() {
	b.stopOne.Do(func() { close(b.stopped) })
	b.wg.Wait()
}

// BatcherStats counts the coalescing behaviour so far.
type BatcherStats struct {
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`
	MaxBatch int64   `json:"max_batch"`
}

// Stats returns a snapshot of the coalescing counters.
func (b *Batcher) Stats() BatcherStats {
	s := BatcherStats{
		Requests: b.nreq.Load(),
		Batches:  b.nbatch.Load(),
		MaxBatch: b.maxSeen.Load(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Requests) / float64(s.Batches)
	}
	return s
}

// collect assembles batches: block for the first request, then fill until
// MaxBatch requests have arrived or MaxDelay has elapsed.
func (b *Batcher) collect() {
	defer b.wg.Done()
	defer close(b.batches)
	for {
		var first *request
		select {
		case <-b.stopped:
			return
		case first = <-b.reqs:
		}
		batch := append(make([]*request, 0, b.cfg.MaxBatch), first)
		timer := time.NewTimer(b.cfg.MaxDelay)
	fill:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case <-b.stopped:
				timer.Stop()
				fail(batch, ErrStopped)
				return
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		select {
		case b.batches <- batch:
		case <-b.stopped:
			fail(batch, ErrStopped)
			return
		}
	}
}

func (b *Batcher) work() {
	defer b.wg.Done()
	for batch := range b.batches {
		b.exec(batch)
	}
}

func (b *Batcher) exec(batch []*request) {
	rows := make([][]float32, len(batch))
	for i, r := range batch {
		rows[i] = r.features
	}
	y, err := b.safeRun(batchMatrix(rows, b.dim))
	if err != nil {
		fail(batch, err)
		return
	}
	for i, r := range batch {
		r.resp <- response{
			scores: append([]float32(nil), y.Row(i)...),
			batch:  len(batch),
		}
	}
	b.nreq.Add(int64(len(batch)))
	b.nbatch.Add(1)
	for {
		cur := b.maxSeen.Load()
		if int64(len(batch)) <= cur || b.maxSeen.CompareAndSwap(cur, int64(len(batch))) {
			break
		}
	}
}

// safeRun converts inference panics into per-request errors so one bad
// batch cannot take the worker pool down.
func (b *Batcher) safeRun(x *tensor.Matrix) (y *tensor.Matrix, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: inference panic: %v", r)
		}
	}()
	y = b.run(x)
	if y.Rows != x.Rows {
		return nil, fmt.Errorf("serve: inference returned %d rows for a %d-row batch", y.Rows, x.Rows)
	}
	return y, nil
}

func fail(batch []*request, err error) {
	for _, r := range batch {
		r.resp <- response{err: err}
	}
}
