package serve

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/shard"
)

// latencyWindow bounds how many recent request latencies each model keeps
// for the percentile report.
const latencyWindow = 8192

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Options configure a Registry.
type Options struct {
	// IPU is the device model the program cache compiles against.
	// The zero value selects the paper's GC200.
	IPU ipu.Config
	// Batcher is applied to every model's micro-batcher.
	Batcher BatcherConfig

	// NumIPUs is how many modelled IPUs each model may shard across
	// (0 or 1 = unsharded serving).
	NumIPUs int
	// Link is the inter-IPU exchange model (zero value = ipu.IPULink()).
	Link ipu.LinkConfig
	// PerIPUMemBytes is the per-IPU memory budget the registry fits
	// models into when auto-picking a shard count (0 = the chip's SRAM).
	PerIPUMemBytes int
	// Shards fixes the shard count for every registered model instead of
	// auto-picking the smallest count that fits PerIPUMemBytes (0 = auto).
	Shards int
	// MicroBatches forces the wavefront width pipeline-partitioned plans
	// split each batch into (0 = let the shard planner pick the width that
	// minimizes the modelled schedule latency; 1 = the barrier loop).
	MicroBatches int

	// TraceSampleEvery samples one request in every N for the
	// /debug/traces ring (0 = default 64; negative disables tracing).
	TraceSampleEvery int
	// TraceKeep is how many finished traces the ring retains (0 = 64).
	TraceKeep int

	// TimelineSampleEvery samples one executed batch in every N into the
	// per-model BSP phase flight recorder behind /debug/timeline and the
	// phase gauges (0 = default 16; negative disables timelines).
	TimelineSampleEvery int
	// TimelineKeep is how many sampled batch timelines each model's
	// recorder retains (0 = 8).
	TimelineKeep int

	// PprofLabels pins a per-model pprof label ("model") on the batcher
	// worker goroutine around plan execution, so CPU profiles attribute
	// kernel time to the model that ran it. Off by default — label
	// swapping is cheap but not free.
	PprofLabels bool
}

// Default trace sampling: one request in 64, last 64 traces retained.
const (
	defaultTraceSampleEvery = 64
	defaultTraceKeep        = 64
)

// Default timeline sampling: one executed batch in 16, last 8 batch
// timelines retained per model.
const (
	defaultTimelineSampleEvery = 16
	defaultTimelineKeep        = 8
)

// Registry builds, versions and owns servable models. All methods are safe
// for concurrent use; the Predictors it hands out are safe to share across
// goroutines.
type Registry struct {
	opts  Options
	topo  shard.Topology
	cache *ProgramCache

	// obs is the metric registry every instrument of this serving stack
	// registers into (scraped by the HTTP server's /metrics); tracer
	// samples per-request traces for /debug/traces.
	obs    *obs.Registry
	tracer *obs.Tracer
	// kstats is the registry-wide per-kernel accounting sink every model's
	// plans record into; exported on /metrics as kernel_gflops /
	// kernel_bytes_per_sec.
	kstats *obs.KernelStats

	mu       sync.RWMutex
	models   map[string]*Model
	versions map[string]int // last version issued per name, survives Remove
}

// NewRegistry creates an empty registry.
func NewRegistry(opts Options) *Registry {
	if opts.IPU.Tiles == 0 {
		opts.IPU = ipu.GC200()
	}
	if opts.NumIPUs < 1 {
		opts.NumIPUs = 1
	}
	if opts.Link.LinkBandwidth == 0 {
		opts.Link = ipu.IPULink()
	}
	topo := shard.Topology{NumIPUs: opts.NumIPUs, IPU: opts.IPU, Link: opts.Link}
	r := &Registry{
		opts:     opts,
		topo:     topo,
		obs:      obs.NewRegistry(),
		cache:    NewShardedProgramCache(opts.IPU, topo, opts.PerIPUMemBytes),
		models:   map[string]*Model{},
		versions: map[string]int{},
	}
	r.cache.SetMicroBatches(opts.MicroBatches)
	registerHelp(r.obs)
	r.kstats = obs.NewKernelStats()
	r.kstats.Export(r.obs, metKernelGflops, metKernelBytes)
	r.cache.instrument(r.obs)
	r.obs.GaugeFunc(metModels, func() float64 {
		r.mu.RLock()
		n := len(r.models)
		r.mu.RUnlock()
		return float64(n)
	})
	if opts.TraceSampleEvery >= 0 {
		every, keep := opts.TraceSampleEvery, opts.TraceKeep
		if every == 0 {
			every = defaultTraceSampleEvery
		}
		if keep == 0 {
			keep = defaultTraceKeep
		}
		r.tracer = obs.NewTracer(every, keep)
	}
	return r
}

// Obs returns the registry's metric registry — the one /metrics scrapes
// and external callers may add their own instruments to.
func (r *Registry) Obs() *obs.Registry { return r.obs }

// Tracer returns the registry's request tracer (nil when tracing is
// disabled via a negative TraceSampleEvery).
func (r *Registry) Tracer() *obs.Tracer { return r.tracer }

// KernelStats returns the registry-wide per-kernel accounting sink — the
// source of the loadgen's per-kernel GFLOP/s table.
func (r *Registry) KernelStats() *obs.KernelStats { return r.kstats }

// Register builds the spec's network and installs it under spec.Name. A
// name already in use is replaced: the new model gets the next version
// number and the old model's batcher is stopped (its in-flight requests
// get ErrStopped; callers holding the old Predictor must re-resolve).
func (r *Registry) Register(spec ModelSpec) (*Model, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	net, err := buildNet(spec)
	if err != nil {
		return nil, err
	}
	return r.install(spec, net, spec.Method.String(), nil, 0), nil
}

// install wires a built network into a servable Model and swaps it into
// the registry under spec.Name. A nil workload builder means the cost
// model derives the workload from the spec's method; factorErr is the max
// per-layer relative factorization error of the installed weights (0 for
// exactly-built models).
func (r *Registry) install(spec ModelSpec, net *nn.Sequential, label string, wb workloadBuilder, factorErr float64) *Model {
	if wb == nil {
		wb = func(cfg ipu.Config, batch int) (*ipu.Workload, error) {
			return buildWorkload(cfg, spec, batch)
		}
	}
	m := &Model{
		spec:        spec,
		net:         net,
		params:      net.ParamCount(),
		methodLabel: label,
		workload:    wb,
		cache:       r.cache,
		topo:        r.topo,
		factorErr:   factorErr,
		obsReg:      r.obs,
		tracer:      r.tracer,
		kstats:      r.kstats,
		lat:         newLatencyRing(latencyWindow),
	}
	if r.opts.PprofLabels {
		m.pprofBase = context.Background()
		m.pprofCtx = pprof.WithLabels(m.pprofBase, pprof.Labels("model", spec.Name))
	}
	m.shards = r.pickShards(net)
	m.mets = newModelMetrics(r.obs, spec.Name, m.shards)
	m.mets.factorization.Set(factorErr)
	if r.opts.TimelineSampleEvery >= 0 {
		every, keep := r.opts.TimelineSampleEvery, r.opts.TimelineKeep
		if every == 0 {
			every = defaultTimelineSampleEvery
		}
		if keep == 0 {
			keep = defaultTimelineKeep
		}
		m.timeline = timeline.NewRecorder(every, keep)
		r.registerPhaseGauges(m)
	}
	// The batcher's instruments must exist before its goroutines start:
	// the collector reads the metrics pointer without synchronization.
	m.batcher = newBatcher(spec.N, r.opts.Batcher, newBatcherMetrics(r.obs, spec.Name), m.runBatch)
	// Scrape-time readers over the model's existing serving atomics —
	// re-registering on replace swaps the closures to the new instance
	// (counter-reset semantics, which Prometheus handles).
	lm := obs.L{Key: "model", Value: spec.Name}
	r.obs.CounterFunc(metRequests, m.served.Load, lm)
	r.obs.GaugeFunc(metQueueDepth, func() float64 { return float64(len(m.batcher.batches)) }, lm)

	r.mu.Lock()
	r.versions[spec.Name]++
	m.version = r.versions[spec.Name]
	old := r.models[spec.Name]
	r.models[spec.Name] = m
	r.mu.Unlock()

	if old != nil {
		// Stop first (drains in-flight batches), then drop the old
		// version's cached programs so replaced weights and plan pools
		// don't accumulate across redeploys.
		old.stop()
		r.cache.Evict(old.spec.Name, old.version)
	}
	return m
}

// registerPhaseGauges exports the model's flight-recorder phase totals:
// one ipuserve_phase_seconds{model,ipu,phase} gauge per (modelled IPU,
// BSP phase) and the model's pipeline bubble fraction. Phase seconds are
// extrapolated from the sampled batches by the sampling period (an
// unbiased estimate of total executor time per phase, as documented in
// the HELP text); the bubble fraction is a ratio, so sampling cancels.
// Removing the model drops the series via DropLabeled("model", ...)
// like every other per-model instrument.
func (r *Registry) registerPhaseGauges(m *Model) {
	rec := m.timeline
	scale := float64(rec.SampleEvery())
	lm := obs.L{Key: "model", Value: m.spec.Name}
	for i := 0; i < m.shards; i++ {
		li := obs.L{Key: "ipu", Value: strconv.Itoa(i)}
		for _, ph := range timeline.Phases {
			ipu, ph := i, ph
			r.obs.GaugeFunc(metPhaseSeconds, func() float64 {
				return rec.PhaseSeconds(ipu, ph) * scale
			}, lm, li, obs.L{Key: "phase", Value: ph.String()})
		}
	}
	r.obs.GaugeFunc(metBubbleFraction, rec.BubbleFraction, lm)
}

// pickShards decides how many modelled IPUs a model serves on: the fixed
// Options.Shards when set, otherwise the smallest power-of-two count whose
// per-IPU footprint (priced by the shard planner at the batcher's largest
// batch bucket) fits the per-IPU memory budget. When nothing fits, the
// full topology is used anyway — the registry still serves, oversubscribed
// in the model, and ProgramCost reports the overflow.
func (r *Registry) pickShards(net *nn.Sequential) int {
	if r.opts.Shards > 0 {
		// Shard counts must be powers of two (slices and butterfly stages
		// halve); round a fixed request down so the shard compiler never
		// rejects what the registry promised.
		return prevPow2(min(r.opts.Shards, r.topo.NumIPUs))
	}
	if r.topo.NumIPUs <= 1 {
		return 1
	}
	batch := nextPow2(r.opts.Batcher.withDefaults().MaxBatch)
	pl, err := net.CompilePlan(batch)
	if err != nil {
		return 1
	}
	cost, _, err := shard.FitShards(pl, batch, r.topo, r.opts.PerIPUMemBytes)
	if err != nil {
		return 1
	}
	return cost.Shards
}

// Get returns the current model registered under name.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	return m, ok
}

// Predict routes one request to the named model — the convenience entry
// point the HTTP layer and load generator use.
func (r *Registry) Predict(ctx context.Context, name string, features []float32) (Prediction, error) {
	m, ok := r.Get(name)
	if !ok {
		return Prediction{}, fmt.Errorf("serve: unknown model %q", name)
	}
	return m.Predict(ctx, features)
}

// Models returns the registered models sorted by name — the iteration
// surface report endpoints (e.g. /debug/costmodel) walk.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	out := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// ModelHealth is one model's row of the /healthz readiness report.
type ModelHealth struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Ready   bool   `json:"ready"`
	Error   string `json:"error,omitempty"`
}

// Health probes every registered model's readiness (plan compiled through
// the shared cache, memoized per model), sorted by name.
func (r *Registry) Health() []ModelHealth {
	models := r.Models()
	out := make([]ModelHealth, 0, len(models))
	for _, m := range models {
		ready, errStr := m.Ready()
		out = append(out, ModelHealth{
			Model:   m.spec.Name,
			Version: m.version,
			Shards:  m.shards,
			Ready:   ready,
			Error:   errStr,
		})
	}
	return out
}

// List returns the registered models sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	infos := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		infos = append(infos, m.Info())
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Remove unregisters and stops the named model; it reports whether the
// model existed. A later Register under the same name continues the
// version sequence.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	m, ok := r.models[name]
	delete(r.models, name)
	r.mu.Unlock()
	if ok {
		m.stop()
		r.cache.Evict(m.spec.Name, m.version)
		// Retire every series carrying the model label (including the
		// Func closures over the removed model's state).
		r.obs.DropLabeled("model", name)
	}
	return ok
}

// CacheStats snapshots the shared compiled-program cache counters.
func (r *Registry) CacheStats() CacheStats { return r.cache.Stats() }

// Stats returns per-model serving statistics sorted by name.
func (r *Registry) Stats() []ModelStats {
	r.mu.RLock()
	out := make([]ModelStats, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m.Stats())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Name < out[j].Info.Name })
	return out
}

// Close stops every model's batcher.
func (r *Registry) Close() {
	r.mu.Lock()
	models := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		models = append(models, m)
	}
	r.models = map[string]*Model{}
	r.mu.Unlock()
	for _, m := range models {
		m.stop()
		r.cache.Evict(m.spec.Name, m.version)
		r.obs.DropLabeled("model", m.spec.Name)
	}
}
