package serve

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/tensor"
)

// LoadConfig tunes the built-in load generator.
type LoadConfig struct {
	// RPS is the offered request rate (open loop: requests are issued on
	// schedule regardless of completions, like real traffic). Default 200.
	RPS int
	// Duration is how long to offer load. Default 5s.
	Duration time.Duration
	// Seed drives the synthetic feature vectors. Default 1.
	Seed int64
	// Burst issues that many requests per tick (at RPS/Burst ticks per
	// second, so the offered rate is unchanged). Bursty arrivals let the
	// micro-batcher coalesce multi-row batches even when the per-request
	// inter-arrival time exceeds its flush delay — the arrival shape that
	// exercises pipelined multi-batch execution. Default 1 (uniform).
	Burst int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.RPS <= 0 {
		c.RPS = 200
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// LoadReport summarizes one load-generation run against one model.
type LoadReport struct {
	Model    string
	Offered  int // requests issued
	Done     int // requests answered successfully
	Errors   int
	Elapsed  time.Duration
	Latency  stats.Summary // seconds, over successful requests
	Batching BatcherStats  // delta over the run
	Cache    CacheStats    // delta over the run

	// AllErrors marks a run where every offered request failed: the
	// latency summary and per-op allocation fields are zero because there
	// is nothing to summarize, not because the run was free. Consumers
	// must not read the zero percentiles as "infinitely fast".
	AllErrors bool

	// AllocsPerOp and BytesPerOp are the process-wide heap allocation
	// deltas of the run divided by completed requests — the serving
	// stack's allocation trajectory (includes the load generator's own
	// bookkeeping, so treat it as an upper bound on the serving path).
	AllocsPerOp float64
	BytesPerOp  float64
}

// Throughput returns completed requests per second.
func (r LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Done) / r.Elapsed.Seconds()
}

// RunLoad offers cfg.RPS requests/s of synthetic traffic to the model for
// cfg.Duration and reports throughput, the latency distribution, the
// batching behaviour and the program-cache delta of the run.
func RunLoad(ctx context.Context, reg *Registry, model string, cfg LoadConfig) (LoadReport, error) {
	cfg = cfg.withDefaults()
	m, ok := reg.Get(model)
	if !ok {
		return LoadReport{}, errUnknownModel(model)
	}

	// A small pool of deterministic feature vectors, cycled per request.
	const poolSize = 64
	rng := newRNG(cfg.Seed)
	pool := make([][]float32, poolSize)
	for i := range pool {
		v := tensor.New(1, m.spec.N)
		v.FillRandom(rng, 1)
		pool[i] = v.Data
	}

	batchBefore := m.batcher.Stats()
	cacheBefore := reg.CacheStats()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
		maxBatch  int
	)
	var wg sync.WaitGroup
	interval := time.Second * time.Duration(cfg.Burst) / time.Duration(cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(cfg.Duration)
	defer deadline.Stop()

	start := time.Now()
	offered := 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			for b := 0; b < cfg.Burst; b++ {
				features := pool[offered%poolSize]
				offered++
				wg.Add(1)
				go func() {
					defer wg.Done()
					t0 := time.Now()
					pred, err := m.Predict(ctx, features)
					lat := time.Since(t0).Seconds()
					mu.Lock()
					if err != nil {
						errs++
					} else {
						latencies = append(latencies, lat)
						if pred.BatchSize > maxBatch {
							maxBatch = pred.BatchSize
						}
					}
					mu.Unlock()
				}()
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	batchAfter := m.batcher.Stats()
	cacheAfter := reg.CacheStats()
	rep := LoadReport{
		Model:   model,
		Offered: offered,
		Done:    len(latencies),
		Errors:  errs,
		Elapsed: elapsed,
		Latency: stats.Summarize(latencies),
		Batching: BatcherStats{
			Requests: batchAfter.Requests - batchBefore.Requests,
			Batches:  batchAfter.Batches - batchBefore.Batches,
			MaxBatch: int64(maxBatch), // largest batch observed by this run's requests
		},
		Cache: CacheStats{
			Hits:    cacheAfter.Hits - cacheBefore.Hits,
			Misses:  cacheAfter.Misses - cacheBefore.Misses,
			Entries: cacheAfter.Entries,
		},
	}
	if rep.Batching.Batches > 0 {
		rep.Batching.AvgBatch = float64(rep.Batching.Requests) / float64(rep.Batching.Batches)
	}
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(total)
	}
	if rep.Done > 0 {
		rep.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(rep.Done)
		rep.BytesPerOp = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(rep.Done)
	}
	// A run where nothing succeeded must degrade to an explicit all-errors
	// record — zero percentiles with AllErrors set — instead of reporting
	// an empty latency distribution as a perfect one.
	if rep.Done == 0 && rep.Offered > 0 {
		rep.AllErrors = true
		rep.Latency = stats.Summary{}
	}
	return rep, nil
}

type errUnknownModel string

func (e errUnknownModel) Error() string { return "serve: unknown model " + string(e) }
