package serve

import (
	"sync"
	"testing"

	"repro/internal/ipu"
	"repro/internal/nn"
)

func TestProgramCacheHitMissAccounting(t *testing.T) {
	c := NewProgramCache(ipu.GC200())
	sp := spec("m", nn.Butterfly)

	cost1, err := c.Cost(sp, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cost1.Batch != 8 || cost1.LatencySeconds <= 0 {
		t.Fatalf("degenerate cost %+v", cost1)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first Cost: %+v, want 0 hits / 1 miss", s)
	}

	cost2, err := c.Cost(sp, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != cost1 {
		t.Fatal("second Cost did not return the cached entry")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.HitRate != 0.5 {
		t.Fatalf("after second Cost: %+v, want 1 hit / 1 miss", s)
	}

	// A different batch size is a different program.
	if _, err := c.Cost(sp, 1, 16); err != nil {
		t.Fatal(err)
	}
	// A different model version is a different program.
	if _, err := c.Cost(sp, 2, 8); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("after distinct keys: %+v, want 3 misses / 3 entries", s)
	}
}

func TestProgramCacheConcurrentColdKeyCompilesOnce(t *testing.T) {
	c := NewProgramCache(ipu.GC200())
	sp := spec("m", nn.Pixelfly)

	const callers = 12
	var wg sync.WaitGroup
	costs := make([]*ProgramCost, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cost, err := c.Cost(sp, 1, 4)
			if err != nil {
				t.Errorf("Cost: %v", err)
				return
			}
			costs[i] = cost
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if costs[i] != costs[0] {
			t.Fatal("concurrent callers saw different compiled programs")
		}
	}
	s := c.Stats()
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
	if s.Hits+s.Misses != callers {
		t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, callers)
	}
}

func TestProgramCacheAllMethodsCompile(t *testing.T) {
	c := NewProgramCache(ipu.GC200())
	for _, m := range nn.AllMethods {
		cost, err := c.Cost(spec("m-"+m.String(), m), 1, 8)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if cost.LatencySeconds <= 0 || cost.PeakTileBytes <= 0 || cost.DeviceBytes <= 0 {
			t.Fatalf("%v: degenerate cost %+v", m, cost)
		}
		if cost.PerRequestSeconds >= cost.LatencySeconds {
			t.Fatalf("%v: per-request %v not below batch latency %v",
				m, cost.PerRequestSeconds, cost.LatencySeconds)
		}
	}
}

func TestProgramCacheRejectsBadBatch(t *testing.T) {
	c := NewProgramCache(ipu.GC200())
	if _, err := c.Cost(spec("m", nn.Baseline), 1, 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

// TestProgramCostFusionBlock checks the fusion silhouette surfaces on the
// modelled cost once a host network is attached: executed vs lowered step
// counts, at least one fused step for an SHL, and reduced modelled arena
// traffic — and that cost-only programs simply omit the block.
func TestProgramCostFusionBlock(t *testing.T) {
	c := NewProgramCache(ipu.GC200())
	sp := spec("m", nn.Butterfly)

	// Cost-only (no host net): fusion fields stay zero.
	bare, err := c.Cost(sp, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bare.PlanSteps != 0 || bare.TrafficBytes != 0 {
		t.Fatalf("cost-only program carries fusion block: %+v", bare)
	}

	net, err := buildNet(sp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Program("m2", 1, 8, 1, net, func(cfg ipu.Config, b int) (*ipu.Workload, error) {
		return buildWorkload(cfg, sp, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := p.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if cost.PlanSteps == 0 || cost.PlanStepsUnfused <= cost.PlanSteps {
		t.Fatalf("fusion block missing or incoherent: steps=%d unfused=%d", cost.PlanSteps, cost.PlanStepsUnfused)
	}
	if cost.PlanFusedSteps < 1 {
		t.Fatalf("SHL program reports %d fused steps, want >= 1", cost.PlanFusedSteps)
	}
	if cost.TrafficBytes <= 0 || cost.TrafficBytes >= cost.TrafficBytesUnfused {
		t.Fatalf("modelled traffic not reduced: %d vs unfused %d", cost.TrafficBytes, cost.TrafficBytesUnfused)
	}
	if cost.PlanArenaBytes <= 0 {
		t.Fatalf("PlanArenaBytes = %d, want > 0", cost.PlanArenaBytes)
	}

	// The plan compiled for the fusion block is donated to the pool: the
	// first GetPlan must not compile again but still execute correctly.
	pl, err := p.GetPlan()
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxBatch() != 8 {
		t.Fatalf("pooled plan MaxBatch = %d, want 8", pl.MaxBatch())
	}
	p.PutPlan(pl)
}
