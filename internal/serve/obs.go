package serve

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/shard"
)

// Metric family names exported by the serving stack. Everything carries
// the ipuserve_ prefix; per-model series add a model label, per-step and
// per-IPU series add step/ipu labels on top.
const (
	metRequests       = "ipuserve_requests_total"
	metErrors         = "ipuserve_errors_total"
	metLatency        = "ipuserve_request_seconds"
	metBatchSize      = "ipuserve_batch_size"
	metQueueDepth     = "ipuserve_batcher_queue_depth"
	metFlush          = "ipuserve_batcher_flush_total"
	metCacheHits      = "ipuserve_cache_hits_total"
	metCacheMisses    = "ipuserve_cache_misses_total"
	metCacheEvict     = "ipuserve_cache_evictions_total"
	metCacheEntries   = "ipuserve_cache_entries"
	metCacheCompile   = "ipuserve_cache_compile_seconds"
	metPlanStep       = "ipuserve_plan_step_seconds"
	metShardCompute   = "ipuserve_shard_compute_seconds"
	metShardExchange  = "ipuserve_shard_exchange_seconds"
	metFactorErr      = "ipuserve_model_factorization_error"
	metModelledReq    = "ipuserve_modelled_per_request_seconds"
	metModels         = "ipuserve_models"
	metUptime         = "ipuserve_uptime_seconds"
	metHTTPRequests   = "ipuserve_http_requests_total"
	metEncodeErrs     = "ipuserve_http_json_encode_errors_total"
	metKernelGflops   = "ipuserve_kernel_gflops"
	metKernelBytes    = "ipuserve_kernel_bytes_per_sec"
	metKernelVariant  = "ipuserve_kernel_variant"
	metDrift          = "ipuserve_cost_model_drift_ratio"
	metPhaseSeconds   = "ipuserve_phase_seconds"
	metBubbleFraction = "ipuserve_pipeline_bubble_fraction"
)

// registerHelp attaches the HELP strings once per registry so every
// scrape documents the families.
func registerHelp(reg *obs.Registry) {
	reg.Help(metRequests, "Requests served successfully, per model.")
	reg.Help(metErrors, "Requests that failed (bad input, stopped model, inference error), per model.")
	reg.Help(metLatency, "Host-side request latency from enqueue to response, per model.")
	reg.Help(metBatchSize, "Requests coalesced per micro-batch flush, per model.")
	reg.Help(metQueueDepth, "Assembled batches waiting for a worker, per model.")
	reg.Help(metFlush, "Micro-batch flushes by reason (full = MaxBatch reached, timeout = MaxDelay expired).")
	reg.Help(metCacheHits, "Program-cache lookups that rode an already-compiled program.")
	reg.Help(metCacheMisses, "Program-cache lookups that paid or waited on a compile.")
	reg.Help(metCacheEvict, "Cached programs dropped by model replacement or removal.")
	reg.Help(metCacheEntries, "Compiled programs currently cached.")
	reg.Help(metCacheCompile, "Wall time of modelled-IPU program compiles (cache misses).")
	reg.Help(metPlanStep, "Measured wall time of one compiled-plan step, per model and step.")
	reg.Help(metShardCompute, "Measured per-IPU kernel time of one sharded batch, per model and modelled IPU.")
	reg.Help(metShardExchange, "Sharded-batch wall time not covered by the slowest shard's compute - the measured sync/exchange proxy to compare against the modelled IPU-Link exchange.")
	reg.Help(metFactorErr, "Max per-layer relative Frobenius error of the factorization the model serves (0 = exact weights).")
	reg.Help(metModelledReq, "Modelled per-request seconds of the most recent batch bucket (compare against "+metLatency+").")
	reg.Help(metModels, "Models currently registered.")
	reg.Help(metUptime, "Seconds since the HTTP server started.")
	reg.Help(metHTTPRequests, "HTTP requests by path.")
	reg.Help(metEncodeErrs, "JSON responses that failed to encode (response abandoned mid-write).")
	reg.Help(metKernelGflops, "Measured GFLOP/s per Into-kernel family, cumulative over all executed plan steps.")
	reg.Help(metKernelBytes, "Measured activation-arena bytes/s per Into-kernel family, cumulative over all executed plan steps.")
	reg.Help(metKernelVariant, "Active micro-kernel variant per model and Into-kernel family (value is always 1; the variant label carries the information).")
	reg.Help(metDrift, "Measured per-row step seconds divided by the modelled IPU cost, per model and step (host/device scale; watch for change, not absolute level).")
	reg.Help(metPhaseSeconds, "Accumulated executor time per modelled IPU and BSP phase (compute/exchange/barrier_wait/bubble), extrapolated from the flight recorder's 1-in-N sampled batches by the sampling period.")
	reg.Help(metBubbleFraction, "Share of sampled per-IPU executor time spent in pipeline fill/drain bubbles (~0 for tensor-parallel and single-IPU models).")
}

// modelMetrics is the per-model instrument set, created once at install so
// the request hot path records by pointer without name lookups.
type modelMetrics struct {
	errors        *obs.Counter
	latency       *obs.Histogram
	modelled      *obs.Gauge
	factorization *obs.Gauge

	// Sharded-execution instruments; nil/empty for single-IPU models.
	shardCompute  []*obs.Histogram // indexed by modelled IPU
	shardExchange *obs.Histogram
}

func newModelMetrics(reg *obs.Registry, name string, shards int) *modelMetrics {
	lm := obs.L{Key: "model", Value: name}
	mm := &modelMetrics{
		errors:        reg.Counter(metErrors, lm),
		latency:       reg.Histogram(metLatency, obs.LatencyBuckets(), lm),
		modelled:      reg.Gauge(metModelledReq, lm),
		factorization: reg.Gauge(metFactorErr, lm),
	}
	if shards > 1 {
		mm.shardCompute = make([]*obs.Histogram, shards)
		for i := range mm.shardCompute {
			mm.shardCompute[i] = reg.Histogram(metShardCompute, obs.LatencyBuckets(),
				lm, obs.L{Key: "ipu", Value: strconv.Itoa(i)})
		}
		mm.shardExchange = reg.Histogram(metShardExchange, obs.LatencyBuckets(), lm)
	}
	return mm
}

// newBatcherMetrics wires the flush counters and batch-size histogram of
// one model's batcher. Built before the batcher so its goroutines see a
// fixed pointer.
func newBatcherMetrics(reg *obs.Registry, name string) *batcherMetrics {
	lm := obs.L{Key: "model", Value: name}
	return &batcherMetrics{
		flushFull:    reg.Counter(metFlush, lm, obs.L{Key: "reason", Value: "full"}),
		flushTimeout: reg.Counter(metFlush, lm, obs.L{Key: "reason", Value: "timeout"}),
		batchSize:    reg.Histogram(metBatchSize, obs.SizeBuckets(12), lm),
	}
}

// stepObs is the per-plan-step instrument set, built lazily on the first
// executed batch (step names come from the compiled plan) and shared by
// every batch after: one latency histogram per step plus the precomputed
// "step:<name>" span labels, so per-step recording allocates nothing.
// Step names are stable per model - fusion and sharding are decided at
// install time and do not depend on the batch bucket.
type stepObs struct {
	spanNames []string
	hists     []*obs.Histogram

	// variants[i] names the micro-kernel variant step i dispatched to at
	// compile time ("" for executors that predate the dispatcher or for
	// steps with no kernel family); kernels[i] is the step's Into-kernel
	// family name. Together they feed the kernel-variant gauge, the drift
	// report and the loadgen kernel table.
	variants []string
	kernels  []string

	// Cost-model drift accounting: modelled[i] is the modelled per-row
	// seconds of step i under the registry's topology (0 when the step has
	// no cost model), measured[i] the running measured nanos and rows. The
	// drift ratio — measured per-row seconds over modelled — is derived at
	// scrape/report time, so the batch hot path only pays two atomic adds
	// per step. The ratio's absolute level reflects host-Go-loops vs
	// modelled-IPU scale and is expected far from 1; what the detector
	// watches is the ratio *changing* between runs.
	modelled []float64
	measured []driftAcc
}

// driftAcc accumulates one step's measured execution: total nanoseconds
// and total rows, from which the per-row measured cost is derived.
type driftAcc struct {
	nanos atomic.Int64
	rows  atomic.Int64
}

// modelledPerRow prices each step of the executor at one row under the
// topology: the unsharded plan through the cost model's per-class compute
// rates, the sharded plan through its own modelled micro-step seconds
// (compute split + exchange) scaled down from MaxBatch.
func modelledPerRow(se steppedExecutor, topo shard.Topology) []float64 {
	switch ex := se.(type) {
	case *nn.Plan:
		return shard.PlanStepSeconds(ex, 1, topo)
	case *shard.ShardedPlan:
		ms := ex.ModelledStepSeconds()
		out := make([]float64, len(ms))
		inv := 1 / float64(ex.MaxBatch())
		for i, v := range ms {
			out[i] = v * inv
		}
		return out
	default:
		return nil
	}
}

// driftRatio is the scrape-time drift gauge value: measured per-row
// seconds over modelled, 0 until the step has executed at least once.
func driftRatio(acc *driftAcc, modelled float64) float64 {
	rows := acc.rows.Load()
	if rows == 0 || modelled <= 0 {
		return 0
	}
	return float64(acc.nanos.Load()) / float64(rows) / 1e9 / modelled
}

// steppedExecutor is the introspection surface both executor kinds
// (nn.Plan, shard.ShardedPlan) share: lowered step names and the measured
// wall time of each step of the most recent Execute.
type steppedExecutor interface {
	Executor
	Steps() []string
	LastStepNanos() []int64
}

// variantReporter is the kernel-dispatch introspection surface both
// executor kinds also share: which micro-kernel variant each step
// compiled to and which Into-kernel family it belongs to. Kept a
// separate interface so stepInstruments degrades gracefully for
// executors without it.
type variantReporter interface {
	StepVariant(i int) string
	StepKernel(i int) obs.Kernel
}

// stepInstruments returns the model's per-step instruments, building them
// from the executor's step list on first use. Duplicate step names (two
// identical layers) share one histogram series.
func (m *Model) stepInstruments(se steppedExecutor) *stepObs {
	if so := m.stepObs.Load(); so != nil {
		return so
	}
	names := se.Steps()
	so := &stepObs{
		spanNames: make([]string, len(names)),
		hists:     make([]*obs.Histogram, len(names)),
		variants:  make([]string, len(names)),
		kernels:   make([]string, len(names)),
		modelled:  modelledPerRow(se, m.topo),
		measured:  make([]driftAcc, len(names)),
	}
	if vr, ok := se.(variantReporter); ok {
		for i := range names {
			so.variants[i] = vr.StepVariant(i)
			so.kernels[i] = vr.StepKernel(i).String()
		}
	}
	if len(so.modelled) != len(names) {
		so.modelled = make([]float64, len(names))
	}
	for i, nm := range names {
		so.spanNames[i] = "step:" + nm
		so.hists[i] = m.obsReg.Histogram(metPlanStep, obs.LatencyBuckets(),
			obs.L{Key: "model", Value: m.spec.Name}, obs.L{Key: "step", Value: nm})
	}
	if !m.stepObs.CompareAndSwap(nil, so) {
		return m.stepObs.Load()
	}
	// Export the drift gauge for every step the cost model prices. The
	// gauges close over the winning stepObs' accumulators, so registration
	// happens only on the CAS winner.
	for i, nm := range names {
		if so.modelled[i] <= 0 {
			continue
		}
		acc, mod := &so.measured[i], so.modelled[i]
		m.obsReg.GaugeFunc(metDrift, func() float64 { return driftRatio(acc, mod) },
			obs.L{Key: "model", Value: m.spec.Name}, obs.L{Key: "step", Value: nm})
	}
	// Export the active variant per kernel family as a {model, kernel,
	// variant} gauge pinned to 1 — duplicate (family, variant) pairs share
	// one series via the registry's label dedup.
	for i := range names {
		if so.variants[i] == "" {
			continue
		}
		m.obsReg.Gauge(metKernelVariant,
			obs.L{Key: "model", Value: m.spec.Name},
			obs.L{Key: "kernel", Value: so.kernels[i]},
			obs.L{Key: "variant", Value: so.variants[i]}).Set(1)
	}
	m.installTimelineMeta(se, so)
	return so
}

// installTimelineMeta describes the executor to the model's flight
// recorder: step names, kernel families, variants and the cost model's
// per-row modelled phase seconds. First executor wins (SetMeta is
// first-write; step layout is identical across a model's batch
// buckets), so the recorder's events stay index-only.
func (m *Model) installTimelineMeta(se steppedExecutor, so *stepObs) {
	if m.timeline == nil {
		return
	}
	meta := &timeline.Meta{
		Model:    m.spec.Name,
		Shards:   1,
		Steps:    append([]string(nil), se.Steps()...),
		Kernels:  append([]string(nil), so.kernels...),
		Variants: append([]string(nil), so.variants...),
	}
	switch ex := se.(type) {
	case *nn.Plan:
		meta.ComputeSecPerRow = shard.PlanStepSeconds(ex, 1, m.topo)
	case *shard.ShardedPlan:
		meta.Strategy = ex.Strategy().String()
		meta.Shards = ex.Shards()
		meta.MicroBatches = ex.MicroBatches()
		comp, exch := ex.ModelledPhaseSeconds()
		inv := 1 / float64(ex.MaxBatch())
		meta.ComputeSecPerRow = scaled(comp, inv)
		meta.ExchangeSecPerRow = scaled(exch, inv)
	}
	m.timeline.SetMeta(meta)
}

// scaled returns v element-wise multiplied by s, as a fresh slice.
func scaled(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * s
	}
	return out
}

// KernelVariants returns the micro-kernel variant each Into-kernel
// family of the model's compiled steps dispatched to, keyed by family
// name. Nil until the first batch has executed (step instruments are
// built lazily); empty for executors without variant introspection.
func (m *Model) KernelVariants() map[string]string {
	so := m.stepObs.Load()
	if so == nil {
		return nil
	}
	out := map[string]string{}
	for i, v := range so.variants {
		if v == "" {
			continue
		}
		out[so.kernels[i]] = v
	}
	return out
}

// observeExec harvests the executor's measured timings after one batch:
// per-step wall time into the execution report (for the request traces),
// the step/shard histograms, and the cost-model drift accumulators (rows
// is the executed batch size the per-row measured cost divides by). Runs
// on the batcher worker, once per batch, allocation-free after the first
// batch builds the instruments.
func (m *Model) observeExec(ex Executor, info *execInfo, rows int) {
	se, ok := ex.(steppedExecutor)
	if !ok {
		return
	}
	nanos := se.LastStepNanos()
	n := len(nanos)
	if n > maxTraceSteps {
		n = maxTraceSteps
	}
	info.nsteps = n
	copy(info.stepNanos[:n], nanos[:n])
	if m.obsReg == nil {
		return
	}
	so := m.stepInstruments(se)
	for i := 0; i < n && i < len(so.hists); i++ {
		so.hists[i].Observe(float64(nanos[i]) / 1e9)
	}
	for i := 0; i < len(nanos) && i < len(so.measured); i++ {
		so.measured[i].nanos.Add(nanos[i])
		so.measured[i].rows.Add(int64(rows))
	}
	sp, ok := ex.(*shard.ShardedPlan)
	if !ok || m.mets == nil || len(m.mets.shardCompute) == 0 {
		return
	}
	comp := sp.LastComputeNanos()
	var slowest int64
	for i, c := range comp {
		if i < len(m.mets.shardCompute) {
			m.mets.shardCompute[i].Observe(float64(c) / 1e9)
		}
		if c > slowest {
			slowest = c
		}
	}
	// Wall time beyond the slowest shard's kernels is the host-side
	// sync/exchange proxy - the measured counterpart of the modelled
	// IPU-Link ExchangeSeconds in ProgramCost.
	if gap := sp.LastWallNanos() - slowest; gap > 0 && m.mets.shardExchange != nil {
		m.mets.shardExchange.Observe(float64(gap) / 1e9)
	}
}

// StepCostDrift is one row of the cost-model drift report: one plan
// step's modelled per-row cost next to its measured per-row wall-clock
// and their ratio.
type StepCostDrift struct {
	Step string `json:"step"`
	// Variant is the micro-kernel shape the step dispatched to at compile
	// time ("" for steps with no kernel family).
	Variant         string  `json:"variant,omitempty"`
	ModelledSeconds float64 `json:"modelled_s_per_row"`
	MeasuredSeconds float64 `json:"measured_s_per_row"`
	// Ratio is measured/modelled (0 until the step has executed). The
	// absolute level mixes host and modelled-device scales; drift
	// detection compares it across runs.
	Ratio float64 `json:"ratio"`
	Rows  int64   `json:"rows"`
}

// driftDist orders drift rows worst-first: distance from parity in log
// space (a step 10× over and one 10× under are equally far off). Rows
// without data sort last.
func driftDist(ratio float64) float64 {
	if ratio <= 0 {
		return -1
	}
	return math.Abs(math.Log(ratio))
}

// CostModelReport returns the model's per-step modelled-vs-measured cost
// comparison, worst offenders (largest |log ratio|) first. Nil until the
// first batch has executed (step instruments are built lazily).
func (m *Model) CostModelReport() []StepCostDrift {
	so := m.stepObs.Load()
	if so == nil {
		return nil
	}
	out := make([]StepCostDrift, 0, len(so.measured))
	for i := range so.measured {
		d := StepCostDrift{
			Step:            strings.TrimPrefix(so.spanNames[i], "step:"),
			Variant:         so.variants[i],
			ModelledSeconds: so.modelled[i],
			Rows:            so.measured[i].rows.Load(),
		}
		if d.Rows > 0 {
			d.MeasuredSeconds = float64(so.measured[i].nanos.Load()) / float64(d.Rows) / 1e9
		}
		if d.ModelledSeconds > 0 && d.MeasuredSeconds > 0 {
			d.Ratio = d.MeasuredSeconds / d.ModelledSeconds
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool { return driftDist(out[i].Ratio) > driftDist(out[j].Ratio) })
	return out
}

// traceSpans replays the batch timing block of one response into a
// sampled trace: queue wait, the batched execute, and one span per
// compiled-plan step (offsets chained inside the execute window).
func (m *Model) traceSpans(tr *obs.Trace, resp *response) {
	tr.Batch = resp.batch
	execOff := resp.execStart.Sub(tr.Start).Nanoseconds()
	tr.AddSpan("queue_wait", execOff-resp.queueNanos, resp.queueNanos)
	tr.AddSpan("execute", execOff, resp.execNanos)
	so := m.stepObs.Load()
	off := execOff
	for i := 0; i < resp.nsteps; i++ {
		name := "step"
		if so != nil && i < len(so.spanNames) {
			name = so.spanNames[i]
		}
		tr.AddSpan(name, off, resp.stepNanos[i])
		off += resp.stepNanos[i]
	}
}

// cacheMetrics is the program cache's instrument set; the compile-latency
// histogram is observed by Program.Cost after each compile.
type cacheMetrics struct {
	compile *obs.Histogram
}

// instrument exposes the cache's counters on the registry. The hit/miss/
// eviction totals read the cache's existing atomics at scrape time, so
// the lookup path pays no double bookkeeping. Must be called before the
// first Program is created so every entry carries the compile histogram.
func (c *ProgramCache) instrument(reg *obs.Registry) {
	reg.CounterFunc(metCacheHits, c.hits.Load)
	reg.CounterFunc(metCacheMisses, c.misses.Load)
	reg.CounterFunc(metCacheEvict, c.evictions.Load)
	reg.GaugeFunc(metCacheEntries, func() float64 {
		c.mu.Lock()
		n := len(c.entries)
		c.mu.Unlock()
		return float64(n)
	})
	c.mets = &cacheMetrics{compile: reg.Histogram(metCacheCompile, obs.LatencyBuckets())}
}
