package serve

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Metric family names exported by the serving stack. Everything carries
// the ipuserve_ prefix; per-model series add a model label, per-step and
// per-IPU series add step/ipu labels on top.
const (
	metRequests      = "ipuserve_requests_total"
	metErrors        = "ipuserve_errors_total"
	metLatency       = "ipuserve_request_seconds"
	metBatchSize     = "ipuserve_batch_size"
	metQueueDepth    = "ipuserve_batcher_queue_depth"
	metFlush         = "ipuserve_batcher_flush_total"
	metCacheHits     = "ipuserve_cache_hits_total"
	metCacheMisses   = "ipuserve_cache_misses_total"
	metCacheEvict    = "ipuserve_cache_evictions_total"
	metCacheEntries  = "ipuserve_cache_entries"
	metCacheCompile  = "ipuserve_cache_compile_seconds"
	metPlanStep      = "ipuserve_plan_step_seconds"
	metShardCompute  = "ipuserve_shard_compute_seconds"
	metShardExchange = "ipuserve_shard_exchange_seconds"
	metFactorErr     = "ipuserve_model_factorization_error"
	metModelledReq   = "ipuserve_modelled_per_request_seconds"
	metModels        = "ipuserve_models"
	metUptime        = "ipuserve_uptime_seconds"
	metHTTPRequests  = "ipuserve_http_requests_total"
	metEncodeErrs    = "ipuserve_http_json_encode_errors_total"
)

// registerHelp attaches the HELP strings once per registry so every
// scrape documents the families.
func registerHelp(reg *obs.Registry) {
	reg.Help(metRequests, "Requests served successfully, per model.")
	reg.Help(metErrors, "Requests that failed (bad input, stopped model, inference error), per model.")
	reg.Help(metLatency, "Host-side request latency from enqueue to response, per model.")
	reg.Help(metBatchSize, "Requests coalesced per micro-batch flush, per model.")
	reg.Help(metQueueDepth, "Assembled batches waiting for a worker, per model.")
	reg.Help(metFlush, "Micro-batch flushes by reason (full = MaxBatch reached, timeout = MaxDelay expired).")
	reg.Help(metCacheHits, "Program-cache lookups that rode an already-compiled program.")
	reg.Help(metCacheMisses, "Program-cache lookups that paid or waited on a compile.")
	reg.Help(metCacheEvict, "Cached programs dropped by model replacement or removal.")
	reg.Help(metCacheEntries, "Compiled programs currently cached.")
	reg.Help(metCacheCompile, "Wall time of modelled-IPU program compiles (cache misses).")
	reg.Help(metPlanStep, "Measured wall time of one compiled-plan step, per model and step.")
	reg.Help(metShardCompute, "Measured per-IPU kernel time of one sharded batch, per model and modelled IPU.")
	reg.Help(metShardExchange, "Sharded-batch wall time not covered by the slowest shard's compute - the measured sync/exchange proxy to compare against the modelled IPU-Link exchange.")
	reg.Help(metFactorErr, "Max per-layer relative Frobenius error of the factorization the model serves (0 = exact weights).")
	reg.Help(metModelledReq, "Modelled per-request seconds of the most recent batch bucket (compare against "+metLatency+").")
	reg.Help(metModels, "Models currently registered.")
	reg.Help(metUptime, "Seconds since the HTTP server started.")
	reg.Help(metHTTPRequests, "HTTP requests by path.")
	reg.Help(metEncodeErrs, "JSON responses that failed to encode (response abandoned mid-write).")
}

// modelMetrics is the per-model instrument set, created once at install so
// the request hot path records by pointer without name lookups.
type modelMetrics struct {
	errors        *obs.Counter
	latency       *obs.Histogram
	modelled      *obs.Gauge
	factorization *obs.Gauge

	// Sharded-execution instruments; nil/empty for single-IPU models.
	shardCompute  []*obs.Histogram // indexed by modelled IPU
	shardExchange *obs.Histogram
}

func newModelMetrics(reg *obs.Registry, name string, shards int) *modelMetrics {
	lm := obs.L{Key: "model", Value: name}
	mm := &modelMetrics{
		errors:        reg.Counter(metErrors, lm),
		latency:       reg.Histogram(metLatency, obs.LatencyBuckets(), lm),
		modelled:      reg.Gauge(metModelledReq, lm),
		factorization: reg.Gauge(metFactorErr, lm),
	}
	if shards > 1 {
		mm.shardCompute = make([]*obs.Histogram, shards)
		for i := range mm.shardCompute {
			mm.shardCompute[i] = reg.Histogram(metShardCompute, obs.LatencyBuckets(),
				lm, obs.L{Key: "ipu", Value: strconv.Itoa(i)})
		}
		mm.shardExchange = reg.Histogram(metShardExchange, obs.LatencyBuckets(), lm)
	}
	return mm
}

// newBatcherMetrics wires the flush counters and batch-size histogram of
// one model's batcher. Built before the batcher so its goroutines see a
// fixed pointer.
func newBatcherMetrics(reg *obs.Registry, name string) *batcherMetrics {
	lm := obs.L{Key: "model", Value: name}
	return &batcherMetrics{
		flushFull:    reg.Counter(metFlush, lm, obs.L{Key: "reason", Value: "full"}),
		flushTimeout: reg.Counter(metFlush, lm, obs.L{Key: "reason", Value: "timeout"}),
		batchSize:    reg.Histogram(metBatchSize, obs.SizeBuckets(12), lm),
	}
}

// stepObs is the per-plan-step instrument set, built lazily on the first
// executed batch (step names come from the compiled plan) and shared by
// every batch after: one latency histogram per step plus the precomputed
// "step:<name>" span labels, so per-step recording allocates nothing.
// Step names are stable per model - fusion and sharding are decided at
// install time and do not depend on the batch bucket.
type stepObs struct {
	spanNames []string
	hists     []*obs.Histogram
}

// steppedExecutor is the introspection surface both executor kinds
// (nn.Plan, shard.ShardedPlan) share: lowered step names and the measured
// wall time of each step of the most recent Execute.
type steppedExecutor interface {
	Executor
	Steps() []string
	LastStepNanos() []int64
}

// stepInstruments returns the model's per-step instruments, building them
// from the executor's step list on first use. Duplicate step names (two
// identical layers) share one histogram series.
func (m *Model) stepInstruments(se steppedExecutor) *stepObs {
	if so := m.stepObs.Load(); so != nil {
		return so
	}
	names := se.Steps()
	so := &stepObs{
		spanNames: make([]string, len(names)),
		hists:     make([]*obs.Histogram, len(names)),
	}
	for i, nm := range names {
		so.spanNames[i] = "step:" + nm
		so.hists[i] = m.obsReg.Histogram(metPlanStep, obs.LatencyBuckets(),
			obs.L{Key: "model", Value: m.spec.Name}, obs.L{Key: "step", Value: nm})
	}
	if !m.stepObs.CompareAndSwap(nil, so) {
		return m.stepObs.Load()
	}
	return so
}

// observeExec harvests the executor's measured timings after one batch:
// per-step wall time into the execution report (for the request traces)
// and the step/shard histograms. Runs on the batcher worker, once per
// batch, allocation-free after the first batch builds the instruments.
func (m *Model) observeExec(ex Executor, info *execInfo) {
	se, ok := ex.(steppedExecutor)
	if !ok {
		return
	}
	nanos := se.LastStepNanos()
	n := len(nanos)
	if n > maxTraceSteps {
		n = maxTraceSteps
	}
	info.nsteps = n
	copy(info.stepNanos[:n], nanos[:n])
	if m.obsReg == nil {
		return
	}
	so := m.stepInstruments(se)
	for i := 0; i < n && i < len(so.hists); i++ {
		so.hists[i].Observe(float64(nanos[i]) / 1e9)
	}
	sp, ok := ex.(*shard.ShardedPlan)
	if !ok || m.mets == nil || len(m.mets.shardCompute) == 0 {
		return
	}
	comp := sp.LastComputeNanos()
	var slowest int64
	for i, c := range comp {
		if i < len(m.mets.shardCompute) {
			m.mets.shardCompute[i].Observe(float64(c) / 1e9)
		}
		if c > slowest {
			slowest = c
		}
	}
	// Wall time beyond the slowest shard's kernels is the host-side
	// sync/exchange proxy - the measured counterpart of the modelled
	// IPU-Link ExchangeSeconds in ProgramCost.
	if gap := sp.LastWallNanos() - slowest; gap > 0 && m.mets.shardExchange != nil {
		m.mets.shardExchange.Observe(float64(gap) / 1e9)
	}
}

// traceSpans replays the batch timing block of one response into a
// sampled trace: queue wait, the batched execute, and one span per
// compiled-plan step (offsets chained inside the execute window).
func (m *Model) traceSpans(tr *obs.Trace, resp *response) {
	tr.Batch = resp.batch
	execOff := resp.execStart.Sub(tr.Start).Nanoseconds()
	tr.AddSpan("queue_wait", execOff-resp.queueNanos, resp.queueNanos)
	tr.AddSpan("execute", execOff, resp.execNanos)
	so := m.stepObs.Load()
	off := execOff
	for i := 0; i < resp.nsteps; i++ {
		name := "step"
		if so != nil && i < len(so.spanNames) {
			name = so.spanNames[i]
		}
		tr.AddSpan(name, off, resp.stepNanos[i])
		off += resp.stepNanos[i]
	}
}

// cacheMetrics is the program cache's instrument set; the compile-latency
// histogram is observed by Program.Cost after each compile.
type cacheMetrics struct {
	compile *obs.Histogram
}

// instrument exposes the cache's counters on the registry. The hit/miss/
// eviction totals read the cache's existing atomics at scrape time, so
// the lookup path pays no double bookkeeping. Must be called before the
// first Program is created so every entry carries the compile histogram.
func (c *ProgramCache) instrument(reg *obs.Registry) {
	reg.CounterFunc(metCacheHits, c.hits.Load)
	reg.CounterFunc(metCacheMisses, c.misses.Load)
	reg.CounterFunc(metCacheEvict, c.evictions.Load)
	reg.GaugeFunc(metCacheEntries, func() float64 {
		c.mu.Lock()
		n := len(c.entries)
		c.mu.Unlock()
		return float64(n)
	})
	c.mets = &cacheMetrics{compile: reg.Histogram(metCacheCompile, obs.LatencyBuckets())}
}
