// Package serve is the inference-serving subsystem: it turns the trainable
// SHL models of internal/nn into concurrently-callable predictors.
//
// Four pieces compose the serving path:
//
//   - a Registry that builds and versions servable models from the existing
//     constructors (nn.BuildSHL, nn.BuildSHLPixelfly) behind the
//     thread-safe Predictor interface;
//   - the read-only forward pass (nn.Sequential.Infer) that lets any number
//     of goroutines share one model's weights;
//   - a dynamic micro-batcher (Batcher) that coalesces concurrent requests
//     into one tensor.Matrix batch, because a batched butterfly multiply
//     amortizes the O(N log N) factor sweeps across the whole batch;
//   - a compiled-program cache (ProgramCache) that memoizes ipu.Compile
//     results per (model, batch size), so every response can carry the
//     modelled IPU latency and memory of the batch it rode in without
//     recompiling.
//
// Server exposes the whole thing over an HTTP JSON API; RunLoad is the
// built-in load generator cmd/ipuserve uses to compare the serving
// throughput of dense vs. structured methods head-to-head.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fft"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/pixelfly"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// ErrStopped is returned by Predict once a model's batcher has been shut
// down (the model was replaced or the registry closed).
var ErrStopped = errors.New("serve: model stopped")

// ErrBadInput marks client mistakes (wrong feature width); the HTTP layer
// maps it to 400 instead of 500.
var ErrBadInput = errors.New("serve: bad input")

// ModelSpec describes a servable model to build.
type ModelSpec struct {
	Name    string    // registry key; non-empty
	Method  nn.Method // Table 4 row to build
	N       int       // layer width (power of two)
	Classes int       // output classes
	Seed    int64     // weight-init seed, so a spec rebuilds reproducibly

	// Pixelfly optionally overrides the paper's pixelfly configuration
	// (only consulted when Method == nn.Pixelfly; its N must equal N).
	Pixelfly *pixelfly.Config
}

func (s ModelSpec) validate() error {
	if s.Name == "" {
		return errors.New("serve: model name must be non-empty")
	}
	if s.N <= 0 || !fft.IsPowerOfTwo(s.N) {
		return fmt.Errorf("serve: model %q: N=%d must be a positive power of two", s.Name, s.N)
	}
	if s.Classes <= 0 {
		return fmt.Errorf("serve: model %q: classes=%d must be positive", s.Name, s.Classes)
	}
	if s.Pixelfly != nil {
		if s.Method != nn.Pixelfly {
			return fmt.Errorf("serve: model %q: pixelfly config given for method %v", s.Name, s.Method)
		}
		if s.Pixelfly.N != s.N {
			return fmt.Errorf("serve: model %q: pixelfly config N=%d != spec N=%d", s.Name, s.Pixelfly.N, s.N)
		}
		if err := s.Pixelfly.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// pixelflyConfig returns the effective pixelfly configuration of the spec.
func (s ModelSpec) pixelflyConfig() pixelfly.Config {
	if s.Pixelfly != nil {
		return *s.Pixelfly
	}
	return nn.PaperPixelflyConfig(s.N)
}

// buildNet constructs the spec's network, converting constructor panics
// (e.g. an invalid pixelfly geometry) into errors.
func buildNet(spec ModelSpec) (net *nn.Sequential, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: building %q: %v", spec.Name, r)
		}
	}()
	rng := newRNG(spec.Seed)
	if spec.Method == nn.Pixelfly && spec.Pixelfly != nil {
		return nn.BuildSHLPixelfly(*spec.Pixelfly, spec.Classes, rng)
	}
	return nn.BuildSHL(spec.Method, spec.N, spec.Classes, rng), nil
}

// ModelInfo is the descriptive snapshot of a registered model.
type ModelInfo struct {
	Name    string `json:"name"`
	Method  string `json:"method"`
	N       int    `json:"n"`
	Classes int    `json:"classes"`
	Params  int    `json:"params"`
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
}

// Prediction is the result of one served request.
type Prediction struct {
	Model   string    `json:"model"`
	Method  string    `json:"method"`
	Version int       `json:"version"`
	Scores  []float32 `json:"scores"`
	ArgMax  int       `json:"argmax"`

	// BatchSize is the number of requests coalesced into the batch this
	// prediction rode in; LatencySeconds is the measured host-side time
	// from enqueue to response.
	BatchSize      int     `json:"batch_size"`
	LatencySeconds float64 `json:"latency_s"`

	// IPU is the modelled cost of executing this request's batch (rounded
	// up to the cached power-of-two bucket) on the device model; nil when
	// the program could not be compiled (e.g. tile OOM).
	IPU *ProgramCost `json:"ipu,omitempty"`
}

// Predictor is a thread-safe inference handle: any number of goroutines
// may call Predict concurrently.
type Predictor interface {
	Predict(ctx context.Context, features []float32) (Prediction, error)
	Info() ModelInfo
}

// Model is a servable model: immutable weights plus the micro-batcher and
// program cache wiring. It implements Predictor.
type Model struct {
	spec    ModelSpec
	version int
	net     *nn.Sequential
	params  int

	// methodLabel is what Info/Prediction report as the method; for
	// spec-built models it is the Method's name, for compressed models it
	// describes the compressed layout (e.g. "compressed/lowrank-r4").
	methodLabel string
	// workload builds the IPU workload that prices this model; installed
	// once at registration (layout-aware for compressed models,
	// spec-derived otherwise) so the batch hot path creates no closures.
	workload workloadBuilder

	batcher *Batcher
	cache   *ProgramCache
	topo    shard.Topology
	shards  int

	// factorErr is the max per-layer relative factorization error of the
	// weights the model serves (0 for exactly-built models) - the accuracy
	// side of the paper's memory/accuracy trade, surfaced in /stats and as
	// a gauge.
	factorErr float64

	// Observability wiring, installed by the registry: the metric registry
	// (for the lazily built per-step instruments), the per-model
	// instruments, the request tracer, and the per-step instrument set.
	// All nil/zero for models built outside a registry.
	obsReg  *obs.Registry
	tracer  *obs.Tracer
	mets    *modelMetrics
	stepObs atomic.Pointer[stepObs]

	// kstats is the registry-wide per-kernel accounting sink, installed on
	// every pooled plan before execution (nil outside a registry).
	kstats *obs.KernelStats

	// timeline is the model's BSP phase flight recorder, installed on
	// every pooled plan before execution like kstats; it samples one
	// batch in N into the /debug/timeline ring and the phase gauges.
	// Nil when disabled (or outside a registry) — then executors emit no
	// events at all.
	timeline *timeline.Recorder

	// pprofCtx is the precomputed pprof-labeled context ("model" label)
	// runBatch pins on the worker goroutine around plan execution, and
	// pprofBase the unlabeled context it restores; both nil unless
	// Options.PprofLabels is set, keeping the default hot path untouched.
	pprofCtx  context.Context
	pprofBase context.Context

	// readiness memoizes the /healthz plan-compile probe: nil until the
	// first probe, then the cached verdict (a model's plan compilability
	// does not change after install).
	readiness atomic.Pointer[readyState]

	// retired is set when the model is replaced or removed; it stops
	// late ModelledCost calls from resurrecting evicted cache entries.
	retired atomic.Bool

	served atomic.Int64
	lat    *latencyRing
}

var _ Predictor = (*Model)(nil)

// Info implements Predictor.
func (m *Model) Info() ModelInfo {
	return ModelInfo{
		Name:    m.spec.Name,
		Method:  m.methodLabel,
		N:       m.spec.N,
		Classes: m.spec.Classes,
		Params:  m.params,
		Version: m.version,
		Shards:  m.shards,
	}
}

// Spec returns the spec the model was built from.
func (m *Model) Spec() ModelSpec { return m.spec }

// Shards returns how many modelled IPUs the model serves on.
func (m *Model) Shards() int { return m.shards }

// Predict implements Predictor: the request is coalesced with concurrent
// ones into a micro-batch, executed on the shared read-only weights, and
// annotated with the modelled IPU cost of its batch. Sampled requests
// (via the registry's tracer, or a trace already attached to ctx by the
// HTTP layer) additionally record queue-wait, execute and per-step spans.
func (m *Model) Predict(ctx context.Context, features []float32) (Prediction, error) {
	if len(features) != m.spec.N {
		if m.mets != nil {
			m.mets.errors.Inc()
		}
		return Prediction{}, fmt.Errorf("%w: model %q expects %d features, got %d",
			ErrBadInput, m.spec.Name, m.spec.N, len(features))
	}
	// The HTTP layer owns (and finishes) traces it attached to the
	// context; direct callers get one sampled here and finished here.
	// When an upstream layer already made the sampling decision —
	// sampled or not — respect it rather than drawing from the shared
	// counter a second time for the same request.
	tr := obs.TraceFrom(ctx)
	owned := false
	if tr == nil && m.tracer != nil && !obs.TraceDecided(ctx) {
		if tr = m.tracer.Sample(m.spec.Name); tr != nil {
			owned = true
		}
	}
	start := time.Now()
	resp, err := m.batcher.do(ctx, features)
	if err == nil {
		err = resp.err
	}
	if err != nil {
		if m.mets != nil {
			m.mets.errors.Inc()
		}
		if tr != nil {
			tr.Error = err.Error()
			if owned {
				m.tracer.Finish(tr)
			}
		}
		return Prediction{}, err
	}
	elapsed := time.Since(start).Seconds()
	m.served.Add(1)
	m.lat.add(elapsed)
	if m.mets != nil {
		m.mets.latency.Observe(elapsed)
	}
	if tr != nil {
		m.traceSpans(tr, &resp)
	}

	p := Prediction{
		Model:          m.spec.Name,
		Method:         m.methodLabel,
		Version:        m.version,
		Scores:         resp.scores,
		ArgMax:         stats.ArgMax(resp.scores),
		BatchSize:      resp.batch,
		LatencySeconds: elapsed,
	}
	if tr != nil {
		costStart := time.Now()
		cost, cerr := m.ModelledCost(resp.batch)
		tr.AddSpanAt("cost_lookup", costStart, time.Since(costStart))
		if cerr == nil {
			p.IPU = cost
		}
		if owned {
			m.tracer.Finish(tr)
		}
	} else if cost, cerr := m.ModelledCost(resp.batch); cerr == nil {
		p.IPU = cost
	}
	if p.IPU != nil && m.mets != nil {
		m.mets.modelled.Set(p.IPU.PerRequestSeconds)
	}
	return p, nil
}

// ModelledCost returns the cached modelled IPU cost of executing a batch
// of the given size (rounded up to its power-of-two cache bucket). This
// per-request lookup is the one that feeds the cache hit/miss statistics.
func (m *Model) ModelledCost(batch int) (*ProgramCost, error) {
	p, err := m.cache.Program(m.spec.Name, m.version, nextPow2(batch), m.shards, m.net, m.workload)
	if err != nil {
		return nil, err
	}
	// A Predict racing a replace/remove could have re-created an entry
	// the registry just evicted; checking retirement after the lookup
	// guarantees either the retire's eviction saw our entry or we see the
	// retirement and evict our own resurrection — no permanent leak.
	if m.retired.Load() {
		m.cache.Evict(m.spec.Name, m.version)
		return nil, ErrStopped
	}
	return p.Cost()
}

// runBatch is the micro-batcher's inference function: it executes the
// batch on a pooled compiled plan (allocation-free at steady state except
// the result copy handed to responses) and falls back to the generic
// read-only forward pass if the plan path is unavailable. The executor's
// measured per-step timings are harvested into info (and the per-step
// histograms) before the plan returns to the pool; the fallback path
// leaves info empty.
func (m *Model) runBatch(x *tensor.Matrix, info *execInfo) *tensor.Matrix {
	if m.pprofCtx != nil {
		// Pin the model name on the worker goroutine for CPU-profile
		// attribution around Plan.Execute; restored before the response
		// fan-out so unrelated work is not mislabeled.
		pprof.SetGoroutineLabels(m.pprofCtx)
		defer pprof.SetGoroutineLabels(m.pprofBase)
	}
	prog, err := m.cache.programQuiet(m.spec.Name, m.version, nextPow2(x.Rows), m.shards, m.net, m.workload)
	if err == nil {
		if pl, perr := prog.GetPlan(); perr == nil {
			if m.kstats != nil {
				if ks, ok := pl.(kernelSink); ok {
					ks.SetKernelStats(m.kstats)
				}
			}
			if m.timeline != nil {
				if ts, ok := pl.(timelineSink); ok {
					ts.SetTimeline(m.timeline)
				}
			}
			if m.pprofCtx != nil {
				if ps, ok := pl.(pprofSink); ok {
					// Sharded executors refine the model label with a
					// per-shard ipu=<k> on their goroutines (idempotent
					// per context, so repeating it every batch is free).
					ps.SetPprofLabels(m.pprofCtx)
				}
			}
			y, xerr := pl.Execute(x)
			if xerr == nil {
				// Copy out before returning the plan: responses alias rows
				// of the returned matrix, and the plan's buffers are
				// recycled by the next worker that draws it from the pool.
				out := tensor.New(y.Rows, y.Cols)
				copy(out.Data, y.Data)
				m.observeExec(pl, info, x.Rows)
				prog.PutPlan(pl)
				return out
			}
			prog.PutPlan(pl)
		}
	}
	return m.net.Infer(x)
}

// kernelSink is the per-kernel accounting hook both executor kinds
// (nn.Plan, shard.ShardedPlan) expose.
type kernelSink interface {
	SetKernelStats(*obs.KernelStats)
}

// timelineSink is the flight-recorder hook both executor kinds expose.
type timelineSink interface {
	SetTimeline(*timeline.Recorder)
}

// pprofSink is the per-shard pprof label hook sharded executors expose.
type pprofSink interface {
	SetPprofLabels(context.Context)
}

// Timeline returns the model's BSP phase flight recorder (nil when
// timelines are disabled or the model was built outside a registry).
func (m *Model) Timeline() *timeline.Recorder { return m.timeline }

// readyState is the memoized verdict of one readiness probe.
type readyState struct {
	ready bool
	err   string
}

// Ready reports whether the model can serve: registered, not retired, and
// its compiled plan materializes at the smallest batch bucket. The probe
// compiles through the shared program cache once and memoizes the verdict,
// so health checks stay cheap; a compile failure surfaces its error.
func (m *Model) Ready() (bool, string) {
	if m.retired.Load() {
		return false, "model stopped"
	}
	if rs := m.readiness.Load(); rs != nil {
		return rs.ready, rs.err
	}
	rs := &readyState{}
	prog, err := m.cache.programQuiet(m.spec.Name, m.version, 1, m.shards, m.net, m.workload)
	if err != nil {
		rs.err = err.Error()
	} else if pl, perr := prog.GetPlan(); perr != nil {
		rs.err = perr.Error()
	} else {
		prog.PutPlan(pl)
		rs.ready = true
	}
	m.readiness.Store(rs)
	return rs.ready, rs.err
}

// Stats returns the model's serving counters.
func (m *Model) Stats() ModelStats {
	return ModelStats{
		Info:               m.Info(),
		Served:             m.served.Load(),
		Batcher:            m.batcher.Stats(),
		Latency:            stats.Summarize(m.lat.snapshot()),
		FactorizationError: m.factorErr,
	}
}

// ModelStats is the per-model block of the /stats endpoint.
type ModelStats struct {
	Info    ModelInfo     `json:"info"`
	Served  int64         `json:"served"`
	Batcher BatcherStats  `json:"batcher"`
	Latency stats.Summary `json:"latency_s"`

	// FactorizationError is the max per-layer relative Frobenius error of
	// the served weights (non-zero only for compressed models).
	FactorizationError float64 `json:"factorization_error,omitempty"`
}

// stop retires the model and shuts its batcher down; in-flight Predicts
// get ErrStopped. Retirement must precede the registry's cache eviction so
// ModelledCost's post-lookup check is race-free.
func (m *Model) stop() {
	m.retired.Store(true)
	m.batcher.Stop()
}

// prevPow2 rounds n down to a power of two (n ≥ 1) — the shard counts the
// partitioner accepts.
func prevPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// nextPow2 rounds n up to the next power of two, bucketing cache keys so
// the compiled-program cache holds O(log MaxBatch) programs per model
// instead of one per distinct coalesced batch size.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// latencyRing keeps the most recent request latencies (seconds) for the
// percentile report, bounded so an arbitrarily long-lived server does not
// grow without bound.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]float64, n)} }

func (l *latencyRing) add(v float64) {
	l.mu.Lock()
	l.buf[l.next] = v
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

func (l *latencyRing) snapshot() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return append([]float64(nil), l.buf...)
	}
	return append([]float64(nil), l.buf[:l.next]...)
}
