package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/stats"
	"repro/internal/tensor"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(Options{
		Batcher: BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2},
	})
	t.Cleanup(r.Close)
	return r
}

func spec(name string, m nn.Method) ModelSpec {
	return ModelSpec{Name: name, Method: m, N: 64, Classes: 10, Seed: 42}
}

// TestPredictMatchesDirectInfer checks the whole serving path — registry,
// batcher, response splitting — returns exactly what a direct forward pass
// of the same weights would.
func TestPredictMatchesDirectInfer(t *testing.T) {
	reg := testRegistry(t)
	for _, method := range nn.AllMethods {
		sp := spec("m-"+method.String(), method)
		m, err := reg.Register(sp)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}

		// The same constructor sequence yields the same weights.
		ref := nn.BuildSHL(method, sp.N, sp.Classes, rand.New(rand.NewSource(sp.Seed)))
		x := tensor.New(1, sp.N)
		x.FillRandom(rand.New(rand.NewSource(5)), 1)
		want := ref.Forward(x)

		pred, err := m.Predict(context.Background(), x.Row(0))
		if err != nil {
			t.Fatalf("%v: Predict: %v", method, err)
		}
		if len(pred.Scores) != sp.Classes {
			t.Fatalf("%v: %d scores, want %d", method, len(pred.Scores), sp.Classes)
		}
		for j, v := range pred.Scores {
			if v != want.At(0, j) {
				t.Fatalf("%v: score[%d] = %v, want %v", method, j, v, want.At(0, j))
			}
		}
		if pred.ArgMax != stats.ArgMax(want.Row(0)) {
			t.Fatalf("%v: argmax %d, want %d", method, pred.ArgMax, stats.ArgMax(want.Row(0)))
		}
		if pred.BatchSize < 1 {
			t.Fatalf("%v: batch size %d", method, pred.BatchSize)
		}
		if pred.IPU == nil {
			t.Fatalf("%v: missing modelled IPU cost", method)
		}
		if pred.IPU.LatencySeconds <= 0 || pred.IPU.PeakTileBytes <= 0 {
			t.Fatalf("%v: degenerate IPU cost %+v", method, pred.IPU)
		}
	}
}

func TestRegisterVersioning(t *testing.T) {
	reg := testRegistry(t)
	m1, err := reg.Register(spec("a", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Info().Version != 1 {
		t.Fatalf("first version = %d, want 1", m1.Info().Version)
	}
	m2, err := reg.Register(spec("a", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Info().Version != 2 {
		t.Fatalf("second version = %d, want 2", m2.Info().Version)
	}
	// The replaced model is stopped.
	if _, err := m1.Predict(context.Background(), make([]float32, 64)); err != ErrStopped {
		t.Fatalf("old model Predict = %v, want ErrStopped", err)
	}
	// The registry serves the new one.
	got, ok := reg.Get("a")
	if !ok || got != m2 {
		t.Fatal("Get did not return the replacement model")
	}
	// Remove + re-register continues the version sequence.
	if !reg.Remove("a") {
		t.Fatal("Remove returned false for a registered model")
	}
	m3, err := reg.Register(spec("a", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	if m3.Info().Version != 3 {
		t.Fatalf("post-remove version = %d, want 3", m3.Info().Version)
	}
}

// TestReplaceAndRemoveEvictPrograms pins the cache-lifecycle contract: a
// replaced or removed model's compiled programs (which hold the whole
// network plus plan pools) must leave the cache, so redeploy cycles don't
// grow process memory without bound.
func TestReplaceAndRemoveEvictPrograms(t *testing.T) {
	reg := testRegistry(t)
	sp := spec("evict", nn.Butterfly)
	m1, err := reg.Register(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Predict(context.Background(), make([]float32, sp.N)); err != nil {
		t.Fatal(err)
	}
	entriesV1 := reg.CacheStats().Entries
	if entriesV1 == 0 {
		t.Fatal("no cache entries after first predict")
	}

	m2, err := reg.Register(sp) // replace: v1's programs must be evicted
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Predict(context.Background(), make([]float32, sp.N)); err != nil {
		t.Fatal(err)
	}
	if got := reg.CacheStats().Entries; got > entriesV1 {
		t.Fatalf("entries grew from %d to %d across a replace; old version leaked", entriesV1, got)
	}

	if !reg.Remove("evict") {
		t.Fatal("Remove returned false")
	}
	if got := reg.CacheStats().Entries; got != 0 {
		t.Fatalf("entries = %d after Remove, want 0", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	reg := testRegistry(t)
	bad := []ModelSpec{
		{Name: "", Method: nn.Baseline, N: 64, Classes: 10},
		{Name: "x", Method: nn.Baseline, N: 63, Classes: 10},
		{Name: "x", Method: nn.Baseline, N: 0, Classes: 10},
		{Name: "x", Method: nn.Baseline, N: 64, Classes: 0},
	}
	for i, sp := range bad {
		if _, err := reg.Register(sp); err == nil {
			t.Errorf("case %d: Register(%+v) succeeded, want error", i, sp)
		}
	}
}

func TestListSortedAndComplete(t *testing.T) {
	reg := testRegistry(t)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := reg.Register(spec(name, nn.LowRank)); err != nil {
			t.Fatal(err)
		}
	}
	infos := reg.List()
	if len(infos) != 3 {
		t.Fatalf("List returned %d models, want 3", len(infos))
	}
	wantOrder := []string{"alpha", "mid", "zeta"}
	for i, info := range infos {
		if info.Name != wantOrder[i] {
			t.Fatalf("List order %v, want %v", infos, wantOrder)
		}
		if info.Params <= 0 {
			t.Fatalf("%s: params = %d", info.Name, info.Params)
		}
	}
}

func TestPredictWrongWidth(t *testing.T) {
	reg := testRegistry(t)
	m, err := reg.Register(spec("w", nn.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(context.Background(), make([]float32, 10)); err == nil {
		t.Fatal("Predict with wrong feature width succeeded")
	}
}

// TestConcurrentPredictSharedModel is the subsystem's core concurrency
// claim, meaningful under -race: many goroutines share one model.
func TestConcurrentPredictSharedModel(t *testing.T) {
	reg := testRegistry(t)
	m, err := reg.Register(spec("hot", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	features := make([]float32, 64)
	for i := range features {
		features[i] = float32(i) / 64
	}
	want, err := m.Predict(context.Background(), features)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := m.Predict(context.Background(), features)
				if err != nil {
					t.Errorf("Predict: %v", err)
					return
				}
				for j := range want.Scores {
					if got.Scores[j] != want.Scores[j] {
						t.Errorf("concurrent Predict diverged at score %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := m.Stats()
	if st.Served != workers*iters+1 {
		t.Fatalf("served = %d, want %d", st.Served, workers*iters+1)
	}
	if st.Latency.Count == 0 || st.Latency.P99 < st.Latency.P50 {
		t.Fatalf("latency summary inconsistent: %+v", st.Latency)
	}
}
