package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// doubler is a trivially-checkable inference function that records the
// batch sizes it was called with.
type doubler struct {
	mu    sync.Mutex
	sizes []int
	delay time.Duration
}

func (d *doubler) run(x *tensor.Matrix) *tensor.Matrix {
	d.mu.Lock()
	d.sizes = append(d.sizes, x.Rows)
	d.mu.Unlock()
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = 2 * v
	}
	return out
}

func (d *doubler) batchSizes() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.sizes...)
}

func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	d := &doubler{delay: time.Millisecond}
	b := NewBatcher(4, BatcherConfig{MaxBatch: 16, MaxDelay: 20 * time.Millisecond, Workers: 1}, d.run)
	defer b.Stop()

	const requests = 64
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := []float32{float32(i), 1, 2, 3}
			scores, batch, err := b.Do(context.Background(), f)
			if err != nil {
				errs <- err
				return
			}
			if batch < 1 || batch > 16 {
				t.Errorf("batch size %d outside [1,16]", batch)
			}
			if len(scores) != 4 || scores[0] != 2*float32(i) || scores[3] != 6 {
				t.Errorf("request %d: wrong scores %v", i, scores)
			}
			if cap(scores) != len(scores) {
				t.Errorf("request %d: scores capacity %d > len %d; append would clobber a neighbouring row",
					i, cap(scores), len(scores))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := b.Stats()
	if s.Requests != requests {
		t.Fatalf("stats.Requests = %d, want %d", s.Requests, requests)
	}
	if s.Batches >= requests {
		t.Fatalf("no coalescing: %d batches for %d requests", s.Batches, requests)
	}
	if s.AvgBatch <= 1 {
		t.Fatalf("avg batch %v, want > 1", s.AvgBatch)
	}
	for _, sz := range d.batchSizes() {
		if sz > 16 {
			t.Fatalf("batch of %d exceeds MaxBatch 16", sz)
		}
	}
}

func TestBatcherFlushesOnMaxDelay(t *testing.T) {
	d := &doubler{}
	b := NewBatcher(1, BatcherConfig{MaxBatch: 1024, MaxDelay: 5 * time.Millisecond}, d.run)
	defer b.Stop()

	start := time.Now()
	scores, batch, err := b.Do(context.Background(), []float32{21})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lone request waited %v; MaxDelay flush is broken", elapsed)
	}
	if batch != 1 || scores[0] != 42 {
		t.Fatalf("got batch=%d scores=%v, want batch=1 scores=[42]", batch, scores)
	}
}

func TestBatcherStop(t *testing.T) {
	d := &doubler{}
	b := NewBatcher(1, BatcherConfig{}, d.run)
	b.Stop()
	if _, _, err := b.Do(context.Background(), []float32{1}); err != ErrStopped {
		t.Fatalf("Do after Stop = %v, want ErrStopped", err)
	}
	b.Stop() // idempotent
}

func TestBatcherContextCancelled(t *testing.T) {
	d := &doubler{}
	b := NewBatcher(1, BatcherConfig{}, d.run)
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := b.Do(ctx, []float32{1}); err != context.Canceled {
		t.Fatalf("Do with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestBatcherRecoversInferencePanic(t *testing.T) {
	b := NewBatcher(1, BatcherConfig{MaxDelay: time.Millisecond},
		func(*tensor.Matrix) *tensor.Matrix { panic("boom") })
	defer b.Stop()
	if _, _, err := b.Do(context.Background(), []float32{1}); err == nil {
		t.Fatal("expected an error from a panicking inference function")
	}
	// The worker pool must survive for the next request.
	if _, _, err := b.Do(context.Background(), []float32{1}); err == nil {
		t.Fatal("expected an error on the second request too")
	}
}

// TestBatcherCancelMidBatchUnderLoad races context cancellation against
// in-flight batch execution: half the callers cancel while their batch is
// running, half wait it out. The abandonment arbitration must keep every
// surviving response correct (no stale or cross-wired rows from recycled
// requests) and settle every request without deadlock — the regression
// for the leak where a cancelled caller left its pooled request to a
// worker that then blocked or delivered into the void. Run with -race.
func TestBatcherCancelMidBatchUnderLoad(t *testing.T) {
	d := &doubler{delay: 2 * time.Millisecond}
	b := NewBatcher(4, BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2}, d.run)
	defer b.Stop()

	const rounds = 40
	const callers = 16
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				f := []float32{float32(round*callers + i), 1, 2, 3}
				if i%2 == 0 {
					// Cancel while the batch is (likely) executing.
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					defer cancel()
					// A nil error means the worker won the arbitration and
					// delivered before the deadline fired — also fine.
					_, _, err := b.Do(ctx, f)
					if err != nil && err != context.DeadlineExceeded && err != context.Canceled {
						t.Errorf("cancelled Do: unexpected error %v", err)
					}
					return
				}
				scores, _, err := b.Do(context.Background(), f)
				if err != nil {
					t.Errorf("surviving Do: %v", err)
					return
				}
				if len(scores) != 4 || scores[0] != 2*f[0] {
					t.Errorf("surviving Do got scores %v for features %v", scores, f)
				}
			}(i)
		}
		wg.Wait()
	}
}
