package serve

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/factorize"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// plantWeight overwrites the first-layer weight of a registered dense
// model so the compression tests control how compressible it is.
func plantWeight(m *Model, w *tensor.Matrix) { m.net.Layers[0].(*nn.Dense).W = w }

func predictScores(t *testing.T, m *Model, features []float32) []float32 {
	t.Helper()
	p, err := m.Predict(context.Background(), features)
	if err != nil {
		t.Fatal(err)
	}
	return p.Scores
}

func scoresRelErr(a, b []float32) float64 {
	var diff, norm float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		diff += d * d
		norm += float64(a[i]) * float64(a[i])
	}
	return math.Sqrt(diff / norm)
}

func TestRegisterCompressedLowRankServesWithinTolerance(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close()
	src, err := reg.Register(spec("shl-dense", nn.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	// Plant a rank-4 first layer: the eps=0.05 factorization recovers it
	// almost exactly at a fraction of the parameters.
	rng := rand.New(rand.NewSource(20))
	u := tensor.GaussianMatrix(src.spec.N, 4, rng)
	v := tensor.GaussianMatrix(4, src.spec.N, rng)
	plantWeight(src, tensor.MatMul(u, v))

	const eps = 0.05
	comp, reports, err := reg.RegisterCompressed("shl-lr-eps0.05", "shl-dense",
		nn.CompressOptions{Tolerance: eps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Kind != factorize.KindLowRank {
		t.Fatalf("first layer kind = %v, want lowrank", reports[0].Kind)
	}
	if comp.Info().Params >= src.Info().Params {
		t.Fatalf("compressed params %d not below dense %d", comp.Info().Params, src.Info().Params)
	}
	if !strings.HasPrefix(comp.Info().Method, "compressed/lowrank") {
		t.Fatalf("method label %q", comp.Info().Method)
	}

	// Served predictions stay within the compression tolerance.
	features := make([]float32, src.spec.N)
	for i := range features {
		features[i] = rng.Float32()
	}
	want := predictScores(t, src, features)
	got := predictScores(t, comp, features)
	if e := scoresRelErr(want, got); e > eps {
		t.Fatalf("served predictions deviate by %v (eps %v)", e, eps)
	}

	// The compressed variant must report strictly lower modelled IPU
	// memory than the dense original at the same batch size.
	denseCost, err := src.ModelledCost(8)
	if err != nil {
		t.Fatal(err)
	}
	compCost, err := comp.ModelledCost(8)
	if err != nil {
		t.Fatal(err)
	}
	if compCost.DeviceBytes >= denseCost.DeviceBytes {
		t.Fatalf("compressed device bytes %d not below dense %d",
			compCost.DeviceBytes, denseCost.DeviceBytes)
	}
	if !strings.HasPrefix(compCost.Workload, "lowrank") {
		t.Fatalf("compressed workload %q priced as the wrong layout", compCost.Workload)
	}
}

func TestRegisterCompressedButterflyLayout(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close()
	src, err := reg.Register(spec("shl-dense", nn.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	bf := butterfly.New(src.spec.N, butterfly.Dense2x2, rng)
	bf.Perm = nil
	plantWeight(src, bf.Dense().Transpose())

	comp, reports, err := reg.RegisterCompressed("shl-bf-eps0.05", "shl-dense",
		nn.CompressOptions{Tolerance: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Kind != factorize.KindButterfly {
		t.Fatalf("first layer kind = %v, want butterfly", reports[0].Kind)
	}
	if comp.Info().Method != "compressed/butterfly" {
		t.Fatalf("method label %q", comp.Info().Method)
	}
	cost, err := comp.ModelledCost(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cost.Workload, "butterflymm") && !strings.Contains(cost.Workload, "butterfly") {
		t.Fatalf("workload %q not priced as butterfly", cost.Workload)
	}
	denseCost, err := src.ModelledCost(4)
	if err != nil {
		t.Fatal(err)
	}
	if cost.DeviceBytes >= denseCost.DeviceBytes {
		t.Fatalf("butterfly device bytes %d not below dense %d",
			cost.DeviceBytes, denseCost.DeviceBytes)
	}
}

func TestRegisterCompressedUnknownSource(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close()
	if _, _, err := reg.RegisterCompressed("x", "nope", nn.CompressOptions{Tolerance: 0.1}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, _, err := reg.RegisterCompressed("", "nope", nn.CompressOptions{Tolerance: 0.1}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestRegisterCompressedStructuredSourceKeepsSpecPricing(t *testing.T) {
	// Compress passes a non-dense structured first layer (pixelfly)
	// through untouched: the "compressed" variant must keep the source's
	// method label and be priced by the pixelfly workload, not as dense.
	reg := NewRegistry(Options{})
	defer reg.Close()
	src, err := reg.Register(spec("shl-pf", nn.Pixelfly))
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := reg.RegisterCompressed("shl-pf-c", "shl-pf",
		nn.CompressOptions{Tolerance: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Info().Method != src.Info().Method {
		t.Fatalf("method label %q, want source's %q", comp.Info().Method, src.Info().Method)
	}
	cost, err := comp.ModelledCost(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cost.Workload, "pixelfly") {
		t.Fatalf("workload %q not priced as pixelfly", cost.Workload)
	}
}

func TestRegisterCompressedIncompressibleFallsBackToDense(t *testing.T) {
	// Random dense weights at a tight tolerance: nothing beats the dense
	// layer, so the "compressed" model keeps it and prices as dense.
	reg := NewRegistry(Options{})
	defer reg.Close()
	src, err := reg.Register(spec("shl-dense", nn.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := reg.RegisterCompressed("shl-tight", "shl-dense",
		nn.CompressOptions{Tolerance: 0.001, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Info().Method != "compressed/dense" {
		t.Fatalf("method label %q, want compressed/dense", comp.Info().Method)
	}
	if comp.Info().Params > src.Info().Params {
		t.Fatalf("params grew: %d -> %d", src.Info().Params, comp.Info().Params)
	}
}
