package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/nn"
)

func TestRunLoadReportsThroughputAndTails(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.Register(spec("lg", nn.Butterfly)); err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), reg, "lg", LoadConfig{
		RPS:      400,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Done == 0 {
		t.Fatalf("no traffic generated: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors during load", rep.Errors)
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput())
	}
	l := rep.Latency
	if l.Count != rep.Done || l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 {
		t.Fatalf("latency summary inconsistent: %+v", l)
	}
	if rep.Batching.Requests != int64(rep.Done) {
		t.Fatalf("batcher saw %d requests, loadgen completed %d", rep.Batching.Requests, rep.Done)
	}
	// Power-of-two bucketing keeps the number of compiled programs small,
	// so sustained same-model load must produce cache hits.
	if rep.Cache.Hits == 0 {
		t.Fatalf("no program-cache hits under sustained load: %+v", rep.Cache)
	}
}

// TestRunLoadAllErrors pins the zero-success degradation: a run where
// every request fails (model stopped under the generator) must come back
// as an explicit all-errors record — AllErrors set, zero latency summary,
// no panic — rather than an empty distribution read as a perfect one.
func TestRunLoadAllErrors(t *testing.T) {
	reg := testRegistry(t)
	m, err := reg.Register(spec("dead", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	m.stop() // every Predict now fails with ErrStopped
	rep, err := RunLoad(context.Background(), reg, "dead", LoadConfig{
		RPS:      400,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatalf("no traffic offered: %+v", rep)
	}
	if rep.Done != 0 || rep.Errors != rep.Offered {
		t.Fatalf("stopped model answered requests: %+v", rep)
	}
	if !rep.AllErrors {
		t.Fatalf("zero-success run not marked AllErrors: %+v", rep)
	}
	if l := rep.Latency; l.Count != 0 || l.P50 != 0 || l.P99 != 0 {
		t.Fatalf("all-errors run reports a latency summary: %+v", l)
	}
	if rep.Throughput() != 0 {
		t.Fatalf("all-errors run reports throughput %v", rep.Throughput())
	}
}

// TestRunLoadBurstKeepsOfferedRate checks burst mode trades arrival shape
// for batch depth without changing the offered rate: B requests per tick
// at RPS/B ticks per second, all of them served.
func TestRunLoadBurstKeepsOfferedRate(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.Register(spec("burst", nn.Butterfly)); err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), reg, "burst", LoadConfig{
		RPS:      400,
		Duration: 300 * time.Millisecond,
		Burst:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Done == 0 || rep.Errors != 0 {
		t.Fatalf("burst run failed: %+v", rep)
	}
	// Bursts of 4 arrive together, so the batcher must coalesce beyond
	// one row at least once.
	if rep.Batching.MaxBatch < 2 {
		t.Fatalf("burst arrivals never coalesced: %+v", rep.Batching)
	}
	// Offered rate stays ~RPS despite 4× fewer ticks: with 300ms at 100
	// ticks/s × 4 per tick, well over half the nominal total must go out.
	if nominal := 400 * 300 / 1000; rep.Offered < nominal/2 {
		t.Fatalf("burst mode throttled the offered rate: %d of ~%d", rep.Offered, nominal)
	}
}

func TestRunLoadUnknownModel(t *testing.T) {
	reg := testRegistry(t)
	if _, err := RunLoad(context.Background(), reg, "ghost", LoadConfig{}); err == nil {
		t.Fatal("RunLoad on unknown model succeeded")
	}
}
