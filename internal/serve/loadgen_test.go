package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/nn"
)

func TestRunLoadReportsThroughputAndTails(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.Register(spec("lg", nn.Butterfly)); err != nil {
		t.Fatal(err)
	}
	rep, err := RunLoad(context.Background(), reg, "lg", LoadConfig{
		RPS:      400,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Done == 0 {
		t.Fatalf("no traffic generated: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors during load", rep.Errors)
	}
	if rep.Throughput() <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput())
	}
	l := rep.Latency
	if l.Count != rep.Done || l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 {
		t.Fatalf("latency summary inconsistent: %+v", l)
	}
	if rep.Batching.Requests != int64(rep.Done) {
		t.Fatalf("batcher saw %d requests, loadgen completed %d", rep.Batching.Requests, rep.Done)
	}
	// Power-of-two bucketing keeps the number of compiled programs small,
	// so sustained same-model load must produce cache hits.
	if rep.Cache.Hits == 0 {
		t.Fatalf("no program-cache hits under sustained load: %+v", rep.Cache)
	}
}

func TestRunLoadUnknownModel(t *testing.T) {
	reg := testRegistry(t)
	if _, err := RunLoad(context.Background(), reg, "ghost", LoadConfig{}); err == nil {
		t.Fatal("RunLoad on unknown model succeeded")
	}
}
