package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
)

// ProgramCost is the modelled device cost of one compiled batch program —
// what Poplar would report after compiling the layer for that batch size.
type ProgramCost struct {
	Workload string `json:"workload"`
	Batch    int    `json:"batch"`

	// Modelled time of one batch execution and its per-request share.
	LatencySeconds    float64 `json:"latency_s"`
	PerRequestSeconds float64 `json:"per_request_s"`
	Cycles            float64 `json:"cycles"`

	// Memory accounting of the compiled program.
	PeakTileBytes int `json:"peak_tile_bytes"`
	DeviceBytes   int `json:"device_bytes"`
	ComputeSets   int `json:"compute_sets"`

	// CompileSeconds is the wall time the cache miss paid; hits pay zero.
	CompileSeconds float64 `json:"compile_s"`
}

// CacheStats exposes the hit/miss counters of the program cache.
type CacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

type programKey struct {
	model   string
	version int
	batch   int
}

type cacheEntry struct {
	once sync.Once
	cost *ProgramCost
	err  error
}

// ProgramCache memoizes ipu.Compile + ipu.Simulate results per
// (model, batch size), so the per-request cost model can annotate every
// served request with modelled IPU latency and memory without recompiling.
// Failed compilations (e.g. tile OOM) are cached too: a model that cannot
// fit at a batch size will not fit on the retry either.
type ProgramCache struct {
	cfg ipu.Config

	mu      sync.Mutex
	entries map[programKey]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// NewProgramCache creates a cache compiling against the given device model.
func NewProgramCache(cfg ipu.Config) *ProgramCache {
	return &ProgramCache{cfg: cfg, entries: map[programKey]*cacheEntry{}}
}

// workloadBuilder produces the IPU workload whose compiled program prices
// a model at one batch size. The registry installs a layout-aware builder
// for compressed models; spec-built models go through buildWorkload.
type workloadBuilder func(cfg ipu.Config, batch int) (*ipu.Workload, error)

// Cost returns the modelled cost of running spec's structured layer at the
// given batch size, compiling at most once per (model, version, batch).
// Concurrent callers of a cold key block on the single compilation.
func (c *ProgramCache) Cost(spec ModelSpec, version, batch int) (*ProgramCost, error) {
	return c.costWith(spec.Name, version, batch, func(cfg ipu.Config, b int) (*ipu.Workload, error) {
		return buildWorkload(cfg, spec, b)
	})
}

// costWith is Cost with an explicit workload builder, keyed on the model
// name and version alone.
func (c *ProgramCache) costWith(name string, version, batch int, build workloadBuilder) (*ProgramCost, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("serve: cache batch %d must be positive", batch)
	}
	key := programKey{model: name, version: version, batch: batch}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() { e.cost, e.err = compileCost(c.cfg, batch, build) })
	return e.cost, e.err
}

// Stats snapshots the hit/miss counters.
func (c *ProgramCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	s := CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: entries,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// compileCost builds the structured-layer workload for the batch, compiles
// it, and prices it with the BSP cost model. The workload covers the N×N
// structured layer — the part that differs between methods and dominates
// the SHL — not the small dense classifier head.
func compileCost(cfg ipu.Config, batch int, build workloadBuilder) (cost *ProgramCost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: building workload: %v", r)
		}
	}()
	w, err := build(cfg, batch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	compiled, err := ipu.Compile(w.Graph)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling %s: %w", w.Name, err)
	}
	rep := ipu.Simulate(compiled)
	return &ProgramCost{
		Workload:          w.Name,
		Batch:             batch,
		LatencySeconds:    rep.Seconds(),
		PerRequestSeconds: rep.Seconds() / float64(batch),
		Cycles:            rep.TotalCycles,
		PeakTileBytes:     compiled.PeakBytes,
		DeviceBytes:       compiled.Device.Total(),
		ComputeSets:       compiled.NumComputeSets,
		CompileSeconds:    time.Since(start).Seconds(),
	}, nil
}

// buildWorkload maps a model spec to the matching ipu workload builder,
// converting builder panics into errors.
func buildWorkload(cfg ipu.Config, spec ModelSpec, batch int) (w *ipu.Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: building workload for %q: %v", spec.Name, r)
		}
	}()
	switch spec.Method {
	case nn.Baseline:
		return ipu.BuildLinear(cfg, spec.N, batch), nil
	case nn.Butterfly:
		return ipu.BuildButterflyMM(cfg, spec.N, batch), nil
	case nn.Fastfood:
		return ipu.BuildFastfood(cfg, spec.N, batch), nil
	case nn.Circulant:
		return ipu.BuildCirculant(cfg, spec.N, batch), nil
	case nn.LowRank:
		return ipu.BuildLowRank(cfg, spec.N, 1, batch), nil
	case nn.Pixelfly:
		return ipu.BuildPixelflyMM(cfg, spec.pixelflyConfig(), batch), nil
	default:
		return nil, fmt.Errorf("serve: no workload builder for method %v", spec.Method)
	}
}
