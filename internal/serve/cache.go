package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// ProgramCost is the modelled device cost of one compiled batch program —
// what Poplar would report after compiling the layer for that batch size.
type ProgramCost struct {
	Workload string `json:"workload"`
	Batch    int    `json:"batch"`

	// Modelled time of one batch execution and its per-request share.
	LatencySeconds    float64 `json:"latency_s"`
	PerRequestSeconds float64 `json:"per_request_s"`
	Cycles            float64 `json:"cycles"`

	// Memory accounting of the compiled program.
	PeakTileBytes int `json:"peak_tile_bytes"`
	DeviceBytes   int `json:"device_bytes"`
	ComputeSets   int `json:"compute_sets"`

	// CompileSeconds is the wall time the cache miss paid; hits pay zero.
	CompileSeconds float64 `json:"compile_s"`

	// Sharding block, present when the program spans several modelled
	// IPUs. LatencySeconds/PerRequestSeconds above already include the
	// exchange time and the tensor-parallel compute split.
	Shards          int     `json:"shards,omitempty"`
	Strategy        string  `json:"strategy,omitempty"`
	PerIPUBytes     int     `json:"per_ipu_bytes,omitempty"`
	ExchangeBytes   int     `json:"exchange_bytes,omitempty"`
	ExchangeSeconds float64 `json:"exchange_s,omitempty"`
	// MicroBatches is the wavefront width the pipeline schedule was priced
	// at (1 = barrier loop; 0/omitted under tensor parallelism), and
	// PipelineStages the effective stage count after clamping to the plan's
	// step count.
	MicroBatches   int `json:"micro_batches,omitempty"`
	PipelineStages int `json:"pipeline_stages,omitempty"`

	// Fusion block, present when a host network is attached: the compiled
	// plan's step-fusion verdict — executed vs lowered step count, steps
	// carrying a folded activation, resident activation-arena bytes, and
	// the modelled arena traffic of one batch against what the unfused
	// step list would move.
	PlanSteps           int `json:"plan_steps,omitempty"`
	PlanStepsUnfused    int `json:"plan_steps_unfused,omitempty"`
	PlanFusedSteps      int `json:"plan_fused_steps,omitempty"`
	PlanArenaBytes      int `json:"plan_arena_bytes,omitempty"`
	TrafficBytes        int `json:"traffic_bytes,omitempty"`
	TrafficBytesUnfused int `json:"traffic_bytes_unfused,omitempty"`
}

// CacheStats exposes the hit/miss counters of the program cache.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

type programKey struct {
	model   string
	version int
	batch   int
	shards  int
}

// Executor is the host-side compiled program the batch path runs:
// nn.Plan on one modelled IPU, shard.ShardedPlan across several. Both are
// single-goroutine objects pooled per worker.
type Executor interface {
	Execute(x *tensor.Matrix) (*tensor.Matrix, error)
	MaxBatch() int
}

// Program is the cache's unit of work: everything compiled once per
// (model, version, pow2-batch, shards) key. It bundles the modelled IPU
// cost of the batch program with a pool of host execution plans (nn.Plan,
// or shard.ShardedPlan when the model is sharded) sized for the same batch
// bucket, so the micro-batcher's workers run allocation-free at steady
// state and every response can report device cost without recompiling.
type Program struct {
	batch  int
	shards int
	micro  int // forced wavefront width (0 = let the shard planner pick)
	topo   shard.Topology
	budget int

	costOnce sync.Once
	costDone atomic.Bool
	cost     *ProgramCost
	costErr  error
	cfg      ipu.Config
	build    workloadBuilder
	mets     *cacheMetrics // inherited from the cache; nil when uninstrumented

	// net is the host network plans compile from; set the first time the
	// program is requested with a network attached (cost-only callers pass
	// none). plans pools per-worker Executor instances.
	net   atomic.Pointer[nn.Sequential]
	plans sync.Pool

	// scOnce memoizes the shard planner's verdict (strategy, per-IPU
	// memory, exchange) and the 1-shard reference estimate, so GetPlan
	// misses and Cost share one estimate and at most one probe plan
	// compile per program.
	scOnce sync.Once
	sc     shard.Cost
	scOne  shard.Cost
	scErr  error
}

// errNoHostNet marks a program that was only ever priced, never given a
// network to compile host plans from.
var errNoHostNet = errors.New("serve: program has no host network")

// Batch returns the power-of-two batch bucket the program was compiled for.
func (p *Program) Batch() int { return p.batch }

// Shards returns how many modelled IPUs the program spans.
func (p *Program) Shards() int { return p.shards }

// Cost returns the memoized modelled IPU cost; the first caller pays the
// compile, concurrent callers block on it, and failures (e.g. tile OOM)
// are cached because the retry would fail identically. For sharded
// programs the single-chip compile is augmented with the shard planner's
// per-IPU memory and IPU-Link exchange verdict.
func (p *Program) Cost() (*ProgramCost, error) {
	p.costOnce.Do(func() {
		p.cost, p.costErr = compileCost(p.cfg, p.batch, p.build)
		if p.costErr != nil {
			p.costDone.Store(true)
			return
		}
		if p.mets != nil {
			p.mets.compile.Observe(p.cost.CompileSeconds)
		}
		pl, err := p.fusionCost(p.cost)
		if err != nil {
			p.cost, p.costErr = nil, err
			p.costDone.Store(true)
			return
		}
		if p.shards > 1 {
			// The fusion probe's plan seeds the shard estimate, so a
			// sharded cost query compiles the host plan exactly once.
			p.costErr = p.shardCost(p.cost, pl)
			if p.costErr != nil {
				p.cost = nil
			}
		} else if pl != nil {
			// Donate the probe plan to the executor pool: the first
			// Predict after a Cost pays no second compile.
			p.plans.Put(pl)
		}
		p.costDone.Store(true)
	})
	return p.cost, p.costErr
}

// fusionCost annotates the cost with the host plan's fusion silhouette
// (step counts, arena bytes, modelled activation-arena traffic) and
// returns the plan it compiled. Cost-only programs — no host network
// attached — skip the block and return nil; a network that fails to
// compile is a real error, not a silent cost-only silhouette.
func (p *Program) fusionCost(cost *ProgramCost) (*nn.Plan, error) {
	net := p.net.Load()
	if net == nil {
		return nil, nil
	}
	pl, err := net.CompilePlan(p.batch)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling host plan for fusion cost: %w", err)
	}
	st := pl.Stats()
	cost.PlanSteps = st.Steps
	cost.PlanStepsUnfused = st.StepsBeforeFusion
	cost.PlanFusedSteps = st.FusedSteps
	cost.PlanArenaBytes = st.ArenaBytes
	cost.TrafficBytes = st.TrafficBytes
	cost.TrafficBytesUnfused = st.TrafficBytesBeforeFusion
	return pl, nil
}

// shardEstimate memoizes the shard planner's verdict for this program.
// pl may carry a freshly compiled plan to reuse; pass nil to have the
// memo compile its own probe (only the first caller's plan is consulted).
func (p *Program) shardEstimate(pl *nn.Plan) (shard.Cost, error) {
	p.scOnce.Do(func() {
		if pl == nil {
			net := p.net.Load()
			if net == nil {
				p.scErr = errNoHostNet
				return
			}
			var err error
			if pl, err = net.CompilePlan(p.batch); err != nil {
				p.scErr = err
				return
			}
		}
		if p.sc, p.scErr = shard.EstimateBudgetMicro(pl, p.batch, p.shards, p.topo, p.budget, p.micro); p.scErr != nil {
			return
		}
		p.scOne, p.scErr = shard.EstimateBudget(pl, p.batch, 1, p.topo, p.budget)
	})
	return p.sc, p.scErr
}

// shardCost folds the shard planner's estimate into a single-chip program
// cost: per-IPU residency, exchange traffic, and the latency of the
// partitioned run. pl may carry an already compiled host plan to estimate
// from (nil compiles a probe). The compute portion is scaled by the
// planner's own sharded-vs-unsharded compute ratio (1 for pipeline;
// between 1/S and 1 for tensor parallelism, since replicated rank
// bottlenecks do not divide), keeping the served latency consistent with
// the planner's Cost for the same plan.
func (p *Program) shardCost(cost *ProgramCost, pl *nn.Plan) error {
	sc, err := p.shardEstimate(pl)
	if err != nil {
		return err
	}
	one := p.scOne
	cost.Shards = p.shards
	cost.Strategy = sc.StrategyName()
	cost.PerIPUBytes = sc.PerIPUBytes
	cost.ExchangeBytes = sc.ExchangeBytesPerBatch
	cost.ExchangeSeconds = sc.ExchangeSecondsPerBatch
	cost.MicroBatches = sc.MicroBatches
	cost.PipelineStages = sc.PipelineStages
	if one.ComputeSecondsPerBatch > 0 {
		cost.LatencySeconds *= sc.ComputeSecondsPerBatch / one.ComputeSecondsPerBatch
	}
	cost.LatencySeconds += sc.ExchangeSecondsPerBatch
	if sc.MicroBatches > 1 {
		// The wavefront overlaps stages and exchange, so the planner's
		// scheduled latency sits below compute+exchange; apply the same
		// dimensionless speedup to the device-scale latency.
		if barrier := sc.ComputeSecondsPerBatch + sc.ExchangeSecondsPerBatch; barrier > 0 {
			cost.LatencySeconds *= sc.LatencySecondsPerBatch / barrier
		}
	}
	cost.PerRequestSeconds = cost.LatencySeconds / float64(p.batch)
	return nil
}

// GetPlan hands out a pooled host execution plan — sharded across the
// program's modelled IPUs when shards > 1 — compiling a fresh instance
// when the pool is empty. Callers must return it with PutPlan after
// copying anything they need out of its buffers.
func (p *Program) GetPlan() (Executor, error) {
	if v := p.plans.Get(); v != nil {
		return v.(Executor), nil
	}
	net := p.net.Load()
	if net == nil {
		return nil, errNoHostNet
	}
	pl, err := net.CompilePlan(p.batch)
	if err != nil || p.shards <= 1 {
		return pl, err
	}
	sc, err := p.shardEstimate(pl)
	if err != nil {
		return nil, err
	}
	return shard.CompileMicro(pl, p.topo, p.shards, sc.Strategy, p.micro)
}

// PutPlan returns a plan obtained from GetPlan to the pool.
func (p *Program) PutPlan(pl Executor) {
	if pl != nil {
		p.plans.Put(pl)
	}
}

// ProgramCache memoizes compiled programs — host plan pool plus modelled
// IPU cost — per (model, version, batch bucket, shard count), so the
// serving path compiles each artifact at most once and every request
// rides prebuilt state.
type ProgramCache struct {
	cfg    ipu.Config
	topo   shard.Topology
	budget int
	micro  int // forced wavefront width for pipeline programs (0 = auto)

	mu      sync.Mutex
	entries map[programKey]*Program

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// mets is the cache's instrument set, installed once (before any
	// Program exists) by the owning registry; nil when uninstrumented.
	mets *cacheMetrics
}

// NewProgramCache creates a cache compiling against the given device
// model, with a single-IPU topology (sharded keys are rejected).
func NewProgramCache(cfg ipu.Config) *ProgramCache {
	return NewShardedProgramCache(cfg, shard.Topology{NumIPUs: 1, IPU: cfg}, 0)
}

// NewShardedProgramCache creates a cache that can also compile programs
// partitioned across the topology's modelled IPUs, auto-picking the
// partitioning strategy against the per-IPU memory budget (0 = full
// SRAM).
func NewShardedProgramCache(cfg ipu.Config, topo shard.Topology, budgetBytes int) *ProgramCache {
	return &ProgramCache{cfg: cfg, topo: topo, budget: budgetBytes, entries: map[programKey]*Program{}}
}

// SetMicroBatches forces the wavefront width of every pipeline-partitioned
// program the cache compiles (0 restores the planner's auto pick). Must be
// called before the first Program is created.
func (c *ProgramCache) SetMicroBatches(m int) { c.micro = m }

// workloadBuilder produces the IPU workload whose compiled program prices
// a model at one batch size. The registry installs a layout-aware builder
// for compressed models; spec-built models go through buildWorkload.
type workloadBuilder func(cfg ipu.Config, batch int) (*ipu.Workload, error)

// Program returns the compiled artifact for the key, creating it on first
// use, and counts the lookup in the hit/miss statistics (one count per
// served request — the semantics the perf trajectory records). net may be
// nil for cost-only callers; the first non-nil net is attached so later
// GetPlan calls can compile host plans. The modelled cost is not compiled
// here — Cost does that lazily, memoized.
func (c *ProgramCache) Program(name string, version, batch, shards int, net *nn.Sequential, build workloadBuilder) (*Program, error) {
	return c.lookup(name, version, batch, shards, net, build, true)
}

// programQuiet is Program without touching the hit/miss counters — the
// per-batch execution path uses it so batching behaviour doesn't skew the
// per-request cache statistics.
func (c *ProgramCache) programQuiet(name string, version, batch, shards int, net *nn.Sequential, build workloadBuilder) (*Program, error) {
	return c.lookup(name, version, batch, shards, net, build, false)
}

func (c *ProgramCache) lookup(name string, version, batch, shards int, net *nn.Sequential, build workloadBuilder, count bool) (*Program, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("serve: cache batch %d must be positive", batch)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > 1 && shards > c.topo.NumIPUs {
		return nil, fmt.Errorf("serve: %d shards exceed the cache topology of %d IPUs", shards, c.topo.NumIPUs)
	}
	key := programKey{model: name, version: version, batch: batch, shards: shards}
	c.mu.Lock()
	p, ok := c.entries[key]
	if !ok {
		p = &Program{batch: batch, shards: shards, micro: c.micro, topo: c.topo, budget: c.budget, cfg: c.cfg, build: build, mets: c.mets}
		c.entries[key] = p
	}
	if count {
		// A hit means the request rode an already-compiled program; a
		// lookup before the cost compile finished (including one that
		// finds an entry the uncounted batch path just created) still
		// pays or waits on the compile, so it counts as a miss.
		if ok && p.costDone.Load() {
			c.hits.Add(1)
		} else {
			c.misses.Add(1)
		}
	}
	c.mu.Unlock()
	if net != nil {
		p.net.CompareAndSwap(nil, net)
	}
	return p, nil
}

// Evict drops every cached program of one (model, version), releasing the
// pinned network weights and plan pools of a replaced or removed model.
// Programs still held by in-flight callers stay usable; they are simply
// no longer reachable from the cache. Callers must stop the model's
// batcher first so no new lookups can resurrect the entries.
func (c *ProgramCache) Evict(name string, version int) {
	c.mu.Lock()
	for k := range c.entries {
		if k.model == name && k.version == version {
			delete(c.entries, k)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
}

// Cost returns the modelled cost of running spec's structured layer at the
// given batch size, compiling at most once per (model, version, batch).
// Concurrent callers of a cold key block on the single compilation.
func (c *ProgramCache) Cost(spec ModelSpec, version, batch int) (*ProgramCost, error) {
	return c.costWith(spec.Name, version, batch, func(cfg ipu.Config, b int) (*ipu.Workload, error) {
		return buildWorkload(cfg, spec, b)
	})
}

// costWith is Cost with an explicit workload builder, keyed on the model
// name and version alone.
func (c *ProgramCache) costWith(name string, version, batch int, build workloadBuilder) (*ProgramCost, error) {
	p, err := c.Program(name, version, batch, 1, nil, build)
	if err != nil {
		return nil, err
	}
	return p.Cost()
}

// Stats snapshots the hit/miss counters.
func (c *ProgramCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// compileCost builds the structured-layer workload for the batch, compiles
// it, and prices it with the BSP cost model. The workload covers the N×N
// structured layer — the part that differs between methods and dominates
// the SHL — not the small dense classifier head.
func compileCost(cfg ipu.Config, batch int, build workloadBuilder) (cost *ProgramCost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: building workload: %v", r)
		}
	}()
	w, err := build(cfg, batch)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	compiled, err := ipu.Compile(w.Graph)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling %s: %w", w.Name, err)
	}
	rep := ipu.Simulate(compiled)
	return &ProgramCost{
		Workload:          w.Name,
		Batch:             batch,
		LatencySeconds:    rep.Seconds(),
		PerRequestSeconds: rep.Seconds() / float64(batch),
		Cycles:            rep.TotalCycles,
		PeakTileBytes:     compiled.PeakBytes,
		DeviceBytes:       compiled.Device.Total(),
		ComputeSets:       compiled.NumComputeSets,
		CompileSeconds:    time.Since(start).Seconds(),
	}, nil
}

// buildWorkload maps a model spec to the matching ipu workload builder,
// converting builder panics into errors.
func buildWorkload(cfg ipu.Config, spec ModelSpec, batch int) (w *ipu.Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: building workload for %q: %v", spec.Name, r)
		}
	}()
	switch spec.Method {
	case nn.Baseline:
		return ipu.BuildLinear(cfg, spec.N, batch), nil
	case nn.Butterfly:
		return ipu.BuildButterflyMM(cfg, spec.N, batch), nil
	case nn.Fastfood:
		return ipu.BuildFastfood(cfg, spec.N, batch), nil
	case nn.Circulant:
		return ipu.BuildCirculant(cfg, spec.N, batch), nil
	case nn.LowRank:
		return ipu.BuildLowRank(cfg, spec.N, 1, batch), nil
	case nn.Pixelfly:
		return ipu.BuildPixelflyMM(cfg, spec.pixelflyConfig(), batch), nil
	default:
		return nil, fmt.Errorf("serve: no workload builder for method %v", spec.Method)
	}
}
