package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/nn"
)

func testServer(t *testing.T) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(Options{
		Batcher: BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2},
	})
	t.Cleanup(reg.Close)
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(ts.Close)
	return ts, reg
}

func postPredict(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPPredict(t *testing.T) {
	ts, reg := testServer(t)
	if _, err := reg.Register(spec("bfly", nn.Butterfly)); err != nil {
		t.Fatal(err)
	}
	features := make([]float32, 64)
	for i := range features {
		features[i] = 0.5
	}
	resp := postPredict(t, ts.URL, PredictRequest{Model: "bfly", Features: features})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var pred Prediction
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if pred.Model != "bfly" || len(pred.Scores) != 10 || pred.BatchSize < 1 {
		t.Fatalf("bad prediction: %+v", pred)
	}
	if pred.IPU == nil || pred.IPU.LatencySeconds <= 0 {
		t.Fatalf("missing IPU cost: %+v", pred.IPU)
	}
}

func TestHTTPPredictErrors(t *testing.T) {
	ts, reg := testServer(t)
	if _, err := reg.Register(spec("m", nn.Baseline)); err != nil {
		t.Fatal(err)
	}

	resp := postPredict(t, ts.URL, PredictRequest{Model: "nope", Features: make([]float32, 64)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}

	resp = postPredict(t, ts.URL, PredictRequest{Model: "m", Features: make([]float32, 3)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong width status = %d, want 400", resp.StatusCode)
	}

	r, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status = %d, want 400", r.StatusCode)
	}

	g, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict status = %d, want 405", g.StatusCode)
	}
}

func TestHTTPModelsAndStats(t *testing.T) {
	ts, reg := testServer(t)
	if _, err := reg.Register(spec("a", nn.Baseline)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(spec("b", nn.Pixelfly)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("bad /models response: %+v", infos)
	}

	// Two same-size predictions: second must hit the program cache.
	features := make([]float32, 64)
	for i := 0; i < 2; i++ {
		r := postPredict(t, ts.URL, PredictRequest{Model: "a", Features: features})
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("predict %d status = %d", i, r.StatusCode)
		}
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Cache.Hits < 1 {
		t.Fatalf("program cache hits = %d, want >= 1 after repeated same-size load", st.Cache.Hits)
	}
	if len(st.Models) != 2 {
		t.Fatalf("stats for %d models, want 2", len(st.Models))
	}
	var a ModelStats
	for _, ms := range st.Models {
		if ms.Info.Name == "a" {
			a = ms
		}
	}
	if a.Served != 2 || a.Latency.Count != 2 {
		t.Fatalf("model a stats: %+v", a)
	}
}
