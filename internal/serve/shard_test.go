package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// shardedRegistry builds a 4-IPU registry with the given per-IPU budget.
func shardedRegistry(t *testing.T, budget, fixed int) *Registry {
	t.Helper()
	r := NewRegistry(Options{
		Batcher:        BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2},
		NumIPUs:        4,
		PerIPUMemBytes: budget,
		Shards:         fixed,
	})
	t.Cleanup(r.Close)
	return r
}

// TestRegistryAutoShardSelection asserts the acceptance criterion: the
// registry picks the smallest shard count whose per-IPU footprint fits the
// memory budget, and serving through the sharded plans stays bit-for-bit
// correct.
func TestRegistryAutoShardSelection(t *testing.T) {
	sp := spec("m", nn.Baseline)

	// Price the model ourselves to derive budget thresholds.
	net := nn.BuildSHL(sp.Method, sp.N, sp.Classes, rand.New(rand.NewSource(sp.Seed)))
	pl, err := net.CompilePlan(8) // the batcher's pow2 bucket in these tests
	if err != nil {
		t.Fatal(err)
	}
	topo := shard.Topology{NumIPUs: 4, IPU: ipu.GC200(), Link: ipu.IPULink()}
	c1, err := shard.Estimate(pl, 8, 1, topo)
	if err != nil {
		t.Fatal(err)
	}

	// Roomy budget: one IPU suffices, no sharding.
	reg := shardedRegistry(t, c1.PerIPUBytes+1, 0)
	m, err := reg.Register(sp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 1 {
		t.Fatalf("roomy budget: model sharded %d-way, want 1", m.Shards())
	}

	// Budget below the single-chip footprint: the registry must shard,
	// picking exactly what the planner calls the smallest fitting count.
	budget := c1.PerIPUBytes - 1
	want, fits, err := shard.FitShards(pl, 8, topo, budget)
	if err != nil || !fits {
		t.Fatalf("FitShards: fits=%v err=%v", fits, err)
	}
	if want.Shards < 2 {
		t.Fatalf("test setup: expected a budget that forces sharding, got %d", want.Shards)
	}
	reg2 := shardedRegistry(t, budget, 0)
	m2, err := reg2.Register(sp)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Shards() != want.Shards {
		t.Fatalf("auto-pick chose %d shards, planner says %d", m2.Shards(), want.Shards)
	}
	if m2.Info().Shards != want.Shards {
		t.Fatalf("Info().Shards = %d, want %d", m2.Info().Shards, want.Shards)
	}

	// Serving through the sharded plans is still exactly the reference
	// forward pass.
	x := tensor.New(1, sp.N)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	wantY := net.Infer(x)
	pred, err := m2.Predict(context.Background(), x.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range pred.Scores {
		if v != wantY.At(0, j) {
			t.Fatalf("sharded score[%d] = %v, want %v (bit-for-bit)", j, v, wantY.At(0, j))
		}
	}

	// The per-request cost report carries the sharding verdict.
	cost, err := m2.ModelledCost(8)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Shards != want.Shards || cost.PerIPUBytes <= 0 || cost.Strategy == "" {
		t.Fatalf("sharded cost not annotated: %+v", cost)
	}
	if cost.PerIPUBytes > budget {
		t.Fatalf("reported per-IPU bytes %d exceed the budget %d it was fit to", cost.PerIPUBytes, budget)
	}
	if cost.ExchangeBytes <= 0 && cost.Strategy == "tensor-parallel" {
		t.Fatal("tensor-parallel cost reports no exchange traffic")
	}
}

// TestRegistryFixedShards pins the shard count explicitly.
func TestRegistryFixedShards(t *testing.T) {
	reg := shardedRegistry(t, 0, 2)
	m, err := reg.Register(spec("m", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 2 {
		t.Fatalf("fixed shards: got %d, want 2", m.Shards())
	}
	x := tensor.New(1, 64)
	x.FillRandom(rand.New(rand.NewSource(9)), 1)
	ref := nn.BuildSHL(nn.Butterfly, 64, 10, rand.New(rand.NewSource(42)))
	want := ref.Infer(x)
	pred, err := m.Predict(context.Background(), x.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range pred.Scores {
		if v != want.At(0, j) {
			t.Fatalf("score[%d] = %v, want %v", j, v, want.At(0, j))
		}
	}
}

// TestProgramCacheShardedKeysDistinct: the same model/batch at different
// shard counts are distinct compiled programs.
func TestProgramCacheShardedKeysDistinct(t *testing.T) {
	topo := shard.Topology{NumIPUs: 4, IPU: ipu.GC200(), Link: ipu.IPULink()}
	c := NewShardedProgramCache(ipu.GC200(), topo, 0)
	sp := spec("m", nn.Butterfly)
	net, err := buildNet(sp)
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg ipu.Config, b int) (*ipu.Workload, error) { return buildWorkload(cfg, sp, b) }
	for _, shards := range []int{1, 2, 4} {
		p, err := c.Program(sp.Name, 1, 8, shards, net, build)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != shards {
			t.Fatalf("program shards %d, want %d", p.Shards(), shards)
		}
		pl, err := p.GetPlan()
		if err != nil {
			t.Fatal(err)
		}
		if pl.MaxBatch() != 8 {
			t.Fatalf("plan maxBatch %d, want 8", pl.MaxBatch())
		}
		p.PutPlan(pl)
	}
	if s := c.Stats(); s.Entries != 3 {
		t.Fatalf("entries = %d, want 3 (one per shard count)", s.Entries)
	}
	if _, err := c.Program(sp.Name, 1, 8, 8, net, build); err == nil {
		t.Fatal("shard count beyond the topology accepted")
	}
	c.Evict(sp.Name, 1)
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("after evict: %d entries, want 0 (sharded keys must evict too)", s.Entries)
	}
}

// TestProgramCacheConcurrentProgramEvict races Program/GetPlan/Execute
// against Evict across shard counts — run under -race (the satellite
// coverage for the cache's concurrency contract). Every lookup must either
// produce a usable program or a clean error; entries must all be gone at
// the end.
func TestProgramCacheConcurrentProgramEvict(t *testing.T) {
	topo := shard.Topology{NumIPUs: 4, IPU: ipu.GC200(), Link: ipu.IPULink()}
	c := NewShardedProgramCache(ipu.GC200(), topo, 0)
	sp := spec("m", nn.Butterfly)
	net, err := buildNet(sp)
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg ipu.Config, b int) (*ipu.Workload, error) { return buildWorkload(cfg, sp, b) }

	const loops = 30
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shardsOf := []int{1, 2, 4}
			x := tensor.New(2, sp.N)
			x.FillRandom(rand.New(rand.NewSource(int64(g))), 1)
			for i := 0; i < loops; i++ {
				shards := shardsOf[(g+i)%len(shardsOf)]
				p, err := c.Program(sp.Name, 1, 4, shards, net, build)
				if err != nil {
					t.Errorf("Program: %v", err)
					return
				}
				pl, err := p.GetPlan()
				if err != nil {
					t.Errorf("GetPlan: %v", err)
					return
				}
				if _, err := pl.Execute(x); err != nil {
					t.Errorf("Execute: %v", err)
				}
				p.PutPlan(pl)
				if _, err := p.Cost(); err != nil {
					t.Errorf("Cost: %v", err)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			c.Evict(sp.Name, 1)
		}
	}()
	wg.Wait()
	c.Evict(sp.Name, 1)
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("after final evict: %d entries, want 0", s.Entries)
	}
}

// TestRegistryFixedShardsRoundsToPow2: a fixed -shards 3 must not produce
// a model the shard compiler rejects on every batch (silent Infer
// fallback); it rounds down to a power of two.
func TestRegistryFixedShardsRoundsToPow2(t *testing.T) {
	reg := shardedRegistry(t, 0, 3)
	m, err := reg.Register(spec("m", nn.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 2 {
		t.Fatalf("fixed shards 3: got %d, want 2 (rounded down)", m.Shards())
	}
	if cost, err := m.ModelledCost(4); err != nil || cost.Shards != 2 {
		t.Fatalf("ModelledCost after rounding: cost=%+v err=%v", cost, err)
	}
}
