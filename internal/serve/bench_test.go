package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// benchFeatures builds one deterministic feature vector of width n.
func benchFeatures(n int) []float32 {
	v := tensor.New(1, n)
	v.FillRandom(rand.New(rand.NewSource(9)), 1)
	return v.Data
}

// BenchmarkPredictSteadyState measures the full serving path — registry,
// micro-batcher, compiled-plan execution — at steady state, allocs/op
// included. This is the acceptance benchmark of the allocation-free
// execution-plan refactor; compare against BenchmarkPredictLegacyInfer,
// which drives the same batcher over the pre-refactor per-layer
// allocating inference path.
func BenchmarkPredictSteadyState(b *testing.B) {
	reg := NewRegistry(Options{Batcher: BatcherConfig{
		MaxBatch: 32, MaxDelay: 100 * time.Microsecond,
	}})
	defer reg.Close()
	m, err := reg.Register(ModelSpec{Name: "bf", Method: nn.Butterfly, N: 1024, Classes: 10, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	features := benchFeatures(1024)
	ctx := context.Background()
	if _, err := m.Predict(ctx, features); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := m.Predict(ctx, features); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPredictLegacyInfer is the pre-refactor inference path kept as a
// living comparator: the same micro-batcher executing batches through
// Sequential.Infer, which allocates fresh matrices at every butterfly
// stage of every batch.
func BenchmarkPredictLegacyInfer(b *testing.B) {
	net := nn.BuildSHL(nn.Butterfly, 1024, 10, rand.New(rand.NewSource(42)))
	bt := NewBatcher(1024, BatcherConfig{
		MaxBatch: 32, MaxDelay: 100 * time.Microsecond,
	}, net.Infer)
	defer bt.Stop()
	features := benchFeatures(1024)
	ctx := context.Background()
	if _, _, err := bt.Do(ctx, features); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := bt.Do(ctx, features); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
