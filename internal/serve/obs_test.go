package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/shard"
	"repro/internal/tensor"
)

func obsTestRegistry(t *testing.T, opts Options, spec ModelSpec) *Registry {
	t.Helper()
	reg := NewRegistry(opts)
	t.Cleanup(reg.Close)
	if _, err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	return reg
}

func obsTestFeatures(n int) []float32 {
	x := tensor.New(1, n)
	x.FillRandom(rand.New(rand.NewSource(7)), 1)
	return x.Data
}

// TestMetricsAndTracesUnderLoad scrapes /metrics and /debug/traces over
// real HTTP concurrently with predict traffic — the -race run of this
// test is the data-race gate on the whole instrumentation layer.
func TestMetricsAndTracesUnderLoad(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{TraceSampleEvery: 1, TraceKeep: 32}, spec)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	features := obsTestFeatures(spec.N)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	scrape := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return ""
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				scrape("/metrics")
				scrape("/debug/traces")
			}
		}()
	}
	wg.Wait()

	// After the load, the exposition must carry the core series.
	body := scrape("/metrics")
	for _, series := range []string{
		`ipuserve_requests_total{model="bf"}`,
		`ipuserve_request_seconds_bucket{model="bf",le=`,
		`ipuserve_batch_size_bucket{`,
		"ipuserve_cache_hits_total",
		"ipuserve_cache_misses_total",
		"ipuserve_plan_step_seconds_bucket{",
		"ipuserve_batcher_flush_total{",
		"ipuserve_models 1",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	var traces TracesResponse
	if err := json.Unmarshal([]byte(scrape("/debug/traces")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) == 0 {
		t.Fatal("/debug/traces empty after sampled traffic")
	}
}

// TestTraceStepSpansMatchPlan pins the acceptance criterion that a
// sampled trace's per-step spans line up with the compiled plan's step
// count (Plan.Stats().Steps, reported as ProgramCost.PlanSteps).
func TestTraceStepSpansMatchPlan(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{TraceSampleEvery: 1, TraceKeep: 8}, spec)

	var planSteps int
	for i := 0; i < 3; i++ { // a few requests so the trace ring has the steady state
		p, err := reg.Predict(context.Background(), "bf", obsTestFeatures(spec.N))
		if err != nil {
			t.Fatal(err)
		}
		if p.IPU == nil {
			t.Fatal("prediction carries no modelled cost")
		}
		planSteps = p.IPU.PlanSteps
	}
	if planSteps == 0 {
		t.Fatal("plan reports zero steps")
	}
	snap := reg.Tracer().Snapshot()
	if len(snap) == 0 {
		t.Fatal("no traces at sample-every=1")
	}
	last := snap[len(snap)-1]
	stepSpans := 0
	var total int64
	for _, sp := range last.Spans {
		if strings.HasPrefix(sp.Name, "step:") {
			stepSpans++
			total += sp.DurNanos
		}
	}
	if stepSpans != planSteps {
		t.Fatalf("trace has %d step spans, plan has %d steps (trace %+v)", stepSpans, planSteps, last)
	}
	if total <= 0 {
		t.Fatalf("step spans carry no measured time: %+v", last.Spans)
	}
	// The other pipeline stages must be present too.
	for _, want := range []string{"queue_wait", "execute", "cost_lookup"} {
		found := false
		for _, sp := range last.Spans {
			if sp.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace missing %q span: %+v", want, last.Spans)
		}
	}
}

// TestHTTPTraceSpans drives /predict over HTTP and checks the
// HTTP-layer spans bracket the model spans.
func TestHTTPTraceSpans(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{TraceSampleEvery: 1, TraceKeep: 8}, spec)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	body, err := json.Marshal(PredictRequest{Model: "bf", Features: obsTestFeatures(spec.N)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	snap := reg.Tracer().Snapshot()
	if len(snap) == 0 {
		t.Fatal("no trace after sampled HTTP predict")
	}
	names := map[string]bool{}
	for _, sp := range snap[len(snap)-1].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"http_decode", "queue_wait", "execute", "http_write"} {
		if !names[want] {
			t.Errorf("HTTP trace missing %q span (got %v)", want, snap[len(snap)-1].Spans)
		}
	}
}

// TestHTTPTraceSamplingParity pins the shared-counter regression: the
// HTTP layer and Predict's self-sampling fallback draw from the same
// tracer, so the handler must record its sampling decision in the
// context even when negative. Before that, each request advanced the
// counter twice and an even sampling period starved the HTTP layer
// completely — every trace came from Predict's fallback and none
// carried the http_decode/http_write spans.
func TestHTTPTraceSamplingParity(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{TraceSampleEvery: 2, TraceKeep: 64}, spec)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	body, err := json.Marshal(PredictRequest{Model: "bf", Features: obsTestFeatures(spec.N)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/predict status %d", resp.StatusCode)
		}
	}
	snap := reg.Tracer().Snapshot()
	if want := 8; len(snap) != want {
		t.Fatalf("got %d traces for 16 requests at 1-in-2 sampling, want %d", len(snap), want)
	}
	for _, rec := range snap {
		names := map[string]bool{}
		for _, sp := range rec.Spans {
			names[sp.Name] = true
		}
		if !names["http_decode"] || !names["http_write"] {
			t.Fatalf("trace %d sampled below the HTTP layer: spans %v", rec.ID, rec.Spans)
		}
	}
}

func TestHealthz(t *testing.T) {
	get := func(t *testing.T, url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// An empty registry has nothing servable: 503 with the JSON detail.
	reg := NewRegistry(Options{})
	defer reg.Close()
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz on empty registry: status %d body %q, want 503", code, body)
	}
	var hr HealthResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("healthz 503 body not JSON: %v (%q)", err, body)
	}
	if hr.Status != "unavailable" || len(hr.Models) != 0 {
		t.Fatalf("healthz 503 body = %+v, want status=unavailable, no models", hr)
	}

	// With a servable model the probe fast path stays bare "ok"...
	if _, err := reg.Register(ModelSpec{Name: "bf", Method: nn.Butterfly, N: 64, Classes: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: status %d body %q, want 200 ok", code, body)
	}

	// ...and ?verbose=1 reports per-model readiness as JSON.
	code, body = get(t, srv.URL+"/healthz?verbose=1")
	if code != http.StatusOK {
		t.Fatalf("healthz?verbose=1: status %d body %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatalf("healthz verbose body not JSON: %v (%q)", err, body)
	}
	if hr.Status != "ok" || len(hr.Models) != 1 || !hr.Models[0].Ready || hr.Models[0].Model != "bf" {
		t.Fatalf("healthz verbose body = %+v, want ready model bf", hr)
	}
}

// TestWriteJSONEncodeErrorCounted pins the satellite fix: encoder
// failures are counted (and logged), not discarded.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	reg := NewRegistry(Options{})
	defer reg.Close()
	s := NewServer(reg)
	defer log.SetOutput(log.Writer())
	log.SetOutput(io.Discard) // the error log line is expected noise here

	// A channel is not JSON-encodable, so Encode fails after the header.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, make(chan int))
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, make(chan int))

	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "ipuserve_http_json_encode_errors_total 2") {
		t.Fatalf("encode errors not counted in exposition:\n%s", rec.Body.String())
	}
}

// TestFactorizationErrorExported pins the satellite: the compression
// error of a served model is reported in /stats and as a gauge.
func TestFactorizationErrorExported(t *testing.T) {
	spec := ModelSpec{Name: "dense", Method: nn.Baseline, N: 64, Classes: 4, Seed: 3}
	reg := obsTestRegistry(t, Options{}, spec)
	m, reports, err := reg.RegisterCompressed("dense-c", "dense", nn.CompressOptions{Tolerance: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want := maxFactorizationError(reports)
	if got := m.Stats().FactorizationError; got != want {
		t.Fatalf("ModelStats.FactorizationError = %v, want %v (reports %+v)", got, want, reports)
	}
	// The source model is exact.
	src, _ := reg.Get("dense")
	if got := src.Stats().FactorizationError; got != 0 {
		t.Fatalf("uncompressed model reports factorization error %v", got)
	}
	rec := httptest.NewRecorder()
	NewServer(reg).handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `ipuserve_model_factorization_error{model="dense-c"}`) {
		t.Fatal("factorization-error gauge missing from exposition")
	}
}

func TestMaxFactorizationError(t *testing.T) {
	if got := maxFactorizationError(nil); got != 0 {
		t.Fatalf("no reports: %v", got)
	}
	reports := []nn.LayerReport{
		{Kind: 0, RelError: 0.9}, // KindDense: kept exact, must not count
		{Kind: 1, RelError: 0.03},
		{Kind: 2, RelError: 0.07},
	}
	if got := maxFactorizationError(reports); got != 0.07 {
		t.Fatalf("maxFactorizationError = %v, want 0.07", got)
	}
}

// TestModelRemovalDropsSeries checks that removing a model retires its
// labeled series from the exposition.
func TestModelRemovalDropsSeries(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 64, Classes: 4, Seed: 1}
	reg := obsTestRegistry(t, Options{}, spec)
	if _, err := reg.Predict(context.Background(), "bf", obsTestFeatures(spec.N)); err != nil {
		t.Fatal(err)
	}
	exposition := func() string {
		var b strings.Builder
		if err := reg.Obs().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if !strings.Contains(exposition(), `model="bf"`) {
		t.Fatal("expected bf series before removal")
	}
	reg.Remove("bf")
	if strings.Contains(exposition(), `model="bf"`) {
		t.Fatal("bf series survived removal")
	}
}

// TestBatcherFlushReasons checks both flush-reason counters move under
// the loads that should trigger them.
func TestBatcherFlushReasons(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 64, Classes: 4, Seed: 1}
	reg := obsTestRegistry(t, Options{Batcher: BatcherConfig{MaxBatch: 4, Workers: 2}}, spec)
	features := obsTestFeatures(spec.N)

	// Sequential requests flush on timeout (batch of 1)...
	for i := 0; i < 3; i++ {
		if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
			t.Fatal(err)
		}
	}
	// ...a concurrent burst well past MaxBatch flushes on full.
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var b strings.Builder
	if err := reg.Obs().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, reason := range []string{"timeout", "full"} {
		prefix := fmt.Sprintf(`ipuserve_batcher_flush_total{model="bf",reason=%q} `, reason)
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) && !strings.HasSuffix(line, " 0") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no non-zero %s-flush count in exposition", reason)
		}
	}
}

// Compile-time check that both executor kinds expose the step-timing
// introspection observeExec relies on.
var (
	_ steppedExecutor = (*nn.Plan)(nil)
	_ steppedExecutor = (*shard.ShardedPlan)(nil)
)
