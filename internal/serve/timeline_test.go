package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/obs/timeline"
)

// timelineRegistry serves one model on two modelled IPUs with the flight
// recorder sampling every batch.
func timelineRegistry(t *testing.T, sp ModelSpec) *Registry {
	t.Helper()
	reg := NewRegistry(Options{
		Batcher:             BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 2},
		NumIPUs:             2,
		Shards:              2,
		TimelineSampleEvery: 1,
		TraceSampleEvery:    1,
	})
	t.Cleanup(reg.Close)
	if _, err := reg.Register(sp); err != nil {
		t.Fatal(err)
	}
	return reg
}

func scrapeBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}

// TestTimelineEndpointPipeline drives a pipeline-sharded model (fastfood
// cannot tensor-parallel split, so two fixed shards force pipeline
// partitioning) and asserts the acceptance criteria end to end: the
// summary shows a nonzero bubble fraction, the Chrome export passes its
// own lint with one track per modelled IPU and visible bubbles, and the
// phase gauges reach /metrics.
func TestTimelineEndpointPipeline(t *testing.T) {
	sp := spec("ff", nn.Fastfood)
	reg := timelineRegistry(t, sp)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	features := obsTestFeatures(sp.N)
	for i := 0; i < 20; i++ {
		if _, err := reg.Predict(context.Background(), "ff", features); err != nil {
			t.Fatal(err)
		}
	}

	var resp TimelineResponse
	if err := json.Unmarshal([]byte(scrapeBody(t, srv.URL+"/debug/timeline", 200)), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SampleEvery != 1 || len(resp.Models) != 1 {
		t.Fatalf("timeline response: sample_every=%d models=%d, want 1 and 1", resp.SampleEvery, len(resp.Models))
	}
	sum := resp.Models[0]
	if sum.Model != "ff" || sum.Shards != 2 || sum.Strategy != "pipeline" {
		t.Fatalf("summary = %+v, want ff × 2 shards under pipeline", sum)
	}
	if sum.Batches == 0 || len(sum.PerIPU) != 2 {
		t.Fatalf("summary sampled %d batches over %d IPUs, want >0 over 2", sum.Batches, len(sum.PerIPU))
	}
	if sum.BubbleFraction <= 0 {
		t.Fatalf("pipeline bubble fraction = %g, want > 0", sum.BubbleFraction)
	}
	if sum.ComputeShare <= 0 || sum.MeasuredComputeSeconds <= 0 {
		t.Fatalf("compute share %g / measured %gs, want both > 0", sum.ComputeShare, sum.MeasuredComputeSeconds)
	}
	if sum.ModelledComputeSeconds <= 0 {
		t.Fatalf("modelled compute = %g s, want > 0 (meta not installed?)", sum.ModelledComputeSeconds)
	}

	chrome := scrapeBody(t, srv.URL+"/debug/timeline?format=chrome", 200)
	if _, err := timeline.LintChrome([]byte(chrome)); err != nil {
		t.Fatalf("chrome export fails lint: %v\n%s", err, chrome)
	}
	for _, want := range []string{`"ipu0"`, `"ipu1"`, `"bubble/`, "pipeline, 2 shards"} {
		if !strings.Contains(chrome, want) {
			t.Fatalf("chrome export missing %s", want)
		}
	}

	metrics := scrapeBody(t, srv.URL+"/metrics", 200)
	for _, series := range []string{
		`ipuserve_phase_seconds{ipu="0",model="ff",phase="compute"}`,
		`ipuserve_phase_seconds{ipu="1",model="ff",phase="bubble"}`,
		`ipuserve_pipeline_bubble_fraction{model="ff"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
	// The exported bubble fraction itself must be nonzero for pipeline.
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, `ipuserve_pipeline_bubble_fraction{model="ff"}`) {
			if strings.HasSuffix(strings.TrimSpace(line), " 0") {
				t.Fatalf("exported bubble fraction is zero for a pipeline model: %s", line)
			}
		}
	}
}

// TestTimelineUnshardedNoBubble is the counterpart criterion: a
// single-IPU model records compute only — bubble fraction exactly zero.
func TestTimelineUnshardedNoBubble(t *testing.T) {
	sp := spec("bf", nn.Butterfly)
	reg := NewRegistry(Options{
		Batcher:             BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 1},
		TimelineSampleEvery: 1,
	})
	t.Cleanup(reg.Close)
	m, err := reg.Register(sp)
	if err != nil {
		t.Fatal(err)
	}
	features := obsTestFeatures(sp.N)
	for i := 0; i < 5; i++ {
		if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
			t.Fatal(err)
		}
	}
	sum, ok := m.TimelineSummary()
	if !ok {
		t.Fatal("no timeline summary after sampled traffic")
	}
	if sum.Shards != 1 || sum.BubbleFraction != 0 || sum.ComputeShare != 1 {
		t.Fatalf("unsharded summary: shards=%d bubble=%g compute=%g, want 1 / 0 / 1",
			sum.Shards, sum.BubbleFraction, sum.ComputeShare)
	}
}

// TestTimelineDisabled: a negative sampling period turns the recorder
// off entirely — no summaries, an empty chrome export, no phase series.
func TestTimelineDisabled(t *testing.T) {
	reg := NewRegistry(Options{
		Batcher:             BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond, Workers: 1},
		TimelineSampleEvery: -1,
	})
	t.Cleanup(reg.Close)
	m, err := reg.Register(spec("bf", nn.Butterfly))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Predict(context.Background(), "bf", obsTestFeatures(64)); err != nil {
		t.Fatal(err)
	}
	if m.Timeline() != nil {
		t.Fatal("recorder installed despite TimelineSampleEvery < 0")
	}
	if _, ok := m.TimelineSummary(); ok {
		t.Fatal("summary reported with timelines disabled")
	}
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()
	var resp TimelineResponse
	if err := json.Unmarshal([]byte(scrapeBody(t, srv.URL+"/debug/timeline", 200)), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SampleEvery != 0 || len(resp.Models) != 0 {
		t.Fatalf("disabled timeline response: %+v", resp)
	}
}

// TestTimelineModelFilter covers ?model= on /debug/timeline for both
// views.
func TestTimelineModelFilter(t *testing.T) {
	reg := timelineRegistry(t, spec("a", nn.Butterfly))
	if _, err := reg.Register(spec("b", nn.Baseline)); err != nil {
		t.Fatal(err)
	}
	features := obsTestFeatures(64)
	for _, name := range []string{"a", "b"} {
		for i := 0; i < 3; i++ {
			if _, err := reg.Predict(context.Background(), name, features); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	var resp TimelineResponse
	if err := json.Unmarshal([]byte(scrapeBody(t, srv.URL+"/debug/timeline?model=b", 200)), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Models) != 1 || resp.Models[0].Model != "b" {
		t.Fatalf("?model=b returned %+v", resp.Models)
	}
	chrome := scrapeBody(t, srv.URL+"/debug/timeline?format=chrome&model=b", 200)
	if strings.Contains(chrome, `"a (`) || !strings.Contains(chrome, `"b (`) {
		t.Fatalf("?model=b chrome export carries the wrong process: %s", chrome)
	}
}

// TestTracesFilterAndLimit covers the /debug/traces query parameters:
// ?model= narrows to one model, ?limit= keeps the most recent n, and a
// malformed limit is a 400.
func TestTracesFilterAndLimit(t *testing.T) {
	reg := timelineRegistry(t, spec("a", nn.Butterfly))
	if _, err := reg.Register(spec("b", nn.Baseline)); err != nil {
		t.Fatal(err)
	}
	features := obsTestFeatures(64)
	for _, name := range []string{"a", "b"} {
		for i := 0; i < 4; i++ {
			if _, err := reg.Predict(context.Background(), name, features); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	get := func(q string) TracesResponse {
		t.Helper()
		var resp TracesResponse
		if err := json.Unmarshal([]byte(scrapeBody(t, srv.URL+"/debug/traces"+q, 200)), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	all := get("")
	if len(all.Traces) < 8 {
		t.Fatalf("sampled-every-request tracer kept %d traces, want >= 8", len(all.Traces))
	}
	only := get("?model=a")
	if len(only.Traces) == 0 {
		t.Fatal("?model=a returned nothing")
	}
	for _, tr := range only.Traces {
		if tr.Model != "a" {
			t.Fatalf("?model=a returned a trace for %q", tr.Model)
		}
	}
	if got := get("?limit=2"); len(got.Traces) != 2 {
		t.Fatalf("?limit=2 returned %d traces", len(got.Traces))
	}
	if got := get("?model=a&limit=1"); len(got.Traces) != 1 || got.Traces[0].Model != "a" {
		t.Fatalf("?model=a&limit=1 returned %+v", got.Traces)
	}
	if got := get("?limit=0"); len(got.Traces) != 0 {
		t.Fatalf("?limit=0 returned %d traces", len(got.Traces))
	}
	scrapeBody(t, srv.URL+"/debug/traces?limit=x", 400)
	scrapeBody(t, srv.URL+"/debug/traces?limit=-1", 400)
}
