package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// Server exposes a Registry over an HTTP JSON API:
//
//	POST /predict          {"model": "butterfly", "features": [ ... N floats ]}
//	GET  /models           → registered models
//	GET  /stats            → per-model serving stats + program-cache counters
//	GET  /metrics          → Prometheus text exposition of the obs registry
//	GET  /debug/traces     → the last-N sampled request traces
//	                         (?model=<name> filters, ?limit=<n> caps)
//	GET  /debug/timeline   → per-model BSP phase utilization summary
//	                         (?model=<name> filters; ?format=chrome emits
//	                         Chrome trace-event JSON for Perfetto)
//	GET  /debug/costmodel  → modelled vs measured per-step cost, worst drift first
//	GET  /healthz          → readiness probe: "ok" when any model is servable
//	                         (?verbose=1 for per-model JSON), 503 + JSON otherwise
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	started time.Time

	obs        *obs.Registry
	tracer     *obs.Tracer
	encodeErrs *obs.Counter
}

// NewServer wraps a registry in the HTTP API.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:     reg,
		mux:     http.NewServeMux(),
		started: time.Now(),
		obs:     reg.Obs(),
		tracer:  reg.Tracer(),
	}
	s.encodeErrs = s.obs.Counter(metEncodeErrs)
	s.obs.GaugeFunc(metUptime, func() float64 { return time.Since(s.started).Seconds() })
	s.handle("/predict", s.handlePredict)
	s.handle("/models", s.handleModels)
	s.handle("/stats", s.handleStats)
	s.handle("/metrics", s.handleMetrics)
	s.handle("/debug/traces", s.handleTraces)
	s.handle("/debug/timeline", s.handleTimeline)
	s.handle("/debug/costmodel", s.handleCostModel)
	s.handle("/healthz", s.handleHealthz)
	return s
}

// handle mounts a handler with a per-path request counter (created once
// here, incremented per request).
func (s *Server) handle(path string, h http.HandlerFunc) {
	c := s.obs.Counter(metHTTPRequests, obs.L{Key: "path", Value: path})
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		h(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PredictRequest is the /predict request body.
type PredictRequest struct {
	Model    string    `json:"model"`
	Features []float32 `json:"features"`
}

type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response body. Encoding failures cannot be
// reported to the client (the status line is already written), so they
// are counted and logged instead of silently dropped.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.encodeErrs.Inc()
		log.Printf("serve: encoding %T response: %v", v, err)
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST required"})
		return
	}
	t0 := time.Now()
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	// Sampled requests get a trace covering the whole HTTP round trip;
	// Predict adds the queue/execute/step spans via the context. The HTTP
	// layer owns the trace, so it finishes it. The context carries the
	// sampling decision even when negative: otherwise Predict's
	// self-sampling fallback advances the shared counter a second time
	// per request, and with an even sampling period the HTTP layer's
	// draws only ever land on odd counts — no trace would ever carry the
	// http_decode/http_write spans.
	ctx := r.Context()
	tr := s.tracer.Sample(req.Model)
	if tr != nil {
		tr.Start = t0 // backdate so the decode is inside the trace window
		tr.AddSpanAt("http_decode", t0, time.Since(t0))
	}
	ctx = obs.WithTrace(ctx, tr)
	m, ok := s.reg.Get(req.Model)
	if !ok {
		if tr != nil {
			tr.Error = "unknown model"
			s.tracer.Finish(tr)
		}
		s.writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown model %q", req.Model)})
		return
	}
	pred, err := m.Predict(ctx, req.Features)
	wstart := time.Now()
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, pred)
	case errors.Is(err, ErrStopped):
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.Is(err, ErrBadInput):
		s.writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
	if tr != nil {
		tr.AddSpanAt("http_write", wstart, time.Since(wstart))
		s.tracer.Finish(tr)
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	s.writeJSON(w, http.StatusOK, s.reg.List())
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_s"`
	Cache         CacheStats   `json:"program_cache"`
	Models        []ModelStats `json:"models"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Cache:         s.reg.CacheStats(),
		Models:        s.reg.Stats(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.obs.WritePrometheus(w); err != nil {
		log.Printf("serve: writing /metrics: %v", err)
	}
}

// TracesResponse is the /debug/traces response body.
type TracesResponse struct {
	// SampleEvery is the sampling period (one trace per N requests);
	// 0 means tracing is disabled.
	SampleEvery int `json:"sample_every"`
	// SampledRate is the fraction of requests traced (1/SampleEvery;
	// 0 when tracing is disabled) — the scale factor for extrapolating
	// trace-derived counts back to the full request stream.
	SampledRate float64           `json:"sampled_rate"`
	Traces      []obs.TraceRecord `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	resp := TracesResponse{Traces: s.tracer.Snapshot()}
	if s.tracer != nil {
		resp.SampleEvery = s.tracer.SampleEvery()
		if resp.SampleEvery > 0 {
			resp.SampledRate = 1 / float64(resp.SampleEvery)
		}
	}
	// ?model= narrows the ring to one model's traces; ?limit= keeps only
	// the most recent n of what remains (the snapshot is oldest-first).
	if model := r.URL.Query().Get("model"); model != "" {
		kept := resp.Traces[:0]
		for _, tr := range resp.Traces {
			if tr.Model == model {
				kept = append(kept, tr)
			}
		}
		resp.Traces = kept
	}
	if limStr := r.URL.Query().Get("limit"); limStr != "" {
		lim, err := strconv.Atoi(limStr)
		if err != nil || lim < 0 {
			s.writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad limit %q", limStr)})
			return
		}
		if lim < len(resp.Traces) {
			resp.Traces = resp.Traces[len(resp.Traces)-lim:]
		}
	}
	if resp.Traces == nil {
		resp.Traces = []obs.TraceRecord{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// TimelineResponse is the /debug/timeline JSON response body.
type TimelineResponse struct {
	// SampleEvery is the batch sampling period (one timeline per N
	// executed batches); 0 means timelines are disabled.
	SampleEvery int `json:"sample_every"`
	// Models carries one phase-utilization summary per model that has
	// sampled at least one batch.
	Models []TimelineSummary `json:"models"`
}

// handleTimeline serves the flight recorder: by default the per-model
// phase-utilization summaries (measured seconds and shares per modelled
// IPU and BSP phase, modelled-vs-measured compute/exchange), with
// ?format=chrome the retained batch timelines as Chrome trace-event
// JSON (one process per model, one track per modelled IPU) loadable in
// Perfetto or chrome://tracing. ?model= restricts either view.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	filter := r.URL.Query().Get("model")
	models := s.reg.Models()
	if r.URL.Query().Get("format") == "chrome" {
		procs := []timeline.ChromeProcess{}
		for _, m := range models {
			if filter != "" && m.Info().Name != filter {
				continue
			}
			if proc, ok := m.TimelineProcess(); ok {
				procs = append(procs, proc)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="timeline.json"`)
		if err := timeline.WriteChrome(w, procs); err != nil {
			s.encodeErrs.Inc()
			log.Printf("serve: writing chrome trace: %v", err)
		}
		return
	}
	resp := TimelineResponse{Models: []TimelineSummary{}}
	for _, m := range models {
		if filter != "" && m.Info().Name != filter {
			continue
		}
		if rec := m.Timeline(); rec != nil && resp.SampleEvery == 0 {
			resp.SampleEvery = rec.SampleEvery()
		}
		if sum, ok := m.TimelineSummary(); ok {
			resp.Models = append(resp.Models, sum)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ModelCostDrift is one model's block of the /debug/costmodel response.
type ModelCostDrift struct {
	Model  string `json:"model"`
	Shards int    `json:"shards"`
	// Steps lists modelled vs measured per-step cost, worst drift first;
	// empty until the model has executed its first batch.
	Steps []StepCostDrift `json:"steps"`
}

// CostModelResponse is the /debug/costmodel response body: per model, the
// modelled IPU cost of every plan step next to its measured per-row
// wall-clock. Models are ordered by their worst step's drift, worst first.
type CostModelResponse struct {
	Models []ModelCostDrift `json:"models"`
}

func (s *Server) handleCostModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	resp := CostModelResponse{Models: []ModelCostDrift{}}
	for _, m := range s.reg.Models() {
		steps := m.CostModelReport()
		if steps == nil {
			steps = []StepCostDrift{}
		}
		resp.Models = append(resp.Models, ModelCostDrift{
			Model:  m.Info().Name,
			Shards: m.Shards(),
			Steps:  steps,
		})
	}
	worst := func(md ModelCostDrift) float64 {
		if len(md.Steps) == 0 {
			return -1
		}
		return driftDist(md.Steps[0].Ratio) // steps are already worst-first
	}
	sort.SliceStable(resp.Models, func(i, j int) bool { return worst(resp.Models[i]) > worst(resp.Models[j]) })
	s.writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the JSON /healthz body (verbose or unhealthy paths).
type HealthResponse struct {
	Status string        `json:"status"` // "ok" or "unavailable"
	Models []ModelHealth `json:"models"`
}

// handleHealthz reports per-model readiness: 200 when at least one model
// is servable (bare "ok" unless ?verbose=1 asks for the JSON detail — the
// fast path probes stay on), 503 with the per-model JSON when none is.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health := s.reg.Health()
	servable := false
	for _, h := range health {
		if h.Ready {
			servable = true
			break
		}
	}
	if servable && r.URL.Query().Get("verbose") == "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
		return
	}
	resp := HealthResponse{Status: "ok", Models: health}
	if resp.Models == nil {
		resp.Models = []ModelHealth{}
	}
	code := http.StatusOK
	if !servable {
		resp.Status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}
