package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Server exposes a Registry over an HTTP JSON API:
//
//	POST /predict  {"model": "butterfly", "features": [ ... N floats ]}
//	GET  /models   → registered models
//	GET  /stats    → per-model serving stats + program-cache counters
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	started time.Time
}

// NewServer wraps a registry in the HTTP API.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/models", s.handleModels)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PredictRequest is the /predict request body.
type PredictRequest struct {
	Model    string    `json:"model"`
	Features []float32 `json:"features"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST required"})
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("bad request body: %v", err)})
		return
	}
	m, ok := s.reg.Get(req.Model)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{fmt.Sprintf("unknown model %q", req.Model)})
		return
	}
	pred, err := m.Predict(r.Context(), req.Features)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, pred)
	case errors.Is(err, ErrStopped):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.Is(err, ErrBadInput):
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	writeJSON(w, http.StatusOK, s.reg.List())
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_s"`
	Cache         CacheStats   `json:"program_cache"`
	Models        []ModelStats `json:"models"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"GET required"})
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Cache:         s.reg.CacheStats(),
		Models:        s.reg.Stats(),
	})
}
