package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
)

// TestCostModelEndpoint drives traffic through a model and checks the
// /debug/costmodel contract: every plan step appears with its modelled
// IPU cost next to a measured per-row wall-clock, worst drift first, and
// the drift ratios surface on /metrics alongside the per-kernel gauges.
func TestCostModelEndpoint(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{}, spec)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	features := obsTestFeatures(spec.N)
	for i := 0; i < 10; i++ {
		if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
			t.Fatal(err)
		}
	}

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	var cm CostModelResponse
	if err := json.Unmarshal([]byte(get("/debug/costmodel")), &cm); err != nil {
		t.Fatal(err)
	}
	if len(cm.Models) != 1 || cm.Models[0].Model != "bf" {
		t.Fatalf("costmodel models = %+v, want one entry for bf", cm.Models)
	}
	steps := cm.Models[0].Steps
	if len(steps) == 0 {
		t.Fatal("costmodel steps empty after traffic")
	}
	for i, st := range steps {
		if st.Step == "" {
			t.Errorf("step %d has no name", i)
		}
		if st.ModelledSeconds <= 0 {
			t.Errorf("step %q modelled = %v, want > 0", st.Step, st.ModelledSeconds)
		}
		if st.MeasuredSeconds <= 0 || st.Ratio <= 0 || st.Rows <= 0 {
			t.Errorf("step %q has no measurement: %+v", st.Step, st)
		}
		if i > 0 && driftDist(st.Ratio) > driftDist(steps[i-1].Ratio) {
			t.Errorf("steps not worst-first: %q (dist %.3f) after %q (dist %.3f)",
				st.Step, driftDist(st.Ratio), steps[i-1].Step, driftDist(steps[i-1].Ratio))
		}
	}

	metrics := get("/metrics")
	for _, series := range []string{
		`ipuserve_cost_model_drift_ratio{model="bf",step="`,
		`ipuserve_kernel_gflops{kernel="butterfly"}`,
		`ipuserve_kernel_gflops{kernel="matmul"}`,
		`ipuserve_kernel_bytes_per_sec{kernel="butterfly"}`,
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	// The registry-wide kernel sink saw the traffic: both families of the
	// butterfly model (sweeps + dense head) have non-zero totals.
	snaps := reg.KernelStats().Snapshot()
	if len(snaps) < 2 {
		t.Fatalf("kernel sink families = %v, want butterfly and matmul", snaps)
	}
	for _, s := range snaps {
		if s.Flops <= 0 || s.Nanos <= 0 || s.GFlopsPerSec <= 0 {
			t.Errorf("kernel %s snapshot not populated: %+v", s.Kernel, s)
		}
	}
}

// TestTracesConcurrentScrape hammers /debug/traces while predict traffic
// records new spans: under -race this gates the ring against torn reads,
// and every returned trace must be internally consistent — named spans,
// non-negative offsets and durations, the right model — with a stable
// sampled_rate across scrapes.
func TestTracesConcurrentScrape(t *testing.T) {
	spec := ModelSpec{Name: "bf", Method: nn.Butterfly, N: 256, Classes: 10, Seed: 1}
	reg := obsTestRegistry(t, Options{TraceSampleEvery: 2, TraceKeep: 16}, spec)
	srv := httptest.NewServer(NewServer(reg))
	defer srv.Close()

	features := obsTestFeatures(spec.N)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := reg.Predict(context.Background(), "bf", features); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + "/debug/traces")
				if err != nil {
					t.Error(err)
					return
				}
				var tr TracesResponse
				err = json.NewDecoder(resp.Body).Decode(&tr)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if tr.SampleEvery != 2 || tr.SampledRate != 0.5 {
					t.Errorf("sampled_rate = %v (every %d), want 0.5 (every 2)",
						tr.SampledRate, tr.SampleEvery)
					return
				}
				for _, rec := range tr.Traces {
					if rec.Model != "bf" {
						t.Errorf("trace %d: model %q, want bf", rec.ID, rec.Model)
					}
					if rec.TotalNanos <= 0 {
						t.Errorf("trace %d: total %dns, want > 0", rec.ID, rec.TotalNanos)
					}
					if len(rec.Spans) == 0 {
						t.Errorf("trace %d: no spans", rec.ID)
					}
					for _, sp := range rec.Spans {
						if sp.Name == "" || sp.StartNanos < 0 || sp.DurNanos < 0 {
							t.Errorf("trace %d: torn span %+v", rec.ID, sp)
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
