package serve

import (
	"repro/internal/obs/timeline"
)

// IPUPhaseShare is one modelled IPU's row of the timeline utilization
// summary: measured seconds per BSP phase over the recorder's sampled
// batches, and each phase's share of the IPU's sampled wall.
type IPUPhaseShare struct {
	IPU     int                      `json:"ipu"`
	Seconds timeline.IPUPhaseSeconds `json:"seconds"`

	ComputePct  float64 `json:"compute_pct"`
	ExchangePct float64 `json:"exchange_pct"`
	BarrierPct  float64 `json:"barrier_pct"`
	BubblePct   float64 `json:"bubble_pct"`
}

// TimelineSummary is one model's aggregated phase-utilization view — the
// JSON body of /debug/timeline and the source of the loadgen's phase
// table and the bench snapshot's phases block.
type TimelineSummary struct {
	Model    string `json:"model"`
	Strategy string `json:"strategy,omitempty"`
	Shards   int    `json:"shards"`
	// MicroBatches is the wavefront width pipeline batches split into
	// (0/1 = barrier loop; omitted for tensor-parallel models).
	MicroBatches int   `json:"micro_batches,omitempty"`
	SampleEvery  int   `json:"sample_every"`
	Batches      int64 `json:"sampled_batches"`
	Rows         int64 `json:"sampled_rows"`

	PerIPU []IPUPhaseShare `json:"per_ipu"`

	// Model-wide phase shares (fraction of summed per-IPU sampled wall).
	ComputeShare   float64 `json:"compute_share"`
	ExchangeShare  float64 `json:"exchange_share"`
	BarrierShare   float64 `json:"barrier_share"`
	BubbleFraction float64 `json:"bubble_fraction"`

	// Modelled-vs-measured per phase, over the same sampled batches:
	// what the analytic cost model priced the sampled compute and
	// exchange at, next to what the host executor measured. Barrier and
	// bubble have no modelled counterpart — the analytic model assumes
	// them away, which is exactly what makes them worth recording.
	MeasuredComputeSeconds  float64 `json:"measured_compute_s"`
	ModelledComputeSeconds  float64 `json:"modelled_compute_s"`
	MeasuredExchangeSeconds float64 `json:"measured_exchange_s"`
	ModelledExchangeSeconds float64 `json:"modelled_exchange_s"`
}

// TimelineSummary aggregates the model's flight-recorder totals into the
// phase-utilization view; ok is false when timelines are disabled or no
// batch has been sampled yet.
func (m *Model) TimelineSummary() (TimelineSummary, bool) {
	rec := m.timeline
	if rec == nil {
		return TimelineSummary{}, false
	}
	tot := rec.Totals()
	if tot.Batches == 0 {
		return TimelineSummary{}, false
	}
	s := TimelineSummary{
		Model:       m.spec.Name,
		Shards:      m.shards,
		SampleEvery: rec.SampleEvery(),
		Batches:     tot.Batches,
		Rows:        tot.Rows,
		PerIPU:      make([]IPUPhaseShare, len(tot.PerIPU)),

		ModelledComputeSeconds:  tot.ModelledCompute,
		ModelledExchangeSeconds: tot.ModelledExchange,
		BubbleFraction:          rec.BubbleFraction(),
	}
	if meta := rec.Meta(); meta != nil {
		s.Strategy = meta.Strategy
		s.MicroBatches = meta.MicroBatches
	}
	var all, compute, exchange, barrier float64
	for i, ps := range tot.PerIPU {
		row := IPUPhaseShare{IPU: i, Seconds: ps}
		if t := ps.Total(); t > 0 {
			row.ComputePct = 100 * ps.Compute / t
			row.ExchangePct = 100 * ps.Exchange / t
			row.BarrierPct = 100 * ps.Barrier / t
			row.BubblePct = 100 * ps.Bubble / t
		}
		s.PerIPU[i] = row
		all += ps.Total()
		compute += ps.Compute
		exchange += ps.Exchange
		barrier += ps.Barrier
	}
	s.MeasuredComputeSeconds = compute
	s.MeasuredExchangeSeconds = exchange
	if all > 0 {
		s.ComputeShare = compute / all
		s.ExchangeShare = exchange / all
		s.BarrierShare = barrier / all
	}
	return s, true
}

// TimelineProcess packages the model's retained batch timelines for
// Chrome trace export; ok is false when there is nothing to export.
func (m *Model) TimelineProcess() (timeline.ChromeProcess, bool) {
	rec := m.timeline
	if rec == nil {
		return timeline.ChromeProcess{}, false
	}
	batches := rec.Snapshot()
	if len(batches) == 0 {
		return timeline.ChromeProcess{}, false
	}
	return timeline.ChromeProcess{Name: m.spec.Name, Meta: rec.Meta(), Batches: batches}, true
}
