package core

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestNewTransformAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []Method{Butterfly, Fastfood, Circulant, LowRank, Pixelfly} {
		tr, err := NewTransform(m, 1024, Options{RotationButterfly: true}, rng)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		x := tensor.New(2, 1024)
		x.FillRandom(rng, 1)
		y := tr.Forward(x)
		if y.Rows != 2 || y.Cols != 1024 {
			t.Fatalf("%v: bad output shape %dx%d", m, y.Rows, y.Cols)
		}
		dx := tr.Backward(y)
		if dx.Rows != 2 || dx.Cols != 1024 {
			t.Fatalf("%v: bad gradient shape", m)
		}
		// Every compressed method removes the vast majority of the dense
		// layer's parameters (the paper's premise).
		if CompressionRatio(tr, 1024) < 0.6 {
			t.Fatalf("%v: compression %v too weak", m, CompressionRatio(tr, 1024))
		}
	}
}

func TestNewTransformTable4Counts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bf, err := NewTransform(Butterfly, 1024, Options{RotationButterfly: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bf.ParamCount() != 5120 {
		t.Fatalf("rotation butterfly params = %d, want 5120", bf.ParamCount())
	}
	pf, err := NewTransform(Pixelfly, 1024, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pf.ParamCount() != 393216 {
		t.Fatalf("paper pixelfly params = %d, want 393216", pf.ParamCount())
	}
}

func TestBaselineIsNotATransform(t *testing.T) {
	if _, err := NewTransform(Baseline, 64, Options{}, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("Baseline should be rejected")
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := NewTransform(Method(42), 64, Options{}, rand.New(rand.NewSource(4))); err == nil {
		t.Fatal("unknown method should be rejected")
	}
}
