// Package core is the front door to the paper's primary contribution: it
// re-exports the structured-matrix layers (butterfly, pixelated butterfly,
// and the Table 4 baselines) behind one constructor, so downstream code
// can pick a compression method by name and treat all of them uniformly
// via the nn.Transform protocol.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/nn"
	"repro/internal/pixelfly"
)

// Transform is the common protocol of every structured weight matrix
// (alias of nn.Transform): Forward/Backward over row-major batches,
// optimizer-ready parameter access, and flop accounting.
type Transform = nn.Transform

// Method names a structured-matrix family (alias of nn.Method; values
// Baseline, Butterfly, Fastfood, Circulant, LowRank, Pixelfly).
type Method = nn.Method

// Re-exported method constants, in Table 4 order.
const (
	Baseline  = nn.Baseline
	Butterfly = nn.Butterfly
	Fastfood  = nn.Fastfood
	Circulant = nn.Circulant
	LowRank   = nn.LowRank
	Pixelfly  = nn.Pixelfly
)

// Options tune method-specific knobs of NewTransform.
type Options struct {
	// Rank of the LowRank method (default 1, the Table 4 setting).
	Rank int
	// Pixelfly configuration; zero value selects the paper's Table 4
	// configuration (block 64, butterfly network 16, low-rank 32).
	Pixelfly pixelfly.Config
	// RotationButterfly selects the (N/2)·log2 N-parameter butterfly
	// (the 98.5%-compression variant); false selects the 2·N·log2 N
	// dense-2×2 parameterization.
	RotationButterfly bool
}

// NewTransform builds an n×n structured weight of the requested method.
// Baseline is not a Transform (it is a dense layer); requesting it
// returns an error.
func NewTransform(m Method, n int, opt Options, rng *rand.Rand) (Transform, error) {
	switch m {
	case Butterfly:
		p := butterfly.Dense2x2
		if opt.RotationButterfly {
			p = butterfly.Rotation
		}
		return butterfly.New(n, p, rng), nil
	case Fastfood:
		return baselines.NewFastfood(n, rng), nil
	case Circulant:
		return baselines.NewCirculant(n, rng), nil
	case LowRank:
		rank := opt.Rank
		if rank == 0 {
			rank = 1
		}
		return baselines.NewLowRank(n, rank, rng), nil
	case Pixelfly:
		cfg := opt.Pixelfly
		if cfg.N == 0 {
			cfg = nn.PaperPixelflyConfig(n)
		}
		return pixelfly.New(cfg, rng)
	case Baseline:
		return nil, fmt.Errorf("core: Baseline is a dense layer, not a Transform; use nn.NewDense")
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// CompressionRatio returns the fraction of parameters a method removes
// relative to the n×n dense weight it replaces.
func CompressionRatio(t Transform, n int) float64 {
	return 1 - float64(t.ParamCount())/float64(n*n)
}
