// Package fft implements a radix-2 complex FFT, circular convolution of
// real vectors, and the explicit Cooley–Tukey butterfly-factor matrices of
// the paper's Equation (1). The circulant baseline layer and the
// FFT-equivalence tests of the butterfly package are built on it.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/sparse"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a power of two n; panics otherwise.
func Log2(n int) int {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: %d is not a power of two", n))
	}
	l := 0
	for m := n; m > 1; m >>= 1 {
		l++
	}
	return l
}

// BitReverse returns the bit-reversal permutation of {0..n-1} for a
// power-of-two n: perm[i] = reverse of the log2(n)-bit representation of i.
func BitReverse(n int) []int {
	bits := Log2(n)
	perm := make([]int, n)
	for i := range perm {
		r := 0
		for b := 0; b < bits; b++ {
			r = (r << 1) | ((i >> b) & 1)
		}
		perm[i] = r
	}
	return perm
}

// FFT computes the in-order forward DFT of x (length must be a power of
// two) using iterative radix-2 Cooley–Tukey. The input is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	perm := BitReverse(n)
	for i, p := range perm {
		out[i] = x[p]
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			tw := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * tw
				out[start+k] = a + b
				out[start+k+half] = a - b
				tw *= w
			}
		}
	}
	return out
}

// IFFT computes the inverse DFT (normalized by 1/n).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y := FFT(conj)
	inv := 1 / float64(n)
	for i, v := range y {
		y[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return y
}

// NaiveDFT computes the DFT by direct O(N²) summation; it is the oracle
// for FFT correctness tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = s
	}
	return out
}

// CircularConvolve returns the circular convolution of real vectors a and b
// (equal power-of-two length) computed via FFT: ifft(fft(a)·fft(b)).
// This is the O(N log N) kernel of the circulant layer.
func CircularConvolve(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fft: CircularConvolve length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	ca := make([]complex128, n)
	cb := make([]complex128, n)
	for i := range a {
		ca[i] = complex(float64(a[i]), 0)
		cb[i] = complex(float64(b[i]), 0)
	}
	fa := FFT(ca)
	fb := FFT(cb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	res := IFFT(fa)
	out := make([]float32, n)
	for i := range res {
		out[i] = float32(real(res[i]))
	}
	return out
}

// CircularCorrelate returns the circular cross-correlation c[k] =
// Σ_t a[t]·b[t+k mod n]; it is the adjoint of CircularConvolve and is used
// by the circulant layer's backward pass.
func CircularCorrelate(a, b []float32) []float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fft: CircularCorrelate length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	ca := make([]complex128, n)
	cb := make([]complex128, n)
	for i := range a {
		ca[i] = complex(float64(a[i]), 0)
		cb[i] = complex(float64(b[i]), 0)
	}
	fa := FFT(ca)
	fb := FFT(cb)
	for i := range fa {
		fa[i] = cmplx.Conj(fa[i]) * fb[i]
	}
	res := IFFT(fa)
	out := make([]float32, n)
	for i := range res {
		out[i] = float32(real(res[i]))
	}
	return out
}

// DFTMatrix returns the dense N×N DFT matrix F with
// F[k][t] = exp(-2πi·k·t/N).
func DFTMatrix(n int) [][]complex128 {
	out := make([][]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = make([]complex128, n)
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			out[k][t] = cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

// CooleyTukeyFactor returns the s-th butterfly factor of the radix-2 DIT
// FFT of size n as an explicit complex sparse matrix (COO of real and
// imaginary parts). Stage s ∈ [1, log2 n] combines blocks of size 2^s:
//
//	F_stage = diag over blocks of [ I  Ω ; I  -Ω ]
//
// matching Equation (1) of the paper. The returned matrices hold the real
// and imaginary parts separately so they can be consumed by the float32
// sparse kernels.
func CooleyTukeyFactor(n, s int) (re, im *sparse.COO) {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: size %d not a power of two", n))
	}
	stages := Log2(n)
	if s < 1 || s > stages {
		panic(fmt.Sprintf("fft: stage %d out of range [1,%d]", s, stages))
	}
	size := 1 << s
	half := size / 2
	re = sparse.NewCOO(n, n)
	im = sparse.NewCOO(n, n)
	for start := 0; start < n; start += size {
		for k := 0; k < half; k++ {
			angle := -2 * math.Pi * float64(k) / float64(size)
			wr := math.Cos(angle)
			wi := math.Sin(angle)
			top := start + k
			bot := start + k + half
			// out[top] = in[top] + w·in[bot]
			re.Append(top, top, 1)
			re.Append(top, bot, float32(wr))
			im.Append(top, bot, float32(wi))
			// out[bot] = in[top] - w·in[bot]
			re.Append(bot, top, 1)
			re.Append(bot, bot, float32(-wr))
			im.Append(bot, bot, float32(-wi))
		}
	}
	return re, im
}

// ApplyFactors runs x through the full Cooley–Tukey pipeline: bit-reversal
// permutation followed by all log2(n) butterfly factor stages. It must
// reproduce FFT(x) exactly (up to rounding) and is used to validate that a
// product of explicit butterfly factors is the DFT — the structural claim
// behind butterfly factorizations.
func ApplyFactors(x []complex128) []complex128 {
	n := len(x)
	perm := BitReverse(n)
	cur := make([]complex128, n)
	for i, p := range perm {
		cur[i] = x[p]
	}
	for s := 1; s <= Log2(n); s++ {
		re, im := CooleyTukeyFactor(n, s)
		next := make([]complex128, n)
		for e := range re.Val {
			i, j := int(re.RowIdx[e]), int(re.ColIdx[e])
			next[i] += complex(float64(re.Val[e]), 0) * cur[j]
		}
		for e := range im.Val {
			i, j := int(im.RowIdx[e]), int(im.ColIdx[e])
			next[i] += complex(0, float64(im.Val[e])) * cur[j]
		}
		cur = next
	}
	return cur
}

// Plan precomputes the bit-reversal permutation of one FFT size so the
// transform can run in place over caller-owned buffers — the
// allocation-free path the circulant layer's compiled inference plan uses.
// Transform and Inverse perform exactly the same arithmetic as FFT and
// IFFT, so results are bit-identical to the allocating path.
type Plan struct {
	n    int
	perm []int
}

// NewPlan builds a plan for power-of-two size n.
func NewPlan(n int) *Plan {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("fft: plan size %d is not a power of two", n))
	}
	return &Plan{n: n, perm: BitReverse(n)}
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Transform computes the forward DFT of buf (len == Size) in place.
func (p *Plan) Transform(buf []complex128) {
	n := p.n
	if len(buf) != n {
		panic(fmt.Sprintf("fft: plan size %d, buffer length %d", n, len(buf)))
	}
	// The bit-reversal permutation is an involution, so swapping each
	// i < perm[i] pair applies it in place.
	for i, pi := range p.perm {
		if i < pi {
			buf[i], buf[pi] = buf[pi], buf[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			tw := complex(1, 0)
			for k := 0; k < half; k++ {
				a := buf[start+k]
				b := buf[start+k+half] * tw
				buf[start+k] = a + b
				buf[start+k+half] = a - b
				tw *= w
			}
		}
	}
}

// Inverse computes the inverse DFT of buf (normalized by 1/n) in place,
// via the same conjugation identity IFFT uses.
func (p *Plan) Inverse(buf []complex128) {
	for i, v := range buf {
		buf[i] = cmplx.Conj(v)
	}
	p.Transform(buf)
	inv := 1 / float64(p.n)
	for i, v := range buf {
		buf[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}
