package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func complexAlmostEqual(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randomComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1023} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	if Log2(1024) != 10 || Log2(1) != 0 {
		t.Fatal("Log2 wrong")
	}
}

func TestBitReverseN8(t *testing.T) {
	want := []int{0, 4, 2, 6, 1, 5, 3, 7}
	got := BitReverse(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BitReverse(8) = %v, want %v", got, want)
		}
	}
}

func TestBitReverseIsInvolution(t *testing.T) {
	perm := BitReverse(64)
	for i, p := range perm {
		if perm[p] != i {
			t.Fatalf("bit reversal not an involution at %d", i)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := randomComplex(rng, n)
		want := NaiveDFT(x)
		got := FFT(x)
		if !complexAlmostEqual(want, got, 1e-9*float64(n)) {
			t.Fatalf("n=%d: FFT != naive DFT", n)
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	// DFT of impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	got := FFT(x)
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomComplex(rng, 64)
	back := IFFT(FFT(x))
	if !complexAlmostEqual(x, back, 1e-10) {
		t.Fatal("IFFT(FFT(x)) != x")
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 6 did not panic")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomComplex(rng, 16)
	cp := append([]complex128(nil), x...)
	FFT(x)
	if !complexAlmostEqual(x, cp, 0) {
		t.Fatal("FFT mutated its input")
	}
}

func TestCircularConvolveKnown(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 0, 0, 0}
	got := CircularConvolve(a, b)
	for i := range a {
		if math.Abs(float64(got[i]-a[i])) > 1e-5 {
			t.Fatalf("convolution with delta: got %v", got)
		}
	}
	// shift by one: b = delta at 1 rotates a.
	b = []float32{0, 1, 0, 0}
	got = CircularConvolve(a, b)
	want := []float32{4, 1, 2, 3}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-5 {
			t.Fatalf("shifted conv: got %v, want %v", got, want)
		}
	}
}

func TestCircularConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 32
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	got := CircularConvolve(a, b)
	for k := 0; k < n; k++ {
		var s float64
		for t2 := 0; t2 < n; t2++ {
			s += float64(a[t2]) * float64(b[(k-t2+n)%n])
		}
		if math.Abs(float64(got[k])-s) > 1e-4 {
			t.Fatalf("conv[%d] = %v, want %v", k, got[k], s)
		}
	}
}

func TestCircularCorrelateIsAdjoint(t *testing.T) {
	// <conv(a, x), y> == <x, corr(a, y)> — adjoint identity the circulant
	// layer backward relies on.
	rng := rand.New(rand.NewSource(5))
	n := 16
	a := make([]float32, n)
	x := make([]float32, n)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		a[i] = rng.Float32()*2 - 1
		x[i] = rng.Float32()*2 - 1
		y[i] = rng.Float32()*2 - 1
	}
	cx := CircularConvolve(a, x)
	cy := CircularCorrelate(a, y)
	var lhs, rhs float64
	for i := 0; i < n; i++ {
		lhs += float64(cx[i]) * float64(y[i])
		rhs += float64(x[i]) * float64(cy[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestDFTMatrixMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 16
	x := randomComplex(rng, n)
	F := DFTMatrix(n)
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for t2 := 0; t2 < n; t2++ {
			want[k] += F[k][t2] * x[t2]
		}
	}
	if !complexAlmostEqual(want, FFT(x), 1e-9) {
		t.Fatal("DFT matrix multiply != FFT")
	}
}

// The load-bearing structural test: the product of the log2(N) explicit
// Cooley–Tukey butterfly factors (applied to the bit-reversed input) IS the
// DFT — the foundation of the butterfly factorization (paper Eq. 1–2).
func TestCooleyTukeyFactorsReproduceDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 16, 64} {
		x := randomComplex(rng, n)
		want := FFT(x)
		got := ApplyFactors(x)
		if !complexAlmostEqual(want, got, 1e-6*float64(n)) {
			t.Fatalf("n=%d: butterfly factor product != DFT", n)
		}
	}
}

func TestCooleyTukeyFactorSparsity(t *testing.T) {
	// Each factor must have exactly 2 nonzeros per row (the O(N) property
	// that gives butterfly its O(N log N) total cost).
	n := 32
	for s := 1; s <= Log2(n); s++ {
		re, im := CooleyTukeyFactor(n, s)
		counts := make([]int, n)
		seen := make(map[[2]int32]bool)
		for e := range re.Val {
			key := [2]int32{re.RowIdx[e], re.ColIdx[e]}
			if !seen[key] {
				seen[key] = true
				counts[re.RowIdx[e]]++
			}
		}
		for e := range im.Val {
			key := [2]int32{im.RowIdx[e], im.ColIdx[e]}
			if !seen[key] {
				seen[key] = true
				counts[im.RowIdx[e]]++
			}
		}
		for i, c := range counts {
			if c != 2 {
				t.Fatalf("stage %d row %d has %d nonzero positions, want 2", s, i, c)
			}
		}
	}
}

func TestCooleyTukeyFactorStageBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stage 0 did not panic")
		}
	}()
	CooleyTukeyFactor(8, 0)
}

// Property: Parseval — energy preserved up to factor n.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		x := randomComplex(rng, n)
		X := FFT(x)
		var ex, eX float64
		for i := 0; i < n; i++ {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			eX += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(eX-float64(n)*ex) < 1e-6*(1+eX)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: FFT is linear.
func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(5))
		x := randomComplex(rng, n)
		y := randomComplex(rng, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		fs := FFT(sum)
		fx := FFT(x)
		fy := FFT(y)
		for i := range fs {
			if cmplx.Abs(fs[i]-fx[i]-fy[i]) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomComplex(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

// TestPlanBitIdenticalToFFT checks the in-place plan transform against the
// allocating FFT/IFFT/CircularConvolve, exactly — the guarantee the
// circulant layer's compiled inference path relies on.
func TestPlanBitIdenticalToFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 8, 64, 256} {
		p := NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := FFT(x)
		buf := append([]complex128(nil), x...)
		p.Transform(buf)
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d: Transform[%d] = %v, want %v (bit-exact)", n, i, buf[i], want[i])
			}
		}
		wantInv := IFFT(x)
		buf = append(buf[:0], x...)
		p.Inverse(buf)
		for i := range wantInv {
			if buf[i] != wantInv[i] {
				t.Fatalf("n=%d: Inverse[%d] = %v, want %v (bit-exact)", n, i, buf[i], wantInv[i])
			}
		}

		// Convolution via plan primitives (the circulant layer's ApplyInto
		// composition: transform both operands, multiply with the first
		// operand on the left, inverse) must be bit-identical to
		// CircularConvolve.
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		wantConv := CircularConvolve(a, b)
		ca := make([]complex128, n)
		cb := make([]complex128, n)
		for i := 0; i < n; i++ {
			ca[i] = complex(float64(a[i]), 0)
			cb[i] = complex(float64(b[i]), 0)
		}
		p.Transform(ca)
		p.Transform(cb)
		for i := range cb {
			cb[i] = ca[i] * cb[i]
		}
		p.Inverse(cb)
		for i := range wantConv {
			if got := float32(real(cb[i])); got != wantConv[i] {
				t.Fatalf("n=%d: plan convolution[%d] = %v, want %v (bit-exact)", n, i, got, wantConv[i])
			}
		}
	}
}
