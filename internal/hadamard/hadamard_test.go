package hadamard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 32} {
		x := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		want := make([]float64, n)
		H := Matrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want[i] += float64(H[i][j]) * float64(x[j])
			}
		}
		got := append([]float32(nil), x...)
		Transform(got)
		for i := range want {
			if math.Abs(float64(got[i])-want[i]) > 1e-4 {
				t.Fatalf("n=%d: FWHT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestTransformKnownN4(t *testing.T) {
	x := []float32{1, 0, 1, 0}
	Transform(x)
	want := []float32{2, 2, 0, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("FWHT = %v, want %v", x, want)
		}
	}
}

func TestTransformPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FWHT of length 3 did not panic")
		}
	}()
	Transform(make([]float32, 3))
}

func TestDoubleTransformIsScaledIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 16
	x := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	orig := append([]float32(nil), x...)
	Transform(x)
	Transform(x)
	for i := range x {
		if math.Abs(float64(x[i]-float32(n)*orig[i])) > 1e-3 {
			t.Fatalf("H·H != N·I at %d: %v vs %v", i, x[i], float32(n)*orig[i])
		}
	}
}

func TestScaledTransformIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	x := make([]float32, n)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	orig := append([]float32(nil), x...)
	TransformScaled(x)
	TransformScaled(x)
	for i := range x {
		if math.Abs(float64(x[i]-orig[i])) > 1e-4 {
			t.Fatalf("scaled FWHT not involution at %d", i)
		}
	}
}

func TestMatrixOrthogonalRows(t *testing.T) {
	n := 8
	H := Matrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += float64(H[i][k]) * float64(H[j][k])
			}
			want := 0.0
			if i == j {
				want = float64(n)
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("rows %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}

// Property: FWHT preserves energy up to factor N (Parseval for Hadamard).
func TestEnergyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		x := make([]float32, n)
		var e0 float64
		for i := range x {
			x[i] = rng.Float32()*2 - 1
			e0 += float64(x[i]) * float64(x[i])
		}
		Transform(x)
		var e1 float64
		for i := range x {
			e1 += float64(x[i]) * float64(x[i])
		}
		return math.Abs(e1-float64(n)*e0) < 1e-3*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFWHT1024(b *testing.B) {
	x := make([]float32, 1024)
	for i := range x {
		x[i] = float32(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(x)
	}
}
