// Package hadamard implements the fast Walsh–Hadamard transform (FWHT),
// the H factor of the Fastfood baseline (S·H·G·Π·H·B). The transform is
// its own inverse up to a 1/N factor, which makes the Fastfood backward
// pass a second application of the same kernel.
package hadamard

import (
	"fmt"

	"repro/internal/tensor/microkernel"
)

// Transform applies the (unnormalized) Walsh–Hadamard transform to x in
// place. len(x) must be a power of two. The unnormalized transform obeys
// H·H = N·I.
func Transform(x []float32) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("hadamard: length %d is not a power of two", n))
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// TransformFast is Transform through the register-tiled micro-kernel:
// the h=1/2/4 passes fuse into one radix-8 sweep and later passes run
// unrolled with an L1-blocked pass order. Every butterfly performs the
// same a+b / a-b on the same operands as Transform's triple loop, so the
// result is bit-identical.
func TransformFast(x []float32) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("hadamard: length %d is not a power of two", n))
	}
	microkernel.FWHT(x)
}

// TransformScaled applies the orthonormal transform H/sqrt(N), which is an
// involution: TransformScaled(TransformScaled(x)) == x.
func TransformScaled(x []float32) {
	Transform(x)
	n := len(x)
	inv := 1 / sqrt32(float32(n))
	for i := range x {
		x[i] *= inv
	}
}

// Matrix returns the dense N×N unnormalized Hadamard matrix (entries ±1),
// used as the verification oracle.
func Matrix(n int) [][]float32 {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("hadamard: size %d is not a power of two", n))
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, n)
		for j := range out[i] {
			// H[i][j] = (-1)^{popcount(i & j)}
			if popcount(i&j)%2 == 0 {
				out[i][j] = 1
			} else {
				out[i][j] = -1
			}
		}
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c++
		x &= x - 1
	}
	return c
}

func sqrt32(x float32) float32 {
	// Newton iterations on float64 then truncate: adequate for scaling.
	if x <= 0 {
		return 0
	}
	f := float64(x)
	g := f
	for i := 0; i < 32; i++ {
		g = 0.5 * (g + f/g)
	}
	return float32(g)
}
