package hadamard

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestTransformFastMatchesTransform demands bit equality between the
// radix-8/blocked FWHT and the reference triple loop across every
// power-of-two size through the chunked regime.
func TestTransformFastMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 1<<14; n <<= 1 {
		x := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		want := append([]float32(nil), x...)
		Transform(want)
		TransformFast(x)
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestTransformFastRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	TransformFast(make([]float32, 12))
}

// BenchmarkFWHT compares the reference transform against the radix-8
// micro-kernel at serving-realistic widths.
func BenchmarkFWHT(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{256, 1024, 4096} {
		x := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		// n·log2(n) butterflies, 2 flops each.
		logn := 0
		for 1<<logn < n {
			logn++
		}
		flops := int64(2 * n * logn)
		b.Run(fmt.Sprintf("ref/n%d", n), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				Transform(x)
			}
		})
		b.Run(fmt.Sprintf("radix8/n%d", n), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				TransformFast(x)
			}
		})
	}
}
