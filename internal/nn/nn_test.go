package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	d := &Dense{In: 2, Out: 2,
		W:     tensor.FromSlice(2, 2, []float32{1, 2, 3, 4}),
		GradW: tensor.New(2, 2),
		Bias:  []float32{10, 20}, GradB: make([]float32, 2)}
	x := tensor.FromSlice(1, 2, []float32{1, 1})
	y := d.Forward(x)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("dense forward = %v, want [14 26]", y.Data)
	}
}

func TestDenseGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(6, 4, rng)
	x := tensor.New(3, 6)
	x.FillRandom(rng, 1)
	r := tensor.New(3, 4)
	r.FillRandom(rng, 1)
	loss := func() float64 {
		y := d.Forward(x)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	d.ZeroGrad()
	d.Forward(x)
	dx := d.Backward(r)
	const h = 1e-3
	// input grads
	for i := 0; i < len(x.Data); i += 4 {
		orig := x.Data[i]
		x.Data[i] = orig + h
		up := loss()
		x.Data[i] = orig - h
		dn := loss()
		x.Data[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Fatalf("dense input grad[%d]: %v vs %v", i, dx.Data[i], num)
		}
	}
	// weight grads
	params, grads := d.Params()
	for pi, ps := range params {
		for j := 0; j < len(ps); j += 7 {
			orig := ps[j]
			ps[j] = orig + h
			up := loss()
			ps[j] = orig - h
			dn := loss()
			ps[j] = orig
			num := (up - dn) / (2 * h)
			if math.Abs(num-float64(grads[pi][j])) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("dense weight grad[%d][%d]: %v vs %v", pi, j, grads[pi][j], num)
			}
		}
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float32{0, 2, 0, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu forward = %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 4, []float32{5, 5, 5, 5})
	dx := r.Backward(dy)
	wantG := []float32{0, 5, 0, 5}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("relu backward = %v", dx.Data)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// uniform logits over 4 classes: loss = ln(4)
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// gradient rows sum to zero
	for r := 0; r < 2; r++ {
		var s float64
		for _, v := range grad.Row(r) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(3, 5)
	logits.FillRandom(rng, 2)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const h = 1e-3
	for i := 0; i < len(logits.Data); i += 2 {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		up, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - h
		dn, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (up - dn) / (2 * h)
		if math.Abs(num-float64(grad.Data[i])) > 1e-3*(1+math.Abs(num)) {
			t.Fatalf("CE grad[%d]: %v vs %v", i, grad.Data[i], num)
		}
	}
}

func TestSoftmaxLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad label did not panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{3})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 2, 1})
	got := Accuracy(logits, []int{0, 1, 1})
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v, want 2/3", got)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||W||² via a model with one dense layer fed zeros and
	// L2-style gradient injected manually; simpler: check the update rule.
	rng := rand.New(rand.NewSource(3))
	d := NewDense(2, 2, rng)
	model := NewSequential(d)
	opt := NewSGD(model, 0.1, 0.9)
	// With grad = p (gradient of ½||p||²), iterates must decay.
	norm0 := d.W.FrobeniusNorm()
	for it := 0; it < 200; it++ {
		model.ZeroGrad()
		copy(d.GradW.Data, d.W.Data)
		copy(d.GradB, d.Bias)
		opt.Step()
	}
	if d.W.FrobeniusNorm() > norm0*1e-3 {
		t.Fatalf("SGD failed to shrink weights: %v -> %v", norm0, d.W.FrobeniusNorm())
	}
}

func TestSGDMomentumUpdateRule(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense(1, 1, rng)
	model := NewSequential(d)
	opt := NewSGD(model, 0.5, 0.9)
	d.W.Data[0] = 1
	// constant gradient 1: v1 = -0.5, p = 0.5; v2 = -0.95, p = -0.45
	d.GradW.Data[0] = 1
	opt.Step()
	if math.Abs(float64(d.W.Data[0])-0.5) > 1e-6 {
		t.Fatalf("after step1 p = %v, want 0.5", d.W.Data[0])
	}
	d.GradW.Data[0] = 1
	opt.Step()
	if math.Abs(float64(d.W.Data[0])+0.45) > 1e-6 {
		t.Fatalf("after step2 p = %v, want -0.45", d.W.Data[0])
	}
}

// Table 4's NParams column, reproduced exactly (butterfly off by 4 — the
// paper counts 16,390; our rotation parameterization yields 16,394, see
// EXPERIMENTS.md).
func TestSHLParamCountsMatchTable4(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		m    Method
		want int
	}{
		{Baseline, 1059850},
		{Butterfly, 16394},
		{Fastfood, 14346},
		{Circulant, 12298},
		{LowRank, 13322},
		{Pixelfly, 404490},
	}
	for _, tc := range cases {
		model := BuildSHL(tc.m, 1024, 10, rng)
		if got := model.ParamCount(); got != tc.want {
			t.Errorf("%v: NParams = %d, want %d", tc.m, got, tc.want)
		}
	}
}

func TestButterflyCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := BuildSHL(Baseline, 1024, 10, rng).ParamCount()
	bf := BuildSHL(Butterfly, 1024, 10, rng).ParamCount()
	ratio := 1 - float64(bf)/float64(base)
	if ratio < 0.984 || ratio > 0.986 {
		t.Fatalf("compression ratio %v, want ~0.985 (paper's 98.5%%)", ratio)
	}
}

func TestEndToEndGradientSHL(t *testing.T) {
	// Full-model numerical gradient check on a miniature SHL.
	rng := rand.New(rand.NewSource(7))
	model := BuildSHL(Butterfly, 16, 3, rng)
	x := tensor.New(4, 16)
	x.FillRandom(rng, 1)
	labels := []int{0, 1, 2, 1}
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(model.Forward(x), labels)
		return l
	}
	model.ZeroGrad()
	logits := model.Forward(x)
	_, dL := SoftmaxCrossEntropy(logits, labels)
	model.Backward(dL)
	params, grads := model.Params()
	const h = 1e-2
	checked := 0
	for pi, ps := range params {
		step := len(ps)/5 + 1
		for j := 0; j < len(ps); j += step {
			orig := ps[j]
			ps[j] = orig + h
			model.Refresh()
			up := loss()
			ps[j] = orig - h
			model.Refresh()
			dn := loss()
			ps[j] = orig
			model.Refresh()
			num := (up - dn) / (2 * h)
			got := float64(grads[pi][j])
			if math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
				t.Fatalf("model grad[%d][%d]: analytic %v numeric %v", pi, j, got, num)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	cfg := dataset.Config{
		Name: "tiny", Classes: 4, Side: 8,
		Train: 240, Test: 80, ValFraction: 0.15,
		AtomsPerClass: 3, BlobsPerClass: 1,
		NoiseStd: 0.3, GainStd: 0.3, Seed: 11,
	}
	ds := dataset.Generate(cfg)
	rng := rand.New(rand.NewSource(8))
	model := BuildSHL(Baseline, 64, 4, rng)
	before := Evaluate(model, ds.XTest, ds.YTest)
	res := Train(model, ds, TrainConfig{Epochs: 12, BatchSize: 25, LR: 0.05, Momentum: 0.9, Seed: 9})
	if res.TestAccuracy < 0.5 {
		t.Fatalf("trained accuracy %v too low (before: %v)", res.TestAccuracy, before)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.TrainLoss)
	}
	// 240 − 15% validation = 204 train rows → ceil(204/25) = 9 batches/epoch.
	if res.Steps != 12*9 {
		t.Fatalf("steps = %d, want 108", res.Steps)
	}
}

func TestStructuredMethodsTrainAboveChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep")
	}
	cfg := dataset.Config{
		Name: "tiny", Classes: 4, Side: 8,
		Train: 240, Test: 80, ValFraction: 0.15,
		AtomsPerClass: 3, BlobsPerClass: 1,
		NoiseStd: 0.3, GainStd: 0.3, Seed: 12,
	}
	ds := dataset.Generate(cfg)
	for _, m := range []Method{Butterfly, Fastfood, Circulant} {
		rng := rand.New(rand.NewSource(10))
		var model *Sequential
		if m == Pixelfly {
			continue // paper config needs n=1024
		}
		model = BuildSHL(m, 64, 4, rng)
		res := Train(model, ds, TrainConfig{Epochs: 10, BatchSize: 25, LR: 0.05, Momentum: 0.9, Seed: 13})
		if res.TestAccuracy < 0.3 {
			t.Errorf("%v: accuracy %v barely above chance", m, res.TestAccuracy)
		}
	}
}

func TestPaperHyperparamsTable3(t *testing.T) {
	h := PaperHyperparams()
	if h.LearningRate != 0.001 || h.Momentum != 0.9 || h.BatchSize != 50 ||
		h.ValFraction != 0.15 || h.Activation != "ReLU" ||
		h.Loss != "Cross-Entropy" || h.Optimizer != "SGD" {
		t.Fatalf("hyperparameters diverge from Table 3: %+v", h)
	}
}

func TestEvaluateChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	model := BuildSHL(Baseline, 16, 2, rng)
	x := tensor.New(403, 16) // not a multiple of the chunk size
	x.FillRandom(rng, 1)
	y := make([]int, 403)
	acc := Evaluate(model, x, y)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}
