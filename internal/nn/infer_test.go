package nn

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestInferMatchesForward checks that the read-only inference path produces
// bit-identical outputs to the training forward pass for every Table 4
// method — the correctness contract the serving subsystem depends on.
func TestInferMatchesForward(t *testing.T) {
	const n, classes, batch = 64, 10, 7
	for _, m := range AllMethods {
		rng := rand.New(rand.NewSource(7))
		model := BuildSHL(m, n, classes, rng)
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)

		want := model.Forward(x)
		got := model.Infer(x)
		if want.Rows != got.Rows || want.Cols != got.Cols {
			t.Fatalf("%v: Infer shape %dx%d != Forward %dx%d", m, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%v: Infer[%d]=%v != Forward[%d]=%v", m, i, got.Data[i], i, want.Data[i])
			}
		}
	}
}

// TestInferLeavesBackwardStateIntact interleaves Infer calls into a
// Forward/Backward pair and checks the gradients are unchanged: inference
// must not clobber the activations cached for the backward pass.
func TestInferLeavesBackwardStateIntact(t *testing.T) {
	const n, classes, batch = 64, 10, 5
	for _, m := range AllMethods {
		rng := rand.New(rand.NewSource(3))
		model := BuildSHL(m, n, classes, rng)
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		dY := tensor.New(batch, classes)
		dY.FillRandom(rng, 1)

		// Reference gradients from a clean Forward/Backward.
		model.ZeroGrad()
		model.Forward(x)
		model.Backward(dY)
		_, grads := model.Params()
		var want [][]float32
		for _, g := range grads {
			want = append(want, append([]float32(nil), g...))
		}

		// Same pass with Infer calls (other batch size, too) in between.
		other := tensor.New(batch+3, n)
		other.FillRandom(rng, 1)
		model.ZeroGrad()
		model.Forward(x)
		model.Infer(other)
		model.Infer(x)
		model.Backward(dY)
		_, grads = model.Params()
		for gi, g := range grads {
			for i := range g {
				if g[i] != want[gi][i] {
					t.Fatalf("%v: grad[%d][%d] = %v after Infer, want %v", m, gi, i, g[i], want[gi][i])
				}
			}
		}
	}
}

// TestInferConcurrent hammers one shared model from many goroutines; run
// under -race this proves the inference path is read-only.
func TestInferConcurrent(t *testing.T) {
	const n, classes, workers, iters = 64, 10, 8, 25
	for _, m := range AllMethods {
		rng := rand.New(rand.NewSource(11))
		model := BuildSHL(m, n, classes, rng)
		x := tensor.New(4, n)
		x.FillRandom(rng, 1)
		want := model.Infer(x)

		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					got := model.Infer(x)
					for j := range want.Data {
						if got.Data[j] != want.Data[j] {
							errs <- m.String()
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if bad, ok := <-errs; ok {
			t.Fatalf("%s: concurrent Infer returned differing outputs", bad)
		}
	}
}
