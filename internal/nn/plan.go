package nn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/tensor"
)

// ErrPlanBatch is returned by Plan.Execute when the input has zero rows or
// more rows than the plan's MaxBatch.
var ErrPlanBatch = errors.New("nn: plan batch outside [1, MaxBatch]")

// ErrPlanWidth is returned by Plan.Execute when the input's column count
// does not match the plan's InputWidth.
var ErrPlanWidth = errors.New("nn: plan input width mismatch")

// StepKind classifies a lowered plan step — what one pass over the
// activation arena computes.
type StepKind int

const (
	// StepLinear is a matmul or structured multiply plus its bias add.
	StepLinear StepKind = iota
	// StepActivation is a standalone elementwise nonlinearity.
	StepActivation
	// StepFused is a linear step with the following activation folded in:
	// multiply, bias and nonlinearity write each output element once.
	StepFused
	// StepGeneric is the Infer-and-copy fallback for unknown layers.
	StepGeneric
)

func (k StepKind) String() string {
	switch k {
	case StepLinear:
		return "linear"
	case StepActivation:
		return "activation"
	case StepFused:
		return "fused"
	case StepGeneric:
		return "generic"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// EpilogueApplier is implemented by transforms whose ApplyInto can fold a
// trailing bias add and elementwise activation into the final stage that
// writes the output — the hook the plan fusion pass uses to write each
// output element exactly once instead of resweeping the arena. The result
// must be bit-for-bit equal to act(ApplyInto(x) + bias) computed by
// separate passes. All six of the repo's operator families implement it;
// transforms that don't still fuse through a generic post-sweep.
type EpilogueApplier interface {
	ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation)
}

// MicroKernelApplier is implemented by transforms that carry a
// register-tiled micro-kernel apply path: the same float32 operation per
// output element as ApplyInto/ApplyIntoEpilogue — bit-for-bit equal
// results — restructured for bounds-check elimination and unrolling.
// The plan compiler dispatches to it once at CompilePlan time, so the
// executing step pays no per-row branching. MicroVariant names the
// selected kernel shape for observability (step metadata, /debug
// surfaces, the loadgen kernel table).
type MicroKernelApplier interface {
	ApplyIntoMicro(dst, x *tensor.Matrix, ws *tensor.Workspace)
	ApplyIntoEpilogueMicro(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation)
	MicroVariant() string
}

// Plan is a compiled inference program: the result of walking a Sequential
// once, lowering every layer to a destination-passing step with pre-sized
// buffers, and fusing adjacent multiply + bias + activation steps into
// single passes. Execute ping-pongs activations between two plan-owned
// arenas and stages per-layer scratch through one workspace, so at steady
// state a batch runs with zero heap allocations — the host-side analogue
// of a compiled Poplar program with static tensor liveness.
//
// A Plan shares the model's weights read-only (training the model while
// executing its plans is not safe — the same contract as Sequential.Infer)
// but owns its activation buffers, so a Plan must not be used from two
// goroutines at once. Pool instances (sync.Pool) for concurrent serving;
// compiling another instance from the same model is cheap.
type Plan struct {
	maxBatch int
	in, out  int
	micro    bool
	steps    []planStep

	// preFusion is the step silhouette before the fusion pass ran (equal
	// to the final silhouette when compiled with NoFuse), kept so Stats
	// can report the fusion win without compiling a second plan.
	preFusion []stepShape

	// stepNanos holds the wall-clock duration of each step of the most
	// recent Execute — the measured counterpart the serving layer lines
	// up against the modelled per-step cost. Plan-owned and overwritten
	// every Execute, so recording it allocates nothing.
	stepNanos []int64

	// kstats, when set, receives one per-kernel accounting record per
	// executed step (flops, arena bytes, measured nanoseconds). Nil by
	// default; the serving layer installs the registry-wide sink. Kept a
	// plain pointer so the hot path pays a nil check plus striped atomic
	// adds and nothing else.
	kstats *obs.KernelStats

	// rec, when set, receives a BSP phase timeline of sampled batches:
	// a single-IPU plan is one track of back-to-back compute spans (the
	// step clocks Execute measures anyway, re-emitted as events). Nil by
	// default — then nothing is recorded.
	rec *timeline.Recorder

	ws         *tensor.Workspace
	bufA, bufB []float32
	actA, actB tensor.Matrix
}

// planStep is one lowered step: its output width, a kernel that writes the
// step's inference result for input x into dst, the source layer it was
// lowered from (the hook the shard partitioner splits on), and — for fused
// steps — the activation layer that was folded in.
type planStep struct {
	name  string
	cols  int
	kind  StepKind
	layer Layer
	act   Layer // folded activation; nil unless kind == StepFused
	// sweeps counts extra read-modify-write passes over the output arena
	// beyond the producing write (the unfused bias add is one); it feeds
	// the modelled-traffic accounting.
	sweeps int
	run    func(dst, x *tensor.Matrix, ws *tensor.Workspace)

	// variant names the micro-kernel shape the step dispatched to at
	// compile time ("tiled4x8", "unrolled", "radix8", "blockunroll", …),
	// "reference" for kernel steps on the reference path, and "" for
	// steps with no kernel family (activations, generic fallbacks).
	variant string
	// packedW / packedA hold panel-packed copies of the step's weight
	// matrices when it dispatched to the tiled matmul kernels (packedA is
	// the first factor of a FactorizedDense). Plan-owned, built once at
	// compile time.
	packedW, packedA *tensor.PackedB

	// kernel is the Into-kernel family the step executes and flopsPerRow /
	// bytesPerRow its per-sample work and arena traffic — the static half
	// of the per-kernel accounting record Execute emits (the dynamic half
	// is the batch size and measured nanoseconds). bytesPerRow is filled
	// in after fusion from the step's traffic silhouette.
	kernel      obs.Kernel
	flopsPerRow int64
	bytesPerRow int64
}

// stepShape is the traffic-relevant silhouette of one step: input width
// read, output width written, and extra arena sweeps.
type stepShape struct{ in, out, sweeps int }

// PlanOptions tune plan compilation.
type PlanOptions struct {
	// NoFuse disables the step-fusion pass, keeping one step per layer.
	// Fused and unfused plans are bit-for-bit equivalent; the unfused
	// form is the reference the equivalence tests pin fusion against and
	// a debugging aid when a fused kernel is suspect.
	NoFuse bool

	// NoMicroKernel disables the compile-time micro-kernel dispatch,
	// lowering every step to the reference kernels. Micro and reference
	// plans are bit-for-bit equivalent; the reference form is the oracle
	// the equivalence tests pin the micro kernels against.
	NoMicroKernel bool
}

// CompilePlan walks the network once, emits the execution plan for batches
// of up to maxBatch rows, and runs the fusion pass (see CompilePlanOpts).
func (s *Sequential) CompilePlan(maxBatch int) (*Plan, error) {
	return s.CompilePlanOpts(maxBatch, PlanOptions{})
}

// CompilePlanOpts is CompilePlan with explicit options. Layer kinds with a
// destination-passing lowering (Dense, StructuredLinear, ReLU,
// FactorizedDense) become allocation-free steps; anything else is kept
// correct through a generic step that calls the layer's Infer and copies.
// Unless opts.NoFuse is set, a peephole pass then rewrites every adjacent
// (linear, activation) step pair into one fused step whose kernel applies
// multiply, bias and nonlinearity in a single pass over the output arena.
// Compilation runs two warm-up batches of zeros at maxBatch so every
// buffer reaches its exact high-water size before the plan serves real
// traffic.
func (s *Sequential) CompilePlanOpts(maxBatch int, opts PlanOptions) (*Plan, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: plan maxBatch %d must be positive", maxBatch)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: cannot compile a plan for an empty model")
	}
	in, err := inputWidth(s.Layers[0])
	if err != nil {
		return nil, err
	}
	p := &Plan{maxBatch: maxBatch, in: in, micro: !opts.NoMicroKernel, ws: tensor.NewWorkspace()}
	width := in
	for i, l := range s.Layers {
		st, outW, err := lowerLayer(l, width, p.micro)
		if err != nil {
			return nil, fmt.Errorf("nn: plan layer %d (%s): %w", i, l.Name(), err)
		}
		st.layer = l
		st.kernel = kernelOfLayer(l)
		st.flopsPerRow = layerFlopsPerRow(l)
		p.steps = append(p.steps, st)
		width = outW
	}
	p.out = width
	p.preFusion = stepShapes(p.in, p.steps)
	if !opts.NoFuse {
		p.steps = fusePlanSteps(p.steps)
	}
	// The per-row arena traffic of each surviving step comes from the
	// post-fusion silhouette — the same model trafficBytes prices, divided
	// down to one row.
	for i, sh := range stepShapes(p.in, p.steps) {
		p.steps[i].bytesPerRow = int64(4 * (sh.in + sh.out + 2*sh.sweeps*sh.out))
	}

	// The ping-pong arenas alternate ownership of the step outputs, so
	// each is sized to the widest step that lands in it — fusing steps
	// out of the list shifts the parity and typically shrinks one arena
	// (e.g. an SHL's second arena drops from hidden width to class
	// width once multiply+bias+ReLU collapse into one step).
	wA, wB := 0, 0
	for i, st := range p.steps {
		if i%2 == 0 {
			wA = max(wA, st.cols)
		} else {
			wB = max(wB, st.cols)
		}
	}
	p.bufA = make([]float32, maxBatch*wA)
	p.bufB = make([]float32, maxBatch*wB)
	p.stepNanos = make([]int64, len(p.steps))

	// Two warm-up executions: the first records every buffer's demand, the
	// second runs after the workspace has grown to it, leaving the arena at
	// its exact steady-state size.
	warm := tensor.New(maxBatch, in)
	for i := 0; i < 2; i++ {
		if _, err := p.Execute(warm); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// fusePlanSteps is the peephole rewriter: a single left-to-right scan that
// replaces every adjacent (linear, activation) pair with one fused step.
// Steps that don't match pass through unchanged, so the pass is safe on
// any lowered sequence (generic fallbacks, trailing linears, standalone
// activations after them).
func fusePlanSteps(steps []planStep) []planStep {
	out := steps[:0:0]
	for i := 0; i < len(steps); i++ {
		if i+1 < len(steps) {
			if f, ok := fusePair(&steps[i], &steps[i+1]); ok {
				out = append(out, f)
				i++
				continue
			}
		}
		out = append(out, steps[i])
	}
	return out
}

// fusePair builds the fused step for a (linear, activation) step pair, or
// reports that the pair doesn't fuse. Only elementwise column-local
// activations may fold (ReLU is the only one the framework has), which is
// also what lets the shard partitioner keep fusion inside tensor-parallel
// column windows.
func fusePair(lin, actStep *planStep) (planStep, bool) {
	if lin.kind != StepLinear || actStep.kind != StepActivation || lin.cols != actStep.cols {
		return planStep{}, false
	}
	if _, ok := actStep.layer.(*ReLU); !ok {
		return planStep{}, false
	}
	const act = tensor.ActReLU
	var run func(dst, x *tensor.Matrix, ws *tensor.Workspace)
	sweeps := 0
	switch t := lin.layer.(type) {
	case *Dense:
		if pw := lin.packedW; pw != nil {
			run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				tensor.MatMulPackedBiasActParallelInto(dst, x, pw, t.Bias, act)
			}
			break
		}
		run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			tensor.MatMulBiasActParallelInto(dst, x, t.W, t.Bias, act)
		}
	case *FactorizedDense:
		if pa, pb := lin.packedA, lin.packedW; pa != nil {
			run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				xa := ws.Take(x.Rows, t.Rank)
				tensor.MatMulPackedParallelInto(xa, x, pa)
				tensor.MatMulPackedBiasActParallelInto(dst, xa, pb, t.Bias, act)
			}
			break
		}
		run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			xa := ws.Take(x.Rows, t.Rank)
			tensor.MatMulParallelInto(xa, x, t.A)
			tensor.MatMulBiasActParallelInto(dst, xa, t.B, t.Bias, act)
		}
	case *StructuredLinear:
		if mka, ok := t.T.(MicroKernelApplier); ok && lin.variant != "reference" {
			run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				mka.ApplyIntoEpilogueMicro(dst, x, ws, t.Bias, act)
			}
		} else if ea, ok := t.T.(EpilogueApplier); ok {
			run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				ea.ApplyIntoEpilogue(dst, x, ws, t.Bias, act)
			}
		} else {
			// Transform without a fused final stage: still collapse the
			// bias and activation into one post-sweep (two arena passes
			// instead of three).
			sweeps = 1
			run = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				t.T.ApplyInto(dst, x, ws)
				tensor.ApplyBiasActInto(dst, dst, t.Bias, act)
			}
		}
	default:
		return planStep{}, false
	}
	return planStep{
		name:    lin.name + "+" + actStep.name,
		cols:    lin.cols,
		kind:    StepFused,
		layer:   lin.layer,
		act:     actStep.layer,
		sweeps:  sweeps,
		run:     run,
		variant: lin.variant,
		packedW: lin.packedW,
		packedA: lin.packedA,
		// The fused step keeps the linear step's kernel family and adds
		// the folded activation's element ops, matching the modelled-cost
		// accounting in the shard layer's describePlan.
		kernel:      lin.kernel,
		flopsPerRow: lin.flopsPerRow + int64(lin.cols),
	}, true
}

// stepShapes derives the traffic silhouette of a step list given the plan
// input width.
func stepShapes(in int, steps []planStep) []stepShape {
	shapes := make([]stepShape, len(steps))
	for i, st := range steps {
		shapes[i] = stepShape{in: in, out: st.cols, sweeps: st.sweeps}
		in = st.cols
	}
	return shapes
}

// trafficBytes models the activation-arena bytes one batch moves: each
// step reads its input once, writes its output once, and pays one
// read+write resweep per extra pass (the unfused bias add and activation
// are such passes). Transform-internal scratch (butterfly stage ping-pong,
// FFT buffers) is excluded — it is identical between fused and unfused
// plans.
func trafficBytes(batch int, shapes []stepShape) int {
	total := 0
	for _, s := range shapes {
		total += 4 * batch * (s.in + s.out + 2*s.sweeps*s.out)
	}
	return total
}

// PlanStats reports a plan's compiled silhouette: what the fusion pass
// merged and what one max-batch execution costs in modelled arena traffic
// and resident buffers.
type PlanStats struct {
	MaxBatch int
	// Steps is the executed step count; StepsBeforeFusion the lowered
	// count before the peephole pass (equal when compiled with NoFuse).
	Steps             int
	StepsBeforeFusion int
	// FusedSteps counts steps carrying a folded activation.
	FusedSteps int
	// ArenaBytes is the ping-pong activation arenas' total backing size;
	// WorkspaceBytes the scratch arena's steady-state backing.
	ArenaBytes     int
	WorkspaceBytes int
	// TrafficBytes is the modelled activation-arena traffic of one
	// max-batch execution; TrafficBytesBeforeFusion what the unfused
	// step list would move.
	TrafficBytes             int
	TrafficBytesBeforeFusion int
}

// Stats reports the plan's fusion and memory silhouette at MaxBatch.
func (p *Plan) Stats() PlanStats {
	fused := 0
	for i := range p.steps {
		if p.steps[i].kind == StepFused {
			fused++
		}
	}
	return PlanStats{
		MaxBatch:                 p.maxBatch,
		Steps:                    len(p.steps),
		StepsBeforeFusion:        len(p.preFusion),
		FusedSteps:               fused,
		ArenaBytes:               4 * (len(p.bufA) + len(p.bufB)),
		WorkspaceBytes:           p.ws.FootprintBytes(),
		TrafficBytes:             trafficBytes(p.maxBatch, stepShapes(p.in, p.steps)),
		TrafficBytesBeforeFusion: trafficBytes(p.maxBatch, p.preFusion),
	}
}

// MaxBatch returns the largest row count Execute accepts.
func (p *Plan) MaxBatch() int { return p.maxBatch }

// InputWidth returns the feature width the plan expects.
func (p *Plan) InputWidth() int { return p.in }

// OutputWidth returns the width of the result matrix.
func (p *Plan) OutputWidth() int { return p.out }

// Steps returns the lowered step names, in execution order. Fused steps
// carry both source names joined by '+' (e.g. "butterfly(1024)+relu").
func (p *Plan) Steps() []string {
	names := make([]string, len(p.steps))
	for i, st := range p.steps {
		names[i] = st.name
	}
	return names
}

// NumSteps returns how many lowered steps the plan executes.
func (p *Plan) NumSteps() int { return len(p.steps) }

// StepInfo describes one lowered step — the introspection surface
// debuggers and the shard partitioner read, which must stay coherent when
// fusion merges layers: a fused step reports its linear source layer under
// Layer and the folded activation under Act, so walking the steps still
// accounts for every layer exactly once.
type StepInfo struct {
	Index int
	Name  string
	Cols  int
	Kind  StepKind
	// Layer is the source layer (the linear layer for fused steps).
	Layer Layer
	// Act is the activation layer folded into a fused step; nil otherwise.
	Act Layer
	// Variant names the micro-kernel shape the step dispatched to at
	// compile time ("reference" on the reference path, "" for steps with
	// no kernel family).
	Variant string
}

// Fused reports whether the step carries a folded activation.
func (si StepInfo) Fused() bool { return si.Kind == StepFused }

// Activation returns the folded activation as the tensor-kernel enum the
// sharded lowerings thread into their column-window epilogues (ActNone for
// unfused steps).
func (si StepInfo) Activation() tensor.Activation {
	if _, ok := si.Act.(*ReLU); ok {
		return tensor.ActReLU
	}
	return tensor.ActNone
}

// Step returns the introspection record of step i.
func (p *Plan) Step(i int) StepInfo {
	st := &p.steps[i]
	return StepInfo{Index: i, Name: st.name, Cols: st.cols, Kind: st.kind, Layer: st.layer, Act: st.act, Variant: st.variant}
}

// MicroKernel reports whether the plan compiled with the micro-kernel
// dispatch (the default; PlanOptions.NoMicroKernel compiles the
// reference path).
func (p *Plan) MicroKernel() bool { return p.micro }

// StepVariant returns the micro-kernel variant name of step i —
// "reference" for kernel steps on the reference path, "" for steps with
// no kernel family.
func (p *Plan) StepVariant(i int) string { return p.steps[i].variant }

// StepVariants returns the variant name of every step, in execution
// order.
func (p *Plan) StepVariants() []string {
	out := make([]string, len(p.steps))
	for i := range p.steps {
		out[i] = p.steps[i].variant
	}
	return out
}

// StepLayer returns the source layer step i was lowered from — the hook
// the shard partitioner splits on. For fused steps this is the linear
// layer; the folded activation is reported by Step(i).Act.
func (p *Plan) StepLayer(i int) Layer { return p.steps[i].layer }

// StepCols returns the output width of step i.
func (p *Plan) StepCols(i int) int { return p.steps[i].cols }

// StepRunner returns the lowered kernel of step i: it writes the step's
// output for input x into dst (x.Rows × StepCols(i)), staging scratch
// through the caller-owned workspace. For fused steps the kernel is the
// whole fused pass (multiply + bias + activation). The kernel captures
// only the layer's weights — not the plan or its arenas — so holding it
// does not pin the plan, and kernels of one plan may run concurrently with
// distinct workspaces. This is the execution hook pipeline-sharded plans
// are built on.
func (p *Plan) StepRunner(i int) func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	return p.steps[i].run
}

// Execute runs the plan over x (rows in [1, MaxBatch], cols ==
// InputWidth) and returns the output matrix; inputs outside that contract
// get ErrPlanBatch / ErrPlanWidth. The result aliases plan-owned memory:
// it is valid until the next Execute on this plan, so callers that retain
// it across executions (or hand the plan back to a pool) must copy first.
// Output is bit-for-bit identical to Sequential.Infer on the same input,
// fused or not.
func (p *Plan) Execute(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != p.in {
		return nil, fmt.Errorf("%w: got %d columns, plan expects %d", ErrPlanWidth, x.Cols, p.in)
	}
	if x.Rows < 1 || x.Rows > p.maxBatch {
		return nil, fmt.Errorf("%w: got %d rows, plan accepts 1..%d", ErrPlanBatch, x.Rows, p.maxBatch)
	}
	tb := p.rec.Sample()
	if tb != nil {
		tb.Begin(len(p.steps), 1, x.Rows)
	}
	var off int64
	cur := x
	useA := true
	for i := range p.steps {
		st := &p.steps[i]
		act, buf := &p.actB, p.bufB
		if useA {
			act, buf = &p.actA, p.bufA
		}
		act.Rows, act.Cols = x.Rows, st.cols
		act.Data = buf[:x.Rows*st.cols]
		p.ws.Reset()
		t0 := time.Now()
		st.run(act, cur, p.ws)
		p.stepNanos[i] = time.Since(t0).Nanoseconds()
		if p.kstats != nil {
			rows := int64(x.Rows)
			p.kstats.Record(st.kernel, rows*st.flopsPerRow, rows*st.bytesPerRow, p.stepNanos[i])
		}
		if tb != nil {
			// The single-IPU timeline is the measured step clocks laid
			// back-to-back: one compute span per step, no gaps (there is
			// no exchange or barrier on one chip).
			tb.Record(i, 0, timeline.LaneWork, timeline.Compute, off, p.stepNanos[i])
			off += p.stepNanos[i]
		}
		cur = act
		useA = !useA
	}
	if tb != nil {
		p.rec.Finish(tb, off)
	}
	return cur, nil
}

// SetKernelStats installs (or, with nil, removes) the per-kernel
// accounting sink Execute reports each step's flops, arena bytes and
// measured time into. The sink is shared and internally synchronized; the
// plan itself stays single-goroutine. Recording is a few striped atomic
// adds, so enabling accounting does not change the plan's steady-state
// allocation profile.
func (p *Plan) SetKernelStats(ks *obs.KernelStats) { p.kstats = ks }

// SetTimeline installs (or, with nil, removes) the BSP phase flight
// recorder Execute samples batches into. A single-IPU plan records one
// compute span per step on track 0; recording a sampled batch reuses
// pooled buffers, and with no recorder installed nothing is emitted, so
// neither case changes the plan's steady-state allocation profile.
func (p *Plan) SetTimeline(rec *timeline.Recorder) { p.rec = rec }

// StepKernel returns the Into-kernel family step i executes — the
// attribution key of the per-kernel accounting (fused steps report their
// linear source's family).
func (p *Plan) StepKernel(i int) obs.Kernel { return p.steps[i].kernel }

// StepFlopsPerRow returns the modelled per-sample flop count of step i
// (fused steps include the folded activation's element ops).
func (p *Plan) StepFlopsPerRow(i int) int64 { return p.steps[i].flopsPerRow }

// StepArenaBytesPerRow returns the modelled per-sample activation-arena
// traffic of step i, from the same silhouette trafficBytes prices.
func (p *Plan) StepArenaBytesPerRow(i int) int64 { return p.steps[i].bytesPerRow }

// LastStepNanos returns the wall-clock duration, in nanoseconds, of each
// step of the most recent Execute (index-aligned with Step/Steps). The
// slice is plan-owned and overwritten by the next Execute — copy it to
// retain. Before the first Execute all entries are zero.
func (p *Plan) LastStepNanos() []int64 { return p.stepNanos }

// inputWidth infers the feature width a layer consumes; layers without a
// declared width (e.g. a leading ReLU) cannot head a plan.
func inputWidth(l Layer) (int, error) {
	switch t := l.(type) {
	case *Dense:
		return t.In, nil
	case *StructuredLinear:
		return t.N, nil
	case *FactorizedDense:
		return t.In, nil
	default:
		return 0, fmt.Errorf("nn: cannot infer plan input width from leading layer %s", l.Name())
	}
}

// lowerLayer emits the plan step for one layer given its input width,
// returning the step and the layer's output width. With micro set, layers
// whose kernels have a register-tiled variant dispatch to it here — once,
// at compile time — and the step records the selected variant name; the
// dense layers additionally pack their weight panels so the tiled matmul
// streams B in panel order.
func lowerLayer(l Layer, width int, micro bool) (planStep, int, error) {
	switch t := l.(type) {
	case *Dense:
		if t.In != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.In)
		}
		if micro {
			pw := tensor.Pack(t.W)
			return planStep{name: t.Name(), cols: t.Out, kind: StepLinear, sweeps: 1,
				variant: "tiled4x8", packedW: pw,
				run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
					tensor.MatMulPackedParallelInto(dst, x, pw)
					tensor.AddRowVector(dst, t.Bias)
				}}, t.Out, nil
		}
		return planStep{name: t.Name(), cols: t.Out, kind: StepLinear, sweeps: 1,
			variant: "reference",
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				tensor.MatMulParallelInto(dst, x, t.W)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.Out, nil
	case *StructuredLinear:
		if t.N != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.N)
		}
		if mka, ok := t.T.(MicroKernelApplier); ok && micro {
			return planStep{name: t.Name(), cols: t.N, kind: StepLinear, sweeps: 1,
				variant: mka.MicroVariant(),
				run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
					mka.ApplyIntoMicro(dst, x, ws)
					tensor.AddRowVector(dst, t.Bias)
				}}, t.N, nil
		}
		return planStep{name: t.Name(), cols: t.N, kind: StepLinear, sweeps: 1,
			variant: "reference",
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				t.T.ApplyInto(dst, x, ws)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.N, nil
	case *ReLU:
		return planStep{name: t.Name(), cols: width, kind: StepActivation,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				for i, v := range x.Data {
					if v > 0 {
						dst.Data[i] = v
					} else {
						dst.Data[i] = 0
					}
				}
			}}, width, nil
	case *FactorizedDense:
		if t.In != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.In)
		}
		if micro {
			pa, pb := tensor.Pack(t.A), tensor.Pack(t.B)
			return planStep{name: t.Name(), cols: t.Out, kind: StepLinear, sweeps: 1,
				variant: "tiled4x8", packedW: pb, packedA: pa,
				run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
					xa := ws.Take(x.Rows, t.Rank)
					tensor.MatMulPackedParallelInto(xa, x, pa)
					tensor.MatMulPackedParallelInto(dst, xa, pb)
					tensor.AddRowVector(dst, t.Bias)
				}}, t.Out, nil
		}
		return planStep{name: t.Name(), cols: t.Out, kind: StepLinear, sweeps: 1,
			variant: "reference",
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				xa := ws.Take(x.Rows, t.Rank)
				tensor.MatMulParallelInto(xa, x, t.A)
				tensor.MatMulParallelInto(dst, xa, t.B)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.Out, nil
	default:
		// Generic fallback: correct for any Layer, at the cost of the
		// layer's own allocations plus one copy. Probe the output width
		// with a single zero row.
		probe := l.Infer(tensor.New(1, width))
		outW := probe.Cols
		return planStep{name: l.Name(), cols: outW, kind: StepGeneric,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				y := l.Infer(x)
				if y.Rows != dst.Rows || y.Cols != dst.Cols {
					panic(fmt.Sprintf("nn: plan step %s returned %dx%d, want %dx%d",
						l.Name(), y.Rows, y.Cols, dst.Rows, dst.Cols))
				}
				copy(dst.Data, y.Data)
			}}, outW, nil
	}
}
