package nn

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// ErrPlanBatch is returned by Plan.Execute when the input has zero rows or
// more rows than the plan's MaxBatch.
var ErrPlanBatch = errors.New("nn: plan batch outside [1, MaxBatch]")

// ErrPlanWidth is returned by Plan.Execute when the input's column count
// does not match the plan's InputWidth.
var ErrPlanWidth = errors.New("nn: plan input width mismatch")

// Plan is a compiled inference program: the result of walking a Sequential
// once and lowering every layer to a destination-passing step with
// pre-sized buffers. Execute ping-pongs activations between two
// plan-owned arenas and stages per-layer scratch through one workspace, so
// at steady state a batch runs with zero heap allocations — the host-side
// analogue of a compiled Poplar program with static tensor liveness.
//
// A Plan shares the model's weights read-only (training the model while
// executing its plans is not safe — the same contract as Sequential.Infer)
// but owns its activation buffers, so a Plan must not be used from two
// goroutines at once. Pool instances (sync.Pool) for concurrent serving;
// compiling another instance from the same model is cheap.
type Plan struct {
	maxBatch int
	in, out  int
	steps    []planStep

	ws         *tensor.Workspace
	bufA, bufB []float32
	actA, actB tensor.Matrix
}

// planStep is one lowered layer: its output width, a kernel that writes
// the layer's inference result for input x into dst, and the source layer
// it was lowered from (the hook the shard partitioner splits on).
type planStep struct {
	name  string
	cols  int
	layer Layer
	run   func(dst, x *tensor.Matrix, ws *tensor.Workspace)
}

// CompilePlan walks the network once and emits the execution plan for
// batches of up to maxBatch rows. Layer kinds with a destination-passing
// lowering (Dense, StructuredLinear, ReLU, FactorizedDense) become
// allocation-free steps; anything else is kept correct through a generic
// step that calls the layer's Infer and copies. Compilation runs two
// warm-up batches of zeros at maxBatch so every buffer reaches its exact
// high-water size before the plan serves real traffic.
func (s *Sequential) CompilePlan(maxBatch int) (*Plan, error) {
	if maxBatch <= 0 {
		return nil, fmt.Errorf("nn: plan maxBatch %d must be positive", maxBatch)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: cannot compile a plan for an empty model")
	}
	in, err := inputWidth(s.Layers[0])
	if err != nil {
		return nil, err
	}
	p := &Plan{maxBatch: maxBatch, in: in, ws: tensor.NewWorkspace()}
	width := in
	for i, l := range s.Layers {
		st, outW, err := lowerLayer(l, width)
		if err != nil {
			return nil, fmt.Errorf("nn: plan layer %d (%s): %w", i, l.Name(), err)
		}
		st.layer = l
		p.steps = append(p.steps, st)
		width = outW
	}
	p.out = width

	maxW := 0
	for _, st := range p.steps {
		if st.cols > maxW {
			maxW = st.cols
		}
	}
	p.bufA = make([]float32, maxBatch*maxW)
	p.bufB = make([]float32, maxBatch*maxW)

	// Two warm-up executions: the first records every buffer's demand, the
	// second runs after the workspace has grown to it, leaving the arena at
	// its exact steady-state size.
	warm := tensor.New(maxBatch, in)
	for i := 0; i < 2; i++ {
		if _, err := p.Execute(warm); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MaxBatch returns the largest row count Execute accepts.
func (p *Plan) MaxBatch() int { return p.maxBatch }

// InputWidth returns the feature width the plan expects.
func (p *Plan) InputWidth() int { return p.in }

// OutputWidth returns the width of the result matrix.
func (p *Plan) OutputWidth() int { return p.out }

// Steps returns the lowered step names, in execution order.
func (p *Plan) Steps() []string {
	names := make([]string, len(p.steps))
	for i, st := range p.steps {
		names[i] = st.name
	}
	return names
}

// NumSteps returns how many lowered steps the plan executes.
func (p *Plan) NumSteps() int { return len(p.steps) }

// StepLayer returns the source layer step i was lowered from — the
// introspection hook the shard partitioner uses to decide how (and
// whether) a step can be split across modelled IPUs.
func (p *Plan) StepLayer(i int) Layer { return p.steps[i].layer }

// StepCols returns the output width of step i.
func (p *Plan) StepCols(i int) int { return p.steps[i].cols }

// StepRunner returns the lowered kernel of step i: it writes the step's
// output for input x into dst (x.Rows × StepCols(i)), staging scratch
// through the caller-owned workspace. The kernel captures only the layer's
// weights — not the plan or its arenas — so holding it does not pin the
// plan, and kernels of one plan may run concurrently with distinct
// workspaces. This is the execution hook pipeline-sharded plans are built
// on.
func (p *Plan) StepRunner(i int) func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	return p.steps[i].run
}

// Execute runs the plan over x (rows in [1, MaxBatch], cols ==
// InputWidth) and returns the output matrix; inputs outside that contract
// get ErrPlanBatch / ErrPlanWidth. The result aliases plan-owned memory:
// it is valid until the next Execute on this plan, so callers that retain
// it across executions (or hand the plan back to a pool) must copy first.
// Output is bit-for-bit identical to Sequential.Infer on the same input.
func (p *Plan) Execute(x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != p.in {
		return nil, fmt.Errorf("%w: got %d columns, plan expects %d", ErrPlanWidth, x.Cols, p.in)
	}
	if x.Rows < 1 || x.Rows > p.maxBatch {
		return nil, fmt.Errorf("%w: got %d rows, plan accepts 1..%d", ErrPlanBatch, x.Rows, p.maxBatch)
	}
	cur := x
	useA := true
	for i := range p.steps {
		st := &p.steps[i]
		act, buf := &p.actB, p.bufB
		if useA {
			act, buf = &p.actA, p.bufA
		}
		act.Rows, act.Cols = x.Rows, st.cols
		act.Data = buf[:x.Rows*st.cols]
		p.ws.Reset()
		st.run(act, cur, p.ws)
		cur = act
		useA = !useA
	}
	return cur, nil
}

// inputWidth infers the feature width a layer consumes; layers without a
// declared width (e.g. a leading ReLU) cannot head a plan.
func inputWidth(l Layer) (int, error) {
	switch t := l.(type) {
	case *Dense:
		return t.In, nil
	case *StructuredLinear:
		return t.N, nil
	case *FactorizedDense:
		return t.In, nil
	default:
		return 0, fmt.Errorf("nn: cannot infer plan input width from leading layer %s", l.Name())
	}
}

// lowerLayer emits the plan step for one layer given its input width,
// returning the step and the layer's output width.
func lowerLayer(l Layer, width int) (planStep, int, error) {
	switch t := l.(type) {
	case *Dense:
		if t.In != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.In)
		}
		return planStep{name: t.Name(), cols: t.Out,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				tensor.MatMulParallelInto(dst, x, t.W)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.Out, nil
	case *StructuredLinear:
		if t.N != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.N)
		}
		return planStep{name: t.Name(), cols: t.N,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				t.T.ApplyInto(dst, x, ws)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.N, nil
	case *ReLU:
		return planStep{name: t.Name(), cols: width,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				for i, v := range x.Data {
					if v > 0 {
						dst.Data[i] = v
					} else {
						dst.Data[i] = 0
					}
				}
			}}, width, nil
	case *FactorizedDense:
		if t.In != width {
			return planStep{}, 0, fmt.Errorf("input width %d != %d", width, t.In)
		}
		return planStep{name: t.Name(), cols: t.Out,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				xa := ws.Take(x.Rows, t.Rank)
				tensor.MatMulParallelInto(xa, x, t.A)
				tensor.MatMulParallelInto(dst, xa, t.B)
				tensor.AddRowVector(dst, t.Bias)
			}}, t.Out, nil
	default:
		// Generic fallback: correct for any Layer, at the cost of the
		// layer's own allocations plus one copy. Probe the output width
		// with a single zero row.
		probe := l.Infer(tensor.New(1, width))
		outW := probe.Cols
		return planStep{name: l.Name(), cols: outW,
			run: func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				y := l.Infer(x)
				if y.Rows != dst.Rows || y.Cols != dst.Cols {
					panic(fmt.Sprintf("nn: plan step %s returned %dx%d, want %dx%d",
						l.Name(), y.Rows, y.Cols, dst.Rows, dst.Cols))
				}
				copy(dst.Data, y.Data)
			}}, outW, nil
	}
}
