package nn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestPlanMatchesInferAllMethods asserts the tentpole contract: for every
// Table 4 method, Plan.Execute output is bit-for-bit identical to
// Sequential.Infer, across batch sizes from 1 up to the plan's maximum.
func TestPlanMatchesInferAllMethods(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 16
	for _, method := range AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(7)))
			plan, err := net.CompilePlan(maxBatch)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			if plan.InputWidth() != n || plan.OutputWidth() != classes {
				t.Fatalf("plan dims %d->%d, want %d->%d",
					plan.InputWidth(), plan.OutputWidth(), n, classes)
			}
			rng := rand.New(rand.NewSource(99))
			for _, batch := range []int{1, 3, maxBatch} {
				x := tensor.New(batch, n)
				x.FillRandom(rng, 1)
				want := net.Infer(x)
				got := mustExecute(t, plan, x)
				if d := tensor.MaxAbsDiff(want, got); d != 0 {
					t.Fatalf("batch %d: plan output differs from Infer by %g (want bit-for-bit)", batch, d)
				}
			}
		})
	}
}

// TestPlanMatchesInferCompressed compiles a plan for a post-hoc compressed
// model (which mixes FactorizedDense / structured layers swapped in by
// Compress) and checks bit-for-bit equivalence with Infer.
func TestPlanMatchesInferCompressed(t *testing.T) {
	const n, classes = 32, 10
	net := BuildSHL(Baseline, n, classes, rand.New(rand.NewSource(3)))
	compressed, reports, err := net.Compress(CompressOptions{Tolerance: 0.7, Seed: 5})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("Compress produced no layer reports")
	}
	plan, err := compressed.CompilePlan(8)
	if err != nil {
		t.Fatalf("CompilePlan(compressed): %v", err)
	}
	x := tensor.New(5, n)
	x.FillRandom(rand.New(rand.NewSource(11)), 1)
	want := compressed.Infer(x)
	got := mustExecute(t, plan, x)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("compressed plan output differs from Infer by %g", d)
	}
}

// TestPlanRepeatedExecuteIsStable reruns one plan many times over distinct
// inputs, interleaving batch sizes, to verify buffer reuse never leaks
// state between executions.
func TestPlanRepeatedExecuteIsStable(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(21)))
	plan, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 20; iter++ {
		batch := 1 + iter%maxBatch
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		want := net.Infer(x)
		got := mustExecute(t, plan, x)
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("iter %d batch %d: diff %g", iter, batch, d)
		}
	}
}

// TestPlanPoolConcurrent exercises the serving pattern under -race: a
// sync.Pool of plans shared by goroutines that concurrently check plan
// outputs against the (read-only) Infer path.
func TestPlanPoolConcurrent(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	for _, method := range []Method{Butterfly, Circulant, Pixelfly} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(31)))
			var pool sync.Pool
			getPlan := func() *Plan {
				if v := pool.Get(); v != nil {
					return v.(*Plan)
				}
				p, err := net.CompilePlan(maxBatch)
				if err != nil {
					t.Errorf("CompilePlan: %v", err)
					return nil
				}
				return p
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for iter := 0; iter < 10; iter++ {
						batch := 1 + rng.Intn(maxBatch)
						x := tensor.New(batch, n)
						x.FillRandom(rng, 1)
						p := getPlan()
						if p == nil {
							return
						}
						got, xerr := p.Execute(x)
						if xerr != nil {
							t.Errorf("Execute: %v", xerr)
							return
						}
						want := net.Infer(x)
						if d := tensor.MaxAbsDiff(want, got); d != 0 {
							t.Errorf("goroutine seed %d iter %d: diff %g", seed, iter, d)
						}
						pool.Put(p)
					}
				}(int64(100 + g))
			}
			wg.Wait()
		})
	}
}

// TestPlanErrors covers compilation edge cases.
func TestPlanErrors(t *testing.T) {
	net := BuildSHL(Baseline, 16, 4, rand.New(rand.NewSource(1)))
	if _, err := net.CompilePlan(0); err == nil {
		t.Error("CompilePlan(0) should fail")
	}
	if _, err := NewSequential().CompilePlan(4); err == nil {
		t.Error("CompilePlan on empty model should fail")
	}
	if _, err := NewSequential(NewReLU()).CompilePlan(4); err == nil {
		t.Error("CompilePlan with leading ReLU should fail (no input width)")
	}
	plan, err := net.CompilePlan(4)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	if _, err := plan.Execute(tensor.New(5, 16)); !errors.Is(err, ErrPlanBatch) {
		t.Errorf("oversized batch: got %v, want ErrPlanBatch", err)
	}
	if _, err := plan.Execute(tensor.New(2, 8)); !errors.Is(err, ErrPlanWidth) {
		t.Errorf("wrong width: got %v, want ErrPlanWidth", err)
	}
	if _, err := plan.Execute(tensor.New(0, 16)); !errors.Is(err, ErrPlanBatch) {
		t.Errorf("zero rows: got %v, want ErrPlanBatch", err)
	}
	// A rejected input must not poison the plan for the next caller.
	x := tensor.New(2, 16)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	want := net.Infer(x)
	got := mustExecute(t, plan, x)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("plan output differs by %g after rejected inputs", d)
	}
}

// mustExecute runs the plan and fails the test on an input-contract error.
func mustExecute(t *testing.T, p *Plan, x *tensor.Matrix) *tensor.Matrix {
	t.Helper()
	y, err := p.Execute(x)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return y
}

// TestPlanSteadyStateAllocs checks the allocation contract directly: after
// warm-up, Execute performs zero heap allocations for every method.
func TestPlanSteadyStateAllocs(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	for _, method := range AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(17)))
			plan, err := net.CompilePlan(maxBatch)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			x := tensor.New(maxBatch, n)
			x.FillRandom(rand.New(rand.NewSource(18)), 1)
			mustExecute(t, plan, x)
			avg := testing.AllocsPerRun(20, func() { plan.Execute(x) })
			// Dense layers route through MatMulParallelInto, which may spawn
			// goroutines (their stacks count as allocations); everything else
			// must be zero. Allow a small parallelism budget only.
			if avg > 8 {
				t.Errorf("Execute allocates %.1f objects per run at steady state", avg)
			}
			if method != Baseline {
				// Structured first layers are small enough that the dense
				// head stays under the parallel threshold: expect zero.
				if avg != 0 {
					t.Errorf("Execute allocates %.1f objects per run, want 0", avg)
				}
			}
		})
	}
}

// TestPlanStepIntrospection pins the fused-step reporting contract: a
// debugger walking Step(i) must account for every source layer exactly
// once, with fused steps exposing both the linear layer and the folded
// activation.
func TestPlanStepIntrospection(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(3)))
	fused, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	unfused, err := net.CompilePlanOpts(maxBatch, PlanOptions{NoFuse: true})
	if err != nil {
		t.Fatalf("CompilePlanOpts: %v", err)
	}

	if unfused.NumSteps() != 3 {
		t.Fatalf("unfused steps = %d, want 3", unfused.NumSteps())
	}
	for i, want := range []StepKind{StepLinear, StepActivation, StepLinear} {
		si := unfused.Step(i)
		if si.Kind != want || si.Fused() || si.Act != nil {
			t.Fatalf("unfused step %d: kind=%v fused=%v act=%v, want %v/false/nil", i, si.Kind, si.Fused(), si.Act, want)
		}
	}

	if fused.NumSteps() != 2 {
		t.Fatalf("fused steps = %d, want 2", fused.NumSteps())
	}
	s0 := fused.Step(0)
	if s0.Kind != StepFused || !s0.Fused() {
		t.Fatalf("step 0 kind = %v, want StepFused", s0.Kind)
	}
	if _, ok := s0.Layer.(*StructuredLinear); !ok {
		t.Fatalf("step 0 layer = %T, want *StructuredLinear", s0.Layer)
	}
	if _, ok := s0.Act.(*ReLU); !ok {
		t.Fatalf("step 0 act = %T, want *ReLU", s0.Act)
	}
	if s0.Activation() != tensor.ActReLU {
		t.Fatalf("step 0 activation = %v, want relu", s0.Activation())
	}
	s1 := fused.Step(1)
	if s1.Kind != StepLinear || s1.Fused() || s1.Act != nil || s1.Activation() != tensor.ActNone {
		t.Fatalf("step 1 = %+v, want plain linear", s1)
	}

	// Walking the step list must account for every model layer exactly
	// once, in order — fused steps contribute their linear layer and the
	// folded activation.
	next := 0
	for i := 0; i < fused.NumSteps(); i++ {
		si := fused.Step(i)
		if si.Layer != net.Layers[next] {
			t.Fatalf("step %d layer is not model layer %d", i, next)
		}
		next++
		if si.Act != nil {
			if si.Act != net.Layers[next] {
				t.Fatalf("step %d folded act is not model layer %d", i, next)
			}
			next++
		}
	}
	if next != len(net.Layers) {
		t.Fatalf("steps cover %d layers, want %d", next, len(net.Layers))
	}

	// Fused step names join both sources.
	if name := fused.Steps()[0]; name != unfused.Steps()[0]+"+"+unfused.Steps()[1] {
		t.Fatalf("fused step name %q does not join source names %q and %q",
			name, unfused.Steps()[0], unfused.Steps()[1])
	}
}

// TestPlanArenaSizingUnderFusion asserts the exact arena byte counts of
// fused and unfused plans: fusing the SHL's multiply+bias+ReLU into one
// step moves the classifier head to the second ping-pong arena, shrinking
// it from hidden width to class width, while the workspace's grow-at-Reset
// sizing stays at the transform's exact scratch demand under fusion.
func TestPlanArenaSizingUnderFusion(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(19)))
	fused, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	unfused, err := net.CompilePlanOpts(maxBatch, PlanOptions{NoFuse: true})
	if err != nil {
		t.Fatalf("CompilePlanOpts: %v", err)
	}
	fs, us := fused.Stats(), unfused.Stats()

	// Unfused: steps land [butterfly:A, relu:B, dense:A] — both arenas
	// hold the 64-wide hidden activation. 4 bytes × 8 rows × (64 + 64).
	if want := 4 * maxBatch * (n + n); us.ArenaBytes != want {
		t.Errorf("unfused ArenaBytes = %d, want %d", us.ArenaBytes, want)
	}
	// Fused: [butterfly+relu:A, dense:B] — arena B shrinks to the 10-wide
	// logits. 4 × 8 × (64 + 10).
	if want := 4 * maxBatch * (n + classes); fs.ArenaBytes != want {
		t.Errorf("fused ArenaBytes = %d, want %d", fs.ArenaBytes, want)
	}
	if fs.ArenaBytes >= us.ArenaBytes {
		t.Errorf("fusion did not shrink the arenas: %d >= %d", fs.ArenaBytes, us.ArenaBytes)
	}

	// The butterfly's ApplyInto (fused or not) stages one N-wide scratch
	// matrix through the workspace; grow-at-Reset must settle at exactly
	// that demand after compilation's two warm-ups.
	if want := 4 * maxBatch * n; fs.WorkspaceBytes != want || us.WorkspaceBytes != want {
		t.Errorf("WorkspaceBytes fused=%d unfused=%d, want %d", fs.WorkspaceBytes, us.WorkspaceBytes, want)
	}

	// Modelled arena traffic at maxBatch, from the step silhouettes:
	// unfused (read in + write out + 2 sweeps per extra pass):
	//   butterfly 4·8·(64+64+2·64) + relu 4·8·(64+64) + dense 4·8·(64+10+2·10)
	wantUnfused := 4*maxBatch*(n+n+2*n) + 4*maxBatch*(n+n) + 4*maxBatch*(n+classes+2*classes)
	if us.TrafficBytes != wantUnfused {
		t.Errorf("unfused TrafficBytes = %d, want %d", us.TrafficBytes, wantUnfused)
	}
	wantFused := 4*maxBatch*(n+n) + 4*maxBatch*(n+classes+2*classes)
	if fs.TrafficBytes != wantFused {
		t.Errorf("fused TrafficBytes = %d, want %d", fs.TrafficBytes, wantFused)
	}
	if fs.TrafficBytesBeforeFusion != wantUnfused {
		t.Errorf("TrafficBytesBeforeFusion = %d, want %d", fs.TrafficBytesBeforeFusion, wantUnfused)
	}
	if 2*fs.TrafficBytes <= us.TrafficBytes {
		// the headline claim: fusing the SHL roughly halves arena traffic
		t.Logf("traffic reduction %.2fx", float64(us.TrafficBytes)/float64(fs.TrafficBytes))
	} else if float64(us.TrafficBytes)/float64(fs.TrafficBytes) < 1.5 {
		t.Errorf("fusion saved too little traffic: %d -> %d", us.TrafficBytes, fs.TrafficBytes)
	}

	// Executing at every batch size must not grow any arena afterwards —
	// the grow-at-Reset high-water mark was reached during compilation.
	rng := rand.New(rand.NewSource(20))
	for batch := 1; batch <= maxBatch; batch++ {
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		mustExecute(t, fused, x)
		if got := fused.Stats(); got != fs {
			t.Fatalf("batch %d: plan stats drifted after Execute: %+v != %+v", batch, got, fs)
		}
	}
}

// benchmarkPlanExecute measures steady-state Execute for one compile mode.
func benchmarkPlanExecute(b *testing.B, method Method, opts PlanOptions) {
	const n, classes, maxBatch = 256, 10, 16
	net := BuildSHL(method, n, classes, rand.New(rand.NewSource(50)))
	plan, err := net.CompilePlanOpts(maxBatch, opts)
	if err != nil {
		b.Fatalf("CompilePlanOpts: %v", err)
	}
	x := tensor.New(maxBatch, n)
	x.FillRandom(rand.New(rand.NewSource(51)), 1)
	if _, err := plan.Execute(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Execute(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedPlanExecute / BenchmarkUnfusedPlanExecute compare the
// fused single-pass kernels against the three-sweep lowering — the
// host-side proxy for the modelled memory-traffic win.
func BenchmarkFusedPlanExecute(b *testing.B) {
	for _, method := range []Method{Baseline, Butterfly} {
		b.Run(method.String(), func(b *testing.B) { benchmarkPlanExecute(b, method, PlanOptions{}) })
	}
}

func BenchmarkUnfusedPlanExecute(b *testing.B) {
	for _, method := range []Method{Baseline, Butterfly} {
		b.Run(method.String(), func(b *testing.B) { benchmarkPlanExecute(b, method, PlanOptions{NoFuse: true}) })
	}
}
