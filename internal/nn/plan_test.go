package nn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestPlanMatchesInferAllMethods asserts the tentpole contract: for every
// Table 4 method, Plan.Execute output is bit-for-bit identical to
// Sequential.Infer, across batch sizes from 1 up to the plan's maximum.
func TestPlanMatchesInferAllMethods(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 16
	for _, method := range AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(7)))
			plan, err := net.CompilePlan(maxBatch)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			if plan.InputWidth() != n || plan.OutputWidth() != classes {
				t.Fatalf("plan dims %d->%d, want %d->%d",
					plan.InputWidth(), plan.OutputWidth(), n, classes)
			}
			rng := rand.New(rand.NewSource(99))
			for _, batch := range []int{1, 3, maxBatch} {
				x := tensor.New(batch, n)
				x.FillRandom(rng, 1)
				want := net.Infer(x)
				got := mustExecute(t, plan, x)
				if d := tensor.MaxAbsDiff(want, got); d != 0 {
					t.Fatalf("batch %d: plan output differs from Infer by %g (want bit-for-bit)", batch, d)
				}
			}
		})
	}
}

// TestPlanMatchesInferCompressed compiles a plan for a post-hoc compressed
// model (which mixes FactorizedDense / structured layers swapped in by
// Compress) and checks bit-for-bit equivalence with Infer.
func TestPlanMatchesInferCompressed(t *testing.T) {
	const n, classes = 32, 10
	net := BuildSHL(Baseline, n, classes, rand.New(rand.NewSource(3)))
	compressed, reports, err := net.Compress(CompressOptions{Tolerance: 0.7, Seed: 5})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("Compress produced no layer reports")
	}
	plan, err := compressed.CompilePlan(8)
	if err != nil {
		t.Fatalf("CompilePlan(compressed): %v", err)
	}
	x := tensor.New(5, n)
	x.FillRandom(rand.New(rand.NewSource(11)), 1)
	want := compressed.Infer(x)
	got := mustExecute(t, plan, x)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("compressed plan output differs from Infer by %g", d)
	}
}

// TestPlanRepeatedExecuteIsStable reruns one plan many times over distinct
// inputs, interleaving batch sizes, to verify buffer reuse never leaks
// state between executions.
func TestPlanRepeatedExecuteIsStable(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(21)))
	plan, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 20; iter++ {
		batch := 1 + iter%maxBatch
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		want := net.Infer(x)
		got := mustExecute(t, plan, x)
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("iter %d batch %d: diff %g", iter, batch, d)
		}
	}
}

// TestPlanPoolConcurrent exercises the serving pattern under -race: a
// sync.Pool of plans shared by goroutines that concurrently check plan
// outputs against the (read-only) Infer path.
func TestPlanPoolConcurrent(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	for _, method := range []Method{Butterfly, Circulant, Pixelfly} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(31)))
			var pool sync.Pool
			getPlan := func() *Plan {
				if v := pool.Get(); v != nil {
					return v.(*Plan)
				}
				p, err := net.CompilePlan(maxBatch)
				if err != nil {
					t.Errorf("CompilePlan: %v", err)
					return nil
				}
				return p
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for iter := 0; iter < 10; iter++ {
						batch := 1 + rng.Intn(maxBatch)
						x := tensor.New(batch, n)
						x.FillRandom(rng, 1)
						p := getPlan()
						if p == nil {
							return
						}
						got, xerr := p.Execute(x)
						if xerr != nil {
							t.Errorf("Execute: %v", xerr)
							return
						}
						want := net.Infer(x)
						if d := tensor.MaxAbsDiff(want, got); d != 0 {
							t.Errorf("goroutine seed %d iter %d: diff %g", seed, iter, d)
						}
						pool.Put(p)
					}
				}(int64(100 + g))
			}
			wg.Wait()
		})
	}
}

// TestPlanErrors covers compilation edge cases.
func TestPlanErrors(t *testing.T) {
	net := BuildSHL(Baseline, 16, 4, rand.New(rand.NewSource(1)))
	if _, err := net.CompilePlan(0); err == nil {
		t.Error("CompilePlan(0) should fail")
	}
	if _, err := NewSequential().CompilePlan(4); err == nil {
		t.Error("CompilePlan on empty model should fail")
	}
	if _, err := NewSequential(NewReLU()).CompilePlan(4); err == nil {
		t.Error("CompilePlan with leading ReLU should fail (no input width)")
	}
	plan, err := net.CompilePlan(4)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	if _, err := plan.Execute(tensor.New(5, 16)); !errors.Is(err, ErrPlanBatch) {
		t.Errorf("oversized batch: got %v, want ErrPlanBatch", err)
	}
	if _, err := plan.Execute(tensor.New(2, 8)); !errors.Is(err, ErrPlanWidth) {
		t.Errorf("wrong width: got %v, want ErrPlanWidth", err)
	}
	if _, err := plan.Execute(tensor.New(0, 16)); !errors.Is(err, ErrPlanBatch) {
		t.Errorf("zero rows: got %v, want ErrPlanBatch", err)
	}
	// A rejected input must not poison the plan for the next caller.
	x := tensor.New(2, 16)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	want := net.Infer(x)
	got := mustExecute(t, plan, x)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("plan output differs by %g after rejected inputs", d)
	}
}

// mustExecute runs the plan and fails the test on an input-contract error.
func mustExecute(t *testing.T, p *Plan, x *tensor.Matrix) *tensor.Matrix {
	t.Helper()
	y, err := p.Execute(x)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return y
}

// TestPlanSteadyStateAllocs checks the allocation contract directly: after
// warm-up, Execute performs zero heap allocations for every method.
func TestPlanSteadyStateAllocs(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	for _, method := range AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(17)))
			plan, err := net.CompilePlan(maxBatch)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			x := tensor.New(maxBatch, n)
			x.FillRandom(rand.New(rand.NewSource(18)), 1)
			mustExecute(t, plan, x)
			avg := testing.AllocsPerRun(20, func() { plan.Execute(x) })
			// Dense layers route through MatMulParallelInto, which may spawn
			// goroutines (their stacks count as allocations); everything else
			// must be zero. Allow a small parallelism budget only.
			if avg > 8 {
				t.Errorf("Execute allocates %.1f objects per run at steady state", avg)
			}
			if method != Baseline {
				// Structured first layers are small enough that the dense
				// head stays under the parallel threshold: expect zero.
				if avg != 0 {
					t.Errorf("Execute allocates %.1f objects per run, want 0", avg)
				}
			}
		})
	}
}
