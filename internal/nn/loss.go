package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (batch×C) against integer labels, and the gradient w.r.t. the logits
// ((softmax − onehot)/batch). The log-sum-exp is computed stably.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	batch := logits.Rows
	grad := tensor.New(logits.Rows, logits.Cols)
	var loss float64
	for r := 0; r < batch; r++ {
		row := logits.Row(r)
		y := labels[r]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, logits.Cols))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		loss += logZ - float64(row[y])
		g := grad.Row(r)
		inv := 1 / (sum * float64(batch))
		for j, v := range row {
			g[j] = float32(math.Exp(float64(v-maxv)) * inv)
		}
		g[y] -= float32(1) / float32(batch)
	}
	return loss / float64(batch), grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), logits.Rows))
	}
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
