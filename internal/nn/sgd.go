package nn

import "fmt"

// SGD is stochastic gradient descent with classical momentum
// (v ← μ·v − lr·g; p ← p + v), Table 3's optimizer.
type SGD struct {
	LR       float32
	Momentum float32

	model    *Sequential
	params   [][]float32
	grads    [][]float32
	velocity [][]float32
}

// NewSGD binds an optimizer to the model's current parameter set.
func NewSGD(model *Sequential, lr, momentum float32) *SGD {
	p, g := model.Params()
	if len(p) != len(g) {
		panic(fmt.Sprintf("nn: %d param groups but %d grad groups", len(p), len(g)))
	}
	v := make([][]float32, len(p))
	for i := range p {
		if len(p[i]) != len(g[i]) {
			panic(fmt.Sprintf("nn: group %d param len %d != grad len %d", i, len(p[i]), len(g[i])))
		}
		v[i] = make([]float32, len(p[i]))
	}
	return &SGD{LR: lr, Momentum: momentum, model: model, params: p, grads: g, velocity: v}
}

// Step applies one update and refreshes derived layer state.
func (o *SGD) Step() {
	for i := range o.params {
		p, g, v := o.params[i], o.grads[i], o.velocity[i]
		for j := range p {
			v[j] = o.Momentum*v[j] - o.LR*g[j]
			p[j] += v[j]
		}
	}
	o.model.Refresh()
}
