// Package nn is a minimal neural-network training framework with exactly
// the pieces the paper's SHL benchmark needs: a dense layer
// (torch.nn.Linear), adapters wrapping every structured weight method
// (butterfly, pixelfly, fastfood, circulant, low-rank), ReLU, softmax
// cross-entropy, and SGD with momentum (Table 3's hyperparameters). All
// backward passes are hand-derived and verified against numerical
// differentiation in the tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is a differentiable module. Forward retains whatever state
// Backward needs; Backward returns the gradient w.r.t. the input and
// accumulates parameter gradients. Infer is the read-only counterpart of
// Forward: it mutates no layer state, so one layer can serve concurrent
// goroutines as long as nothing trains it at the same time.
type Layer interface {
	Name() string
	Forward(x *tensor.Matrix) *tensor.Matrix
	Infer(x *tensor.Matrix) *tensor.Matrix
	Backward(dY *tensor.Matrix) *tensor.Matrix
	Params() (params, grads [][]float32)
	ZeroGrad()
	ParamCount() int
}

// refresher is implemented by layers that must re-derive internal state
// after an optimizer step (e.g. rotation-parameterized butterflies).
type refresher interface{ Refresh() }

// Transform is a learnable square linear operator; the butterfly, pixelfly
// and baseline packages all satisfy it. Apply is Forward without retaining
// state: it writes nothing through the receiver, making shared-weight
// concurrent inference safe. ApplyInto is Apply in destination-passing
// form: it writes the result into caller-owned dst, staging intermediates
// through the caller's workspace arena instead of allocating, and must
// produce output bit-identical to Apply — the contract the compiled
// inference plans (Sequential.CompilePlan) are built on.
type Transform interface {
	Forward(x *tensor.Matrix) *tensor.Matrix
	Apply(x *tensor.Matrix) *tensor.Matrix
	ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace)
	Backward(dY *tensor.Matrix) *tensor.Matrix
	ZeroGrad()
	Params() (params, grads [][]float32)
	ParamCount() int
	Flops(batch int) float64
}

// Dense is the torch.nn.Linear equivalent: Y = X·W + b with W stored
// (in×out).
type Dense struct {
	In, Out int
	W       *tensor.Matrix // in×out
	Bias    []float32
	GradW   *tensor.Matrix
	GradB   []float32

	xSaved *tensor.Matrix
}

// NewDense creates a dense layer with uniform Kaiming-style init.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out,
		W: tensor.New(in, out), GradW: tensor.New(in, out),
		Bias: make([]float32, out), GradB: make([]float32, out)}
	scale := float32(1 / math.Sqrt(float64(in)))
	d.W.FillRandom(rng, scale)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%dx%d)", d.In, d.Out) }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.In*d.Out + d.Out }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := d.Infer(x)
	d.xSaved = x
	return out
}

// Infer implements Layer: Forward without saving the input for Backward.
func (d *Dense) Infer(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense input width %d != %d", x.Cols, d.In))
	}
	out := tensor.MatMulParallel(x, d.W)
	tensor.AddRowVector(out, d.Bias)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if d.xSaved == nil {
		panic("nn: dense Backward before Forward")
	}
	tensor.AddInPlace(d.GradW, tensor.MatMulParallel(d.xSaved.Transpose(), dY))
	for j, v := range tensor.ColSums(dY) {
		d.GradB[j] += v
	}
	return tensor.MatMulParallel(dY, d.W.Transpose())
}

// Params implements Layer.
func (d *Dense) Params() (params, grads [][]float32) {
	return [][]float32{d.W.Data, d.Bias}, [][]float32{d.GradW.Data, d.GradB}
}

// ZeroGrad implements Layer.
func (d *Dense) ZeroGrad() {
	d.GradW.Zero()
	for i := range d.GradB {
		d.GradB[i] = 0
	}
}

// Flops returns 2·in·out per sample.
func (d *Dense) Flops(batch int) float64 {
	return 2 * float64(d.In) * float64(d.Out) * float64(batch)
}

// StructuredLinear wraps a square Transform and adds a bias — the drop-in
// replacement for Dense that Table 4's compressed methods use.
type StructuredLinear struct {
	Label string
	N     int
	T     Transform
	Bias  []float32
	GradB []float32
}

// NewStructuredLinear wraps t (an n×n transform).
func NewStructuredLinear(label string, n int, t Transform) *StructuredLinear {
	return &StructuredLinear{Label: label, N: n, T: t,
		Bias: make([]float32, n), GradB: make([]float32, n)}
}

// Name implements Layer.
func (s *StructuredLinear) Name() string { return fmt.Sprintf("%s(%d)", s.Label, s.N) }

// ParamCount implements Layer.
func (s *StructuredLinear) ParamCount() int { return s.T.ParamCount() + s.N }

// Forward implements Layer.
func (s *StructuredLinear) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := s.T.Forward(x)
	tensor.AddRowVector(out, s.Bias)
	return out
}

// Infer implements Layer: it routes through the transform's stateless
// Apply instead of Forward.
func (s *StructuredLinear) Infer(x *tensor.Matrix) *tensor.Matrix {
	out := s.T.Apply(x)
	tensor.AddRowVector(out, s.Bias)
	return out
}

// Backward implements Layer.
func (s *StructuredLinear) Backward(dY *tensor.Matrix) *tensor.Matrix {
	for j, v := range tensor.ColSums(dY) {
		s.GradB[j] += v
	}
	return s.T.Backward(dY)
}

// Params implements Layer.
func (s *StructuredLinear) Params() (params, grads [][]float32) {
	p, g := s.T.Params()
	return append(p, s.Bias), append(g, s.GradB)
}

// ZeroGrad implements Layer.
func (s *StructuredLinear) ZeroGrad() {
	s.T.ZeroGrad()
	for i := range s.GradB {
		s.GradB[i] = 0
	}
}

// Refresh forwards to the wrapped transform when it needs post-step sync.
func (s *StructuredLinear) Refresh() {
	if r, ok := s.T.(refresher); ok {
		r.Refresh()
	}
}

// Flops forwards to the transform plus the bias adds.
func (s *StructuredLinear) Flops(batch int) float64 {
	return s.T.Flops(batch) + float64(s.N)*float64(batch)
}

// ReLU is the activation of Table 3.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// ParamCount implements Layer.
func (r *ReLU) ParamCount() int { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Infer implements Layer: Forward without recording the activation mask.
func (r *ReLU) Infer(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if len(r.mask) != len(dY.Data) {
		panic("nn: relu Backward shape mismatch (Forward not called?)")
	}
	out := tensor.New(dY.Rows, dY.Cols)
	for i, v := range dY.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() (params, grads [][]float32) { return nil, nil }

// ZeroGrad implements Layer.
func (r *ReLU) ZeroGrad() {}
