package nn

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// TestPlanKernelClassification pins the step → kernel-family attribution
// for every Table 4 method: the structured first layer reports its own
// family, the dense classifier head reports matmul.
func TestPlanKernelClassification(t *testing.T) {
	want := map[Method]obs.Kernel{
		Baseline:  obs.KernelMatMul,
		Butterfly: obs.KernelButterfly,
		Fastfood:  obs.KernelFWHT,
		Circulant: obs.KernelFFT,
		LowRank:   obs.KernelLowRank,
		Pixelfly:  obs.KernelBSR,
	}
	const n, classes, maxBatch = 64, 10, 8
	for _, method := range AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := BuildSHL(method, n, classes, rand.New(rand.NewSource(5)))
			plan, err := net.CompilePlan(maxBatch)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			if got := plan.StepKernel(0); got != want[method] {
				t.Errorf("first step kernel = %s, want %s", got, want[method])
			}
			last := plan.NumSteps() - 1
			if got := plan.StepKernel(last); got != obs.KernelMatMul {
				t.Errorf("classifier head kernel = %s, want matmul", got)
			}
			for i := 0; i < plan.NumSteps(); i++ {
				if plan.StepFlopsPerRow(i) <= 0 {
					t.Errorf("step %d (%s): flops/row = %d, want > 0",
						i, plan.Steps()[i], plan.StepFlopsPerRow(i))
				}
				if plan.StepArenaBytesPerRow(i) <= 0 {
					t.Errorf("step %d (%s): arena bytes/row = %d, want > 0",
						i, plan.Steps()[i], plan.StepArenaBytesPerRow(i))
				}
			}
		})
	}
}

// TestPlanKernelAccounting executes a butterfly plan with the sink
// installed and checks the recorded totals against the plan's own
// per-row figures: flops and bytes must match rows × per-row exactly,
// and every executed step must land in its attributed family.
func TestPlanKernelAccounting(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(9)))
	plan, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	ks := obs.NewKernelStats()
	plan.SetKernelStats(ks)

	rows := int64(0)
	rng := rand.New(rand.NewSource(10))
	for _, batch := range []int{1, 3, maxBatch} {
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		if _, err := plan.Execute(x); err != nil {
			t.Fatalf("Execute: %v", err)
		}
		rows += int64(batch)
	}

	wantFlops := map[string]int64{}
	wantBytes := map[string]int64{}
	wantCalls := map[string]int64{}
	for i := 0; i < plan.NumSteps(); i++ {
		k := plan.StepKernel(i).String()
		wantFlops[k] += rows * plan.StepFlopsPerRow(i)
		wantBytes[k] += rows * plan.StepArenaBytesPerRow(i)
		wantCalls[k] += 3 // one record per step per Execute
	}

	snaps := ks.Snapshot()
	if len(snaps) != len(wantFlops) {
		t.Fatalf("sink families = %d, want %d (%v)", len(snaps), len(wantFlops), snaps)
	}
	for _, s := range snaps {
		if s.Flops != wantFlops[s.Kernel] {
			t.Errorf("%s flops = %d, want %d", s.Kernel, s.Flops, wantFlops[s.Kernel])
		}
		if s.Bytes != wantBytes[s.Kernel] {
			t.Errorf("%s bytes = %d, want %d", s.Kernel, s.Bytes, wantBytes[s.Kernel])
		}
		if s.Calls != wantCalls[s.Kernel] {
			t.Errorf("%s calls = %d, want %d", s.Kernel, s.Calls, wantCalls[s.Kernel])
		}
		if s.Nanos <= 0 {
			t.Errorf("%s nanos = %d, want > 0", s.Kernel, s.Nanos)
		}
	}
}

// TestPlanKernelStatsAllocFree pins the accounting overhead contract:
// with the sink installed, steady-state Execute still performs zero heap
// allocations (striped atomic adds only).
func TestPlanKernelStatsAllocFree(t *testing.T) {
	const n, classes, maxBatch = 64, 10, 8
	net := BuildSHL(Butterfly, n, classes, rand.New(rand.NewSource(17)))
	plan, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	plan.SetKernelStats(obs.NewKernelStats())
	x := tensor.New(maxBatch, n)
	x.FillRandom(rand.New(rand.NewSource(18)), 1)
	if _, err := plan.Execute(x); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if avg := testing.AllocsPerRun(20, func() { plan.Execute(x) }); avg != 0 {
		t.Errorf("Execute with kernel accounting allocates %.1f objects per run, want 0", avg)
	}
}
