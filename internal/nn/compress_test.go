package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/butterfly"
	"repro/internal/factorize"
	"repro/internal/tensor"
)

// relOutErr measures ‖a − b‖_F / ‖a‖_F for two output matrices.
func relOutErr(a, b *tensor.Matrix) float64 {
	return tensor.Sub(a, b).FrobeniusNorm() / a.FrobeniusNorm()
}

func TestCompressRecoversButterflyLayer(t *testing.T) {
	// Plant an exact identity-permutation butterfly in the first dense
	// layer: Compress must swap it for a butterfly operator and the
	// compressed model must reproduce the original predictions.
	const n, classes = 32, 4
	rng := rand.New(rand.NewSource(11))
	model := BuildSHL(Baseline, n, classes, rng)
	src := butterfly.New(n, butterfly.Dense2x2, rng)
	src.Perm = nil
	model.Layers[0].(*Dense).W = src.Dense().Transpose()

	compressed, reports, err := model.Compress(CompressOptions{Tolerance: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Kind != factorize.KindButterfly {
		t.Fatalf("first layer kind = %v, want butterfly (reports %+v)", reports[0].Kind, reports)
	}
	if reports[0].ParamsAfter >= reports[0].ParamsBefore {
		t.Fatalf("no parameter saving: %d -> %d", reports[0].ParamsBefore, reports[0].ParamsAfter)
	}
	x := tensor.New(8, n)
	x.FillRandom(rng, 1)
	want := model.Infer(x)
	got := compressed.Infer(x)
	if e := relOutErr(want, got); e > 0.02 {
		t.Fatalf("compressed predictions deviate by %v", e)
	}
}

func TestCompressRecoversLowRankLayer(t *testing.T) {
	const n, classes, rank = 32, 4, 3
	rng := rand.New(rand.NewSource(12))
	model := BuildSHL(Baseline, n, classes, rng)
	u := tensor.GaussianMatrix(n, rank, rng)
	v := tensor.GaussianMatrix(rank, n, rng)
	model.Layers[0].(*Dense).W = tensor.MatMul(u, v)

	compressed, reports, err := model.Compress(CompressOptions{Tolerance: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Kind != factorize.KindLowRank {
		t.Fatalf("first layer kind = %v, want lowrank", reports[0].Kind)
	}
	if reports[0].Rank != rank {
		t.Fatalf("recovered rank %d, want %d", reports[0].Rank, rank)
	}
	x := tensor.New(8, n)
	x.FillRandom(rng, 1)
	if e := relOutErr(model.Infer(x), compressed.Infer(x)); e > 0.02 {
		t.Fatalf("compressed predictions deviate by %v", e)
	}
}

func TestCompressNeverIncreasesSizeBytes(t *testing.T) {
	// Property: for any model and tolerance, Compress must not grow the
	// parameter footprint, and every reported error must meet the
	// tolerance.
	for seed := int64(0); seed < 5; seed++ {
		for _, tol := range []float64{0, 0.05, 0.3, 0.8} {
			rng := rand.New(rand.NewSource(seed))
			model := BuildSHL(Baseline, 32, 5, rng)
			compressed, reports, err := model.Compress(CompressOptions{Tolerance: tol, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if compressed.SizeBytes() > model.SizeBytes() {
				t.Fatalf("seed=%d tol=%v: size grew %d -> %d bytes",
					seed, tol, model.SizeBytes(), compressed.SizeBytes())
			}
			for _, r := range reports {
				if r.RelError > tol*1.01 {
					t.Fatalf("seed=%d tol=%v: layer %d error %v over tolerance",
						seed, tol, r.Index, r.RelError)
				}
				if r.ParamsAfter > r.ParamsBefore {
					t.Fatalf("seed=%d tol=%v: layer %d params grew %d -> %d",
						seed, tol, r.Index, r.ParamsBefore, r.ParamsAfter)
				}
			}
		}
	}
}

func TestCompressLeavesStructuredLayersAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	model := BuildSHL(Butterfly, 16, 3, rng)
	compressed, reports, err := model.Compress(CompressOptions{Tolerance: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if compressed.Layers[0] != model.Layers[0] {
		t.Fatal("structured first layer was not passed through")
	}
	// Only the dense classifier head is reported.
	if len(reports) != 1 || reports[0].Index != 2 {
		t.Fatalf("reports = %+v, want exactly the dense head", reports)
	}
}

func TestCompressMinParamsSkipsSmallLayers(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(14))
	model := BuildSHL(Baseline, n, 4, rng)
	// Plant a rank-1 first layer so compression would otherwise fire.
	u := tensor.GaussianMatrix(n, 1, rng)
	v := tensor.GaussianMatrix(1, n, rng)
	model.Layers[0].(*Dense).W = tensor.MatMul(u, v)
	compressed, reports, err := model.Compress(CompressOptions{
		Tolerance: 0.1, MinParams: n*n + n + 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Kind != factorize.KindDense {
			t.Fatalf("layer %d compressed despite MinParams", r.Index)
		}
	}
	if compressed.ParamCount() != model.ParamCount() {
		t.Fatal("params changed despite MinParams")
	}
}

func TestFactorizedDenseMatchesDenseEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := tensor.GaussianMatrix(6, 2, rng)
	b := tensor.GaussianMatrix(2, 4, rng)
	fd := &FactorizedDense{In: 6, Out: 4, Rank: 2, A: a, B: b,
		Bias:  []float32{0.1, -0.2, 0.3, 0},
		GradA: tensor.New(6, 2), GradB: tensor.New(2, 4), GradBias: make([]float32, 4)}
	d := &Dense{In: 6, Out: 4, W: tensor.MatMul(a, b),
		Bias: fd.Bias, GradW: tensor.New(6, 4), GradB: make([]float32, 4)}
	x := tensor.New(5, 6)
	x.FillRandom(rng, 1)
	if e := relOutErr(d.Infer(x), fd.Infer(x)); e > 1e-5 {
		t.Fatalf("factorized dense deviates from dense equivalent by %v", e)
	}
	if got, want := fd.ParamCount(), 2*(6+4)+4; got != want {
		t.Fatalf("param count %d, want %d", got, want)
	}
}

func TestFactorizedDenseGradientsNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	fd := &FactorizedDense{In: 5, Out: 3, Rank: 2,
		A: tensor.GaussianMatrix(5, 2, rng), B: tensor.GaussianMatrix(2, 3, rng),
		Bias:  make([]float32, 3),
		GradA: tensor.New(5, 2), GradB: tensor.New(2, 3), GradBias: make([]float32, 3)}
	x := tensor.New(4, 5)
	x.FillRandom(rng, 1)
	labels := []int{0, 1, 2, 1}
	loss := func() float64 {
		l, _ := SoftmaxCrossEntropy(fd.Forward(x), labels)
		return l
	}
	fd.ZeroGrad()
	logits := fd.Forward(x)
	_, dL := SoftmaxCrossEntropy(logits, labels)
	fd.Backward(dL)
	params, grads := fd.Params()
	const h = 1e-2
	for pi, ps := range params {
		for j := range ps {
			orig := ps[j]
			ps[j] = orig + h
			up := loss()
			ps[j] = orig - h
			dn := loss()
			ps[j] = orig
			num := (up - dn) / (2 * h)
			got := float64(grads[pi][j])
			if math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
				t.Fatalf("grad[%d][%d]: analytic %v numeric %v", pi, j, got, num)
			}
		}
	}
}
