// Micro-kernel dispatcher tests: CompilePlan selects the register-tiled
// fast paths once at plan-build time, stamps each kernel step with its
// variant name, and PlanOptions{NoMicroKernel} compiles the reference
// path. The race test pins the dispatcher's promise that plans compiled
// from one model can execute concurrently (CI runs it under -race).
package nn_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// expectedVariants maps each operator family to the micro-kernel variant
// its kernel steps must carry in a default (micro-enabled) plan.
var expectedVariants = map[nn.Method][]string{
	nn.Baseline:  {"tiled4x8"},
	nn.Butterfly: {"unrolled"},
	nn.Fastfood:  {"radix8"},
	nn.Circulant: {"reference"}, // no micro path: stays on the reference kernel
	nn.LowRank:   {"tiled4x8"},
	nn.Pixelfly:  {"blockunroll", "blocktiled"},
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// TestPlanVariantStamping checks that default plans stamp kernel steps
// with the family's micro-kernel variant and that NoMicroKernel plans
// stamp every kernel step "reference".
func TestPlanVariantStamping(t *testing.T) {
	for _, method := range nn.AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			net := nn.BuildSHL(method, 64, 10, rand.New(rand.NewSource(41)))
			pl, err := net.CompilePlan(8)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			if !pl.MicroKernel() {
				t.Fatal("default plan reports MicroKernel()=false")
			}
			want := expectedVariants[method]
			found := false
			for i, v := range pl.StepVariants() {
				if v != pl.Step(i).Variant {
					t.Fatalf("step %d: StepVariants %q != StepInfo.Variant %q", i, v, pl.Step(i).Variant)
				}
				if v == "" {
					continue // non-kernel step (standalone activation etc.)
				}
				// The Dense classifier head is present in every model, so
				// "tiled4x8" is always legitimate alongside the family's own
				// variant; "reference" covers families with no micro path.
				if !contains(want, v) && v != "reference" && v != "tiled4x8" {
					t.Fatalf("step %d: unexpected variant %q (want one of %v)", i, v, want)
				}
				if contains(want, v) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no kernel step carries any of %v; variants: %v", want, pl.StepVariants())
			}

			ref, err := net.CompilePlanOpts(8, nn.PlanOptions{NoMicroKernel: true})
			if err != nil {
				t.Fatalf("CompilePlanOpts(NoMicroKernel): %v", err)
			}
			if ref.MicroKernel() {
				t.Fatal("NoMicroKernel plan reports MicroKernel()=true")
			}
			for i, v := range ref.StepVariants() {
				if v != "" && v != "reference" {
					t.Fatalf("reference plan step %d carries micro variant %q", i, v)
				}
			}
		})
	}
}

// TestMicroKernelDispatcherRace executes several plans compiled from one
// model concurrently, each goroutine with its own input, and pins every
// result to Infer. The shape-keyed dispatch and packed weight panels are
// selected at compile time and must be read-only at execution time; CI's
// -race run enforces that here.
func TestMicroKernelDispatcherRace(t *testing.T) {
	const (
		n        = 64
		maxBatch = 8
		plans    = 4
		iters    = 16
	)
	for _, method := range []nn.Method{nn.Baseline, nn.Butterfly, nn.Fastfood, nn.Pixelfly} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			net := nn.BuildSHL(method, n, 10, rand.New(rand.NewSource(97)))
			var wg sync.WaitGroup
			for g := 0; g < plans; g++ {
				pl, err := net.CompilePlan(maxBatch)
				if err != nil {
					t.Fatalf("CompilePlan: %v", err)
				}
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				x := tensor.New(1+rng.Intn(maxBatch), n)
				x.FillRandom(rng, 1)
				want := net.Infer(x)
				wg.Add(1)
				go func(pl *nn.Plan, x, want *tensor.Matrix) {
					defer wg.Done()
					for it := 0; it < iters; it++ {
						got, err := pl.Execute(x)
						if err != nil {
							t.Errorf("Execute: %v", err)
							return
						}
						for i := range want.Data {
							if want.Data[i] != got.Data[i] {
								t.Errorf("element %d differs: %g vs %g", i, want.Data[i], got.Data[i])
								return
							}
						}
					}
				}(pl, x, want)
			}
			wg.Wait()
		})
	}
}
