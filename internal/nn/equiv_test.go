// Package nn_test holds the repo-wide equivalence fuzz harness: for
// randomized widths, batches, operator families and shard counts, every
// compiled execution path — unfused plan, fused plan, and sharded plan
// under both partitioning strategies — must be bit-for-bit equal to the
// reference Sequential.Infer. This is the property the plan-fusion
// optimisation is pinned against (structured-equivalence in the spirit of
// the rank-one-block identification line of work: an optimisation is only
// admissible if it computes the exact same float32 chain), and it runs
// race-clean in CI.
package nn_test

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/pixelfly"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// assertBitEqual fails unless a and b hold exactly the same float32 bits.
func assertBitEqual(t *testing.T, tag string, want, got *tensor.Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: element %d differs: %g vs %g (want bit-for-bit)", tag, i, want.Data[i], got.Data[i])
		}
	}
}

// methodWidths returns layer widths compatible with a method's structural
// constraints (pixelfly's 64-wide blocks need wider layers).
func methodWidths(m nn.Method) []int {
	if m == nn.Pixelfly {
		return []int{64, 128}
	}
	return []int{8, 16, 32, 64, 128}
}

// equivTrial drives one randomized model through every execution path and
// pins them all to Infer.
func equivTrial(t *testing.T, rng *rand.Rand, net *nn.Sequential, n, maxBatch int) {
	t.Helper()
	topo := shard.DefaultTopology(4)
	fused, err := net.CompilePlan(maxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	unfused, err := net.CompilePlanOpts(maxBatch, nn.PlanOptions{NoFuse: true})
	if err != nil {
		t.Fatalf("CompilePlanOpts(NoFuse): %v", err)
	}
	reference, err := net.CompilePlanOpts(maxBatch, nn.PlanOptions{NoMicroKernel: true})
	if err != nil {
		t.Fatalf("CompilePlanOpts(NoMicroKernel): %v", err)
	}
	fs, us := fused.Stats(), unfused.Stats()
	if us.FusedSteps != 0 {
		t.Fatalf("unfused plan reports %d fused steps", us.FusedSteps)
	}
	if fs.FusedSteps > 0 {
		if fs.Steps >= us.Steps {
			t.Fatalf("fusion fired (%d fused) but steps %d !< %d", fs.FusedSteps, fs.Steps, us.Steps)
		}
		if fs.TrafficBytes >= us.TrafficBytes {
			t.Fatalf("fusion fired but modelled traffic %d !< %d", fs.TrafficBytes, us.TrafficBytes)
		}
	}
	if fs.TrafficBytesBeforeFusion != us.TrafficBytes {
		t.Fatalf("pre-fusion traffic %d != unfused plan traffic %d", fs.TrafficBytesBeforeFusion, us.TrafficBytes)
	}

	batches := []int{1, 1 + rng.Intn(maxBatch), maxBatch}
	inputs := make([]*tensor.Matrix, len(batches))
	refs := make([]*tensor.Matrix, len(batches))
	for i, batch := range batches {
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		inputs[i] = x
		refs[i] = net.Infer(x)
		for tag, pl := range map[string]*nn.Plan{"unfused": unfused, "fused": fused, "reference": reference} {
			got, err := pl.Execute(x)
			if err != nil {
				t.Fatalf("%s Execute(batch=%d): %v", tag, batch, err)
			}
			assertBitEqual(t, tag, refs[i], got)
		}
	}

	for _, src := range []struct {
		tag string
		pl  *nn.Plan
	}{{"fused", fused}, {"unfused", unfused}} {
		for _, shards := range []int{1, 2, 4} {
			strategies := []shard.Strategy{shard.Pipeline}
			if shards > 1 && shard.Splittable(src.pl, shards) == nil {
				strategies = append(strategies, shard.TensorParallel)
			}
			for _, strat := range strategies {
				sp, err := shard.CompileWith(src.pl, topo, shards, strat)
				if err != nil {
					t.Fatalf("CompileWith(%s, %d, %v): %v", src.tag, shards, strat, err)
				}
				for i, x := range inputs {
					got, err := sp.Execute(x)
					if err != nil {
						t.Fatalf("sharded %s/%d/%v Execute: %v", src.tag, shards, strat, err)
					}
					assertBitEqual(t, src.tag+"/sharded", refs[i], got)
				}
				sp.Close()
			}
		}
	}

	// The multi-micro-batch wavefront schedule must also be bit-for-bit:
	// micro-batches are contiguous row slices of the same row-wise
	// kernels, so no float32 expression changes with the width.
	for _, shards := range []int{2, 4} {
		for _, micro := range []int{1, 2, 4} {
			sp, err := shard.CompileMicro(fused, topo, shards, shard.Pipeline, micro)
			if err != nil {
				t.Fatalf("CompileMicro(%d, %d): %v", shards, micro, err)
			}
			for i, x := range inputs {
				got, err := sp.Execute(x)
				if err != nil {
					t.Fatalf("wavefront %d/%d Execute: %v", shards, micro, err)
				}
				assertBitEqual(t, "wavefront", refs[i], got)
			}
			sp.Close()
		}
	}
}

// TestEquivalenceFuzzAllMethods is the harness over the six operator
// families with randomized (seeded) widths, class counts and batch caps.
func TestEquivalenceFuzzAllMethods(t *testing.T) {
	const trials = 3
	for _, method := range nn.AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(2026 + int64(method)))
			for trial := 0; trial < trials; trial++ {
				widths := methodWidths(method)
				n := widths[rng.Intn(len(widths))]
				classes := 2 + rng.Intn(11)
				maxBatch := 1 + rng.Intn(12)
				net := nn.BuildSHL(method, n, classes, rand.New(rand.NewSource(rng.Int63())))
				equivTrial(t, rng, net, n, maxBatch)
			}
		})
	}
}

// TestEquivalenceFuzzCompressed covers the post-hoc compressed layer mix
// (FactorizedDense / structured swaps) the registry also serves.
func TestEquivalenceFuzzCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := nn.BuildSHL(nn.Baseline, 64, 10, rand.New(rand.NewSource(5)))
	compressed, reports, err := net.Compress(nn.CompressOptions{Tolerance: 0.7, Seed: 9})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if len(reports) == 0 {
		t.Fatal("Compress produced no layer reports")
	}
	equivTrial(t, rng, compressed, 64, 8)
}

// TestEquivalenceFuzzPixelflyNoLowRank exercises the BSR fused final stage
// (pixelfly without a low-rank term routes the epilogue through
// BSR.MulDenseBiasActInto) and its sharded transpose-epilogue counterpart.
func TestEquivalenceFuzzPixelflyNoLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	cfg := pixelfly.Config{N: 128, BlockSize: 16, ButterflySize: 16, LowRank: 0}
	net, err := nn.BuildSHLPixelfly(cfg, 6, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("BuildSHLPixelfly: %v", err)
	}
	equivTrial(t, rng, net, 128, 9)
}
