package nn

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/factorize"
	"repro/internal/tensor"
)

// CompressOptions tune the post-hoc compression pass.
type CompressOptions struct {
	// Tolerance is the per-layer relative Frobenius error target each
	// factorized weight must meet.
	Tolerance float64
	// Methods restricts the candidate operator families (nil = all).
	Methods []factorize.Kind
	// MinParams skips layers smaller than this parameter count (they are
	// kept dense); 0 compresses everything the tolerance allows.
	MinParams int
	// Seed drives the randomized sketching.
	Seed int64
}

// LayerReport records what Compress did to one dense layer.
type LayerReport struct {
	Index        int
	Layer        string // original layer name
	Kind         factorize.Kind
	Rank         int // low-rank rank (0 for other kinds)
	RelError     float64
	ParamsBefore int
	ParamsAfter  int
}

// SizeBytes returns the FP32 footprint of the model's parameters.
func (s *Sequential) SizeBytes() int { return 4 * s.ParamCount() }

// Compress returns a copy of the model with every dense layer replaced by
// the smallest factorized operator (butterfly chain or truncated-SVD
// low-rank) meeting opts.Tolerance, or kept dense when no structured
// operator is smaller — so the compressed model never has more parameters
// than the original. Dense-derived layers (factorized or kept) are fresh
// copies, making the compressed model safe to fine-tune; other structured
// layers are reused as-is, so their weights stay shared with the source
// model (concurrent *inference* on both models is safe, concurrent
// training is not). One report per dense layer describes the decision.
func (s *Sequential) Compress(opts CompressOptions) (*Sequential, []LayerReport, error) {
	if opts.Tolerance < 0 {
		return nil, nil, fmt.Errorf("nn: negative compression tolerance %v", opts.Tolerance)
	}
	out := make([]Layer, 0, len(s.Layers))
	var reports []LayerReport
	for i, l := range s.Layers {
		d, ok := l.(*Dense)
		if !ok {
			if _, isReLU := l.(*ReLU); isReLU {
				out = append(out, NewReLU()) // fresh activation state
			} else {
				out = append(out, l)
			}
			continue
		}
		rep := LayerReport{Index: i, Layer: d.Name(), Kind: factorize.KindDense,
			ParamsBefore: d.ParamCount(), ParamsAfter: d.ParamCount()}
		if d.ParamCount() < opts.MinParams {
			out = append(out, cloneDense(d))
			reports = append(reports, rep)
			continue
		}
		// Dense computes Y = X·W on row vectors; the factorized operators
		// act on column vectors, so the target matrix is M = Wᵀ.
		approx, err := factorize.FactorizeToTolerance(d.W.Transpose(), opts.Tolerance,
			factorize.Options{Methods: opts.Methods, Seed: opts.Seed + int64(i)})
		if err != nil {
			return nil, nil, fmt.Errorf("nn: compressing layer %d (%s): %w", i, d.Name(), err)
		}
		swapped := swapDense(d, approx)
		if swapped == nil || swapped.ParamCount() >= d.ParamCount() {
			out = append(out, cloneDense(d))
			reports = append(reports, rep)
			continue
		}
		rep.Kind = approx.Kind
		rep.RelError = approx.RelError
		rep.ParamsAfter = swapped.ParamCount()
		if approx.Kind == factorize.KindLowRank {
			rep.Rank = approx.LowRank.Rank()
		}
		out = append(out, swapped)
		reports = append(reports, rep)
	}
	return NewSequential(out...), reports, nil
}

// cloneDense deep-copies a dense layer (fresh gradients) so the
// compressed model never aliases the source model's trainable state.
func cloneDense(d *Dense) *Dense {
	return &Dense{In: d.In, Out: d.Out,
		W: d.W.Clone(), Bias: append([]float32(nil), d.Bias...),
		GradW: tensor.New(d.In, d.Out), GradB: make([]float32, d.Out)}
}

// swapDense builds the replacement layer for a dense layer from its
// factorized approximation; nil means "keep the dense layer".
func swapDense(d *Dense, a *factorize.Approx) Layer {
	switch a.Kind {
	case factorize.KindButterfly:
		s := NewStructuredLinear("butterfly*", d.Out, a.Butterfly)
		copy(s.Bias, d.Bias)
		return s
	case factorize.KindLowRank:
		if d.In == d.Out {
			// Square: reuse the baseline low-rank transform. Its column
			// operator is U·Vᵀ and ours is P·Q, so U := P and V := Qᵀ.
			lr := baselines.NewLowRankFromFactors(a.LowRank.P, a.LowRank.Q.Transpose())
			s := NewStructuredLinear("lowrank*", d.Out, lr)
			copy(s.Bias, d.Bias)
			return s
		}
		return newFactorizedDense(d, a.LowRank)
	default:
		return nil
	}
}

// FactorizedDense is the rank-r replacement of a rectangular dense layer:
// Y = (X·A)·B + bias with A (in×r) and B (r×out), storing r·(in+out)
// weight parameters instead of in·out. It is fully differentiable, so a
// compressed model can be fine-tuned after the swap.
type FactorizedDense struct {
	In, Out, Rank int
	A             *tensor.Matrix // in×r
	B             *tensor.Matrix // r×out
	Bias          []float32
	GradA, GradB  *tensor.Matrix
	GradBias      []float32

	xSaved, xaSaved *tensor.Matrix
}

// newFactorizedDense converts the column-operator factors M = P·Q
// (out×in) into the row-vector form A = Qᵀ, B = Pᵀ, keeping the bias.
func newFactorizedDense(d *Dense, f *factorize.LowRankFactors) *FactorizedDense {
	fd := &FactorizedDense{In: d.In, Out: d.Out, Rank: f.Rank(),
		A: f.Q.Transpose(), B: f.P.Transpose(),
		Bias: append([]float32(nil), d.Bias...)}
	fd.GradA = tensor.New(fd.In, fd.Rank)
	fd.GradB = tensor.New(fd.Rank, fd.Out)
	fd.GradBias = make([]float32, fd.Out)
	return fd
}

// Name implements Layer.
func (f *FactorizedDense) Name() string {
	return fmt.Sprintf("lowrank-dense(%dx%d r=%d)", f.In, f.Out, f.Rank)
}

// ParamCount implements Layer.
func (f *FactorizedDense) ParamCount() int { return f.Rank*(f.In+f.Out) + f.Out }

// Forward implements Layer.
func (f *FactorizedDense) Forward(x *tensor.Matrix) *tensor.Matrix {
	f.xSaved = x
	f.xaSaved = tensor.MatMulParallel(x, f.A)
	out := tensor.MatMulParallel(f.xaSaved, f.B)
	tensor.AddRowVector(out, f.Bias)
	return out
}

// Infer implements Layer: Forward without retaining state.
func (f *FactorizedDense) Infer(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != f.In {
		panic(fmt.Sprintf("nn: factorized dense input width %d != %d", x.Cols, f.In))
	}
	out := tensor.MatMulParallel(tensor.MatMulParallel(x, f.A), f.B)
	tensor.AddRowVector(out, f.Bias)
	return out
}

// Backward implements Layer.
func (f *FactorizedDense) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if f.xSaved == nil {
		panic("nn: factorized dense Backward before Forward")
	}
	for j, v := range tensor.ColSums(dY) {
		f.GradBias[j] += v
	}
	tensor.AddInPlace(f.GradB, tensor.MatMulParallel(f.xaSaved.Transpose(), dY))
	dXa := tensor.MatMulParallel(dY, f.B.Transpose())
	tensor.AddInPlace(f.GradA, tensor.MatMulParallel(f.xSaved.Transpose(), dXa))
	return tensor.MatMulParallel(dXa, f.A.Transpose())
}

// Params implements Layer.
func (f *FactorizedDense) Params() (params, grads [][]float32) {
	return [][]float32{f.A.Data, f.B.Data, f.Bias},
		[][]float32{f.GradA.Data, f.GradB.Data, f.GradBias}
}

// ZeroGrad implements Layer.
func (f *FactorizedDense) ZeroGrad() {
	f.GradA.Zero()
	f.GradB.Zero()
	for i := range f.GradBias {
		f.GradBias[i] = 0
	}
}

// Flops reports via the shared low-rank formula plus the bias adds.
func (f *FactorizedDense) Flops(batch int) float64 {
	return baselines.LowRankFlops(f.In, f.Out, f.Rank, batch) + float64(f.Out)*float64(batch)
}
