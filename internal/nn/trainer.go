package nn

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// TrainConfig drives Train. Defaults follow Table 3.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	Momentum  float32
	Seed      int64
	// EvalEvery controls validation cadence in epochs (0 = every epoch).
	EvalEvery int
}

// PaperTrainConfig returns Table 3 settings with the given epoch budget.
func PaperTrainConfig(epochs int) TrainConfig {
	h := PaperHyperparams()
	return TrainConfig{Epochs: epochs, BatchSize: h.BatchSize,
		LR: h.LearningRate, Momentum: h.Momentum, Seed: 1}
}

// TrainResult summarizes a training run.
type TrainResult struct {
	TrainLoss    []float64 // per epoch
	ValAccuracy  []float64 // per evaluation
	TestAccuracy float64
	Steps        int // total optimizer steps
	Samples      int // total samples processed
}

// Train runs minibatch SGD on the split and reports accuracies.
func Train(model *Sequential, ds *dataset.Split, cfg TrainConfig) TrainResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewSGD(model, cfg.LR, cfg.Momentum)
	res := TrainResult{}
	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		batches := dataset.Batches(ds.XTrain.Rows, cfg.BatchSize, rng)
		for _, idx := range batches {
			x, y := dataset.Gather(ds.XTrain, ds.YTrain, idx)
			model.ZeroGrad()
			logits := model.Forward(x)
			loss, dLogits := SoftmaxCrossEntropy(logits, y)
			model.Backward(dLogits)
			opt.Step()
			epochLoss += loss * float64(len(idx))
			res.Steps++
			res.Samples += len(idx)
		}
		res.TrainLoss = append(res.TrainLoss, epochLoss/float64(ds.XTrain.Rows))
		if (epoch+1)%evalEvery == 0 {
			res.ValAccuracy = append(res.ValAccuracy, Evaluate(model, ds.XVal, ds.YVal))
		}
	}
	res.TestAccuracy = Evaluate(model, ds.XTest, ds.YTest)
	return res
}

// Evaluate computes accuracy over a sample matrix in chunks (keeps
// activation memory bounded for large eval sets).
func Evaluate(model *Sequential, x *tensor.Matrix, y []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	const chunk = 200
	correct := 0.0
	for lo := 0; lo < x.Rows; lo += chunk {
		hi := lo + chunk
		if hi > x.Rows {
			hi = x.Rows
		}
		sub := tensor.FromSlice(hi-lo, x.Cols, x.Data[lo*x.Cols:hi*x.Cols])
		logits := model.Forward(sub)
		correct += Accuracy(logits, y[lo:hi]) * float64(hi-lo)
	}
	return correct / float64(x.Rows)
}
