package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/pixelfly"
	"repro/internal/tensor"
)

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a model from layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers.
func (s *Sequential) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Infer runs all layers through their read-only inference path. Unlike
// Forward it mutates no layer state, so concurrent goroutines can share
// one model's weights — the contract the serving subsystem relies on.
// It must not run concurrently with training on the same model.
func (s *Sequential) Infer(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Infer(x)
	}
	return x
}

// Backward runs all layers in reverse.
func (s *Sequential) Backward(dY *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dY = s.Layers[i].Backward(dY)
	}
	return dY
}

// Params collects all (param, grad) pairs.
func (s *Sequential) Params() (params, grads [][]float32) {
	for _, l := range s.Layers {
		p, g := l.Params()
		params = append(params, p...)
		grads = append(grads, g...)
	}
	return params, grads
}

// ZeroGrad clears all gradients.
func (s *Sequential) ZeroGrad() {
	for _, l := range s.Layers {
		l.ZeroGrad()
	}
}

// ParamCount sums all layers — the NParams column of Table 4.
func (s *Sequential) ParamCount() int {
	total := 0
	for _, l := range s.Layers {
		total += l.ParamCount()
	}
	return total
}

// Refresh lets layers re-derive state after an optimizer step.
func (s *Sequential) Refresh() {
	for _, l := range s.Layers {
		if r, ok := l.(refresher); ok {
			r.Refresh()
		}
	}
}

// Method identifies a Table 4 row.
type Method int

const (
	// Baseline is the uncompressed dense SHL.
	Baseline Method = iota
	// Butterfly uses the rotation-parameterized butterfly factorization.
	Butterfly
	// Fastfood uses S·H·G·Π·H·B.
	Fastfood
	// Circulant uses an FFT circular-convolution weight.
	Circulant
	// LowRank uses a rank-1 factorization.
	LowRank
	// Pixelfly uses the flat block butterfly + low-rank layer.
	Pixelfly
)

// AllMethods lists the Table 4 rows in paper order.
var AllMethods = []Method{Baseline, Butterfly, Fastfood, Circulant, LowRank, Pixelfly}

func (m Method) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case Butterfly:
		return "Butterfly"
	case Fastfood:
		return "Fastfood"
	case Circulant:
		return "Circulant"
	case LowRank:
		return "Low-rank"
	case Pixelfly:
		return "Pixelfly"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SHLHyperparams mirrors Table 3.
type SHLHyperparams struct {
	LearningRate float32
	Momentum     float32
	BatchSize    int
	ValFraction  float64
	Activation   string
	Loss         string
	Optimizer    string
}

// PaperHyperparams returns Table 3's values.
func PaperHyperparams() SHLHyperparams {
	return SHLHyperparams{
		LearningRate: 0.001, Momentum: 0.9, BatchSize: 50,
		ValFraction: 0.15, Activation: "ReLU", Loss: "Cross-Entropy",
		Optimizer: "SGD",
	}
}

// PaperPixelflyConfig is the pixelfly configuration whose SHL total is
// exactly Table 4's 404,490 parameters: blocks 64, butterfly network 16,
// low-rank 32 on the 1024-wide layer
// (80 blocks · 64² + 2·1024·32 = 393,216 structured parameters).
func PaperPixelflyConfig(n int) pixelfly.Config {
	return pixelfly.Config{N: n, BlockSize: 64, ButterflySize: 16, LowRank: 32}
}

// BuildSHL constructs the single-hidden-layer model of Table 4 for the
// given method: hidden = ReLU(W₁·x + b₁), logits = W₂·hidden + b₂, where
// W₁ (n×n) is the method's structured matrix and W₂ is always dense n×10.
func BuildSHL(method Method, n, classes int, rng *rand.Rand) *Sequential {
	var first Layer
	switch method {
	case Baseline:
		first = NewDense(n, n, rng)
	case Butterfly:
		first = NewStructuredLinear("butterfly", n, butterfly.New(n, butterfly.Rotation, rng))
	case Fastfood:
		first = NewStructuredLinear("fastfood", n, baselines.NewFastfood(n, rng))
	case Circulant:
		first = NewStructuredLinear("circulant", n, baselines.NewCirculant(n, rng))
	case LowRank:
		first = NewStructuredLinear("lowrank", n, baselines.NewLowRank(n, 1, rng))
	case Pixelfly:
		p, err := pixelfly.New(PaperPixelflyConfig(n), rng)
		if err != nil {
			panic(err)
		}
		first = NewStructuredLinear("pixelfly", n, p)
	default:
		panic(fmt.Sprintf("nn: unknown method %v", method))
	}
	return NewSequential(first, NewReLU(), NewDense(n, classes, rng))
}

// BuildSHLPixelfly builds the SHL with an explicit pixelfly configuration
// (Table 5's sweep).
func BuildSHLPixelfly(cfg pixelfly.Config, classes int, rng *rand.Rand) (*Sequential, error) {
	p, err := pixelfly.New(cfg, rng)
	if err != nil {
		return nil, err
	}
	return NewSequential(
		NewStructuredLinear("pixelfly", cfg.N, p),
		NewReLU(),
		NewDense(cfg.N, classes, rng),
	), nil
}
