package nn

import (
	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/obs"
	"repro/internal/pixelfly"
)

// kernelOfLayer classifies the layer by the Into-kernel family its lowered
// step actually executes — the attribution key of the per-kernel
// performance accounting. Dense runs the dense matmul kernels;
// FactorizedDense runs the two low-rank projection matmuls; a
// StructuredLinear is classified by its transform (butterfly factor
// sweeps, FWHT, FFT circular convolution, block-sparse-row, or the
// low-rank baseline). Everything else — standalone activations and the
// generic Infer-and-copy fallback — lands in KernelOther.
func kernelOfLayer(l Layer) obs.Kernel {
	switch t := l.(type) {
	case *Dense:
		return obs.KernelMatMul
	case *FactorizedDense:
		return obs.KernelLowRank
	case *StructuredLinear:
		switch t.T.(type) {
		case *butterfly.Butterfly:
			return obs.KernelButterfly
		case *baselines.Fastfood:
			return obs.KernelFWHT
		case *baselines.Circulant:
			return obs.KernelFFT
		case *pixelfly.Pixelfly:
			return obs.KernelBSR
		case *baselines.LowRank:
			return obs.KernelLowRank
		default:
			return obs.KernelOther
		}
	default:
		return obs.KernelOther
	}
}

// flopser is the per-sample work surface compute-bearing layers expose;
// activations and the generic fallback don't implement it.
type flopser interface {
	Flops(batch int) float64
}

// layerFlopsPerRow returns the layer's per-sample flop count (all the
// repo's Flops formulas are batch-linear, so batch=1 is the per-row
// figure), or 0 for layers without a flop model.
func layerFlopsPerRow(l Layer) int64 {
	if f, ok := l.(flopser); ok {
		return int64(f.Flops(1))
	}
	return 0
}
