package butterfly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hadamard"
	"repro/internal/tensor"
)

func TestParamCountMatchesPaperScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Rotation parameterization at N=1024: (N/2)·log2 N = 5120 structured
	// params; with the SHL's bias(1024)+W2(10240)+bias(10) this gives
	// 16,394 ≈ the paper's 16,390 (98.5% compression).
	b := New(1024, Rotation, rng)
	if got := b.ParamCount(); got != 5120 {
		t.Fatalf("rotation ParamCount = %d, want 5120", got)
	}
	b2 := New(1024, Dense2x2, rng)
	if got := b2.ParamCount(); got != 20480 {
		t.Fatalf("dense2x2 ParamCount = %d, want 20480", got)
	}
}

func TestNewPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(12) did not panic")
		}
	}()
	New(12, Dense2x2, rand.New(rand.NewSource(1)))
}

func TestIdentityButterflyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, param := range []Parameterization{Dense2x2, Rotation} {
		b := NewIdentity(16, param)
		x := tensor.New(3, 16)
		x.FillRandom(rng, 1)
		y := b.Apply(x)
		if !tensor.AlmostEqual(x, y, 1e-6) {
			t.Fatalf("%v identity butterfly changed input: %v", param, tensor.MaxAbsDiff(x, y))
		}
	}
}

func TestHadamardButterflyMatchesFWHT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 8, 32, 128} {
		b := NewHadamard(n)
		x := tensor.New(2, n)
		x.FillRandom(rng, 1)
		y := b.Apply(x)
		for r := 0; r < x.Rows; r++ {
			want := append([]float32(nil), x.Row(r)...)
			hadamard.Transform(want)
			got := y.Row(r)
			for i := range want {
				if math.Abs(float64(got[i]-want[i])) > 1e-3 {
					t.Fatalf("n=%d row %d: butterfly=%v fwht=%v", n, r, got[i], want[i])
				}
			}
		}
	}
}

func TestPairEnumeration(t *testing.T) {
	b := NewIdentity(8, Dense2x2)
	// stage 1: stride 1 pairs (0,1),(2,3),(4,5),(6,7)
	f := b.Factors[0]
	wantTop := []int{0, 2, 4, 6}
	for p, wt := range wantTop {
		top, bot := f.Pair(p)
		if top != wt || bot != wt+1 {
			t.Fatalf("stage1 pair %d = (%d,%d), want (%d,%d)", p, top, bot, wt, wt+1)
		}
	}
	// stage 3: stride 4 pairs (0,4),(1,5),(2,6),(3,7)
	f = b.Factors[2]
	for p := 0; p < 4; p++ {
		top, bot := f.Pair(p)
		if top != p || bot != p+4 {
			t.Fatalf("stage3 pair %d = (%d,%d), want (%d,%d)", p, top, bot, p, p+4)
		}
	}
}

func TestDenseMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, param := range []Parameterization{Dense2x2, Rotation} {
		b := New(32, param, rng)
		T := b.Dense()
		x := tensor.New(5, 32)
		x.FillRandom(rng, 1)
		// Apply computes y_row = T·x_row, i.e. Y = X·Tᵀ
		want := tensor.MatMul(x, T.Transpose())
		got := b.Apply(x)
		if !tensor.AlmostEqual(want, got, 1e-3) {
			t.Fatalf("%v: Dense() disagrees with Apply: %v", param, tensor.MaxAbsDiff(want, got))
		}
	}
}

func TestSparseFactorsReproduceDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := New(16, Dense2x2, rng)
	factors, perm := b.SparseFactors()
	// Build dense product: T = B_log···B_1·P
	n := b.N
	P := tensor.New(n, n)
	for i, p := range perm {
		P.Set(i, p, 1)
	}
	prod := P
	for _, f := range factors {
		prod = tensor.MatMul(f.ToDense(), prod)
	}
	if !tensor.AlmostEqual(prod, b.Dense(), 1e-4) {
		t.Fatalf("sparse factor product != Dense: %v", tensor.MaxAbsDiff(prod, b.Dense()))
	}
	// each factor: 2 nonzeros per row
	for s, f := range factors {
		if f.NNZ() != 2*n {
			t.Fatalf("stage %d NNZ = %d, want %d", s+1, f.NNZ(), 2*n)
		}
	}
}

func TestRotationButterflyIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := New(64, Rotation, rng)
	T := b.Dense()
	shouldBeI := tensor.MatMul(T, T.Transpose())
	if !tensor.AlmostEqual(shouldBeI, tensor.Identity(64), 1e-3) {
		t.Fatalf("rotation butterfly not orthogonal: %v",
			tensor.MaxAbsDiff(shouldBeI, tensor.Identity(64)))
	}
}

func TestForwardBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New(16, Dense2x2, rng)
	x := tensor.New(4, 16)
	x.FillRandom(rng, 1)
	y := b.Forward(x)
	if y.Rows != 4 || y.Cols != 16 {
		t.Fatalf("forward shape %dx%d", y.Rows, y.Cols)
	}
	dx := b.Backward(y)
	if dx.Rows != 4 || dx.Cols != 16 {
		t.Fatalf("backward shape %dx%d", dx.Rows, dx.Cols)
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	b := NewIdentity(8, Dense2x2)
	b.Backward(tensor.New(1, 8))
}

// Numerical gradient check for the input gradient.
func TestInputGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, param := range []Parameterization{Dense2x2, Rotation} {
		b := New(8, param, rng)
		x := tensor.New(2, 8)
		x.FillRandom(rng, 1)
		r := tensor.New(2, 8)
		r.FillRandom(rng, 1)
		loss := func(xm *tensor.Matrix) float64 {
			y := b.Apply(xm)
			var s float64
			for i := range y.Data {
				s += float64(y.Data[i]) * float64(r.Data[i])
			}
			return s
		}
		b.ZeroGrad()
		b.Forward(x)
		dx := b.Backward(r)
		const h = 1e-3
		for i := 0; i < len(x.Data); i += 3 {
			orig := x.Data[i]
			x.Data[i] = orig + h
			up := loss(x)
			x.Data[i] = orig - h
			dn := loss(x)
			x.Data[i] = orig
			num := (up - dn) / (2 * h)
			if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
				t.Fatalf("%v: input grad[%d] analytic %v numeric %v", param, i, dx.Data[i], num)
			}
		}
	}
}

// Numerical gradient check for the weight gradients (both
// parameterizations).
func TestWeightGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, param := range []Parameterization{Dense2x2, Rotation} {
		b := New(8, param, rng)
		x := tensor.New(3, 8)
		x.FillRandom(rng, 1)
		r := tensor.New(3, 8)
		r.FillRandom(rng, 1)
		loss := func() float64 {
			y := b.Apply(x)
			var s float64
			for i := range y.Data {
				s += float64(y.Data[i]) * float64(r.Data[i])
			}
			return s
		}
		b.ZeroGrad()
		b.Forward(x)
		b.Backward(r)
		params, grads := b.Params()
		const h = 1e-3
		for pi, pslice := range params {
			for j := 0; j < len(pslice); j += 2 {
				orig := pslice[j]
				pslice[j] = orig + h
				b.Refresh()
				up := loss()
				pslice[j] = orig - h
				b.Refresh()
				dn := loss()
				pslice[j] = orig
				b.Refresh()
				num := (up - dn) / (2 * h)
				got := float64(grads[pi][j])
				if math.Abs(num-got) > 2e-2*(1+math.Abs(num)) {
					t.Fatalf("%v: weight grad[%d][%d] analytic %v numeric %v", param, pi, j, got, num)
				}
			}
		}
	}
}

func TestZeroGradClears(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := New(8, Dense2x2, rng)
	x := tensor.New(2, 8)
	x.FillRandom(rng, 1)
	b.Forward(x)
	b.Backward(x)
	b.ZeroGrad()
	_, grads := b.Params()
	for _, g := range grads {
		for _, v := range g {
			if v != 0 {
				t.Fatal("ZeroGrad left nonzero gradient")
			}
		}
	}
}

func TestFlopsFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(16, Dense2x2, rng)
	// 6 flops · N/2 pairs · log2 N stages · batch
	want := 6.0 * 8 * 4 * 10
	if got := b.Flops(10); got != want {
		t.Fatalf("Flops = %v, want %v", got, want)
	}
}

// Property: Apply is linear in its input.
func TestApplyLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := New(16, Dense2x2, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(2, 16)
		y := tensor.New(2, 16)
		x.FillRandom(r, 1)
		y.FillRandom(r, 1)
		sum := tensor.Add(x, y)
		left := b.Apply(sum)
		right := tensor.Add(b.Apply(x), b.Apply(y))
		return tensor.AlmostEqual(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: rotation butterflies preserve the L2 norm of every row
// (orthogonality seen through random vectors).
func TestRotationNormPreservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := New(32, Rotation, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.New(1, 32)
		x.FillRandom(r, 1)
		y := b.Apply(x)
		nx := x.FrobeniusNorm()
		ny := y.FrobeniusNorm()
		return math.Abs(nx-ny) < 1e-3*(1+nx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkButterflyForward1024(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	bf := New(1024, Dense2x2, rng)
	x := tensor.New(50, 1024)
	x.FillRandom(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Apply(x)
	}
}

func BenchmarkButterflyApply(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bf := New(1024, Rotation, rng)
	x := tensor.New(32, 1024)
	x.FillRandom(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Apply(x)
	}
}

func BenchmarkButterflyApplyInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bf := New(1024, Rotation, rng)
	x := tensor.New(32, 1024)
	x.FillRandom(rng, 1)
	dst := tensor.New(32, 1024)
	ws := tensor.NewWorkspace()
	bf.ApplyInto(dst, x, ws)
	ws.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		bf.ApplyInto(dst, x, ws)
	}
}
