// Package butterfly implements the paper's central object: the butterfly
// factorization of Dao et al. (ICML'19), T = B_logN · … · B_1 · P, where
// each factor B_s is block-diagonal with 2×2 blocks pairing indices at
// stride 2^(s-1) and P is a fixed permutation. A butterfly factorization
// stores O(N log N) parameters and multiplies a vector in O(N log N)
// operations — the replacement for the O(N²) dense layer that the paper
// ports to the IPU.
//
// Two parameterizations are provided:
//
//   - Dense2x2: every 2×2 block holds four free parameters
//     (2·N·log2 N parameters total).
//   - Rotation: every block is a Givens rotation with one learnable angle
//     ((N/2)·log2 N parameters total) — this is the variant whose SHL
//     parameter count (16,394) reproduces the paper's 98.5% compression
//     (paper: 16,390).
package butterfly

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// Parameterization selects how the 2×2 blocks are parameterized.
type Parameterization int

const (
	// Dense2x2 stores four free coefficients per block.
	Dense2x2 Parameterization = iota
	// Rotation stores one angle per block; the block is the Givens
	// rotation [cos θ, sin θ; −sin θ, cos θ].
	Rotation
)

func (p Parameterization) String() string {
	switch p {
	case Dense2x2:
		return "dense2x2"
	case Rotation:
		return "rotation"
	default:
		return fmt.Sprintf("Parameterization(%d)", int(p))
	}
}

// Factor is one butterfly factor B_s. Pairs are enumerated 0..N/2-1; pair p
// in stage s couples indices top(p) and top(p)+2^(s-1).
type Factor struct {
	N     int
	Stage int // 1-based; pairing stride is 2^(Stage-1)

	// Dense2x2 coefficients (always materialized; for Rotation they are
	// derived from Theta and refreshed by syncRotation).
	A, B, C, D []float32

	// Rotation parameterization state (nil for Dense2x2).
	Theta []float32

	// Gradients, same shapes as the corresponding parameters.
	GradA, GradB, GradC, GradD []float32
	GradTheta                  []float32
}

// Pair returns the (top, bottom) indices coupled by pair p.
func (f *Factor) Pair(p int) (int, int) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	blockIdx := p / half
	k := p % half
	top := blockIdx*block + k
	return top, top + half
}

// NumPairs returns N/2.
func (f *Factor) NumPairs() int { return f.N / 2 }

// Butterfly is a full factorization T = B_logN · … · B_1 · P.
type Butterfly struct {
	N       int
	Param   Parameterization
	Factors []*Factor // Factors[s-1] is stage s; applied in increasing order
	Perm    []int     // input permutation; nil means identity

	// saved stage inputs from the last Forward, for Backward
	stageInputs []*tensor.Matrix
	permInput   *tensor.Matrix
}

// New creates a random butterfly of size n (a power of two) with the given
// parameterization and the bit-reversal input permutation (matching the
// FFT-inspired construction of the paper's Eq. 2). Blocks are initialized
// near rotations so the factor product is approximately orthogonal, which
// keeps deep products well conditioned for training.
func New(n int, param Parameterization, rng *rand.Rand) *Butterfly {
	b := newEmpty(n, param)
	b.Perm = fft.BitReverse(n)
	for _, f := range b.Factors {
		for p := 0; p < f.NumPairs(); p++ {
			theta := (rng.Float64()*2 - 1) * math.Pi
			c, s := float32(math.Cos(theta)), float32(math.Sin(theta))
			switch param {
			case Rotation:
				f.Theta[p] = float32(theta)
			case Dense2x2:
				// rotation plus small perturbation
				eps := func() float32 { return (rng.Float32()*2 - 1) * 0.05 }
				f.A[p] = c + eps()
				f.B[p] = s + eps()
				f.C[p] = -s + eps()
				f.D[p] = c + eps()
			}
		}
		if param == Rotation {
			f.syncRotation()
		}
	}
	return b
}

// NewIdentity creates a butterfly initialized to the identity transform
// (each block is I, identity permutation). Used by the flat-butterfly
// residual construction of pixelfly.
func NewIdentity(n int, param Parameterization) *Butterfly {
	b := newEmpty(n, param)
	for _, f := range b.Factors {
		for p := 0; p < f.NumPairs(); p++ {
			switch param {
			case Rotation:
				f.Theta[p] = 0
			case Dense2x2:
				f.A[p], f.D[p] = 1, 1
			}
		}
		if param == Rotation {
			f.syncRotation()
		}
	}
	return b
}

// NewHadamard creates the fixed Dense2x2 butterfly whose product is the
// unnormalized Walsh–Hadamard transform: every block is [1 1; 1 -1] and
// the permutation is identity. It is the real-valued analogue of the FFT
// special case (paper Eq. 1) and serves as a correctness oracle.
func NewHadamard(n int) *Butterfly {
	b := newEmpty(n, Dense2x2)
	for _, f := range b.Factors {
		for p := 0; p < f.NumPairs(); p++ {
			f.A[p], f.B[p] = 1, 1
			f.C[p], f.D[p] = 1, -1
		}
	}
	return b
}

func newEmpty(n int, param Parameterization) *Butterfly {
	if !fft.IsPowerOfTwo(n) {
		panic(fmt.Sprintf("butterfly: size %d is not a power of two", n))
	}
	stages := fft.Log2(n)
	b := &Butterfly{N: n, Param: param, Factors: make([]*Factor, stages)}
	for s := 1; s <= stages; s++ {
		f := &Factor{N: n, Stage: s,
			A: make([]float32, n/2), B: make([]float32, n/2),
			C: make([]float32, n/2), D: make([]float32, n/2),
			GradA: make([]float32, n/2), GradB: make([]float32, n/2),
			GradC: make([]float32, n/2), GradD: make([]float32, n/2),
		}
		if param == Rotation {
			f.Theta = make([]float32, n/2)
			f.GradTheta = make([]float32, n/2)
		}
		b.Factors[s-1] = f
	}
	return b
}

// syncRotation refreshes the dense coefficients from Theta.
func (f *Factor) syncRotation() {
	for p := range f.Theta {
		c := float32(math.Cos(float64(f.Theta[p])))
		s := float32(math.Sin(float64(f.Theta[p])))
		f.A[p], f.B[p], f.C[p], f.D[p] = c, s, -s, c
	}
}

// ParamCount returns the number of learnable parameters.
func (b *Butterfly) ParamCount() int {
	logN := fft.Log2(b.N)
	switch b.Param {
	case Rotation:
		return b.N / 2 * logN
	default:
		return 2 * b.N * logN
	}
}

// Flops returns the floating-point operations of a Forward over a batch of
// the given size: 6 flops per pair per stage per sample (4 mul + 2 add).
func (b *Butterfly) Flops(batch int) float64 {
	return 6 * float64(b.N/2) * float64(len(b.Factors)) * float64(batch)
}

// applyPermRows returns x with columns permuted so row vectors are
// reordered by Perm: out[r][i] = x[r][Perm[i]].
func (b *Butterfly) applyPermRows(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	b.applyPermRowsInto(out, x)
	return out
}

// applyPermRowsInto is applyPermRows into caller-owned out (which must not
// alias x); a nil Perm degenerates to a copy.
func (b *Butterfly) applyPermRowsInto(out, x *tensor.Matrix) {
	if b.Perm == nil {
		copy(out.Data, x.Data)
		return
	}
	for r := 0; r < x.Rows; r++ {
		src := x.Row(r)
		dst := out.Row(r)
		for i, p := range b.Perm {
			dst[i] = src[p]
		}
	}
}

// Forward applies the butterfly to each row of x (batch × N), returning
// batch × N. Stage inputs are retained for Backward.
func (b *Butterfly) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != b.N {
		panic(fmt.Sprintf("butterfly: input width %d != N %d", x.Cols, b.N))
	}
	b.permInput = x
	cur := b.applyPermRows(x)
	b.stageInputs = b.stageInputs[:0]
	for _, f := range b.Factors {
		b.stageInputs = append(b.stageInputs, cur)
		next := tensor.New(cur.Rows, cur.Cols)
		applyFactorRows(f, cur, next)
		cur = next
	}
	return cur
}

// Apply is Forward without retaining state (inference path).
func (b *Butterfly) Apply(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != b.N {
		panic(fmt.Sprintf("butterfly: input width %d != N %d", x.Cols, b.N))
	}
	cur := b.applyPermRows(x)
	for _, f := range b.Factors {
		next := tensor.New(cur.Rows, cur.Cols)
		applyFactorRows(f, cur, next)
		cur = next
	}
	return cur
}

// ApplyInto is Apply writing into caller-owned dst (shape x.Rows×N, fully
// overwritten), ping-ponging the stage sweep between dst and one workspace
// scratch buffer instead of allocating a fresh matrix per factor. The
// arithmetic per stage is identical to Apply, so the result is bit-for-bit
// equal. dst must not alias x. It is the nil-epilogue form of
// ApplyIntoEpilogue — one implementation, one contract.
func (b *Butterfly) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	b.ApplyIntoEpilogue(dst, x, ws, nil, tensor.ActNone)
}

// ApplyIntoEpilogue is ApplyInto with the fused tail of a linear layer —
// bias add then activation — folded into the final factor stage, so each
// output element is written exactly once already finished instead of being
// reswept by two more arena passes. The linear value entering the epilogue
// is produced by exactly ApplyInto's arithmetic, and act(v + bias) is the
// same float32 chain as separate sweeps, so the result is bit-for-bit
// act(ApplyInto(x) + bias). bias may be nil; a factorless butterfly (N=1)
// degenerates to the permutation plus a post-sweep.
func (b *Butterfly) ApplyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	b.applyIntoEpilogue(dst, x, ws, bias, act, false)
}

// applyIntoEpilogue is the shared ping-pong driver behind the reference
// and micro-kernel entry points; micro selects the unrolled sweeps
// (bit-for-bit equal, see micro.go).
func (b *Butterfly) applyIntoEpilogue(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation, micro bool) {
	if x.Cols != b.N {
		panic(fmt.Sprintf("butterfly: input width %d != N %d", x.Cols, b.N))
	}
	if dst.Rows != x.Rows || dst.Cols != b.N {
		panic(fmt.Sprintf("butterfly: ApplyIntoEpilogue dst %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, b.N))
	}
	if bias != nil && len(bias) != b.N {
		panic(fmt.Sprintf("butterfly: ApplyIntoEpilogue bias length %d != N %d", len(bias), b.N))
	}
	if len(b.Factors) == 0 {
		b.applyPermRowsInto(dst, x)
		tensor.ApplyBiasActInto(dst, dst, bias, act)
		return
	}
	tmp := ws.Take(x.Rows, b.N)
	// Buffers alternate permOut → stage1 → … → stageS; pick the first so
	// the final stage lands exactly in dst.
	cur, other := dst, tmp
	if len(b.Factors)%2 == 1 {
		cur, other = tmp, dst
	}
	b.applyPermRowsInto(cur, x)
	for _, f := range b.Factors[:len(b.Factors)-1] {
		if micro {
			applyFactorRowsMicro(f, cur, other)
		} else {
			applyFactorRows(f, cur, other)
		}
		cur, other = other, cur
	}
	last := b.Factors[len(b.Factors)-1]
	if micro {
		applyFactorRowsEpilogueMicro(last, cur, other, bias, act)
	} else {
		applyFactorRowsEpilogue(last, cur, other, bias, act)
	}
}

func applyFactorRows(f *Factor, in, out *tensor.Matrix) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	n := f.N
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for start := 0; start < n; start += block {
			for k := 0; k < half; k++ {
				top := start + k
				bot := top + half
				xt, xb := src[top], src[bot]
				dst[top] = f.A[p]*xt + f.B[p]*xb
				dst[bot] = f.C[p]*xt + f.D[p]*xb
				p++
			}
		}
	}
}

// applyFactorRowsEpilogue is applyFactorRows for the final stage of a
// fused layer: each pair's two outputs get the bias added and the
// activation applied the moment they are computed. bias may be nil.
func applyFactorRowsEpilogue(f *Factor, in, out *tensor.Matrix, bias []float32, act tensor.Activation) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	n := f.N
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for start := 0; start < n; start += block {
			for k := 0; k < half; k++ {
				top := start + k
				bot := top + half
				xt, xb := src[top], src[bot]
				vt := f.A[p]*xt + f.B[p]*xb
				vb := f.C[p]*xt + f.D[p]*xb
				if bias != nil {
					vt += bias[top]
					vb += bias[bot]
				}
				dst[top] = act.Apply(vt)
				dst[bot] = act.Apply(vb)
				p++
			}
		}
	}
}

// Backward propagates dY (batch × N) through the butterfly, accumulating
// parameter gradients (into GradA..GradD / GradTheta) and returning dX.
// Forward must have been called first.
func (b *Butterfly) Backward(dY *tensor.Matrix) *tensor.Matrix {
	if len(b.stageInputs) != len(b.Factors) {
		panic("butterfly: Backward called before Forward")
	}
	cur := dY
	for s := len(b.Factors) - 1; s >= 0; s-- {
		f := b.Factors[s]
		in := b.stageInputs[s]
		next := tensor.New(cur.Rows, cur.Cols)
		backwardFactorRows(f, in, cur, next)
		if b.Param == Rotation {
			foldRotationGrads(f)
		}
		cur = next
	}
	// backward through the permutation: forward had dst[i] = src[Perm[i]],
	// so grad wrt src[Perm[i]] += dcur[i].
	if b.Perm == nil {
		return cur
	}
	out := tensor.New(cur.Rows, cur.Cols)
	for r := 0; r < cur.Rows; r++ {
		src := cur.Row(r)
		dst := out.Row(r)
		for i, p := range b.Perm {
			dst[p] += src[i]
		}
	}
	return out
}

func backwardFactorRows(f *Factor, in, dOut, dIn *tensor.Matrix) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	n := f.N
	for r := 0; r < in.Rows; r++ {
		x := in.Row(r)
		dy := dOut.Row(r)
		dx := dIn.Row(r)
		p := 0
		for start := 0; start < n; start += block {
			for k := 0; k < half; k++ {
				top := start + k
				bot := top + half
				xt, xb := x[top], x[bot]
				gt, gb := dy[top], dy[bot]
				// dX = Bᵀ·dY per pair
				dx[top] = f.A[p]*gt + f.C[p]*gb
				dx[bot] = f.B[p]*gt + f.D[p]*gb
				// weight grads
				f.GradA[p] += gt * xt
				f.GradB[p] += gt * xb
				f.GradC[p] += gb * xt
				f.GradD[p] += gb * xb
				p++
			}
		}
	}
}

// foldRotationGrads converts the accumulated dense-coefficient gradients
// into angle gradients: with a=cosθ, b=sinθ, c=−sinθ, d=cosθ,
// dL/dθ = −sinθ·(dA+dD) + cosθ·dB − cosθ·dC ... specifically
// dL/dθ = dA·(−sin) + dB·(cos) + dC·(−cos) + dD·(−sin).
func foldRotationGrads(f *Factor) {
	for p := range f.Theta {
		c := float64(math.Cos(float64(f.Theta[p])))
		s := float64(math.Sin(float64(f.Theta[p])))
		g := -s*float64(f.GradA[p]) + c*float64(f.GradB[p]) - c*float64(f.GradC[p]) - s*float64(f.GradD[p])
		f.GradTheta[p] += float32(g)
		f.GradA[p], f.GradB[p], f.GradC[p], f.GradD[p] = 0, 0, 0, 0
	}
}

// ZeroGrad clears all accumulated gradients.
func (b *Butterfly) ZeroGrad() {
	for _, f := range b.Factors {
		for p := range f.GradA {
			f.GradA[p], f.GradB[p], f.GradC[p], f.GradD[p] = 0, 0, 0, 0
		}
		if f.GradTheta != nil {
			for p := range f.GradTheta {
				f.GradTheta[p] = 0
			}
		}
	}
}

// Params returns the flat learnable parameter slices (aliases, not copies)
// paired with their gradient slices, for consumption by an optimizer.
func (b *Butterfly) Params() (params, grads [][]float32) {
	for _, f := range b.Factors {
		if b.Param == Rotation {
			params = append(params, f.Theta)
			grads = append(grads, f.GradTheta)
		} else {
			params = append(params, f.A, f.B, f.C, f.D)
			grads = append(grads, f.GradA, f.GradB, f.GradC, f.GradD)
		}
	}
	return params, grads
}

// Refresh re-derives internal state after an optimizer step (needed for
// Rotation, where dense coefficients are derived from Theta).
func (b *Butterfly) Refresh() {
	if b.Param != Rotation {
		return
	}
	for _, f := range b.Factors {
		f.syncRotation()
	}
}

// Dense materializes the full N×N matrix T = B_logN···B_1·P by pushing the
// identity through the factorization. Used for verification and for
// computing the dense-equivalent workload of the machine models.
func (b *Butterfly) Dense() *tensor.Matrix {
	// Apply to identity rows: row r of the result of Apply(I) is T·e_r
	// laid out as rows, i.e. Apply(I) = Tᵀ read row-wise; transpose back.
	id := tensor.Identity(b.N)
	out := b.Apply(id)
	return out.Transpose()
}

// SparseFactors exports each factor as a CSR matrix (2 nonzeros per row),
// in application order. The permutation is returned separately.
func (b *Butterfly) SparseFactors() (factors []*sparse.CSR, perm []int) {
	for _, f := range b.Factors {
		coo := sparse.NewCOO(b.N, b.N)
		for p := 0; p < f.NumPairs(); p++ {
			top, bot := f.Pair(p)
			coo.Append(top, top, f.A[p])
			coo.Append(top, bot, f.B[p])
			coo.Append(bot, top, f.C[p])
			coo.Append(bot, bot, f.D[p])
		}
		factors = append(factors, coo.ToCSR())
	}
	return factors, b.Perm
}
