package butterfly

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestMicroSweepsMatchReference checks every specialized stage kernel
// against the reference pairs sweep, bit-for-bit, across sizes that put
// each stage through the half ∈ {1,2,4} unrolls and the wide path.
func TestMicroSweepsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 16, 32, 64, 256} {
		b := New(n, Dense2x2, rng)
		for rows := 1; rows <= 3; rows++ {
			x := tensor.New(rows, n)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			for _, f := range b.Factors {
				want := tensor.New(rows, n)
				got := tensor.New(rows, n)
				applyFactorRows(f, x, want)
				applyFactorRowsMicro(f, x, got)
				for i := range want.Data {
					if want.Data[i] != got.Data[i] {
						t.Fatalf("n=%d stage=%d rows=%d: data[%d] = %v, want %v",
							n, f.Stage, rows, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestApplyIntoMicroMatchesReference checks the full transform — perm,
// ping-pong, fused epilogue — through the micro sweeps, with and without
// bias/activation.
func TestApplyIntoMicroMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		b := New(n, Dense2x2, rng)
		ws := tensor.NewWorkspace()
		for rows := 1; rows <= 4; rows += 3 {
			x := tensor.New(rows, n)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			bias := make([]float32, n)
			for i := range bias {
				bias[i] = rng.Float32()*2 - 1
			}
			want := tensor.New(rows, n)
			got := tensor.New(rows, n)

			ws.Reset()
			b.ApplyInto(want, x, ws)
			ws.Reset()
			b.ApplyIntoMicro(got, x, ws)
			assertSame(t, n, rows, "ApplyIntoMicro", want, got)

			for _, act := range []tensor.Activation{tensor.ActNone, tensor.ActReLU} {
				ws.Reset()
				b.ApplyIntoEpilogue(want, x, ws, bias, act)
				ws.Reset()
				b.ApplyIntoEpilogueMicro(got, x, ws, bias, act)
				assertSame(t, n, rows, fmt.Sprintf("ApplyIntoEpilogueMicro/%v", act), want, got)

				ws.Reset()
				b.ApplyIntoEpilogue(want, x, ws, nil, act)
				ws.Reset()
				b.ApplyIntoEpilogueMicro(got, x, ws, nil, act)
				assertSame(t, n, rows, fmt.Sprintf("ApplyIntoEpilogueMicro/nilbias/%v", act), want, got)
			}
		}
	}
}

func assertSame(t *testing.T, n, rows int, op string, want, got *tensor.Matrix) {
	t.Helper()
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s n=%d rows=%d: data[%d] = %v, want %v", op, n, rows, i, got.Data[i], want.Data[i])
		}
	}
}

// BenchmarkApplyFactorRows compares the reference pairs sweep against
// the unrolled micro sweep across the full stage ladder at
// serving-realistic shapes.
func BenchmarkApplyFactorRows(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][2]int{{1, 256}, {16, 256}, {1, 1024}, {16, 1024}} {
		rows, n := sh[0], sh[1]
		bf := New(n, Dense2x2, rng)
		x := tensor.New(rows, n)
		for i := range x.Data {
			x.Data[i] = rng.Float32()*2 - 1
		}
		out := tensor.New(rows, n)
		// One "op" sweeps every stage once: the whole transform's work.
		flops := int64(rows) * int64(len(bf.Factors)) * int64(n) * 3
		b.Run(fmt.Sprintf("ref/b%dxn%d", rows, n), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				for _, f := range bf.Factors {
					applyFactorRows(f, x, out)
				}
			}
		})
		b.Run(fmt.Sprintf("unrolled/b%dxn%d", rows, n), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				for _, f := range bf.Factors {
					applyFactorRowsMicro(f, x, out)
				}
			}
		})
	}
}
