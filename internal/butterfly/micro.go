package butterfly

import (
	"repro/internal/tensor"
)

// Micro-kernel pairs sweeps: the same per-pair rank-one arithmetic as
// applyFactorRows/applyFactorRowsEpilogue, restructured so the Go
// compiler can eliminate bounds checks and keep the coefficient streams
// in registers. Early stages (half ∈ {1,2,4}) get fully unrolled blocks;
// wider stages hoist every slice header to a common length so the inner
// pair loop is check-free. Each output element is produced by the exact
// reference expression (A·xt + B·xb etc.), so results are bit-identical.

// ApplyIntoMicro is ApplyInto through the unrolled sweeps.
func (b *Butterfly) ApplyIntoMicro(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	b.applyIntoEpilogue(dst, x, ws, nil, tensor.ActNone, true)
}

// ApplyIntoEpilogueMicro is ApplyIntoEpilogue through the unrolled
// sweeps.
func (b *Butterfly) ApplyIntoEpilogueMicro(dst, x *tensor.Matrix, ws *tensor.Workspace, bias []float32, act tensor.Activation) {
	b.applyIntoEpilogue(dst, x, ws, bias, act, true)
}

// MicroVariant names the kernel variant the plan dispatcher stamps into
// step metadata when this transform compiles through the micro path.
func (b *Butterfly) MicroVariant() string { return "unrolled" }

// applyFactorRowsMicro dispatches one stage sweep to the specialized
// kernel for its pair distance.
func applyFactorRowsMicro(f *Factor, in, out *tensor.Matrix) {
	switch f.Stage {
	case 1:
		factorRowsHalf1(f, in, out)
	case 2:
		factorRowsHalf2(f, in, out)
	case 3:
		factorRowsHalf4(f, in, out)
	default:
		factorRowsWide(f, in, out)
	}
}

// applyFactorRowsEpilogueMicro is the fused-tail form. The final factor
// of a butterfly is its widest stage, so the wide kernel carries the
// inline epilogue; the rare narrow cases (N < 16) fall back to the
// reference epilogue sweep, which is bit-identical by construction.
func applyFactorRowsEpilogueMicro(f *Factor, in, out *tensor.Matrix, bias []float32, act tensor.Activation) {
	if f.Stage < 4 {
		applyFactorRowsEpilogue(f, in, out, bias, act)
		return
	}
	factorRowsWideEpilogue(f, in, out, bias, act)
}

// factorRowsHalf1 handles stage 1: adjacent pairs (2p, 2p+1).
func factorRowsHalf1(f *Factor, in, out *tensor.Matrix) {
	n := f.N
	pairs := n >> 1
	A := f.A[:pairs:pairs]
	B := f.B[:pairs:pairs]
	C := f.C[:pairs:pairs]
	D := f.D[:pairs:pairs]
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		for p := range A {
			j := p << 1
			sc := src[j : j+2 : j+2]
			dc := dst[j : j+2 : j+2]
			xt, xb := sc[0], sc[1]
			dc[0] = A[p]*xt + B[p]*xb
			dc[1] = C[p]*xt + D[p]*xb
		}
	}
}

// factorRowsHalf2 handles stage 2: blocks of 4 with pair distance 2.
func factorRowsHalf2(f *Factor, in, out *tensor.Matrix) {
	n := f.N
	pairs := n >> 1
	A := f.A[:pairs:pairs]
	B := f.B[:pairs:pairs]
	C := f.C[:pairs:pairs]
	D := f.D[:pairs:pairs]
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for s := 0; s+4 <= n; s += 4 {
			sc := src[s : s+4 : s+4]
			dc := dst[s : s+4 : s+4]
			ac := A[p : p+2 : p+2]
			bc := B[p : p+2 : p+2]
			cc := C[p : p+2 : p+2]
			ec := D[p : p+2 : p+2]
			x0, x1, x2, x3 := sc[0], sc[1], sc[2], sc[3]
			dc[0] = ac[0]*x0 + bc[0]*x2
			dc[2] = cc[0]*x0 + ec[0]*x2
			dc[1] = ac[1]*x1 + bc[1]*x3
			dc[3] = cc[1]*x1 + ec[1]*x3
			p += 2
		}
	}
}

// factorRowsHalf4 handles stage 3: blocks of 8 with pair distance 4.
func factorRowsHalf4(f *Factor, in, out *tensor.Matrix) {
	n := f.N
	pairs := n >> 1
	A := f.A[:pairs:pairs]
	B := f.B[:pairs:pairs]
	C := f.C[:pairs:pairs]
	D := f.D[:pairs:pairs]
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for s := 0; s+8 <= n; s += 8 {
			sc := src[s : s+8 : s+8]
			dc := dst[s : s+8 : s+8]
			ac := A[p : p+4 : p+4]
			bc := B[p : p+4 : p+4]
			cc := C[p : p+4 : p+4]
			ec := D[p : p+4 : p+4]
			x0, x4 := sc[0], sc[4]
			dc[0] = ac[0]*x0 + bc[0]*x4
			dc[4] = cc[0]*x0 + ec[0]*x4
			x1, x5 := sc[1], sc[5]
			dc[1] = ac[1]*x1 + bc[1]*x5
			dc[5] = cc[1]*x1 + ec[1]*x5
			x2, x6 := sc[2], sc[6]
			dc[2] = ac[2]*x2 + bc[2]*x6
			dc[6] = cc[2]*x2 + ec[2]*x6
			x3, x7 := sc[3], sc[7]
			dc[3] = ac[3]*x3 + bc[3]*x7
			dc[7] = cc[3]*x3 + ec[3]*x7
			p += 4
		}
	}
}

// factorRowsWide handles stages with pair distance ≥ 8: every slice in
// the block — inputs, outputs, and the four coefficient streams — is
// re-headed to the same length, so ranging over the coefficients makes
// the whole pair loop bounds-check-free.
func factorRowsWide(f *Factor, in, out *tensor.Matrix) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	n := f.N
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for s := 0; s < n; s += block {
			ac := f.A[p : p+half : p+half]
			bc := f.B[p : p+half : p+half]
			cc := f.C[p : p+half : p+half]
			ec := f.D[p : p+half : p+half]
			st := src[s : s+half : s+half]
			sb := src[s+half : s+block : s+block]
			dt := dst[s : s+half : s+half]
			db := dst[s+half : s+block : s+block]
			sb = sb[:len(ac)]
			dt = dt[:len(ac)]
			db = db[:len(ac)]
			st = st[:len(ac)]
			for k := range ac {
				xt, xb := st[k], sb[k]
				dt[k] = ac[k]*xt + bc[k]*xb
				db[k] = cc[k]*xt + ec[k]*xb
			}
			p += half
		}
	}
}

// factorRowsWideEpilogue is factorRowsWide with the fused bias/act tail
// applied per pair, exactly as applyFactorRowsEpilogue does.
func factorRowsWideEpilogue(f *Factor, in, out *tensor.Matrix, bias []float32, act tensor.Activation) {
	half := 1 << (f.Stage - 1)
	block := half << 1
	n := f.N
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		p := 0
		for s := 0; s < n; s += block {
			ac := f.A[p : p+half : p+half]
			bc := f.B[p : p+half : p+half]
			cc := f.C[p : p+half : p+half]
			ec := f.D[p : p+half : p+half]
			st := src[s : s+half : s+half][:len(ac)]
			sb := src[s+half : s+block : s+block][:len(ac)]
			dt := dst[s : s+half : s+half][:len(ac)]
			db := dst[s+half : s+block : s+block][:len(ac)]
			if bias != nil {
				bt := bias[s : s+half : s+half][:len(ac)]
				bb := bias[s+half : s+block : s+block][:len(ac)]
				for k := range ac {
					xt, xb := st[k], sb[k]
					vt := ac[k]*xt + bc[k]*xb
					vb := cc[k]*xt + ec[k]*xb
					vt += bt[k]
					vb += bb[k]
					dt[k] = act.Apply(vt)
					db[k] = act.Apply(vb)
				}
			} else {
				for k := range ac {
					xt, xb := st[k], sb[k]
					dt[k] = act.Apply(ac[k]*xt + bc[k]*xb)
					db[k] = act.Apply(cc[k]*xt + ec[k]*xb)
				}
			}
			p += half
		}
	}
}
