package butterfly

import (
	"math/rand"
	"testing"

	"repro/internal/hadamard"
	"repro/internal/tensor"
)

// The premise of Dao et al. (and of the paper's compression argument): a
// butterfly factorization can *learn* a fast transform from input/output
// examples. Here gradient descent recovers the Walsh–Hadamard transform
// from random probes — the loss must collapse by orders of magnitude and
// the learned operator must generalize to unseen inputs.
func TestButterflyLearnsHadamardTransform(t *testing.T) {
	const (
		n        = 16
		batch    = 64
		steps    = 1200
		lr       = 0.05
		momentum = 0.9
	)
	rng := rand.New(rand.NewSource(99))
	// Identity init: deep multiplicative parameterizations train reliably
	// from the identity (Dao et al.'s recipe), not from random rotations.
	bf := NewIdentity(n, Dense2x2)
	bf.Perm = nil // WHT needs no input permutation

	target := func(x *tensor.Matrix) *tensor.Matrix {
		out := x.Clone()
		for r := 0; r < out.Rows; r++ {
			row := out.Row(r)
			hadamard.Transform(row)
			for i := range row {
				row[i] /= 4 // orthonormal scaling (sqrt(16)) keeps training stable
			}
		}
		return out
	}

	mse := func(pred, want *tensor.Matrix) (float64, *tensor.Matrix) {
		grad := tensor.New(pred.Rows, pred.Cols)
		var loss float64
		inv := 1 / float64(pred.Rows*pred.Cols)
		for i := range pred.Data {
			d := float64(pred.Data[i] - want.Data[i])
			loss += d * d * inv
			grad.Data[i] = float32(2 * d * inv)
		}
		return loss, grad
	}

	params, grads := bf.Params()
	vel := make([][]float32, len(params))
	for i := range params {
		vel[i] = make([]float32, len(params[i]))
	}
	var first, last float64
	for step := 0; step < steps; step++ {
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		want := target(x)
		bf.ZeroGrad()
		pred := bf.Forward(x)
		loss, grad := mse(pred, want)
		if step == 0 {
			first = loss
		}
		last = loss
		bf.Backward(grad)
		for pi := range params {
			for j := range params[pi] {
				vel[pi][j] = momentum*vel[pi][j] - lr*grads[pi][j]
				params[pi][j] += vel[pi][j]
			}
		}
	}
	if last > first/100 {
		t.Fatalf("butterfly failed to learn the WHT: loss %v -> %v", first, last)
	}

	// Generalization: unseen probes map correctly.
	x := tensor.New(8, n)
	x.FillRandom(rng, 1)
	pred := bf.Apply(x)
	want := target(x)
	if d := tensor.MaxAbsDiff(pred, want); d > 0.15 {
		t.Fatalf("learned transform inaccurate on fresh inputs: maxdiff %v", d)
	}
}

// A rank-1 low-rank layer cannot represent the WHT no matter how long it
// trains (its image is one-dimensional) — the expressiveness gap behind
// Table 4's accuracy column. Training butterfly vs truncating to one
// butterfly factor shows the factorization needs all log2(N) stages.
func TestSingleFactorCannotLearnHadamard(t *testing.T) {
	const (
		n     = 16
		batch = 64
		steps = 400
		lr    = 0.02
	)
	rng := rand.New(rand.NewSource(100))
	bf := New(n, Dense2x2, rng)
	bf.Perm = nil
	bf.Factors = bf.Factors[:1] // cripple: one stage only

	var last float64
	for step := 0; step < steps; step++ {
		x := tensor.New(batch, n)
		x.FillRandom(rng, 1)
		want := x.Clone()
		for r := 0; r < want.Rows; r++ {
			row := want.Row(r)
			hadamard.Transform(row)
			for i := range row {
				row[i] /= 4
			}
		}
		bf.ZeroGrad()
		pred := bf.Forward(x)
		grad := tensor.New(pred.Rows, pred.Cols)
		last = 0
		inv := 1 / float64(pred.Rows*pred.Cols)
		for i := range pred.Data {
			d := float64(pred.Data[i] - want.Data[i])
			last += d * d * inv
			grad.Data[i] = float32(2 * d * inv)
		}
		bf.Backward(grad)
		params, grads := bf.Params()
		for pi := range params {
			for j := range params[pi] {
				params[pi][j] -= lr * grads[pi][j]
			}
		}
	}
	if last < 0.01 {
		t.Fatalf("a single butterfly factor should not express the WHT (loss %v)", last)
	}
}
