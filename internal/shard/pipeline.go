package shard

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// lowerPipeline assigns contiguous plan-step ranges to consecutive IPUs,
// balanced by parameter bytes (the quantity that overflows tile SRAM).
// Every plan step becomes one micro-step whose kernel runs only on the
// owning shard, through the unsharded plan's own lowered kernel
// (nn.Plan.StepRunner) — which is what makes pipeline partitioning
// trivially bit-for-bit: each step executes unchanged, only its placement
// moves. The runners capture layer weights, not the source plan, so its
// arenas do not stay resident behind the sharded plan's own. Activations
// crossing a stage boundary ride one IPU-Link transfer in the cost model;
// on the host they are already in the shared arena.
func lowerPipeline(pl *nn.Plan, shards int) ([]step, error) {
	owners := pipelineOwners(pl, shards)
	steps := make([]step, pl.NumSteps())
	names := pl.Steps()
	for i := range steps {
		st := step{
			name:    fmt.Sprintf("%s@ipu%d", names[i], owners[i]),
			cols:    pl.StepCols(i),
			src:     i,
			variant: pl.StepVariant(i),
			run:     make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards),
		}
		st.run[owners[i]] = pl.StepRunner(i)
		steps[i] = st
	}
	return steps, nil
}

// pipelineOwners maps each plan step to its pipeline stage: a greedy
// in-order packing that closes a stage once it holds its fair share of the
// model's parameter bytes, while leaving enough steps for the remaining
// stages. Stages are contiguous and monotone, as a pipeline requires.
func pipelineOwners(pl *nn.Plan, shards int) []int {
	n := pl.NumSteps()
	bytes := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		bytes[i] = layerParamBytes(pl.StepLayer(i))
		total += bytes[i]
	}
	owners := make([]int, n)
	stage, acc := 0, 0
	remaining := total
	for i := 0; i < n; i++ {
		owners[i] = stage
		acc += bytes[i]
		remaining -= bytes[i]
		stepsLeft := n - i - 1
		stagesLeft := shards - stage - 1
		if stagesLeft > 0 && stepsLeft > 0 {
			fair := (total + shards - 1) / shards
			// Advance when this stage has its share, or when the remaining
			// steps are only just enough to populate the remaining stages.
			if acc >= fair || stepsLeft <= stagesLeft {
				stage++
				acc = 0
			}
		}
	}
	return owners
}

// layerParamBytes returns the FP32 parameter footprint of one layer.
func layerParamBytes(l nn.Layer) int { return 4 * l.ParamCount() }
