package shard

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// n is wide enough that pixelfly's 64-wide blocks still split at 4 shards.
const testN, testClasses, testMaxBatch = 256, 10, 16

func buildPlan(t testing.TB, method nn.Method, seed int64) (*nn.Sequential, *nn.Plan) {
	t.Helper()
	net := nn.BuildSHL(method, testN, testClasses, rand.New(rand.NewSource(seed)))
	pl, err := net.CompilePlan(testMaxBatch)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	return net, pl
}

// TestShardedMatchesPlanAllMethods asserts the tentpole contract: for all
// six operator families, at 1, 2 and 4 shards, under whichever strategy
// the planner picks AND under pipeline explicitly, ShardedPlan.Execute is
// bit-for-bit equal to the unsharded nn.Plan.Execute.
func TestShardedMatchesPlanAllMethods(t *testing.T) {
	topo := DefaultTopology(4)
	for _, method := range nn.AllMethods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			_, pl := buildPlan(t, method, 7)
			rng := rand.New(rand.NewSource(99))
			for _, shards := range []int{1, 2, 4} {
				strategies := []Strategy{Pipeline}
				if Splittable(pl, shards) == nil {
					strategies = append(strategies, TensorParallel)
				}
				for _, strat := range strategies {
					sp, err := CompileWith(pl, topo, shards, strat)
					if err != nil {
						t.Fatalf("CompileWith(%d, %v): %v", shards, strat, err)
					}
					for _, batch := range []int{1, 3, testMaxBatch} {
						x := tensor.New(batch, testN)
						x.FillRandom(rng, 1)
						want, err := pl.Execute(x)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sp.Execute(x)
						if err != nil {
							t.Fatalf("shards=%d %v batch=%d: %v", shards, strat, batch, err)
						}
						if d := tensor.MaxAbsDiff(want, got); d != 0 {
							t.Fatalf("shards=%d %v batch=%d: differs from plan by %g (want bit-for-bit)",
								shards, strat, batch, d)
						}
					}
					sp.Close()
				}
			}
		})
	}
}

// TestShardedMatchesPlanCompressed covers the post-hoc compressed layer
// mix (FactorizedDense / structured swaps) the registry also serves.
func TestShardedMatchesPlanCompressed(t *testing.T) {
	net := nn.BuildSHL(nn.Baseline, 64, 10, rand.New(rand.NewSource(3)))
	compressed, _, err := net.Compress(nn.CompressOptions{Tolerance: 0.7, Seed: 5})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	pl, err := compressed.CompilePlan(8)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	topo := DefaultTopology(4)
	for _, shards := range []int{2, 4} {
		sp, err := Compile(pl, topo, shards)
		if err != nil {
			t.Fatalf("Compile(%d): %v", shards, err)
		}
		x := tensor.New(5, 64)
		x.FillRandom(rand.New(rand.NewSource(11)), 1)
		want, _ := pl.Execute(x)
		got, err := sp.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("shards=%d: compressed sharded output differs by %g", shards, d)
		}
		sp.Close()
	}
}

// TestShardedRepeatedExecuteIsStable interleaves batch sizes over one
// sharded plan to verify arena reuse never leaks state across executions
// or shards.
func TestShardedRepeatedExecuteIsStable(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 21)
	sp, err := CompileWith(pl, DefaultTopology(4), 4, TensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 24; iter++ {
		batch := 1 + iter%testMaxBatch
		x := tensor.New(batch, testN)
		x.FillRandom(rng, 1)
		want, _ := pl.Execute(x)
		got, err := sp.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("iter %d batch %d: diff %g", iter, batch, d)
		}
	}
}

// TestShardedErrors covers the input and compile contracts.
func TestShardedErrors(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 1)
	topo := DefaultTopology(4)
	if _, err := Compile(pl, topo, 3); err == nil {
		t.Error("non-power-of-two shard count should fail")
	}
	if _, err := Compile(pl, topo, 8); err == nil {
		t.Error("shards beyond the topology should fail")
	}
	if _, err := Compile(pl, topo, 0); err == nil {
		t.Error("zero shards should fail")
	}
	sp, err := Compile(pl, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if _, err := sp.Execute(tensor.New(testMaxBatch+1, testN)); !errors.Is(err, nn.ErrPlanBatch) {
		t.Errorf("oversized batch: got %v, want ErrPlanBatch", err)
	}
	if _, err := sp.Execute(tensor.New(2, testN/2)); !errors.Is(err, nn.ErrPlanWidth) {
		t.Errorf("wrong width: got %v, want ErrPlanWidth", err)
	}
	// Fastfood cannot tensor-parallel split; forcing it must fail cleanly.
	_, fp := buildPlan(t, nn.Fastfood, 2)
	if _, err := CompileWith(fp, topo, 2, TensorParallel); err == nil {
		t.Error("forcing tensor-parallel on fastfood should fail")
	}
}

// TestShardedZeroAllocSteadyState asserts the pooled-serving contract:
// after warm-up, Execute allocates nothing, at any shard count, including
// the butterfly exchange stages and the goroutine-per-IPU dispatch.
func TestShardedZeroAllocSteadyState(t *testing.T) {
	for _, method := range []nn.Method{nn.Baseline, nn.Butterfly, nn.Pixelfly} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			_, pl := buildPlan(t, method, 17)
			for _, shards := range []int{2, 4} {
				sp, err := CompileWith(pl, DefaultTopology(4), shards, TensorParallel)
				if err != nil {
					t.Fatal(err)
				}
				x := tensor.New(testMaxBatch, testN)
				x.FillRandom(rand.New(rand.NewSource(18)), 1)
				if _, err := sp.Execute(x); err != nil {
					t.Fatal(err)
				}
				avg := testing.AllocsPerRun(20, func() { sp.Execute(x) })
				if avg != 0 {
					t.Errorf("shards=%d: Execute allocates %.1f objects per run, want 0", shards, avg)
				}
				sp.Close()
			}
		})
	}
}

// TestWavefrontMatchesPlan pins the tentpole contract of the
// multi-micro-batch executor: pipeline plans compiled at wavefront
// widths 1, 2 and 4 stay bit-for-bit equal to the unsharded plan at
// every batch size — including batches smaller than the width (the
// executor clamps to one row per micro-batch) and single rows (which
// fall back to the barrier loop).
func TestWavefrontMatchesPlan(t *testing.T) {
	for _, method := range []nn.Method{nn.Baseline, nn.Butterfly, nn.Fastfood} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			_, pl := buildPlan(t, method, 7)
			rng := rand.New(rand.NewSource(133))
			for _, shards := range []int{2, 4} {
				for _, micro := range []int{1, 2, 4} {
					sp, err := CompileMicro(pl, DefaultTopology(shards), shards, Pipeline, micro)
					if err != nil {
						t.Fatalf("CompileMicro(%d, %d): %v", shards, micro, err)
					}
					for _, batch := range []int{1, 3, 5, testMaxBatch} {
						x := tensor.New(batch, testN)
						x.FillRandom(rng, 1)
						want, err := pl.Execute(x)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sp.Execute(x)
						if err != nil {
							t.Fatalf("shards=%d micro=%d batch=%d: %v", shards, micro, batch, err)
						}
						if d := tensor.MaxAbsDiff(want, got); d != 0 {
							t.Fatalf("shards=%d micro=%d batch=%d: differs from plan by %g (want bit-for-bit)",
								shards, micro, batch, d)
						}
					}
					sp.Close()
				}
			}
		})
	}
}

// TestWavefrontZeroAlloc asserts the wavefront executor keeps the
// pooled-serving contract: steady-state Execute allocates nothing, with
// the stage-local token handoffs and micro-batch headers all reused.
func TestWavefrontZeroAlloc(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 17)
	sp, err := CompileMicro(pl, DefaultTopology(2), 2, Pipeline, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	x := tensor.New(testMaxBatch, testN)
	x.FillRandom(rand.New(rand.NewSource(18)), 1)
	if _, err := sp.Execute(x); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() { sp.Execute(x) }); avg != 0 {
		t.Errorf("wavefront Execute allocates %.1f objects per run, want 0", avg)
	}
}

// TestPipelineStageClamp covers shards > NumSteps: a 3-step plan on an
// 8-IPU request must clamp to 3 effective stages — in the engine (no
// idle tracks skewing the bubble gauge), in the cost model
// (PipelineStages), and still execute bit-for-bit, barrier loop and
// wavefront alike.
func TestPipelineStageClamp(t *testing.T) {
	net := nn.BuildSHL(nn.Baseline, testN, testClasses, rand.New(rand.NewSource(5)))
	pl, err := net.CompilePlanOpts(testMaxBatch, nn.PlanOptions{NoFuse: true})
	if err != nil {
		t.Fatalf("CompilePlanOpts: %v", err)
	}
	if pl.NumSteps() != 3 {
		t.Fatalf("unfused SHL plan has %d steps, test wants 3", pl.NumSteps())
	}
	cost, err := Estimate(pl, testMaxBatch, 8, DefaultTopology(8))
	if err != nil {
		t.Fatal(err)
	}
	if cost.Strategy == Pipeline && cost.PipelineStages != 3 {
		t.Errorf("cost.PipelineStages = %d, want 3", cost.PipelineStages)
	}
	for _, micro := range []int{1, 4} {
		sp, err := CompileMicro(pl, DefaultTopology(8), 8, Pipeline, micro)
		if err != nil {
			t.Fatalf("CompileMicro(8, %d): %v", micro, err)
		}
		if sp.Shards() != 3 {
			t.Errorf("micro=%d: Shards() = %d, want 3 (clamped to step count)", micro, sp.Shards())
		}
		if sp.Cost().PipelineStages != 3 {
			t.Errorf("micro=%d: Cost().PipelineStages = %d, want 3", micro, sp.Cost().PipelineStages)
		}
		x := tensor.New(testMaxBatch, testN)
		x.FillRandom(rand.New(rand.NewSource(6)), 1)
		want, _ := pl.Execute(x)
		got, err := sp.Execute(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Errorf("micro=%d: clamped pipeline differs by %g", micro, d)
		}
		sp.Close()
	}
}

// TestPipelineOwnersContiguous checks the stage assignment invariants.
func TestPipelineOwnersContiguous(t *testing.T) {
	_, pl := buildPlan(t, nn.Baseline, 9)
	for _, shards := range []int{1, 2, 4} {
		owners := pipelineOwners(pl, shards)
		if len(owners) != pl.NumSteps() {
			t.Fatalf("shards=%d: %d owners for %d steps", shards, len(owners), pl.NumSteps())
		}
		prev := 0
		for i, o := range owners {
			if o < prev || o > prev+1 || o >= shards {
				t.Fatalf("shards=%d: owner sequence %v not monotone-contiguous at %d", shards, owners, i)
			}
			prev = o
		}
	}
}

// BenchmarkPipelinedExecute compares the barrier loop (M=1) against the
// wavefront schedule (M=4) on the CI reference shape: butterfly, 2
// shards, pipeline, full batch.
func BenchmarkPipelinedExecute(b *testing.B) {
	for _, micro := range []int{1, 4} {
		b.Run("micro="+string(rune('0'+micro)), func(b *testing.B) {
			_, pl := buildPlan(b, nn.Butterfly, 40)
			sp, err := CompileMicro(pl, DefaultTopology(2), 2, Pipeline, micro)
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			x := tensor.New(testMaxBatch, testN)
			x.FillRandom(rand.New(rand.NewSource(41)), 1)
			if _, err := sp.Execute(x); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.Execute(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedPredict measures steady-state sharded execution of a
// full SHL batch — the acceptance benchmark: 0 allocs/op.
func BenchmarkShardedPredict(b *testing.B) {
	for _, method := range []nn.Method{nn.Baseline, nn.Butterfly} {
		for _, shards := range []int{1, 2, 4} {
			b.Run(method.String()+"/shards="+string(rune('0'+shards)), func(b *testing.B) {
				_, pl := buildPlan(b, method, 40)
				sp, err := Compile(pl, DefaultTopology(4), shards)
				if err != nil {
					b.Fatal(err)
				}
				defer sp.Close()
				x := tensor.New(testMaxBatch, testN)
				x.FillRandom(rand.New(rand.NewSource(41)), 1)
				if _, err := sp.Execute(x); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sp.Execute(x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
