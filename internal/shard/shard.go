// Package shard partitions compiled inference plans (nn.Plan) across
// several modelled IPUs connected by IPU-Links — the production answer
// when a model, or the batch riding through it, no longer fits one chip's
// SRAM (the paper's binding constraint).
//
// Two partitioning strategies are implemented, chosen per plan by a
// cost-based planner over the ipu.LinkConfig exchange model:
//
//   - Tensor parallel: every wide layer is split into per-shard column
//     slices — each IPU holds 1/S of the weights and produces 1/S of the
//     layer's output, followed by an all-gather so the next layer sees the
//     full activation. Butterfly chains split specially: the first
//     log2(N/S) factor stages are block-local to a shard's slice, and only
//     the top log2(S) "global" stages need a pairwise exchange round each —
//     the property (Liu et al., arXiv:2002.03400) that makes structured
//     layers cheap to shard.
//   - Pipeline: contiguous step ranges are assigned to consecutive IPUs
//     and activations stream across one link per boundary. This is the
//     fallback when a layer is not splittable (fastfood and circulant mix
//     all features through Hadamard/FFT passes whose per-output cone is the
//     whole input, and their weights are O(N) anyway).
//
// Host-side execution verifies the numerics: shards run on a
// goroutine-per-IPU pool over plan-owned per-shard workspaces, with the
// all-gather realized as writes into a shared full-width activation arena
// and a barrier per step. Every element is produced by the same float32
// expression as the unsharded plan, so ShardedPlan.Execute is bit-for-bit
// equal to nn.Plan.Execute at any shard count — while the per-IPU memory
// and the exchange traffic of a real multi-chip run are priced
// analytically by the Cost model.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/tensor"
)

// Strategy selects how a plan is partitioned across IPUs.
type Strategy int

const (
	// TensorParallel splits every layer into per-shard column slices with
	// an all-gather between layers.
	TensorParallel Strategy = iota
	// Pipeline assigns contiguous step ranges to consecutive IPUs.
	Pipeline
)

func (s Strategy) String() string {
	switch s {
	case TensorParallel:
		return "tensor-parallel"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Topology describes the modelled multi-IPU system a plan is sharded onto.
type Topology struct {
	// NumIPUs is how many processors the topology offers (the shard-count
	// ceiling; the planner may use fewer).
	NumIPUs int
	// IPU is the per-processor model (memory, compute classes).
	IPU ipu.Config
	// Link is the inter-processor exchange model.
	Link ipu.LinkConfig
}

// DefaultTopology returns n GC200s on an IPU-Link fabric — the M2000 pod
// building block the paper's hardware belongs to.
func DefaultTopology(n int) Topology {
	return Topology{NumIPUs: n, IPU: ipu.GC200(), Link: ipu.IPULink()}
}

func (t Topology) withDefaults() Topology {
	if t.NumIPUs <= 0 {
		t.NumIPUs = 1
	}
	if t.IPU.Tiles == 0 {
		t.IPU = ipu.GC200()
	}
	if t.Link.LinkBandwidth == 0 {
		t.Link = ipu.IPULink()
	}
	return t
}

// step is one barrier-delimited micro-step of the sharded program: per
// shard, a kernel writing that shard's slice of the step output into the
// shared full-width activation arena. A nil kernel means the shard is idle
// this step (pipeline stages it does not own, exchange-only steps). Layer
// lowering may emit several micro-steps per source layer — a butterfly
// emits one per factor stage, since the global stages must see the other
// shards' writes from the previous stage.
type step struct {
	name string
	cols int
	// src is the index of the plan step this micro-step was lowered from —
	// the join key back to the unsharded plan's per-step kernel family,
	// flop model and modelled cost (several micro-steps may share one src).
	src int
	// variant names the micro-kernel shape the micro-step's kernels
	// dispatched to at lowering time — pipeline micro-steps inherit the
	// plan step's variant, tensor-parallel column windows record their
	// own ("tiled4x8" for packed dense windows, "reference" for windowed
	// sweeps that keep the reference kernels, "" for non-kernel steps).
	variant string
	run     []func(dst, x *tensor.Matrix, ws *tensor.Workspace)
}

// engine holds everything the worker goroutines touch. It is split from
// ShardedPlan so the workers keep only the engine alive: the plan's
// finalizer can then stop them once the plan itself becomes unreachable
// (pooled plans are dropped by cache eviction, never closed explicitly).
type engine struct {
	shards   int
	maxBatch int
	in, out  int
	steps    []step

	bufA, bufB []float32
	actA, actB tensor.Matrix
	ws         []*tensor.Workspace

	// Measured phase timings of the most recent Execute: per micro-step
	// wall clock (orchestrator-written), per-shard accumulated kernel
	// time (each shard writes only its own slot; the barrier orders the
	// writes before the orchestrator reads), and the whole batch's wall
	// clock. The serving layer lines these up against the analytic Cost
	// model — measured compute vs modelled compute, and wall minus the
	// slowest shard's compute as the sync/exchange proxy.
	stepNanos    []int64
	computeNanos []int64
	wallNanos    int64

	// Per-kernel accounting: kern/flopsPerRow/bytesPerRow carry each
	// micro-step's kernel family and per-sample work (the plan step's
	// figures divided over its micro-steps), recorded into kstats when a
	// sink is installed. modelSec is the modelled per-micro-step seconds
	// of one MaxBatch execution (compute under the chosen strategy, with
	// the source step's exchange charged to its last micro-step) — the
	// analytic counterpart the drift detector lines stepNanos up against.
	kstats      *obs.KernelStats
	kern        []obs.Kernel
	variants    []string
	flopsPerRow []int64
	bytesPerRow []int64
	modelSec    []float64

	// Modelled phase split of modelSec (compute + exchange == modelSec
	// per micro-step): the timeline recorder uses the exchange half to
	// decide whether a post-kernel gap is priced IPU-Link traffic or pure
	// barrier skew, and the serving layer exports both as the modelled
	// counterpart of the measured phase spans.
	modelCompSec []float64
	modelExchSec []float64

	// Flight recorder state: rec is installed per batch by the serving
	// layer (nil in steady state — then no events are emitted at all);
	// curBatch/execStart are published before the per-step channel sends,
	// which order them for the workers. Each shard records its compute
	// span into its own fixed slot; the orchestrator fills in sync gaps
	// and bubbles after each barrier.
	rec       *timeline.Recorder
	curBatch  *timeline.Batch
	execStart time.Time

	// pprof goroutine labels: pprofBase is the serving layer's labelled
	// context (model=...); pprofCtxs[k] adds ipu=k. Workers apply their
	// label lazily on wake (workerCtx[k] is each worker's privately-owned
	// last-applied marker); the orchestrator wears pprofCtxs[0] for the
	// span of Execute.
	pprofBase context.Context
	pprofCtxs []context.Context
	workerCtx []context.Context

	// Orchestration state: the orchestrator publishes curDst/curX/stepIdx,
	// wakes the workers through their start channels (the channel send is
	// the happens-before edge), runs shard 0 inline, and collects one done
	// token per worker as the barrier.
	curDst, curX *tensor.Matrix
	stepIdx      int
	start        []chan struct{}
	done         chan struct{}
	quit         chan struct{}
}

// ShardedPlan is a compiled multi-IPU inference program. Like nn.Plan it
// owns its activation buffers and must not be used from two goroutines at
// once; pool instances for concurrent serving.
type ShardedPlan struct {
	e        *engine
	topo     Topology
	strategy Strategy
	cost     Cost
}

// Compile partitions a compiled plan across shards IPUs of the topology,
// letting the cost planner choose the strategy: tensor-parallel when every
// layer is splittable and its modelled latency (compute/S plus all-gather
// and butterfly exchange rounds) beats pipeline's, pipeline otherwise.
// shards must be a power of two within the topology.
func Compile(pl *nn.Plan, topo Topology, shards int) (*ShardedPlan, error) {
	cost, err := Estimate(pl, pl.MaxBatch(), shards, topo)
	if err != nil {
		return nil, err
	}
	return CompileWith(pl, topo, shards, cost.Strategy)
}

// CompileWith is Compile with the partitioning strategy forced — the hook
// the equivalence tests use to cover both lowerings at every shard count.
func CompileWith(pl *nn.Plan, topo Topology, shards int, strategy Strategy) (*ShardedPlan, error) {
	topo = topo.withDefaults()
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("shard: shard count %d must be a positive power of two", shards)
	}
	if shards > topo.NumIPUs {
		return nil, fmt.Errorf("shard: %d shards exceed topology of %d IPUs", shards, topo.NumIPUs)
	}
	var steps []step
	var err error
	switch strategy {
	case TensorParallel:
		steps, err = lowerTensorParallel(pl, shards)
	case Pipeline:
		steps, err = lowerPipeline(pl, shards)
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	cost, err := estimateWith(pl, pl.MaxBatch(), shards, topo, strategy)
	if err != nil {
		return nil, err
	}

	e := &engine{
		shards:   shards,
		maxBatch: pl.MaxBatch(),
		in:       pl.InputWidth(),
		out:      pl.OutputWidth(),
		steps:    steps,
		done:     make(chan struct{}, shards),
		quit:     make(chan struct{}),
	}
	maxW := 0
	for _, st := range steps {
		if st.cols > maxW {
			maxW = st.cols
		}
	}
	e.bufA = make([]float32, e.maxBatch*maxW)
	e.bufB = make([]float32, e.maxBatch*maxW)
	e.stepNanos = make([]int64, len(steps))
	e.computeNanos = make([]int64, shards)

	// Annotate each micro-step with its share of the source plan step's
	// kernel accounting figures and modelled cost: a source step lowered
	// into M micro-steps (a butterfly's per-stage sweeps) spreads its
	// per-row flops/bytes and modelled compute evenly over the M, so the
	// totals match the plan's own accounting exactly.
	counts := make([]int, pl.NumSteps())
	for i := range steps {
		counts[steps[i].src]++
	}
	e.kern = make([]obs.Kernel, len(steps))
	e.variants = make([]string, len(steps))
	e.flopsPerRow = make([]int64, len(steps))
	e.bytesPerRow = make([]int64, len(steps))
	for i := range steps {
		src := steps[i].src
		n := int64(counts[src])
		e.kern[i] = pl.StepKernel(src)
		e.variants[i] = steps[i].variant
		e.flopsPerRow[i] = pl.StepFlopsPerRow(src) / n
		e.bytesPerRow[i] = pl.StepArenaBytesPerRow(src) / n
	}
	e.modelCompSec, e.modelExchSec = modelledMicroPhases(pl, steps, pl.MaxBatch(), shards, topo, strategy)
	e.modelSec = make([]float64, len(steps))
	for i := range e.modelSec {
		e.modelSec[i] = e.modelCompSec[i] + e.modelExchSec[i]
	}
	e.workerCtx = make([]context.Context, shards)
	e.ws = make([]*tensor.Workspace, shards)
	for k := range e.ws {
		e.ws[k] = tensor.NewWorkspace()
	}
	for k := 1; k < shards; k++ {
		c := make(chan struct{}, 1)
		e.start = append(e.start, c)
		go e.workerLoop(k, c)
	}
	p := &ShardedPlan{e: e, topo: topo, strategy: strategy, cost: cost}
	// Workers park on their start channels; if the plan is dropped without
	// Close (pooled plans are), the finalizer releases them.
	runtime.SetFinalizer(p, func(sp *ShardedPlan) { sp.e.stop() })

	// Two warm-up executions, as in nn.CompilePlan: the first records
	// every per-shard workspace's demand, the second runs with the arenas
	// at their exact steady-state size.
	warm := tensor.New(e.maxBatch, e.in)
	for i := 0; i < 2; i++ {
		if _, err := p.Execute(warm); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// Shards returns the number of modelled IPUs the plan runs on.
func (p *ShardedPlan) Shards() int { return p.e.shards }

// Strategy returns the partitioning the planner (or caller) chose.
func (p *ShardedPlan) Strategy() Strategy { return p.strategy }

// Cost returns the modelled per-IPU memory and exchange cost of one batch.
func (p *ShardedPlan) Cost() Cost { return p.cost }

// MaxBatch returns the largest row count Execute accepts.
func (p *ShardedPlan) MaxBatch() int { return p.e.maxBatch }

// InputWidth returns the feature width the plan expects.
func (p *ShardedPlan) InputWidth() int { return p.e.in }

// OutputWidth returns the width of the result matrix.
func (p *ShardedPlan) OutputWidth() int { return p.e.out }

// Steps returns the micro-step names in execution order.
func (p *ShardedPlan) Steps() []string {
	names := make([]string, len(p.e.steps))
	for i := range p.e.steps {
		names[i] = p.e.steps[i].name
	}
	return names
}

// StepKernel returns the Into-kernel family micro-step i executes — the
// attribution key of the per-kernel accounting, inherited from the
// source plan step.
func (p *ShardedPlan) StepKernel(i int) obs.Kernel { return p.e.kern[i] }

// StepVariant returns the micro-kernel variant name of micro-step i.
func (p *ShardedPlan) StepVariant(i int) string { return p.e.variants[i] }

// StepVariants returns the variant name of every micro-step, in
// execution order (index-aligned with Steps).
func (p *ShardedPlan) StepVariants() []string {
	out := make([]string, len(p.e.variants))
	copy(out, p.e.variants)
	return out
}

// Execute runs the sharded program over x (rows in [1, MaxBatch], cols ==
// InputWidth), dispatching each micro-step to the goroutine-per-IPU pool
// and barriering between steps. The result aliases plan-owned memory,
// valid until the next Execute. Output is bit-for-bit identical to the
// unsharded nn.Plan.Execute (and hence to Sequential.Infer).
func (p *ShardedPlan) Execute(x *tensor.Matrix) (*tensor.Matrix, error) {
	// The cleanup finalizer closes e.quit; without this the GC may deem p
	// dead the moment e is loaded (a caller's last use of p can be this
	// very call) and stop the workers mid-execution, deadlocking the
	// barrier below.
	defer runtime.KeepAlive(p)
	e := p.e
	if x.Cols != e.in {
		return nil, fmt.Errorf("%w: got %d columns, plan expects %d", nn.ErrPlanWidth, x.Cols, e.in)
	}
	if x.Rows < 1 || x.Rows > e.maxBatch {
		return nil, fmt.Errorf("%w: got %d rows, plan accepts 1..%d", nn.ErrPlanBatch, x.Rows, e.maxBatch)
	}
	for k := range e.computeNanos {
		e.computeNanos[k] = 0
	}
	// Sampled batches get a pooled event buffer; the common case is nil
	// and every timeline branch below is a single pointer test. curBatch
	// and execStart are published to the workers by the first step's
	// channel sends.
	tb := e.rec.Sample()
	if tb != nil {
		tb.Begin(len(e.steps), e.shards, x.Rows)
	}
	e.curBatch = tb
	if e.pprofCtxs != nil {
		// Wear ipu=0 for the inline shard's spans; restored below.
		pprof.SetGoroutineLabels(e.pprofCtxs[0])
	}
	execStart := time.Now()
	e.execStart = execStart
	cur := x
	useA := true
	for i := range e.steps {
		st := &e.steps[i]
		act, buf := &e.actB, e.bufB
		if useA {
			act, buf = &e.actA, e.bufA
		}
		act.Rows, act.Cols = x.Rows, st.cols
		act.Data = buf[:x.Rows*st.cols]
		e.curDst, e.curX, e.stepIdx = act, cur, i
		t0 := time.Now()
		for _, c := range e.start {
			c <- struct{}{}
		}
		e.runShard(0, st)
		for range e.start {
			<-e.done
		}
		e.stepNanos[i] = time.Since(t0).Nanoseconds()
		if e.kstats != nil {
			rows := int64(x.Rows)
			e.kstats.Record(e.kern[i], rows*e.flopsPerRow[i], rows*e.bytesPerRow[i], e.stepNanos[i])
		}
		if tb != nil {
			e.recordStepGaps(tb, i, t0.Sub(execStart).Nanoseconds(), e.stepNanos[i])
		}
		cur = act
		useA = !useA
	}
	e.wallNanos = time.Since(execStart).Nanoseconds()
	if e.pprofCtxs != nil {
		pprof.SetGoroutineLabels(e.pprofBase)
	}
	if tb != nil {
		e.curBatch = nil
		e.rec.Finish(tb, e.wallNanos)
	}
	return cur, nil
}

// recordStepGaps fills in everything but the compute spans of micro-step
// i, after its barrier: for idle shards a bubble covering the whole step
// (pipeline fill/drain — tensor-parallel lowering gives every shard a
// kernel on every step), and for working shards the gap between their
// kernel's return and the barrier's close — exchange when the cost model
// prices IPU-Link traffic into this micro-step, barrier_wait otherwise.
// The barrier's done-tokens order the workers' compute-span writes
// before these reads.
func (e *engine) recordStepGaps(tb *timeline.Batch, i int, stepOff, stepDur int64) {
	st := &e.steps[i]
	gapPhase := timeline.BarrierWait
	if e.modelExchSec[i] > 0 {
		gapPhase = timeline.Exchange
	}
	stepEnd := stepOff + stepDur
	for k := 0; k < e.shards; k++ {
		if st.run[k] == nil {
			tb.Record(i, k, timeline.LaneWork, timeline.Bubble, stepOff, stepDur)
			continue
		}
		work := tb.Work(i, k)
		gapStart := work.StartNanos + work.DurNanos
		if gap := stepEnd - gapStart; gap > 0 {
			tb.Record(i, k, timeline.LaneSync, gapPhase, gapStart, gap)
		}
	}
}

// SetKernelStats installs (or, with nil, removes) the per-kernel
// accounting sink Execute reports each micro-step's flops, arena bytes
// and measured time into — the sharded counterpart of
// nn.Plan.SetKernelStats. The sink is internally synchronized; only the
// orchestrator goroutine records.
func (p *ShardedPlan) SetKernelStats(ks *obs.KernelStats) { p.e.kstats = ks }

// SetTimeline installs (or, with nil, removes) the BSP phase flight
// recorder Execute samples batches into: per-shard compute spans,
// post-kernel exchange/barrier gaps, and pipeline fill/drain bubbles.
// With no recorder installed Execute emits no events at all. Must be
// called from the executing goroutine (the plan is single-caller, like
// SetKernelStats).
func (p *ShardedPlan) SetTimeline(rec *timeline.Recorder) { p.e.rec = rec }

// SetPprofLabels gives the execution goroutines pprof labels derived
// from base (the serving layer's model-labelled context) with ipu=<k>
// added per shard: workers pin theirs on next wake, and Execute wears
// ipu=0 for its inline shard. Idempotent per base context, so the
// serving layer can call it every batch for free.
func (p *ShardedPlan) SetPprofLabels(base context.Context) {
	e := p.e
	if base == nil || base == e.pprofBase {
		return
	}
	ctxs := make([]context.Context, e.shards)
	for k := range ctxs {
		ctxs[k] = pprof.WithLabels(base, pprof.Labels("ipu", strconv.Itoa(k)))
	}
	e.pprofBase = base
	e.pprofCtxs = ctxs
}

// ModelledPhaseSeconds returns the modelled per-micro-step seconds of
// one MaxBatch execution split by BSP phase (compute, exchange);
// element-wise they sum to ModelledStepSeconds. Slices are plan-owned —
// copy to modify.
func (p *ShardedPlan) ModelledPhaseSeconds() (compute, exchange []float64) {
	return p.e.modelCompSec, p.e.modelExchSec
}

// ModelledStepSeconds returns the modelled duration of each micro-step of
// one MaxBatch execution under the plan's topology and strategy
// (index-aligned with Steps/LastStepNanos): the source plan step's
// modelled compute spread over its micro-steps, with the step's exchange
// time charged to the last of them. The slice is plan-owned — copy to
// modify. Dividing by MaxBatch gives the per-row modelled cost the drift
// detector compares measured wall-clock against.
func (p *ShardedPlan) ModelledStepSeconds() []float64 { return p.e.modelSec }

// LastStepNanos returns the wall-clock duration, in nanoseconds, of each
// barrier-delimited micro-step of the most recent Execute (index-aligned
// with Steps). Plan-owned, overwritten by the next Execute.
func (p *ShardedPlan) LastStepNanos() []int64 { return p.e.stepNanos }

// LastComputeNanos returns each modelled IPU's accumulated kernel time
// over the most recent Execute — the measured per-shard compute phase.
// Plan-owned, overwritten by the next Execute.
func (p *ShardedPlan) LastComputeNanos() []int64 { return p.e.computeNanos }

// LastWallNanos returns the wall-clock duration of the most recent
// Execute. Wall minus the slowest shard's compute is the host-side
// proxy for the sync + exchange overhead the Cost model prices
// analytically.
func (p *ShardedPlan) LastWallNanos() int64 { return p.e.wallNanos }

// Close stops the worker goroutines. A closed plan must not be executed
// again; plans that are simply dropped are cleaned up by a finalizer, so
// calling Close is optional.
func (p *ShardedPlan) Close() {
	runtime.SetFinalizer(p, nil)
	p.e.stop()
}

func (e *engine) stop() {
	select {
	case <-e.quit:
	default:
		close(e.quit)
	}
}

func (e *engine) runShard(k int, st *step) {
	if f := st.run[k]; f != nil {
		w := e.ws[k]
		w.Reset()
		t0 := time.Now()
		f(e.curDst, e.curX, w)
		d := time.Since(t0).Nanoseconds()
		e.computeNanos[k] += d
		if tb := e.curBatch; tb != nil {
			// Each shard owns this (step, ipu) slot — lock-free write,
			// ordered before the orchestrator's read by the done token.
			tb.Record(e.stepIdx, k, timeline.LaneWork, timeline.Compute,
				t0.Sub(e.execStart).Nanoseconds(), d)
		}
	}
}

func (e *engine) workerLoop(k int, start <-chan struct{}) {
	for {
		select {
		case <-e.quit:
			return
		case <-start:
			// Apply this worker's ipu=k pprof label lazily: workerCtx[k]
			// is only ever touched by this goroutine, and pprofCtxs was
			// published by the start-channel send.
			if c := e.pprofCtxs; c != nil && e.workerCtx[k] != c[k] {
				e.workerCtx[k] = c[k]
				pprof.SetGoroutineLabels(c[k])
			}
			e.runShard(k, &e.steps[e.stepIdx])
			e.done <- struct{}{}
		}
	}
}

// splitPoints returns the S+1 column boundaries slicing width columns into
// S near-equal contiguous shares: shard k owns [pts[k], pts[k+1]).
func splitPoints(width, shards int) []int {
	pts := make([]int, shards+1)
	for k := 0; k <= shards; k++ {
		pts[k] = k * width / shards
	}
	return pts
}
