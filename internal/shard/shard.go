// Package shard partitions compiled inference plans (nn.Plan) across
// several modelled IPUs connected by IPU-Links — the production answer
// when a model, or the batch riding through it, no longer fits one chip's
// SRAM (the paper's binding constraint).
//
// Two partitioning strategies are implemented, chosen per plan by a
// cost-based planner over the ipu.LinkConfig exchange model:
//
//   - Tensor parallel: every wide layer is split into per-shard column
//     slices — each IPU holds 1/S of the weights and produces 1/S of the
//     layer's output, followed by an all-gather so the next layer sees the
//     full activation. Butterfly chains split specially: the first
//     log2(N/S) factor stages are block-local to a shard's slice, and only
//     the top log2(S) "global" stages need a pairwise exchange round each —
//     the property (Liu et al., arXiv:2002.03400) that makes structured
//     layers cheap to shard.
//   - Pipeline: contiguous step ranges are assigned to consecutive IPUs
//     and activations stream across one link per boundary. This is the
//     fallback when a layer is not splittable (fastfood and circulant mix
//     all features through Hadamard/FFT passes whose per-output cone is the
//     whole input, and their weights are O(N) anyway).
//
// Host-side execution verifies the numerics: shards run on a
// goroutine-per-IPU pool over plan-owned per-shard workspaces, with the
// all-gather realized as writes into a shared full-width activation arena
// and a barrier per step. Every element is produced by the same float32
// expression as the unsharded plan, so ShardedPlan.Execute is bit-for-bit
// equal to nn.Plan.Execute at any shard count — while the per-IPU memory
// and the exchange traffic of a real multi-chip run are priced
// analytically by the Cost model.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/tensor"
)

// Strategy selects how a plan is partitioned across IPUs.
type Strategy int

const (
	// TensorParallel splits every layer into per-shard column slices with
	// an all-gather between layers.
	TensorParallel Strategy = iota
	// Pipeline assigns contiguous step ranges to consecutive IPUs.
	Pipeline
)

func (s Strategy) String() string {
	switch s {
	case TensorParallel:
		return "tensor-parallel"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Topology describes the modelled multi-IPU system a plan is sharded onto.
type Topology struct {
	// NumIPUs is how many processors the topology offers (the shard-count
	// ceiling; the planner may use fewer).
	NumIPUs int
	// IPU is the per-processor model (memory, compute classes).
	IPU ipu.Config
	// Link is the inter-processor exchange model.
	Link ipu.LinkConfig
}

// DefaultTopology returns n GC200s on an IPU-Link fabric — the M2000 pod
// building block the paper's hardware belongs to.
func DefaultTopology(n int) Topology {
	return Topology{NumIPUs: n, IPU: ipu.GC200(), Link: ipu.IPULink()}
}

func (t Topology) withDefaults() Topology {
	if t.NumIPUs <= 0 {
		t.NumIPUs = 1
	}
	if t.IPU.Tiles == 0 {
		t.IPU = ipu.GC200()
	}
	if t.Link.LinkBandwidth == 0 {
		t.Link = ipu.IPULink()
	}
	return t
}

// step is one barrier-delimited micro-step of the sharded program: per
// shard, a kernel writing that shard's slice of the step output into the
// shared full-width activation arena. A nil kernel means the shard is idle
// this step (pipeline stages it does not own, exchange-only steps). Layer
// lowering may emit several micro-steps per source layer — a butterfly
// emits one per factor stage, since the global stages must see the other
// shards' writes from the previous stage.
type step struct {
	name string
	cols int
	// src is the index of the plan step this micro-step was lowered from —
	// the join key back to the unsharded plan's per-step kernel family,
	// flop model and modelled cost (several micro-steps may share one src).
	src int
	// variant names the micro-kernel shape the micro-step's kernels
	// dispatched to at lowering time — pipeline micro-steps inherit the
	// plan step's variant, tensor-parallel column windows record their
	// own ("tiled4x8" for packed dense windows, "reference" for windowed
	// sweeps that keep the reference kernels, "" for non-kernel steps).
	variant string
	run     []func(dst, x *tensor.Matrix, ws *tensor.Workspace)
}

// engine holds everything the worker goroutines touch. It is split from
// ShardedPlan so the workers keep only the engine alive: the plan's
// finalizer can then stop them once the plan itself becomes unreachable
// (pooled plans are dropped by cache eviction, never closed explicitly).
type engine struct {
	shards   int
	maxBatch int
	in, out  int
	steps    []step

	bufA, bufB []float32
	actA, actB tensor.Matrix
	ws         []*tensor.Workspace

	// Measured phase timings of the most recent Execute: per micro-step
	// wall clock (orchestrator-written), per-shard accumulated kernel
	// time (each shard writes only its own slot; the barrier orders the
	// writes before the orchestrator reads), and the whole batch's wall
	// clock. The serving layer lines these up against the analytic Cost
	// model — measured compute vs modelled compute, and wall minus the
	// slowest shard's compute as the sync/exchange proxy.
	stepNanos    []int64
	computeNanos []int64
	wallNanos    int64

	// Per-kernel accounting: kern/flopsPerRow/bytesPerRow carry each
	// micro-step's kernel family and per-sample work (the plan step's
	// figures divided over its micro-steps), recorded into kstats when a
	// sink is installed. modelSec is the modelled per-micro-step seconds
	// of one MaxBatch execution (compute under the chosen strategy, with
	// the source step's exchange charged to its last micro-step) — the
	// analytic counterpart the drift detector lines stepNanos up against.
	kstats      *obs.KernelStats
	kern        []obs.Kernel
	variants    []string
	flopsPerRow []int64
	bytesPerRow []int64
	modelSec    []float64

	// Modelled phase split of modelSec (compute + exchange == modelSec
	// per micro-step): the timeline recorder uses the exchange half to
	// decide whether a post-kernel gap is priced IPU-Link traffic or pure
	// barrier skew, and the serving layer exports both as the modelled
	// counterpart of the measured phase spans.
	modelCompSec []float64
	modelExchSec []float64

	// Flight recorder state: rec is installed per batch by the serving
	// layer (nil in steady state — then no events are emitted at all);
	// curBatch/execStart are published before the per-step channel sends,
	// which order them for the workers. Each shard records its compute
	// span into its own fixed slot; the orchestrator fills in sync gaps
	// and bubbles after each barrier.
	rec       *timeline.Recorder
	curBatch  *timeline.Batch
	execStart time.Time

	// pprof goroutine labels: pprofBase is the serving layer's labelled
	// context (model=...); pprofCtxs[k] adds ipu=k. Workers apply their
	// label lazily on wake (workerCtx[k] is each worker's privately-owned
	// last-applied marker); the orchestrator wears pprofCtxs[0] for the
	// span of Execute.
	pprofBase context.Context
	pprofCtxs []context.Context
	workerCtx []context.Context

	// Orchestration state: the orchestrator publishes curDst/curX/stepIdx,
	// wakes the workers through their start channels (the channel send is
	// the happens-before edge), runs shard 0 inline, and collects one done
	// token per worker as the barrier.
	curDst, curX *tensor.Matrix
	stepIdx      int
	start        []chan struct{}
	done         chan struct{}
	quit         chan struct{}

	// Wavefront state (pipeline lowerings compiled at micro > 1 with at
	// least two stages; nil stageFirst means the barrier loop runs).
	// A batch splits into waveM = min(micro, rows) contiguous row chunks
	// streamed through the stages GPipe-style: stage k runs micro-batch j
	// while stage k+1 runs j−1. Each stage owns a contiguous micro-step
	// range, private ping-pong scratch for intra-stage activations, and a
	// double-buffered handoff arena per boundary; ready/free token
	// channels replace the global barrier with stage-local handoffs.
	micro      int             // configured wavefront width (1 = barrier loop)
	waveM      int             // effective width of the current batch
	wave       bool            // mode flag workers read after their start token
	rowPts     []int           // micro+1 row boundaries of the current batch
	stageFirst []int           // per stage: first owned micro-step
	stageLast  []int           // per stage: last owned micro-step
	scratch    [][2][]float32  // per stage: intra-stage ping-pong arenas
	hand       [][2][]float32  // per boundary: double-buffered handoff
	ready      []chan struct{} // per boundary: micro-batch produced
	free       []chan struct{} // per boundary: handoff slot free (primed 2)
	outBuf     []float32       // final stage's full-batch output arena
	wfOut      tensor.Matrix   // returned header over outBuf
	wfDst      []tensor.Matrix // per stage: reusable kernel dst header
	wfSrc      []tensor.Matrix // per stage: reusable kernel src header
	// Per-stage finish offset of the current batch (nanos from
	// execStart), written by each stage before its done token when a
	// timeline batch is being recorded — the orchestrator turns the gap
	// to the batch's wall into the residual drain bubble.
	stageEndNanos []int64
}

// ShardedPlan is a compiled multi-IPU inference program. Like nn.Plan it
// owns its activation buffers and must not be used from two goroutines at
// once; pool instances for concurrent serving.
type ShardedPlan struct {
	e        *engine
	topo     Topology
	strategy Strategy
	cost     Cost
}

// Compile partitions a compiled plan across shards IPUs of the topology,
// letting the cost planner choose the strategy: tensor-parallel when every
// layer is splittable and its modelled latency (compute/S plus all-gather
// and butterfly exchange rounds) beats pipeline's, pipeline otherwise.
// Pipeline plans also inherit the planner's wavefront width (the
// micro-batch count minimizing modelled latency). shards must be a power
// of two within the topology.
func Compile(pl *nn.Plan, topo Topology, shards int) (*ShardedPlan, error) {
	cost, err := Estimate(pl, pl.MaxBatch(), shards, topo)
	if err != nil {
		return nil, err
	}
	return CompileMicro(pl, topo, shards, cost.Strategy, cost.MicroBatches)
}

// CompileWith is Compile with the partitioning strategy forced and the
// classic one-batch barrier loop pinned — the hook the equivalence tests
// use to cover both lowerings at every shard count.
func CompileWith(pl *nn.Plan, topo Topology, shards int, strategy Strategy) (*ShardedPlan, error) {
	return CompileMicro(pl, topo, shards, strategy, 1)
}

// CompileMicro is CompileWith with the pipeline wavefront width forced:
// micro 0 lets the cost model pick, 1 pins the barrier loop, and micro
// > 1 compiles the multi-micro-batch wavefront executor (pipeline
// strategy with at least two effective stages; tensor-parallel plans
// ignore micro). Execute stays bit-for-bit identical to nn.Plan.Execute
// at every width — micro-batches are contiguous row slices and every
// kernel is row-wise.
func CompileMicro(pl *nn.Plan, topo Topology, shards int, strategy Strategy, micro int) (*ShardedPlan, error) {
	topo = topo.withDefaults()
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("shard: shard count %d must be a positive power of two", shards)
	}
	if shards > topo.NumIPUs {
		return nil, fmt.Errorf("shard: %d shards exceed topology of %d IPUs", shards, topo.NumIPUs)
	}
	// Effective engine width: a pipeline stage must own at least one
	// step, so shard counts past the plan's step count clamp — trailing
	// IPUs would otherwise idle every step, skewing the per-IPU phase
	// accounting and the bubble gauge (the cost model clamps identically
	// and surfaces the depth as Cost.PipelineStages).
	eff := shards
	if strategy == Pipeline {
		if n := pl.NumSteps(); eff > n {
			eff = n
		}
	}
	var steps []step
	var err error
	switch strategy {
	case TensorParallel:
		steps, err = lowerTensorParallel(pl, shards)
	case Pipeline:
		steps, err = lowerPipeline(pl, eff)
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	cost, err := estimateMicro(pl, pl.MaxBatch(), shards, topo, strategy, micro)
	if err != nil {
		return nil, err
	}

	e := &engine{
		shards:   eff,
		maxBatch: pl.MaxBatch(),
		in:       pl.InputWidth(),
		out:      pl.OutputWidth(),
		steps:    steps,
		micro:    1,
		done:     make(chan struct{}, eff),
		quit:     make(chan struct{}),
	}
	if strategy == Pipeline && cost.MicroBatches > 1 {
		e.micro = cost.MicroBatches
	}
	maxW := 0
	for _, st := range steps {
		if st.cols > maxW {
			maxW = st.cols
		}
	}
	e.bufA = make([]float32, e.maxBatch*maxW)
	e.bufB = make([]float32, e.maxBatch*maxW)
	e.stepNanos = make([]int64, len(steps))
	e.computeNanos = make([]int64, eff)

	// Annotate each micro-step with its share of the source plan step's
	// kernel accounting figures and modelled cost: a source step lowered
	// into M micro-steps (a butterfly's per-stage sweeps) spreads its
	// per-row flops/bytes and modelled compute evenly over the M, so the
	// totals match the plan's own accounting exactly.
	counts := make([]int, pl.NumSteps())
	for i := range steps {
		counts[steps[i].src]++
	}
	e.kern = make([]obs.Kernel, len(steps))
	e.variants = make([]string, len(steps))
	e.flopsPerRow = make([]int64, len(steps))
	e.bytesPerRow = make([]int64, len(steps))
	for i := range steps {
		src := steps[i].src
		n := int64(counts[src])
		e.kern[i] = pl.StepKernel(src)
		e.variants[i] = steps[i].variant
		e.flopsPerRow[i] = pl.StepFlopsPerRow(src) / n
		e.bytesPerRow[i] = pl.StepArenaBytesPerRow(src) / n
	}
	e.modelCompSec, e.modelExchSec = modelledMicroPhases(pl, steps, pl.MaxBatch(), eff, topo, strategy)
	e.modelSec = make([]float64, len(steps))
	for i := range e.modelSec {
		e.modelSec[i] = e.modelCompSec[i] + e.modelExchSec[i]
	}
	if e.micro > 1 && eff > 1 {
		e.buildWavefront()
	}
	e.workerCtx = make([]context.Context, eff)
	e.ws = make([]*tensor.Workspace, eff)
	for k := range e.ws {
		e.ws[k] = tensor.NewWorkspace()
	}
	for k := 1; k < eff; k++ {
		c := make(chan struct{}, 1)
		e.start = append(e.start, c)
		go e.workerLoop(k, c)
	}
	p := &ShardedPlan{e: e, topo: topo, strategy: strategy, cost: cost}
	// Workers park on their start channels; if the plan is dropped without
	// Close (pooled plans are), the finalizer releases them.
	runtime.SetFinalizer(p, func(sp *ShardedPlan) { sp.e.stop() })

	// Two warm-up executions, as in nn.CompilePlan: the first records
	// every per-shard workspace's demand, the second runs with the arenas
	// at their exact steady-state size.
	warm := tensor.New(e.maxBatch, e.in)
	for i := 0; i < 2; i++ {
		if _, err := p.Execute(warm); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// buildWavefront sizes the wavefront executor's stage-local state: the
// owned micro-step range per stage, per-stage scratch and per-boundary
// handoff arenas (each sized for the largest micro-batch,
// ceil(maxBatch/micro) rows), the token channels, and the full-batch
// output arena the final stage writes row slices into. Everything is
// preallocated here so Execute stays allocation-free.
func (e *engine) buildWavefront() {
	S := e.shards
	e.stageFirst = make([]int, S)
	e.stageLast = make([]int, S)
	for s := range e.stageFirst {
		e.stageFirst[s] = -1
	}
	for i := range e.steps {
		for k, f := range e.steps[i].run {
			if f == nil {
				continue
			}
			if e.stageFirst[k] < 0 {
				e.stageFirst[k] = i
			}
			e.stageLast[k] = i
		}
	}
	microCap := (e.maxBatch + e.micro - 1) / e.micro
	e.rowPts = make([]int, e.micro+1)
	e.scratch = make([][2][]float32, S)
	e.hand = make([][2][]float32, S-1)
	e.ready = make([]chan struct{}, S-1)
	e.free = make([]chan struct{}, S-1)
	for s := 0; s < S; s++ {
		w := 0
		for i := e.stageFirst[s]; i < e.stageLast[s]; i++ {
			if e.steps[i].cols > w {
				w = e.steps[i].cols
			}
		}
		if w > 0 {
			e.scratch[s] = [2][]float32{
				make([]float32, microCap*w),
				make([]float32, microCap*w),
			}
		}
		if s < S-1 {
			bw := e.steps[e.stageLast[s]].cols
			e.hand[s] = [2][]float32{
				make([]float32, microCap*bw),
				make([]float32, microCap*bw),
			}
			e.ready[s] = make(chan struct{}, e.micro)
			e.free[s] = make(chan struct{}, 2)
			e.free[s] <- struct{}{}
			e.free[s] <- struct{}{}
		}
	}
	e.outBuf = make([]float32, e.maxBatch*e.out)
	e.wfDst = make([]tensor.Matrix, S)
	e.wfSrc = make([]tensor.Matrix, S)
	e.stageEndNanos = make([]int64, S)
}

// Shards returns the number of modelled IPUs the plan runs on — for
// pipeline plans, the effective stage count after clamping to the
// plan's step count.
func (p *ShardedPlan) Shards() int { return p.e.shards }

// MicroBatches returns the wavefront width the plan executes full
// batches at (1 = classic barrier loop).
func (p *ShardedPlan) MicroBatches() int { return p.e.micro }

// Strategy returns the partitioning the planner (or caller) chose.
func (p *ShardedPlan) Strategy() Strategy { return p.strategy }

// Cost returns the modelled per-IPU memory and exchange cost of one batch.
func (p *ShardedPlan) Cost() Cost { return p.cost }

// MaxBatch returns the largest row count Execute accepts.
func (p *ShardedPlan) MaxBatch() int { return p.e.maxBatch }

// InputWidth returns the feature width the plan expects.
func (p *ShardedPlan) InputWidth() int { return p.e.in }

// OutputWidth returns the width of the result matrix.
func (p *ShardedPlan) OutputWidth() int { return p.e.out }

// Steps returns the micro-step names in execution order.
func (p *ShardedPlan) Steps() []string {
	names := make([]string, len(p.e.steps))
	for i := range p.e.steps {
		names[i] = p.e.steps[i].name
	}
	return names
}

// StepKernel returns the Into-kernel family micro-step i executes — the
// attribution key of the per-kernel accounting, inherited from the
// source plan step.
func (p *ShardedPlan) StepKernel(i int) obs.Kernel { return p.e.kern[i] }

// StepVariant returns the micro-kernel variant name of micro-step i.
func (p *ShardedPlan) StepVariant(i int) string { return p.e.variants[i] }

// StepVariants returns the variant name of every micro-step, in
// execution order (index-aligned with Steps).
func (p *ShardedPlan) StepVariants() []string {
	out := make([]string, len(p.e.variants))
	copy(out, p.e.variants)
	return out
}

// Execute runs the sharded program over x (rows in [1, MaxBatch], cols ==
// InputWidth), dispatching each micro-step to the goroutine-per-IPU pool
// and barriering between steps. The result aliases plan-owned memory,
// valid until the next Execute. Output is bit-for-bit identical to the
// unsharded nn.Plan.Execute (and hence to Sequential.Infer).
func (p *ShardedPlan) Execute(x *tensor.Matrix) (*tensor.Matrix, error) {
	// The cleanup finalizer closes e.quit; without this the GC may deem p
	// dead the moment e is loaded (a caller's last use of p can be this
	// very call) and stop the workers mid-execution, deadlocking the
	// barrier below.
	defer runtime.KeepAlive(p)
	e := p.e
	if x.Cols != e.in {
		return nil, fmt.Errorf("%w: got %d columns, plan expects %d", nn.ErrPlanWidth, x.Cols, e.in)
	}
	if x.Rows < 1 || x.Rows > e.maxBatch {
		return nil, fmt.Errorf("%w: got %d rows, plan accepts 1..%d", nn.ErrPlanBatch, x.Rows, e.maxBatch)
	}
	for k := range e.computeNanos {
		e.computeNanos[k] = 0
	}
	// Sampled batches get a pooled event buffer; the common case is nil
	// and every timeline branch below is a single pointer test. curBatch
	// and execStart are published to the workers by the first step's
	// channel sends.
	tb := e.rec.Sample()
	if e.stageFirst != nil && x.Rows > 1 {
		return e.executeWave(x, tb)
	}
	if tb != nil {
		tb.Begin(len(e.steps), e.shards, x.Rows)
	}
	e.curBatch = tb
	if e.pprofCtxs != nil {
		// Wear ipu=0 for the inline shard's spans; restored below.
		pprof.SetGoroutineLabels(e.pprofCtxs[0])
	}
	execStart := time.Now()
	e.execStart = execStart
	cur := x
	useA := true
	for i := range e.steps {
		st := &e.steps[i]
		act, buf := &e.actB, e.bufB
		if useA {
			act, buf = &e.actA, e.bufA
		}
		act.Rows, act.Cols = x.Rows, st.cols
		act.Data = buf[:x.Rows*st.cols]
		e.curDst, e.curX, e.stepIdx = act, cur, i
		t0 := time.Now()
		for _, c := range e.start {
			c <- struct{}{}
		}
		e.runShard(0, st)
		for range e.start {
			<-e.done
		}
		e.stepNanos[i] = time.Since(t0).Nanoseconds()
		if e.kstats != nil {
			rows := int64(x.Rows)
			e.kstats.Record(e.kern[i], rows*e.flopsPerRow[i], rows*e.bytesPerRow[i], e.stepNanos[i])
		}
		if tb != nil {
			e.recordStepGaps(tb, i, t0.Sub(execStart).Nanoseconds(), e.stepNanos[i])
		}
		cur = act
		useA = !useA
	}
	e.wallNanos = time.Since(execStart).Nanoseconds()
	if e.pprofCtxs != nil {
		pprof.SetGoroutineLabels(e.pprofBase)
	}
	if tb != nil {
		e.curBatch = nil
		e.rec.Finish(tb, e.wallNanos)
	}
	return cur, nil
}

// recordStepGaps fills in everything but the compute spans of micro-step
// i, after its barrier: for idle shards a bubble covering the whole step
// (pipeline fill/drain — tensor-parallel lowering gives every shard a
// kernel on every step), and for working shards the gap between their
// kernel's return and the barrier's close — exchange when the cost model
// prices IPU-Link traffic into this micro-step, barrier_wait otherwise.
// The barrier's done-tokens order the workers' compute-span writes
// before these reads.
func (e *engine) recordStepGaps(tb *timeline.Batch, i int, stepOff, stepDur int64) {
	st := &e.steps[i]
	gapPhase := timeline.BarrierWait
	if e.modelExchSec[i] > 0 {
		gapPhase = timeline.Exchange
	}
	stepEnd := stepOff + stepDur
	for k := 0; k < e.shards; k++ {
		if st.run[k] == nil {
			tb.Record(i, k, timeline.LaneWork, timeline.Bubble, stepOff, stepDur)
			continue
		}
		work := tb.Work(i, k)
		gapStart := work.StartNanos + work.DurNanos
		if gap := stepEnd - gapStart; gap > 0 {
			tb.Record(i, k, timeline.LaneSync, gapPhase, gapStart, gap)
		}
	}
}

// executeWave runs the multi-micro-batch wavefront schedule: the batch
// splits into waveM = min(micro, rows) contiguous row chunks, every
// stage (worker goroutine; stage 0 inline) streams all chunks through
// its owned step range, and stage-local ready/free tokens replace the
// global per-step barrier — stage k computes micro-batch j while stage
// k+1 computes j−1, so fill/drain shrinks from (S−1)/S of a stage's
// wall to (S−1)/(S−1+waveM).
func (e *engine) executeWave(x *tensor.Matrix, tb *timeline.Batch) (*tensor.Matrix, error) {
	waveM := e.micro
	if waveM > x.Rows {
		waveM = x.Rows
	}
	if tb != nil {
		tb.BeginMicro(len(e.steps), waveM, e.shards, x.Rows)
	}
	e.curBatch = tb
	for i := range e.stepNanos {
		e.stepNanos[i] = 0
	}
	e.waveM = waveM
	for j := 0; j <= waveM; j++ {
		e.rowPts[j] = j * x.Rows / waveM
	}
	e.curX = x
	e.wave = true
	if e.pprofCtxs != nil {
		pprof.SetGoroutineLabels(e.pprofCtxs[0])
	}
	execStart := time.Now()
	e.execStart = execStart
	// One wake per worker per batch (not per step): each stage drains
	// every micro-batch before sending its done token.
	for _, c := range e.start {
		c <- struct{}{}
	}
	e.runStage(0)
	for range e.start {
		<-e.done
	}
	e.wave = false
	e.wallNanos = time.Since(execStart).Nanoseconds()
	if e.kstats != nil {
		rows := int64(x.Rows)
		for i := range e.steps {
			e.kstats.Record(e.kern[i], rows*e.flopsPerRow[i], rows*e.bytesPerRow[i], e.stepNanos[i])
		}
	}
	if e.pprofCtxs != nil {
		pprof.SetGoroutineLabels(e.pprofBase)
	}
	if tb != nil {
		// Residual drain: every stage but the last finished before the
		// batch's wall and idles through the tail of the wavefront.
		// Recorded one virtual step past the stage's range so the trace
		// classifier names it bubble/drain.
		for k := 0; k < e.shards-1; k++ {
			if gap := e.wallNanos - e.stageEndNanos[k]; gap > 0 {
				tb.RecordMicro(e.stageLast[k]+1, waveM-1, k,
					timeline.LaneWork, timeline.Bubble, e.stageEndNanos[k], gap)
			}
		}
		e.curBatch = nil
		e.rec.Finish(tb, e.wallNanos)
	}
	e.wfOut.Rows, e.wfOut.Cols = x.Rows, e.out
	e.wfOut.Data = e.outBuf[:x.Rows*e.out]
	return &e.wfOut, nil
}

// runStage streams every micro-batch of the current wavefront batch
// through stage k's owned micro-steps. Called by worker k (stage 0 by
// the orchestrator inline). All state it touches is stage-owned or
// ordered by the token channels.
func (e *engine) runStage(k int) {
	first, last := e.stageFirst[k], e.stageLast[k]
	tb := e.curBatch
	w := e.ws[k]
	x := e.curX
	S := e.shards
	inW := e.in
	if k > 0 {
		inW = e.steps[e.stageLast[k-1]].cols
	}
	gapPhase := timeline.BarrierWait
	if k > 0 && e.modelExchSec[first-1] > 0 {
		gapPhase = timeline.Exchange
	} else if k == 0 && e.modelExchSec[last] > 0 {
		gapPhase = timeline.Exchange
	}
	for j := 0; j < e.waveM; j++ {
		lo, hi := e.rowPts[j], e.rowPts[j+1]
		nr := hi - lo
		// Acquire the input (upstream ready token) and the output slot
		// (downstream free token). The combined wait is this stage's
		// pipeline fill on the first micro-batch, a wavefront stall
		// after; stage 0 records its (backpressure-only) wait one step
		// past its range so it lands on an unused slot.
		var waitStart time.Time
		if tb != nil {
			waitStart = time.Now()
		}
		if k > 0 {
			<-e.ready[k-1]
		}
		if k < S-1 {
			<-e.free[k]
		}
		if tb != nil {
			off := waitStart.Sub(e.execStart).Nanoseconds()
			if dur := time.Since(waitStart).Nanoseconds(); dur > 0 {
				switch {
				case k == 0:
					tb.RecordMicro(last+1, j, k, timeline.LaneSync, gapPhase, off, dur)
				case j == 0:
					tb.RecordMicro(first-1, j, k, timeline.LaneWork, timeline.Bubble, off, dur)
				default:
					tb.RecordMicro(first-1, j, k, timeline.LaneSync, gapPhase, off, dur)
				}
			}
		}
		src, dst := &e.wfSrc[k], &e.wfDst[k]
		if k == 0 {
			src.Rows, src.Cols = nr, inW
			src.Data = x.Data[lo*inW : hi*inW]
		} else {
			src.Rows, src.Cols = nr, inW
			src.Data = e.hand[k-1][j&1][:nr*inW]
		}
		par := 0
		for i := first; i <= last; i++ {
			st := &e.steps[i]
			var data []float32
			switch {
			case i == last && k == S-1:
				data = e.outBuf[lo*e.out : hi*e.out]
			case i == last:
				data = e.hand[k][j&1]
			default:
				data = e.scratch[k][par]
				par ^= 1
			}
			dst.Rows, dst.Cols = nr, st.cols
			dst.Data = data[:nr*st.cols]
			w.Reset()
			t0 := time.Now()
			st.run[k](dst, src, w)
			d := time.Since(t0).Nanoseconds()
			e.stepNanos[i] += d
			e.computeNanos[k] += d
			if tb != nil {
				tb.RecordMicro(i, j, k, timeline.LaneWork, timeline.Compute,
					t0.Sub(e.execStart).Nanoseconds(), d)
			}
			if i == first && k > 0 {
				// The handoff input is consumed; let the upstream stage
				// overwrite the slot (micro-batch j+2 reuses it).
				e.free[k-1] <- struct{}{}
			}
			src, dst = dst, src
		}
		if k < S-1 {
			e.ready[k] <- struct{}{}
		}
	}
	if tb != nil {
		e.stageEndNanos[k] = time.Since(e.execStart).Nanoseconds()
	}
}

// SetKernelStats installs (or, with nil, removes) the per-kernel
// accounting sink Execute reports each micro-step's flops, arena bytes
// and measured time into — the sharded counterpart of
// nn.Plan.SetKernelStats. The sink is internally synchronized; only the
// orchestrator goroutine records.
func (p *ShardedPlan) SetKernelStats(ks *obs.KernelStats) { p.e.kstats = ks }

// SetTimeline installs (or, with nil, removes) the BSP phase flight
// recorder Execute samples batches into: per-shard compute spans,
// post-kernel exchange/barrier gaps, and pipeline fill/drain bubbles.
// With no recorder installed Execute emits no events at all. Must be
// called from the executing goroutine (the plan is single-caller, like
// SetKernelStats).
func (p *ShardedPlan) SetTimeline(rec *timeline.Recorder) { p.e.rec = rec }

// SetPprofLabels gives the execution goroutines pprof labels derived
// from base (the serving layer's model-labelled context) with ipu=<k>
// added per shard: workers pin theirs on next wake, and Execute wears
// ipu=0 for its inline shard. Idempotent per base context, so the
// serving layer can call it every batch for free.
func (p *ShardedPlan) SetPprofLabels(base context.Context) {
	e := p.e
	if base == nil || base == e.pprofBase {
		return
	}
	ctxs := make([]context.Context, e.shards)
	for k := range ctxs {
		ctxs[k] = pprof.WithLabels(base, pprof.Labels("ipu", strconv.Itoa(k)))
	}
	e.pprofBase = base
	e.pprofCtxs = ctxs
}

// ModelledPhaseSeconds returns the modelled per-micro-step seconds of
// one MaxBatch execution split by BSP phase (compute, exchange);
// element-wise they sum to ModelledStepSeconds. Slices are plan-owned —
// copy to modify.
func (p *ShardedPlan) ModelledPhaseSeconds() (compute, exchange []float64) {
	return p.e.modelCompSec, p.e.modelExchSec
}

// ModelledStepSeconds returns the modelled duration of each micro-step of
// one MaxBatch execution under the plan's topology and strategy
// (index-aligned with Steps/LastStepNanos): the source plan step's
// modelled compute spread over its micro-steps, with the step's exchange
// time charged to the last of them. The slice is plan-owned — copy to
// modify. Dividing by MaxBatch gives the per-row modelled cost the drift
// detector compares measured wall-clock against.
func (p *ShardedPlan) ModelledStepSeconds() []float64 { return p.e.modelSec }

// LastStepNanos returns the wall-clock duration, in nanoseconds, of each
// barrier-delimited micro-step of the most recent Execute (index-aligned
// with Steps). Plan-owned, overwritten by the next Execute.
func (p *ShardedPlan) LastStepNanos() []int64 { return p.e.stepNanos }

// LastComputeNanos returns each modelled IPU's accumulated kernel time
// over the most recent Execute — the measured per-shard compute phase.
// Plan-owned, overwritten by the next Execute.
func (p *ShardedPlan) LastComputeNanos() []int64 { return p.e.computeNanos }

// LastWallNanos returns the wall-clock duration of the most recent
// Execute. Wall minus the slowest shard's compute is the host-side
// proxy for the sync + exchange overhead the Cost model prices
// analytically.
func (p *ShardedPlan) LastWallNanos() int64 { return p.e.wallNanos }

// Close stops the worker goroutines. A closed plan must not be executed
// again; plans that are simply dropped are cleaned up by a finalizer, so
// calling Close is optional.
func (p *ShardedPlan) Close() {
	runtime.SetFinalizer(p, nil)
	p.e.stop()
}

func (e *engine) stop() {
	select {
	case <-e.quit:
	default:
		close(e.quit)
	}
}

func (e *engine) runShard(k int, st *step) {
	if f := st.run[k]; f != nil {
		w := e.ws[k]
		w.Reset()
		t0 := time.Now()
		f(e.curDst, e.curX, w)
		d := time.Since(t0).Nanoseconds()
		e.computeNanos[k] += d
		if tb := e.curBatch; tb != nil {
			// Each shard owns this (step, ipu) slot — lock-free write,
			// ordered before the orchestrator's read by the done token.
			tb.Record(e.stepIdx, k, timeline.LaneWork, timeline.Compute,
				t0.Sub(e.execStart).Nanoseconds(), d)
		}
	}
}

func (e *engine) workerLoop(k int, start <-chan struct{}) {
	for {
		select {
		case <-e.quit:
			return
		case <-start:
			// Apply this worker's ipu=k pprof label lazily: workerCtx[k]
			// is only ever touched by this goroutine, and pprofCtxs was
			// published by the start-channel send.
			if c := e.pprofCtxs; c != nil && e.workerCtx[k] != c[k] {
				e.workerCtx[k] = c[k]
				pprof.SetGoroutineLabels(c[k])
			}
			// e.wave was published by the start-channel send: one token
			// per batch under the wavefront (the worker drains its whole
			// stage), one per step under the barrier loop.
			if e.wave {
				e.runStage(k)
			} else {
				e.runShard(k, &e.steps[e.stepIdx])
			}
			e.done <- struct{}{}
		}
	}
}

// splitPoints returns the S+1 column boundaries slicing width columns into
// S near-equal contiguous shares: shard k owns [pts[k], pts[k+1]).
func splitPoints(width, shards int) []int {
	pts := make([]int, shards+1)
	for k := 0; k <= shards; k++ {
		pts[k] = k * width / shards
	}
	return pts
}
