package shard

import (
	"testing"

	"repro/internal/nn"
)

func TestEstimateSplitsWeightMemory(t *testing.T) {
	topo := DefaultTopology(4)
	for _, method := range []nn.Method{nn.Baseline, nn.Butterfly, nn.Pixelfly} {
		_, pl := buildPlan(t, method, 5)
		c1, err := Estimate(pl, testMaxBatch, 1, topo)
		if err != nil {
			t.Fatal(err)
		}
		c4, err := estimateWith(pl, testMaxBatch, 4, topo, TensorParallel)
		if err != nil {
			t.Fatal(err)
		}
		if c4.PerIPUWeightBytes >= c1.PerIPUWeightBytes {
			t.Errorf("%v: 4-shard per-IPU weights %d not below 1-shard %d",
				method, c4.PerIPUWeightBytes, c1.PerIPUWeightBytes)
		}
		if c1.ExchangeBytesPerBatch != 0 || c1.ExchangeSecondsPerBatch != 0 {
			t.Errorf("%v: single shard should exchange nothing, got %d bytes",
				method, c1.ExchangeBytesPerBatch)
		}
		if c4.ExchangeBytesPerBatch <= 0 || c4.ExchangeSecondsPerBatch <= 0 {
			t.Errorf("%v: 4-shard tensor parallel must pay exchange, got %d bytes",
				method, c4.ExchangeBytesPerBatch)
		}
	}
}

// TestPlannerStrategyChoice checks the fitting-then-fastest rule:
// unsplittable layers force pipeline; while everything fits, the lower
// modelled latency wins (pipeline at SHL scale — all-gathers cost more
// than the compute a split saves); and once the budget drops below
// pipeline's biggest stage (one whole dense layer — the memory wall),
// only tensor-parallel still fits and the planner must switch.
func TestPlannerStrategyChoice(t *testing.T) {
	topo := DefaultTopology(4)
	for _, method := range []nn.Method{nn.Fastfood, nn.Circulant} {
		_, pl := buildPlan(t, method, 6)
		c, err := Estimate(pl, testMaxBatch, 4, topo)
		if err != nil {
			t.Fatal(err)
		}
		if c.Strategy != Pipeline {
			t.Errorf("%v: planner chose %v, want pipeline (unsplittable)", method, c.Strategy)
		}
	}
	_, pl := buildPlan(t, nn.Baseline, 6)
	tp, err := estimateWith(pl, testMaxBatch, 4, topo, TensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := estimateWith(pl, testMaxBatch, 4, topo, Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if tp.PerIPUBytes >= pipe.PerIPUBytes {
		t.Fatalf("tensor-parallel footprint %d not below pipeline's %d (dense layer should dominate)",
			tp.PerIPUBytes, pipe.PerIPUBytes)
	}
	// Everything fits the default (full-SRAM) budget: latency decides, and
	// at this narrow width the all-gathers outweigh the compute saved.
	c, err := Estimate(pl, testMaxBatch, 4, topo)
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy != Pipeline {
		t.Errorf("roomy budget: planner chose %v, want pipeline (lower latency)", c.Strategy)
	}
	// Budget between the two footprints: pipeline cannot split the dense
	// layer, so tensor-parallel is the only strategy that fits.
	c, err = EstimateBudget(pl, testMaxBatch, 4, topo, tp.PerIPUBytes)
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy != TensorParallel {
		t.Errorf("memory wall: planner chose %v, want tensor-parallel", c.Strategy)
	}
	// Budget below both: the frugal strategy (tensor-parallel) wins.
	c, err = EstimateBudget(pl, testMaxBatch, 4, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Strategy != TensorParallel {
		t.Errorf("starved budget: planner chose %v, want tensor-parallel (frugal)", c.Strategy)
	}
}

func TestFitShardsPicksSmallest(t *testing.T) {
	topo := DefaultTopology(4)
	_, pl := buildPlan(t, nn.Baseline, 8)
	one, err := Estimate(pl, testMaxBatch, 1, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Generous budget: one shard suffices.
	c, fits, err := FitShards(pl, testMaxBatch, topo, one.PerIPUBytes+1)
	if err != nil || !fits || c.Shards != 1 {
		t.Fatalf("generous budget: shards=%d fits=%v err=%v, want 1/true/nil", c.Shards, fits, err)
	}
	// Budget below the single-chip footprint: must shard up, smallest first.
	c, fits, err = FitShards(pl, testMaxBatch, topo, one.PerIPUBytes-1)
	if err != nil || !fits {
		t.Fatalf("tight budget: fits=%v err=%v", fits, err)
	}
	if c.Shards < 2 {
		t.Fatalf("tight budget picked %d shards, want ≥ 2", c.Shards)
	}
	if c.PerIPUBytes >= one.PerIPUBytes {
		t.Fatalf("sharded footprint %d not below unsharded %d", c.PerIPUBytes, one.PerIPUBytes)
	}
	// Impossible budget: report the largest count and fits == false.
	c, fits, err = FitShards(pl, testMaxBatch, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fits || c.Shards != 4 {
		t.Fatalf("impossible budget: shards=%d fits=%v, want 4/false", c.Shards, fits)
	}
	// Zero budget defaults to the full per-IPU SRAM.
	c, fits, err = FitShards(pl, testMaxBatch, topo, 0)
	if err != nil || !fits || c.Shards != 1 {
		t.Fatalf("default budget: shards=%d fits=%v err=%v", c.Shards, fits, err)
	}
}

// TestShardedPlanReportsCost ties the compiled plan to its estimate.
func TestShardedPlanReportsCost(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 4)
	topo := DefaultTopology(4)
	sp, err := Compile(pl, topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	c := sp.Cost()
	if c.Shards != 4 || c.Batch != testMaxBatch {
		t.Fatalf("cost header %+v", c)
	}
	if c.Strategy != sp.Strategy() {
		t.Fatalf("cost strategy %v != plan strategy %v", c.Strategy, sp.Strategy())
	}
	if c.PerIPUBytes <= 0 || c.LatencySecondsPerBatch <= 0 {
		t.Fatalf("degenerate cost %+v", c)
	}
	// The butterfly's global stages must be visible as exchange steps.
	found := false
	for _, name := range sp.Steps() {
		if sp.Strategy() == TensorParallel && contains(name, "+exchange") {
			found = true
		}
	}
	if sp.Strategy() == TensorParallel && !found {
		t.Error("tensor-parallel butterfly plan lists no exchange stages")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEstimateSpecBytes checks the spec-level sizing used by the
// memory-wall sweep: splittable weights divide S ways; an unsplittable
// model pipelines and can never drop below its largest single layer.
func TestEstimateSpecBytes(t *testing.T) {
	topo := DefaultTopology(64)
	const n, batch = 1 << 14, 64
	dense := []SpecLayer{
		{OutW: n, WeightBytes: 4 * n * n, Splittable: true},
		{OutW: n, Splittable: true},
		{OutW: 10, WeightBytes: 4 * n * 10, Splittable: true},
	}
	one := EstimateSpecBytes(dense, batch, 1, topo)
	four := EstimateSpecBytes(dense, batch, 4, topo)
	if four >= one/2 {
		t.Fatalf("4-shard spec bytes %d not well below 1-shard %d", four, one)
	}
	// Flip the big layer to unsplittable: pipelining cannot shrink it.
	pipe := append([]SpecLayer(nil), dense...)
	pipe[0].Splittable = false
	p4 := EstimateSpecBytes(pipe, batch, 4, topo)
	if p4 < 4*n*n {
		t.Fatalf("pipelined spec bytes %d below the unsplittable layer's own %d", p4, 4*n*n)
	}
	if EstimateSpecBytes(dense, batch, 0, topo) != one {
		t.Fatal("shard count 0 should clamp to 1")
	}
}

// TestMicroPickEngagesWavefront is the regression for the planner never
// leaving the barrier loop: on a latency-dominated fabric (fixed
// per-message link cost ≫ SHL compute) a model that charges the fixed
// overhead once per micro-batch makes modelled latency grow with m, so
// the auto-pick returns 1 forever. With boundary messages priced as a
// pipelined stream the wavefront must win at the CI reference shape.
func TestMicroPickEngagesWavefront(t *testing.T) {
	topo := DefaultTopology(2)
	_, pl := buildPlan(t, nn.Butterfly, 3)
	for _, batch := range []int{4, testMaxBatch} {
		auto, err := EstimateBudgetMicro(pl, batch, 2, topo, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		barrier, err := EstimateBudgetMicro(pl, batch, 2, topo, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if auto.Strategy != Pipeline || barrier.Strategy != Pipeline {
			t.Fatalf("batch %d: strategies %v/%v, want pipeline", batch, auto.Strategy, barrier.Strategy)
		}
		if auto.MicroBatches <= 1 {
			t.Errorf("batch %d: auto pick stayed at the barrier loop (micro=%d)", batch, auto.MicroBatches)
		}
		if auto.LatencySecondsPerBatch >= barrier.LatencySecondsPerBatch {
			t.Errorf("batch %d: wavefront latency %v not below barrier %v",
				batch, auto.LatencySecondsPerBatch, barrier.LatencySecondsPerBatch)
		}
		// Streaming reprices the schedule, not the fabric: total exchange
		// seconds must not balloon with the wavefront width.
		if auto.ExchangeSecondsPerBatch > 1.05*barrier.ExchangeSecondsPerBatch {
			t.Errorf("batch %d: wavefront exchange %v far above barrier %v",
				batch, auto.ExchangeSecondsPerBatch, barrier.ExchangeSecondsPerBatch)
		}
	}
	// A forced width wider than the batch must clamp to the batch.
	forced, err := EstimateBudgetMicro(pl, 2, 2, topo, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if forced.MicroBatches != 2 {
		t.Errorf("forced micro 64 at batch 2: got %d, want clamp to 2", forced.MicroBatches)
	}
}
