package shard

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/fft"
	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/pixelfly"
)

// memOverhead scales raw data bytes to modelled resident bytes, standing
// in for the compiler-generated vertex/edge/exchange/control code the
// single-chip model prices in detail (Observation 3). Calibration value.
const memOverhead = 1.15

// Cost is the modelled price of executing one batch of a sharded plan on
// the topology: what each IPU must hold, and what the IPU-Link fabric
// moves. Host execution is the numerics oracle; this struct is the
// device-model verdict the serving registry budgets against.
type Cost struct {
	Shards   int      `json:"shards"`
	Strategy Strategy `json:"-"`
	Batch    int      `json:"batch"`

	// Per-IPU residency (max over shards).
	PerIPUWeightBytes     int `json:"per_ipu_weight_bytes"`
	PerIPUActivationBytes int `json:"per_ipu_activation_bytes"`
	PerIPUBytes           int `json:"per_ipu_bytes"` // overhead-scaled total

	// IPU-Link traffic of one batch (bytes sent per IPU) and its time.
	ExchangeBytesPerBatch   int     `json:"exchange_bytes"`
	ExchangeSecondsPerBatch float64 `json:"exchange_s"`

	// Modelled compute and end-to-end batch latency.
	ComputeSecondsPerBatch float64 `json:"compute_s"`
	LatencySecondsPerBatch float64 `json:"latency_s"`

	// MicroBatches is the wavefront width the latency is priced at: how
	// many micro-batches a full batch splits into under pipeline
	// partitioning (1 = the classic one-batch barrier loop; always 1
	// under tensor parallelism, which has no fill/drain to amortize).
	MicroBatches int `json:"micro_batches,omitempty"`
	// PipelineStages is the effective pipeline depth after clamping the
	// requested shard count to the plan's step count — a stage cannot own
	// less than one step, so shards beyond NumSteps would idle for the
	// whole batch. 0 under tensor parallelism.
	PipelineStages int `json:"pipeline_stages,omitempty"`
}

// StrategyName is the JSON-friendly strategy label.
func (c Cost) StrategyName() string { return c.Strategy.String() }

// stepDesc is the cost-relevant description of one plan step.
type stepDesc struct {
	outW        int
	weightBytes int     // parameter bytes that split 1/S under tensor parallelism
	replBytes   int     // bytes every shard holds regardless of count
	flops       float64 // total forward flops of the layer
	replFlops   float64 // flops every shard repeats (rank bottlenecks x·A, x·V)
	class       ipu.ComputeClass
	globalFn    func(shards int) int // butterfly: exchange rounds inside the layer
	splitErr    func(shards int) error
}

// describeStep prices one layer for the planner. Splittability defers to
// canSplit so the estimate can never disagree with the lowering.
func describeStep(l nn.Layer, outW, batch int) stepDesc {
	d := stepDesc{
		outW:     outW,
		splitErr: func(shards int) error { return canSplit(l, outW, shards) },
	}
	switch t := l.(type) {
	case *nn.Dense:
		d.weightBytes = 4 * t.ParamCount()
		d.flops = t.Flops(batch)
		d.class = ipu.ClassAMP
	case *nn.ReLU:
		d.flops = float64(batch * outW)
		d.class = ipu.ClassSIMD
	case *nn.FactorizedDense:
		d.weightBytes = 4 * (t.Rank*t.Out + t.Out)
		d.replBytes = 4 * t.Rank * t.In // A is replicated
		d.flops = t.Flops(batch)
		d.replFlops = 2 * float64(batch) * float64(t.In) * float64(t.Rank) // x·A on every shard
		d.class = ipu.ClassAMP
	case *nn.StructuredLinear:
		d.flops = t.Flops(batch)
		d.class = ipu.ClassSIMD
		switch tr := t.T.(type) {
		case *butterfly.Butterfly:
			d.weightBytes = 4 * (tr.ParamCount() + t.N)
			if tr.Perm != nil {
				d.replBytes = 8 * tr.N // the permutation table rides along
			}
			d.globalFn = func(shards int) int {
				if shards <= 1 {
					return 0
				}
				return fft.Log2(shards) // stages with stride ≥ N/S
			}
		case *baselines.LowRank:
			d.weightBytes = 4 * (tr.N*tr.Rank + t.N)                            // U slice + bias
			d.replBytes = 4 * tr.N * tr.Rank                                    // V is replicated
			d.replFlops = 2 * float64(batch) * float64(tr.N) * float64(tr.Rank) // x·V on every shard
		case *pixelfly.Pixelfly:
			d.weightBytes = 4 * (tr.ParamCount() - tr.Cfg.N*tr.Cfg.LowRank + t.N)
			d.replBytes = 4 * tr.Cfg.N * tr.Cfg.LowRank                                    // V is replicated
			d.replFlops = 2 * float64(batch) * float64(tr.Cfg.N) * float64(tr.Cfg.LowRank) // x·V
		default:
			// Unsplittable structured layer (fastfood, circulant): all of
			// it lives wherever its pipeline stage lands.
			d.weightBytes = 4 * t.ParamCount()
		}
	default:
		d.weightBytes = 4 * l.ParamCount()
		d.class = ipu.ClassScalar
	}
	return d
}

// describePlan walks the plan once. A fused step is priced as its linear
// layer plus the folded activation's elementwise pass — the activation's
// work doesn't disappear under fusion, but its arena resweep, barrier and
// per-step all-gather do (one desc instead of two is exactly that saving).
func describePlan(pl *nn.Plan, batch int) (descs []stepDesc, maxW int) {
	maxW = pl.InputWidth()
	for i := 0; i < pl.NumSteps(); i++ {
		info := pl.Step(i)
		outW := info.Cols
		if outW > maxW {
			maxW = outW
		}
		d := describeStep(info.Layer, outW, batch)
		if info.Fused() {
			d.flops += float64(batch * outW)
		}
		descs = append(descs, d)
	}
	return descs, maxW
}

// Splittable reports whether every layer of the plan admits a
// tensor-parallel split at the given shard count, and if not, why.
func Splittable(pl *nn.Plan, shards int) error {
	for i := 0; i < pl.NumSteps(); i++ {
		if err := canSplit(pl.StepLayer(i), pl.StepCols(i), shards); err != nil {
			return fmt.Errorf("shard: step %d (%s): %w", i, pl.Steps()[i], err)
		}
	}
	return nil
}

// maxAutoMicro caps the planner-chosen wavefront width. The bubble
// fraction (S−1)/(S−1+M) has diminishing returns in M while the
// per-message IPU-Link overhead (sync + latency) is paid once per
// micro-batch per boundary, so small widths capture nearly all of the
// win: at S=2, M=4 already cuts the bubble from 0.5 to 0.2.
const maxAutoMicro = 4

// Estimate prices the plan at the given batch and shard count with the
// per-IPU budget defaulting to the full chip SRAM.
func Estimate(pl *nn.Plan, batch, shards int, topo Topology) (Cost, error) {
	return EstimateBudget(pl, batch, shards, topo, 0)
}

// EstimateBudget prices the plan and picks the strategy
// fitting-then-fastest: among the candidates whose per-IPU footprint fits
// budgetBytes (0 = the chip's SRAM), the lower modelled latency wins; if
// neither fits, the more memory-frugal one does. Pipeline usually wins on
// latency at SHL scale — the all-gathers cost more than the compute a
// split saves — but pipeline can never split a single layer, so once one
// weight matrix outgrows the budget (the paper's memory wall), only
// tensor-parallel still fits and the planner switches. Unsplittable
// layers (fastfood, circulant, generic fallbacks) force pipeline.
func EstimateBudget(pl *nn.Plan, batch, shards int, topo Topology, budgetBytes int) (Cost, error) {
	return EstimateBudgetMicro(pl, batch, shards, topo, budgetBytes, 0)
}

// EstimateBudgetMicro is EstimateBudget with the pipeline wavefront
// width pinned: micro 0 lets the planner pick the width minimizing
// modelled latency (up to maxAutoMicro), micro 1 prices the classic
// barrier loop, micro > 1 forces that width. Tensor-parallel pricing
// ignores micro — it has no pipeline bubble to amortize.
func EstimateBudgetMicro(pl *nn.Plan, batch, shards int, topo Topology, budgetBytes, micro int) (Cost, error) {
	topo = topo.withDefaults()
	if budgetBytes <= 0 {
		budgetBytes = topo.IPU.TotalMemBytes()
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return Cost{}, fmt.Errorf("shard: shard count %d must be a positive power of two", shards)
	}
	if shards > topo.NumIPUs {
		return Cost{}, fmt.Errorf("shard: %d shards exceed topology of %d IPUs", shards, topo.NumIPUs)
	}
	pipe, err := estimateMicro(pl, batch, shards, topo, Pipeline, micro)
	if err != nil {
		return Cost{}, err
	}
	if shards == 1 || Splittable(pl, shards) != nil {
		return pipe, nil
	}
	tp, err := estimateWith(pl, batch, shards, topo, TensorParallel)
	if err != nil {
		return Cost{}, err
	}
	tpFits, pipeFits := tp.PerIPUBytes <= budgetBytes, pipe.PerIPUBytes <= budgetBytes
	switch {
	case tpFits && !pipeFits:
		return tp, nil
	case pipeFits && !tpFits:
		return pipe, nil
	case tpFits && pipeFits:
		if tp.LatencySecondsPerBatch <= pipe.LatencySecondsPerBatch {
			return tp, nil
		}
		return pipe, nil
	default:
		if tp.PerIPUBytes <= pipe.PerIPUBytes {
			return tp, nil
		}
		return pipe, nil
	}
}

// estimateWith prices one specific strategy at the classic barrier-loop
// schedule (one micro-batch).
func estimateWith(pl *nn.Plan, batch, shards int, topo Topology, strategy Strategy) (Cost, error) {
	return estimateMicro(pl, batch, shards, topo, strategy, 1)
}

// estimateMicro prices one specific strategy at a pipeline wavefront
// width (micro 0 = planner-chosen, see EstimateBudgetMicro).
func estimateMicro(pl *nn.Plan, batch, shards int, topo Topology, strategy Strategy, micro int) (Cost, error) {
	topo = topo.withDefaults()
	descs, maxW := describePlan(pl, batch)
	c := Cost{Shards: shards, Strategy: strategy, Batch: batch}

	// Both strategies keep the full-width ping-pong arenas resident (the
	// gathered activations under TP, the streamed batch under pipeline)
	// plus one arena's worth of per-step scratch.
	c.PerIPUActivationBytes = 3 * 4 * batch * maxW

	rate := func(cl ipu.ComputeClass) float64 { return classRate(topo, cl) }

	switch strategy {
	case TensorParallel:
		if shards > 1 {
			if err := Splittable(pl, shards); err != nil {
				return Cost{}, err
			}
		}
		for _, d := range descs {
			c.PerIPUWeightBytes += d.weightBytes/shards + d.replBytes
			// The sliced work divides across shards; rank-bottleneck
			// products (x·A, x·V) are replicated and do not.
			split := (d.flops-d.replFlops)/float64(shards) + d.replFlops
			c.ComputeSecondsPerBatch += split / rate(d.class)
			if shards > 1 {
				// All-gather of the layer's output slices.
				slice := 4 * batch * d.outW / shards
				c.ExchangeBytesPerBatch += topo.Link.AllGatherBytes(shards, slice)
				c.ExchangeSecondsPerBatch += topo.Link.AllGatherSeconds(shards, slice)
				if d.globalFn != nil {
					// Butterfly global stages: one pairwise swap each.
					rounds := d.globalFn(shards)
					c.ExchangeBytesPerBatch += rounds * slice
					c.ExchangeSecondsPerBatch += float64(rounds) * topo.Link.PairwiseExchangeSeconds(slice)
				}
			}
		}
	case Pipeline:
		// Effective stages: pipelineOwners never assigns a stage past the
		// plan's step count, so shards beyond it would own nothing — the
		// executor clamps to the same count and the pricing must agree.
		stages := shards
		if n := pl.NumSteps(); stages > n {
			stages = n
		}
		owners := pipelineOwners(pl, stages)
		stageBytes := make([]int, stages)
		stageComp := make([]float64, stages)
		var boundaryBytes []int
		for i, d := range descs {
			stageBytes[owners[i]] += d.weightBytes + d.replBytes
			sec := d.flops / rate(d.class)
			c.ComputeSecondsPerBatch += sec
			stageComp[owners[i]] += sec
			if i+1 < len(owners) && owners[i+1] != owners[i] {
				// Activations cross one IPU-Link at the stage boundary.
				boundaryBytes = append(boundaryBytes, 4*batch*d.outW)
			}
		}
		for _, b := range stageBytes {
			if b > c.PerIPUWeightBytes {
				c.PerIPUWeightBytes = b
			}
		}
		c.PipelineStages = stages
		c.MicroBatches = pickMicro(stageComp, boundaryBytes, batch, topo, micro)
		c.ExchangeBytesPerBatch, c.ExchangeSecondsPerBatch,
			c.LatencySecondsPerBatch = pipelineSchedule(stageComp, boundaryBytes, topo, c.MicroBatches)
	default:
		return Cost{}, fmt.Errorf("shard: unknown strategy %v", strategy)
	}

	c.PerIPUBytes = int(memOverhead * float64(c.PerIPUWeightBytes+c.PerIPUActivationBytes))
	if c.LatencySecondsPerBatch == 0 {
		c.LatencySecondsPerBatch = c.ComputeSecondsPerBatch + c.ExchangeSecondsPerBatch
	}
	return c, nil
}

// pipelineSchedule prices one batch of a pipeline at wavefront width m:
// the exchange bytes/seconds the IPU-Link fabric moves and the modelled
// end-to-end latency. At m == 1 this is the classic serial schedule —
// every stage and every boundary hop in sequence. At m > 1 the batch
// streams as m micro-batches: the steady-state tick is the slowest
// stage's per-micro-batch compute or the slowest boundary's
// per-micro-batch wire time (exchange overlaps the other stages'
// compute, and only the stream head pays the fixed link overhead);
// on a balanced pipeline the schedule spans m+S−1 ticks, making
// fill/drain the (S−1)/(S−1+m) share the ROADMAP's overlap item names.
func pipelineSchedule(stageComp []float64, boundaryBytes []int, topo Topology, m int) (exBytes int, exSec, latency float64) {
	for _, b := range boundaryBytes {
		exBytes += b
	}
	if m <= 1 {
		var comp float64
		for _, s := range stageComp {
			comp += s
		}
		for _, b := range boundaryBytes {
			exSec += topo.Link.PointToPointSeconds(b)
		}
		return exBytes, exSec, comp + exSec
	}
	// Linear-pipeline makespan: the first micro-batch traverses every
	// stage and boundary hop once (sum of per-micro-batch service times),
	// and each of the remaining m−1 micro-batches adds one tick of the
	// bottleneck resource. Exact for unbalanced stages too — the naive
	// (m+S−1)×tick form overprices skewed pipelines and would make the
	// planner wrongly prefer the barrier loop.
	//
	// Boundary messages stream: the m micro-batch transfers on one
	// boundary are back-to-back messages on the same link, so the fixed
	// sync+latency is paid once by the stream head and each subsequent
	// message lands one wire-time later (LinkConfig.WireSeconds). Charging
	// the fixed overhead m times would make modelled latency grow
	// monotonically with m on latency-dominated fabrics and the planner
	// would never leave the barrier loop.
	var chain, tick float64
	for _, s := range stageComp {
		u := s / float64(m)
		chain += u
		if u > tick {
			tick = u
		}
	}
	for _, b := range boundaryBytes {
		per := (b + m - 1) / m
		head := topo.Link.PointToPointSeconds(per)
		wire := topo.Link.WireSeconds(per)
		chain += head
		exSec += head + float64(m-1)*wire
		if wire > tick {
			tick = wire
		}
	}
	latency = chain + float64(m-1)*tick
	return exBytes, exSec, latency
}

// pickMicro resolves the wavefront width: a forced micro is clamped to
// the batch (a 3-row batch cannot split 4 ways); micro 0 scans the
// power-of-two widths up to maxAutoMicro for the lowest modelled
// latency. Single-stage pipelines have no bubble and always run at 1.
func pickMicro(stageComp []float64, boundaryBytes []int, batch int, topo Topology, micro int) int {
	if len(stageComp) <= 1 {
		return 1
	}
	if micro > 0 {
		if micro > batch {
			micro = batch
		}
		if micro < 1 {
			micro = 1
		}
		return micro
	}
	best, bestLat := 1, -1.0
	for m := 1; m <= maxAutoMicro && m <= batch; m *= 2 {
		_, _, lat := pipelineSchedule(stageComp, boundaryBytes, topo, m)
		if bestLat < 0 || lat < bestLat {
			best, bestLat = m, lat
		}
	}
	return best
}

// classRate is the topology's modelled aggregate flop rate for one
// compute class: tiles × per-tile flops/cycle × clock.
func classRate(topo Topology, cl ipu.ComputeClass) float64 {
	return float64(topo.IPU.Tiles) * topo.IPU.ClassRate(cl) * topo.IPU.ClockHz
}

// PlanStepSeconds returns the modelled single-IPU duration of each step of
// one batch of the unsharded plan (index-aligned with pl.Steps) — the same
// per-class compute pricing estimateWith charges, without exchange. This
// is the analytic baseline the serving layer's cost-model drift detector
// lines the plan's measured LastStepNanos up against.
func PlanStepSeconds(pl *nn.Plan, batch int, topo Topology) []float64 {
	topo = topo.withDefaults()
	descs, _ := describePlan(pl, batch)
	out := make([]float64, len(descs))
	for i, d := range descs {
		out[i] = d.flops / classRate(topo, d.class)
	}
	return out
}

// modelledMicroPhases prices each lowered micro-step, split by BSP
// phase: the source plan step's modelled compute under the strategy
// (split across shards for tensor parallel, whole for pipeline) spread
// evenly over its micro-steps, and the step's exchange time (all-gather
// / butterfly pairwise rounds / pipeline boundary hop) charged to the
// step's last micro-step — the barrier where the host actually waits
// for it. The timeline recorder consumes the split; ModelledStepSeconds
// exposes the sum.
func modelledMicroPhases(pl *nn.Plan, steps []step, batch, shards int, topo Topology, strategy Strategy) (computeSec, exchangeSec []float64) {
	topo = topo.withDefaults()
	descs, _ := describePlan(pl, batch)
	n := len(descs)
	compute := make([]float64, n)
	exchange := make([]float64, n)
	switch strategy {
	case TensorParallel:
		if shards > 1 {
			for i, d := range descs {
				split := (d.flops-d.replFlops)/float64(shards) + d.replFlops
				compute[i] = split / classRate(topo, d.class)
				slice := 4 * batch * d.outW / shards
				exchange[i] = topo.Link.AllGatherSeconds(shards, slice)
				if d.globalFn != nil {
					exchange[i] += float64(d.globalFn(shards)) * topo.Link.PairwiseExchangeSeconds(slice)
				}
			}
			break
		}
		fallthrough
	case Pipeline:
		owners := pipelineOwners(pl, shards)
		for i, d := range descs {
			compute[i] = d.flops / classRate(topo, d.class)
			if i+1 < len(owners) && owners[i+1] != owners[i] {
				exchange[i] = topo.Link.PointToPointSeconds(4 * batch * d.outW)
			}
		}
	}
	counts := make([]int, n)
	last := make([]int, n)
	for mi := range steps {
		s := steps[mi].src
		counts[s]++
		last[s] = mi
	}
	computeSec = make([]float64, len(steps))
	exchangeSec = make([]float64, len(steps))
	for mi := range steps {
		s := steps[mi].src
		computeSec[mi] = compute[s] / float64(counts[s])
		if mi == last[s] {
			exchangeSec[mi] = exchange[s]
		}
	}
	return computeSec, exchangeSec
}

// SpecLayer describes one layer of an unbuilt model for spec-level
// sizing: the shard-count sweep of the memory-wall experiment prices
// widths no host could materialize, so it cannot go through a compiled
// plan.
type SpecLayer struct {
	OutW            int
	WeightBytes     int // parameter bytes that divide across shards
	ReplicatedBytes int // bytes every shard holds regardless of count
	Splittable      bool
}

// EstimateSpecBytes prices the per-IPU residency of a model described
// only by per-layer byte counts, under the same arena and overhead model
// as EstimateBudget: splittable layers divide S ways (tensor parallel);
// if any layer is unsplittable the model pipelines, and the weight
// residency is the heaviest contiguous stage — never less than the
// largest single layer, which is exactly why a lone N² dense weight walls
// a pipeline but not a tensor-parallel split.
func EstimateSpecBytes(layers []SpecLayer, batch, shards int, topo Topology) int {
	topo = topo.withDefaults()
	if shards < 1 {
		shards = 1
	}
	maxW := 0
	splittable := true
	for _, l := range layers {
		if l.OutW > maxW {
			maxW = l.OutW
		}
		if !l.Splittable {
			splittable = false
		}
	}
	weights := 0
	if splittable || shards == 1 {
		for _, l := range layers {
			weights += l.WeightBytes/shards + l.ReplicatedBytes
		}
	} else {
		// Greedy contiguous stage packing, as pipelineOwners does.
		total := 0
		for _, l := range layers {
			total += l.WeightBytes + l.ReplicatedBytes
		}
		fair := (total + shards - 1) / shards
		stage, stagesUsed := 0, 1
		for _, l := range layers {
			b := l.WeightBytes + l.ReplicatedBytes
			if stage > 0 && stage+b > fair && stagesUsed < shards {
				stage = 0
				stagesUsed++
			}
			stage += b
			if stage > weights {
				weights = stage
			}
		}
	}
	acts := 3 * 4 * batch * maxW
	return int(memOverhead * float64(weights+acts))
}

// FitShards returns the smallest power-of-two shard count (≤ the
// topology) whose per-IPU footprint fits budgetBytes, with its cost. When
// even the full topology does not fit, it returns the largest available
// count and fits == false — callers may still serve, oversubscribed, or
// refuse.
func FitShards(pl *nn.Plan, batch int, topo Topology, budgetBytes int) (cost Cost, fits bool, err error) {
	topo = topo.withDefaults()
	if budgetBytes <= 0 {
		budgetBytes = topo.IPU.TotalMemBytes()
	}
	best := Cost{}
	for s := 1; s <= topo.NumIPUs; s <<= 1 {
		c, err := EstimateBudget(pl, batch, s, topo, budgetBytes)
		if err != nil {
			return Cost{}, false, err
		}
		best = c
		if c.PerIPUBytes <= budgetBytes {
			return c, true, nil
		}
	}
	return best, false, nil
}
