package shard

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/butterfly"
	"repro/internal/nn"
	"repro/internal/pixelfly"
	"repro/internal/tensor"
)

// lowerTensorParallel lowers every step of the plan into per-shard
// column-slice kernels. It fails (sending the planner to pipeline) as soon
// as one layer is not splittable. Fused steps survive the split because
// their folded bias and activation are column-local: each shard's final
// micro-step applies the epilogue inside its own column window, and only
// the (unchanged) exchange stages stay barriers.
func lowerTensorParallel(pl *nn.Plan, shards int) ([]step, error) {
	if shards == 1 {
		// A 1-shard split is the identity placement; reuse the pipeline
		// lowering, which runs every step unchanged on IPU 0.
		return lowerPipeline(pl, 1)
	}
	var steps []step
	inW := pl.InputWidth()
	for i := 0; i < pl.NumSteps(); i++ {
		info := pl.Step(i)
		l := info.Layer
		outW := info.Cols
		if err := canSplit(l, outW, shards); err != nil {
			return nil, fmt.Errorf("shard: step %d (%s): %w", i, info.Name, err)
		}
		ss := splitStep(l, info.Activation(), inW, outW, shards, pl.MicroKernel())
		for j := range ss {
			ss[j].src = i
		}
		steps = append(steps, ss...)
		inW = outW
	}
	return steps, nil
}

// canSplit reports whether a layer admits a tensor-parallel column split
// at the given shard count. The checks here are the single source of truth
// the cost planner consults, so the estimate can never disagree with the
// lowering.
func canSplit(l nn.Layer, outW, shards int) error {
	if shards == 1 {
		return nil // a 1-shard "split" is the identity lowering
	}
	switch t := l.(type) {
	case *nn.Dense:
		if t.Out < shards {
			return fmt.Errorf("dense output width %d < %d shards", t.Out, shards)
		}
		return nil
	case *nn.ReLU:
		return nil
	case *nn.FactorizedDense:
		if t.Out < shards {
			return fmt.Errorf("factorized output width %d < %d shards", t.Out, shards)
		}
		return nil
	case *nn.StructuredLinear:
		switch tr := t.T.(type) {
		case *butterfly.Butterfly:
			if tr.N%shards != 0 {
				return fmt.Errorf("butterfly width %d not divisible by %d shards", tr.N, shards)
			}
			return nil
		case *baselines.LowRank:
			if tr.N < shards {
				return fmt.Errorf("low-rank width %d < %d shards", tr.N, shards)
			}
			return nil
		case *pixelfly.Pixelfly:
			if tr.Cfg.N%(shards*tr.Cfg.BlockSize) != 0 {
				return fmt.Errorf("pixelfly slice width %d not block-aligned (block %d)",
					tr.Cfg.N/shards, tr.Cfg.BlockSize)
			}
			return nil
		default:
			// Fastfood and circulant mix every input feature into every
			// output (Hadamard sweeps / FFT), so a column slice of the
			// output still needs the full O(N log N) pass — no memory or
			// compute is saved by splitting them.
			return fmt.Errorf("transform %T is not column-splittable", t.T)
		}
	default:
		return fmt.Errorf("layer %T is not column-splittable", l)
	}
}

// splitStep lowers one layer to its tensor-parallel micro-steps, folding
// the step's fused activation (ActNone for unfused steps) into each
// shard's final column-window kernel. With micro set, the dense-family
// splits pack their per-shard weight slices and run the tiled matmul
// window kernels; the windowed butterfly and pixelfly sweeps keep their
// reference kernels (their windows cut across the micro-kernels' block
// structure). canSplit must have accepted the layer first.
func splitStep(l nn.Layer, act tensor.Activation, inW, outW, shards int, micro bool) []step {
	pts := splitPoints(outW, shards)
	switch t := l.(type) {
	case *nn.Dense:
		return []step{denseSplit(t.Name(), t.W, t.Bias, outW, pts, act, micro)}
	case *nn.FactorizedDense:
		return []step{factorizedSplit(t, pts, act, micro)}
	case *nn.ReLU:
		return []step{reluSplit(outW, pts)}
	case *nn.StructuredLinear:
		switch tr := t.T.(type) {
		case *butterfly.Butterfly:
			return butterflySplit(t.Name(), tr, t.Bias, pts, act)
		case *baselines.LowRank:
			return []step{lowRankSplit(t.Name(), tr, t.Bias, pts, act, micro)}
		case *pixelfly.Pixelfly:
			return []step{pixelflySplit(t.Name(), tr, t.Bias, pts, act)}
		}
	}
	panic(fmt.Sprintf("shard: splitStep on unsplittable layer %T", l))
}

// sliceCols copies columns [lo,hi) of w into a fresh (rows × hi-lo) matrix
// — the weight slice one shard owns.
func sliceCols(w *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(w.Rows, hi-lo)
	tensor.CopyCols(out, 0, w, lo, hi-lo)
	return out
}

// sliceRowsT copies rows [lo,hi) of u into a fresh transposed
// (u.Cols × hi-lo) matrix: out[p][j] = u[lo+j][p]. This derives one
// shard's slice of Uᵀ from an exported n×r factor.
func sliceRowsT(u *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(u.Cols, hi-lo)
	for j := lo; j < hi; j++ {
		for p := 0; p < u.Cols; p++ {
			out.Set(p, j-lo, u.At(j, p))
		}
	}
	return out
}

// fusedTag names micro-steps lowered from a fused plan step, keeping the
// sharded step listing coherent with the plan's own ("dense(256x256)/tp"
// vs "dense(256x256)+relu/tp").
func fusedTag(act tensor.Activation) string {
	if act == tensor.ActNone {
		return ""
	}
	return "+" + act.String()
}

// denseSplit: shard k computes act(x·W[:, lo:hi) + bias[lo:hi)) into its
// column window from its own slice of the weight — the Megatron-style
// split of a linear layer, each IPU holding 1/S of the N² matrix — in one
// fused pass (act is ActNone for unfused steps; the kernel's arithmetic
// chain per element is identical either way).
func denseSplit(name string, w *tensor.Matrix, bias []float32, outW int, pts []int, act tensor.Activation, micro bool) step {
	shards := len(pts) - 1
	st := step{name: name + fusedTag(act) + "/tp", cols: outW, variant: splitVariant(micro), run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		wk := sliceCols(w, lo, hi)
		bk := append([]float32(nil), bias[lo:hi]...)
		if micro {
			pwk := tensor.Pack(wk)
			st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				tensor.MatMulPackedColsBiasActInto(dst, lo, x, pwk, bk, act)
			}
			continue
		}
		st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			tensor.MatMulColsBiasActInto(dst, lo, x, wk, bk, act)
		}
	}
	return st
}

// splitVariant names the dense-family window kernels' dispatch.
func splitVariant(micro bool) string {
	if micro {
		return "tiled4x8"
	}
	return "reference"
}

// factorizedSplit: the rank-r bottleneck x·A is replicated on every shard
// (it is tiny — r ≪ out), the wide B factor is column-sliced with the
// epilogue fused into the window write.
func factorizedSplit(t *nn.FactorizedDense, pts []int, act tensor.Activation, micro bool) step {
	shards := len(pts) - 1
	st := step{name: t.Name() + fusedTag(act) + "/tp", cols: t.Out, variant: splitVariant(micro), run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	var pa *tensor.PackedB
	if micro {
		pa = tensor.Pack(t.A)
	}
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		bk := sliceCols(t.B, lo, hi)
		biask := append([]float32(nil), t.Bias[lo:hi]...)
		if micro {
			pbk := tensor.Pack(bk)
			st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				xa := ws.Take(x.Rows, t.Rank)
				tensor.MatMulPackedInto(xa, x, pa)
				tensor.MatMulPackedColsBiasActInto(dst, lo, xa, pbk, biask, act)
			}
			continue
		}
		st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			xa := ws.Take(x.Rows, t.Rank)
			tensor.MatMulInto(xa, x, t.A)
			tensor.MatMulColsBiasActInto(dst, lo, xa, bk, biask, act)
		}
	}
	return st
}

// reluSplit: elementwise, each shard clamps its own slice.
func reluSplit(width int, pts []int) step {
	shards := len(pts) - 1
	st := step{name: "relu/tp", cols: width, run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			for r := 0; r < x.Rows; r++ {
				src := x.Row(r)[lo:hi]
				out := dst.Row(r)[lo:hi]
				for i, v := range src {
					if v > 0 {
						out[i] = v
					} else {
						out[i] = 0
					}
				}
			}
		}
	}
	return st
}

// lowRankSplit: xv = x·V is replicated (rank columns only); the n-wide
// back-projection through Uᵀ is column-sliced per shard with the epilogue
// fused into the window write.
func lowRankSplit(name string, t *baselines.LowRank, bias []float32, pts []int, act tensor.Activation, micro bool) step {
	shards := len(pts) - 1
	st := step{name: name + fusedTag(act) + "/tp", cols: t.N, variant: splitVariant(micro), run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	var pv *tensor.PackedB
	if micro {
		pv = tensor.Pack(t.V)
	}
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		utk := sliceRowsT(t.U, lo, hi)
		bk := append([]float32(nil), bias[lo:hi]...)
		if micro {
			putk := tensor.Pack(utk)
			st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				xv := ws.Take(x.Rows, t.Rank)
				tensor.MatMulPackedInto(xv, x, pv)
				tensor.MatMulPackedColsBiasActInto(dst, lo, xv, putk, bk, act)
			}
			continue
		}
		st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			xv := ws.Take(x.Rows, t.Rank)
			tensor.MatMulInto(xv, x, t.V)
			tensor.MatMulColsBiasActInto(dst, lo, xv, utk, bk, act)
		}
	}
	return st
}

// pixelflySplit: shard k owns the block rows covering its output slice of
// the BSR weight (1/S of the blocks, up to support skew) plus its slice of
// the low-rank U factor; V and the input transpose are replicated. The
// fused bias and activation ride whichever kernel writes the window last —
// the low-rank residual accumulation when the layer has one, the transpose
// back to batch-major otherwise.
func pixelflySplit(name string, t *pixelfly.Pixelfly, bias []float32, pts []int, act tensor.Activation) step {
	shards := len(pts) - 1
	n, bs := t.Cfg.N, t.Cfg.BlockSize
	st := step{name: name + fusedTag(act) + "/tp", cols: n, variant: "reference", run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		br0, br1 := lo/bs, hi/bs
		var utk *tensor.Matrix
		if t.Cfg.LowRank > 0 {
			utk = sliceRowsT(t.U, lo, hi)
		}
		bk := append([]float32(nil), bias[lo:hi]...)
		st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			xt := ws.Take(n, x.Rows)
			tensor.TransposeInto(xt, x)
			ytk := ws.Take(hi-lo, x.Rows)
			t.W.MulDenseRowsInto(ytk, xt, br0, br1)
			if utk == nil {
				tensor.TransposeIntoColsBiasAct(dst, lo, ytk, bk, act)
				return
			}
			tensor.TransposeIntoCols(dst, lo, ytk)
			xv := ws.Take(x.Rows, t.Cfg.LowRank)
			tensor.MatMulInto(xv, x, t.V)
			lrk := ws.Take(x.Rows, hi-lo)
			tensor.MatMulInto(lrk, xv, utk)
			tensor.AddInPlaceColsBiasAct(dst, lo, lrk, bk, act)
		}
	}
	return st
}

// butterflySplit lowers one butterfly layer into 1+log2(N) micro-steps:
// the input permutation, then one step per factor stage. Stages whose
// pairing stride stays inside a slice (the first log2(N/S)) read only the
// shard's own columns; the top log2(S) "global" stages read the partner
// slice another shard wrote the step before — which on a real pod is one
// pairwise IPU-Link exchange per stage, and on the host is just the shared
// arena plus the inter-step barrier. The layer bias — and, for fused plan
// steps, the folded activation — ride the final stage's kernel: both are
// column-local, so fusion survives the split.
func butterflySplit(name string, b *butterfly.Butterfly, bias []float32, pts []int, act tensor.Activation) []step {
	shards := len(pts) - 1
	mk := func(tag string) step {
		return step{name: name + tag, cols: b.N, variant: "reference", run: make([]func(dst, x *tensor.Matrix, ws *tensor.Workspace), shards)}
	}
	perm := mk("/tp:perm")
	for k := 0; k < shards; k++ {
		lo, hi := pts[k], pts[k+1]
		if lo == hi {
			continue
		}
		perm.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
			for r := 0; r < x.Rows; r++ {
				src := x.Row(r)
				out := dst.Row(r)
				if b.Perm == nil {
					copy(out[lo:hi], src[lo:hi])
					continue
				}
				for i := lo; i < hi; i++ {
					out[i] = src[b.Perm[i]]
				}
			}
		}
	}
	steps := []step{perm}
	sliceW := b.N / shards
	for si, f := range b.Factors {
		f := f
		last := si == len(b.Factors)-1
		tag := fmt.Sprintf("/tp:stage%d", f.Stage)
		if 1<<f.Stage > sliceW && shards > 1 {
			tag += "+exchange"
		}
		if last {
			tag += fusedTag(act)
		}
		st := mk(tag)
		for k := 0; k < shards; k++ {
			lo, hi := pts[k], pts[k+1]
			if lo == hi {
				continue
			}
			if !last {
				st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
					applyFactorWindow(f, x, dst, lo, hi, nil, tensor.ActNone)
				}
				continue
			}
			bk := append([]float32(nil), bias[lo:hi]...)
			st.run[k] = func(dst, x *tensor.Matrix, ws *tensor.Workspace) {
				applyFactorWindow(f, x, dst, lo, hi, bk, act)
			}
		}
		steps = append(steps, st)
	}
	return steps
}

// applyFactorWindow writes output indices [lo,hi) of one butterfly factor
// application, reading whichever source indices the pairs need (possibly
// outside the window). Each element is produced by exactly the expression
// butterfly.applyFactorRows uses, so a windowed sweep assembled across
// shards is bit-for-bit the full sweep. On the layer's final stage the
// fused epilogue — bias (window-relative, nil for none) then activation —
// is applied as each element is produced, matching the fused unsharded
// kernels element-for-element.
func applyFactorWindow(f *butterfly.Factor, in, out *tensor.Matrix, lo, hi int, bias []float32, act tensor.Activation) {
	h := 1 << (f.Stage - 1)
	for r := 0; r < in.Rows; r++ {
		src := in.Row(r)
		dst := out.Row(r)
		for i := lo; i < hi; i++ {
			var v float32
			if i&h == 0 {
				p := (i>>uint(f.Stage))*h + i&(h-1)
				v = f.A[p]*src[i] + f.B[p]*src[i+h]
			} else {
				top := i - h
				p := (top>>uint(f.Stage))*h + top&(h-1)
				v = f.C[p]*src[top] + f.D[p]*src[i]
			}
			if bias != nil {
				v += bias[i-lo]
			}
			dst[i] = act.Apply(v)
		}
	}
}
