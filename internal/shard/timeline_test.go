package shard

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/obs/timeline"
	"repro/internal/tensor"
)

// executeSampled runs one batch through sp with a sample-every-batch
// recorder installed and returns the recorded timeline.
func executeSampled(t *testing.T, sp *ShardedPlan, rec *timeline.Recorder) timeline.BatchRecord {
	t.Helper()
	x := tensor.New(testMaxBatch, testN)
	x.FillRandom(rand.New(rand.NewSource(5)), 1)
	if _, err := sp.Execute(x); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap) == 0 {
		t.Fatal("recorder at sampleEvery=1 captured no batch")
	}
	return snap[len(snap)-1]
}

// TestTimelineReconcilesWithMeasuredClocks asserts the flight recorder
// agrees with the executor's own accounting: per-IPU compute event sums
// equal LastComputeNanos exactly (both copy the same clock reads), and
// no event extends past the measured batch wall.
func TestTimelineReconcilesWithMeasuredClocks(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 31)
	for _, strat := range []Strategy{TensorParallel, Pipeline} {
		sp, err := CompileWith(pl, DefaultTopology(4), 2, strat)
		if err != nil {
			t.Fatalf("CompileWith(%v): %v", strat, err)
		}
		rec := timeline.NewRecorder(1, 2)
		sp.SetTimeline(rec)
		b := executeSampled(t, sp, rec)

		if b.Tracks != 2 || b.Steps != len(sp.Steps()) {
			t.Fatalf("%v: batch is %d tracks × %d steps, want 2 × %d",
				strat, b.Tracks, b.Steps, len(sp.Steps()))
		}
		computeByIPU := make([]int64, b.Tracks)
		for _, ev := range b.Events {
			if end := ev.StartNanos + ev.DurNanos; end > sp.LastWallNanos() {
				t.Fatalf("%v: event %+v ends %dns past the %dns batch wall",
					strat, ev, end-sp.LastWallNanos(), sp.LastWallNanos())
			}
			if ev.Phase == timeline.Compute {
				computeByIPU[ev.IPU] += ev.DurNanos
			}
		}
		for k, want := range sp.LastComputeNanos() {
			if computeByIPU[k] != want {
				t.Errorf("%v: ipu%d compute events sum to %dns, LastComputeNanos says %dns",
					strat, k, computeByIPU[k], want)
			}
		}
		sp.Close()
	}
}

// TestTimelineBubblesOnlyUnderPipeline asserts the acceptance contract
// for the bubble phase: tensor-parallel lowering gives every shard a
// kernel on every micro-step, so its timeline has no bubbles; pipeline
// partitioning idles every shard outside its own stage, so fill/drain
// bubbles must appear and dominate a two-shard timeline's idle time.
func TestTimelineBubblesOnlyUnderPipeline(t *testing.T) {
	_, pl := buildPlan(t, nn.Baseline, 13)

	tp, err := CompileWith(pl, DefaultTopology(4), 2, TensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	tpRec := timeline.NewRecorder(1, 2)
	tp.SetTimeline(tpRec)
	b := executeSampled(t, tp, tpRec)
	for _, ev := range b.Events {
		if ev.Phase == timeline.Bubble {
			t.Fatalf("tensor-parallel timeline recorded a bubble: %+v", ev)
		}
	}
	if f := tpRec.BubbleFraction(); f != 0 {
		t.Fatalf("tensor-parallel bubble fraction = %g, want 0", f)
	}
	tp.Close()

	pp, err := CompileWith(pl, DefaultTopology(4), 2, Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	ppRec := timeline.NewRecorder(1, 2)
	pp.SetTimeline(ppRec)
	b = executeSampled(t, pp, ppRec)
	bubbles := 0
	for _, ev := range b.Events {
		if ev.Phase == timeline.Bubble {
			bubbles++
		}
	}
	// Every step has exactly one owner of two shards, so the other shard
	// bubbles: one bubble per micro-step.
	if want := len(pp.Steps()); bubbles != want {
		t.Fatalf("pipeline timeline recorded %d bubbles, want %d (one per micro-step)", bubbles, want)
	}
	if f := ppRec.BubbleFraction(); f <= 0 {
		t.Fatalf("pipeline bubble fraction = %g, want > 0", f)
	}
	pp.Close()
}

// TestWavefrontTimeline pins the wavefront recorder semantics: a
// sampled batch carries the micro dimension, every (step, micro-batch)
// compute span lands on the owning stage's track and sums to
// LastComputeNanos, and the only bubbles are the per-stage fill (first
// micro-batch) and residual drain — a wavefront at M=4 must idle far
// less than the barrier loop's one-whole-step-per-foreign-stage.
func TestWavefrontTimeline(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 31)
	sp, err := CompileMicro(pl, DefaultTopology(2), 2, Pipeline, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	rec := timeline.NewRecorder(1, 2)
	sp.SetTimeline(rec)
	b := executeSampled(t, sp, rec)

	if b.Micro != 4 {
		t.Fatalf("batch recorded micro=%d, want 4", b.Micro)
	}
	if b.Tracks != 2 {
		t.Fatalf("batch recorded %d tracks, want 2", b.Tracks)
	}
	computeByIPU := make([]int64, b.Tracks)
	computeCells := map[[2]int32]bool{}
	bubbles := 0
	for _, ev := range b.Events {
		if end := ev.StartNanos + ev.DurNanos; end > sp.LastWallNanos() {
			t.Fatalf("event %+v ends past the %dns batch wall", ev, sp.LastWallNanos())
		}
		switch ev.Phase {
		case timeline.Compute:
			computeByIPU[ev.IPU] += ev.DurNanos
			computeCells[[2]int32{ev.Step, ev.MB}] = true
		case timeline.Bubble:
			bubbles++
		}
	}
	for k, want := range sp.LastComputeNanos() {
		if computeByIPU[k] != want {
			t.Errorf("ipu%d compute events sum to %dns, LastComputeNanos says %dns",
				k, computeByIPU[k], want)
		}
	}
	// Every step must run every micro-batch exactly once.
	if want := len(sp.Steps()) * 4; len(computeCells) != want {
		t.Errorf("recorded %d (step, mb) compute cells, want %d", len(computeCells), want)
	}
	// At most one fill per waiting stage and one drain per non-final
	// stage: with 2 stages, ≤ 2 bubbles (vs one per foreign micro-step
	// under the barrier loop).
	if bubbles > 2 {
		t.Errorf("wavefront recorded %d bubble events, want ≤ 2 (fill + drain)", bubbles)
	}
}

// TestShardedTimelineAllocFree extends the zero-alloc steady-state
// contract to a worst-case recorder: sampling every batch, with pprof
// labels pinned, Execute still allocates nothing after warm-up.
func TestShardedTimelineAllocFree(t *testing.T) {
	_, pl := buildPlan(t, nn.Butterfly, 17)
	sp, err := CompileWith(pl, DefaultTopology(4), 2, TensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	rec := timeline.NewRecorder(1, 2)
	sp.SetTimeline(rec)
	sp.SetPprofLabels(t.Context())
	x := tensor.New(testMaxBatch, testN)
	x.FillRandom(rand.New(rand.NewSource(18)), 1)
	// Warm: fill the ring and the batch pool to steady state.
	for i := 0; i < 4; i++ {
		if _, err := sp.Execute(x); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() { sp.Execute(x) })
	if avg != 0 {
		t.Errorf("Execute with recorder+labels allocates %.1f objects per run, want 0", avg)
	}
	if tot := rec.Totals(); tot.Batches < 20 {
		t.Fatalf("recorder only saw %d batches — sampling did not run", tot.Batches)
	}
}

// TestPlanTimeline covers the single-IPU executor: nn.Plan lays its
// measured step clocks back-to-back on one compute track.
func TestPlanTimeline(t *testing.T) {
	_, pl := buildPlan(t, nn.Baseline, 23)
	rec := timeline.NewRecorder(1, 2)
	pl.SetTimeline(rec)
	x := tensor.New(testMaxBatch, testN)
	x.FillRandom(rand.New(rand.NewSource(24)), 1)
	if _, err := pl.Execute(x); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d batches, want 1", len(snap))
	}
	b := snap[0]
	if b.Tracks != 1 || b.Steps != pl.NumSteps() || len(b.Events) != pl.NumSteps() {
		t.Fatalf("batch is %d tracks × %d steps with %d events, want 1 × %d with %d",
			b.Tracks, b.Steps, len(b.Events), pl.NumSteps(), pl.NumSteps())
	}
	var off, total int64
	for i, ev := range b.Events {
		if ev.Phase != timeline.Compute || ev.IPU != 0 {
			t.Fatalf("event %d: %+v, want compute on ipu0", i, ev)
		}
		if ev.StartNanos != off {
			t.Fatalf("event %d starts at %dns, want back-to-back at %dns", i, ev.StartNanos, off)
		}
		if want := pl.LastStepNanos()[i]; ev.DurNanos != want {
			t.Fatalf("event %d duration %dns, want LastStepNanos %dns", i, ev.DurNanos, want)
		}
		off += ev.DurNanos
		total += ev.DurNanos
	}
	if b.WallNanos != total {
		t.Fatalf("batch wall %dns, want summed step clocks %dns", b.WallNanos, total)
	}
}
