package device

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/ipu"
	"repro/internal/pixelfly"
)

func specs() []LayerSpec {
	return []LayerSpec{
		{Kind: Linear, N: 512, Batch: 64},
		{Kind: Butterfly, N: 512, Batch: 64},
		{Kind: Fastfood, N: 512, Batch: 64},
		{Kind: Circulant, N: 512, Batch: 64},
		{Kind: LowRank, N: 512, Rank: 4, Batch: 64},
		{Kind: Pixelfly, N: 512, Batch: 64,
			Pix: pixelfly.Config{N: 512, BlockSize: 32, ButterflySize: 16, LowRank: 8}},
	}
}

func TestEveryKindRunsOnEveryDevice(t *testing.T) {
	devices := []Device{
		IPU{Cfg: ipu.GC200()},
		IPU{Cfg: ipu.GC200(), DeviceLoop: true},
		GPU{Cfg: gpu.A30()},
		GPU{Cfg: gpu.A30(), TensorCores: true},
	}
	for _, dev := range devices {
		for _, spec := range specs() {
			m, err := dev.LayerForward(spec)
			if err != nil {
				t.Fatalf("%s/%v: %v", dev.Name(), spec.Kind, err)
			}
			if m.Seconds <= 0 {
				t.Fatalf("%s/%v: non-positive time %v", dev.Name(), spec.Kind, m.Seconds)
			}
			if m.DenseEquivGFlops <= 0 {
				t.Fatalf("%s/%v: missing dense-equivalent rate", dev.Name(), spec.Kind)
			}
		}
	}
}

func TestDeviceNames(t *testing.T) {
	if (IPU{Cfg: ipu.GC200()}).Name() != "GC200" {
		t.Fatal("IPU name wrong")
	}
	if (GPU{Cfg: gpu.A30()}).Name() != "A30" {
		t.Fatal("GPU name wrong")
	}
	if (GPU{Cfg: gpu.A30(), TensorCores: true}).Name() != "A30+TC" {
		t.Fatal("GPU+TC name wrong")
	}
}

func TestDeviceLoopAmortizesDispatch(t *testing.T) {
	spec := LayerSpec{Kind: Butterfly, N: 1024, Batch: 64}
	plain, err := (IPU{Cfg: ipu.GC200()}).LayerForward(spec)
	if err != nil {
		t.Fatal(err)
	}
	looped, err := (IPU{Cfg: ipu.GC200(), DeviceLoop: true}).LayerForward(spec)
	if err != nil {
		t.Fatal(err)
	}
	if looped.Seconds >= plain.Seconds {
		t.Fatalf("device loop should amortize dispatch: %v vs %v", looped.Seconds, plain.Seconds)
	}
}

func TestUnknownKindErrors(t *testing.T) {
	if _, err := (IPU{Cfg: ipu.GC200()}).LayerForward(LayerSpec{Kind: LayerKind(99), N: 64, Batch: 8}); err == nil {
		t.Fatal("unknown kind accepted on IPU")
	}
	if _, err := (GPU{Cfg: gpu.A30()}).LayerForward(LayerSpec{Kind: LayerKind(99), N: 64, Batch: 8}); err == nil {
		t.Fatal("unknown kind accepted on GPU")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[LayerKind]string{
		Linear: "linear", Butterfly: "butterfly", Pixelfly: "pixelfly",
		Fastfood: "fastfood", Circulant: "circulant", LowRank: "lowrank",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
