// Package device presents the two machine models behind one interface so
// the benchmark harness can time the same layer on "the GPU" and "the
// IPU" exactly the way the paper does: GPU measurements go through
// PyTorch dispatch, IPU measurements through PopTorch (host transfers
// included).
package device

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/ipu"
	"repro/internal/pixelfly"
)

// LayerKind enumerates the Table 4 / Fig 6 layer families.
type LayerKind int

const (
	// Linear is torch.nn.Linear (the dense baseline).
	Linear LayerKind = iota
	// Butterfly is the butterfly factorization layer.
	Butterfly
	// Pixelfly is the flat-block-butterfly + low-rank layer.
	Pixelfly
	// Fastfood is S·H·G·Π·H·B.
	Fastfood
	// Circulant is the FFT convolution layer.
	Circulant
	// LowRank is the rank-r factorization.
	LowRank
)

func (k LayerKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Butterfly:
		return "butterfly"
	case Pixelfly:
		return "pixelfly"
	case Fastfood:
		return "fastfood"
	case Circulant:
		return "circulant"
	case LowRank:
		return "lowrank"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerSpec describes one layer-forward workload.
type LayerSpec struct {
	Kind  LayerKind
	N     int // layer width (square)
	Batch int
	Rank  int             // LowRank only
	Pix   pixelfly.Config // Pixelfly only
}

// Metrics is the simulated timing of one layer forward.
type Metrics struct {
	Seconds          float64
	GFlops           float64
	DenseEquivGFlops float64
}

// Device times layer workloads.
type Device interface {
	Name() string
	LayerForward(spec LayerSpec) (Metrics, error)
}

// IPU wraps the IPU model in PopTorch mode. DeviceLoop selects the
// Fig. 6 measurement style (the benchmark loop compiled onto the device,
// amortizing per-op dispatch).
type IPU struct {
	Cfg        ipu.Config
	DeviceLoop bool
}

// Name implements Device.
func (d IPU) Name() string { return d.Cfg.Name }

// LayerForward implements Device.
func (d IPU) LayerForward(spec LayerSpec) (Metrics, error) {
	var w *ipu.Workload
	switch spec.Kind {
	case Linear:
		w = ipu.BuildLinear(d.Cfg, spec.N, spec.Batch)
	case Butterfly:
		w = ipu.BuildButterflyMM(d.Cfg, spec.N, spec.Batch)
	case Pixelfly:
		w = ipu.BuildPixelflyMM(d.Cfg, spec.Pix, spec.Batch)
	case Fastfood:
		w = ipu.BuildFastfood(d.Cfg, spec.N, spec.Batch)
	case Circulant:
		w = ipu.BuildCirculant(d.Cfg, spec.N, spec.Batch)
	case LowRank:
		w = ipu.BuildLowRank(d.Cfg, spec.N, spec.Rank, spec.Batch)
	default:
		return Metrics{}, fmt.Errorf("device: unknown layer kind %v", spec.Kind)
	}
	res, err := ipu.Run(w, ipu.RunOptions{PopTorch: true, DeviceLoop: d.DeviceLoop})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Seconds: res.Seconds, GFlops: res.GFlops(),
		DenseEquivGFlops: res.DenseEquivGFlops()}, nil
}

// GPU wraps the GPU model in PyTorch mode.
type GPU struct {
	Cfg         gpu.Config
	TensorCores bool
}

// Name implements Device.
func (d GPU) Name() string {
	if d.TensorCores {
		return d.Cfg.Name + "+TC"
	}
	return d.Cfg.Name
}

// LayerForward implements Device.
func (d GPU) LayerForward(spec LayerSpec) (Metrics, error) {
	var s gpu.Seq
	switch spec.Kind {
	case Linear:
		s = gpu.Linear(d.Cfg, spec.N, spec.Batch, d.TensorCores)
	case Butterfly:
		s = gpu.Butterfly(d.Cfg, spec.N, spec.Batch)
	case Pixelfly:
		s = gpu.Pixelfly(d.Cfg, spec.Pix, spec.Batch, d.TensorCores)
	case Fastfood:
		s = gpu.FastfoodSeq(d.Cfg, spec.N, spec.Batch)
	case Circulant:
		s = gpu.CirculantSeq(d.Cfg, spec.N, spec.Batch)
	case LowRank:
		s = gpu.LowRankSeq(d.Cfg, spec.N, spec.Rank, spec.Batch, d.TensorCores)
	default:
		return Metrics{}, fmt.Errorf("device: unknown layer kind %v", spec.Kind)
	}
	res, err := gpu.Run(d.Cfg, s, gpu.RunOptions{PyTorch: true})
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Seconds: res.Seconds, GFlops: res.GFlops(),
		DenseEquivGFlops: res.DenseEquivGFlops()}, nil
}
