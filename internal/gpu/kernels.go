package gpu

import (
	"fmt"
	"math"

	"repro/internal/pixelfly"
)

// Kernel is one device launch with a roofline cost: its duration is
// launch + max(Flops/Rate, Bytes/MemBandwidth).
type Kernel struct {
	Name  string
	Flops float64 // arithmetic executed
	Bytes float64 // DRAM traffic
	Rate  float64 // sustained compute rate (already includes efficiency)
}

// Seq is a kernel sequence — the unit the paper times (one layer forward).
type Seq struct {
	Name    string
	Kernels []Kernel
	// Flops is the useful arithmetic of the whole sequence;
	// DenseEquivFlops the dense-equivalent (for sparse workloads).
	Flops           float64
	DenseEquivFlops float64
	// TensorBytes is the resident-tensor footprint, checked against device
	// memory.
	TensorBytes float64
}

// MMAlgo selects among the paper's GPU matmul implementations (Table 2).
type MMAlgo int

const (
	// AlgoNaive is the unblocked CUDA kernel (one thread per output).
	AlgoNaive MMAlgo = iota
	// AlgoShmem is the shared-memory tiled kernel.
	AlgoShmem
	// AlgoCublas is cuBLAS with Tensor Cores off (FP32).
	AlgoCublas
	// AlgoCublasTC is cuBLAS with Tensor Cores on (TF32).
	AlgoCublasTC
)

func (a MMAlgo) String() string {
	switch a {
	case AlgoNaive:
		return "naive"
	case AlgoShmem:
		return "shmem"
	case AlgoCublas:
		return "cublas-fp32"
	case AlgoCublasTC:
		return "cublas-tf32"
	default:
		return fmt.Sprintf("MMAlgo(%d)", int(a))
	}
}

// tileQuantization returns the fraction of issued work that is useful when
// an (m×n×k) matmul is decomposed into tm×tn×tk tiles — the mechanism that
// makes skewed matrices slow on GPUs (Fig. 4) and Tensor Cores degrade
// faster (their tiles are larger).
func tileQuantization(m, n, k, tm, tn, tk int) float64 {
	ceil := func(x, t int) float64 { return float64(((x + t - 1) / t) * t) }
	useful := float64(m) * float64(n) * float64(k)
	issued := ceil(m, tm) * ceil(n, tn) * ceil(k, tk)
	return useful / issued
}

// waveQuantization models partially filled SM waves: few large tiles leave
// SMs idle. Once the grid fills the device the library balances tile
// shapes, so no penalty applies; tiny grids are floored at 0.3 (smaller
// kernels still use some parallelism inside a tile).
func waveQuantization(cfg Config, m, n, tm, tn int) float64 {
	tiles := ((m + tm - 1) / tm) * ((n + tn - 1) / tn)
	if tiles >= cfg.SMs {
		return 1
	}
	eff := float64(tiles) / float64(cfg.SMs)
	if eff < 0.3 {
		return 0.3
	}
	return eff
}

// MatMul builds the kernel for C(m×n) = A(m×k)·B(k×n).
func MatMul(cfg Config, m, k, n int, algo MMAlgo) Seq {
	flops := 2 * float64(m) * float64(n) * float64(k)
	io := float64((m*k + k*n + m*n) * 4)
	var ker Kernel
	switch algo {
	case AlgoNaive:
		// Memory bound: every MAC touches A and B with only L2 reuse.
		traffic := 2 * float64(m) * float64(n) * float64(k) * 4 * (1 - cfg.NaiveL2Hit)
		ker = Kernel{Name: "naiveMM", Flops: flops,
			Bytes: traffic + float64(m*n*4),
			Rate:  0.5 * cfg.FP32PeakFlops}
	case AlgoShmem:
		// Shared-memory tiling (32×32): DRAM traffic shrinks 16×; the
		// unpipelined inner loop caps the compute rate.
		ker = Kernel{Name: "shmemMM", Flops: flops,
			Bytes: flops / 16 * 4 / 2,
			Rate:  cfg.ShmemEfficiency * cfg.FP32PeakFlops}
	case AlgoCublas:
		q := tileQuantization(m, n, k, cfg.FP32TileM, cfg.FP32TileN, cfg.FP32TileK) *
			waveQuantization(cfg, m, n, cfg.FP32TileM, cfg.FP32TileN)
		ker = Kernel{Name: "cublasSgemm", Flops: flops, Bytes: io,
			Rate: cfg.CublasEfficiency * cfg.FP32PeakFlops * q}
	case AlgoCublasTC:
		q := tileQuantization(m, n, k, cfg.TCTileM, cfg.TCTileN, cfg.TCTileK) *
			waveQuantization(cfg, m, n, cfg.TCTileM, cfg.TCTileN)
		ker = Kernel{Name: "cublasTF32", Flops: flops, Bytes: io,
			Rate: cfg.TCEfficiency * cfg.TF32PeakFlops * q}
	}
	return Seq{Name: fmt.Sprintf("matmul-%s-%dx%dx%d", algo, m, k, n),
		Kernels: []Kernel{ker}, Flops: flops, DenseEquivFlops: flops,
		TensorBytes: io}
}

// SparseMM builds the cusparse-style CSR×dense kernel: S(n×n)·B(n×n) at
// the given density. Unstructured SpMM on a GPU is memory-bound: the
// sustained rate is a small, nearly density-independent fraction of peak
// (Table 2: 932 GF at 99% sparsity, 1082 GF at 90%).
func SparseMM(cfg Config, n int, density float64) Seq {
	nnz := density * float64(n) * float64(n)
	real := 2 * nnz * float64(n)
	dense := 2 * math.Pow(float64(n), 3)
	rate := (0.085 + 0.2*density) * cfg.FP32PeakFlops
	bytes := nnz*8 + float64(2*n*n*4)
	return Seq{Name: fmt.Sprintf("cusparse-%d-d%.2f", n, density),
		Kernels: []Kernel{{Name: "csrmm", Flops: real, Bytes: bytes, Rate: rate}},
		Flops:   real, DenseEquivFlops: dense,
		TensorBytes: nnz*8 + float64(2*n*n*4)}
}

// Butterfly builds the PyTorch butterfly layer on an N-wide input with the
// given batch: log2(N) stages, each a permutation/gather kernel plus a
// paired-MAC kernel — both memory-bound passes over the activations. This
// kernel-per-stage structure is what costs the GPU its 14.45× worst case
// at small N (Fig. 6).
func Butterfly(cfg Config, n, batch int) Seq {
	stages := int(math.Log2(float64(n)))
	act := float64(n*batch) * 4
	var ks []Kernel
	flopsPerStage := 6 * float64(n/2) * float64(batch)
	for s := 1; s <= stages; s++ {
		ks = append(ks,
			Kernel{Name: fmt.Sprintf("bfPermute.%d", s), Flops: 0,
				Bytes: 2 * act, Rate: cfg.FP32PeakFlops},
			Kernel{Name: fmt.Sprintf("bfPairMAC.%d", s), Flops: flopsPerStage,
				Bytes: 2*act + float64(2*n*4),
				Rate:  cfg.IrregularEfficiency * cfg.FP32PeakFlops})
	}
	total := flopsPerStage * float64(stages)
	return Seq{Name: fmt.Sprintf("butterfly-%d-b%d", n, batch), Kernels: ks,
		Flops: total, DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		TensorBytes: 2*act + float64(2*n*4*stages)}
}

// Pixelfly builds the pixelated-butterfly layer: a fixed, short kernel
// sequence (gather, block-sparse MAC, scatter, two low-rank GEMMs, adds).
// The block-sparse MAC is block-aligned, so with Tensor Cores on it runs
// at TC rates — the GPU-specific advantage pixelfly was designed for.
func Pixelfly(cfg Config, pcfg pixelfly.Config, batch int, tensorCores bool) Seq {
	if err := pcfg.Validate(); err != nil {
		panic(err)
	}
	n := pcfg.N
	bs := pcfg.BlockSize
	blocks := len(pcfg.SupportBlocks())
	act := float64(n*batch) * 4

	bsrFlops := 2 * float64(blocks) * float64(bs*bs) * float64(batch)
	denseRate := cfg.CublasEfficiency * cfg.FP32PeakFlops
	bsrRate := cfg.BlockSparseEfficiency * cfg.FP32PeakFlops
	if tensorCores {
		qt := tileQuantization(bs, bs, bs, 16, 16, 8) // blocks must align to TC fragments
		denseRate = cfg.TCEfficiency * cfg.TF32PeakFlops
		bsrRate = cfg.BlockSparseEfficiency * cfg.TF32PeakFlops * qt
	}
	wBytes := float64(blocks*bs*bs) * 4

	ks := []Kernel{
		{Name: "pfReshapeIn", Bytes: 2 * act, Rate: cfg.FP32PeakFlops},
		{Name: "pfGather", Bytes: 2 * act, Rate: cfg.FP32PeakFlops},
		{Name: "pfBsrMM", Flops: bsrFlops, Bytes: act + wBytes + act, Rate: bsrRate},
		{Name: "pfScatter", Bytes: 2 * act, Rate: cfg.FP32PeakFlops},
		{Name: "pfReshapeOut", Bytes: 2 * act, Rate: cfg.FP32PeakFlops},
	}
	lrFlops := 0.0
	if pcfg.LowRank > 0 {
		r := pcfg.LowRank
		lr1 := 2 * float64(n) * float64(r) * float64(batch)
		ks = append(ks,
			Kernel{Name: "pfLowRank.vx", Flops: lr1,
				Bytes: act + float64(n*r*4) + float64(r*batch*4), Rate: denseRate},
			Kernel{Name: "pfLowRank.ut", Flops: lr1,
				Bytes: float64(r*batch*4) + float64(n*r*4) + act, Rate: denseRate},
			Kernel{Name: "pfResidualAdd", Bytes: 3 * act, Rate: cfg.FP32PeakFlops})
		lrFlops = 2 * lr1
	}
	return Seq{Name: fmt.Sprintf("pixelfly-%d-b%d", n, batch), Kernels: ks,
		Flops: bsrFlops + lrFlops, DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		TensorBytes: 2*act + wBytes + float64(2*n*pcfg.LowRank*4)}
}

// Linear builds the torch.nn.Linear layer: one cuBLAS GEMM with the bias
// epilogue fused.
func Linear(cfg Config, n, batch int, tensorCores bool) Seq {
	algo := AlgoCublas
	if tensorCores {
		algo = AlgoCublasTC
	}
	s := MatMul(cfg, batch, n, n, algo)
	s.Name = fmt.Sprintf("linear-%d-b%d-tc=%v", n, batch, tensorCores)
	// Weights + activations resident (weights n², activations 2·n·batch).
	s.TensorBytes = float64(n*n*4) + 2*float64(n*batch)*4
	return s
}
