package gpu

import (
	"fmt"
	"math"
)

// LowRankSeq builds the rank-r layer: two small GEMMs.
func LowRankSeq(cfg Config, n, rank, batch int, tensorCores bool) Seq {
	algo := AlgoCublas
	if tensorCores {
		algo = AlgoCublasTC
	}
	a := MatMul(cfg, rank, n, batch, algo).Kernels[0]
	a.Name = "lrGemm.vx"
	b := MatMul(cfg, n, rank, batch, algo).Kernels[0]
	b.Name = "lrGemm.ut"
	flops := 4 * float64(n) * float64(rank) * float64(batch)
	return Seq{Name: fmt.Sprintf("lowrank-%d-r%d-b%d", n, rank, batch),
		Kernels: []Kernel{a, b}, Flops: flops,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		TensorBytes:     float64((2*n*rank + 2*n*batch) * 4)}
}

// CirculantSeq builds the cuFFT-based circulant layer: three batched
// transform kernels plus a pointwise multiply — cuFFT keeps each
// transform a single kernel, so the GPU pays only four launches.
func CirculantSeq(cfg Config, n, batch int) Seq {
	logN := math.Log2(float64(n))
	act := float64(n*batch) * 4
	fftFlops := 5 * float64(n) * logN * float64(batch)
	rate := 0.35 * cfg.FP32PeakFlops // cuFFT sustained rate on fp32 batches
	ks := []Kernel{
		{Name: "cufftFwd", Flops: fftFlops, Bytes: 3 * act, Rate: rate},
		{Name: "pointwise", Flops: 6 * float64(n) * float64(batch), Bytes: 4 * act, Rate: cfg.FP32PeakFlops},
		{Name: "cufftInv", Flops: fftFlops, Bytes: 3 * act, Rate: rate},
	}
	return Seq{Name: fmt.Sprintf("circulant-%d-b%d", n, batch), Kernels: ks,
		Flops:           2*fftFlops + 6*float64(n)*float64(batch),
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		TensorBytes:     4 * act}
}

// FastfoodSeq builds S·H·G·Π·H·B: PyTorch executes the two Walsh–Hadamard
// transforms as log2(N) elementwise passes each, plus three diagonal
// multiplies and one permutation — a long launch sequence, like butterfly.
func FastfoodSeq(cfg Config, n, batch int) Seq {
	logN := int(math.Log2(float64(n)))
	act := float64(n*batch) * 4
	var ks []Kernel
	stageFlops := float64(n) * float64(batch) // adds per FWHT stage
	diag := Kernel{Name: "ffDiag", Flops: stageFlops, Bytes: 2 * act, Rate: cfg.FP32PeakFlops}
	ks = append(ks, diag)
	for s := 0; s < logN; s++ {
		ks = append(ks, Kernel{Name: fmt.Sprintf("fwht1.%d", s), Flops: stageFlops,
			Bytes: 2 * act, Rate: cfg.IrregularEfficiency * cfg.FP32PeakFlops})
	}
	ks = append(ks, Kernel{Name: "ffPermute", Bytes: 2 * act, Rate: cfg.FP32PeakFlops}, diag)
	for s := 0; s < logN; s++ {
		ks = append(ks, Kernel{Name: fmt.Sprintf("fwht2.%d", s), Flops: stageFlops,
			Bytes: 2 * act, Rate: cfg.IrregularEfficiency * cfg.FP32PeakFlops})
	}
	ks = append(ks, diag)
	total := (2*float64(logN) + 3) * stageFlops
	return Seq{Name: fmt.Sprintf("fastfood-%d-b%d", n, batch), Kernels: ks,
		Flops:           total,
		DenseEquivFlops: 2 * float64(n) * float64(n) * float64(batch),
		TensorBytes:     2*act + float64(3*n*4)}
}
