package gpu

import "fmt"

// RunOptions control kernel-sequence simulation.
type RunOptions struct {
	// PyTorch adds the per-op framework dispatch overhead — every
	// measurement in the paper goes through PyTorch.
	PyTorch bool
}

// KernelCost is the simulated cost of one kernel.
type KernelCost struct {
	Name    string
	Seconds float64
	// Bound says which roofline side dominated: "compute", "memory" or
	// "launch".
	Bound string
}

// RunResult is the simulated execution of a kernel sequence.
type RunResult struct {
	Seq     *Seq
	Kernels []KernelCost
	Seconds float64
}

// GFlops returns executed GFLOP/s.
func (r RunResult) GFlops() float64 { return r.Seq.Flops / r.Seconds / 1e9 }

// DenseEquivGFlops returns dense-equivalent GFLOP/s.
func (r RunResult) DenseEquivGFlops() float64 { return r.Seq.DenseEquivFlops / r.Seconds / 1e9 }

// OOMError reports a working set exceeding device memory.
type OOMError struct {
	Need      float64
	Available int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("gpu: working set %.0f bytes exceeds %d bytes of device memory", e.Need, e.Available)
}

// Run simulates a kernel sequence under the roofline model.
func Run(cfg Config, seq Seq, opts RunOptions) (RunResult, error) {
	// PyTorch training keeps ~2.5× the forward tensors alive (activations
	// for backward, gradients, workspace).
	if seq.TensorBytes > float64(cfg.DeviceMemBytes) {
		return RunResult{}, &OOMError{Need: seq.TensorBytes, Available: cfg.DeviceMemBytes}
	}
	res := RunResult{Seq: &seq}
	for _, k := range seq.Kernels {
		compute := 0.0
		if k.Flops > 0 {
			compute = k.Flops / k.Rate
		}
		memory := 0.0
		if k.Bytes > 0 {
			memory = k.Bytes / cfg.MemBandwidth
		}
		body := compute
		bound := "compute"
		if memory > body {
			body = memory
			bound = "memory"
		}
		overhead := cfg.KernelLaunchSec
		if opts.PyTorch {
			overhead += cfg.PyTorchDispatchSec
		}
		if overhead > body {
			bound = "launch"
		}
		sec := overhead + body
		res.Kernels = append(res.Kernels, KernelCost{Name: k.Name, Seconds: sec, Bound: bound})
		res.Seconds += sec
	}
	return res, nil
}
