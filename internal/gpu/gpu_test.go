package gpu

import (
	"errors"
	"testing"

	"repro/internal/pixelfly"
)

func mustRun(t *testing.T, cfg Config, s Seq, o RunOptions) RunResult {
	t.Helper()
	r, err := Run(cfg, s, o)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return r
}

func TestA30SpecMatchesTable1(t *testing.T) {
	cfg := A30()
	if cfg.CUDACores != 3584 {
		t.Errorf("cores = %d, want 3584", cfg.CUDACores)
	}
	if cfg.FP32PeakFlops != 10.3e12 || cfg.TF32PeakFlops != 82e12 {
		t.Errorf("peaks = %v/%v, want 10.3T/82T", cfg.FP32PeakFlops, cfg.TF32PeakFlops)
	}
	if cfg.MemBandwidth != 933e9 {
		t.Errorf("bandwidth = %v, want 933 GB/s", cfg.MemBandwidth)
	}
	if cfg.DeviceMemBytes != 24<<30 {
		t.Errorf("memory = %d, want 24 GiB", cfg.DeviceMemBytes)
	}
}

// Table 2's GPU dense columns, within 15% of the measured GFLOP/s.
func TestTable2GPUDenseCalibration(t *testing.T) {
	cfg := A30()
	cases := []struct {
		algo MMAlgo
		want float64
	}{
		{AlgoNaive, 1091},
		{AlgoShmem, 2076},
		{AlgoCublas, 9722},
		{AlgoCublasTC, 59312},
	}
	for _, tc := range cases {
		r := mustRun(t, cfg, MatMul(cfg, 2048, 2048, 2048, tc.algo), RunOptions{})
		gf := r.GFlops()
		if gf < 0.85*tc.want || gf > 1.15*tc.want {
			t.Errorf("%v: %0.f GF, want %0.f ±15%%", tc.algo, gf, tc.want)
		}
	}
}

// Table 2's cusparse columns: dense-equivalent rate at 99% sparsity beats
// the FP32 peak; at 90% it lands near 10.8 TF.
func TestTable2GPUSparseCalibration(t *testing.T) {
	cfg := A30()
	r99 := mustRun(t, cfg, SparseMM(cfg, 2048, 0.01), RunOptions{})
	if r99.DenseEquivGFlops() < cfg.FP32PeakFlops/1e9 {
		t.Errorf("99%% sparse dense-equiv %0.f GF should beat FP32 peak", r99.DenseEquivGFlops())
	}
	r90 := mustRun(t, cfg, SparseMM(cfg, 2048, 0.10), RunOptions{})
	if g := r90.DenseEquivGFlops(); g < 9000 || g > 13000 {
		t.Errorf("90%% sparse dense-equiv %0.f GF, want ~10817", g)
	}
	// Real flop rate far below dense peak either way (memory bound).
	if r99.GFlops() > 2000 || r90.GFlops() > 2000 {
		t.Error("unstructured SpMM should run far below dense peak")
	}
}

// PyTorch dispatch makes every sequence slower but only slightly for big
// kernels (Table 2 PyTorch vs cuBLAS columns).
func TestPyTorchOverheadSmallForLargeKernels(t *testing.T) {
	cfg := A30()
	base := mustRun(t, cfg, MatMul(cfg, 2048, 2048, 2048, AlgoCublas), RunOptions{})
	pt := mustRun(t, cfg, MatMul(cfg, 2048, 2048, 2048, AlgoCublas), RunOptions{PyTorch: true})
	if pt.Seconds <= base.Seconds {
		t.Fatal("PyTorch dispatch must add time")
	}
	if pt.Seconds > 1.05*base.Seconds {
		t.Fatalf("PyTorch overhead too large on a big GEMM: %v vs %v", pt.Seconds, base.Seconds)
	}
}

// Fig 4: skewed matmul loses performance on the GPU, and Tensor Cores
// degrade faster than plain FP32 (Section 3.4's discussion).
func TestFig4SkewDegradation(t *testing.T) {
	cfg := A30()
	gf := func(m, n int, algo MMAlgo) float64 {
		return mustRun(t, cfg, MatMul(cfg, m, 2048, n, algo), RunOptions{}).GFlops()
	}
	sqFP32 := gf(2048, 2048, AlgoCublas)
	skFP32 := gf(32, 131072, AlgoCublas)
	if skFP32 >= 0.5*sqFP32 {
		t.Errorf("FP32 skew 2^-6 should lose >2x: %0.f vs %0.f", skFP32, sqFP32)
	}
	sqTC := gf(2048, 2048, AlgoCublasTC)
	skTC := gf(128, 32768, AlgoCublasTC)
	skFP32mid := gf(128, 32768, AlgoCublas)
	relTC := skTC / sqTC
	relFP32 := skFP32mid / sqFP32
	if relTC >= relFP32 {
		t.Errorf("TC should degrade faster under skew: TC %.2f vs FP32 %.2f", relTC, relFP32)
	}
}

// Fig 6 (GPU w/o TC): butterfly loses ~an order of magnitude at small N
// (paper: 14.45×), pixelfly less (8.8×); break-even by N=2^11; large-N
// butterfly wins clearly.
func TestFig6GPUButterflyShape(t *testing.T) {
	cfg := A30()
	speedup := func(n int) float64 {
		lin := mustRun(t, cfg, Linear(cfg, n, n, false), RunOptions{PyTorch: true})
		bf := mustRun(t, cfg, Butterfly(cfg, n, n), RunOptions{PyTorch: true})
		return lin.Seconds / bf.Seconds
	}
	if s := speedup(128); s > 0.15 {
		t.Errorf("N=128 butterfly speedup %v, want < 0.15 (paper: 1/14.45)", s)
	}
	if s := speedup(2048); s < 1 {
		t.Errorf("N=2048 butterfly should have broken even: %v", s)
	}
	if s := speedup(8192); s < 3 {
		t.Errorf("N=8192 butterfly speedup %v, want large", s)
	}
}

func TestFig6GPUPixelflyMilder(t *testing.T) {
	cfg := A30()
	n := 128
	pcfg := pixelfly.Config{N: n, BlockSize: 8, ButterflySize: 16, LowRank: 1}
	lin := mustRun(t, cfg, Linear(cfg, n, n, false), RunOptions{PyTorch: true})
	bf := mustRun(t, cfg, Butterfly(cfg, n, n), RunOptions{PyTorch: true})
	pf := mustRun(t, cfg, Pixelfly(cfg, pcfg, n, false), RunOptions{PyTorch: true})
	if !(pf.Seconds < bf.Seconds && pf.Seconds > lin.Seconds) {
		t.Errorf("at small N want linear < pixelfly < butterfly, got %v / %v / %v",
			lin.Seconds, pf.Seconds, bf.Seconds)
	}
}

// Tensor Cores shift the break-even far to the right: at N=2048 butterfly
// must NOT beat a TC linear, even though it beats the FP32 one.
func TestTensorCoresProtectLinear(t *testing.T) {
	cfg := A30()
	n := 2048
	linTC := mustRun(t, cfg, Linear(cfg, n, n, true), RunOptions{PyTorch: true})
	bf := mustRun(t, cfg, Butterfly(cfg, n, n), RunOptions{PyTorch: true})
	if bf.Seconds < linTC.Seconds {
		t.Errorf("butterfly (%v) should not beat TC linear (%v) at N=2048", bf.Seconds, linTC.Seconds)
	}
}

// Pixelfly's block alignment benefits from Tensor Cores (the paper's
// structural point: structured sparsity pays off on a dense processor).
func TestPixelflyGainsFromTensorCores(t *testing.T) {
	cfg := A30()
	pcfg := pixelfly.Config{N: 4096, BlockSize: 128, ButterflySize: 32, LowRank: 32}
	noTC := mustRun(t, cfg, Pixelfly(cfg, pcfg, 4096, false), RunOptions{PyTorch: true})
	tc := mustRun(t, cfg, Pixelfly(cfg, pcfg, 4096, true), RunOptions{PyTorch: true})
	if tc.Seconds >= noTC.Seconds {
		t.Errorf("TC should accelerate pixelfly: %v vs %v", tc.Seconds, noTC.Seconds)
	}
}

func TestDeviceOOM(t *testing.T) {
	cfg := A30()
	// A 64k×64k linear layer needs 16 GiB of weights + activations ×2 — beyond 24 GiB.
	_, err := Run(cfg, Linear(cfg, 65536, 65536, false), RunOptions{})
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestKernelBoundClassification(t *testing.T) {
	cfg := A30()
	big := mustRun(t, cfg, MatMul(cfg, 4096, 4096, 4096, AlgoCublas), RunOptions{})
	if big.Kernels[0].Bound != "compute" {
		t.Errorf("large GEMM should be compute bound, got %s", big.Kernels[0].Bound)
	}
	tiny := mustRun(t, cfg, MatMul(cfg, 32, 32, 32, AlgoCublas), RunOptions{})
	if tiny.Kernels[0].Bound != "launch" {
		t.Errorf("tiny GEMM should be launch bound, got %s", tiny.Kernels[0].Bound)
	}
}

func TestButterflyKernelCount(t *testing.T) {
	s := Butterfly(A30(), 1024, 64)
	if len(s.Kernels) != 20 {
		t.Fatalf("butterfly kernels = %d, want 2·log2(1024) = 20", len(s.Kernels))
	}
}

func TestTileQuantization(t *testing.T) {
	if q := tileQuantization(128, 128, 32, 128, 128, 32); q != 1 {
		t.Errorf("aligned shape quantization = %v, want 1", q)
	}
	if q := tileQuantization(64, 128, 32, 128, 128, 32); q != 0.5 {
		t.Errorf("half-tile m quantization = %v, want 0.5", q)
	}
}
