// Package gpu implements a behavioural model of the NVIDIA A30 GPU used as
// the paper's comparison point: a SIMT roofline machine with per-kernel
// launch overhead, cuBLAS-class efficiency factors, Tensor Core (TF32)
// mode with shape-alignment penalties, and tile/wave quantization that
// penalizes skewed matrices (Fig. 4).
//
// The model's structure captures the four mechanisms the paper's GPU
// results hinge on:
//
//  1. kernel launch + framework dispatch overhead dominates small
//     problems (Fig. 6's 14.45×/8.8× worst-case factorization slowdowns);
//  2. a roofline — time = max(flops/rate, bytes/bandwidth) — governs each
//     kernel;
//  3. Tensor Cores multiply the dense rate by ~8 but degrade faster for
//     skewed shapes (Section 3.4);
//  4. unstructured sparsity runs memory-bound far below peak (Table 2's
//     cusparse columns), while *block* sparsity (pixelfly) keeps most of
//     the dense rate — the structural contrast with the IPU.
package gpu

// Config describes a GPU for the machine model. Peak numbers come from
// Table 1; efficiency factors are calibrated against Table 2's measured
// GFLOP/s and documented below.
type Config struct {
	Name           string
	SMs            int
	CUDACores      int
	ClockHz        float64
	FP32PeakFlops  float64 // CUDA-core FP32 peak
	TF32PeakFlops  float64 // Tensor Core TF32 peak
	MemBandwidth   float64 // HBM bytes/s
	DeviceMemBytes int64

	// KernelLaunchSec is the fixed cost of putting one kernel on the
	// device; PyTorchDispatchSec is the additional per-op framework cost
	// when measurements go through PyTorch (as all of the paper's do).
	KernelLaunchSec    float64
	PyTorchDispatchSec float64

	// Efficiency factors (fraction of the relevant peak a kernel class
	// sustains on large square problems). Calibrated against Table 2:
	//   cublas FP32  9722/10300 = 0.944
	//   cublas TF32 59312/82000 = 0.723
	//   shmem        2076/10300 = 0.20
	CublasEfficiency float64
	TCEfficiency     float64
	ShmemEfficiency  float64
	// NaiveL2Hit is the L2 hit rate of the naive kernel (it is memory
	// bound; 0.79 reproduces Table 2's 1091 GFLOP/s at N=2048).
	NaiveL2Hit float64
	// Irregular kernels (butterfly stages) sustain this fraction of FP32
	// peak when they are not memory-bound.
	IrregularEfficiency float64
	// Block-sparse kernels (pixelfly) keep this fraction of the dense
	// rate — block alignment is what the GPU rewards.
	BlockSparseEfficiency float64

	// Matmul tile shapes for quantization effects; Tensor Cores use larger
	// tiles and therefore degrade faster on skewed shapes.
	FP32TileM, FP32TileN, FP32TileK int
	TCTileM, TCTileN, TCTileK       int
}

// A30 returns the model of the NVIDIA A30 (Table 1's GPU column).
func A30() Config {
	return Config{
		Name:           "A30",
		SMs:            56,
		CUDACores:      3584,
		ClockHz:        1.44e9,
		FP32PeakFlops:  10.3e12,
		TF32PeakFlops:  82e12,
		MemBandwidth:   933e9,
		DeviceMemBytes: 24 << 30,

		KernelLaunchSec:    5e-6,
		PyTorchDispatchSec: 10e-6,

		CublasEfficiency:      0.944,
		TCEfficiency:          0.723,
		ShmemEfficiency:       0.20,
		NaiveL2Hit:            0.79,
		IrregularEfficiency:   0.15,
		BlockSparseEfficiency: 0.45,

		FP32TileM: 128, FP32TileN: 64, FP32TileK: 32,
		TCTileM: 256, TCTileN: 128, TCTileK: 32,
	}
}
