// Command ipubench regenerates the tables and figures of "Reducing Memory
// Requirements for the IPU using Butterfly Factorizations" (SC 2023) from
// this repository's machine models and training stack.
//
// Usage:
//
//	ipubench -exp table2          # one experiment
//	ipubench -exp all             # everything (table4/table5 train models)
//	ipubench -exp fig6 -quick     # reduced problem sizes
//	ipubench -list                # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table5, fig3..fig7, shardwall) or 'all'")
	quick := flag.Bool("quick", false, "shrink problem sizes and epochs")
	seed := flag.Int64("seed", 42, "seed for all randomized components")
	shards := flag.Int("shards", 64, "shardwall: max shard count swept when finding the width that fits per-IPU SRAM")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := bench.Options{Quick: *quick, Seed: *seed, MaxShards: *shards}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = bench.IDs()
	}
	failed := false
	for _, id := range ids {
		e, ok := bench.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
