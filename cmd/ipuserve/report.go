package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// runReport renders the append-only perf history as a markdown trajectory
// report: per model × shard-count, the throughput / p95 / allocs-per-op
// series across runs as sparklines with min/max/latest, plus the latest
// per-kernel GFLOP/s table when the history carries one. It is read-only —
// no models are registered and no load is generated.
func runReport(w io.Writer, path string) error {
	recs, err := loadHistory(path)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("report: %s holds no schema-%d runs", path, historySchema)
	}

	fmt.Fprintf(w, "# Perf trajectory — %s\n\n", path)
	fmt.Fprintf(w, "%d runs, %s → %s\n\n", len(recs),
		recs[0].GeneratedAt, recs[len(recs)-1].GeneratedAt)

	// Pivot run-major history into series-major trajectories, keyed by
	// model/sN in first-seen order.
	type series struct {
		key        string
		throughput []float64
		p95        []float64
		allocs     []float64
	}
	var order []string
	byKey := map[string]*series{}
	for _, rec := range recs {
		for _, m := range rec.Models {
			key := fmt.Sprintf("%s/s%d", m.Model, m.Shards)
			s, ok := byKey[key]
			if !ok {
				s = &series{key: key}
				byKey[key] = s
				order = append(order, key)
			}
			s.throughput = append(s.throughput, m.ThroughputRPS)
			s.p95 = append(s.p95, m.P95Millis)
			s.allocs = append(s.allocs, m.AllocsPerOp)
		}
	}

	fmt.Fprintf(w, "## Serving trajectories\n\n")
	fmt.Fprintf(w, "| series | metric | trajectory | min | max | latest |\n")
	fmt.Fprintf(w, "|---|---|---|---:|---:|---:|\n")
	for _, key := range order {
		s := byKey[key]
		row := func(metric string, vals []float64) {
			lo, hi := minMax(vals)
			fmt.Fprintf(w, "| %s | %s | `%s` | %.2f | %.2f | %.2f |\n",
				key, metric, spark(vals), lo, hi, vals[len(vals)-1])
		}
		row("throughput (req/s)", s.throughput)
		row("p95 (ms)", s.p95)
		row("allocs/op", s.allocs)
	}

	// Kernel GFLOP/s trajectories from runs that recorded the table.
	kOrder, kSeries := kernelSeries(recs)
	if len(kOrder) > 0 {
		fmt.Fprintf(w, "\n## Kernel GFLOP/s\n\n")
		fmt.Fprintf(w, "| kernel | trajectory | min | max | latest |\n")
		fmt.Fprintf(w, "|---|---|---:|---:|---:|\n")
		for _, k := range kOrder {
			vals := kSeries[k]
			lo, hi := minMax(vals)
			fmt.Fprintf(w, "| %s | `%s` | %.2f | %.2f | %.2f |\n",
				k, spark(vals), lo, hi, vals[len(vals)-1])
		}
	}

	// BSP phase-share trajectories from runs whose lines carry the phases
	// block (added later than the serving metrics — older histories render
	// an explicit note rather than an empty or broken section).
	pOrder, pSeries := phaseSeries(recs)
	fmt.Fprintf(w, "\n## Phase shares\n\n")
	if len(pOrder) == 0 {
		fmt.Fprintf(w, "no phase data (history predates the phase flight recorder)\n")
	} else {
		fmt.Fprintf(w, "| series | metric | trajectory | min | max | latest |\n")
		fmt.Fprintf(w, "|---|---|---:|---:|---:|---:|\n")
		for _, key := range pOrder {
			ps := pSeries[key]
			row := func(metric string, vals []float64) {
				if len(vals) == 0 {
					return
				}
				lo, hi := minMax(vals)
				fmt.Fprintf(w, "| %s | %s | `%s` | %.3f | %.3f | %.3f |\n",
					key, metric, spark(vals), lo, hi, vals[len(vals)-1])
			}
			row("compute share", ps.compute)
			row("exchange share", ps.exchange)
			row("bubble fraction", ps.bubble)
		}
	}
	return nil
}

// phaseSeriesData holds one model/sN key's phase-share trajectories.
type phaseSeriesData struct {
	compute  []float64
	exchange []float64
	bubble   []float64
}

// phaseSeries pivots the per-run phases blocks into per-series share
// trajectories, keyed by model/sN in first-seen order. Runs without a
// phases block (pre-recorder history) simply contribute no points.
func phaseSeries(recs []historyRecord) ([]string, map[string]*phaseSeriesData) {
	series := map[string]*phaseSeriesData{}
	var order []string
	for _, rec := range recs {
		for _, p := range rec.Phases {
			key := fmt.Sprintf("%s/s%d", p.Model, p.Shards)
			s, ok := series[key]
			if !ok {
				s = &phaseSeriesData{}
				series[key] = s
				order = append(order, key)
			}
			s.compute = append(s.compute, p.ComputeShare)
			s.exchange = append(s.exchange, p.ExchangeShare)
			s.bubble = append(s.bubble, p.BubbleFraction)
		}
	}
	return order, series
}

// loadHistory reads the JSONL perf history, keeping only lines of the
// current schema. Unparseable lines are an error — a corrupt history
// should fail loudly rather than silently thin the trajectory.
func loadHistory(path string) ([]historyRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []historyRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec historyRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("report: %s:%d: %v", path, lineno, err)
		}
		if rec.Schema != historySchema {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading %s: %v", path, err)
	}
	return recs, nil
}

// kernelSeries pivots the per-run kernel tables into per-kernel GFLOP/s
// trajectories, kernels sorted by name for a stable report.
func kernelSeries(recs []historyRecord) ([]string, map[string][]float64) {
	series := map[string][]float64{}
	for _, rec := range recs {
		for _, k := range rec.Kernels {
			series[k.Kernel] = append(series[k.Kernel], k.GFlopsPerSec)
		}
	}
	order := make([]string, 0, len(series))
	for k := range series {
		order = append(order, k)
	}
	sort.Strings(order)
	return order, series
}

// spark renders a value series as a fixed-height sparkline, scaled to the
// series' own min/max (a flat series renders mid-height).
func spark(vals []float64) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := minMax(vals)
	out := make([]rune, len(vals))
	for i, v := range vals {
		if hi == lo {
			out[i] = glyphs[len(glyphs)/2]
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		out[i] = glyphs[idx]
	}
	return string(out)
}

func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
