// Command ipuserve serves SHL models for inference over an HTTP JSON API,
// with dynamic micro-batching and a compiled-program cache that annotates
// every response with the modelled IPU latency and memory of its batch.
//
// Serve:
//
//	ipuserve -addr :8080 -methods dense,butterfly,pixelfly
//	curl -s localhost:8080/models
//	curl -s -X POST localhost:8080/predict \
//	    -d '{"model":"butterfly","features":[0.1, ... 1024 floats ...]}'
//	curl -s localhost:8080/stats
//
// Benchmark the serving stack instead of serving (compares the methods
// head-to-head and prints throughput plus p50/p95/p99 latency per method):
//
//	ipuserve -loadgen -rps 500 -duration 10s -methods dense,butterfly,pixelfly
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/serve"
)

var methodNames = map[string]nn.Method{
	"dense":     nn.Baseline,
	"baseline":  nn.Baseline,
	"butterfly": nn.Butterfly,
	"fastfood":  nn.Fastfood,
	"circulant": nn.Circulant,
	"lowrank":   nn.LowRank,
	"low-rank":  nn.LowRank,
	"pixelfly":  nn.Pixelfly,
}

func parseMethods(s string) ([]nn.Method, []string, error) {
	if s == "all" {
		names := []string{"dense", "butterfly", "fastfood", "circulant", "lowrank", "pixelfly"}
		ms := make([]nn.Method, len(names))
		for i, n := range names {
			ms[i] = methodNames[n]
		}
		return ms, names, nil
	}
	var ms []nn.Method
	var names []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		m, ok := methodNames[tok]
		if !ok {
			return nil, nil, fmt.Errorf("unknown method %q (want dense, butterfly, fastfood, circulant, lowrank, pixelfly or all)", tok)
		}
		ms = append(ms, m)
		names = append(names, tok)
	}
	return ms, names, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		n        = flag.Int("n", 1024, "SHL layer width (power of two; 1024 is the paper's)")
		classes  = flag.Int("classes", 10, "output classes")
		methods  = flag.String("methods", "dense,butterfly,pixelfly", "comma-separated methods to register, or 'all'")
		seed     = flag.Int64("seed", 42, "weight-init seed")
		maxBatch = flag.Int("maxbatch", 64, "micro-batcher: max coalesced batch size")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "micro-batcher: max queue delay before flush")
		workers  = flag.Int("workers", 0, "micro-batcher: worker goroutines (0 = GOMAXPROCS)")
		device   = flag.String("device", "gc200", "device model for the program cache: gc200 or gc2")
		loadgen  = flag.Bool("loadgen", false, "run the built-in load generator instead of serving")
		rps      = flag.Int("rps", 500, "loadgen: offered requests/second per method")
		duration = flag.Duration("duration", 10*time.Second, "loadgen: time to offer load per method")
	)
	flag.Parse()

	ms, names, err := parseMethods(*methods)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfg ipu.Config
	switch strings.ToLower(*device) {
	case "gc200":
		cfg = ipu.GC200()
	case "gc2":
		cfg = ipu.GC2()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q (want gc200 or gc2)\n", *device)
		os.Exit(2)
	}

	reg := serve.NewRegistry(serve.Options{
		IPU: cfg,
		Batcher: serve.BatcherConfig{
			MaxBatch: *maxBatch,
			MaxDelay: *maxDelay,
			Workers:  *workers,
		},
	})
	defer reg.Close()

	for i, m := range ms {
		info, err := reg.Register(serve.ModelSpec{
			Name: names[i], Method: m, N: *n, Classes: *classes, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("registered %-10s (%s, %d params, v%d)\n",
			names[i], info.Info().Method, info.Info().Params, info.Info().Version)
	}

	if *loadgen {
		runLoadgen(reg, names, *rps, *duration)
		return
	}

	fmt.Printf("serving on %s (POST /predict, GET /models, GET /stats)\n", *addr)
	if err := http.ListenAndServe(*addr, serve.NewServer(reg)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runLoadgen(reg *serve.Registry, names []string, rps int, duration time.Duration) {
	fmt.Printf("\nload: %d req/s per model for %v each\n\n", rps, duration)
	fmt.Printf("%-10s %8s %6s %10s %9s %9s %9s %9s %7s %9s\n",
		"model", "done", "err", "thr(req/s)", "p50(ms)", "p95(ms)", "p99(ms)", "avg.batch", "hit%", "ipu(µs/req)")
	for _, name := range names {
		rep, err := serve.RunLoad(context.Background(), reg, name, serve.LoadConfig{
			RPS: rps, Duration: duration,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ipuPerReq := modelledPerRequest(reg, name, rep)
		fmt.Printf("%-10s %8d %6d %10.1f %9.3f %9.3f %9.3f %9.2f %6.1f%% %9s\n",
			name, rep.Done, rep.Errors, rep.Throughput(),
			rep.Latency.P50*1e3, rep.Latency.P95*1e3, rep.Latency.P99*1e3,
			rep.Batching.AvgBatch, rep.Cache.HitRate*100, ipuPerReq)
	}
	cs := reg.CacheStats()
	fmt.Printf("\nprogram cache: %d entries, %d hits / %d misses (%.1f%% hit rate)\n",
		cs.Entries, cs.Hits, cs.Misses, cs.HitRate*100)
}

// modelledPerRequest reads the modelled per-request IPU latency at the
// run's largest coalesced batch bucket — a compiled program the load
// itself already cached, so this is a lookup, not a fresh compile.
func modelledPerRequest(reg *serve.Registry, name string, rep serve.LoadReport) string {
	m, ok := reg.Get(name)
	if !ok || rep.Batching.MaxBatch < 1 {
		return "-"
	}
	cost, err := m.ModelledCost(int(rep.Batching.MaxBatch))
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%.2f", cost.PerRequestSeconds*1e6)
}
